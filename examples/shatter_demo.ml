(* Theorem 1.3 on a realistic topology: a datacenter-style "spider"
   network whose removal of one aggregation switch's neighborhood
   shatters the graph into racks. The per-rack colorings are revealed,
   the aggregation layer's colors are hidden, and flipping one rack's
   coloring together with its bit in every neighbor vector yields a
   second accepted world.

   Run with: dune exec examples/shatter_demo.exe *)

open Lcp_graph
open Lcp_local
open Lcp

let spider legs len =
  let g = ref (Graph.empty 1) in
  for _ = 1 to legs do
    let n = Graph.order !g in
    let h = Graph.disjoint_union !g (Builders.path len) in
    g := Graph.add_edge h 0 n
  done;
  !g

let () =
  let g = spider 4 3 in
  Format.printf "spider network: %a@." Graph.pp g;
  let v = Option.get (D_shatter.shatter_point g) in
  Format.printf "shatter point: node %d (removing N[%d] leaves %d racks)@." v v
    (List.length
       (let rest =
          List.filter
            (fun w -> w <> v && not (Graph.mem_edge g v w))
            (Graph.nodes g)
        in
        let sub, _ = Graph.induced g rest in
        Graph.components sub));

  let inst = Instance.make g in
  let certified = Option.get (Decoder.certify D_shatter.suite inst) in
  Format.printf "certificates:@.";
  Array.iteri (fun u s -> Format.printf "  node %d: %s@." u s) certified.Instance.labels;
  assert (Decoder.accepts_all D_shatter.decoder certified);
  Format.printf "all nodes accept; certificate size: %d bits (bound: O(min(D^2,n)+log n))@."
    (D_shatter.suite.Decoder.cert_bits inst);

  (* flip rack 1's coloring and the corresponding bit in the type-1
     vectors: a second accepted certificate assignment for the same
     network - the seed of the hiding property *)
  let flip_rack lab =
    Array.map
      (fun s ->
        match Certificate.fields s with
        | [ "2"; id; "1"; c ] ->
            Printf.sprintf "2:%s:1:%d" id (1 - int_of_string c)
        | [ "1"; id; bits ] ->
            let b = Bytes.of_string bits in
            Bytes.set b 0 (if Bytes.get b 0 = '0' then '1' else '0');
            Printf.sprintf "1:%s:%s" id (Bytes.to_string b)
        | _ -> s)
      lab
  in
  let flipped = Instance.with_labels certified (flip_rack certified.Instance.labels) in
  assert (Decoder.accepts_all D_shatter.decoder flipped);
  Format.printf "flipped world also accepted: rack colorings are not pinned down.@.";

  (* the paper's P1/P2 pair: the formal hiding witness *)
  let p1 =
    Instance.make (Builders.path 8)
      ~labels:
        [|
          D_shatter.encode_type2 ~id:5 ~comp:1 ~color:0;
          D_shatter.encode_type2 ~id:5 ~comp:1 ~color:1;
          D_shatter.encode_type2 ~id:5 ~comp:1 ~color:0;
          D_shatter.encode_type1 ~id:5 ~colors:[ 0; 0 ];
          D_shatter.encode_type0 ~id:5;
          D_shatter.encode_type1 ~id:5 ~colors:[ 0; 0 ];
          D_shatter.encode_type2 ~id:5 ~comp:2 ~color:0;
          D_shatter.encode_type2 ~id:5 ~comp:2 ~color:1;
        |]
  in
  let p2 =
    Instance.make (Builders.path 7)
      ~ids:(Ident.of_array ~bound:8 [| 1; 2; 4; 5; 6; 7; 8 |])
      ~labels:
        [|
          D_shatter.encode_type2 ~id:5 ~comp:1 ~color:0;
          D_shatter.encode_type2 ~id:5 ~comp:1 ~color:1;
          D_shatter.encode_type1 ~id:5 ~colors:[ 1; 0 ];
          D_shatter.encode_type0 ~id:5;
          D_shatter.encode_type1 ~id:5 ~colors:[ 1; 0 ];
          D_shatter.encode_type2 ~id:5 ~comp:2 ~color:0;
          D_shatter.encode_type2 ~id:5 ~comp:2 ~color:1;
        |]
  in
  match Hiding.check ~k:2 D_shatter.decoder [ p1; p2 ] with
  | Hiding.Hiding { witness; _ } ->
      Format.printf
        "P1/P2 construction: odd cycle of %d views in V(D,8) => hiding. QED@."
        (List.length witness)
  | Hiding.Colorable _ -> assert false
