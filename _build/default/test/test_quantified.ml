open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let even_cycle_setup () =
  let fam =
    Neighborhood.exhaustive_family D_even_cycle.suite ~graphs:[ Builders.cycle 4 ]
      ~ports:`All ()
  in
  (Neighborhood.build D_even_cycle.decoder fam, fam)

let test_even_cycle_total_hiding () =
  let nbhd, fam = even_cycle_setup () in
  let res = Quantified.best_extractor ~k:2 nbhd fam in
  check_bool "exact" true res.Quantified.exact;
  (* 2-edge-coloring hides everywhere: every extractor fails at every
     node of some instance *)
  check_bool "hiding level 1.0" true (Quantified.hiding_level res = 1.0)

let test_trivial_full_extraction () =
  let suite = D_trivial.suite ~k:2 in
  let fam =
    List.filter_map
      (fun g -> Decoder.certify suite (Instance.make g))
      [ Builders.path 4; Builders.cycle 6 ]
  in
  let nbhd = Neighborhood.build suite.Decoder.dec fam in
  let res = Quantified.best_extractor ~k:2 nbhd fam in
  check_bool "full success" true (res.Quantified.worst_case_success = 1.0);
  check_bool "no hiding" true (Quantified.hiding_level res = 0.0)

let test_success_fraction_consistent () =
  let nbhd, fam = even_cycle_setup () in
  let res = Quantified.best_extractor ~k:2 nbhd fam in
  let min_frac =
    List.fold_left
      (fun acc inst ->
        min acc (Quantified.success_fraction ~k:2 nbhd res.Quantified.best inst))
      1.0 fam
  in
  check_bool "reported = recomputed" true (min_frac = res.Quantified.worst_case_success)

let test_unknown_views_count_as_failures () =
  let nbhd, _ = even_cycle_setup () in
  let stranger = Instance.make (Builders.cycle 4) ~labels:(Array.make 4 "junk") in
  let coloring = Array.make (Neighborhood.order nbhd) 0 in
  check_bool "all fail" true
    (Quantified.success_fraction ~k:2 nbhd coloring stranger = 0.0)

let test_hill_climb_path () =
  (* force the heuristic path with a tiny exact limit; the result is a
     legal extractor and a sane fraction *)
  let nbhd, fam = even_cycle_setup () in
  let res = Quantified.best_extractor ~exact_limit:2 ~restarts:4 ~k:2 nbhd fam in
  check_bool "heuristic" true (not res.Quantified.exact);
  check_bool "fraction in range" true
    (res.Quantified.worst_case_success >= 0.0 && res.Quantified.worst_case_success <= 1.0)

let test_degree_one_partial () =
  let fam =
    Neighborhood.exhaustive_family D_degree_one.suite
      ~graphs:
        (List.filter
           (fun g -> Coloring.is_bipartite g && Graph.min_degree g = 1)
           (Enumerate.connected_up_to_iso 4 @ Enumerate.connected_up_to_iso 3))
      ()
  in
  let nbhd = Neighborhood.build D_degree_one.decoder fam in
  let res = Quantified.best_extractor ~k:2 nbhd fam in
  let level = Quantified.hiding_level res in
  check_bool "strictly between 0 and 1" true (level > 0.0 && level < 1.0)

let suite =
  [
    case "even-cycle hides everywhere" test_even_cycle_total_hiding;
    case "trivial extracts everything" test_trivial_full_extraction;
    case "fractions consistent" test_success_fraction_consistent;
    case "unknown views fail" test_unknown_views_count_as_failures;
    case "hill-climbing fallback" test_hill_climb_path;
    case "degree-one hides partially" test_degree_one_partial;
  ]
