open Lcp_graph
open Lcp_local
open Helpers

let test_quiescence_full_knowledge () =
  let inst = Instance.make (Builders.cycle 6) in
  let final, stats = Async_runner.run_to_quiescence inst in
  Array.iter
    (fun k ->
      check_int "all nodes known" 6 (List.length k.Sync_runner.node_facts);
      check_int "all edges known" 6 (List.length k.Sync_runner.edge_facts))
    final;
  check_bool "made progress" true (stats.Async_runner.deliveries > 0)

let test_schedulers_agree () =
  let inst = Instance.make (Builders.grid 3 3) in
  let fifo, _ = Async_runner.run_to_quiescence ~scheduler:`Fifo inst in
  let lifo, _ = Async_runner.run_to_quiescence ~scheduler:`Lifo inst in
  let random, _ =
    Async_runner.run_to_quiescence ~scheduler:(`Random (rng ())) inst
  in
  check_bool "fifo = lifo" true (fifo = lifo);
  check_bool "fifo = random" true (fifo = random)

let test_matches_views () =
  List.iter
    (fun g ->
      let inst = Instance.make g in
      check_bool "contains view knowledge (r=1)" true
        (Async_runner.eventually_matches_views inst ~r:1);
      check_bool "contains view knowledge (r=2)" true
        (Async_runner.eventually_matches_views inst ~r:2))
    [ Builders.path 5; Builders.star 4; Builders.theta 2 2 3 ]

let test_disconnected () =
  let g = Graph.disjoint_union (Builders.path 2) (Builders.path 2) in
  let inst = Instance.make g in
  let final, _ = Async_runner.run_to_quiescence inst in
  check_int "own component only" 2 (List.length final.(0).Sync_runner.node_facts);
  check_bool "no cross knowledge" true
    (List.for_all
       (fun f -> f.Sync_runner.nid <= 2)
       final.(0).Sync_runner.node_facts)

let test_matches_sync_limit () =
  (* asynchronous quiescent knowledge equals synchronous knowledge after
     enough rounds *)
  let inst = Instance.make (Builders.path 6) in
  let final, _ = Async_runner.run_to_quiescence inst in
  let sync = Sync_runner.run inst ~rounds:10 in
  check_bool "fixpoints coincide" true (final = sync)

let suite =
  [
    case "quiescence reaches full knowledge" test_quiescence_full_knowledge;
    case "schedulers agree at quiescence" test_schedulers_agree;
    case "knowledge contains views" test_matches_views;
    case "disconnected components isolated" test_disconnected;
    case "async fixpoint = sync fixpoint" test_matches_sync_limit;
  ]
