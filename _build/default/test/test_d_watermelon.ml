open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let dec = D_watermelon.decoder

let test_decompose () =
  (match D_watermelon.decompose (Builders.watermelon [ 2; 3; 4 ]) with
  | Some { D_watermelon.v1; v2; paths } ->
      check_int "v1" 0 v1;
      check_int "v2" 1 v2;
      check_int "three paths" 3 (List.length paths);
      Alcotest.(check int_list) "path lengths (edges)" [ 2; 3; 4 ]
        (List.sort Stdlib.compare (List.map (fun p -> List.length p - 1) paths))
  | None -> Alcotest.fail "watermelon recognized");
  check_bool "path rejected" true (D_watermelon.decompose (Builders.path 6) = None);
  check_bool "tree rejected" true (D_watermelon.decompose (Builders.star 4) = None);
  check_bool "clique rejected" true (D_watermelon.decompose (k4 ()) = None);
  check_bool "cycle accepted" true (D_watermelon.decompose (Builders.cycle 6) <> None);
  check_bool "theta accepted" true (D_watermelon.decompose (Builders.theta 2 2 3) <> None)

let test_honest_accepted () =
  List.iter
    (fun ls ->
      let i = certify_exn D_watermelon.suite (Builders.watermelon ls) in
      check_bool "accepted" true (Decoder.accepts_all dec i))
    [ [ 2; 2 ]; [ 3; 3 ]; [ 2; 4 ]; [ 2; 2; 2 ]; [ 3; 5; 3 ] ]

let test_prover_refuses () =
  check_bool "mixed parity (odd cycle)" true
    (D_watermelon.prover (Instance.make (Builders.watermelon [ 2; 3 ])) = None);
  check_bool "non-watermelon" true
    (D_watermelon.prover (Instance.make (Builders.star 3)) = None)

let test_endpoint_id_check () =
  let i = certify_exn D_watermelon.suite (Builders.watermelon [ 2; 2 ]) in
  let lab = Array.copy i.Instance.labels in
  (* claim foreign endpoints everywhere: endpoints no longer carry one
     of the claimed ids *)
  let rewrite s =
    match Certificate.fields s with
    | "1" :: _ -> D_watermelon.encode_endpoint ~id1:2 ~id2:4
    | "2" :: _ :: _ :: rest -> Certificate.join ("2" :: "2" :: "4" :: rest)
    | _ -> s
  in
  let lab = Array.map rewrite lab in
  let v = Decoder.run dec (Instance.with_labels i lab) in
  (* endpoint 0 carries id 1, which is outside the claimed pair (2,4);
     endpoint 1 carries id 2 and may legitimately still accept *)
  check_bool "endpoint rejects foreign pair" false v.(0)

let test_path_number_distinct () =
  let i = certify_exn D_watermelon.suite (Builders.watermelon [ 2; 2 ]) in
  let lab = Array.copy i.Instance.labels in
  (* renumber both paths to 1: the endpoints see duplicate numbers *)
  let renumber s =
    match Certificate.fields s with
    | [ "2"; a; b; _; p1; c1; p2; c2 ] ->
        Certificate.join [ "2"; a; b; "1"; p1; c1; p2; c2 ]
    | _ -> s
  in
  let lab = Array.map renumber lab in
  let v = Decoder.run dec (Instance.with_labels i lab) in
  check_bool "duplicate numbers rejected at endpoints" false (v.(0) || v.(1))

let test_endpoint_monochromatic () =
  (* recolor one path's edges inverted: endpoint sees two colors *)
  let i = certify_exn D_watermelon.suite (Builders.watermelon [ 2; 2 ]) in
  let lab = Array.copy i.Instance.labels in
  let invert s =
    match Certificate.fields s with
    | [ "2"; a; b; "2"; p1; c1; p2; c2 ] ->
        let flip c = if c = "0" then "1" else "0" in
        Certificate.join [ "2"; a; b; "2"; p1; flip c1; p2; flip c2 ]
    | _ -> s
  in
  let lab = Array.map invert lab in
  let v = Decoder.run dec (Instance.with_labels i lab) in
  check_bool "bichromatic endpoint rejected" false (v.(0) || v.(1))

let test_interior_alternation () =
  (* certificates with c1 = c2 are malformed *)
  let bad = D_watermelon.encode_path_node ~id1:1 ~id2:3 ~num:1 ~p1:1 ~c1:0 ~p2:1 ~c2:0 in
  let i =
    Instance.make (Builders.watermelon [ 2; 2 ])
      ~labels:[| "1:1:3"; "1:1:3"; bad; bad |]
  in
  let v = Decoder.run dec i in
  check_bool "equal colors malformed" false (v.(2) || v.(3))

let test_port_crosscheck () =
  let i = certify_exn D_watermelon.suite (Builders.watermelon [ 2; 4 ]) in
  let lab = Array.copy i.Instance.labels in
  (* corrupt a far-port claim on an interior node of the long path *)
  let corrupt s =
    match Certificate.fields s with
    | [ "2"; a; b; n; p1; c1; p2; c2 ] ->
        let p1' = if p1 = "1" then "2" else "1" in
        Certificate.join [ "2"; a; b; n; p1'; c1; p2; c2 ]
    | _ -> s
  in
  lab.(4) <- corrupt lab.(4);
  check_bool "far-port corruption caught" false
    (Decoder.accepts_all dec (Instance.with_labels i lab))

let test_degree_two_enforced () =
  (* a path node certificate at a degree-3 node is rejected *)
  let g = Builders.star 3 in
  let cert = D_watermelon.encode_path_node ~id1:1 ~id2:2 ~num:1 ~p1:1 ~c1:0 ~p2:1 ~c2:1 in
  let i = Instance.make g ~labels:(Array.make 4 cert) in
  check_bool "hub rejected" false ((Decoder.run dec i).(0))

let test_cert_sizes_logarithmic () =
  let bits n =
    let i = Instance.make (Builders.watermelon [ n; n ]) in
    D_watermelon.suite.Decoder.cert_bits i
  in
  check_bool "grows slowly" true (bits 32 - bits 4 <= 12)

let suite =
  [
    case "decompose" test_decompose;
    case "honest certificates accepted" test_honest_accepted;
    case "prover refuses non-promise" test_prover_refuses;
    case "endpoint identity checked" test_endpoint_id_check;
    case "path numbers distinct" test_path_number_distinct;
    case "endpoints monochromatic" test_endpoint_monochromatic;
    case "interior alternation" test_interior_alternation;
    case "far-port cross-check" test_port_crosscheck;
    case "degree two enforced" test_degree_two_enforced;
    case "certificate size" test_cert_sizes_logarithmic;
  ]
