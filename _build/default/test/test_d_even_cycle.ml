open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let dec = D_even_cycle.decoder

let honest n =
  certify_exn D_even_cycle.suite (Builders.cycle n)

let test_honest_accepted () =
  List.iter
    (fun n -> check_bool "accepted" true (Decoder.accepts_all dec (honest n)))
    [ 4; 6; 8; 10 ]

let test_prover_refuses () =
  check_bool "odd cycle" true (D_even_cycle.prover (Instance.make (c5 ())) = None);
  check_bool "path" true (D_even_cycle.prover (Instance.make (Builders.path 4)) = None)

let test_edge_coloring_proper () =
  let i = honest 6 in
  (* adjacent certificates claim different colors on the shared edge's
     two sides is FALSE - they claim the SAME color; and each node's two
     edges have different colors *)
  Array.iter
    (fun s ->
      match Certificate.fields s with
      | [ _; _; c1; _; _; c2 ] -> check_bool "c1 <> c2" true (c1 <> c2)
      | _ -> Alcotest.fail "unexpected format")
    i.Instance.labels

let test_wrong_color_rejected () =
  let i = honest 4 in
  let lab = Array.copy i.Instance.labels in
  (* flip one color bit in node 0's certificate *)
  let flip s =
    match Certificate.fields s with
    | [ a; b; c1; d; e; c2 ] ->
        Certificate.join [ a; b; (if c1 = "0" then "1" else "0"); d; e; c2 ]
    | _ -> assert false
  in
  lab.(0) <- flip lab.(0);
  check_bool "tampered certificate caught" false
    (Decoder.accepts_all dec (Instance.with_labels i lab))

let test_wrong_far_port_rejected () =
  let i = honest 4 in
  let lab = Array.copy i.Instance.labels in
  let swap s =
    match Certificate.fields s with
    | [ a; q1; c1; d; q2; c2 ] ->
        Certificate.join [ a; (if q1 = "1" then "2" else "1"); c1; d; q2; c2 ]
    | _ -> assert false
  in
  lab.(1) <- swap lab.(1);
  check_bool "port mismatch caught" false
    (Decoder.accepts_all dec (Instance.with_labels i lab))

let test_degree_check () =
  (* on a path, the leaf has degree 1: every certificate is rejected
     there *)
  let g = Builders.path 3 in
  let views = View.extract_all (Instance.make g ~labels:(Array.make 3 (List.hd D_even_cycle.alphabet))) ~r:1 in
  check_bool "leaf rejected" false (dec.Decoder.accepts views.(0))

let test_monochromatic_rejected () =
  (* all edges color 0: c1 = c2 is malformed at every node *)
  let g = Builders.cycle 4 in
  let lab = Array.make 4 (D_even_cycle.encode ~q1:2 ~c1:0 ~q2:1 ~c2:0) in
  ignore lab;
  (* encode enforces nothing; the decoder's parser must reject c1 = c2 *)
  let i = Instance.make g ~labels:lab in
  check_bool "monochromatic rejected" false
    (Array.exists (fun b -> b) (Decoder.run dec i))

let test_alphabet () =
  check_int "8 well-formed + junk" 9 (List.length D_even_cycle.alphabet);
  check_bool "junk present" true (List.mem Decoder.junk D_even_cycle.alphabet)

let test_soundness_c3_exhaustive () =
  check_bool "no accepted labeling of C3" true
    (Prover.find_accepted dec ~alphabet:D_even_cycle.alphabet
       (Instance.make (Builders.cycle 3))
    = None)

let test_random_ports () =
  let r = rng () in
  for _ = 1 to 5 do
    let g = Builders.cycle 6 in
    let inst = Instance.make g ~ports:(Port.random r g) in
    match D_even_cycle.prover inst with
    | Some lab ->
        check_bool "accepted under random ports" true
          (Decoder.accepts_all dec (Instance.with_labels inst lab))
    | None -> Alcotest.fail "prover works for all ports"
  done

let suite =
  [
    case "honest certificates accepted" test_honest_accepted;
    case "prover refuses non-promise" test_prover_refuses;
    case "certificates 2-edge-color" test_edge_coloring_proper;
    case "tampered color rejected" test_wrong_color_rejected;
    case "tampered far port rejected" test_wrong_far_port_rejected;
    case "degree enforced" test_degree_check;
    case "monochromatic certificates rejected" test_monochromatic_rejected;
    case "alphabet" test_alphabet;
    case "C3 soundness exhaustive" test_soundness_c3_exhaustive;
    case "random port assignments" test_random_ports;
  ]

let test_large_ring_scales () =
  (* the substrate stays near-linear: certify and verify a 2000-ring *)
  let inst = honest 2000 in
  check_bool "accepted" true (Decoder.accepts_all dec inst)

let suite = suite @ [ case "large ring scales" test_large_ring_scales ]
