open Lcp_graph
open Lcp_local
open Helpers

let test_canonical () =
  let g = Builders.path 4 in
  let ids = Ident.canonical g in
  Alcotest.(check int_list) "1..n" [ 1; 2; 3; 4 ] (Array.to_list ids.Ident.ids);
  check_int "bound" 4 ids.Ident.bound;
  check_bool "valid" true (Ident.is_valid g ids)

let test_of_array_validation () =
  (try
     ignore (Ident.of_array [| 1; 1 |]);
     Alcotest.fail "expected duplicate failure"
   with Invalid_argument _ -> ());
  (try
     ignore (Ident.of_array ~bound:2 [| 1; 3 |]);
     Alcotest.fail "expected range failure"
   with Invalid_argument _ -> ());
  (try
     ignore (Ident.of_array [| 0; 1 |]);
     Alcotest.fail "ids start at 1"
   with Invalid_argument _ -> ())

let test_random () =
  let g = Builders.grid 3 3 in
  let ids = Ident.random (rng ()) ~bound:81 g in
  check_bool "valid" true (Ident.is_valid g ids);
  check_int "bound kept" 81 ids.Ident.bound

let test_lookup () =
  let ids = Ident.of_array [| 5; 2; 9 |] in
  check_int "id" 2 (Ident.id ids 1);
  Alcotest.(check (option int)) "inverse" (Some 2) (Ident.node_of_id ids 9);
  Alcotest.(check (option int)) "missing" None (Ident.node_of_id ids 7)

let test_order_preserving_remap () =
  let ids = Ident.of_array [| 5; 2; 9 |] in
  let remapped = Ident.order_preserving_remap ids ~target:[ 10; 30; 20 ] in
  (* ranks: node1 (id 2) smallest -> 10; node0 (5) -> 20; node2 (9) -> 30 *)
  Alcotest.(check int_list) "remapped" [ 20; 10; 30 ]
    (Array.to_list remapped.Ident.ids);
  (try
     ignore (Ident.order_preserving_remap ids ~target:[ 1; 2 ]);
     Alcotest.fail "expected arity failure"
   with Invalid_argument _ -> ())

let test_enumerate () =
  let g = Builders.path 2 in
  let all = Ident.enumerate ~bound:3 g in
  check_int "3*2 injections" 6 (List.length all);
  check_bool "all valid" true (List.for_all (Ident.is_valid g) all)

let test_rank_in () =
  let ids = Ident.of_array [| 5; 2; 9; 7 |] in
  check_int "rank of node 0 among all" 1 (Ident.rank_in ids [ 0; 1; 2; 3 ] 0);
  check_int "rank of node 2 among all" 3 (Ident.rank_in ids [ 0; 1; 2; 3 ] 2);
  check_int "rank within subset" 0 (Ident.rank_in ids [ 0; 2 ] 0)

let suite =
  [
    case "canonical" test_canonical;
    case "of_array validation" test_of_array_validation;
    case "random" test_random;
    case "lookup" test_lookup;
    case "order-preserving remap" test_order_preserving_remap;
    case "enumerate" test_enumerate;
    case "rank_in" test_rank_in;
  ]
