open Lcp_graph
open Helpers

let test_empty () =
  let g = Graph.empty 5 in
  check_int "order" 5 (Graph.order g);
  check_int "size" 0 (Graph.size g);
  check_bool "no edge" false (Graph.mem_edge g 0 1)

let test_empty_zero () =
  let g = Graph.empty 0 in
  check_int "order" 0 (Graph.order g);
  check_bool "connected by convention" true (Graph.is_connected g)

let test_of_edges_basic () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  check_int "size" 2 (Graph.size g);
  check_bool "edge 0-1" true (Graph.mem_edge g 0 1);
  check_bool "edge 1-0 symmetric" true (Graph.mem_edge g 1 0);
  check_bool "no edge 0-2" false (Graph.mem_edge g 0 2);
  Alcotest.(check (list (pair int int))) "edges sorted" [ (0, 1); (1, 2) ] (Graph.edges g)

let test_of_edges_dedup () =
  let g = Graph.of_edges 2 [ (0, 1); (1, 0); (0, 1) ] in
  check_int "collapsed" 1 (Graph.size g)

let test_of_edges_rejects_loop () =
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph.of_edges: self-loop at 1")
    (fun () -> ignore (Graph.of_edges 3 [ (1, 1) ]))

let test_of_edges_rejects_range () =
  (try
     ignore (Graph.of_edges 2 [ (0, 5) ]);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_add_remove () =
  let g = Graph.empty 3 in
  let g = Graph.add_edge g 0 2 in
  check_bool "added" true (Graph.mem_edge g 0 2);
  let g2 = Graph.add_edge g 0 2 in
  check_graph "idempotent add" g g2;
  let g3 = Graph.remove_edge g 0 2 in
  check_bool "removed" false (Graph.mem_edge g3 0 2);
  check_graph "remove absent is noop" g3 (Graph.remove_edge g3 0 1)

let test_neighbors_sorted () =
  let g = Graph.of_edges 4 [ (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check int_list) "sorted" [ 0; 1; 3 ] (Graph.neighbors g 2);
  check_int "degree" 3 (Graph.degree g 2)

let test_degrees () =
  let g = Builders.star 4 in
  check_int "min" 1 (Graph.min_degree g);
  check_int "max" 4 (Graph.max_degree g);
  Alcotest.(check (list (pair int int))) "counts" [ (1, 4); (4, 1) ] (Graph.degree_counts g)

let test_disjoint_union () =
  let g = Graph.disjoint_union (p4 ()) (c4 ()) in
  check_int "order" 8 (Graph.order g);
  check_int "size" 7 (Graph.size g);
  check_bool "shifted edge" true (Graph.mem_edge g 4 5);
  check_bool "no cross edge" false (Graph.mem_edge g 3 4);
  check_int "components" 2 (List.length (Graph.components g))

let test_induced () =
  let g = c5 () in
  let sub, back = Graph.induced g [ 0; 1; 2 ] in
  check_int "order" 3 (Graph.order sub);
  check_int "size" 2 (Graph.size sub);
  Alcotest.(check int_list) "mapping" [ 0; 1; 2 ] (Array.to_list back);
  let sub2, _ = Graph.induced g [ 2; 0; 1; 1 ] in
  check_graph "duplicates and order ignored" sub sub2

let test_relabel () =
  let g = Builders.path 3 in
  let h = Graph.relabel g [| 2; 1; 0 |] in
  check_bool "edge 2-1" true (Graph.mem_edge h 2 1);
  check_bool "edge 1-0" true (Graph.mem_edge h 1 0);
  check_bool "no 0-2" false (Graph.mem_edge h 0 2)

let test_relabel_rejects () =
  (try
     ignore (Graph.relabel (Builders.path 3) [| 0; 0; 1 |]);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_components () =
  let g = Graph.disjoint_union (Builders.path 2) (Builders.path 3) in
  Alcotest.(check (list int_list)) "components" [ [ 0; 1 ]; [ 2; 3; 4 ] ]
    (Graph.components g);
  Alcotest.(check int_list) "component_of" [ 2; 3; 4 ] (Graph.component_of g 3)

let test_predicates () =
  check_bool "C4 is cycle" true (Graph.is_cycle (c4 ()));
  check_bool "P4 not cycle" false (Graph.is_cycle (p4 ()));
  check_bool "P4 is path" true (Graph.is_path_graph (p4 ()));
  check_bool "C4 not path" false (Graph.is_path_graph (c4 ()));
  check_bool "star is tree" true (Graph.is_tree (Builders.star 3));
  check_bool "C4 not tree" false (Graph.is_tree (c4 ()));
  check_bool "single node is path" true (Graph.is_path_graph (Graph.empty 1));
  check_bool "disconnected not tree" false
    (Graph.is_tree (Graph.disjoint_union (Builders.path 2) (Builders.path 2)))

let test_connectivity () =
  check_bool "P4 connected" true (Graph.is_connected (p4 ()));
  check_bool "empty 2 disconnected" false (Graph.is_connected (Graph.empty 2));
  check_bool "single connected" true (Graph.is_connected (Graph.empty 1))

let test_equal_compare () =
  check_bool "equal" true (Graph.equal (p4 ()) (Builders.path 4));
  check_bool "not equal" false (Graph.equal (p4 ()) (c4 ()));
  check_bool "compare consistent" true (Graph.compare (p4 ()) (p4 ()) = 0)

let test_isomorphic () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let h = Graph.of_edges 4 [ (3, 2); (2, 0); (0, 1) ] in
  check_bool "paths isomorphic" true (Graph.isomorphic g h);
  check_bool "P4 vs C4" false (Graph.isomorphic g (c4 ()));
  check_bool "P4 vs star" false (Graph.isomorphic g (Builders.star 3));
  check_bool "petersen self" true
    (Graph.isomorphic (Builders.petersen ()) (Builders.petersen ()))

let test_fold_iter () =
  let g = c4 () in
  check_int "fold_nodes" 6 (Graph.fold_nodes ( + ) g 0);
  check_int "fold_edges count" 4 (Graph.fold_edges (fun _ _ acc -> acc + 1) g 0);
  let count = ref 0 in
  Graph.iter_edges (fun _ _ -> incr count) g;
  check_int "iter_edges" 4 !count

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_to_dot () =
  let dot = Graph.to_dot ~name:"T" (Builders.path 2) in
  check_bool "has header" true (contains ~needle:"graph T" dot);
  check_bool "has edge" true (contains ~needle:"0 -- 1" dot)

let suite =
  [
    case "empty" test_empty;
    case "empty zero" test_empty_zero;
    case "of_edges basic" test_of_edges_basic;
    case "of_edges dedup" test_of_edges_dedup;
    case "of_edges rejects loops" test_of_edges_rejects_loop;
    case "of_edges rejects out-of-range" test_of_edges_rejects_range;
    case "add/remove edge" test_add_remove;
    case "neighbors sorted" test_neighbors_sorted;
    case "degree statistics" test_degrees;
    case "disjoint union" test_disjoint_union;
    case "induced subgraph" test_induced;
    case "relabel" test_relabel;
    case "relabel rejects non-permutation" test_relabel_rejects;
    case "components" test_components;
    case "shape predicates" test_predicates;
    case "connectivity" test_connectivity;
    case "equality" test_equal_compare;
    case "isomorphism" test_isomorphic;
    case "folds and iterators" test_fold_iter;
    case "dot output" test_to_dot;
  ]
