open Lcp_graph
open Helpers

let test_is_walk () =
  let g = Builders.path 4 in
  check_bool "path walk" true (Walks.is_walk g [ 0; 1; 2; 3 ]);
  check_bool "backtracking still a walk" true (Walks.is_walk g [ 0; 1; 0 ]);
  check_bool "jump" false (Walks.is_walk g [ 0; 2 ]);
  check_bool "empty" false (Walks.is_walk g [])

let test_is_closed_walk () =
  let g = c4 () in
  check_bool "C4 tour" true (Walks.is_closed_walk g [ 0; 1; 2; 3 ]);
  check_bool "open" false (Walks.is_closed_walk g [ 0; 1; 2 ]);
  check_bool "2-walk" true (Walks.is_closed_walk g [ 0; 1 ]);
  check_bool "singleton" false (Walks.is_closed_walk g [ 0 ])

let test_non_backtracking () =
  let g = c6 () in
  check_bool "cycle tour" true (Walks.is_non_backtracking g [ 0; 1; 2; 3; 4; 5 ]);
  check_bool "spike backtracks" false
    (Walks.is_non_backtracking g [ 0; 1; 0; 5; 4; 3; 2; 1 ]);
  check_bool "2-walk backtracks" false (Walks.is_non_backtracking g [ 0; 1 ])

let test_nb_search () =
  let g = c5 () in
  (match Walks.non_backtracking_closed_walk g ~start:0 ~len:5 with
  | Some w ->
      check_bool "closed" true (Walks.is_closed_walk g w);
      check_bool "nb" true (Walks.is_non_backtracking g w);
      check_int "length" 5 (List.length w)
  | None -> Alcotest.fail "C5 tour exists");
  check_bool "no length-3 in C5" true
    (Walks.non_backtracking_closed_walk g ~start:0 ~len:3 = None);
  check_bool "no length-4 in C5" true
    (Walks.non_backtracking_closed_walk g ~start:0 ~len:4 = None);
  let p = Builders.path 4 in
  check_bool "paths have none" true
    (Walks.non_backtracking_closed_walk p ~start:1 ~len:4 = None)

let test_nb_search_theta () =
  let g = Builders.theta 2 2 2 in
  match Walks.non_backtracking_closed_walk g ~start:0 ~len:4 with
  | Some w -> check_bool "4-cycle found" true (Walks.is_non_backtracking g w)
  | None -> Alcotest.fail "theta(2,2,2) has 4-cycles"

let test_closed_walk_around_cycle () =
  let w = Walks.closed_walk_around_cycle (c5 ()) [ 0; 1; 2; 3; 4 ] 2 in
  Alcotest.(check int_list) "rotated" [ 2; 3; 4; 0; 1 ] w

let test_splice () =
  let g = c6 () in
  let tour = [ 0; 1; 2; 3; 4; 5 ] in
  let detour = [ 2; 3 ] in
  (* the closed walk 2 -> 3 -> 2 in list-without-repeat form *)
  check_bool "detour closed" true (Walks.is_closed_walk g detour);
  let spliced = Walks.splice tour 2 detour in
  check_int "length adds" (6 + 2) (List.length spliced);
  check_bool "still closed" true (Walks.is_closed_walk g spliced);
  Alcotest.(check int_list) "structure" [ 0; 1; 2; 3; 2; 3; 4; 5 ] spliced

let test_splice_rejects () =
  (try
     ignore (Walks.splice [ 0; 1; 2; 3 ] 1 [ 0; 1 ]);
     Alcotest.fail "expected mismatch failure"
   with Invalid_argument _ -> ())

let test_parity () =
  check_bool "odd" true (Walks.parity [ 0; 1; 2 ] = `Odd);
  check_bool "even" true (Walks.parity [ 0; 1; 2; 3 ] = `Even)

let test_concat () =
  Alcotest.(check int_list) "joined" [ 0; 1; 2; 3 ]
    (Walks.concat_path_walk [ 0; 1; 2 ] [ 2; 3 ]);
  (try
     ignore (Walks.concat_path_walk [ 0; 1 ] [ 2; 3 ]);
     Alcotest.fail "expected mismatch failure"
   with Invalid_argument _ -> ())

let suite =
  [
    case "is_walk" test_is_walk;
    case "is_closed_walk" test_is_closed_walk;
    case "non-backtracking predicate" test_non_backtracking;
    case "nb closed walk search" test_nb_search;
    case "nb search in theta" test_nb_search_theta;
    case "closed walk around a cycle" test_closed_walk_around_cycle;
    case "splice" test_splice;
    case "splice rejects bad insert" test_splice_rejects;
    case "parity" test_parity;
    case "concat path walk" test_concat;
  ]
