open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let trivial = D_trivial.suite ~k:2

let build_extractor () =
  let insts =
    List.filter_map
      (fun g -> Decoder.certify trivial (Instance.make g))
      [ Builders.path 4; Builders.path 5; Builders.cycle 4; Builders.cycle 6 ]
  in
  match Extractor.of_verdict (Hiding.check ~k:2 trivial.Decoder.dec insts) with
  | Some ex -> (ex, insts)
  | None -> Alcotest.fail "expected colorable verdict"

let test_extract_proper () =
  let ex, insts = build_extractor () in
  List.iter
    (fun inst ->
      let colors = Extractor.extract ex inst in
      check_bool "no failures" true (Array.for_all (fun c -> c >= 0) colors);
      check_bool "proper" true (Coloring.is_proper inst.Instance.graph colors);
      check_bool "succeeds" true (Extractor.extraction_succeeds ex inst);
      check_bool "fraction 1.0" true (Extractor.success_fraction ex inst = 1.0);
      check_bool "proper_on" true (Extractor.proper_on ex inst inst.Instance.graph))
    insts

let test_unknown_views_fail () =
  let ex, _ = build_extractor () in
  (* an instance with junk labels: views unknown to V *)
  let stranger =
    Instance.make (Builders.path 4) ~labels:(Array.make 4 "junk")
  in
  let colors = Extractor.extract ex stranger in
  check_bool "all unknown" true (Array.for_all (fun c -> c = -1) colors);
  check_bool "fails" false (Extractor.extraction_succeeds ex stranger);
  check_int "all nodes failing" 4 (List.length (Extractor.failure_nodes ex stranger));
  check_bool "fraction 0" true (Extractor.success_fraction ex stranger = 0.0)

let test_of_coloring_validates () =
  let insts = [ certify_exn trivial (Builders.path 4) ] in
  let nbhd = Neighborhood.build trivial.Decoder.dec insts in
  let bad = Array.make (Neighborhood.order nbhd) 0 in
  if Neighborhood.size nbhd > 0 then (
    try
      ignore (Extractor.of_coloring nbhd bad);
      Alcotest.fail "expected improper coloring failure"
    with Invalid_argument _ -> ())

let test_of_verdict_none_on_hiding () =
  let fam =
    Neighborhood.exhaustive_family D_even_cycle.suite ~graphs:[ Builders.cycle 6 ]
      ~ports:`All ()
  in
  check_bool "no extractor for hiding decoders" true
    (Extractor.of_verdict (Hiding.check ~k:2 D_even_cycle.decoder fam) = None)

let suite =
  [
    case "extraction recovers proper colorings" test_extract_proper;
    case "unknown views fail gracefully" test_unknown_views_fail;
    case "of_coloring validates" test_of_coloring_validates;
    case "no extractor from hiding verdicts" test_of_verdict_none_on_hiding;
  ]
