open Lcp_graph
open Helpers

let test_counts () =
  check_int "graphs on 3" 8 (List.length (Enumerate.all_graphs 3));
  check_int "count formula" 8 (Enumerate.count_graphs 3);
  check_int "graphs on 4" 64 (List.length (Enumerate.all_graphs 4));
  check_int "graphs on 0" 1 (List.length (Enumerate.all_graphs 0));
  check_int "graphs on 1" 1 (List.length (Enumerate.all_graphs 1))

let test_connected () =
  (* labeled connected graphs: 1, 1, 1, 4, 38 for n = 0..4 *)
  check_int "connected on 3" 4 (List.length (Enumerate.connected_graphs 3));
  check_int "connected on 4" 38 (List.length (Enumerate.connected_graphs 4));
  check_bool "all connected" true
    (List.for_all Graph.is_connected (Enumerate.connected_graphs 4))

let test_up_to_iso () =
  (* connected graphs up to isomorphism: 1, 1, 2, 6, 21 for n = 1..5 *)
  check_int "iso classes n=3" 2 (List.length (Enumerate.connected_up_to_iso 3));
  check_int "iso classes n=4" 6 (List.length (Enumerate.connected_up_to_iso 4));
  check_int "iso classes n=5" 21 (List.length (Enumerate.connected_up_to_iso 5))

let test_up_to_iso_distinct () =
  let reps = Enumerate.connected_up_to_iso 4 in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  check_bool "pairwise non-isomorphic" true
    (List.for_all (fun (a, b) -> not (Graph.isomorphic a b)) (pairs reps))

let test_bipartite_split () =
  let all = Enumerate.connected_up_to_iso 4 in
  let b = Enumerate.bipartite all and nb = Enumerate.non_bipartite all in
  check_int "partition" (List.length all) (List.length b + List.length nb);
  (* non-bipartite connected on 4 nodes up to iso: C3+pendant, C4+chord
     (diamond), K4, C3 alone is n=3 — count is 3 *)
  check_int "non-bipartite classes" 3 (List.length nb)

let test_iter_matches_list () =
  let count = ref 0 in
  Enumerate.iter_graphs 3 (fun _ -> incr count);
  check_int "iter count" 8 !count

let suite =
  [
    case "raw counts" test_counts;
    case "connected counts" test_connected;
    case "iso class counts" test_up_to_iso;
    case "iso classes pairwise distinct" test_up_to_iso_distinct;
    case "bipartite split" test_bipartite_split;
    case "iter matches list" test_iter_matches_list;
  ]
