open Lcp_graph
open Helpers

(* re-verify an escape path against the definition directly *)
let escape_valid g ~r ~u path =
  List.length path = r + 1
  && Walks.is_walk g path
  &&
  let targets = Metrics.ball g u r in
  List.for_all
    (fun w ->
      let dw = Metrics.bfs_dist g w in
      let rec increasing = function
        | a :: (b :: _ as rest) -> dw.(b) > dw.(a) && increasing rest
        | _ -> true
      in
      increasing path)
    targets

let test_escape_path_valid () =
  let g = Builders.cycle 9 in
  match Forgetful.escape_path g ~r:1 ~v:0 ~u:1 with
  | Some p ->
      check_bool "satisfies the definition" true (escape_valid g ~r:1 ~u:1 p);
      check_bool "starts at v" true (List.hd p = 0)
  | None -> Alcotest.fail "C9 is 1-forgetful"

let test_escape_path_none () =
  let g = Builders.path 4 in
  (* arriving at the leaf 0 from 1: no escape *)
  check_bool "leaf cannot escape" true (Forgetful.escape_path g ~r:1 ~v:0 ~u:1 = None)

let test_escape_requires_edge () =
  (try
     ignore (Forgetful.escape_path (Builders.path 4) ~r:1 ~v:0 ~u:2);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_check_witnesses () =
  let g = Builders.theta 4 4 4 in
  match Forgetful.check g ~r:1 with
  | Forgetful.Forgetful ws ->
      check_int "one witness per directed edge" (2 * Graph.size g) (List.length ws);
      check_bool "all witnesses valid" true
        (List.for_all
           (fun { Forgetful.v; u; escape } ->
             List.hd escape = v && escape_valid g ~r:1 ~u escape)
           ws)
  | Forgetful.Not_forgetful _ -> Alcotest.fail "theta(4,4,4) is 1-forgetful"

let test_check_counterexample () =
  match Forgetful.check (Builders.path 5) ~r:1 with
  | Forgetful.Not_forgetful { v; u } ->
      check_bool "counterexample is an edge" true
        (Graph.mem_edge (Builders.path 5) v u)
  | Forgetful.Forgetful _ -> Alcotest.fail "paths are not 1-forgetful"

let test_family_facts () =
  check_bool "C9" true (Forgetful.is_r_forgetful (Builders.cycle 9) ~r:1);
  check_bool "C5 too small" false (Forgetful.is_r_forgetful (Builders.cycle 5) ~r:1);
  check_bool "cycles never 2-forgetful" false
    (Forgetful.is_r_forgetful (Builders.cycle 20) ~r:2);
  check_bool "torus 7x7" true (Forgetful.is_r_forgetful (Builders.torus 7 7) ~r:1);
  check_bool "K5" false (Forgetful.is_r_forgetful (Builders.complete 5) ~r:1);
  check_bool "watermelon[6;6]" true
    (Forgetful.is_r_forgetful (Builders.watermelon [ 6; 6 ]) ~r:1)

let test_max_radius () =
  check_int "cycle max radius" 1 (Forgetful.max_forgetful_radius (Builders.cycle 12));
  check_int "path max radius" 0 (Forgetful.max_forgetful_radius (Builders.path 6));
  check_int "clique max radius" 0 (Forgetful.max_forgetful_radius (Builders.complete 4))

let test_lemma_2_1 () =
  (* the implication holds on every surveyed graph and radius *)
  List.iter
    (fun g ->
      List.iter
        (fun r ->
          check_bool "lemma 2.1" true (Forgetful.lemma_2_1_holds g ~r))
        [ 1; 2; 3 ])
    [ Builders.cycle 9; Builders.theta 4 4 4; Builders.grid 4 4;
      Builders.complete 5; Builders.path 7; Builders.torus 7 7 ]

let test_lemma_2_1_tight () =
  (* C9 is 1-forgetful, so its diameter must be at least 3 *)
  check_bool "diam C9 >= 3" true (Metrics.diameter (Builders.cycle 9) >= 3)

let suite =
  [
    case "escape path satisfies definition" test_escape_path_valid;
    case "leaf has no escape" test_escape_path_none;
    case "escape requires adjacency" test_escape_requires_edge;
    case "witnesses on theta" test_check_witnesses;
    case "counterexample on paths" test_check_counterexample;
    case "family facts" test_family_facts;
    case "max forgetful radius" test_max_radius;
    case "Lemma 2.1 implication" test_lemma_2_1;
    case "Lemma 2.1 tightness on C9" test_lemma_2_1_tight;
  ]
