open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let dec = D_edge_bit.decoder

let honest n = certify_exn D_edge_bit.suite (Builders.cycle n)

let test_honest_accepted () =
  List.iter
    (fun n -> check_bool "accepted" true (Decoder.accepts_all dec (honest n)))
    [ 4; 6; 8; 10 ]

let test_radius () = check_int "two rounds" 2 dec.Decoder.radius

let test_one_bit () =
  let i = honest 8 in
  check_bool "single character certificates" true
    (Array.for_all (fun s -> String.length s = 1) i.Instance.labels)

let test_prover_refuses () =
  check_bool "odd ring" true (D_edge_bit.prover (Instance.make (c5 ())) = None);
  check_bool "path" true (D_edge_bit.prover (Instance.make (Builders.path 5)) = None)

let test_flip_detected () =
  (* flipping one bit breaks the alternation system in some window *)
  let i = honest 6 in
  let lab = Array.copy i.Instance.labels in
  lab.(2) <- (if lab.(2) = "0" then "1" else "0");
  check_bool "tampering caught" false
    (Decoder.accepts_all dec (Instance.with_labels i lab))

let test_junk_rejected () =
  let i = honest 4 in
  let lab = Array.copy i.Instance.labels in
  lab.(1) <- Decoder.junk;
  let verdicts = Decoder.run dec (Instance.with_labels i lab) in
  check_bool "neighborhood rejects" false (Array.for_all (fun b -> b) verdicts)

let test_degree_enforced () =
  (* on a path, interior windows see degree-1 interior nodes: reject *)
  let i = Instance.make (Builders.path 5) ~labels:(Array.make 5 "0") in
  check_bool "non-cycles rejected" false
    (Array.for_all (fun b -> b) (Decoder.run dec i))

let test_soundness_c7_all_ports () =
  let g = Builders.cycle 7 in
  check_bool "C7 never convinced (all ports)" true
    (List.for_all
       (fun prt ->
         Prover.find_accepted dec ~alphabet:D_edge_bit.alphabet
           (Instance.make g ~ports:prt)
         = None)
       (Port.enumerate g))

let test_random_ports_completeness () =
  let r = rng () in
  for _ = 1 to 5 do
    let g = Builders.cycle 8 in
    let inst = Instance.make g ~ports:(Port.random r g) in
    match D_edge_bit.prover inst with
    | Some lab ->
        check_bool "accepted under random ports" true
          (Decoder.accepts_all dec (Instance.with_labels inst lab))
    | None -> Alcotest.fail "prover works for all ports"
  done

let test_hiding () =
  let fam =
    Neighborhood.exhaustive_family D_edge_bit.suite ~graphs:[ Builders.cycle 6 ]
      ~ports:`All ()
  in
  check_bool "hiding" true (Hiding.is_hiding_on ~k:2 dec fam)

let suite =
  [
    case "honest certificates accepted" test_honest_accepted;
    case "two rounds" test_radius;
    case "one-bit certificates" test_one_bit;
    case "prover refuses non-promise" test_prover_refuses;
    case "bit flip detected" test_flip_detected;
    case "junk rejected" test_junk_rejected;
    case "degree enforced" test_degree_enforced;
    case "C7 soundness over all ports" test_soundness_c7_all_ports;
    case "random ports completeness" test_random_ports_completeness;
    case "hiding" test_hiding;
  ]
