open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let dec = D_spanning.decoder

let test_honest_accepted () =
  List.iter
    (fun g ->
      let i = certify_exn D_spanning.suite g in
      check_bool "accepted" true (Decoder.accepts_all dec i))
    [ Builders.path 5; Builders.cycle 6; Builders.grid 3 3; Builders.star 4;
      Graph.disjoint_union (Builders.path 3) (Builders.cycle 4) ]

let test_prover_refuses_odd () =
  check_bool "C5" true (D_spanning.prover (Instance.make (c5 ())) = None)

let test_root_identity_checked () =
  (* a lone node claiming distance 0 must carry the root id *)
  let i = Instance.make (Graph.empty 1) ~labels:[| "0:5:0" |] in
  check_bool "foreign root rejected" false ((Decoder.run dec i).(0));
  let ok = Instance.make (Graph.empty 1) ~labels:[| "0:1:0" |] in
  check_bool "own root accepted" true ((Decoder.run dec ok).(0))

let test_distance_layers () =
  (* neighbors at equal claimed distance are impossible in a bipartite
     certificate *)
  let i =
    Instance.make (Builders.path 3)
      ~labels:[| "0:1:0"; "1:1:1"; "0:1:1" |]
  in
  check_bool "equal layers rejected" false ((Decoder.run dec i).(2))

let test_no_parent_rejected () =
  (* positive distance with no closer neighbor *)
  let i =
    Instance.make (Builders.path 2) ~labels:[| "0:1:2"; "1:1:3" |]
  in
  check_bool "orphan rejected" false ((Decoder.run dec i).(0))

let test_color_clash () =
  let i =
    Instance.make (Builders.path 2) ~labels:[| "0:1:0"; "0:1:1" |]
  in
  check_bool "same colors rejected" false ((Decoder.run dec i).(0))

let test_root_disagreement () =
  let i =
    Instance.make (Builders.path 3)
      ~labels:[| "0:1:0"; "1:1:1"; "0:3:2" |]
  in
  check_bool "split roots rejected" false ((Decoder.run dec i).(1))

let test_strong_soundness_random () =
  check_bool "randomized strong soundness" true
    (Checker.is_pass
       (Checker.strong_soundness_random D_spanning.suite ~k:2 ~trials:500 (rng ())
          [ Instance.make (Builders.cycle 5); Instance.make (k4 ()) ]))

let suite =
  [
    case "honest certificates accepted" test_honest_accepted;
    case "prover refuses odd cycles" test_prover_refuses_odd;
    case "root identity" test_root_identity_checked;
    case "distance layering" test_distance_layers;
    case "orphan distances rejected" test_no_parent_rejected;
    case "color clash rejected" test_color_clash;
    case "root disagreement rejected" test_root_disagreement;
    case "randomized strong soundness" test_strong_soundness_random;
  ]
