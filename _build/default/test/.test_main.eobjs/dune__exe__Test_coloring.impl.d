test/test_coloring.ml: Alcotest Array Builders Coloring Graph Helpers Lcp_graph List
