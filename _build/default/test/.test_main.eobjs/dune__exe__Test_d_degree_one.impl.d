test/test_d_degree_one.ml: Alcotest Array Builders Checker Coloring D_degree_one Decoder Helpers Instance Labeling Lcp Lcp_graph Lcp_local List View
