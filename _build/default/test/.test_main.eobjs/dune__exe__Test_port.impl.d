test/test_port.ml: Alcotest Builders Helpers Lcp_graph Lcp_local List Port Stdlib
