test/test_certificate.ml: Alcotest Certificate Helpers Lcp
