test/test_quantified.ml: Array Builders Coloring D_degree_one D_even_cycle D_trivial Decoder Enumerate Graph Helpers Instance Lcp Lcp_graph Lcp_local List Neighborhood Quantified
