test/test_d_trivial.ml: Alcotest Array Builders Coloring D_trivial Decoder Graph Helpers Instance Lcp Lcp_graph Lcp_local View
