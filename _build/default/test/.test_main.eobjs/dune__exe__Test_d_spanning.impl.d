test/test_d_spanning.ml: Array Builders Checker D_spanning Decoder Graph Helpers Instance Lcp Lcp_graph Lcp_local List
