test/test_async.ml: Array Async_runner Builders Graph Helpers Instance Lcp_graph Lcp_local List Sync_runner
