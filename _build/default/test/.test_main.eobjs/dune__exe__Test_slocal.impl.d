test/test_slocal.ml: Alcotest Array Builders Coloring Graph Helpers Instance Lcp_graph Lcp_local List Local_algo Slocal View
