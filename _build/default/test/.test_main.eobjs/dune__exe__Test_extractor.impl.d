test/test_extractor.ml: Alcotest Array Builders Coloring D_even_cycle D_trivial Decoder Extractor Helpers Hiding Instance Lcp Lcp_graph Lcp_local List Neighborhood
