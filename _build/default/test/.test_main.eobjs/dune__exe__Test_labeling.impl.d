test/test_labeling.ml: Alcotest Array Builders Helpers Labeling Lcp_graph Lcp_local List Stdlib
