test/test_d_shatter.ml: Alcotest Array Builders D_shatter Decoder Graph Helpers Instance Lcp Lcp_graph Lcp_local
