test/test_decoder.ml: Alcotest Array Builders D_degree_one D_even_cycle D_shatter D_spanning D_trivial D_union D_watermelon Decoder Graph Helpers Instance Lcp Lcp_graph Lcp_local List Local_algo View
