test/test_ramsey.ml: Alcotest Array Builders Checker D_trivial Decoder Hashtbl Helpers Instance Lcp Lcp_graph Lcp_local List Ramsey Stdlib View
