test/test_d_hidden_leaf.ml: Alcotest Array Builders Checker D_degree_one D_hidden_leaf Decoder Helpers Instance Lcp Lcp_graph Lcp_local List Prover View
