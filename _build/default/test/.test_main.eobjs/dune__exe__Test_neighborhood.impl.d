test/test_neighborhood.ml: Alcotest Array Builders Coloring D_even_cycle D_trivial Decoder Helpers Ident Instance Lcp Lcp_graph Lcp_local List Neighborhood String View
