test/test_d_even_cycle.ml: Alcotest Array Builders Certificate D_even_cycle Decoder Helpers Instance Lcp Lcp_graph Lcp_local List Port Prover View
