test/test_ident.ml: Alcotest Array Builders Helpers Ident Lcp_graph Lcp_local List
