test/helpers.ml: Alcotest Builders Graph Instance Lcp Lcp_graph Lcp_local Random View
