test/test_forgetful.ml: Alcotest Array Builders Forgetful Graph Helpers Lcp_graph List Metrics Walks
