test/test_report.ml: Format Helpers Lcp Report Test_graph
