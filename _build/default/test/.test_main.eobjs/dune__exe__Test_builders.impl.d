test/test_builders.ml: Alcotest Builders Coloring Graph Helpers Lcp_graph Metrics
