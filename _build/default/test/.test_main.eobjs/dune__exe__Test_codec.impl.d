test/test_codec.ml: Alcotest Builders Codec D_degree_one D_shatter Decoder Filename Graph Helpers Instance Json Lcp Lcp_graph Lcp_local List Option Report Result Sys
