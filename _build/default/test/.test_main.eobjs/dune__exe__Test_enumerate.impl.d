test/test_enumerate.ml: Enumerate Graph Helpers Lcp_graph List
