test/test_hiding.ml: Alcotest Builders Coloring D_even_cycle D_trivial Decoder Format Graph Helpers Hiding Instance Lcp Lcp_graph Lcp_local List Neighborhood String
