test/test_sync.ml: Array Builders Helpers Instance Lcp_graph Lcp_local List Sync_runner
