test/test_graph.ml: Alcotest Array Builders Graph Helpers Lcp_graph List String
