test/test_d_edge_bit.ml: Alcotest Array Builders D_edge_bit Decoder Helpers Hiding Instance Lcp Lcp_graph Lcp_local List Neighborhood Port Prover String
