test/test_json.ml: Alcotest Helpers Json Lcp List Result
