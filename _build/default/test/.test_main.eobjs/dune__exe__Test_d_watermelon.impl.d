test/test_d_watermelon.ml: Alcotest Array Builders Certificate D_watermelon Decoder Helpers Instance Lcp Lcp_graph Lcp_local List Stdlib
