test/test_resilient.ml: Array Builders D_degree_one D_trivial Decoder Graph Helpers Instance Lcp Lcp_graph Lcp_local List Option Printf Resilient String
