test/test_local_algo.ml: Alcotest Array Builders Coloring Helpers Instance Lcp_graph Lcp_local Local_algo View
