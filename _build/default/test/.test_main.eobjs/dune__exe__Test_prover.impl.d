test/test_prover.ml: Alcotest Array Builders D_degree_one D_trivial Decoder Helpers Instance Labeling Lcp Lcp_graph Lcp_local List Prover Stdlib
