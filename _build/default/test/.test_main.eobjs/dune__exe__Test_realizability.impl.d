test/test_realizability.ml: Alcotest Array Builders Coloring D_degree_one Decoder Enumerate Graph Helpers Ident Instance Lcp Lcp_graph Lcp_local List Neighborhood Option Realizability String View
