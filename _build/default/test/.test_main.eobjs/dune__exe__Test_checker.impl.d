test/test_checker.ml: Alcotest Builders Checker D_even_cycle D_trivial Decoder Format Graph Helpers Instance Labeling Lcp Lcp_graph Lcp_local String View
