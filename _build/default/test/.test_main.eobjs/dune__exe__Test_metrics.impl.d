test/test_metrics.ml: Alcotest Array Builders Graph Helpers Lcp_graph List Metrics Walks
