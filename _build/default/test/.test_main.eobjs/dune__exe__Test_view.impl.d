test/test_view.ml: Alcotest Array Builders Graph Helpers Ident Instance Lcp_graph Lcp_local List Option Printf String View
