test/test_nb_walks.ml: Alcotest Array Builders D_trivial Decoder Helpers Instance Lcp Lcp_graph Lcp_local List Metrics Nb_walks Neighborhood View Walks
