test/test_experiments.ml: Alcotest Experiments Helpers Lcp List Report
