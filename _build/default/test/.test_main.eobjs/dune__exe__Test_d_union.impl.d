test/test_d_union.ml: Alcotest Array Builders D_even_cycle D_union Decoder Helpers Instance Lcp Lcp_graph Lcp_local List String
