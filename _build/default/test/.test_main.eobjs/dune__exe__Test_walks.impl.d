test/test_walks.ml: Alcotest Builders Helpers Lcp_graph List Walks
