test/test_instance.ml: Alcotest Array Builders Helpers Ident Instance Lcp_graph Lcp_local
