open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let res = Resilient.wrap (D_trivial.suite ~k:2)

let certified g = Option.get (Decoder.certify res (Instance.make g))

let test_no_erasure () =
  List.iter
    (fun g ->
      check_bool "accepted" true (Decoder.accepts_all res.Decoder.dec (certified g)))
    [ Builders.path 5; Builders.cycle 6; Builders.star 3; Builders.grid 2 3 ]

let test_every_single_erasure () =
  let g = Builders.cycle 6 in
  let inst = certified g in
  List.iter
    (fun v ->
      check_bool
        (Printf.sprintf "erasure at %d survived" v)
        true
        (Decoder.accepts_all res.Decoder.dec (Resilient.erase inst ~nodes:[ v ])))
    (Graph.nodes g)

let test_independent_erasures () =
  let g = Builders.cycle 8 in
  let inst = certified g in
  let erased = [ 0; 2; 4; 6 ] in
  check_bool "reconstructible" true (Resilient.reconstructible g ~erased);
  check_bool "accepted" true
    (Decoder.accepts_all res.Decoder.dec (Resilient.erase inst ~nodes:erased))

let test_adjacent_erasures_still_ok_on_cycle () =
  (* two adjacent erased nodes on a cycle: each keeps its other
     neighbor, so reconstruction still succeeds *)
  let g = Builders.cycle 6 in
  let inst = certified g in
  check_bool "adjacent pair survives" true
    (Decoder.accepts_all res.Decoder.dec (Resilient.erase inst ~nodes:[ 0; 1 ]))

let test_isolated_component_fails () =
  (* erase both nodes of a K2 component: nothing can reconstruct them *)
  let g = Graph.disjoint_union (Builders.path 2) (Builders.path 3) in
  let inst = certified g in
  let erased = [ 0; 1 ] in
  check_bool "not reconstructible" false (Resilient.reconstructible g ~erased);
  check_bool "rejected" false
    (Decoder.accepts_all res.Decoder.dec (Resilient.erase inst ~nodes:erased))

let test_disagreeing_backups_rejected () =
  let g = Builders.path 3 in
  let inst = certified g in
  (* node 1 is erased; its two neighbors disagree about its cert *)
  let lab = Array.copy inst.Instance.labels in
  let rewrite_backup s value =
    match String.split_on_char '|' s with
    | own :: entries ->
        let entries =
          List.map
            (fun e ->
              if String.length e > 1 && e.[0] = 'p' then
                let i = String.index e '=' in
                String.sub e 0 (i + 1) ^ value
              else e)
            entries
        in
        String.concat "|" (own :: entries)
    | [] -> s
  in
  lab.(0) <- rewrite_backup lab.(0) "0";
  lab.(2) <- rewrite_backup lab.(2) "1";
  let tampered = Resilient.erase (Instance.with_labels inst lab) ~nodes:[ 1 ] in
  check_bool "conflicting copies rejected" false
    (Decoder.accepts_all res.Decoder.dec tampered)

let test_lying_backup_rejected () =
  (* backups about a non-erased node must match its certificate *)
  let g = Builders.path 2 in
  let inst = certified g in
  let lab = Array.copy inst.Instance.labels in
  lab.(0) <-
    (match String.split_on_char '|' lab.(0) with
    | own :: _ -> own ^ "|p1=liar"
    | [] -> assert false);
  check_bool "lie detected" false
    (Decoder.accepts_all res.Decoder.dec (Instance.with_labels inst lab))

let test_wrap_preserves_soundness_shape () =
  (* erasing everything is never unanimously accepted on a non-trivial
     graph (no information left to verify a coloring) *)
  let g = Builders.cycle 4 in
  let inst = certified g in
  check_bool "total erasure rejected" false
    (Decoder.accepts_all res.Decoder.dec
       (Resilient.erase inst ~nodes:(Graph.nodes g)))

let test_wrap_other_base () =
  (* wrapping the degree-one decoder also works *)
  let res1 = Resilient.wrap D_degree_one.suite in
  let inst = Option.get (Decoder.certify res1 (Instance.make (Builders.path 5))) in
  check_bool "base accepted" true (Decoder.accepts_all res1.Decoder.dec inst);
  check_bool "erasure survived" true
    (Decoder.accepts_all res1.Decoder.dec (Resilient.erase inst ~nodes:[ 2 ]))

let suite =
  [
    case "no erasure" test_no_erasure;
    case "every single erasure" test_every_single_erasure;
    case "independent erasures" test_independent_erasures;
    case "adjacent erasures on a cycle" test_adjacent_erasures_still_ok_on_cycle;
    case "isolated component fails" test_isolated_component_fails;
    case "disagreeing backups rejected" test_disagreeing_backups_rejected;
    case "lying backup rejected" test_lying_backup_rejected;
    case "total erasure rejected" test_wrap_preserves_soundness_shape;
    case "wrapping other decoders" test_wrap_other_base;
  ]
