open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let trivial = D_trivial.suite ~k:2

let test_build_basic () =
  let i = certify_exn trivial (Builders.path 4) in
  let nbhd = Neighborhood.build trivial.Decoder.dec [ i ] in
  (* anonymous mode: P4 colored 0101 has views: end-0, end-1?, interior
     01|0... count classes rather than guess: at least 2, at most 4 *)
  check_bool "views interned" true (Neighborhood.order nbhd >= 2);
  check_bool "has edges" true (Neighborhood.size nbhd >= 1);
  check_bool "bipartite" true (Neighborhood.is_k_colorable nbhd ~k:2)

let test_build_skips_rejected () =
  let bad =
    Instance.make (Builders.path 4) ~labels:[| "0"; "0"; "1"; "0" |]
  in
  let nbhd = Neighborhood.build trivial.Decoder.dec [ bad ] in
  check_int "nothing interned" 0 (Neighborhood.order nbhd)

let test_build_skips_non_bipartite () =
  (* even a unanimously-accepted labeling of a no-instance must not
     enter V: only yes-instances count *)
  let all = Decoder.make ~name:"all" ~radius:1 ~anonymous:true (fun _ -> true) in
  let nbhd = Neighborhood.build all [ Instance.make (c5 ()) ] in
  check_int "no-instance excluded" 0 (Neighborhood.order nbhd)

let test_dedup_across_instances () =
  let i1 = certify_exn trivial (Builders.path 4) in
  let nbhd1 = Neighborhood.build trivial.Decoder.dec [ i1 ] in
  let nbhd2 = Neighborhood.build trivial.Decoder.dec [ i1; i1 ] in
  check_int "same classes" (Neighborhood.order nbhd1) (Neighborhood.order nbhd2)

let test_find () =
  let i = certify_exn trivial (Builders.path 4) in
  let nbhd = Neighborhood.build trivial.Decoder.dec [ i ] in
  let v = View.extract i ~r:1 1 in
  check_bool "present" true (Neighborhood.find nbhd v <> None);
  let foreign = View.extract (Instance.make (Builders.path 4) ~labels:[| "junk"; "junk"; "junk"; "junk" |]) ~r:1 1 in
  check_bool "absent" true (Neighborhood.find nbhd foreign = None)

let test_modes () =
  let i1 = certify_exn trivial (Builders.path 4) in
  let ids = Ident.of_array [| 4; 3; 2; 1 |] in
  let i2 = Instance.with_ids i1 ids in
  (* identified mode distinguishes the re-identified copies, anonymous
     does not *)
  let anon = Neighborhood.build ~mode:Neighborhood.Anonymous trivial.Decoder.dec [ i1; i2 ] in
  let ident = Neighborhood.build ~mode:Neighborhood.Identified trivial.Decoder.dec [ i1; i2 ] in
  check_bool "identified has more classes" true
    (Neighborhood.order ident > Neighborhood.order anon)

let test_sources () =
  let i = certify_exn trivial (Builders.path 4) in
  let nbhd = Neighborhood.build trivial.Decoder.dec [ i; i ] in
  let total =
    Array.fold_left (fun acc l -> acc + List.length l) 0 nbhd.Neighborhood.sources
  in
  check_int "every (instance, node) recorded" 8 total

let test_exhaustive_family () =
  let fam =
    Neighborhood.exhaustive_family D_even_cycle.suite ~graphs:[ Builders.cycle 4 ] ()
  in
  (* canonical ports: accepted labelings of C4 = two 2-edge-colorings *)
  check_int "C4 canonical family" 2 (List.length fam);
  let fam_ports =
    Neighborhood.exhaustive_family D_even_cycle.suite ~graphs:[ Builders.cycle 4 ]
      ~ports:`All ()
  in
  check_int "16 port assignments x 2" 32 (List.length fam_ports);
  check_bool "all accepted" true
    (List.for_all (Decoder.accepts_all D_even_cycle.decoder) fam_ports)

let test_exhaustive_family_filters () =
  let fam =
    Neighborhood.exhaustive_family D_even_cycle.suite
      ~graphs:[ Builders.cycle 5; Builders.path 3 ] ()
  in
  check_int "outside promise/bipartite filtered" 0 (List.length fam)

let test_odd_cycle_and_coloring () =
  let fam =
    Neighborhood.exhaustive_family D_even_cycle.suite ~graphs:[ Builders.cycle 6 ]
      ~ports:`All ()
  in
  let nbhd = Neighborhood.build D_even_cycle.decoder fam in
  (match Neighborhood.odd_cycle nbhd with
  | Some c ->
      check_bool "odd" true (List.length c mod 2 = 1);
      check_bool "loop or cycle in V" true
        (match c with
        | [ i ] -> List.mem i nbhd.Neighborhood.loops
        | w -> Coloring.odd_closed_walk_check nbhd.Neighborhood.graph w)
  | None -> Alcotest.fail "expected odd cycle");
  (* independently of the loops, Fig. 6's odd cycle lives in the
     loop-free part of the graph *)
  (match Coloring.odd_cycle nbhd.Neighborhood.graph with
  | Some c ->
      check_bool "plain odd cycle too" true
        (Coloring.odd_closed_walk_check nbhd.Neighborhood.graph c)
  | None -> Alcotest.fail "expected a plain odd cycle as well");
  check_bool "hence no 2-coloring" true (Neighborhood.two_coloring nbhd = None)

let test_to_dot () =
  let i = certify_exn trivial (Builders.path 4) in
  let nbhd = Neighborhood.build trivial.Decoder.dec [ i ] in
  check_bool "dot non-empty" true (String.length (Neighborhood.to_dot nbhd) > 0)

let suite =
  [
    case "build basic" test_build_basic;
    case "rejected instances skipped" test_build_skips_rejected;
    case "non-bipartite instances skipped" test_build_skips_non_bipartite;
    case "dedup across instances" test_dedup_across_instances;
    case "find" test_find;
    case "anonymous vs identified modes" test_modes;
    case "sources recorded" test_sources;
    case "exhaustive family" test_exhaustive_family;
    case "exhaustive family filters" test_exhaustive_family_filters;
    case "odd cycle detection" test_odd_cycle_and_coloring;
    case "dot export" test_to_dot;
  ]

let test_loops_detected () =
  (* an accept-all decoder on a 2-node instance with identical labels:
     the two anonymous views coincide, and they are adjacent - a loop *)
  let all = Decoder.make ~name:"all" ~radius:1 ~anonymous:true (fun _ -> true) in
  let inst = Instance.make (Builders.path 2) ~labels:[| "x"; "x" |] in
  let nbhd = Neighborhood.build ~mode:Neighborhood.Anonymous all [ inst ] in
  check_int "one class" 1 (Neighborhood.order nbhd);
  check_int "looped" 1 (List.length nbhd.Neighborhood.loops);
  check_bool "never k-colorable" false (Neighborhood.is_k_colorable nbhd ~k:5);
  Alcotest.(check (option (list int))) "loop is the odd walk witness"
    (Some [ 0 ]) (Neighborhood.odd_cycle nbhd);
  check_bool "no 2-coloring" true (Neighborhood.two_coloring nbhd = None)

let test_no_loops_with_ids () =
  (* identified mode cannot loop: adjacent centers have distinct ids *)
  let all = Decoder.make ~name:"all" ~radius:1 ~anonymous:false (fun _ -> true) in
  let inst = Instance.make (Builders.path 2) ~labels:[| "x"; "x" |] in
  let nbhd = Neighborhood.build ~mode:Neighborhood.Identified all [ inst ] in
  check_int "no loops" 0 (List.length nbhd.Neighborhood.loops)

let test_view_radius_parameter () =
  let i = certify_exn trivial (Builders.path 5) in
  let nb1 = Neighborhood.build trivial.Decoder.dec [ i ] in
  let nb2 = Neighborhood.build ~view_radius:2 trivial.Decoder.dec [ i ] in
  check_int "records the radius" 2 nb2.Neighborhood.view_radius;
  check_bool "larger radius distinguishes more views" true
    (Neighborhood.order nb2 >= Neighborhood.order nb1)

let suite =
  suite
  @ [
      case "self-loops detected" test_loops_detected;
      case "identified mode cannot loop" test_no_loops_with_ids;
      case "view_radius parameter" test_view_radius_parameter;
    ]
