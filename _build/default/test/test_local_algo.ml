open Lcp_graph
open Lcp_local
open Helpers

let degree_algo =
  Local_algo.make ~name:"degree" ~radius:1 View.center_degree

let id_algo = Local_algo.make ~name:"own-id" ~radius:1 View.center_id

let rank_algo =
  (* order-invariant but not anonymous: is my id the local maximum? *)
  Local_algo.make ~name:"local-max" ~radius:1 (fun v ->
      let m = View.size v in
      let mine = View.center_id v in
      let rec go u = u = m || (View.id v u <= mine && go (u + 1)) in
      go 0)

let test_run_all () =
  let i = Instance.make (Builders.star 3) in
  Alcotest.(check int_list) "degrees" [ 3; 1; 1; 1 ]
    (Array.to_list (Local_algo.run_all degree_algo i))

let test_anonymous_accepts () =
  let i = Instance.make (Builders.cycle 6) in
  check_bool "degree algo anonymous" true
    (Local_algo.is_anonymous_on degree_algo i ~trials:15 (rng ()))

let test_anonymous_rejects () =
  let i = Instance.make (Builders.cycle 6) in
  check_bool "id algo not anonymous" false
    (Local_algo.is_anonymous_on id_algo i ~trials:15 (rng ()))

let test_order_invariant () =
  let i = Instance.make (Builders.path 5) in
  check_bool "rank algo order-invariant" true
    (Local_algo.is_order_invariant_on rank_algo i ~trials:15 (rng ()));
  check_bool "rank algo not anonymous" false
    (Local_algo.is_anonymous_on rank_algo i ~trials:15 (rng ()));
  check_bool "id algo not order-invariant" false
    (Local_algo.is_order_invariant_on id_algo i ~trials:15 (rng ()))

let test_constant () =
  let a = Local_algo.constant ~name:"c" ~radius:1 42 in
  let i = Instance.make (Builders.path 3) in
  Alcotest.(check int_list) "constants" [ 42; 42; 42 ]
    (Array.to_list (Local_algo.run_all a i))

let test_coloring_output () =
  let i = Instance.make (Builders.path 4) in
  let parity =
    Local_algo.make ~name:"id-parity" ~radius:1 (fun v -> View.center_id v mod 2)
  in
  let colors = Local_algo.outputs_as_coloring parity i in
  check_bool "alternates on canonical path" true
    (Coloring.is_proper (Builders.path 4) colors)

let suite =
  [
    case "run_all" test_run_all;
    case "anonymity holds" test_anonymous_accepts;
    case "anonymity refuted" test_anonymous_rejects;
    case "order invariance" test_order_invariant;
    case "constant algo" test_constant;
    case "coloring output" test_coloring_output;
  ]
