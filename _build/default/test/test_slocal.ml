open Lcp_graph
open Lcp_local
open Helpers

let test_greedy_cycle () =
  let inst = Instance.make (Builders.cycle 7) in
  let out = Slocal.execute_canonical (Slocal.greedy_coloring ~radius:1) inst in
  check_bool "proper" true (Coloring.is_proper (Builders.cycle 7) out);
  check_bool "at most 3 colors" true (Array.for_all (fun c -> c <= 2) out)

let test_greedy_any_order () =
  let g = Builders.petersen () in
  let inst = Instance.make g in
  let n = Graph.order g in
  let orders =
    [
      List.init n (fun i -> i);
      List.rev (List.init n (fun i -> i));
      List.init n (fun i -> (i + 3) mod n);
      [ 5; 0; 7; 2; 9; 4; 6; 1; 8; 3 ];
    ]
  in
  List.iter
    (fun order ->
      let out = Slocal.execute (Slocal.greedy_coloring ~radius:1) inst ~order in
      check_bool "proper under arbitrary order" true (Coloring.is_proper g out))
    orders

let test_first_fit_k_stuck () =
  (* first-fit with 2 colors can get stuck on a path under a bad order:
     color both neighbors of a node differently first *)
  let inst = Instance.make (Builders.path 3) in
  let out = Slocal.execute (Slocal.first_fit_k ~radius:1 ~k:2) inst ~order:[ 0; 2; 1 ] in
  (* 0 -> color 0, 2 -> color 0, 1 -> must avoid 0 -> color 1: fine.
     use a path of 5 with a genuinely conflicting order *)
  ignore out;
  let inst5 = Instance.make (Builders.path 5) in
  let out5 =
    Slocal.execute (Slocal.first_fit_k ~radius:1 ~k:2) inst5 ~order:[ 0; 3; 1; 2; 4 ]
  in
  (* 0->0, 3->0, 1->1, 2 sees 1 (color 1) and 3 (color 0): stuck *)
  check_bool "stuck marker" true (Array.exists (fun c -> c = -1) out5)

let test_order_validation () =
  let inst = Instance.make (Builders.path 3) in
  (try
     ignore (Slocal.execute (Slocal.greedy_coloring ~radius:1) inst ~order:[ 0; 1 ]);
     Alcotest.fail "expected order failure"
   with Invalid_argument _ -> ())

let test_of_local_algo () =
  let inst = Instance.make (Builders.star 3) in
  let algo = Local_algo.make ~name:"deg" ~radius:1 View.center_degree in
  let out = Slocal.execute_canonical (Slocal.of_local_algo algo) inst in
  Alcotest.(check int_list) "degrees" [ 3; 1; 1; 1 ] (Array.to_list out)

let test_prev_outputs_visible () =
  (* a node that copies the first processed neighbor's output *)
  let copycat =
    Slocal.make ~name:"copy" ~radius:1 (fun view prev ->
        let g = view.View.graph in
        match List.filter_map (fun w -> prev.(w)) (Graph.neighbors g 0) with
        | c :: _ -> c + 1
        | [] -> 0)
  in
  let inst = Instance.make (Builders.path 4) in
  let out = Slocal.execute copycat inst ~order:[ 0; 1; 2; 3 ] in
  Alcotest.(check int_list) "chained" [ 0; 1; 2; 3 ] (Array.to_list out)

let suite =
  [
    case "greedy on a cycle" test_greedy_cycle;
    case "greedy under arbitrary orders" test_greedy_any_order;
    case "first-fit k can get stuck" test_first_fit_k_stuck;
    case "order validation" test_order_validation;
    case "local algorithms lift" test_of_local_algo;
    case "previous outputs visible" test_prev_outputs_visible;
  ]
