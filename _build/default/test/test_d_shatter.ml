open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let dec = D_shatter.decoder

let test_shatter_point_detection () =
  Alcotest.(check (option int)) "P5 middle shatters" (Some 2)
    (D_shatter.shatter_point (Builders.path 5));
  Alcotest.(check (option int)) "star leaf shatters" (Some 1)
    (D_shatter.shatter_point (Builders.star 3));
  check_bool "P4 none" true (D_shatter.shatter_point (Builders.path 4) = None);
  check_bool "cycles never" true (D_shatter.shatter_point (Builders.cycle 8) = None);
  check_bool "cliques never" true (D_shatter.shatter_point (k4 ()) = None)

let test_encodings_parse () =
  let i =
    Instance.make (Builders.path 5)
      ~labels:
        [|
          D_shatter.encode_type2 ~id:3 ~comp:1 ~color:0;
          D_shatter.encode_type1 ~id:3 ~colors:[ 0; 1 ];
          D_shatter.encode_type0 ~id:3;
          D_shatter.encode_type1 ~id:3 ~colors:[ 0; 1 ];
          D_shatter.encode_type2 ~id:3 ~comp:2 ~color:1;
        |]
  in
  check_bool "hand-built certificates accepted" true (Decoder.accepts_all dec i)

let test_id_disagreement_rejected () =
  let i =
    Instance.make (Builders.path 5)
      ~labels:
        [|
          D_shatter.encode_type2 ~id:3 ~comp:1 ~color:0;
          D_shatter.encode_type1 ~id:3 ~colors:[ 0; 1 ];
          D_shatter.encode_type0 ~id:3;
          D_shatter.encode_type1 ~id:4 ~colors:[ 0; 1 ];
          D_shatter.encode_type2 ~id:3 ~comp:2 ~color:1;
        |]
  in
  check_bool "id mismatch caught" false (Decoder.accepts_all dec i)

let test_type0_id_must_match () =
  (* the shatter point must carry its own identifier *)
  let i =
    Instance.make (Builders.star 2)
      ~labels:
        [|
          D_shatter.encode_type0 ~id:9;
          D_shatter.encode_type1 ~id:9 ~colors:[ 0 ];
          D_shatter.encode_type1 ~id:9 ~colors:[ 0 ];
        |]
  in
  check_bool "foreign id rejected" false ((Decoder.run dec i).(0))

let test_type1_content_agreement () =
  let mk c1 =
    Instance.make (Builders.path 5)
      ~labels:
        [|
          D_shatter.encode_type2 ~id:3 ~comp:1 ~color:0;
          D_shatter.encode_type1 ~id:3 ~colors:[ 0; c1 ];
          D_shatter.encode_type0 ~id:3;
          D_shatter.encode_type1 ~id:3 ~colors:[ 0; 1 ];
          D_shatter.encode_type2 ~id:3 ~comp:2 ~color:1;
        |]
  in
  check_bool "agreeing vectors accepted" true (Decoder.accepts_all dec (mk 1));
  check_bool "disagreeing vectors rejected" false ((Decoder.run dec (mk 0)).(2))

let test_adjacent_type1_rejected () =
  (* two adjacent type-1 nodes: condition 2(a) *)
  let i =
    Instance.make (Builders.path 3)
      ~labels:
        [|
          D_shatter.encode_type1 ~id:2 ~colors:[ 0 ];
          D_shatter.encode_type1 ~id:2 ~colors:[ 0 ];
          D_shatter.encode_type0 ~id:2;
        |]
  in
  check_bool "independence enforced" false ((Decoder.run dec i).(0))

let test_component_color_cross_check () =
  (* a type-2 node whose color contradicts the vector: conditions 2(c)/3(b) *)
  let i =
    Instance.make (Builders.path 5)
      ~labels:
        [|
          D_shatter.encode_type2 ~id:3 ~comp:1 ~color:1; (* vector says 0 *)
          D_shatter.encode_type1 ~id:3 ~colors:[ 0; 1 ];
          D_shatter.encode_type0 ~id:3;
          D_shatter.encode_type1 ~id:3 ~colors:[ 0; 1 ];
          D_shatter.encode_type2 ~id:3 ~comp:2 ~color:1;
        |]
  in
  let v = Decoder.run dec i in
  check_bool "type-2 rejects" false v.(0);
  check_bool "type-1 rejects" false v.(1)

let test_component_number_consistency () =
  (* adjacent type-2 nodes in different components: condition 3(c) *)
  let i =
    Instance.make (Builders.path 6)
      ~labels:
        [|
          D_shatter.encode_type2 ~id:4 ~comp:1 ~color:0;
          D_shatter.encode_type2 ~id:4 ~comp:2 ~color:1;
          D_shatter.encode_type1 ~id:4 ~colors:[ 0; 1 ];
          D_shatter.encode_type0 ~id:4;
          D_shatter.encode_type1 ~id:4 ~colors:[ 0; 1 ];
          D_shatter.encode_type2 ~id:4 ~comp:2 ~color:0;
        |]
  in
  let v = Decoder.run dec i in
  check_bool "component clash" false (v.(0) && v.(1))

let test_out_of_range_component () =
  let i =
    Instance.make (Builders.path 5)
      ~labels:
        [|
          D_shatter.encode_type2 ~id:3 ~comp:7 ~color:0;
          D_shatter.encode_type1 ~id:3 ~colors:[ 0; 1 ];
          D_shatter.encode_type0 ~id:3;
          D_shatter.encode_type1 ~id:3 ~colors:[ 0; 1 ];
          D_shatter.encode_type2 ~id:3 ~comp:2 ~color:1;
        |]
  in
  check_bool "vector bounds enforced" false ((Decoder.run dec i).(1))

let test_prover_on_spider () =
  let g =
    Graph.of_edges 7 [ (0, 1); (0, 2); (0, 3); (1, 4); (2, 5); (3, 6) ]
  in
  let inst = Instance.make g in
  match D_shatter.prover inst with
  | Some lab ->
      check_bool "accepted" true
        (Decoder.accepts_all dec (Instance.with_labels inst lab))
  | None -> Alcotest.fail "spider has shatter points"

let test_prover_refuses () =
  check_bool "no shatter point" true
    (D_shatter.prover (Instance.make (Builders.cycle 6)) = None);
  check_bool "not bipartite" true
    (D_shatter.prover (Instance.make (Builders.friendship 2)) = None)

let test_prover_random_ids () =
  let r = rng () in
  let g = Builders.path 6 in
  let inst = Instance.random r g in
  match D_shatter.prover inst with
  | Some lab ->
      check_bool "accepted under random ids" true
        (Decoder.accepts_all dec (Instance.with_labels inst lab))
  | None -> Alcotest.fail "P6 certifiable"

let suite =
  [
    case "shatter point detection" test_shatter_point_detection;
    case "hand-built certificates accepted" test_encodings_parse;
    case "id disagreement rejected" test_id_disagreement_rejected;
    case "type-0 id verified" test_type0_id_must_match;
    case "type-1 content agreement" test_type1_content_agreement;
    case "adjacent type-1 rejected" test_adjacent_type1_rejected;
    case "color cross-checks" test_component_color_cross_check;
    case "component numbers consistent" test_component_number_consistency;
    case "vector bounds" test_out_of_range_component;
    case "prover on a spider" test_prover_on_spider;
    case "prover refuses non-promise" test_prover_refuses;
    case "prover under random ids" test_prover_random_ids;
  ]
