open Lcp
open Helpers

let roundtrip j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> j' = j
  | Error _ -> false

let test_render () =
  Alcotest.(check string) "object" {|{"a":1,"b":[true,null]}|}
    (Json.to_string (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ]));
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|}
    (Json.to_string (Json.String "a\"b\\c\nd"))

let test_parse_basic () =
  check_bool "int" true (Json.of_string "42" = Ok (Json.Int 42));
  check_bool "negative" true (Json.of_string "-7" = Ok (Json.Int (-7)));
  check_bool "bool" true (Json.of_string "true" = Ok (Json.Bool true));
  check_bool "null" true (Json.of_string "null" = Ok Json.Null);
  check_bool "string" true (Json.of_string {|"hi"|} = Ok (Json.String "hi"));
  check_bool "empty list" true (Json.of_string "[]" = Ok (Json.List []));
  check_bool "empty obj" true (Json.of_string "{}" = Ok (Json.Obj []));
  check_bool "whitespace" true
    (Json.of_string "  [ 1 , 2 ]  " = Ok (Json.List [ Json.Int 1; Json.Int 2 ]))

let test_parse_nested () =
  match Json.of_string {|{"xs":[{"y":1},{"y":2}],"s":"a:b|c"}|} with
  | Ok j ->
      let open Json in
      check_bool "member" true
        (Result.bind (member "s" j) to_str = Ok "a:b|c");
      check_bool "list member" true
        (match Result.bind (member "xs" j) to_list with
        | Ok [ _; second ] -> Result.bind (member "y" second) to_int = Ok 2
        | _ -> false)
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  let bad s = match Json.of_string s with Error _ -> true | Ok _ -> false in
  check_bool "trailing garbage" true (bad "1 2");
  check_bool "unterminated string" true (bad {|"abc|});
  check_bool "floats rejected" true (bad "1.5");
  check_bool "bad literal" true (bad "trux");
  check_bool "unclosed array" true (bad "[1,2");
  check_bool "missing colon" true (bad {|{"a" 1}|})

let test_roundtrips () =
  List.iter
    (fun j -> check_bool "roundtrip" true (roundtrip j))
    [
      Json.Null;
      Json.Int 0;
      Json.Int (-123456);
      Json.String "";
      Json.String "tab\there \"and\" back\\slash";
      Json.List [ Json.Int 1; Json.List []; Json.Obj [] ];
      Json.Obj
        [ ("nested", Json.Obj [ ("deep", Json.List [ Json.Bool false ]) ]);
          ("k", Json.String ":|,{}[]") ];
    ]

let test_pretty_parses () =
  let j =
    Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]); ("b", Json.String "x") ]
  in
  check_bool "pretty output re-parses" true
    (Json.of_string (Json.to_string_pretty j) = Ok j)

let suite =
  [
    case "rendering" test_render;
    case "basic parsing" test_parse_basic;
    case "nested parsing" test_parse_nested;
    case "parse errors" test_parse_errors;
    case "roundtrips" test_roundtrips;
    case "pretty output parses" test_pretty_parses;
  ]
