open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let test_graph_roundtrip () =
  List.iter
    (fun g ->
      match Codec.graph_of_json (Codec.graph_to_json g) with
      | Ok g' -> check_graph "roundtrip" g g'
      | Error e -> Alcotest.fail e)
    [ Graph.empty 0; Graph.empty 3; Builders.petersen (); Builders.grid 3 4;
      Builders.watermelon [ 2; 3; 4 ] ]

let test_graph_bad_json () =
  let bad j = match Codec.graph_of_json j with Error _ -> true | Ok _ -> false in
  check_bool "missing field" true (bad (Json.Obj [ ("order", Json.Int 2) ]));
  check_bool "self loop" true
    (bad
       (Json.Obj
          [ ("order", Json.Int 2);
            ("edges", Json.List [ Json.List [ Json.Int 0; Json.Int 0 ] ]) ]));
  check_bool "out of range" true
    (bad
       (Json.Obj
          [ ("order", Json.Int 2);
            ("edges", Json.List [ Json.List [ Json.Int 0; Json.Int 5 ] ]) ]))

let test_instance_roundtrip () =
  let r = rng () in
  let insts =
    [
      Instance.make (Builders.path 4) ~labels:[| "a:b"; ""; "x|y"; "0" |];
      Instance.random r (Builders.cycle 6);
      Option.get (Decoder.certify D_shatter.suite (Instance.make (Builders.path 5)));
    ]
  in
  List.iter
    (fun inst ->
      match Codec.instance_of_json (Codec.instance_to_json inst) with
      | Ok inst' ->
          check_graph "graph" inst.Instance.graph inst'.Instance.graph;
          check_bool "ports" true (inst.Instance.ports = inst'.Instance.ports);
          check_bool "ids" true (inst.Instance.ids = inst'.Instance.ids);
          check_bool "labels" true (inst.Instance.labels = inst'.Instance.labels)
      | Error e -> Alcotest.fail e)
    insts

let test_verdicts_json () =
  let inst =
    Option.get (Decoder.certify D_degree_one.suite (Instance.make (Builders.path 4)))
  in
  let j = Codec.verdicts_to_json D_degree_one.decoder inst in
  let open Json in
  check_bool "unanimous flag" true
    (Result.bind (member "unanimous" j) to_bool = Ok true);
  check_bool "decoder name" true
    (Result.bind (member "decoder" j) to_str = Ok "degree-one")

let test_report_json () =
  let j =
    Codec.report_to_json
      { Report.id = "EX"; title = "t";
        rows = [ Report.check "c" true ~expected:"e" ~actual:"a" ] }
  in
  check_bool "parses back" true
    (Json.of_string (Json.to_string j) = Ok j)

let test_save_load () =
  let path = Filename.temp_file "lcp" ".json" in
  let inst = Instance.make (Builders.cycle 5) in
  Codec.save path (Codec.instance_to_json inst);
  (match Codec.load path with
  | Ok j -> (
      match Codec.instance_of_json j with
      | Ok inst' -> check_graph "reloaded" inst.Instance.graph inst'.Instance.graph
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  check_bool "missing file" true
    (match Codec.load "/nonexistent/file.json" with Error _ -> true | Ok _ -> false)

let suite =
  [
    case "graph roundtrip" test_graph_roundtrip;
    case "graph decode validation" test_graph_bad_json;
    case "instance roundtrip" test_instance_roundtrip;
    case "verdicts export" test_verdicts_json;
    case "report export" test_report_json;
    case "save / load" test_save_load;
  ]
