(* Property-based tests (qcheck) on the core invariants. *)

open Lcp_graph
open Lcp_local
open Lcp

(* -- generators ---------------------------------------------------- *)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 1 9 in
    let* edges =
      list_size (int_range 0 (n * 2)) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    let edges = List.filter (fun (u, v) -> u <> v) edges in
    return (Graph.of_edges n edges))

let gen_connected_graph =
  QCheck2.Gen.(
    let* n = int_range 2 9 in
    let* seed = int in
    let* p = float_bound_inclusive 0.5 in
    let rng = Random.State.make [| seed |] in
    return (Builders.random_connected rng n p))

let gen_instance =
  QCheck2.Gen.(
    let* g = gen_connected_graph in
    let* seed = int in
    let rng = Random.State.make [| seed |] in
    return (Instance.random rng g))

let print_graph = Graph.to_string
let print_instance i = Graph.to_string i.Instance.graph

(* -- properties ---------------------------------------------------- *)

let prop_two_color_proper =
  QCheck2.Test.make ~name:"two_color yields a proper 2-coloring" ~count:200
    ~print:print_graph gen_graph (fun g ->
      match Coloring.two_color g with
      | Some c -> Coloring.is_proper_k g ~k:2 c
      | None -> true)

let prop_odd_cycle_complements_two_color =
  QCheck2.Test.make ~name:"odd_cycle witness iff not bipartite" ~count:200
    ~print:print_graph gen_graph (fun g ->
      match (Coloring.two_color g, Coloring.odd_cycle g) with
      | Some _, None -> true
      | None, Some w -> Coloring.odd_closed_walk_check g w
      | _ -> false)

let prop_k_color_proper =
  QCheck2.Test.make ~name:"k_color yields proper colorings" ~count:100
    ~print:print_graph gen_graph (fun g ->
      match Coloring.k_color g ~k:3 with
      | Some c -> Coloring.is_proper_k g ~k:3 c
      | None -> not (Coloring.is_bipartite g))

let prop_greedy_bound =
  QCheck2.Test.make ~name:"greedy uses at most max degree + 1 colors" ~count:200
    ~print:print_graph gen_graph (fun g ->
      let c = Coloring.greedy g in
      Coloring.is_proper g c
      && Array.for_all (fun x -> x <= Graph.max_degree g) c)

let prop_diameter_vs_order =
  QCheck2.Test.make ~name:"diameter < order for connected graphs" ~count:200
    ~print:print_graph gen_connected_graph (fun g ->
      Metrics.diameter g < Graph.order g)

let prop_ball_matches_dist =
  QCheck2.Test.make ~name:"balls agree with BFS distances" ~count:100
    ~print:print_graph gen_connected_graph (fun g ->
      let v = 0 and r = 2 in
      let d = Metrics.bfs_dist g v in
      List.sort Stdlib.compare (Metrics.ball g v r)
      = List.filter (fun w -> d.(w) <= r) (Graph.nodes g))

let prop_view_well_formed =
  QCheck2.Test.make ~name:"views: center first, ids unique, ball correct"
    ~count:100 ~print:print_instance gen_instance (fun inst ->
      let v = 0 and r = 2 in
      let view = View.extract inst ~r v in
      let ids = Array.to_list view.View.ids in
      View.distance view 0 = 0
      && View.center_id view = Ident.id inst.Instance.ids v
      && List.length (List.sort_uniq Stdlib.compare ids) = List.length ids
      && View.size view = List.length (Metrics.ball inst.Instance.graph v r))

let prop_view_key_reflexive =
  QCheck2.Test.make ~name:"view keys are stable across re-extraction" ~count:100
    ~print:print_instance gen_instance (fun inst ->
      let a = View.extract inst ~r:1 0 and b = View.extract inst ~r:1 0 in
      View.key_identified a = View.key_identified b
      && View.key_anonymous a = View.key_anonymous b
      && View.key_order_invariant a = View.key_order_invariant b)

let prop_anonymous_key_id_invariant =
  QCheck2.Test.make ~name:"anonymous keys survive re-identification" ~count:100
    ~print:print_instance gen_instance (fun inst ->
      let rng = Random.State.make [| Instance.order inst |] in
      let inst' =
        Instance.with_ids inst
          (Ident.random rng ~bound:inst.Instance.ids.Ident.bound inst.Instance.graph)
      in
      View.key_anonymous (View.extract inst ~r:1 0)
      = View.key_anonymous (View.extract inst' ~r:1 0))

let prop_sync_matches_views =
  QCheck2.Test.make ~name:"flooding knowledge equals views" ~count:50
    ~print:print_instance gen_instance (fun inst ->
      Sync_runner.knowledge_matches_view inst ~r:1
      && Sync_runner.knowledge_matches_view inst ~r:2)

let prop_degree_one_strong =
  QCheck2.Test.make ~name:"degree-one decoder: strong soundness on random labelings"
    ~count:150 ~print:print_instance gen_instance (fun inst ->
      let rng = Random.State.make [| Graph.size inst.Instance.graph |] in
      let lab = Labeling.random rng ~alphabet:D_degree_one.alphabet inst.Instance.graph in
      let sub, _ =
        Decoder.accepted_subgraph D_degree_one.decoder (Instance.with_labels inst lab)
      in
      Coloring.is_bipartite sub)

let prop_union_strong =
  QCheck2.Test.make ~name:"union decoder: strong soundness on random labelings"
    ~count:150 ~print:print_instance gen_instance (fun inst ->
      let rng = Random.State.make [| Graph.size inst.Instance.graph + 1 |] in
      let lab = Labeling.random rng ~alphabet:D_union.alphabet inst.Instance.graph in
      let sub, _ =
        Decoder.accepted_subgraph D_union.decoder (Instance.with_labels inst lab)
      in
      Coloring.is_bipartite sub)

let prop_trivial_completeness =
  QCheck2.Test.make ~name:"trivial LCP completeness on random bipartite graphs"
    ~count:100 ~print:print_graph gen_connected_graph (fun g ->
      match Coloring.two_color g with
      | None -> true
      | Some _ -> (
          let suite = D_trivial.suite ~k:2 in
          match Decoder.certify suite (Instance.make g) with
          | Some i -> Decoder.accepts_all suite.Decoder.dec i
          | None -> false))

let prop_spanning_completeness =
  QCheck2.Test.make ~name:"spanning LCP completeness on random bipartite instances"
    ~count:75 ~print:print_instance gen_instance (fun inst ->
      if not (Coloring.is_bipartite inst.Instance.graph) then true
      else
        match Decoder.certify D_spanning.suite inst with
        | Some i -> Decoder.accepts_all D_spanning.decoder i
        | None -> false)

let prop_escape_paths_valid =
  QCheck2.Test.make ~name:"escape paths satisfy the r-forgetful definition"
    ~count:50 ~print:print_graph gen_connected_graph (fun g ->
      Graph.fold_nodes
        (fun v acc ->
          acc
          && List.for_all
               (fun u ->
                 match Forgetful.escape_path g ~r:1 ~v ~u with
                 | None -> true
                 | Some p ->
                     List.hd p = v
                     && List.length p = 2
                     && List.for_all
                          (fun w ->
                            let d = Metrics.bfs_dist g w in
                            d.(List.nth p 1) = d.(v) + 1)
                          (Metrics.ball g u 1))
               (Graph.neighbors g v))
        g true)

let prop_port_random_valid =
  QCheck2.Test.make ~name:"random port assignments are valid" ~count:100
    ~print:print_graph gen_graph (fun g ->
      let rng = Random.State.make [| Graph.order g |] in
      Port.is_valid g (Port.random rng g))

let prop_isomorphic_relabel =
  QCheck2.Test.make ~name:"relabeled graphs are isomorphic" ~count:75
    ~print:print_graph gen_graph (fun g ->
      let n = Graph.order g in
      let perm = Array.init n (fun i -> (i + 1) mod n) in
      Graph.isomorphic g (Graph.relabel g perm))

let prop_splice_parity =
  QCheck2.Test.make ~name:"splicing an even detour preserves walk parity"
    ~count:50 ~print:print_graph gen_connected_graph (fun g ->
      match Nb_walks.odd_nb_closed_walk g ~max_len:7 with
      | None -> true
      | Some w -> (
          let v = List.hd w in
          match
            Walks.non_backtracking_closed_walk g ~start:v ~len:4
          with
          | None -> true
          | Some detour ->
              let spliced = Walks.splice w 0 detour in
              Walks.is_closed_walk g spliced
              && List.length spliced mod 2 = List.length w mod 2))

let all =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_two_color_proper;
      prop_odd_cycle_complements_two_color;
      prop_k_color_proper;
      prop_greedy_bound;
      prop_diameter_vs_order;
      prop_ball_matches_dist;
      prop_view_well_formed;
      prop_view_key_reflexive;
      prop_anonymous_key_id_invariant;
      prop_sync_matches_views;
      prop_degree_one_strong;
      prop_union_strong;
      prop_trivial_completeness;
      prop_spanning_completeness;
      prop_escape_paths_valid;
      prop_port_random_valid;
      prop_isomorphic_relabel;
      prop_splice_parity;
    ]

let suite = all

(* later additions: serialization, async execution, resilience *)

let prop_graph_json_roundtrip =
  QCheck2.Test.make ~name:"graph JSON roundtrip" ~count:100 ~print:print_graph
    gen_graph (fun g ->
      match Codec.graph_of_json (Codec.graph_to_json g) with
      | Ok g' -> Graph.equal g g'
      | Error _ -> false)

let prop_instance_json_roundtrip =
  QCheck2.Test.make ~name:"instance JSON roundtrip" ~count:75
    ~print:print_instance gen_instance (fun inst ->
      match Codec.instance_of_json (Codec.instance_to_json inst) with
      | Ok inst' ->
          Graph.equal inst.Instance.graph inst'.Instance.graph
          && inst.Instance.ports = inst'.Instance.ports
          && inst.Instance.ids = inst'.Instance.ids
          && inst.Instance.labels = inst'.Instance.labels
      | Error _ -> false)

let prop_json_string_roundtrip =
  QCheck2.Test.make ~name:"JSON string escaping roundtrips" ~count:200
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\127') (int_range 0 30))
    (fun s ->
      match Json.of_string (Json.to_string (Json.String s)) with
      | Ok (Json.String s') -> s = s'
      | _ -> false)

let prop_async_matches_sync =
  QCheck2.Test.make ~name:"async quiescence = sync fixpoint" ~count:30
    ~print:print_instance gen_instance (fun inst ->
      let final, _ = Async_runner.run_to_quiescence inst in
      final = Sync_runner.run inst ~rounds:(Instance.order inst))

let prop_resilient_single_erasure =
  QCheck2.Test.make ~name:"resilient wrapper survives any single erasure"
    ~count:40 ~print:print_instance gen_instance (fun inst ->
      if not (Coloring.is_bipartite inst.Instance.graph) then true
      else
        let res = Resilient.wrap (D_trivial.suite ~k:2) in
        match Decoder.certify res inst with
        | None -> false
        | Some certified ->
            List.for_all
              (fun v ->
                Decoder.accepts_all res.Decoder.dec
                  (Resilient.erase certified ~nodes:[ v ]))
              (Graph.nodes inst.Instance.graph))

let prop_view_restrict_coherent =
  QCheck2.Test.make ~name:"restricting an r=2 view = extracting at r=1"
    ~count:75 ~print:print_instance gen_instance (fun inst ->
      let big = View.extract inst ~r:2 0 in
      View.equal (View.restrict big ~r:1) (View.extract inst ~r:1 0))

let late = 
  List.map QCheck_alcotest.to_alcotest
    [
      prop_graph_json_roundtrip;
      prop_instance_json_roundtrip;
      prop_json_string_roundtrip;
      prop_async_matches_sync;
      prop_resilient_single_erasure;
      prop_view_restrict_coherent;
    ]

let suite = suite @ late
