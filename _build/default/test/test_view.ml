open Lcp_graph
open Lcp_local
open Helpers

let labeled_c6 () =
  Instance.make (Builders.cycle 6)
    ~labels:[| "a"; "b"; "c"; "d"; "e"; "f" |]

let test_extract_ball () =
  let i = labeled_c6 () in
  let v = View.extract i ~r:1 0 in
  check_int "ball size" 3 (View.size v);
  check_int "center is local 0" 0 (View.center v);
  check_int "center dist" 0 (View.distance v 0);
  check_int "center id" 1 (View.center_id v);
  Alcotest.(check string) "center label" "a" (View.center_label v);
  check_int "center degree" 2 (View.center_degree v)

let test_extract_radius_grows () =
  let i = labeled_c6 () in
  check_int "r=2" 5 (View.size (View.extract i ~r:2 0));
  check_int "r=3 covers all" 6 (View.size (View.extract i ~r:3 0));
  check_int "r=10 saturates" 6 (View.size (View.extract i ~r:10 0))

let test_extract_rejects_r0 () =
  (try
     ignore (View.extract (labeled_c6 ()) ~r:0 0);
     Alcotest.fail "expected radius failure"
   with Invalid_argument _ -> ())

let test_fringe_edges_invisible () =
  (* C4 at r=1: the two edges between the center's neighbors and the
     antipode are invisible, and the antipode is outside the ball *)
  let i = Instance.make (Builders.cycle 4) in
  let v = View.extract i ~r:1 0 in
  check_int "ball" 3 (View.size v);
  check_int "edges" 2 (Graph.size v.View.graph);
  (* diamond: the chord between two fringe nodes is invisible *)
  let d = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 3) ] in
  let vd = View.extract (Instance.make d) ~r:1 0 in
  check_int "diamond ball" 3 (View.size vd);
  check_int "only center edges" 2 (Graph.size vd.View.graph)

let test_interior_edges_visible () =
  let i = labeled_c6 () in
  let v = View.extract i ~r:2 0 in
  (* nodes at distance 1 have all their edges visible *)
  let n1 = Option.get (View.find_by_id v 2) in
  check_int "degree of interior node" 2 (Graph.degree v.View.graph n1)

let test_ports_both_ends () =
  let i = Instance.make (Builders.path 3) in
  let v = View.extract i ~r:1 1 in
  let w0 = Option.get (View.find_by_id v 1) in
  check_int "my port" 1 (View.port_of v 0 w0);
  check_int "far port" 1 (View.port_of v w0 0)

let test_center_neighbors_sorted_by_port () =
  let g = Builders.star 3 in
  let ports = [| [| 3; 1; 2 |]; [| 0 |]; [| 0 |]; [| 0 |] |] in
  let i = Instance.make g ~ports in
  let v = View.extract i ~r:1 0 in
  let triples = View.center_neighbors v in
  check_int "three neighbors" 3 (List.length triples);
  Alcotest.(check int_list) "ports ascending" [ 1; 2; 3 ]
    (List.map (fun (_, p, _) -> p) triples);
  (* port 1 leads to node 3 (id 4) *)
  let w, _, _ = List.hd triples in
  check_int "port 1 neighbor id" 4 (View.id v w)

let test_full_degree_known () =
  let i = labeled_c6 () in
  let v = View.extract i ~r:2 0 in
  check_bool "center known" true (View.full_degree_known v 0);
  let fringe = Option.get (View.find_by_id v 3) in
  check_bool "fringe unknown" false (View.full_degree_known v fringe)

let test_equal_and_keys () =
  let i = labeled_c6 () in
  let v0 = View.extract i ~r:1 0 in
  let v0' = View.extract i ~r:1 0 in
  check_bool "reflexive" true (View.equal v0 v0');
  let v1 = View.extract i ~r:1 1 in
  check_bool "different centers differ" false (View.equal v0 v1);
  check_bool "key matches equality" true
    (View.key_identified v0 = View.key_identified v0')

let test_anonymous_key () =
  (* same structure, different ids: anonymous keys agree, identified
     keys differ *)
  let g = Builders.cycle 4 in
  let i1 = Instance.make g in
  let i2 = Instance.make g ~ids:(Ident.of_array [| 4; 3; 2; 1 |]) in
  let a = View.extract i1 ~r:1 0 and b = View.extract i2 ~r:1 0 in
  check_bool "identified differ" false (View.equal a b);
  Alcotest.(check string) "anonymous agree" (View.key_anonymous a)
    (View.key_anonymous b)

let test_anonymous_key_ports_matter () =
  let g = Builders.path 3 in
  let labels = [| "x"; ""; "y" |] in
  let i1 = Instance.make g ~labels ~ports:[| [| 1 |]; [| 0; 2 |]; [| 1 |] |] in
  let i2 = Instance.make g ~labels ~ports:[| [| 1 |]; [| 2; 0 |]; [| 1 |] |] in
  let a = View.extract i1 ~r:1 1 and b = View.extract i2 ~r:1 1 in
  check_bool "port swap changes anonymous key" false
    (View.key_anonymous a = View.key_anonymous b);
  (* with indistinguishable leaves the swap is a port-preserving
     isomorphism, so the keys must agree *)
  let j1 = Instance.make g ~ports:[| [| 1 |]; [| 0; 2 |]; [| 1 |] |] in
  let j2 = Instance.make g ~ports:[| [| 1 |]; [| 2; 0 |]; [| 1 |] |] in
  Alcotest.(check string) "isomorphic swap keeps the key"
    (View.key_anonymous (View.extract j1 ~r:1 1))
    (View.key_anonymous (View.extract j2 ~r:1 1))

let test_anonymous_key_labels_matter () =
  let g = Builders.path 2 in
  let a = View.extract (Instance.make g ~labels:[| "x"; "y" |]) ~r:1 0 in
  let b = View.extract (Instance.make g ~labels:[| "x"; "z" |]) ~r:1 0 in
  check_bool "label changes key" false (View.key_anonymous a = View.key_anonymous b)

let test_order_invariant_key () =
  let g = Builders.path 3 in
  let i1 = Instance.make g ~ids:(Ident.of_array ~bound:30 [| 1; 2; 3 |]) in
  let i3 = Instance.make g ~ids:(Ident.of_array ~bound:30 [| 2; 3; 1 |]) in
  let a = View.extract i1 ~r:1 1 in
  let c = View.extract i3 ~r:1 1 in
  (* i1 around node 1: ids (1,2,3) ranked (0,1,2); i3: ids (2,3,1)
     ranked (1,2,0) - different order pattern *)
  check_bool "order pattern differs" false
    (View.key_order_invariant a = View.key_order_invariant c);
  let i4 = Instance.make g ~ids:(Ident.of_array ~bound:30 [| 10; 20; 30 |]) in
  let d = View.extract i4 ~r:1 1 in
  check_bool "order-isomorphic ids agree" true
    (View.key_order_invariant a = View.key_order_invariant d)

let test_subview1 () =
  let i = labeled_c6 () in
  let v = View.extract i ~r:2 0 in
  let w = Option.get (View.find_by_id v 2) in
  check_bool "subview equals direct extraction" true
    (View.equal (View.subview1 v w) (View.extract i ~r:1 1));
  let fringe = Option.get (View.find_by_id v 3) in
  (try
     ignore (View.subview1 v fringe);
     Alcotest.fail "expected fringe failure"
   with Invalid_argument _ -> ())

let test_map_labels () =
  let i = labeled_c6 () in
  let v = View.extract i ~r:1 0 in
  let v' = View.map_labels v String.uppercase_ascii in
  Alcotest.(check string) "mapped" "A" (View.center_label v');
  Alcotest.(check string) "original" "a" (View.center_label v)

let test_reidentify () =
  let i = labeled_c6 () in
  let v = View.extract i ~r:1 0 in
  let v' = View.reidentify v ~f:(fun id -> 7 - id) ~id_bound:6 () in
  check_int "center remapped" 6 (View.center_id v');
  check_bool "structure preserved anonymously" true
    (View.key_anonymous v = View.key_anonymous v');
  (try
     ignore (View.reidentify v ~f:(fun _ -> 5) ());
     Alcotest.fail "expected injectivity failure"
   with Invalid_argument _ -> ())

let test_extract_all () =
  let i = labeled_c6 () in
  let all = View.extract_all i ~r:1 in
  check_int "one per node" 6 (Array.length all);
  Array.iteri (fun v mu -> check_int "center id" (v + 1) (View.center_id mu)) all

let suite =
  [
    case "extract ball" test_extract_ball;
    case "radius growth" test_extract_radius_grows;
    case "rejects r=0" test_extract_rejects_r0;
    case "fringe edges invisible" test_fringe_edges_invisible;
    case "interior edges visible" test_interior_edges_visible;
    case "ports visible at both ends" test_ports_both_ends;
    case "center neighbors by port" test_center_neighbors_sorted_by_port;
    case "full_degree_known" test_full_degree_known;
    case "equality and identified keys" test_equal_and_keys;
    case "anonymous keys ignore ids" test_anonymous_key;
    case "anonymous keys see ports" test_anonymous_key_ports_matter;
    case "anonymous keys see labels" test_anonymous_key_labels_matter;
    case "order-invariant keys" test_order_invariant_key;
    case "subview1" test_subview1;
    case "map_labels" test_map_labels;
    case "reidentify" test_reidentify;
    case "extract_all" test_extract_all;
  ]

let test_restrict () =
  let i =
    Instance.make (Builders.cycle 6) ~labels:[| "a"; "b"; "c"; "d"; "e"; "f" |]
  in
  let big = View.extract i ~r:2 0 in
  let small = View.restrict big ~r:1 in
  check_bool "restriction = direct extraction" true
    (View.equal small (View.extract i ~r:1 0));
  check_bool "same radius is identity" true (View.equal big (View.restrict big ~r:2));
  (try
     ignore (View.restrict big ~r:3);
     Alcotest.fail "expected radius failure"
   with Invalid_argument _ -> ())

let test_mapi_labels () =
  let i = Instance.make (Builders.path 3) ~labels:[| "a"; "b"; "c" |] in
  let v = View.extract i ~r:1 1 in
  let v' = View.mapi_labels v (fun u s -> Printf.sprintf "%d%s" u s) in
  check_bool "center prefixed" true (View.center_label v' = "0b")

let suite =
  suite
  @ [
      case "restrict" test_restrict;
      case "mapi_labels" test_mapi_labels;
    ]
