open Lcp_graph
open Lcp_local
open Helpers

let test_make_defaults () =
  let i = Instance.make (Builders.path 3) in
  check_bool "valid" true (Instance.is_valid i);
  check_int "order" 3 (Instance.order i);
  Alcotest.(check string) "default labels" "" i.Instance.labels.(0)

let test_make_rejects () =
  let g = Builders.path 3 in
  (try
     ignore (Instance.make g ~labels:[| "a" |]);
     Alcotest.fail "expected label arity failure"
   with Invalid_argument _ -> ());
  (try
     ignore (Instance.make g ~ids:(Ident.of_array [| 1; 2 |]));
     Alcotest.fail "expected id arity failure"
   with Invalid_argument _ -> ())

let test_with () =
  let i = Instance.make (Builders.path 3) in
  let i2 = Instance.with_labels i [| "a"; "b"; "c" |] in
  Alcotest.(check string) "labels replaced" "b" i2.Instance.labels.(1);
  Alcotest.(check string) "original untouched" "" i.Instance.labels.(1);
  let i3 = Instance.with_ids i (Ident.of_array [| 7; 8; 9 |]) in
  check_int "ids replaced" 8 (Ident.id i3.Instance.ids 1)

let test_random () =
  let i = Instance.random (rng ()) (Builders.grid 3 3) in
  check_bool "valid" true (Instance.is_valid i);
  check_int "poly bound" 81 i.Instance.ids.Ident.bound

let suite =
  [
    case "make with defaults" test_make_defaults;
    case "make rejects inconsistencies" test_make_rejects;
    case "with_labels / with_ids" test_with;
    case "random" test_random;
  ]
