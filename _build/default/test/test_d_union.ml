open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let dec = D_union.decoder

let test_tagged_completeness () =
  let p = certify_exn D_union.suite (Builders.path 5) in
  check_bool "H1 member accepted" true (Decoder.accepts_all dec p);
  check_bool "tag 1 used" true
    (Array.for_all (fun s -> s.[0] = '1') p.Instance.labels);
  let c = certify_exn D_union.suite (Builders.cycle 6) in
  check_bool "H2 member accepted" true (Decoder.accepts_all dec c);
  check_bool "tag 2 used" true
    (Array.for_all (fun s -> s.[0] = '2') c.Instance.labels)

let test_mixed_tags_rejected () =
  let p = certify_exn D_union.suite (Builders.path 5) in
  let lab = Array.copy p.Instance.labels in
  lab.(2) <- "2:" ^ D_even_cycle.encode ~q1:1 ~c1:0 ~q2:1 ~c2:1;
  let tampered = Instance.with_labels p lab in
  let verdicts = Decoder.run dec tampered in
  check_bool "node 2 rejected" false verdicts.(2);
  check_bool "a neighbor rejects too" false (verdicts.(1) && verdicts.(3))

let test_untagged_rejected () =
  let i = Instance.make (Builders.path 3) ~labels:[| "0"; "1"; "0" |] in
  check_bool "raw degree-one certs need tags" false
    (Array.exists (fun b -> b) (Decoder.run dec i))

let test_prover_prefers_h1 () =
  (* the pendant cycle is in H1 only *)
  let g = Builders.pendant (Builders.cycle 4) 0 in
  match D_union.prover (Instance.make g) with
  | Some lab -> check_bool "tag 1" true (lab.(0).[0] = '1')
  | None -> Alcotest.fail "H1 member certifiable"

let test_prover_refuses () =
  check_bool "C5 refused" true (D_union.prover (Instance.make (c5 ())) = None);
  check_bool "theta refused (outside H)" true
    (D_union.prover (Instance.make (Builders.theta 2 2 2)) = None)

let test_alphabet_tagged () =
  check_bool "all tagged or junk" true
    (List.for_all
       (fun s -> s = Decoder.junk || s.[0] = '1' || s.[0] = '2')
       D_union.alphabet)

let suite =
  [
    case "tagged completeness" test_tagged_completeness;
    case "mixed tags rejected" test_mixed_tags_rejected;
    case "untagged certificates rejected" test_untagged_rejected;
    case "prover prefers H1" test_prover_prefers_h1;
    case "prover refuses outside H" test_prover_refuses;
    case "alphabet tagged" test_alphabet_tagged;
  ]
