open Lcp_graph
open Helpers

let regular g d =
  Graph.fold_nodes (fun v acc -> acc && Graph.degree g v = d) g true

let test_path () =
  let g = Builders.path 5 in
  check_int "order" 5 (Graph.order g);
  check_int "size" 4 (Graph.size g);
  check_bool "is path" true (Graph.is_path_graph g);
  check_int "path 0 order" 0 (Graph.order (Builders.path 0));
  check_int "path 1 size" 0 (Graph.size (Builders.path 1))

let test_cycle () =
  let g = Builders.cycle 5 in
  check_bool "is cycle" true (Graph.is_cycle g);
  check_bool "2-regular" true (regular g 2);
  (try
     ignore (Builders.cycle 2);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_star () =
  let g = Builders.star 4 in
  check_int "order" 5 (Graph.order g);
  check_int "hub degree" 4 (Graph.degree g 0);
  check_bool "tree" true (Graph.is_tree g)

let test_complete () =
  let g = Builders.complete 5 in
  check_int "size" 10 (Graph.size g);
  check_bool "4-regular" true (regular g 4)

let test_complete_bipartite () =
  let g = Builders.complete_bipartite 2 3 in
  check_int "size" 6 (Graph.size g);
  check_bool "bipartite" true (Coloring.is_bipartite g);
  check_bool "no intra-part edge" false (Graph.mem_edge g 0 1)

let test_grid () =
  let g = Builders.grid 3 4 in
  check_int "order" 12 (Graph.order g);
  check_int "size" 17 (Graph.size g);
  check_bool "bipartite" true (Coloring.is_bipartite g);
  check_int "corner degree" 2 (Graph.degree g 0)

let test_torus () =
  let g = Builders.torus 4 4 in
  check_bool "4-regular" true (regular g 4);
  check_bool "even torus bipartite" true (Coloring.is_bipartite g);
  check_bool "odd torus not bipartite" false (Coloring.is_bipartite (Builders.torus 3 3))

let test_hypercube () =
  let g = Builders.hypercube 3 in
  check_int "order" 8 (Graph.order g);
  check_int "size" 12 (Graph.size g);
  check_bool "3-regular" true (regular g 3);
  check_bool "bipartite" true (Coloring.is_bipartite g)

let test_binary_tree () =
  let g = Builders.binary_tree 3 in
  check_int "order" 15 (Graph.order g);
  check_bool "tree" true (Graph.is_tree g)

let test_caterpillar () =
  let g = Builders.caterpillar 3 2 in
  check_int "order" 9 (Graph.order g);
  check_bool "tree" true (Graph.is_tree g);
  check_int "spine degree" 4 (Graph.degree g 1)

let test_watermelon () =
  let g = Builders.watermelon [ 2; 3; 4 ] in
  check_int "order" (2 + 1 + 2 + 3) (Graph.order g);
  check_int "endpoint degree" 3 (Graph.degree g 0);
  check_int "endpoint degree v2" 3 (Graph.degree g 1);
  check_int "size" 9 (Graph.size g);
  check_bool "same parity bipartite" true
    (Coloring.is_bipartite (Builders.watermelon [ 3; 3; 5 ]));
  check_bool "mixed parity odd cycle" false
    (Coloring.is_bipartite (Builders.watermelon [ 2; 3 ]));
  (try
     ignore (Builders.watermelon [ 1; 2 ]);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_theta () =
  check_graph "theta = 3-path watermelon" (Builders.theta 2 2 2)
    (Builders.watermelon [ 2; 2; 2 ])

let test_book_friendship () =
  let b = Builders.book 3 in
  check_int "book order" 5 (Graph.order b);
  check_int "book size" 7 (Graph.size b);
  let f = Builders.friendship 3 in
  check_int "friendship order" 7 (Graph.order f);
  check_int "hub degree" 6 (Graph.degree f 0);
  check_bool "triangles" false (Coloring.is_bipartite f)

let test_barbell () =
  let g = Builders.barbell 3 in
  check_int "order" 6 (Graph.order g);
  check_int "size" 7 (Graph.size g)

let test_petersen () =
  let g = Builders.petersen () in
  check_bool "3-regular" true (regular g 3);
  check_int "order" 10 (Graph.order g);
  Alcotest.(check (option int)) "girth 5" (Some 5) (Metrics.girth g)

let test_pendant () =
  let g = Builders.pendant (Builders.cycle 4) 2 in
  check_int "order" 5 (Graph.order g);
  check_int "new leaf degree" 1 (Graph.degree g 4);
  check_bool "attached" true (Graph.mem_edge g 2 4)

let test_random_generators () =
  let r = rng () in
  let g = Builders.random_gnp r 10 0.5 in
  check_int "gnp order" 10 (Graph.order g);
  let t = Builders.random_tree r 12 in
  check_bool "random tree is tree" true (Graph.is_tree t);
  let b = Builders.random_bipartite r 4 5 0.7 in
  check_bool "random bipartite" true (Coloring.is_bipartite b);
  let c = Builders.random_connected r 9 0.2 in
  check_bool "random connected" true (Graph.is_connected c)

let suite =
  [
    case "path" test_path;
    case "cycle" test_cycle;
    case "star" test_star;
    case "complete" test_complete;
    case "complete bipartite" test_complete_bipartite;
    case "grid" test_grid;
    case "torus" test_torus;
    case "hypercube" test_hypercube;
    case "binary tree" test_binary_tree;
    case "caterpillar" test_caterpillar;
    case "watermelon" test_watermelon;
    case "theta" test_theta;
    case "book and friendship" test_book_friendship;
    case "barbell" test_barbell;
    case "petersen" test_petersen;
    case "pendant" test_pendant;
    case "random generators" test_random_generators;
  ]
