open Lcp
open Helpers

let test_fields_join () =
  Alcotest.(check (list string)) "split" [ "a"; "b"; "c" ]
    (Certificate.fields "a:b:c");
  Alcotest.(check string) "roundtrip" "a:b:c"
    (Certificate.join (Certificate.fields "a:b:c"));
  Alcotest.(check (list string)) "empty fields" [ ""; "" ] (Certificate.fields ":")

let test_int_field () =
  Alcotest.(check (option int)) "plain" (Some 42) (Certificate.int_field "42");
  Alcotest.(check (option int)) "zero" (Some 0) (Certificate.int_field "0");
  Alcotest.(check (option int)) "negative" None (Certificate.int_field "-1");
  Alcotest.(check (option int)) "junk" None (Certificate.int_field "x");
  Alcotest.(check (option int)) "empty" None (Certificate.int_field "");
  Alcotest.(check (option int)) "spaces" None (Certificate.int_field " 1")

let test_bits () =
  check_int "1 bit for 0..1" 1 (Certificate.bits_for_int ~max:1);
  check_int "2 bits for 0..3" 2 (Certificate.bits_for_int ~max:3);
  check_int "3 bits for 0..4" 3 (Certificate.bits_for_int ~max:4);
  check_int "1 bit minimum" 1 (Certificate.bits_for_int ~max:0);
  check_int "id bits" 4 (Certificate.bits_for_id ~bound:15);
  check_int "sum" 6 (Certificate.bits_of_parts [ 1; 2; 3 ])

let suite =
  [
    case "fields / join" test_fields_join;
    case "int_field" test_int_field;
    case "bit accounting" test_bits;
  ]
