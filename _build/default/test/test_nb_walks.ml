open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let wm = Builders.watermelon [ 6; 6 ]
let theta = Builders.theta 4 4 4

let test_far_node () =
  (match Nb_walks.far_node wm ~r:1 ~u:2 ~v:3 with
  | Some w ->
      check_bool "far from u" true (Metrics.dist wm w 2 > 2);
      check_bool "far from v" true (Metrics.dist wm w 3 > 2)
  | None -> Alcotest.fail "C12 has far nodes");
  check_bool "K4 has none" true (Nb_walks.far_node (k4 ()) ~r:1 ~u:0 ~v:1 = None)

let test_edge_expansion () =
  match Nb_walks.edge_expansion wm ~r:1 ~u:2 ~v:3 with
  | Some w ->
      check_bool "closed" true (Walks.is_closed_walk wm w);
      check_bool "non-backtracking" true (Walks.is_non_backtracking wm w);
      check_bool "even (bipartite host)" true (List.length w mod 2 = 0);
      check_bool "starts at u" true (List.hd w = 2);
      check_bool "second is v" true (List.nth w 1 = 3)
  | None -> Alcotest.fail "expansion exists on C12"

let test_edge_expansion_theta () =
  match Nb_walks.edge_expansion theta ~r:1 ~u:2 ~v:3 with
  | Some w ->
      check_bool "closed nb even" true
        (Walks.is_closed_walk theta w
        && Walks.is_non_backtracking theta w
        && List.length w mod 2 = 0)
  | None -> Alcotest.fail "expansion exists on theta(4,4,4)"

let test_edge_expansion_requires_edge () =
  (try
     ignore (Nb_walks.edge_expansion wm ~r:1 ~u:0 ~v:1);
     Alcotest.fail "0-1 is not an edge of watermelon[6;6]"
   with Invalid_argument _ -> ())

let test_expand_closed_walk () =
  let tour = [ 0; 2; 3; 4; 5; 6; 1; 11; 10; 9; 8; 7 ] in
  check_bool "tour valid" true (Walks.is_closed_walk wm tour);
  match Nb_walks.expand_closed_walk wm ~r:1 tour with
  | Some w ->
      check_bool "parity preserved" true (List.length w mod 2 = 0);
      check_bool "non-backtracking" true (Walks.is_non_backtracking wm w);
      check_bool "longer" true (List.length w > List.length tour)
  | None -> Alcotest.fail "expansion exists"

let test_odd_nb_closed_walk () =
  check_bool "none in bipartite" true
    (Nb_walks.odd_nb_closed_walk wm ~max_len:11 = None);
  (match Nb_walks.odd_nb_closed_walk (Builders.petersen ()) ~max_len:7 with
  | Some w ->
      check_bool "odd" true (List.length w mod 2 = 1);
      check_int "girth-length" 5 (List.length w)
  | None -> Alcotest.fail "petersen has 5-cycles")

let test_repair_backtracking () =
  let tour = [ 0; 2; 3; 4; 1; 7; 6; 5 ] in
  check_bool "tour valid" true (Walks.is_closed_walk theta tour);
  let spiked = Walks.splice tour 1 [ 2; 0 ] in
  check_bool "spiked backtracks" false (Walks.is_non_backtracking theta spiked);
  match Nb_walks.repair_backtracking theta spiked with
  | Some fixed ->
      check_bool "repaired" true (Walks.is_non_backtracking theta fixed);
      check_bool "parity kept" true
        (List.length fixed mod 2 = List.length spiked mod 2)
  | None -> Alcotest.fail "repairable in a two-cycle graph"

let test_repair_idempotent () =
  let tour = [ 0; 2; 3; 4; 1; 7; 6; 5 ] in
  match Nb_walks.repair_backtracking theta tour with
  | Some fixed -> Alcotest.(check int_list) "already fine" tour fixed
  | None -> Alcotest.fail "non-backtracking input"

let test_lift () =
  let suite = D_trivial.suite ~k:2 in
  let inst = certify_exn suite wm in
  let nbhd =
    Neighborhood.build ~mode:Neighborhood.Identified suite.Decoder.dec [ inst ]
  in
  let tour = [ 0; 2; 3; 4; 5; 6; 1; 11; 10; 9; 8; 7 ] in
  (match Nb_walks.lift nbhd inst tour with
  | Some lifted ->
      check_int "length preserved" (List.length tour) (List.length lifted);
      let views = List.map (Neighborhood.view nbhd) lifted in
      check_bool "view walk non-backtracking" true
        (Nb_walks.is_non_backtracking_views views)
  | None -> Alcotest.fail "all views present");
  (* an instance not in V lifts to None *)
  let stranger = Instance.make wm ~labels:(Array.make 12 "junk") in
  check_bool "unknown views" true (Nb_walks.lift nbhd stranger tour = None)

let test_is_non_backtracking_views () =
  let suite = D_trivial.suite ~k:2 in
  let inst = certify_exn suite (Builders.cycle 6) in
  let views = Array.to_list (View.extract_all inst ~r:1) in
  check_bool "cycle of views" true (Nb_walks.is_non_backtracking_views views);
  let bad = [ List.nth views 0; List.nth views 1; List.nth views 0; List.nth views 1 ] in
  check_bool "backtracking detected" false (Nb_walks.is_non_backtracking_views bad)

let suite =
  [
    case "far node" test_far_node;
    case "edge expansion on C12" test_edge_expansion;
    case "edge expansion on theta" test_edge_expansion_theta;
    case "edge expansion requires an edge" test_edge_expansion_requires_edge;
    case "full walk expansion" test_expand_closed_walk;
    case "odd nb closed walks" test_odd_nb_closed_walk;
    case "repair backtracking" test_repair_backtracking;
    case "repair is identity on good walks" test_repair_idempotent;
    case "lift to V(D,n)" test_lift;
    case "view-walk non-backtracking" test_is_non_backtracking_views;
  ]
