open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let star_view ~k labels pos =
  let kk = Array.length labels - 1 in
  ignore k;
  View.extract (Instance.make (Builders.star kk) ~labels) ~r:1 pos

let test_k2_matches_degree_one_on_honest () =
  (* the two decoders agree on honest degree-one certificates *)
  List.iter
    (fun g ->
      let inst = Instance.make g in
      match (D_degree_one.prover inst, D_hidden_leaf.prover ~k:2 inst) with
      | Some l1, Some l2 ->
          let i1 = Instance.with_labels inst l1 in
          let i2 = Instance.with_labels inst l2 in
          check_bool "degree-one accepts its certs" true
            (Decoder.accepts_all D_degree_one.decoder i1);
          check_bool "hidden-leaf accepts its certs" true
            (Decoder.accepts_all (D_hidden_leaf.decoder ~k:2) i2);
          check_bool "cross-acceptance" true
            (Decoder.accepts_all (D_hidden_leaf.decoder ~k:2) i1)
      | _ -> Alcotest.fail "provers should succeed")
    [ Builders.path 5; Builders.star 3; Builders.caterpillar 3 1 ]

let test_top_distinct_color_bound () =
  (* k = 3, a top with neighbors colored 0,1: fine; 0,1,2: rejected *)
  let d3 = D_hidden_leaf.decoder ~k:3 in
  let ok = star_view ~k:3 [| "T"; "B"; "0"; "1" |] 0 in
  check_bool "two distinct colors pass at k=3" true (d3.Decoder.accepts ok);
  let bad = star_view ~k:3 [| "T"; "B"; "0"; "1"; "2" |] 0 in
  check_bool "three distinct colors rejected at k=3" false (d3.Decoder.accepts bad);
  let dup = star_view ~k:3 [| "T"; "B"; "0"; "1"; "1" |] 0 in
  check_bool "duplicates do not count" true (d3.Decoder.accepts dup)

let test_colored_rules_k3 () =
  let d3 = D_hidden_leaf.decoder ~k:3 in
  let v = star_view ~k:3 [| "0"; "1"; "2"; "1" |] 0 in
  check_bool "distinct-from-me suffices at k=3" true (d3.Decoder.accepts v);
  let clash = star_view ~k:3 [| "1"; "1"; "2"; "0" |] 0 in
  check_bool "own color clash rejected" false (d3.Decoder.accepts clash);
  let out_of_range = star_view ~k:3 [| "3"; "1"; "2"; "0" |] 0 in
  check_bool "color 3 invalid at k=3" false (d3.Decoder.accepts out_of_range)

let test_prover_k3 () =
  (* a non-bipartite but 3-colorable graph with a leaf *)
  let g = Builders.pendant (Builders.cycle 5) 0 in
  let inst = Instance.make g in
  check_bool "k=2 prover refuses (not bipartite)" true
    (D_hidden_leaf.prover ~k:2 inst = None);
  match D_hidden_leaf.prover ~k:3 inst with
  | Some lab ->
      check_bool "k=3 accepted" true
        (Decoder.accepts_all (D_hidden_leaf.decoder ~k:3) (Instance.with_labels inst lab))
  | None -> Alcotest.fail "C5 + pendant is 3-colorable with a leaf"

let test_strong_soundness_k3_exhaustive () =
  let suite = D_hidden_leaf.suite ~k:3 in
  let verdicts =
    Checker.strong_soundness_exhaustive suite ~k:3
      (List.map Instance.make [ k4 (); Builders.cycle 4; Builders.path 4 ])
  in
  check_bool "k=3 strong soundness" true (Checker.is_pass verdicts)

let test_soundness_k3_on_k4 () =
  (* K4 is not 3-colorable: no certificate assignment may be accepted *)
  let suite = D_hidden_leaf.suite ~k:3 in
  let i = Instance.make (k4 ()) in
  check_bool "K4 rejected" true
    (Prover.find_accepted suite.Decoder.dec
       ~alphabet:(suite.Decoder.adversary_alphabet i)
       i
    = None)

let test_alphabet () =
  check_int "k=3 alphabet size" 6 (List.length (D_hidden_leaf.alphabet ~k:3));
  check_int "k=2 alphabet size" 5 (List.length (D_hidden_leaf.alphabet ~k:2))

let suite =
  [
    case "k=2 agrees with degree-one" test_k2_matches_degree_one_on_honest;
    case "top distinct-color bound" test_top_distinct_color_bound;
    case "colored rules at k=3" test_colored_rules_k3;
    case "prover at k=3" test_prover_k3;
    case "strong soundness k=3 exhaustive" test_strong_soundness_k3_exhaustive;
    case "soundness on K4" test_soundness_k3_on_k4;
    case "alphabet" test_alphabet;
  ]
