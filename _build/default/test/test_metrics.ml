open Lcp_graph
open Helpers

let test_bfs_dist () =
  let g = Builders.path 5 in
  let d = Metrics.bfs_dist g 0 in
  Alcotest.(check int_list) "path distances" [ 0; 1; 2; 3; 4 ] (Array.to_list d);
  let g2 = Graph.disjoint_union (Builders.path 2) (Builders.path 2) in
  check_bool "unreachable" true ((Metrics.bfs_dist g2 0).(3) = max_int)

let test_dist () =
  check_int "cycle antipodal" 3 (Metrics.dist (Builders.cycle 6) 0 3);
  check_int "self" 0 (Metrics.dist (Builders.cycle 6) 2 2)

let test_all_pairs () =
  let m = Metrics.all_pairs_dist (Builders.cycle 4) in
  check_int "0-2" 2 m.(0).(2);
  check_int "symmetric" m.(1).(3) m.(3).(1)

let test_ball () =
  let g = Builders.path 7 in
  Alcotest.(check int_list) "ball r=2 around 3" [ 1; 2; 3; 4; 5 ] (Metrics.ball g 3 2);
  Alcotest.(check int_list) "ball r=0" [ 3 ] (Metrics.ball g 3 0);
  Alcotest.(check int_list) "ball covers all" [ 0; 1; 2; 3; 4; 5; 6 ]
    (Metrics.ball g 3 10)

let test_eccentricity_diameter_radius () =
  let g = Builders.path 5 in
  check_int "ecc of end" 4 (Metrics.eccentricity g 0);
  check_int "ecc of middle" 2 (Metrics.eccentricity g 2);
  check_int "diameter" 4 (Metrics.diameter g);
  check_int "radius" 2 (Metrics.radius g);
  check_int "diameter of K1" 0 (Metrics.diameter (Graph.empty 1));
  check_bool "disconnected diameter" true
    (Metrics.diameter (Graph.empty 2) = max_int)

let test_girth () =
  Alcotest.(check (option int)) "tree" None (Metrics.girth (Builders.path 5));
  Alcotest.(check (option int)) "C7" (Some 7) (Metrics.girth (Builders.cycle 7));
  Alcotest.(check (option int)) "K4" (Some 3) (Metrics.girth (Builders.complete 4));
  Alcotest.(check (option int)) "theta(2,2,3)" (Some 4)
    (Metrics.girth (Builders.theta 2 2 3));
  Alcotest.(check (option int)) "hypercube" (Some 4)
    (Metrics.girth (Builders.hypercube 3))

let test_shortest_path () =
  let g = Builders.cycle 6 in
  (match Metrics.shortest_path g 0 3 with
  | Some p ->
      check_int "length" 4 (List.length p);
      check_bool "valid walk" true (Walks.is_walk g p)
  | None -> Alcotest.fail "no path");
  Alcotest.(check (option (list int))) "disconnected" None
    (Metrics.shortest_path (Graph.empty 2) 0 1);
  Alcotest.(check (option (list int))) "self" (Some [ 2 ])
    (Metrics.shortest_path g 2 2)

let test_shortest_path_avoiding () =
  let g = Builders.cycle 6 in
  (* forbid node 1: the 0 -> 2 path must go the long way *)
  match Metrics.shortest_path_avoiding g ~avoid:(fun v -> v = 1) 0 2 with
  | Some p ->
      check_int "detour length" 5 (List.length p);
      check_bool "avoids 1" true (not (List.mem 1 p))
  | None -> Alcotest.fail "no avoiding path"

let test_avoiding_blocked () =
  let g = Builders.path 3 in
  Alcotest.(check (option (list int))) "cut vertex blocks" None
    (Metrics.shortest_path_avoiding g ~avoid:(fun v -> v = 1) 0 2)

let suite =
  [
    case "bfs distances" test_bfs_dist;
    case "pairwise distance" test_dist;
    case "all pairs" test_all_pairs;
    case "balls" test_ball;
    case "eccentricity / diameter / radius" test_eccentricity_diameter_radius;
    case "girth" test_girth;
    case "shortest path" test_shortest_path;
    case "shortest path avoiding" test_shortest_path_avoiding;
    case "avoiding a cut vertex" test_avoiding_blocked;
  ]
