open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let dec = D_trivial.decoder ~k:2

let view_of labels pos =
  View.extract (Instance.make (Builders.path 3) ~labels) ~r:1 pos

let test_accepts_proper () =
  check_bool "middle of 010" true (dec.Decoder.accepts (view_of [| "0"; "1"; "0" |] 1));
  check_bool "end" true (dec.Decoder.accepts (view_of [| "0"; "1"; "0" |] 0))

let test_rejects_clash () =
  check_bool "monochromatic edge" false
    (dec.Decoder.accepts (view_of [| "0"; "0"; "1" |] 0));
  check_bool "clash at middle" false
    (dec.Decoder.accepts (view_of [| "0"; "0"; "0" |] 1))

let test_rejects_malformed () =
  check_bool "own junk" false (dec.Decoder.accepts (view_of [| "x"; "1"; "0" |] 0));
  check_bool "neighbor junk" false (dec.Decoder.accepts (view_of [| "0"; "x"; "0" |] 0));
  check_bool "out of range" false (dec.Decoder.accepts (view_of [| "2"; "1"; "0" |] 0));
  check_bool "negative" false (dec.Decoder.accepts (view_of [| "-1"; "0"; "1" |] 0))

let test_k3 () =
  let d3 = D_trivial.decoder ~k:3 in
  check_bool "color 2 valid at k=3" true
    (d3.Decoder.accepts (view_of [| "2"; "1"; "0" |] 0));
  check_bool "color 2 invalid at k=2" false
    (dec.Decoder.accepts (view_of [| "2"; "1"; "0" |] 0))

let test_prover_matches_promise () =
  check_bool "C5 refused" true (D_trivial.prover ~k:2 (Instance.make (c5 ())) = None);
  match D_trivial.prover ~k:3 (Instance.make (c5 ())) with
  | Some lab ->
      check_bool "proper 3-coloring" true
        (Coloring.is_proper_k (c5 ()) ~k:3 (Array.map int_of_string lab))
  | None -> Alcotest.fail "C5 is 3-colorable"

let test_isolated_node () =
  let i = Instance.make (Graph.empty 1) ~labels:[| "0" |] in
  check_bool "isolated accepts" true (Decoder.accepts_all dec i)

let suite =
  [
    case "accepts proper colorings" test_accepts_proper;
    case "rejects clashes" test_rejects_clash;
    case "rejects malformed certificates" test_rejects_malformed;
    case "k parameter" test_k3;
    case "prover respects colorability" test_prover_matches_promise;
    case "isolated node" test_isolated_node;
  ]
