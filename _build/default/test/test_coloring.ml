open Lcp_graph
open Helpers

let test_is_proper () =
  let g = Builders.path 3 in
  check_bool "alternating" true (Coloring.is_proper g [| 0; 1; 0 |]);
  check_bool "clash" false (Coloring.is_proper g [| 0; 0; 1 |]);
  check_bool "wrong length" false (Coloring.is_proper g [| 0; 1 |]);
  check_bool "arbitrary values ok" true (Coloring.is_proper g [| 7; -2; 7 |])

let test_is_proper_k () =
  let g = Builders.path 3 in
  check_bool "within range" true (Coloring.is_proper_k g ~k:2 [| 0; 1; 0 |]);
  check_bool "out of range" false (Coloring.is_proper_k g ~k:2 [| 0; 2; 0 |])

let test_two_color () =
  (match Coloring.two_color (Builders.cycle 6) with
  | Some c -> check_bool "proper" true (Coloring.is_proper_k (Builders.cycle 6) ~k:2 c)
  | None -> Alcotest.fail "C6 bipartite");
  Alcotest.(check bool) "C5 not bipartite" true (Coloring.two_color (c5 ()) = None);
  (match Coloring.two_color (Graph.empty 3) with
  | Some c -> Alcotest.(check int_list) "all zero" [ 0; 0; 0 ] (Array.to_list c)
  | None -> Alcotest.fail "edgeless bipartite")

let test_two_color_components () =
  let g = Graph.disjoint_union (Builders.cycle 4) (Builders.path 3) in
  match Coloring.two_color g with
  | Some c -> check_bool "proper across components" true (Coloring.is_proper g c)
  | None -> Alcotest.fail "bipartite union"

let test_is_bipartite () =
  check_bool "grid" true (Coloring.is_bipartite (Builders.grid 3 3));
  check_bool "petersen" false (Coloring.is_bipartite (Builders.petersen ()));
  check_bool "K4" false (Coloring.is_bipartite (k4 ()))

let test_odd_cycle_witness () =
  List.iter
    (fun g ->
      match Coloring.odd_cycle g with
      | Some w ->
          check_bool "odd closed walk" true (Coloring.odd_closed_walk_check g w)
      | None -> Alcotest.fail "expected odd cycle")
    [ c5 (); k4 (); Builders.petersen (); Builders.friendship 2;
      Builders.watermelon [ 2; 3 ];
      Graph.disjoint_union (Builders.path 4) (Builders.cycle 3) ]

let test_odd_cycle_none () =
  Alcotest.(check bool) "bipartite has none" true
    (Coloring.odd_cycle (Builders.grid 4 4) = None)

let test_odd_closed_walk_check () =
  let g = c5 () in
  check_bool "the 5-cycle" true (Coloring.odd_closed_walk_check g [ 0; 1; 2; 3; 4 ]);
  check_bool "even walk" false (Coloring.odd_closed_walk_check g [ 0; 1; 2; 1 ]);
  check_bool "broken walk" false (Coloring.odd_closed_walk_check g [ 0; 2; 4 ]);
  check_bool "too short" false (Coloring.odd_closed_walk_check g [ 0 ])

let test_k_color () =
  (match Coloring.k_color (c5 ()) ~k:3 with
  | Some c -> check_bool "proper 3" true (Coloring.is_proper_k (c5 ()) ~k:3 c)
  | None -> Alcotest.fail "C5 is 3-colorable");
  check_bool "C5 not 2-colorable" true (Coloring.k_color (c5 ()) ~k:2 = None);
  check_bool "K4 not 3-colorable" true (Coloring.k_color (k4 ()) ~k:3 = None);
  (match Coloring.k_color (k4 ()) ~k:4 with
  | Some c -> check_bool "proper 4" true (Coloring.is_proper_k (k4 ()) ~k:4 c)
  | None -> Alcotest.fail "K4 is 4-colorable");
  check_bool "k=0 empty graph" true (Coloring.k_color (Graph.empty 0) ~k:0 <> None);
  check_bool "k=1 edgeless" true (Coloring.k_color (Graph.empty 4) ~k:1 <> None);
  check_bool "k=1 with edge" true (Coloring.k_color (Builders.path 2) ~k:1 = None)

let test_k_color_components () =
  (* per-component solving: a non-2-colorable component after many
     bipartite ones must still be detected quickly *)
  let g =
    List.fold_left
      (fun acc g -> Graph.disjoint_union acc g)
      (Builders.cycle 4)
      [ Builders.cycle 4; Builders.cycle 4; Builders.cycle 5 ]
  in
  check_bool "detects the C5" true (Coloring.k_color g ~k:2 = None);
  match Coloring.k_color g ~k:3 with
  | Some c -> check_bool "3-colors all" true (Coloring.is_proper_k g ~k:3 c)
  | None -> Alcotest.fail "3-colorable"

let test_chromatic_number () =
  check_int "empty" 0 (Coloring.chromatic_number (Graph.empty 0));
  check_int "edgeless" 1 (Coloring.chromatic_number (Graph.empty 3));
  check_int "P4" 2 (Coloring.chromatic_number (Builders.path 4));
  check_int "C5" 3 (Coloring.chromatic_number (c5 ()));
  check_int "K5" 5 (Coloring.chromatic_number (Builders.complete 5));
  check_int "petersen" 3 (Coloring.chromatic_number (Builders.petersen ()))

let test_greedy () =
  let g = Builders.petersen () in
  let c = Coloring.greedy g in
  check_bool "proper" true (Coloring.is_proper g c);
  check_bool "at most Delta+1 colors" true
    (Array.for_all (fun x -> x <= Graph.max_degree g) c)

let suite =
  [
    case "is_proper" test_is_proper;
    case "is_proper_k" test_is_proper_k;
    case "two_color" test_two_color;
    case "two_color across components" test_two_color_components;
    case "is_bipartite" test_is_bipartite;
    case "odd cycle witnesses" test_odd_cycle_witness;
    case "odd cycle absent" test_odd_cycle_none;
    case "odd closed walk check" test_odd_closed_walk_check;
    case "k_color" test_k_color;
    case "k_color per component" test_k_color_components;
    case "chromatic number" test_chromatic_number;
    case "greedy" test_greedy;
  ]
