open Lcp_graph
open Lcp_local
open Helpers

let test_canonical_valid () =
  let g = Builders.grid 3 3 in
  let p = Port.canonical g in
  check_bool "valid" true (Port.is_valid g p)

let test_random_valid () =
  let g = Builders.petersen () in
  let p = Port.random (rng ()) g in
  check_bool "valid" true (Port.is_valid g p)

let test_roundtrip () =
  let g = Builders.star 3 in
  let p = Port.canonical g in
  for q = 1 to 3 do
    let w = Port.neighbor_at p 0 q in
    check_int "roundtrip" q (Port.port_of p 0 w)
  done

let test_port_of_missing () =
  let g = Builders.path 3 in
  let p = Port.canonical g in
  (try
     ignore (Port.port_of p 0 2);
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

let test_neighbor_at_range () =
  let g = Builders.path 3 in
  let p = Port.canonical g in
  (try
     ignore (Port.neighbor_at p 0 2);
     Alcotest.fail "expected range failure"
   with Invalid_argument _ -> ())

let test_is_valid_rejects () =
  let g = Builders.path 3 in
  check_bool "wrong neighbor set" false (Port.is_valid g [| [| 2 |]; [| 0; 2 |]; [| 1 |] |]);
  check_bool "wrong length" false (Port.is_valid g [| [| 1 |] |])

let test_enumerate () =
  let g = Builders.path 3 in
  (* middle node has 2 orderings, leaves 1 each *)
  check_int "count" 2 (List.length (Port.enumerate g));
  check_int "count formula" 2 (Port.count g);
  check_bool "all valid" true (List.for_all (Port.is_valid g) (Port.enumerate g));
  let s = Builders.star 3 in
  check_int "star count" 6 (Port.count s);
  check_int "star enumerate" 6 (List.length (Port.enumerate s))

let test_enumerate_distinct () =
  let g = Builders.cycle 4 in
  let all = Port.enumerate g in
  check_int "2^4 assignments" 16 (List.length all);
  check_int "distinct" 16 (List.length (List.sort_uniq Stdlib.compare all))

let suite =
  [
    case "canonical valid" test_canonical_valid;
    case "random valid" test_random_valid;
    case "port/neighbor roundtrip" test_roundtrip;
    case "port_of missing edge" test_port_of_missing;
    case "neighbor_at out of range" test_neighbor_at_range;
    case "is_valid rejects junk" test_is_valid_rejects;
    case "enumerate counts" test_enumerate;
    case "enumerate distinct" test_enumerate_distinct;
  ]
