open Lcp_graph
open Lcp_local
open Lcp
open Helpers

(* a deliberately broken suite: accepts everything *)
let accept_all_suite =
  {
    Decoder.dec = Decoder.make ~name:"accept-all" ~radius:1 ~anonymous:true (fun _ -> true);
    promise = (fun _ -> true);
    prover = (fun inst -> Some (Labeling.const inst.Instance.graph "ok"));
    adversary_alphabet = (fun _ -> [ "ok" ]);
    cert_bits = (fun _ -> 1);
  }

(* a broken prover: emits garbage *)
let broken_prover_suite =
  let t = D_trivial.suite ~k:2 in
  { t with Decoder.prover = (fun inst -> Some (Labeling.const inst.Instance.graph "9")) }

let test_completeness_pass () =
  let v =
    Checker.completeness (D_trivial.suite ~k:2)
      [ Instance.make (Builders.path 4); Instance.make (c4 ()) ]
  in
  check_bool "pass" true (Checker.is_pass v)

let test_completeness_skips_non_promise () =
  let v =
    Checker.completeness D_even_cycle.suite [ Instance.make (Builders.path 4) ]
  in
  (match v with
  | Checker.Pass { checked } -> check_int "skipped" 0 checked
  | Checker.Fail _ -> Alcotest.fail "should skip")

let test_completeness_detects_broken_prover () =
  let v = Checker.completeness broken_prover_suite [ Instance.make (Builders.path 4) ] in
  check_bool "fails" false (Checker.is_pass v)

let test_soundness_pass_and_fail () =
  check_bool "trivial sound on C5" true
    (Checker.is_pass
       (Checker.soundness_exhaustive (D_trivial.suite ~k:2) [ Instance.make (c5 ()) ]));
  (match Checker.soundness_exhaustive accept_all_suite [ Instance.make (c5 ()) ] with
  | Checker.Fail { detail; _ } ->
      check_bool "counterexample reported" true (String.length detail > 0)
  | Checker.Pass _ -> Alcotest.fail "accept-all is unsound")

let test_soundness_skips_bipartite () =
  match Checker.soundness_exhaustive accept_all_suite [ Instance.make (c4 ()) ] with
  | Checker.Pass { checked } -> check_int "skipped" 0 checked
  | Checker.Fail _ -> Alcotest.fail "bipartite skipped"

let test_strong_exhaustive () =
  check_bool "trivial strongly sound on C3" true
    (Checker.is_pass
       (Checker.strong_soundness_exhaustive (D_trivial.suite ~k:2) ~k:2
          [ Instance.make (Builders.cycle 3) ]));
  (match
     Checker.strong_soundness_exhaustive accept_all_suite ~k:2
       [ Instance.make (Builders.cycle 3) ]
   with
  | Checker.Fail { instance; _ } ->
      check_bool "counterexample is the C3" true
        (Graph.equal instance.Instance.graph (Builders.cycle 3))
  | Checker.Pass _ -> Alcotest.fail "accept-all violates strong soundness")

let test_strong_random () =
  check_bool "random finds accept-all violation" false
    (Checker.is_pass
       (Checker.strong_soundness_random accept_all_suite ~k:2 ~trials:50 (rng ())
          [ Instance.make (Builders.cycle 3) ]))

let test_strong_k3 () =
  (* strong soundness with k = 3 for the trivial 3-coloring LCP on K4 *)
  check_bool "3-col strongly sound on K4" true
    (Checker.is_pass
       (Checker.strong_soundness_exhaustive (D_trivial.suite ~k:3) ~k:3
          [ Instance.make (k4 ()) ]))

let test_anonymity_checker () =
  let i = certify_exn (D_trivial.suite ~k:2) (Builders.path 4) in
  check_bool "trivial anonymous" true
    (Checker.is_pass (Checker.anonymity (D_trivial.decoder ~k:2) ~trials:10 (rng ()) [ i ]));
  let id_peek =
    Decoder.make ~name:"peek" ~radius:1 ~anonymous:false (fun v ->
        View.center_id v mod 2 = 0)
  in
  check_bool "peeking decoder caught" false
    (Checker.is_pass (Checker.anonymity id_peek ~trials:10 (rng ()) [ i ]))

let test_order_invariance_checker () =
  let i = certify_exn (D_trivial.suite ~k:2) (Builders.path 4) in
  let local_max =
    Decoder.make ~name:"lmax" ~radius:1 ~anonymous:false (fun v ->
        let m = View.size v in
        let rec go u = u = m || (View.id v u <= View.center_id v && go (u + 1)) in
        go 0)
  in
  check_bool "order-invariant decoder passes" true
    (Checker.is_pass (Checker.order_invariance local_max ~trials:10 (rng ()) [ i ]))

let test_pp_verdict () =
  let s =
    Format.asprintf "%a" Checker.pp_verdict (Checker.Pass { checked = 3 })
  in
  check_bool "prints" true (String.length s > 0)

let suite =
  [
    case "completeness pass" test_completeness_pass;
    case "completeness skips non-promise" test_completeness_skips_non_promise;
    case "completeness detects broken prover" test_completeness_detects_broken_prover;
    case "soundness pass/fail" test_soundness_pass_and_fail;
    case "soundness skips bipartite" test_soundness_skips_bipartite;
    case "strong soundness exhaustive" test_strong_exhaustive;
    case "strong soundness random" test_strong_random;
    case "strong soundness k=3" test_strong_k3;
    case "anonymity checker" test_anonymity_checker;
    case "order-invariance checker" test_order_invariance_checker;
    case "verdict printing" test_pp_verdict;
  ]
