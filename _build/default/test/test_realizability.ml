open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let accept_all =
  Decoder.make ~name:"accept-all" ~radius:1 ~anonymous:false (fun _ -> true)

let rotation_instances () =
  let g = Builders.path 5 in
  List.init 5 (fun k ->
      let ids = Array.init 5 (fun v -> 1 + ((k + v) mod 5)) in
      Instance.make g ~ids:(Ident.of_array ~bound:5 ids))

let test_compatible_same_instance () =
  let i = List.hd (rotation_instances ()) in
  let mu1 = View.extract i ~r:1 1 and mu2 = View.extract i ~r:1 2 in
  let u = Option.get (View.find_by_id mu1 (View.center_id mu2)) in
  check_bool "adjacent views compatible" true (Realizability.compatible mu1 u mu2)

let test_compatible_id_mismatch () =
  let i = List.hd (rotation_instances ()) in
  let mu1 = View.extract i ~r:1 1 and mu2 = View.extract i ~r:1 2 in
  (* node 0 of mu1 is not the center id of mu2 *)
  let wrong = Option.get (View.find_by_id mu1 1) in
  check_bool "wrong id incompatible" false (Realizability.compatible mu1 wrong mu2)

let test_compatible_interior_conflict () =
  (* two radius-2 views disagreeing on an interior node's edges *)
  let i1 = Instance.make (Builders.path 5) in
  let i2 = Instance.make (Builders.star 4) in
  (* node with id 2 is interior in both views but has different
     radius-1 surroundings *)
  let mu1 = View.extract i1 ~r:2 2 in
  let mu2 = View.extract i2 ~r:2 1 in
  (* mu2's center is the leaf with id 2 of the star *)
  match View.find_by_id mu1 (View.center_id mu2) with
  | Some u -> check_bool "conflict detected" false (Realizability.compatible mu1 u mu2)
  | None -> Alcotest.fail "id 2 present in the path view"

let test_ids_and_occurrences () =
  let insts = rotation_instances () in
  let nbhd = Neighborhood.build accept_all insts in
  let cyc = Option.get (Neighborhood.odd_cycle nbhd) in
  let h = Realizability.of_neighborhood nbhd cyc in
  Alcotest.(check int_list) "all five ids" [ 1; 2; 3; 4; 5 ] (Realizability.ids_of h);
  List.iter
    (fun i ->
      check_int "each id occurs in 3 views of the cycle" 3
        (List.length (Realizability.occurrences h i)))
    (Realizability.ids_of h)

let full_pipeline () =
  let insts = rotation_instances () in
  let nbhd = Neighborhood.build accept_all insts in
  let cyc = Option.get (Neighborhood.odd_cycle nbhd) in
  let h = Realizability.of_neighborhood nbhd cyc in
  let pool =
    List.concat_map (fun i -> Array.to_list (View.extract_all i ~r:1)) insts
  in
  (h, pool)

let test_realizable () =
  let h, pool = full_pipeline () in
  match Realizability.realizable ~pool h with
  | Some assignment ->
      check_int "one view per id" 5 (List.length assignment);
      check_bool "views centered correctly" true
        (List.for_all (fun (i, v) -> View.center_id v = i) assignment)
  | None -> Alcotest.fail "rotation cycle is realizable"

let test_realize_gbad () =
  let h, pool = full_pipeline () in
  let assignment = Option.get (Realizability.realizable ~pool h) in
  match Realizability.realize assignment with
  | Ok realization ->
      let g = realization.Realizability.instance.Instance.graph in
      check_int "C5 nodes" 5 (Graph.order g);
      check_int "C5 edges" 5 (Graph.size g);
      check_bool "odd cycle" false (Coloring.is_bipartite g);
      check_bool "valid instance" true (Instance.is_valid realization.Realizability.instance);
      check_bool "centers accepted" true
        (Realizability.centers_accepted accept_all h realization)
  | Error e -> Alcotest.fail ("gluing failed: " ^ e)

let test_lemma_5_1_end_to_end () =
  let h, pool = full_pipeline () in
  match Realizability.lemma_5_1 accept_all ~pool h with
  | Ok realization ->
      check_bool "non-bipartite witness" false
        (Coloring.is_bipartite realization.Realizability.instance.Instance.graph)
  | Error e -> Alcotest.fail e

let test_label_conflict_detected () =
  (* two centered views claiming the same id with different labels *)
  let g = Builders.path 3 in
  let i1 = Instance.make g ~labels:[| "a"; "b"; "c" |] in
  let i2 = Instance.make g ~labels:[| "a"; "x"; "c" |] in
  let mu1 = View.extract i1 ~r:1 0 in
  let mu2 = View.extract i2 ~r:1 1 in
  match Realizability.realize [ (1, mu1); (2, mu2) ] with
  | Error e -> check_bool "conflict reported" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected label conflict"

let test_realize_rejects_off_center () =
  let g = Builders.path 3 in
  let i = Instance.make g in
  let mu = View.extract i ~r:1 0 in
  match Realizability.realize [ (2, mu) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "view centered at id 1 cannot stand for id 2"

let test_walk_subgraph () =
  let insts = rotation_instances () in
  let nbhd = Neighborhood.build accept_all insts in
  let cyc = Option.get (Neighborhood.odd_cycle nbhd) in
  let h = Realizability.walk_subgraph nbhd cyc in
  check_int "edges = walk length" (List.length cyc)
    (List.length h.Realizability.edges)

let test_paper_decoder_no_violation () =
  (* the degree-one decoder is strongly sound: its odd identified view
     cycles (if any) must never pass the full Lemma 5.1 pipeline *)
  let suite = D_degree_one.suite in
  let graphs =
    Enumerate.connected_up_to_iso 4 |> Enumerate.bipartite
    |> List.filter (fun g -> Graph.min_degree g = 1)
  in
  let fam = Neighborhood.exhaustive_family suite ~graphs () in
  let nb = Neighborhood.build ~mode:Neighborhood.Identified suite.Decoder.dec fam in
  match Neighborhood.odd_cycle nb with
  | None -> ()
  | Some cyc -> (
      let h = Realizability.of_neighborhood nb cyc in
      let pool = List.concat_map (fun i -> Array.to_list (View.extract_all i ~r:1)) fam in
      match Realizability.lemma_5_1 suite.Decoder.dec ~pool h with
      | Error _ -> ()
      | Ok realization ->
          check_bool "any realization stays bipartite" true
            (Coloring.is_bipartite realization.Realizability.instance.Instance.graph))

let suite =
  [
    case "compatibility of adjacent views" test_compatible_same_instance;
    case "compatibility needs matching ids" test_compatible_id_mismatch;
    case "interior conflicts break compatibility" test_compatible_interior_conflict;
    case "ids and occurrences" test_ids_and_occurrences;
    case "realizable odd cycle" test_realizable;
    case "G_bad gluing" test_realize_gbad;
    case "Lemma 5.1 end to end" test_lemma_5_1_end_to_end;
    case "label conflicts detected" test_label_conflict_detected;
    case "off-center assignment rejected" test_realize_rejects_off_center;
    case "walk subgraph" test_walk_subgraph;
    case "paper decoder yields no violation" test_paper_decoder_no_violation;
  ]
