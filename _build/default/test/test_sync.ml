open Lcp_graph
open Lcp_local
open Helpers

let test_round_zero () =
  let i = Instance.make (Builders.path 3) ~labels:[| "a"; "b"; "c" |] in
  let k = Sync_runner.run i ~rounds:0 in
  check_int "only own fact" 1 (List.length k.(0).Sync_runner.node_facts);
  check_int "no edge facts" 0 (List.length k.(0).Sync_runner.edge_facts)

let test_one_round () =
  let i = Instance.make (Builders.path 3) in
  let k = Sync_runner.run i ~rounds:1 in
  (* middle node learns both neighbors and both incident edges *)
  check_int "middle node facts" 3 (List.length k.(1).Sync_runner.node_facts);
  check_int "middle edge facts" 2 (List.length k.(1).Sync_runner.edge_facts);
  check_int "leaf node facts" 2 (List.length k.(0).Sync_runner.node_facts);
  check_int "leaf edge facts" 1 (List.length k.(0).Sync_runner.edge_facts)

let test_saturation () =
  let i = Instance.make (Builders.cycle 5) in
  let k = Sync_runner.run i ~rounds:10 in
  check_int "knows all nodes" 5 (List.length k.(0).Sync_runner.node_facts);
  check_int "knows all edges" 5 (List.length k.(0).Sync_runner.edge_facts)

let test_matches_views_deterministic () =
  List.iter
    (fun g ->
      let i = Instance.make g in
      List.iter
        (fun r ->
          check_bool "matches" true (Sync_runner.knowledge_matches_view i ~r))
        [ 1; 2; 3 ])
    [ Builders.path 6; Builders.cycle 7; Builders.star 4; Builders.grid 3 3;
      Builders.theta 2 2 3 ]

let test_matches_views_random_ports () =
  let r = rng () in
  let g = Builders.petersen () in
  let i = Instance.random r g in
  check_bool "random instance matches r=2" true
    (Sync_runner.knowledge_matches_view i ~r:2)

let test_messages () =
  check_int "2|E|r" 30 (Sync_runner.messages_sent (Builders.cycle 5) ~rounds:3)

let suite =
  [
    case "round zero" test_round_zero;
    case "one round" test_one_round;
    case "saturation" test_saturation;
    case "knowledge = views (fixed graphs)" test_matches_views_deterministic;
    case "knowledge = views (random ports/ids)" test_matches_views_random_ports;
    case "message count" test_messages;
  ]
