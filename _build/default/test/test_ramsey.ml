open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let test_combinations () =
  check_int "C(4,2)" 6 (List.length (Ramsey.combinations [ 1; 2; 3; 4 ] 2));
  check_int "C(5,0)" 1 (List.length (Ramsey.combinations [ 1; 2; 3; 4; 5 ] 0));
  check_int "C(3,4)" 0 (List.length (Ramsey.combinations [ 1; 2; 3 ] 4));
  check_bool "sorted members" true
    (List.for_all
       (fun c -> c = List.sort Stdlib.compare c)
       (Ramsey.combinations [ 1; 2; 3; 4; 5 ] 3))

let test_monochromatic_subset () =
  (* color pairs by sum parity: {1,3,5,7} is monochromatic *)
  let color = function [ a; b ] -> (a + b) mod 2 | _ -> assert false in
  (match
     Ramsey.monochromatic_subset ~universe:[ 1; 2; 3; 4; 5; 6; 7 ] ~tuple_size:2
       ~size:4 ~color
   with
  | Some ys ->
      check_bool "monochromatic" true
        (List.for_all (fun t -> color t = color (List.filteri (fun i _ -> i < 2) ys))
           (Ramsey.combinations ys 2))
  | None -> Alcotest.fail "same-parity quadruple exists");
  (* rainbow coloring has no monochromatic pair set of size 3 *)
  let tbl = Hashtbl.create 16 in
  let next = ref 0 in
  let rainbow t =
    match Hashtbl.find_opt tbl t with
    | Some c -> c
    | None ->
        incr next;
        Hashtbl.replace tbl t !next;
        !next
  in
  check_bool "rainbow has none" true
    (Ramsey.monochromatic_subset ~universe:[ 1; 2; 3; 4 ] ~tuple_size:2 ~size:3
       ~color:rainbow
    = None)

let test_arrows () =
  check_bool "6 -> (3,3)" true (Ramsey.arrows ~n:6 ~s:3 ~t:3);
  check_bool "5 -/-> (3,3)" false (Ramsey.arrows ~n:5 ~s:3 ~t:3);
  check_bool "3 -> (3,2)" true (Ramsey.arrows ~n:3 ~s:3 ~t:2)

let test_ramsey_number () =
  check_int "R(3,3)" 6 (Ramsey.ramsey_number ~s:3 ~t:3);
  check_int "R(2,4)" 4 (Ramsey.ramsey_number ~s:2 ~t:4)

let quirky =
  let trivial = D_trivial.decoder ~k:2 in
  Decoder.make ~name:"quirky" ~radius:1 ~anonymous:false (fun view ->
      View.center_id view mod 3 = 0 || trivial.Decoder.accepts view)

let shapes () =
  let p4 = Instance.make (Builders.path 4) in
  let good = Instance.with_labels p4 [| "0"; "1"; "0"; "1" |] in
  let bad = Instance.with_labels p4 [| "0"; "0"; "0"; "0" |] in
  Array.to_list (View.extract_all good ~r:1) @ Array.to_list (View.extract_all bad ~r:1)

let test_decoder_type () =
  let shapes = shapes () in
  let ty = Ramsey.decoder_type quirky ~shapes [ 1; 2; 4; 5 ] in
  check_int "one bit per shape" (List.length shapes) (List.length ty);
  (* a tuple containing a multiple of 3 in a center position changes
     the type *)
  let ty3 = Ramsey.decoder_type quirky ~shapes [ 3; 6; 9; 12 ] in
  check_bool "quirk visible" true (ty <> ty3)

let test_type_color_memo () =
  let shapes = shapes () in
  let color, count = Ramsey.type_color quirky ~shapes in
  let c1 = color [ 1; 2; 4; 5 ] in
  check_int "memoized" c1 (color [ 1; 2; 4; 5 ]);
  ignore (color [ 3; 6; 9; 12 ]);
  check_bool "at least two types" true (count () >= 2)

let test_monochromatic_ids_and_reduction () =
  let shapes = shapes () in
  match
    Ramsey.monochromatic_ids quirky ~shapes
      ~universe:(List.init 10 (fun i -> i + 1))
      ~size:5
  with
  | None -> Alcotest.fail "monochromatic set exists (avoid multiples of 3)"
  | Some mono ->
      let d' = Ramsey.order_invariant_decoder quirky ~mono in
      let p4 = Instance.make (Builders.path 4) in
      let good = Instance.with_labels p4 [| "0"; "1"; "0"; "1" |] in
      check_bool "order-invariant" true
        (Checker.is_pass (Checker.order_invariance d' ~trials:15 (rng ()) [ good ]));
      (* on the monochromatic set the quirk is gone: D' behaves like the
         plain trivial verifier *)
      let trivial = D_trivial.decoder ~k:2 in
      let bad = Instance.with_labels p4 [| "0"; "0"; "1"; "0" |] in
      List.iter
        (fun i ->
          Alcotest.(check (array bool))
            "agrees with trivial" (Decoder.run trivial i) (Decoder.run d' i))
        [ good; bad ]

let suite =
  [
    case "combinations" test_combinations;
    case "monochromatic subsets" test_monochromatic_subset;
    case "arrows" test_arrows;
    case "ramsey numbers" test_ramsey_number;
    case "decoder types" test_decoder_type;
    case "type coloring memoized" test_type_color_memo;
    case "monochromatic ids and the induced decoder" test_monochromatic_ids_and_reduction;
  ]
