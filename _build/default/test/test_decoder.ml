open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let accept_even_id =
  Decoder.make ~name:"even-id" ~radius:1 ~anonymous:false (fun v ->
      View.center_id v mod 2 = 0)

let test_run () =
  let i = Instance.make (Builders.path 4) in
  Alcotest.(check (array bool)) "verdicts" [| false; true; false; true |]
    (Decoder.run accept_even_id i)

let test_accepts_all () =
  let i = Instance.make (Builders.path 4) in
  check_bool "not all" false (Decoder.accepts_all accept_even_id i);
  let all = Decoder.make ~name:"t" ~radius:1 ~anonymous:true (fun _ -> true) in
  check_bool "all" true (Decoder.accepts_all all i)

let test_accepting_nodes () =
  let i = Instance.make (Builders.path 4) in
  Alcotest.(check int_list) "evens" [ 1; 3 ] (Decoder.accepting_nodes accept_even_id i)

let test_accepted_subgraph () =
  let i = Instance.make (Builders.cycle 4) in
  let sub, back = Decoder.accepted_subgraph accept_even_id i in
  check_int "two accepting" 2 (Graph.order sub);
  check_int "no edge between 1 and 3" 0 (Graph.size sub);
  Alcotest.(check int_list) "mapping" [ 1; 3 ] (Array.to_list back)

let test_as_local_algo () =
  let i = Instance.make (Builders.path 3) in
  let algo = Decoder.as_local_algo accept_even_id in
  Alcotest.(check (array bool)) "same outputs" (Decoder.run accept_even_id i)
    (Local_algo.run_all algo i)

let test_certify () =
  let suite = D_trivial.suite ~k:2 in
  (match Decoder.certify suite (Instance.make (Builders.path 4)) with
  | Some c -> check_bool "accepted" true (Decoder.accepts_all suite.Decoder.dec c)
  | None -> Alcotest.fail "bipartite certifiable");
  check_bool "no cert for C5" true
    (Decoder.certify suite (Instance.make (c5 ())) = None)

let test_junk_rejected_by_all () =
  List.iter
    (fun (suite : Decoder.suite) ->
      let i =
        Instance.make (Builders.path 3) ~labels:(Array.make 3 Decoder.junk)
      in
      check_bool
        ("junk rejected by " ^ suite.Decoder.dec.Decoder.name)
        false
        (Array.exists (fun b -> b) (Decoder.run suite.Decoder.dec i)))
    [ D_trivial.suite ~k:2; D_degree_one.suite; D_even_cycle.suite;
      D_union.suite; D_shatter.suite; D_watermelon.suite; D_spanning.suite ]

let suite =
  [
    case "run" test_run;
    case "accepts_all" test_accepts_all;
    case "accepting_nodes" test_accepting_nodes;
    case "accepted_subgraph" test_accepted_subgraph;
    case "as_local_algo" test_as_local_algo;
    case "certify" test_certify;
    case "junk rejected everywhere" test_junk_rejected_by_all;
  ]
