open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let dec = D_degree_one.decoder

let path_view labels pos =
  let n = Array.length labels in
  View.extract (Instance.make (Builders.path n) ~labels) ~r:1 pos

let star_view labels pos =
  let k = Array.length labels - 1 in
  View.extract (Instance.make (Builders.star k) ~labels) ~r:1 pos

let test_bot_rules () =
  check_bool "leaf bot with top neighbor" true
    (dec.Decoder.accepts (path_view [| "B"; "T"; "0" |] 0));
  check_bool "bot needs top" false
    (dec.Decoder.accepts (path_view [| "B"; "0"; "1" |] 0));
  check_bool "bot needs degree 1" false
    (dec.Decoder.accepts (path_view [| "T"; "B"; "T" |] 1));
  check_bool "bot rejects bot neighbor" false
    (dec.Decoder.accepts (path_view [| "B"; "B"; "0" |] 0))

let test_top_rules () =
  check_bool "top between bot and color" true
    (dec.Decoder.accepts (path_view [| "B"; "T"; "0" |] 1));
  check_bool "top needs exactly one bot" false
    (dec.Decoder.accepts (path_view [| "B"; "T"; "B" |] 1));
  check_bool "top needs some bot" false
    (dec.Decoder.accepts (path_view [| "0"; "T"; "1" |] 1));
  (* star center: top with one bot and monochromatic other leaves *)
  check_bool "monochromatic colors ok" true
    (dec.Decoder.accepts (star_view [| "T"; "B"; "0"; "0" |] 0));
  check_bool "mixed colors rejected" false
    (dec.Decoder.accepts (star_view [| "T"; "B"; "0"; "1" |] 0))

let test_color_rules () =
  check_bool "alternating colors" true
    (dec.Decoder.accepts (path_view [| "1"; "0"; "1" |] 1));
  check_bool "same color rejected" false
    (dec.Decoder.accepts (path_view [| "1"; "1"; "0" |] 1));
  check_bool "one top neighbor allowed" true
    (dec.Decoder.accepts (path_view [| "T"; "0"; "1" |] 1));
  check_bool "two top neighbors rejected" false
    (dec.Decoder.accepts (path_view [| "T"; "0"; "T" |] 1));
  check_bool "bot neighbor rejected for colors" false
    (dec.Decoder.accepts (path_view [| "B"; "0"; "1" |] 1));
  check_bool "junk neighbor rejected" false
    (dec.Decoder.accepts (path_view [| "junk"; "0"; "1" |] 1))

let test_prover_hides_at_leaf () =
  let g = Builders.caterpillar 3 1 in
  let inst = Instance.make g in
  match D_degree_one.prover inst with
  | Some lab ->
      let bots = Array.to_list lab |> List.filter (fun s -> s = D_degree_one.bot) in
      let tops = Array.to_list lab |> List.filter (fun s -> s = D_degree_one.top) in
      check_int "one bot" 1 (List.length bots);
      check_int "one top" 1 (List.length tops);
      check_bool "accepted" true
        (Decoder.accepts_all dec (Instance.with_labels inst lab))
  | None -> Alcotest.fail "caterpillar certifiable"

let test_prover_refuses () =
  check_bool "no leaf" true (D_degree_one.prover (Instance.make (c4 ())) = None);
  check_bool "not bipartite" true
    (D_degree_one.prover (Instance.make (Builders.pendant (Builders.cycle 3) 0)) = None)

let test_strong_soundness_spot () =
  (* a triangle with one pendant: however the adversary labels it, the
     triangle can never be fully accepted *)
  let g = Builders.pendant (Builders.cycle 3) 0 in
  let inst = Instance.make g in
  let exception Bad in
  (try
     Labeling.iter_all ~alphabet:D_degree_one.alphabet g (fun lab ->
         let sub, _ =
           Decoder.accepted_subgraph dec (Instance.with_labels inst (Array.copy lab))
         in
         if not (Coloring.is_bipartite sub) then raise Bad);
     ()
   with Bad -> Alcotest.fail "strong soundness violated")

let test_anonymous () =
  let inst = certify_exn D_degree_one.suite (Builders.path 5) in
  check_bool "anonymous" true
    (Checker.is_pass (Checker.anonymity dec ~trials:10 (rng ()) [ inst ]))

let suite =
  [
    case "bot rules" test_bot_rules;
    case "top rules" test_top_rules;
    case "color rules" test_color_rules;
    case "prover hides at one leaf" test_prover_hides_at_leaf;
    case "prover refuses non-promise inputs" test_prover_refuses;
    case "strong soundness spot check" test_strong_soundness_spot;
    case "anonymity" test_anonymous;
  ]
