open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let trivial = D_trivial.suite ~k:2

let test_find_accepted_positive () =
  let i = Instance.make (Builders.path 4) in
  match
    Prover.find_accepted trivial.Decoder.dec
      ~alphabet:(trivial.Decoder.adversary_alphabet i)
      i
  with
  | Some lab ->
      check_bool "accepted" true
        (Decoder.accepts_all trivial.Decoder.dec (Instance.with_labels i lab))
  | None -> Alcotest.fail "P4 certifiable"

let test_find_accepted_negative () =
  let i = Instance.make (c5 ()) in
  check_bool "C5 has no accepted labeling" true
    (Prover.find_accepted trivial.Decoder.dec
       ~alphabet:(trivial.Decoder.adversary_alphabet i)
       i
    = None)

let test_count_accepted () =
  (* P2 with alphabet {0,1,junk}: accepted labelings are 01 and 10 *)
  let i = Instance.make (Builders.path 2) in
  check_int "two proper colorings" 2
    (Prover.count_accepted trivial.Decoder.dec
       ~alphabet:(trivial.Decoder.adversary_alphabet i)
       i);
  (* C4: proper 2-colorings of a 4-cycle: 2 *)
  let c = Instance.make (c4 ()) in
  check_int "C4" 2
    (Prover.count_accepted trivial.Decoder.dec
       ~alphabet:(trivial.Decoder.adversary_alphabet c)
       c)

let test_count_matches_brute_force () =
  let i = Instance.make (Builders.path 3) in
  let alphabet = trivial.Decoder.adversary_alphabet i in
  let brute = ref 0 in
  Labeling.iter_all ~alphabet (Builders.path 3) (fun lab ->
      if Decoder.accepts_all trivial.Decoder.dec (Instance.with_labels i (Array.copy lab))
      then incr brute);
  check_int "pruned = brute force" !brute
    (Prover.count_accepted trivial.Decoder.dec ~alphabet i)

let test_iter_accepted_fresh_arrays () =
  let i = Instance.make (Builders.path 2) in
  let seen = ref [] in
  Prover.iter_accepted trivial.Decoder.dec
    ~alphabet:(trivial.Decoder.adversary_alphabet i)
    i
    (fun lab -> seen := lab :: !seen);
  check_int "distinct labelings" 2
    (List.length (List.sort_uniq Stdlib.compare !seen))

let test_degree_one_accepted_count () =
  (* P2: accepted degree-one labelings are exactly (bot, top), (top, bot),
     (0,1), (1,0) *)
  let i = Instance.make (Builders.path 2) in
  check_int "four accepted" 4
    (Prover.count_accepted D_degree_one.decoder ~alphabet:D_degree_one.alphabet i)

let suite =
  [
    case "find accepted (positive)" test_find_accepted_positive;
    case "find accepted (negative)" test_find_accepted_negative;
    case "count accepted" test_count_accepted;
    case "count matches brute force" test_count_matches_brute_force;
    case "iter yields fresh arrays" test_iter_accepted_fresh_arrays;
    case "degree-one accepted count on P2" test_degree_one_accepted_count;
  ]
