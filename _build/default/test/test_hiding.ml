open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let test_trivial_not_hiding () =
  let suite = D_trivial.suite ~k:2 in
  let insts =
    List.filter_map
      (fun g -> Decoder.certify suite (Instance.make g))
      [ Builders.path 4; Builders.cycle 4; Builders.cycle 6 ]
  in
  match Hiding.check ~k:2 suite.Decoder.dec insts with
  | Hiding.Colorable { coloring; nbhd } ->
      check_bool "coloring proper" true
        (Coloring.is_proper nbhd.Neighborhood.graph coloring)
  | Hiding.Hiding _ -> Alcotest.fail "trivial LCP is not hiding"

let test_even_cycle_hiding () =
  let fam =
    Neighborhood.exhaustive_family D_even_cycle.suite ~graphs:[ Builders.cycle 6 ]
      ~ports:`All ()
  in
  match Hiding.check ~k:2 D_even_cycle.decoder fam with
  | Hiding.Hiding { witness; nbhd } ->
      check_bool "odd witness" true (List.length witness mod 2 = 1);
      (* the witness is either a looped view class (an odd closed walk
         of length one through a self-loop of V) or an odd cycle *)
      check_bool "witness is a loop or closed walk of V" true
        (match witness with
        | [ i ] -> List.mem i nbhd.Neighborhood.loops
        | w -> Coloring.odd_closed_walk_check nbhd.Neighborhood.graph w)
  | Hiding.Colorable _ -> Alcotest.fail "even-cycle decoder is hiding"

let test_is_hiding_on () =
  let fam =
    Neighborhood.exhaustive_family D_even_cycle.suite ~graphs:[ Builders.cycle 6 ]
      ~ports:`All ()
  in
  check_bool "hiding" true (Hiding.is_hiding_on ~k:2 D_even_cycle.decoder fam);
  let suite = D_trivial.suite ~k:2 in
  let insts = [ certify_exn suite (Builders.path 4) ] in
  check_bool "not hiding" false (Hiding.is_hiding_on ~k:2 suite.Decoder.dec insts)

let test_k3_witness_shrink () =
  (* exercise the generic (k >= 3) witness path: the views of a
     4-colored K4 form a K4 inside V, which is not 3-colorable; note
     K4 is 2-colorable as a language instance is false, but here we only
     need V's structure, and K4 is a 4-col yes-instance *)
  let suite = D_trivial.suite ~k:4 in
  let i = certify_exn suite (k4 ()) in
  match
    Hiding.check ~yes:(fun g -> Coloring.is_k_colorable g ~k:4) ~k:3
      suite.Decoder.dec [ i ]
  with
  | Hiding.Hiding { witness; nbhd } ->
      let sub, _ = Graph.induced nbhd.Neighborhood.graph witness in
      check_bool "witness not 3-colorable" false (Coloring.is_k_colorable sub ~k:3)
  | Hiding.Colorable _ -> Alcotest.fail "V(K4 views) contains a K4"

let test_k3_colorable_direction () =
  let suite = D_trivial.suite ~k:4 in
  let i = certify_exn suite (k4 ()) in
  match Hiding.check ~k:4 suite.Decoder.dec [ i ] with
  | Hiding.Colorable { coloring; nbhd } ->
      check_bool "proper 4-coloring of V" true
        (Coloring.is_proper_k nbhd.Neighborhood.graph ~k:4 coloring)
  | Hiding.Hiding _ -> Alcotest.fail "trivial 4-col is not hiding at k=4"

let test_pp () =
  let suite = D_trivial.suite ~k:2 in
  let i = certify_exn suite (Builders.path 4) in
  let v = Hiding.check ~k:2 suite.Decoder.dec [ i ] in
  check_bool "prints" true
    (String.length (Format.asprintf "%a" Hiding.pp_verdict v) > 0)

let suite =
  [
    case "trivial LCP not hiding" test_trivial_not_hiding;
    case "even-cycle LCP hiding" test_even_cycle_hiding;
    case "is_hiding_on" test_is_hiding_on;
    case "k=3 views give k=2 witness" test_k3_witness_shrink;
    case "k=3 colorable direction" test_k3_colorable_direction;
    case "verdict printing" test_pp;
  ]
