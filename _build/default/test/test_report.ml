open Lcp
open Helpers

let sample =
  {
    Report.id = "EX";
    title = "sample";
    rows =
      [
        Report.row "plain" "value";
        Report.check "good" true ~expected:"yes" ~actual:"yes";
        Report.check "bad" false ~expected:"yes" ~actual:"no";
      ];
  }

let test_passed () =
  check_bool "fails with a bad row" false (Report.passed sample);
  let ok = { sample with Report.rows = [ Report.row "a" "b" ] } in
  check_bool "passes" true (Report.passed ok)

let test_pp () =
  let s = Format.asprintf "%a" Report.pp sample in
  check_bool "mentions FAIL" true
    (Test_graph.contains ~needle:"FAIL" s);
  check_bool "mentions MISMATCH" true (Test_graph.contains ~needle:"MISMATCH" s)

let test_markdown () =
  let md = Report.to_markdown sample in
  check_bool "has table header" true
    (Test_graph.contains ~needle:"| check | measured |" md);
  check_bool "flags mismatch" true (Test_graph.contains ~needle:"**mismatch**" md)

let test_summary () =
  check_bool "summary line" true
    (Test_graph.contains ~needle:"EX" (Report.summary_line sample))

let suite =
  [
    case "passed" test_passed;
    case "pretty printing" test_pp;
    case "markdown" test_markdown;
    case "summary line" test_summary;
  ]
