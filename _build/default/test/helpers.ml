(* Shared fixtures and testables for the suites. *)

open Lcp_graph
open Lcp_local

let rng () = Random.State.make [| 987654321 |]

let graph_testable =
  Alcotest.testable (fun ppf g -> Graph.pp ppf g) Graph.equal

let int_list = Alcotest.(list int)

let check_graph = Alcotest.check graph_testable
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let view_testable =
  Alcotest.testable (fun ppf v -> View.pp ppf v) View.equal

let p4 () = Builders.path 4
let c4 () = Builders.cycle 4
let c5 () = Builders.cycle 5
let c6 () = Builders.cycle 6
let k4 () = Builders.complete 4

let inst g = Instance.make g

let certify_exn suite g =
  match Lcp.Decoder.certify suite (inst g) with
  | Some i -> i
  | None -> Alcotest.fail "honest prover failed unexpectedly"

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f
