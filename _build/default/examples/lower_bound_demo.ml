(* The Theorem 1.5 counterexample machine: from an odd cycle in the
   accepting neighborhood graph to a concrete instance G_bad on which a
   (deliberately weak) decoder accepts a non-bipartite subgraph -
   violating strong soundness exactly as Lemma 5.1 predicts.

   Run with: dune exec examples/lower_bound_demo.exe *)

open Lcp_graph
open Lcp_local
open Lcp

let accept_all =
  Decoder.make ~name:"accept-all" ~radius:1 ~anonymous:false (fun _ -> true)

let () =
  (* five path instances whose identifier windows rotate around a
     5-cycle: every one is a legitimate bipartite yes-instance *)
  let g = Builders.path 5 in
  let instances =
    List.init 5 (fun k ->
        let ids = Array.init 5 (fun v -> 1 + ((k + v) mod 5)) in
        Instance.make g ~ids:(Ident.of_array ~bound:5 ids))
  in
  List.iteri
    (fun k (inst : Instance.t) ->
      Format.printf "instance %d ids: %s@." k
        (String.concat "-"
           (Array.to_list (Array.map string_of_int inst.Instance.ids.Ident.ids))))
    instances;

  (* the accepting neighborhood graph of the accept-all decoder *)
  let nbhd = Neighborhood.build accept_all instances in
  Format.printf "%a@." Neighborhood.pp_summary nbhd;
  let cyc = Option.get (Neighborhood.odd_cycle nbhd) in
  Format.printf "odd view cycle found: centers %s@."
    (String.concat " "
       (List.map (fun i -> string_of_int (View.center_id (Neighborhood.view nbhd i))) cyc));

  (* realizability (Sec. 5.1) and the Lemma 5.1 gluing *)
  let h = Realizability.of_neighborhood nbhd cyc in
  let pool =
    List.concat_map (fun i -> Array.to_list (View.extract_all i ~r:1)) instances
  in
  (match Realizability.lemma_5_1 accept_all ~pool h with
  | Ok { Realizability.instance; node_of_id; _ } ->
      Format.printf "G_bad: %a@." Graph.pp instance.Instance.graph;
      Format.printf "id -> node: %s@."
        (String.concat " "
           (List.map (fun (i, v) -> Printf.sprintf "%d->%d" i v) node_of_id));
      assert (not (Coloring.is_bipartite instance.Instance.graph));
      Format.printf
        "G_bad is an odd cycle accepted everywhere: strong soundness violated.@."
  | Error e -> failwith e);

  (* the same pipeline cannot hurt the paper's decoders: on the
     degree-one decoder's promise class the identified neighborhood
     graph stays bipartite *)
  let suite = D_degree_one.suite in
  let graphs =
    Enumerate.connected_up_to_iso 4 @ Enumerate.connected_up_to_iso 3
    |> List.filter (fun g -> Coloring.is_bipartite g && Graph.min_degree g = 1)
  in
  let fam = Neighborhood.exhaustive_family suite ~graphs () in
  let nb = Neighborhood.build ~mode:Neighborhood.Identified suite.Decoder.dec fam in
  (match Neighborhood.odd_cycle nb with
  | None ->
      Format.printf
        "degree-one decoder: identified V(D,4) is bipartite - no realizable attack.@."
  | Some c -> (
      let h = Realizability.of_neighborhood nb c in
      match Realizability.lemma_5_1 suite.Decoder.dec h with
      | Error e -> Format.printf "odd cycle exists but does not realize: %s@." e
      | Ok r ->
          assert (Coloring.is_bipartite r.Realizability.instance.Instance.graph);
          Format.printf "realization stays bipartite - strong soundness intact.@."));

  (* Lemma 5.4 machinery on an r-forgetful host *)
  let theta = Builders.theta 4 4 4 in
  (match Nb_walks.edge_expansion theta ~r:1 ~u:2 ~v:3 with
  | Some w ->
      Format.printf
        "Lemma 5.4 expansion of edge {2,3} in theta(4,4,4): closed walk of %d (even, non-backtracking: %b)@."
        (List.length w)
        (Walks.is_non_backtracking theta w)
  | None -> failwith "expansion failed")
