(* Theorem 1.4: certifying 2-colorability of watermelon networks -
   parallel redundant paths between two gateways, as in a multi-homed
   backbone - with O(log n) bits per node and without revealing the
   bipartition.

   Run with: dune exec examples/watermelon_demo.exe *)

open Lcp_graph
open Lcp_local
open Lcp

let () =
  let g = Builders.watermelon [ 4; 6; 4; 8 ] in
  let { D_watermelon.v1; v2; paths } = Option.get (D_watermelon.decompose g) in
  Format.printf "backbone with %d parallel paths between gateways %d and %d@."
    (List.length paths) v1 v2;
  List.iteri
    (fun i p -> Format.printf "  path %d: %d hops@." (i + 1) (List.length p - 1))
    paths;

  let inst = Instance.make g in
  let certified = Option.get (Decoder.certify D_watermelon.suite inst) in
  assert (Decoder.accepts_all D_watermelon.decoder certified);
  Format.printf "all %d nodes accept; certificate size %d bits (O(log n))@."
    (Graph.order g)
    (D_watermelon.suite.Decoder.cert_bits inst);

  (* sabotage: reroute one certificate's far-port claim and watch the
     neighbors catch it *)
  let lab = Array.copy certified.Instance.labels in
  lab.(5) <-
    (match Certificate.fields lab.(5) with
    | [ "2"; a; b; n; _; c1; p2; c2 ] -> Certificate.join [ "2"; a; b; n; "9"; c1; p2; c2 ]
    | _ -> lab.(5));
  let verdicts = Decoder.run D_watermelon.decoder (Instance.with_labels certified lab) in
  let rejecting =
    List.filter (fun v -> not verdicts.(v)) (Graph.nodes g)
  in
  Format.printf "tampering with node 5's certificate: node(s) %s reject@."
    (String.concat "," (List.map string_of_int rejecting));
  assert (rejecting <> []);

  (* a non-bipartite watermelon (mixed parities) is rejected outright *)
  let odd = Builders.watermelon [ 2; 3 ] in
  (match D_watermelon.prover (Instance.make odd) with
  | None -> Format.printf "watermelon[2;3] (an odd ring): prover refuses@."
  | Some _ -> assert false);
  (match
     Prover.find_accepted D_watermelon.decoder
       ~alphabet:(D_watermelon.suite.Decoder.adversary_alphabet (Instance.make odd))
       (Instance.make odd)
   with
  | None -> Format.printf "...and exhaustive search confirms: no certificate works.@."
  | Some _ -> assert false)
