examples/shatter_demo.mli:
