examples/even_cycle_hiding.ml: Array Builders Checker D_even_cycle Decoder Format Hiding Instance Lcp Lcp_graph Lcp_local List Neighborhood Option Prover Random
