examples/forgetful_survey.ml: Builders Forgetful Format Graph Lcp_graph List Metrics String
