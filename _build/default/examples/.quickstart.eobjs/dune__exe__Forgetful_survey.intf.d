examples/forgetful_survey.mli:
