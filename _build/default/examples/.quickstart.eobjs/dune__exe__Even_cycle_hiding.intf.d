examples/even_cycle_hiding.mli:
