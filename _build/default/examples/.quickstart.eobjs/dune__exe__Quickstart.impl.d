examples/quickstart.ml: Array Builders Checker Coloring D_degree_one Decoder Format Graph Hiding Instance Lcp Lcp_graph Lcp_local List Neighborhood Random String
