examples/resilient_demo.mli:
