examples/watermelon_demo.ml: Array Builders Certificate D_watermelon Decoder Format Graph Instance Lcp Lcp_graph Lcp_local List Option Prover String
