examples/watermelon_demo.mli:
