examples/shatter_demo.ml: Array Builders Bytes Certificate D_shatter Decoder Format Graph Hiding Ident Instance Lcp Lcp_graph Lcp_local List Option Printf
