examples/resilient_demo.ml: Array Async_runner Builders Codec D_trivial Decoder Filename Format Graph Instance Labeling Lcp Lcp_graph Lcp_local List Option Resilient String Sys
