examples/quickstart.mli:
