(* Survey of the r-forgetful property (Sec. 1.3, Fig. 1) across graph
   families, with escape-path witnesses and the Lemma 2.1 diameter
   bound.

   Run with: dune exec examples/forgetful_survey.exe *)

open Lcp_graph

let survey name g =
  let diam = Metrics.diameter g in
  let maxr = Forgetful.max_forgetful_radius g in
  Format.printf "%-20s n=%-4d diam=%-3s max forgetful radius=%d  (Lemma 2.1: %b)@."
    name (Graph.order g)
    (if diam = max_int then "inf" else string_of_int diam)
    maxr
    (maxr = 0 || diam >= (2 * maxr) + 1)

let () =
  Format.printf "r-forgetfulness (strict-increase reading) across families:@.";
  survey "cycle C9" (Builders.cycle 9);
  survey "cycle C15" (Builders.cycle 15);
  survey "theta(4,4,4)" (Builders.theta 4 4 4);
  survey "theta(6,6,6)" (Builders.theta 6 6 6);
  survey "watermelon[6;6;6]" (Builders.watermelon [ 6; 6; 6 ]);
  survey "torus 7x7" (Builders.torus 7 7);
  survey "torus 9x9" (Builders.torus 9 9);
  survey "grid 6x6" (Builders.grid 6 6);
  survey "path P12" (Builders.path 12);
  survey "binary tree d=3" (Builders.binary_tree 3);
  survey "hypercube Q4" (Builders.hypercube 4);
  survey "complete K6" (Builders.complete 6);
  survey "petersen" (Builders.petersen ());

  (* one witness in detail: escaping along a cycle *)
  let g = Builders.cycle 9 in
  (match Forgetful.escape_path g ~r:1 ~v:0 ~u:1 with
  | Some p ->
      Format.printf
        "@.escape in C9, arriving at 0 from 1: path %s moves away from all of N^1(1)@."
        (String.concat "->" (List.map string_of_int p))
  | None -> assert false);

  (* and a failure in detail: a leaf is trapped *)
  match Forgetful.check (Builders.path 5) ~r:1 with
  | Forgetful.Not_forgetful { v; u } ->
      Format.printf "P5 is not 1-forgetful: arriving at %d from %d leaves no escape@."
        v u
  | Forgetful.Forgetful _ -> assert false
