(* The even-cycle construction (Lemma 4.2): a 2-edge-coloring convinces
   every node that the ring is 2-colorable while revealing the node
   coloring to NO node at all.

   Run with: dune exec examples/even_cycle_hiding.exe *)

open Lcp_graph
open Lcp_local
open Lcp

let () =
  let n = 10 in
  let inst = Instance.make (Builders.cycle n) in
  let certified = Option.get (Decoder.certify D_even_cycle.suite inst) in
  Format.printf "ring of %d nodes; certificates (far-port/color pairs):@." n;
  Array.iteri
    (fun v s -> Format.printf "  node %d: %s@." v s)
    certified.Instance.labels;
  assert (Decoder.accepts_all D_even_cycle.decoder certified);
  Format.printf "all %d nodes accept.@." n;

  (* the decoder is anonymous: verdicts are invariant under arbitrary
     re-identification *)
  let rng = Random.State.make [| 7 |] in
  assert (
    Checker.is_pass
      (Checker.anonymity D_even_cycle.decoder ~trials:25 rng [ certified ]));
  Format.printf "verdicts are identifier-independent (anonymous LCP).@.";

  (* hidden everywhere: for every node there are two accepted worlds in
     which its color differs. We exhibit them: the same ring with the
     edge-coloring rotated by one position flips every node's color
     relation while producing the same multiset of views. *)
  let family =
    Neighborhood.exhaustive_family D_even_cycle.suite
      ~graphs:[ Builders.cycle 6 ] ~ports:`All ()
  in
  (match Hiding.check ~k:2 D_even_cycle.decoder family with
  | Hiding.Hiding { witness; nbhd } ->
      Format.printf
        "V(D,6): %d view classes, %d compatibility edges, odd cycle of %d@."
        (Neighborhood.order nbhd)
        (Neighborhood.size nbhd)
        (List.length witness)
  | Hiding.Colorable _ -> assert false);

  (* and soundness: no certificate whatsoever convinces an odd ring *)
  let c7 = Instance.make (Builders.cycle 7) in
  (match
     Prover.find_accepted D_even_cycle.decoder ~alphabet:D_even_cycle.alphabet c7
   with
  | None -> Format.printf "no certificate assignment convinces C7. QED@."
  | Some _ -> assert false)
