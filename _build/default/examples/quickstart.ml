(* Quickstart: certify 2-colorability of a path while hiding the
   coloring at one leaf (Lemma 4.1), then watch an extraction attempt
   fail.

   Run with: dune exec examples/quickstart.exe *)

open Lcp_graph
open Lcp_local
open Lcp

let () =
  (* 1. a network: the path on six nodes *)
  let g = Builders.path 6 in
  let inst = Instance.make g in
  Format.printf "network: %a@." Graph.pp g;

  (* 2. the honest prover assigns certificates per the Lemma 4.1 proof *)
  let certified =
    match Decoder.certify D_degree_one.suite inst with
    | Some i -> i
    | None -> failwith "prover failed"
  in
  Format.printf "certificates: %s@."
    (String.concat " " (Array.to_list certified.Instance.labels));

  (* 3. every node verifies its radius-1 view *)
  let verdicts = Decoder.run D_degree_one.decoder certified in
  Format.printf "verdicts: %s@."
    (String.concat " "
       (List.map (fun b -> if b then "accept" else "REJECT") (Array.to_list verdicts)));
  assert (Array.for_all (fun b -> b) verdicts);

  (* 4. strong soundness: whatever an adversary writes, accepting nodes
     induce a bipartite subgraph - try a thousand random labelings *)
  let rng = Random.State.make [| 1 |] in
  let sound =
    Checker.strong_soundness_random D_degree_one.suite ~k:2 ~trials:1000 rng
      [ Instance.make (Builders.pendant (Builders.cycle 3) 0) ]
  in
  Format.printf "strong soundness on a poisoned triangle: %a@." Checker.pp_verdict
    sound;

  (* 5. hiding: build the accepting neighborhood graph over all
     min-degree-1 yes-instances with up to 4 nodes and find the odd
     cycle that makes extraction impossible (Lemma 3.2) *)
  let graphs =
    Lcp_graph.Enumerate.connected_up_to_iso 4
    @ Lcp_graph.Enumerate.connected_up_to_iso 3
    |> List.filter (fun g ->
           Coloring.is_bipartite g && Graph.min_degree g = 1)
  in
  let family =
    Neighborhood.exhaustive_family D_degree_one.suite ~graphs ~ports:`All ()
  in
  (match Hiding.check ~k:2 D_degree_one.decoder family with
  | Hiding.Hiding { witness; nbhd } ->
      Format.printf
        "V(D,4) has %d views and contains an odd cycle of length %d:@."
        (Neighborhood.order nbhd) (List.length witness);
      Format.printf
        "=> no 1-round algorithm can extract the 2-coloring (Lemma 3.2)@."
  | Hiding.Colorable _ -> Format.printf "unexpectedly colorable?!@.");
  Format.printf "quickstart done.@."
