(* Resilient certification (the Sec. 1.2 related-work model) plus
   asynchronous verification: certificates survive erasures, and the
   full-information protocol reaches view knowledge under adversarial
   message scheduling.

   Run with: dune exec examples/resilient_demo.exe *)

open Lcp_graph
open Lcp_local
open Lcp

let () =
  let g = Builders.grid 3 3 in
  let res = Resilient.wrap (D_trivial.suite ~k:2) in
  let certified = Option.get (Decoder.certify res (Instance.make g)) in
  Format.printf "3x3 grid certified with backup-carrying certificates (%d bits/node)@."
    (Labeling.max_bits certified.Instance.labels);
  assert (Decoder.accepts_all res.Decoder.dec certified);

  (* knock out certificates one at a time *)
  List.iter
    (fun v ->
      let damaged = Resilient.erase certified ~nodes:[ v ] in
      assert (Decoder.accepts_all res.Decoder.dec damaged))
    (Graph.nodes g);
  Format.printf "all %d single-certificate erasures survived@." (Graph.order g);

  (* an independent set of failures at once *)
  let erased = [ 0; 2; 4; 6; 8 ] in
  assert (Resilient.reconstructible g ~erased);
  assert (Decoder.accepts_all res.Decoder.dec (Resilient.erase certified ~nodes:erased));
  Format.printf "even erasing the independent set {0;2;4;6;8} survives@.";

  (* but a corrupted backup is caught *)
  let lab = Array.copy certified.Instance.labels in
  lab.(1) <-
    (match String.split_on_char '|' lab.(1) with
    | own :: entries -> String.concat "|" (own :: List.map (fun _ -> "p1=liar") entries)
    | [] -> assert false);
  let tampered = Resilient.erase (Instance.with_labels certified lab) ~nodes:[ 0 ] in
  assert (not (Decoder.accepts_all res.Decoder.dec tampered));
  Format.printf "tampered backups detected and rejected@.";

  (* asynchronous verification: adversarial scheduling changes nothing *)
  let inst = Instance.make g in
  let _, stats = Async_runner.run_to_quiescence ~scheduler:`Lifo inst in
  Format.printf
    "async full-information run: %d deliveries (peak backlog %d), views covered: %b@."
    stats.Async_runner.deliveries stats.Async_runner.max_queue
    (Async_runner.eventually_matches_views inst ~r:2);

  (* persist the certified instance for other tools *)
  let path = Filename.temp_file "resilient" ".json" in
  Codec.save path (Codec.instance_to_json certified);
  (match Codec.load path with
  | Ok j -> (
      match Codec.instance_of_json j with
      | Ok reloaded ->
          assert (Decoder.accepts_all res.Decoder.dec reloaded);
          Format.printf "JSON roundtrip through %s verified@." path
      | Error e -> failwith e)
  | Error e -> failwith e);
  Sys.remove path
