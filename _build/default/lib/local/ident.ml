open Lcp_graph

type t = { ids : int array; bound : int }

let validate ids bound =
  let n = Array.length ids in
  let seen = Hashtbl.create n in
  Array.iter
    (fun i ->
      if i < 1 || i > bound then
        invalid_arg (Printf.sprintf "Ident: id %d out of range [1, %d]" i bound);
      if Hashtbl.mem seen i then
        invalid_arg (Printf.sprintf "Ident: duplicate id %d" i);
      Hashtbl.replace seen i ())
    ids

let canonical ?bound g =
  let n = Graph.order g in
  let bound = Option.value ~default:(max n 1) bound in
  let ids = Array.init n (fun v -> v + 1) in
  validate ids bound;
  { ids; bound }

let of_array ?bound ids =
  let bound =
    match bound with
    | Some b -> b
    | None -> Array.fold_left max 1 ids
  in
  validate ids bound;
  { ids; bound }

let random rng ~bound g =
  let n = Graph.order g in
  if bound < n then invalid_arg "Ident.random: bound < order";
  (* reservoir-free: shuffle a prefix of 1..bound *)
  let pool = Array.init bound (fun i -> i + 1) in
  for i = 0 to n - 1 do
    let j = i + Random.State.int rng (bound - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  { ids = Array.sub pool 0 n; bound }

let id t v = t.ids.(v)

let node_of_id t i =
  let n = Array.length t.ids in
  let rec find v = if v = n then None else if t.ids.(v) = i then Some v else find (v + 1) in
  find 0

let is_valid g t =
  Array.length t.ids = Graph.order g
  &&
  try
    validate t.ids t.bound;
    true
  with Invalid_argument _ -> false

let order_preserving_remap t ~target =
  let n = Array.length t.ids in
  let target = List.sort_uniq Stdlib.compare target in
  if List.length target <> n then
    invalid_arg "Ident.order_preserving_remap: need exactly n distinct targets";
  let target = Array.of_list target in
  (* rank of each node's id *)
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> Stdlib.compare t.ids.(a) t.ids.(b)) order;
  let ids = Array.make n 0 in
  Array.iteri (fun rank v -> ids.(v) <- target.(rank)) order;
  let bound = max t.bound (Array.fold_left max 1 ids) in
  { ids; bound }

let enumerate ~bound g =
  let n = Graph.order g in
  if bound < n then invalid_arg "Ident.enumerate: bound < order";
  let rec choose taken v acc =
    if v = n then [ Array.of_list (List.rev acc) ]
    else
      List.concat_map
        (fun i ->
          if List.mem i taken then []
          else choose (i :: taken) (v + 1) (i :: acc))
        (List.init bound (fun i -> i + 1))
  in
  List.map (fun ids -> { ids; bound }) (choose [] 0 [])

let rank_in t nodes v =
  if not (List.mem v nodes) then invalid_arg "Ident.rank_in: node not in list";
  let my = t.ids.(v) in
  List.fold_left (fun acc w -> if t.ids.(w) < my then acc + 1 else acc) 0 nodes

let pp ppf t =
  Format.fprintf ppf "@[<h>ids[bound=%d]: %a@]" t.bound
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       Format.pp_print_int)
    (Array.to_list t.ids)
