type 'o t = {
  name : string;
  radius : int;
  run : View.t -> 'o;
}

let make ~name ~radius run = { name; radius; run }

let run_all t inst =
  Array.map t.run (View.extract_all inst ~r:t.radius)

let outputs_as_coloring (t : int t) inst = run_all t inst

let reidentify_random rng (inst : Instance.t) =
  let ids = Ident.random rng ~bound:inst.Instance.ids.Ident.bound inst.Instance.graph in
  Instance.with_ids inst ids

let reidentify_order_preserving rng (inst : Instance.t) =
  let n = Instance.order inst in
  let bound = max (4 * n) inst.Instance.ids.Ident.bound in
  (* choose n distinct targets in [1, bound], sorted; then remap *)
  let fresh = Ident.random rng ~bound inst.Instance.graph in
  let target = Array.to_list fresh.Ident.ids in
  Instance.with_ids inst (Ident.order_preserving_remap inst.Instance.ids ~target)

let same_outputs t inst inst' =
  run_all t inst = run_all t inst'

let is_anonymous_on t inst ~trials rng =
  let rec go k =
    k = 0 || (same_outputs t inst (reidentify_random rng inst) && go (k - 1))
  in
  go trials

let is_order_invariant_on t inst ~trials rng =
  let rec go k =
    k = 0 || (same_outputs t inst (reidentify_order_preserving rng inst) && go (k - 1))
  in
  go trials

let constant ~name ~radius o = { name; radius; run = (fun _ -> o) }
