lib/local/async_runner.mli: Instance Random Sync_runner
