lib/local/labeling.mli: Graph Lcp_graph Random
