lib/local/view.mli: Format Graph Instance Lcp_graph
