lib/local/slocal.ml: Array Ident Instance Lcp_graph List Local_algo Option Stdlib View
