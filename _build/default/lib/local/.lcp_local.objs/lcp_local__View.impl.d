lib/local/view.ml: Array Buffer Format Graph Hashtbl Ident Instance Lcp_graph List Port Printf Queue Stdlib String
