lib/local/async_runner.ml: Array Graph Ident Instance Lcp_graph List Port Random Stdlib Sync_runner View
