lib/local/ident.ml: Array Format Graph Hashtbl Lcp_graph List Option Printf Random Stdlib
