lib/local/ident.mli: Format Graph Lcp_graph Random
