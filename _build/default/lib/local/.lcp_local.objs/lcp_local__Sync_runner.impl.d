lib/local/sync_runner.ml: Array Graph Ident Instance Lcp_graph List Port Stdlib View
