lib/local/local_algo.ml: Array Ident Instance View
