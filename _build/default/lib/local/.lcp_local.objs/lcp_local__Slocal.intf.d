lib/local/slocal.mli: Instance Local_algo View
