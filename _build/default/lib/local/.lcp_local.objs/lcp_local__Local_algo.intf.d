lib/local/local_algo.mli: Instance Random View
