lib/local/sync_runner.mli: Graph Instance Lcp_graph View
