lib/local/labeling.ml: Array Graph Lcp_graph List Random String
