lib/local/port.ml: Array Format Graph Lcp_graph List Printf Random Stdlib
