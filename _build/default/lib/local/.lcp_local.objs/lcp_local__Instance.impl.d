lib/local/instance.ml: Array Format Graph Ident Labeling Lcp_graph Option Port
