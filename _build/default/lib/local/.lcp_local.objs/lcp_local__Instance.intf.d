lib/local/instance.mli: Format Graph Ident Labeling Lcp_graph Port Random
