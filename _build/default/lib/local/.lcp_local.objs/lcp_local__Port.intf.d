lib/local/port.mli: Format Graph Lcp_graph Random
