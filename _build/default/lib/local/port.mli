(** Port assignments (paper Sec. 2.2).

    A port assignment gives every node [v] a bijection between its
    incident edges and [1 .. d(v)]. We represent it as, per node, the
    array of neighbors in port order: [t.(v).(p - 1)] is the neighbor
    reached through port [p] of [v]. *)

open Lcp_graph

type t = int array array

val canonical : Graph.t -> t
(** Ports in increasing-neighbor order. *)

val random : Random.State.t -> Graph.t -> t
(** Uniformly random port order at every node. *)

val is_valid : Graph.t -> t -> bool
(** Does [t] assign each node exactly its neighbor set, injectively? *)

val port_of : t -> int -> int -> int
(** [port_of t v w] is the port of [v] on the edge [{v,w}] (in
    [1 .. d(v)]).
    @raise Not_found if [w] is not a neighbor of [v]. *)

val neighbor_at : t -> int -> int -> int
(** [neighbor_at t v p] is the neighbor of [v] behind port [p]
    (1-based).
    @raise Invalid_argument if [p] is out of range. *)

val enumerate : Graph.t -> t list
(** All port assignments of the graph (product over nodes of d(v)!
    permutations); small graphs only. *)

val count : Graph.t -> int
(** Number of port assignments (product of factorials). *)

val pp : Format.formatter -> t -> unit
