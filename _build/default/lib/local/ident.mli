(** Identifier assignments (paper Sec. 2.2).

    An identifier assignment is an injective map from nodes into
    [1 .. bound]; [bound = N] is polynomial in [n] and known to every
    node. *)

open Lcp_graph

type t = { ids : int array; bound : int }

val canonical : ?bound:int -> Graph.t -> t
(** Node [v] gets id [v + 1]; default bound is [n]. *)

val of_array : ?bound:int -> int array -> t
(** Validates injectivity and range (ids must lie in [1 .. bound];
    default bound is the max id).
    @raise Invalid_argument when invalid. *)

val random : Random.State.t -> bound:int -> Graph.t -> t
(** Uniform injective assignment into [1 .. bound]. *)

val id : t -> int -> int
val node_of_id : t -> int -> int option
(** Inverse lookup. *)

val is_valid : Graph.t -> t -> bool

val order_preserving_remap : t -> target:int list -> t
(** Re-identify using the sorted [target] id list (which must have
    exactly [n] distinct values): the node with the k-th smallest id
    receives the k-th smallest target. The relative order of ids is
    preserved — the transformation order-invariant algorithms cannot
    observe. The new bound is the max target. *)

val enumerate : bound:int -> Graph.t -> t list
(** All injective assignments into [1 .. bound]; tiny graphs only. *)

val rank_in : t -> int list -> int -> int
(** [rank_in ids nodes v]: 0-based rank of [id v] among the ids of
    [nodes] (which must contain [v]). *)

val pp : Format.formatter -> t -> unit
