(** r-round local algorithms as maps on views (paper Sec. 2.2), plus
    empirical anonymity / order-invariance checkers. *)

type 'o t = {
  name : string;
  radius : int;
  run : View.t -> 'o;
}

val make : name:string -> radius:int -> (View.t -> 'o) -> 'o t

val run_all : 'o t -> Instance.t -> 'o array
(** Outputs of all nodes (each on its own radius-[radius] view). *)

val outputs_as_coloring : int t -> Instance.t -> int array
(** Alias of [run_all] for integer-output algorithms used as coloring
    extractors. *)

val is_anonymous_on : 'o t -> Instance.t -> trials:int -> Random.State.t -> bool
(** Re-identify the instance with [trials] random id assignments (same
    bound); outputs must be unchanged at every node. A sound refuter,
    not a prover. *)

val is_order_invariant_on :
  'o t -> Instance.t -> trials:int -> Random.State.t -> bool
(** Re-identify with random {e order-preserving} assignments into a
    larger id space; outputs must be unchanged at every node. *)

val constant : name:string -> radius:int -> 'o -> 'o t
