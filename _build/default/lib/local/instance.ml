open Lcp_graph

type t = {
  graph : Graph.t;
  ports : Port.t;
  ids : Ident.t;
  labels : Labeling.t;
}

let is_valid t =
  Port.is_valid t.graph t.ports
  && Ident.is_valid t.graph t.ids
  && Array.length t.labels = Graph.order t.graph

let make ?ports ?ids ?labels graph =
  let ports = Option.value ~default:(Port.canonical graph) ports in
  let ids = Option.value ~default:(Ident.canonical graph) ids in
  let labels = Option.value ~default:(Labeling.const graph "") labels in
  let t = { graph; ports; ids; labels } in
  if not (is_valid t) then invalid_arg "Instance.make: inconsistent components";
  t

let with_labels t labels =
  if Array.length labels <> Graph.order t.graph then
    invalid_arg "Instance.with_labels: wrong length";
  { t with labels }

let with_ids t ids =
  if not (Ident.is_valid t.graph ids) then invalid_arg "Instance.with_ids: invalid";
  { t with ids }

let with_ports t ports =
  if not (Port.is_valid t.graph ports) then invalid_arg "Instance.with_ports: invalid";
  { t with ports }

let order t = Graph.order t.graph

let random rng ?bound ?labels graph =
  let n = Graph.order graph in
  let bound = Option.value ~default:(max 1 (n * n)) bound in
  make graph
    ~ports:(Port.random rng graph)
    ~ids:(Ident.random rng ~bound graph)
    ?labels

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@,labels: %a@]" Graph.pp t.graph Ident.pp t.ids
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf s -> Format.fprintf ppf "%S" s))
    (Array.to_list t.labels)
