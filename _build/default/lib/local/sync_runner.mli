(** Synchronous LOCAL-model simulator.

    Nodes run [r] rounds of full-information flooding: in every round,
    each node sends everything it knows over every incident edge
    (tagging the message with its own identifier and the sending port),
    then merges what it received. Knowledge is a set of node facts
    [(id, label)] and edge facts [(id_a, port_a, id_b, port_b)].

    After [r] rounds a node's knowledge is exactly its radius-[r] view:
    [knowledge_matches_view] is the differential test used to validate
    [View.extract] against an actual message-passing execution. *)

open Lcp_graph

type node_fact = { nid : int; nlabel : string }
type edge_fact = { a : int; pa : int; b : int; pb : int }
(** Edge facts are normalized so that [a < b]. *)

type knowledge = {
  node_facts : node_fact list;  (** sorted by id *)
  edge_facts : edge_fact list;  (** sorted *)
}

val run : Instance.t -> rounds:int -> knowledge array
(** Knowledge of every node after the given number of rounds. *)

val knowledge_of_view : View.t -> knowledge
(** The knowledge a node {e should} have, derived from its view. *)

val knowledge_matches_view : Instance.t -> r:int -> bool
(** Does flooding for [r] rounds produce, at every node, exactly the
    knowledge of its radius-[r] view? *)

val messages_sent : Graph.t -> rounds:int -> int
(** Number of (directed) messages in a run — [2 * |E| * rounds]. *)
