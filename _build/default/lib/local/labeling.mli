(** Certificate assignments (labelings, paper Sec. 2.2).

    A labeling maps each node to a certificate string. Decoders parse
    certificates themselves; this module only handles assignment-level
    plumbing: constant labelings, finite-alphabet enumeration with
    pruning, and random sampling. *)

open Lcp_graph

type t = string array

val const : Graph.t -> string -> t
val of_list : string list -> t

val max_bits : t -> int
(** Size of the largest certificate, in bits (8 bits per byte). *)

val iter_all : alphabet:string list -> Graph.t -> (t -> unit) -> unit
(** All |alphabet|^n labelings. The array passed to the callback is
    reused; copy if you keep it. *)

val exists_all : alphabet:string list -> Graph.t -> (t -> bool) -> bool
(** Short-circuiting search over all labelings. *)

val iter_backtracking :
  alphabet:string list ->
  Graph.t ->
  prune:(int -> t -> bool) ->
  (t -> unit) ->
  unit
(** Depth-first assignment in node order; after assigning node [v] the
    partial labeling (nodes > v hold ["?"]) is passed to [prune v];
    returning [true] cuts the subtree. Complete labelings go to the
    callback. *)

val random : Random.State.t -> alphabet:string list -> Graph.t -> t

val count : alphabet:string list -> Graph.t -> int
