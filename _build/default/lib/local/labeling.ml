open Lcp_graph

type t = string array

let const g s = Array.make (Graph.order g) s
let of_list l = Array.of_list l

let max_bits t = Array.fold_left (fun acc s -> max acc (8 * String.length s)) 0 t

let unassigned = "?"

let iter_backtracking ~alphabet g ~prune f =
  let n = Graph.order g in
  let lab = Array.make n unassigned in
  let rec go v =
    if v = n then f lab
    else
      List.iter
        (fun sym ->
          lab.(v) <- sym;
          if not (prune v lab) then go (v + 1);
          lab.(v) <- unassigned)
        alphabet
  in
  if alphabet = [] && n > 0 then ()
  else go 0

let iter_all ~alphabet g f =
  iter_backtracking ~alphabet g ~prune:(fun _ _ -> false) f

let exists_all ~alphabet g pred =
  let exception Found in
  try
    iter_all ~alphabet g (fun lab -> if pred lab then raise Found);
    false
  with Found -> true

let random rng ~alphabet g =
  let arr = Array.of_list alphabet in
  let m = Array.length arr in
  if m = 0 then invalid_arg "Labeling.random: empty alphabet";
  Array.init (Graph.order g) (fun _ -> arr.(Random.State.int rng m))

let count ~alphabet g =
  let m = List.length alphabet in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  pow m (Graph.order g)
