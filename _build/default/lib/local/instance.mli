(** Labeled configured graphs: the tuples [(G, prt, Id, l)] the paper
    calls labeled instances (Sec. 3). *)

open Lcp_graph

type t = {
  graph : Graph.t;
  ports : Port.t;
  ids : Ident.t;
  labels : Labeling.t;
}

val make :
  ?ports:Port.t -> ?ids:Ident.t -> ?labels:Labeling.t -> Graph.t -> t
(** Defaults: canonical ports, canonical ids (bound = n), empty-string
    labels. Validates all components.
    @raise Invalid_argument on inconsistent components. *)

val with_labels : t -> Labeling.t -> t
val with_ids : t -> Ident.t -> t
val with_ports : t -> Port.t -> t

val order : t -> int
val is_valid : t -> bool

val random :
  Random.State.t -> ?bound:int -> ?labels:Labeling.t -> Graph.t -> t
(** Random ports and ids (default bound [n^2], covering the paper's
    poly(n) regime). *)

val pp : Format.formatter -> t -> unit
