(** A minimal SLOCAL(r) simulator (sequential-LOCAL; see the paper's
    Sec. 1 motivation and Akbari et al. for the model).

    Nodes are processed one at a time in a given order; each computes
    its output from its radius-r view {e plus the outputs of already
    processed nodes inside that view}. This is the model in which the
    paper's promise-free-separation program needs certificates whose
    2-coloring cannot be extracted. *)

type 'o t = {
  name : string;
  radius : int;
  step : View.t -> 'o option array -> 'o;
      (** [step view prev]: [prev.(u)] is the output of the view's local
          node [u] if it was already processed *)
}

val make : name:string -> radius:int -> (View.t -> 'o option array -> 'o) -> 'o t

val execute : 'o t -> Instance.t -> order:int list -> 'o array
(** Process the nodes in the given order (a permutation).
    @raise Invalid_argument otherwise. *)

val execute_canonical : 'o t -> Instance.t -> 'o array
(** Processing order [0, 1, ...]. *)

val greedy_coloring : radius:int -> int t
(** First-fit coloring: the smallest color unused by processed
    neighbors — the canonical SLOCAL(1) algorithm, using at most
    [max degree + 1] colors. *)

val first_fit_k : radius:int -> k:int -> int t
(** First-fit restricted to colors [0..k-1]; outputs [-1] when stuck. *)

val of_local_algo : 'o Local_algo.t -> 'o t
(** A plain local algorithm as a (degenerate, order-oblivious) SLOCAL
    algorithm. *)
