(** Asynchronous execution of the full-information protocol.

    The LOCAL-model flooding of {!Sync_runner} assumes lockstep rounds.
    Here messages travel through per-edge FIFO channels under an
    adversarial (seeded) scheduler: at every step one in-flight message
    is picked and delivered, and the receiver immediately sends its
    updated knowledge on all its links (a standard full-information
    asynchronous protocol with per-link send-once-per-improvement
    discipline).

    Despite arbitrary scheduling, once every node has performed [r]
    "phases" (received from each neighbor at least [r] times along a
    causal chain), its knowledge contains the radius-r view — verified
    by {!eventually_matches_views}, the asynchronous counterpart of
    [Sync_runner.knowledge_matches_view]. This justifies treating the
    paper's verifiers as round-based without loss of generality. *)

type stats = {
  deliveries : int;  (** messages delivered until quiescence *)
  max_queue : int;  (** peak channel backlog *)
}

val run_to_quiescence :
  ?scheduler:[ `Fifo | `Lifo | `Random of Random.State.t ] ->
  Instance.t ->
  Sync_runner.knowledge array * stats
(** Execute until no messages are in flight. Knowledge stabilizes to the
    all-pairs closure on each connected component (full information). *)

val eventually_matches_views : Instance.t -> r:int -> bool
(** After quiescence under three different schedulers, every node's
    knowledge must contain (as a subset) its radius-r view knowledge,
    and on connected graphs they must all coincide with full
    knowledge. *)
