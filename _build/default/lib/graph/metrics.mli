(** Distances, balls and global metric invariants. *)

val bfs_dist : Graph.t -> int -> int array
(** [bfs_dist g v] maps every node to its distance from [v];
    unreachable nodes get [max_int]. *)

val dist : Graph.t -> int -> int -> int
(** Pairwise distance; [max_int] when disconnected. *)

val all_pairs_dist : Graph.t -> int array array
(** Full distance matrix (n BFS runs). *)

val ball : Graph.t -> int -> int -> int list
(** [ball g v r] is [N^r(v)]: the sorted nodes at distance at most [r]
    from [v] (the paper's closed r-neighborhood). *)

val eccentricity : Graph.t -> int -> int
(** Max distance from the node to any other node; [max_int] when the
    graph is disconnected. *)

val diameter : Graph.t -> int
(** Max eccentricity; [0] for graphs with fewer than 2 nodes, [max_int]
    when disconnected. *)

val radius : Graph.t -> int
(** Min eccentricity over nodes; [0] for n <= 1. *)

val girth : Graph.t -> int option
(** Length of a shortest cycle, [None] for forests. *)

val shortest_path : Graph.t -> int -> int -> int list option
(** A shortest path (as a node list including both endpoints), [None]
    when disconnected. *)

val shortest_path_avoiding : Graph.t -> avoid:(int -> bool) -> int -> int -> int list option
(** Shortest path whose {e interior and endpoints} all satisfy
    [not (avoid v)], except that the source and target are always
    allowed. *)
