(** Exhaustive enumeration of small graphs.

    The soundness theorems quantify over {e every} graph; on small
    orders we can check them literally. All functions here enumerate
    {e labeled} graphs on nodes [0 .. n-1]; [up_to_iso] filters one
    representative per isomorphism class (brute force, so keep
    [n <= 7]). *)

val all_graphs : int -> Graph.t list
(** All 2^(n choose 2) labeled graphs on [n] nodes. Keep [n <= 5] or
    filter aggressively. *)

val iter_graphs : int -> (Graph.t -> unit) -> unit
(** Iterate without materializing the list. *)

val connected_graphs : int -> Graph.t list
(** Labeled connected graphs on exactly [n] nodes. *)

val up_to_iso : Graph.t list -> Graph.t list
(** One representative per isomorphism class (order preserved). *)

val connected_up_to_iso : int -> Graph.t list
(** Connected graphs on [n] nodes up to isomorphism. *)

val non_bipartite : Graph.t list -> Graph.t list
val bipartite : Graph.t list -> Graph.t list

val count_graphs : int -> int
(** [2^(n choose 2)], for sanity checks. *)
