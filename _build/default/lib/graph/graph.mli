(** Simple finite undirected graphs.

    Nodes are the integers [0 .. n-1]. Graphs are immutable once built;
    all "mutating" operations return fresh graphs. Parallel edges are
    disallowed; self-loops are disallowed (the paper allows loops in
    principle but never uses them, and a loop makes a graph trivially
    non-2-colorable, so we reject them at construction). *)

type t
(** An undirected graph. *)

(** {1 Construction} *)

val empty : int -> t
(** [empty n] is the edgeless graph on [n] nodes.
    @raise Invalid_argument if [n < 0]. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on [n] nodes with the given edge
    list. Duplicate edges (in either orientation) are collapsed.
    @raise Invalid_argument on out-of-range endpoints or self-loops. *)

val add_edge : t -> int -> int -> t
(** [add_edge g u v] is [g] with the edge [{u,v}] added (no-op if the
    edge is already present).
    @raise Invalid_argument on out-of-range endpoints or [u = v]. *)

val remove_edge : t -> int -> int -> t
(** [remove_edge g u v] is [g] without the edge [{u,v}] (no-op if
    absent). *)

val disjoint_union : t -> t -> t
(** [disjoint_union g h] places [h] next to [g]; nodes of [h] are
    shifted by [order g]. *)

val induced : t -> int list -> t * int array
(** [induced g nodes] is the subgraph of [g] induced by [nodes]
    (duplicates ignored, order preserved), together with the array
    mapping new indices to the original node ids. *)

val relabel : t -> int array -> t
(** [relabel g perm] renames node [v] to [perm.(v)]; [perm] must be a
    permutation of [0 .. order g - 1]. *)

(** {1 Observation} *)

val order : t -> int
(** Number of nodes. *)

val size : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int list
(** Sorted list of neighbors. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool

val edges : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v], lexicographically
    sorted. *)

val nodes : t -> int list
(** [0 .. n-1]. *)

val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (int -> int -> unit) -> t -> unit

val min_degree : t -> int
(** Minimum degree; [0] for the empty (0-node) graph. *)

val max_degree : t -> int
(** Maximum degree; [0] for the empty graph. *)

val degree_counts : t -> (int * int) list
(** [(d, count)] pairs, sorted by degree. *)

(** {1 Structure} *)

val is_connected : t -> bool
(** True for the 0- and 1-node graphs. *)

val components : t -> int list list
(** Connected components as sorted node lists, sorted by minimum
    element. *)

val component_of : t -> int -> int list
(** Sorted node list of the component containing the given node. *)

val is_cycle : t -> bool
(** Is [g] a single cycle (connected, 2-regular, n >= 3)? *)

val is_path_graph : t -> bool
(** Is [g] a single simple path on >= 1 nodes? *)

val is_tree : t -> bool
(** Connected and acyclic. *)

val equal : t -> t -> bool
(** Structural equality (same node count and edge set). *)

val compare : t -> t -> int

val isomorphic : t -> t -> bool
(** Brute-force isomorphism test; intended for small graphs only. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_dot : ?name:string -> ?label:(int -> string) -> t -> string
(** GraphViz rendering; [label] overrides the per-node label. *)
