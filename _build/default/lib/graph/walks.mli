(** Walks in plain graphs: the building blocks for the Lemma 5.4 / 5.5
    walk surgeries.

    A walk is a non-empty node list in which consecutive nodes are
    adjacent. A closed walk additionally has its last node adjacent to
    its first (the closing edge is implicit, the first node is not
    repeated at the end). *)

val is_walk : Graph.t -> int list -> bool
val is_closed_walk : Graph.t -> int list -> bool

val length : int list -> int
(** Number of edges of the {e closed} walk = number of nodes listed. *)

val is_non_backtracking : Graph.t -> int list -> bool
(** No position of the closed walk has its predecessor equal to its
    successor (indices mod length). Walks of length < 3 are
    backtracking by convention. *)

val non_backtracking_closed_walk :
  Graph.t -> start:int -> len:int -> int list option
(** Search (DFS) for a non-backtracking closed walk of exactly [len]
    edges starting at [start]. *)

val closed_walk_around_cycle : Graph.t -> int list -> int -> int list
(** [closed_walk_around_cycle g cycle u]: the closed walk that traverses
    the given cycle once, starting and ending at [u] (which must lie on
    the cycle). *)

val splice : int list -> int -> int list -> int list
(** [splice walk pos insert]: the closed walk obtained by inserting the
    closed walk [insert] (which must start at [List.nth walk pos]) at
    position [pos]. *)

val parity : int list -> [ `Odd | `Even ]
(** Parity of a closed walk's length. *)

val concat_path_walk : int list -> int list -> int list
(** [concat_path_walk p q] where [p] ends at the head of [q]:
    concatenation without repeating the shared node. *)
