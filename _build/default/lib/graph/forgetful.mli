(** The paper's [r]-forgetful property (Sec. 1.3, Fig. 1).

    A graph [G] is r-forgetful if for every node [v] and every neighbor
    [u] of [v] there is a path [P = (v_0 = v, v_1, ..., v_r)] of length
    [r] such that for every [w] in [N^r(u)] the distance [dist(v_i, w)]
    is monotonically (strictly) increasing in [i].

    Since adjacent nodes have distances differing by at most one, strict
    increase along the path means each step moves exactly one further
    from {e every} node of [N^r(u)] simultaneously. *)

type witness = {
  v : int;  (** the node being escaped from *)
  u : int;  (** the neighbor arrived from *)
  escape : int list;  (** the path [v_0 = v, ..., v_r] *)
}

type verdict =
  | Forgetful of witness list
      (** one witness per (v, u) pair, in node order *)
  | Not_forgetful of { v : int; u : int }
      (** a pair with no escape path *)

val escape_path : Graph.t -> r:int -> v:int -> u:int -> int list option
(** An escape path for the single pair [(v, u)], if one exists. *)

val check : Graph.t -> r:int -> verdict

val is_r_forgetful : Graph.t -> r:int -> bool

val max_forgetful_radius : Graph.t -> int
(** The largest [r >= 0] such that the graph is r-forgetful ([0] when
    not even 1-forgetful; every graph is vacuously 0-forgetful).
    Bounded by [diam g / 2] thanks to Lemma 2.1, so terminates. *)

val lemma_2_1_holds : Graph.t -> r:int -> bool
(** Lemma 2.1: if [g] is r-forgetful then [diam g >= 2r + 1]. This
    checks the implication (true whenever [g] is not r-forgetful). *)
