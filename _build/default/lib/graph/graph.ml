type t = {
  n : int;
  adj : int list array; (* sorted, no duplicates, no self-loops *)
}

let order g = g.n

let check_node g v =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Graph: node %d out of range [0, %d)" v g.n)

let empty n =
  if n < 0 then invalid_arg "Graph.empty: negative order";
  { n; adj = Array.make (max n 1) [] |> fun a -> Array.sub a 0 n }

let neighbors g v =
  check_node g v;
  g.adj.(v)

let degree g v = List.length (neighbors g v)

let mem_edge g u v =
  check_node g u;
  check_node g v;
  List.mem v g.adj.(u)

let sort_uniq_int = List.sort_uniq Stdlib.compare

let of_edges n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative order";
  let adj = Array.make (max n 1) [] in
  let add u v =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg
        (Printf.sprintf "Graph.of_edges: edge (%d,%d) out of range [0,%d)" u v n);
    if u = v then
      invalid_arg (Printf.sprintf "Graph.of_edges: self-loop at %d" u);
    adj.(u) <- v :: adj.(u);
    adj.(v) <- u :: adj.(v)
  in
  List.iter (fun (u, v) -> add u v) edge_list;
  for v = 0 to n - 1 do
    adj.(v) <- sort_uniq_int adj.(v)
  done;
  { n; adj = Array.sub adj 0 n }

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun v -> if u < v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  List.sort Stdlib.compare !acc

let size g = List.length (edges g)

let add_edge g u v =
  check_node g u;
  check_node g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if mem_edge g u v then g
  else begin
    let adj = Array.copy g.adj in
    adj.(u) <- sort_uniq_int (v :: adj.(u));
    adj.(v) <- sort_uniq_int (u :: adj.(v));
    { g with adj }
  end

let remove_edge g u v =
  check_node g u;
  check_node g v;
  if not (mem_edge g u v) then g
  else begin
    let adj = Array.copy g.adj in
    adj.(u) <- List.filter (fun w -> w <> v) adj.(u);
    adj.(v) <- List.filter (fun w -> w <> u) adj.(v);
    { g with adj }
  end

let disjoint_union g h =
  let shift = g.n in
  let e_g = edges g in
  let e_h = List.map (fun (u, v) -> (u + shift, v + shift)) (edges h) in
  of_edges (g.n + h.n) (e_g @ e_h)

let induced g node_list =
  List.iter (check_node g) node_list;
  let keep = List.sort_uniq Stdlib.compare node_list in
  let old_of_new = Array.of_list keep in
  let m = Array.length old_of_new in
  let new_of_old = Hashtbl.create m in
  Array.iteri (fun i v -> Hashtbl.replace new_of_old v i) old_of_new;
  let es =
    List.filter_map
      (fun (u, v) ->
        match (Hashtbl.find_opt new_of_old u, Hashtbl.find_opt new_of_old v) with
        | Some a, Some b -> Some (a, b)
        | _ -> None)
      (edges g)
  in
  (of_edges m es, old_of_new)

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: bad permutation";
  let seen = Array.make g.n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= g.n || seen.(v) then
        invalid_arg "Graph.relabel: not a permutation";
      seen.(v) <- true)
    perm;
  of_edges g.n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges g))

let nodes g = List.init g.n (fun i -> i)

let fold_nodes f g init =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f v !acc
  done;
  !acc

let fold_edges f g init =
  List.fold_left (fun acc (u, v) -> f u v acc) init (edges g)

let iter_edges f g = List.iter (fun (u, v) -> f u v) (edges g)

let min_degree g =
  if g.n = 0 then 0 else fold_nodes (fun v m -> min m (degree g v)) g max_int

let max_degree g = fold_nodes (fun v m -> max m (degree g v)) g 0

let degree_counts g =
  let tbl = Hashtbl.create 8 in
  for v = 0 to g.n - 1 do
    let d = degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort Stdlib.compare

(* Connected component of [start] via BFS. *)
let component_of g start =
  check_node g start;
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add start queue;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    acc := v :: !acc;
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
      g.adj.(v)
  done;
  List.sort Stdlib.compare !acc

let components g =
  let seen = Array.make g.n false in
  let comps = ref [] in
  for v = 0 to g.n - 1 do
    if not seen.(v) then begin
      let comp = component_of g v in
      List.iter (fun w -> seen.(w) <- true) comp;
      comps := comp :: !comps
    end
  done;
  List.rev !comps

let is_connected g = g.n <= 1 || List.length (components g) = 1

let is_cycle g =
  g.n >= 3 && is_connected g && fold_nodes (fun v ok -> ok && degree g v = 2) g true

let is_path_graph g =
  g.n >= 1 && is_connected g && size g = g.n - 1
  && fold_nodes (fun v ok -> ok && degree g v <= 2) g true

let is_tree g = is_connected g && size g = g.n - 1

let equal g h = g.n = h.n && edges g = edges h

let compare g h =
  match Stdlib.compare g.n h.n with
  | 0 -> Stdlib.compare (edges g) (edges h)
  | c -> c

(* Brute-force isomorphism: backtracking on degree-compatible mappings.
   Fine for the small graphs used in enumeration and tests. *)
let isomorphic g h =
  if g.n <> h.n || size g <> size h then false
  else if List.sort Stdlib.compare (List.map snd (degree_counts g))
          <> List.sort Stdlib.compare (List.map snd (degree_counts h))
          || degree_counts g <> degree_counts h
  then false
  else begin
    let n = g.n in
    let image = Array.make n (-1) in
    let used = Array.make n false in
    let consistent u x =
      (* mapping u -> x must preserve adjacency with already-mapped nodes *)
      degree g u = degree h x
      && List.for_all
           (fun w ->
             image.(w) = -1 || mem_edge h x image.(w) = mem_edge g u w)
           (nodes g)
    in
    let rec go u =
      if u = n then true
      else
        let rec try_images x =
          if x = n then false
          else if (not used.(x)) && consistent u x then begin
            image.(u) <- x;
            used.(x) <- true;
            if go (u + 1) then true
            else begin
              image.(u) <- -1;
              used.(x) <- false;
              try_images (x + 1)
            end
          end
          else try_images (x + 1)
        in
        try_images 0
    in
    go 0
  end

let pp ppf g =
  Format.fprintf ppf "@[<h>graph(n=%d; %a)@]" g.n
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges g)

let to_string g = Format.asprintf "%a" pp g

let to_dot ?(name = "G") ?label g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to g.n - 1 do
    let lbl = match label with None -> string_of_int v | Some f -> f v in
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" v lbl)
  done;
  iter_edges (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
