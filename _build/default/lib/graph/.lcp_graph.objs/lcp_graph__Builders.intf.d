lib/graph/builders.mli: Graph Random
