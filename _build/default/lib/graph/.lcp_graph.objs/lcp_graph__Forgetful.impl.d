lib/graph/forgetful.ml: Array Graph List Metrics
