lib/graph/forgetful.mli: Graph
