lib/graph/enumerate.mli: Graph
