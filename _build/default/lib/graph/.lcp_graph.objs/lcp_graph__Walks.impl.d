lib/graph/walks.ml: Array Graph List
