lib/graph/walks.mli: Graph
