lib/graph/graph.ml: Array Buffer Format Hashtbl List Option Printf Queue Stdlib
