lib/graph/coloring.ml: Array Graph List Queue
