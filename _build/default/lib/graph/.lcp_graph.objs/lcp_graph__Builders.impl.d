lib/graph/builders.ml: Graph List Random
