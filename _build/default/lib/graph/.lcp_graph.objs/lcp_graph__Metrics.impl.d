lib/graph/metrics.ml: Array Graph List Queue Stdlib
