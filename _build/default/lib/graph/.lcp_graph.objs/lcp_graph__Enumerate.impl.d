lib/graph/enumerate.ml: Array Coloring Graph Hashtbl List Option
