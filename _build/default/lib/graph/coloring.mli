(** Proper colorings, bipartiteness and odd-cycle witnesses.

    These implement the paper's language [k-col] (Sec. 2.1): a pair
    [(G, x)] is in [k-col] when [x] is a proper k-coloring of [G]. *)

val is_proper : Graph.t -> int array -> bool
(** Is the assignment a proper coloring (no monochromatic edge)?
    Color values are unconstrained integers. *)

val is_proper_k : Graph.t -> k:int -> int array -> bool
(** Proper and every color lies in [0 .. k-1]. *)

val two_color : Graph.t -> int array option
(** A proper 2-coloring with colors {0,1}, or [None] when the graph is
    not bipartite. Each component's BFS root gets color 0. *)

val is_bipartite : Graph.t -> bool

val odd_cycle : Graph.t -> int list option
(** A witness odd cycle (node list, closed implicitly: last connects to
    first) when the graph is not bipartite; [None] otherwise. *)

val odd_closed_walk_check : Graph.t -> int list -> bool
(** Is the node list a closed walk of odd length in the graph? *)

val k_color : Graph.t -> k:int -> int array option
(** A proper k-coloring via backtracking with greedy ordering, or
    [None]. Exact but exponential; intended for small graphs. *)

val is_k_colorable : Graph.t -> k:int -> bool

val chromatic_number : Graph.t -> int
(** Exact chromatic number (0 for the empty graph); small graphs only. *)

val greedy : Graph.t -> int array
(** Greedy coloring in node order; uses at most [max_degree + 1]
    colors. *)
