open Lcp_graph
open Lcp_local

type result = {
  best : int array;
  worst_case_success : float;
  exact : bool;
}

(* Precompute, per instance, each node's view-class index (or -1). *)
let classify (nbhd : Neighborhood.t) instances =
  let key = Neighborhood.key_of_mode nbhd.Neighborhood.mode in
  let index = Hashtbl.create (Neighborhood.order nbhd) in
  Array.iteri
    (fun i v -> Hashtbl.replace index (key v) i)
    nbhd.Neighborhood.views;
  let r = nbhd.Neighborhood.view_radius in
  List.map
    (fun inst ->
      let classes =
        Array.map
          (fun view -> Option.value ~default:(-1) (Hashtbl.find_opt index (key view)))
          (View.extract_all inst ~r)
      in
      (inst, classes))
    instances

let instance_success coloring (inst, classes) =
  let g = inst.Instance.graph in
  let n = Graph.order g in
  if n = 0 then 1.0
  else begin
    let bad = Array.make n false in
    Array.iteri (fun v c -> if c = -1 then bad.(v) <- true) classes;
    Graph.iter_edges
      (fun u v ->
        let cu = if classes.(u) = -1 then -1 else coloring.(classes.(u)) in
        let cv = if classes.(v) = -1 then -2 else coloring.(classes.(v)) in
        if cu = cv then begin
          bad.(u) <- true;
          bad.(v) <- true
        end)
      g;
    let failures = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bad in
    float_of_int (n - failures) /. float_of_int n
  end

let worst_case coloring classified =
  List.fold_left (fun acc ic -> min acc (instance_success coloring ic)) 1.0 classified

let success_fraction ~k nbhd coloring inst =
  ignore k;
  match classify nbhd [ inst ] with
  | [ ic ] -> instance_success coloring ic
  | _ -> assert false

let exhaustive ~k m classified =
  let coloring = Array.make m 0 in
  let best = ref (Array.copy coloring) in
  let best_score = ref (worst_case coloring classified) in
  let rec go i =
    if i = m then begin
      let s = worst_case coloring classified in
      if s > !best_score then begin
        best_score := s;
        best := Array.copy coloring
      end
    end
    else
      for c = 0 to k - 1 do
        coloring.(i) <- c;
        go (i + 1)
      done
  in
  go 0;
  (!best, !best_score)

let hill_climb ~k ~restarts rng m classified =
  let best = ref (Array.make m 0) in
  let best_score = ref (worst_case !best classified) in
  for _ = 1 to restarts do
    let coloring = Array.init m (fun _ -> Random.State.int rng k) in
    let score = ref (worst_case coloring classified) in
    let improved = ref true in
    while !improved do
      improved := false;
      for i = 0 to m - 1 do
        let original = coloring.(i) in
        for c = 0 to k - 1 do
          if c <> original then begin
            coloring.(i) <- c;
            let s = worst_case coloring classified in
            if s > !score then begin
              score := s;
              improved := true
            end
            else coloring.(i) <- original
          end
        done
      done
    done;
    if !score > !best_score then begin
      best_score := !score;
      best := Array.copy coloring
    end
  done;
  (!best, !best_score)

let rec pow_capped b e cap =
  if e = 0 then 1
  else
    let r = pow_capped b (e - 1) cap in
    if r > cap / b then cap + 1 else r * b

let best_extractor ?(exact_limit = 200_000) ?(restarts = 20) ?rng ~k nbhd instances =
  let m = Neighborhood.order nbhd in
  let classified = classify nbhd instances in
  if m = 0 then { best = [||]; worst_case_success = 1.0; exact = true }
  else if pow_capped k m exact_limit <= exact_limit then begin
    let best, score = exhaustive ~k m classified in
    { best; worst_case_success = score; exact = true }
  end
  else begin
    let rng = match rng with Some r -> r | None -> Random.State.make [| 7 |] in
    let best, score = hill_climb ~k ~restarts rng m classified in
    { best; worst_case_success = score; exact = false }
  end

let hiding_level r = 1.0 -. r.worst_case_success
