(** Walks in the accepting neighborhood graph and the Lemma 5.4 / 5.5
    walk surgeries (paper Sec. 5.2).

    A walk of views is {e non-backtracking} when no view's predecessor
    and successor centers carry the same identifier. Non-backtracking is
    necessary for realizability of closed walks; Lemma 5.4 shows it is
    also sufficient (after expansion) on r-forgetful yes-instances, and
    Lemma 5.5 repairs backtracking odd cycles. The constructions here
    operate on concrete instances and lift node walks to view walks. *)

open Lcp_graph
open Lcp_local

val lift : Neighborhood.t -> Instance.t -> int list -> int list option
(** Map a node walk of the instance to view indices of the neighborhood
    graph; [None] if some view is unknown there. *)

val is_non_backtracking_views : View.t list -> bool
(** The Sec. 5.2 definition on a closed walk of views. *)

val far_node : Graph.t -> r:int -> u:int -> v:int -> int option
(** A node whose radius-r ball is disjoint from those of [u] and [v]
    (distance [> 2r] from both) — the [v_mu'] of Lemma 5.4. *)

val edge_expansion : Graph.t -> r:int -> u:int -> v:int -> int list option
(** The Lemma 5.4 closed walk [W_e] for the edge [{u,v}]: start at [u],
    cross to [v], escape along an r-forgetful path, detour through a far
    node, and return non-backtracking. The result is a closed
    non-backtracking walk through [u] and [v]; on a bipartite instance
    it is automatically even. *)

val expand_closed_walk :
  Graph.t -> r:int -> int list -> int list option
(** Apply {!edge_expansion} before every edge of the given closed node
    walk (Lemma 5.4's [W']): the parity is preserved while every
    identifier's occurrences become forgettable. *)

val odd_nb_closed_walk : Graph.t -> max_len:int -> int list option
(** A non-backtracking odd closed node walk, the net effect of
    Lemma 5.5: searches odd lengths [3, 5, ...] up to the bound. Only
    exists in non-bipartite graphs. *)

val repair_backtracking : Graph.t -> int list -> int list option
(** The explicit Lemma 5.5 surgery: given a closed walk with a
    backtracking position, replace the incoming edge by an odd detour
    through a cycle that avoids the offending predecessor. Returns a
    non-backtracking closed walk of the same parity; [None] when the
    graph lacks the required second cycle. *)
