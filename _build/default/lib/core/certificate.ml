let fields s = String.split_on_char ':' s
let join = String.concat ":"

let int_field s =
  match int_of_string_opt s with
  | Some v when v >= 0 && s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s ->
      Some v
  | _ -> None

let bits_for_int ~max =
  if max < 0 then invalid_arg "Certificate.bits_for_int";
  let rec go bits cap = if cap > max then bits else go (bits + 1) (2 * cap) in
  go 1 2

let bits_for_id ~bound = bits_for_int ~max:bound

let bits_of_parts parts = List.fold_left ( + ) 0 parts
