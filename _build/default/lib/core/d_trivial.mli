(** The classical (revealing) LCP for k-coloring (paper Sec. 1):
    certificate = the node's own color in a proper k-coloring,
    [ceil(log k)] bits; each node accepts iff its color is valid and
    differs from all neighbors' colors.

    This baseline is strongly sound (accepting nodes carry a proper
    coloring among themselves) but {e not} hiding — its neighborhood
    graph is k-colorable by construction and the Lemma 3.2 extractor
    recovers the coloring everywhere. *)

open Lcp_local

val decoder : k:int -> Decoder.t
val prover : k:int -> Instance.t -> Labeling.t option
val suite : k:int -> Decoder.suite
