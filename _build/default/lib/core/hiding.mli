(** The hiding property and its characterization (paper Sec. 2.4 and
    Lemma 3.2).

    [Lemma 3.2]: an r-round LCP [D] for k-coloring is hiding iff the
    accepting neighborhood graph [V(D, n)] is {e not} k-colorable for
    some [n]. Both directions are constructive here:

    - If the neighborhood graph built from an instance family is not
      k-colorable, the odd-cycle (k = 2) or non-colorability witness
      certifies hiding — soundly, because the family graph is a subgraph
      of the true [V(D, n)].
    - If it is k-colorable {e and} the family is exhaustive for the
      sizes of interest, the proof's extraction decoder [D'] is built
      explicitly (see {!Extractor}) and can be run on instances. *)

open Lcp_local

type verdict =
  | Hiding of { witness : int list; nbhd : Neighborhood.t }
      (** [witness] is a non-k-colorable certificate: for k = 2, an odd
          cycle of view indices in the neighborhood graph *)
  | Colorable of { coloring : int array; nbhd : Neighborhood.t }
      (** a proper k-coloring of the (possibly partial) neighborhood
          graph: no hiding evidence in this family; conclusive
          non-hiding when the family was exhaustive *)

val check :
  ?mode:Neighborhood.mode ->
  ?yes:(Lcp_graph.Graph.t -> bool) ->
  k:int ->
  Decoder.t ->
  Instance.t list ->
  verdict
(** [yes] is the decoder's language (which yes-instances feed the
    neighborhood graph); it defaults to [k]-colorability, but when
    checking whether a K-coloring is hidden by an LCP for k-col with
    K > k (Sec. 1.3), pass the decoder's own language here. *)

val of_neighborhood : k:int -> Neighborhood.t -> verdict

val is_hiding_on : k:int -> Decoder.t -> Instance.t list -> bool
(** [true] exactly when {!check} returns [Hiding]. *)

val pp_verdict : Format.formatter -> verdict -> unit
