open Lcp_graph
open Lcp_local

let tag_of s =
  if String.length s >= 2 && s.[1] = ':' then
    match s.[0] with '1' -> Some 1 | '2' -> Some 2 | _ -> None
  else None

let payload s = String.sub s 2 (String.length s - 2)

let accepts view =
  match tag_of (View.center_label view) with
  | None -> false
  | Some tag ->
      let sub =
        if tag = 1 then D_degree_one.decoder.Decoder.accepts
        else D_even_cycle.decoder.Decoder.accepts
      in
      (* all neighbors must carry the same tag; then the tag is stripped
         (foreign or malformed certificates become junk) and the
         sub-decoder takes over *)
      let strip s =
        match tag_of s with
        | Some t when t = tag -> payload s
        | Some _ | None -> Decoder.junk
      in
      List.for_all
        (fun (w, _, _) -> tag_of (View.label view w) = Some tag)
        (View.center_neighbors view)
      && sub (View.map_labels view strip)

let decoder = Decoder.make ~name:"union-H1-H2" ~radius:1 ~anonymous:true accepts

let prover (inst : Instance.t) =
  let g = inst.Instance.graph in
  match D_degree_one.prover inst with
  | Some lab -> Some (Array.map (fun s -> "1:" ^ s) lab)
  | None -> (
      match D_even_cycle.prover inst with
      | Some lab -> Some (Array.map (fun s -> "2:" ^ s) lab)
      | None ->
          ignore g;
          None)

let alphabet =
  List.map (fun s -> "1:" ^ s) D_degree_one.alphabet
  @ List.map (fun s -> "2:" ^ s) D_even_cycle.alphabet
  @ [ Decoder.junk ]

let suite =
  {
    Decoder.dec = decoder;
    promise =
      (fun g ->
        (Graph.order g > 0 && Graph.min_degree g = 1)
        || (Graph.is_cycle g && Graph.order g mod 2 = 0));
    prover;
    adversary_alphabet = (fun _ -> alphabet);
    cert_bits = (fun _ -> 7);
  }
