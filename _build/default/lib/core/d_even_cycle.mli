(** The Lemma 4.2 decoder: an anonymous, strong and hiding one-round
    LCP for 2-coloring on even cycles, with constant-size certificates.

    The certificate of a node encodes, for each of its two ports, the
    far-end port of that edge and the edge's color in a proper
    2-{e edge}-coloring of the cycle. An even cycle is 2-colorable iff
    it is 2-edge-colorable, the nodes can verify the edge coloring
    locally, and — unlike the degree-one construction — the node
    coloring is hidden {e everywhere}. *)

open Lcp_local

val encode : q1:int -> c1:int -> q2:int -> c2:int -> string
(** Certificate claiming: my port-1 edge arrives at the far end's port
    [q1] and has color [c1]; my port-2 edge at far port [q2] with color
    [c2]. *)

val decoder : Decoder.t
val prover : Instance.t -> Labeling.t option

val alphabet : string list
(** The 8 well-formed certificates ([q]s in 1..2, [c1 <> c2]) plus the
    junk representative; any malformed certificate is equivalent to junk
    for this decoder, so this alphabet is adversarially exhaustive. *)

val suite : Decoder.suite
