(** A round/size trade-off decoder: one certificate {e bit} per node,
    two verification rounds, on even cycles.

    E17 shows no 1-bit port-oblivious one-round decoder is a complete,
    strong and hiding LCP on even cycles (and Lemma 4.2's construction
    spends 6 bits). Spending one more {e round} instead of more bits:
    each node publishes only the color of the edge behind its own
    port 1; a radius-2 verifier collects the pinned colors in its
    window, adds the alternation constraints (a node's two incident
    edges differ), and accepts iff the local system is satisfiable.

    This realizes on our framework the certificate-size/verification-
    rounds trade-off theme of the related work the paper cites
    (Fischer–Oshman–Shamir; Bousquet–Feuilloley–Zeitoun's
    [Omega(log k / d)] d-round bound). Its properties (completeness,
    exhaustive soundness and strong soundness on small rings, hiding)
    are measured in experiment E20. *)

open Lcp_local

val decoder : Decoder.t
val prover : Instance.t -> Labeling.t option
val alphabet : string list
val suite : Decoder.suite
