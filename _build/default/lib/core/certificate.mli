(** Certificate codecs with exact bit accounting.

    Decoders keep their certificates human-readable (colon-separated
    fields); this module provides the parsing helpers and the binary
    size accounting used by the certificate-size experiments (E12):
    [bits_*] report the size of the {e information-theoretic} binary
    encoding of a field, independent of the readable representation. *)

val fields : string -> string list
(** Split on [':']. *)

val join : string list -> string
(** Inverse of [fields]. *)

val int_field : string -> int option
(** Parse a non-negative decimal field. *)

val bits_for_int : max:int -> int
(** Bits to encode an integer in [0 .. max]: [ceil(log2 (max+1))],
    at least 1. *)

val bits_for_id : bound:int -> int
(** Bits for an identifier in [1 .. bound]. *)

val bits_of_parts : int list -> int
(** Sum of the parts (plus nothing — parts are already self-delimiting
    in a length-prefixed encoding, which we charge to the constant). *)
