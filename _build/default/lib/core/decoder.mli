(** r-round binary decoders and the LCP bundle (paper Sec. 2.2–2.5).

    A decoder is the distributed verifier: a computable map from
    radius-r views to accept/reject. A {!suite} bundles a decoder with
    everything needed to exercise it as a full LCP: the promise class,
    an honest prover, an adversary alphabet for exhaustive soundness
    checking, and the certificate-size accounting. *)

open Lcp_graph
open Lcp_local

type t = {
  name : string;
  radius : int;
  anonymous : bool;  (** claimed; tests verify it empirically *)
  accepts : View.t -> bool;
}

val make : name:string -> radius:int -> anonymous:bool -> (View.t -> bool) -> t

val run : t -> Instance.t -> bool array
(** Per-node verdicts. *)

val accepts_all : t -> Instance.t -> bool

val accepting_nodes : t -> Instance.t -> int list

val accepted_subgraph : t -> Instance.t -> Graph.t * int array
(** Subgraph induced by the accepting nodes (plus the map back to
    original node ids) — the object of strong soundness. *)

val as_local_algo : t -> bool Local_algo.t

(** {1 LCP bundles} *)

type suite = {
  dec : t;
  promise : Graph.t -> bool;
      (** the class H of the promise problem (yes-instances) *)
  prover : Instance.t -> Labeling.t option;
      (** honest prover: certificates for a yes-instance (the instance's
          own labels are ignored); [None] if the graph is outside the
          promise class or not 2-colorable *)
  adversary_alphabet : Instance.t -> string list;
      (** finite certificate alphabet that is exhaustive up to
          node-level equivalence for this decoder on this instance
          (malformed certificates are represented by one junk symbol) *)
  cert_bits : Instance.t -> int;
      (** information-theoretic size (bits) of the largest honest
          certificate on this instance *)
}

val certify : suite -> Instance.t -> Instance.t option
(** Instance re-labeled by the honest prover. *)

val junk : string
(** The representative malformed certificate, rejected by every decoder
    in this library. *)
