(** Resilient labeling schemes (the Fischer–Oshman–Shamir model the
    paper discusses in Sec. 1.2): certificates survive erasures.

    {!wrap} transforms any LCP suite into one whose certificates embed a
    backup of every neighbor's certificate, keyed by the neighbor-side
    port of the shared edge. The wrapped decoder runs one extra round:
    it reconstructs erased certificates (empty strings) inside its
    radius-r ball from the backups of their neighbors — rejecting on
    missing or contradictory backups — and then evaluates the original
    decoder on the repaired view.

    Unlike the paper's strong soundness (a condition on no-instances),
    resilience is a condition on completeness: every yes-instance must
    stay unanimously accepted after up to [f] certificates are erased.
    With one backup per incident edge the scheme tolerates any erasure
    pattern in which every erased node keeps at least one non-erased
    neighbor — in particular any f with f-independence, and any single
    erasure on graphs of minimum degree 1. *)

open Lcp_graph
open Lcp_local

val erase : Instance.t -> nodes:int list -> Instance.t
(** Failure injection: blank the certificates of the given nodes. *)

val wrap : Decoder.suite -> Decoder.suite
(** The resilient suite: radius [r + 1], certificates of size
    [O(Delta)] times the original. The promise class, prover and
    adversary alphabet are lifted accordingly (the wrapped adversary
    alphabet combines original certificates with junk backups and the
    erased certificate, so exhaustive checks remain possible on tiny
    instances). *)

val reconstructible : Graph.t -> erased:int list -> bool
(** Does every erased node keep a non-erased neighbor? (The condition
    under which reconstruction is information-theoretically possible.) *)
