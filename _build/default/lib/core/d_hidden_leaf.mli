(** The k-coloring generalization of Lemma 4.1 (the paper's Sec. 1.3
    notes that the upper-bound techniques extend to general k): an
    anonymous, strong and hiding one-round LCP for [k-col] on graphs of
    minimum degree 1, with certificates of [O(log k)] bits.

    The prover reveals a proper k-coloring everywhere except at a chosen
    leaf ([bot]) and its unique neighbor ([top]). The [top] node checks
    that its colored neighbors use at most [k - 1] distinct colors — the
    condition that keeps the accepting subgraph k-colorable. At [k = 2]
    this coincides with {!D_degree_one} (a "<= 1 distinct colors" check
    is monochromaticity) and is hiding.

    For [k >= 3], completeness, strong soundness and anonymity
    generalize verbatim, but hiding does {e not} follow from the leaf
    trick: the Lemma 3.2 extractor may re-color all nodes freely, and on
    the small-instance families we can enumerate, the accepting
    neighborhood graph stays k-colorable — experiment E16 exhibits the
    resulting working extractor. Whether any strong and hiding LCP for
    k-col with k >= 3 exists on this class is exactly the kind of
    question the paper leaves open. *)

open Lcp_local

val decoder : k:int -> Decoder.t
val prover : k:int -> Instance.t -> Labeling.t option
val alphabet : k:int -> string list
val suite : k:int -> Decoder.suite
