(** The Theorem 1.4 decoder: a strong and hiding one-round LCP for
    2-coloring on watermelon graphs, with [O(log n)]-bit certificates.

    A watermelon graph consists of two endpoints joined by internally
    disjoint paths of length at least 2. The prover publishes both
    endpoint identifiers everywhere, numbers the paths, and reveals a
    proper 2-{e edge}-coloring of every path that is monochromatic at
    both endpoints. All cycles seen by accepting nodes are unions of two
    such paths and hence even; the node coloring itself is hidden by the
    same 2-edge-coloring trick as on cycles. *)

open Lcp_graph
open Lcp_local

type decomposition = {
  v1 : int;
  v2 : int;
  paths : int list list;
      (** each path as the full node list [v1; ...; v2] *)
}

val decompose : Graph.t -> decomposition option
(** Recognize a watermelon graph (endpoints auto-detected; on a cycle
    the two endpoints are node 0 and a node at maximal distance). *)

val encode_endpoint : id1:int -> id2:int -> string
val encode_path_node :
  id1:int -> id2:int -> num:int -> p1:int -> c1:int -> p2:int -> c2:int -> string

val decoder : Decoder.t
val prover : Instance.t -> Labeling.t option
val suite : Decoder.suite
