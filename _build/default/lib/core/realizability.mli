(** Realizability of subgraphs of the accepting neighborhood graph
    (paper Sec. 5.1) and the [G_bad] gluing construction (Lemma 5.1).

    A subgraph [H] of [V(D,n)] is realizable when for every identifier
    [i] occurring in its views there is one view [mu_i] centered at [i]
    with which every occurrence of [i] across [H] is compatible; gluing
    the [mu_i] along identifiers then yields a single instance [G_bad]
    containing an isomorphic copy of [H] whose nodes all accept — the
    counterexample scheme behind Theorem 1.5. *)

open Lcp_local

type subgraph = {
  views : View.t array;
  edges : (int * int) list;  (** on view indices *)
}

val of_neighborhood : Neighborhood.t -> int list -> subgraph
(** Induced sub-structure of the neighborhood graph on the given view
    indices (e.g. an odd cycle returned by {!Hiding.check}). *)

val walk_subgraph : Neighborhood.t -> int list -> subgraph
(** A closed walk (possibly repeating views) as a subgraph-with-edges. *)

val compatible : View.t -> int -> View.t -> bool
(** [compatible mu1 u mu2]: is node [u] of [mu1] compatible with [mu2]
    (Sec. 5.1): same identifier as [mu2]'s center, and every interior
    node of [mu1] shares its radius-1 view with any interior node of
    [mu2] carrying the same identifier. *)

val ids_of : subgraph -> int list
(** All identifiers occurring in the views, sorted. *)

val occurrences : subgraph -> int -> int list
(** Indices of the views in which the identifier occurs ([S(i)]'s node
    set). *)

type assignment = (int * View.t) list
(** Chosen [mu_i] per identifier. *)

val realizable : ?pool:View.t list -> subgraph -> assignment option
(** Find a witness assignment: for identifiers that are centers of [H]'s
    views the (necessarily unique) centered view of [H] is used; other
    identifiers draw candidates from [pool] and from [H] itself. [None]
    when some identifier has no universally compatible centered view. *)

type realization = {
  instance : Instance.t;
  node_of_id : (int * int) list;  (** identifier -> node of [G_bad] *)
  warnings : string list;  (** e.g. port renumberings at fringe nodes *)
}

val realize : assignment -> (realization, string) result
(** The Lemma 5.1 gluing. Fails when the views disagree on labels,
    ports or adjacency of a shared identifier. *)

val centers_accepted : Decoder.t -> subgraph -> realization -> bool
(** Do all nodes of [G_bad] carrying a center identifier of [H]
    accept? This is the conclusion of Lemma 5.1. *)

val lemma_5_1 :
  Decoder.t -> ?pool:View.t list -> subgraph -> (realization, string) result
(** End-to-end: check realizability, glue, and verify acceptance of the
    embedded copy of [H]. *)
