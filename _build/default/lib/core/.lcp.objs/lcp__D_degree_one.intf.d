lib/core/d_degree_one.mli: Decoder Instance Labeling Lcp_local
