lib/core/extractor.mli: Graph Hiding Instance Lcp_graph Lcp_local Local_algo Neighborhood
