lib/core/extractor.ml: Array Coloring Decoder Graph Hashtbl Hiding Instance Lcp_graph Lcp_local List Local_algo Neighborhood Option Printf
