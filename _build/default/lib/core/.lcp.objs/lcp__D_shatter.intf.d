lib/core/d_shatter.mli: Decoder Graph Instance Labeling Lcp_graph Lcp_local
