lib/core/codec.mli: Decoder Graph Instance Json Lcp_graph Lcp_local Report
