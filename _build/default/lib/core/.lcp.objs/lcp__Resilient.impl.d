lib/core/resilient.ml: Array Certificate Decoder Graph Instance Lcp_graph Lcp_local List Option Port Printf Stdlib String View
