lib/core/prover.ml: Array Decoder Graph Instance Labeling Lcp_graph Lcp_local List Metrics View
