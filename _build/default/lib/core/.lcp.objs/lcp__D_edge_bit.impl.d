lib/core/d_edge_bit.ml: Array Decoder Graph Hashtbl Instance Lcp_graph Lcp_local List Option Port View
