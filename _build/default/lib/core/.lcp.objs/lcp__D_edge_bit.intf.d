lib/core/d_edge_bit.mli: Decoder Instance Labeling Lcp_local
