lib/core/d_watermelon.ml: Array Certificate Coloring Decoder Graph Hashtbl Ident Instance Lcp_graph Lcp_local List Metrics Option Port Printf Stdlib View
