lib/core/d_even_cycle.ml: Array Certificate Decoder Graph Hashtbl Instance Lcp_graph Lcp_local List Port Printf View
