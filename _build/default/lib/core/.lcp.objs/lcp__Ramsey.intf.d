lib/core/ramsey.mli: Decoder Lcp_local View
