lib/core/json.ml: Buffer Char List Printf Result String
