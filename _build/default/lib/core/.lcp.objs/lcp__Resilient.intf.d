lib/core/resilient.mli: Decoder Graph Instance Lcp_graph Lcp_local
