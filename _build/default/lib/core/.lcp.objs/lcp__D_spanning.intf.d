lib/core/d_spanning.mli: Decoder Instance Labeling Lcp_local
