lib/core/d_union.mli: Decoder Instance Labeling Lcp_local
