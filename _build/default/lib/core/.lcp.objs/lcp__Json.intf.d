lib/core/json.mli:
