lib/core/d_hidden_leaf.ml: Array Certificate Coloring Decoder Graph Instance Lcp_graph Lcp_local List Option Printf Stdlib View
