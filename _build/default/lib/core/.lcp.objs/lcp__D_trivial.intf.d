lib/core/d_trivial.mli: Decoder Instance Labeling Lcp_local
