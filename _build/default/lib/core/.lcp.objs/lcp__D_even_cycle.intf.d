lib/core/d_even_cycle.mli: Decoder Instance Labeling Lcp_local
