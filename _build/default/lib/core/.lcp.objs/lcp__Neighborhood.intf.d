lib/core/neighborhood.mli: Decoder Format Graph Instance Lcp_graph Lcp_local View
