lib/core/d_spanning.ml: Array Certificate Coloring Decoder Graph Ident Instance Lcp_graph Lcp_local List Metrics Option Printf View
