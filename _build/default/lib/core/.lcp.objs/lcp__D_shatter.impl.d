lib/core/d_shatter.ml: Array Certificate Char Coloring Decoder Graph Hashtbl Ident Instance Lcp_graph Lcp_local List Option Printf Stdlib String View
