lib/core/neighborhood.ml: Array Coloring Decoder Format Graph Hashtbl Ident Instance Lcp_graph Lcp_local List Option Port Printf Prover Stdlib View
