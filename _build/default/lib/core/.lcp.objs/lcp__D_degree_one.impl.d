lib/core/d_degree_one.ml: Array Coloring Decoder Graph Instance Lcp_graph Lcp_local List Option Stdlib View
