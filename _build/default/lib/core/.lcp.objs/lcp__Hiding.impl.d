lib/core/hiding.ml: Coloring Format Graph Lcp_graph List Neighborhood
