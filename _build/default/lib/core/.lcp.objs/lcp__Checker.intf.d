lib/core/checker.mli: Decoder Format Instance Lcp_local Random
