lib/core/hiding.mli: Decoder Format Instance Lcp_graph Lcp_local Neighborhood
