lib/core/d_union.ml: Array D_degree_one D_even_cycle Decoder Graph Instance Lcp_graph Lcp_local List String View
