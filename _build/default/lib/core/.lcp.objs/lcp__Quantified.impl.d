lib/core/quantified.ml: Array Graph Hashtbl Instance Lcp_graph Lcp_local List Neighborhood Option Random View
