lib/core/codec.ml: Array Decoder Graph Ident Instance Json Lcp_graph Lcp_local List Report Result
