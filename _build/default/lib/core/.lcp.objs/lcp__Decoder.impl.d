lib/core/decoder.ml: Array Graph Instance Labeling Lcp_graph Lcp_local List Local_algo Option View
