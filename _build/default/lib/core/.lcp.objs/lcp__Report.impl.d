lib/core/report.ml: Buffer Format List Printf String
