lib/core/realizability.ml: Array Decoder Graph Hashtbl Ident Instance Lcp_graph Lcp_local List Neighborhood Option Printf Stdlib View
