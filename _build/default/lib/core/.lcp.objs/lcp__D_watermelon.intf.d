lib/core/d_watermelon.mli: Decoder Graph Instance Labeling Lcp_graph Lcp_local
