lib/core/checker.ml: Array Coloring Decoder Format Instance Labeling Lcp_graph Lcp_local List Local_algo Option Printf Prover Random String
