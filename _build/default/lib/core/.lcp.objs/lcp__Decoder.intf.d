lib/core/decoder.mli: Graph Instance Labeling Lcp_graph Lcp_local Local_algo View
