lib/core/quantified.mli: Instance Lcp_local Neighborhood Random
