lib/core/nb_walks.mli: Graph Instance Lcp_graph Lcp_local Neighborhood View
