lib/core/certificate.mli:
