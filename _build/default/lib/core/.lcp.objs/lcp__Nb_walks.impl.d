lib/core/nb_walks.ml: Array Forgetful Graph Lcp_graph Lcp_local List Metrics Neighborhood Option View Walks
