lib/core/certificate.ml: List String
