lib/core/experiments.mli: Report
