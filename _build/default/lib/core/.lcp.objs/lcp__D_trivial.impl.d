lib/core/d_trivial.ml: Array Certificate Coloring Decoder Instance Lcp_graph Lcp_local List Option Printf View
