lib/core/realizability.mli: Decoder Instance Lcp_local Neighborhood View
