lib/core/ramsey.ml: Array Decoder Hashtbl Lcp_local List Stdlib View
