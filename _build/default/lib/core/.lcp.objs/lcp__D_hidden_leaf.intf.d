lib/core/d_hidden_leaf.mli: Decoder Instance Labeling Lcp_local
