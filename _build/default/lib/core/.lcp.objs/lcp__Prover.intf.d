lib/core/prover.mli: Decoder Instance Labeling Lcp_local
