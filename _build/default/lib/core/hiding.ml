open Lcp_graph

type verdict =
  | Hiding of { witness : int list; nbhd : Neighborhood.t }
  | Colorable of { coloring : int array; nbhd : Neighborhood.t }

let of_neighborhood ~k nbhd =
  let g = nbhd.Neighborhood.graph in
  match nbhd.Neighborhood.loops with
  | i :: _ ->
      (* a looped view class defeats every extractor, for every k *)
      Hiding { witness = [ i ]; nbhd }
  | [] -> (
  match Coloring.k_color g ~k with
  | Some coloring -> Colorable { coloring; nbhd }
  | None ->
      let witness =
        if k = 2 then
          match Coloring.odd_cycle g with
          | Some c -> c
          | None -> assert false
        else
          (* generic witness: a minimal non-k-colorable subset of views,
             found greedily by deleting nodes that keep it non-colorable *)
          let rec shrink keep =
            let try_drop v =
              let keep' = List.filter (fun w -> w <> v) keep in
              let sub, _ = Graph.induced g keep' in
              if Coloring.is_k_colorable sub ~k then None else Some keep'
            in
            match List.find_map try_drop keep with
            | Some keep' -> shrink keep'
            | None -> keep
          in
          shrink (Graph.nodes g)
      in
      Hiding { witness; nbhd })

let check ?mode ?yes ~k dec instances =
  let yes =
    match yes with Some f -> f | None -> fun g -> Coloring.is_k_colorable g ~k
  in
  of_neighborhood ~k (Neighborhood.build ?mode ~yes dec instances)

let is_hiding_on ~k dec instances =
  match check ~k dec instances with Hiding _ -> true | Colorable _ -> false

let pp_verdict ppf = function
  | Hiding { witness; nbhd } ->
      Format.fprintf ppf "hiding (witness of %d views in %a)" (List.length witness)
        Neighborhood.pp_summary nbhd
  | Colorable { nbhd; _ } ->
      Format.fprintf ppf "colorable neighborhood graph (%a): not hiding on this family"
        Neighborhood.pp_summary nbhd
