open Lcp_local

let rec combinations pool k =
  if k = 0 then [ [] ]
  else
    match pool with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (combinations rest (k - 1)) @ combinations rest k

let monochromatic_subset ~universe ~tuple_size ~size ~color =
  let universe = List.sort_uniq Stdlib.compare universe in
  let monochromatic subset =
    match combinations subset tuple_size with
    | [] -> true
    | first :: rest ->
        let c = color first in
        List.for_all (fun t -> color t = c) rest
  in
  List.find_opt monochromatic (combinations universe size)

let arrows ~n ~s ~t =
  let slots = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      slots := (u, v) :: !slots
    done
  done;
  let slots = Array.of_list !slots in
  let m = Array.length slots in
  if m > 20 then invalid_arg "Ramsey.arrows: n too large";
  let has_mono_clique color size want =
    combinations (List.init n (fun i -> i)) size
    |> List.exists (fun clique ->
           let rec pairs = function
             | [] -> []
             | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
           in
           List.for_all (fun (a, b) -> color (min a b, max a b) = want) (pairs clique))
  in
  let rec all_colorings mask =
    if mask = 1 lsl m then true
    else begin
      let color e =
        let rec idx i = if slots.(i) = e then i else idx (i + 1) in
        (mask lsr idx 0) land 1
      in
      (has_mono_clique color s 0 || has_mono_clique color t 1)
      && all_colorings (mask + 1)
    end
  in
  all_colorings 0

let ramsey_number ~s ~t =
  let rec go n = if arrows ~n ~s ~t then n else go (n + 1) in
  go (max s t)

let reassign_by_rank view tuple =
  let ids = Array.to_list view.View.ids in
  let sorted = List.sort Stdlib.compare ids in
  let tuple = Array.of_list tuple in
  if Array.length tuple < List.length sorted then
    invalid_arg "Ramsey: tuple smaller than the view";
  let target = Hashtbl.create 8 in
  List.iteri (fun rank i -> Hashtbl.replace target i tuple.(rank)) sorted;
  View.reidentify view
    ~f:(fun i -> Hashtbl.find target i)
    ~id_bound:(max view.View.id_bound (Array.fold_left max 1 tuple))
    ()

let decoder_type (dec : Decoder.t) ~shapes tuple =
  List.map (fun shape -> dec.Decoder.accepts (reassign_by_rank shape tuple)) shapes

let type_color dec ~shapes =
  let table : (bool list, int) Hashtbl.t = Hashtbl.create 16 in
  let memo : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  let color tuple =
    match Hashtbl.find_opt memo tuple with
    | Some c -> c
    | None ->
        let ty = decoder_type dec ~shapes tuple in
        let c =
          match Hashtbl.find_opt table ty with
          | Some c -> c
          | None ->
              let c = !next in
              incr next;
              Hashtbl.replace table ty c;
              c
        in
        Hashtbl.replace memo tuple c;
        c
  in
  (color, fun () -> !next)

let monochromatic_ids dec ~shapes ~universe ~size =
  let tuple_size =
    List.fold_left (fun acc v -> max acc (View.size v)) 1 shapes
  in
  let color, _ = type_color dec ~shapes in
  monochromatic_subset ~universe ~tuple_size ~size ~color

let order_invariant_decoder (dec : Decoder.t) ~mono =
  let mono = Array.of_list (List.sort_uniq Stdlib.compare mono) in
  let accepts view =
    let ids = List.sort Stdlib.compare (Array.to_list view.View.ids) in
    if List.length ids > Array.length mono then dec.Decoder.accepts view
    else begin
      let target = Hashtbl.create 8 in
      List.iteri (fun rank i -> Hashtbl.replace target i mono.(rank)) ids;
      let view' =
        View.reidentify view
          ~f:(fun i -> Hashtbl.find target i)
          ~id_bound:(max view.View.id_bound (Array.fold_left max 1 mono))
          ()
      in
      dec.Decoder.accepts view'
    end
  in
  Decoder.make
    ~name:(dec.Decoder.name ^ "-order-invariant")
    ~radius:dec.Decoder.radius ~anonymous:false accepts
