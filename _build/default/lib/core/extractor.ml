open Lcp_graph
open Lcp_local

type t = {
  algo : int Local_algo.t;
  nbhd : Neighborhood.t;
  coloring : int array;
}

let of_coloring (nbhd : Neighborhood.t) coloring =
  if not (Coloring.is_proper nbhd.Neighborhood.graph coloring) then
    invalid_arg "Extractor.of_coloring: not a proper coloring of V(D,n)";
  let key = Neighborhood.key_of_mode nbhd.Neighborhood.mode in
  let table = Hashtbl.create (Neighborhood.order nbhd) in
  Array.iteri
    (fun i v -> Hashtbl.replace table (key v) coloring.(i))
    nbhd.Neighborhood.views;
  let radius = nbhd.Neighborhood.view_radius in
  let run view =
    Option.value ~default:(-1) (Hashtbl.find_opt table (key view))
  in
  let algo =
    Local_algo.make
      ~name:(Printf.sprintf "extractor(%s)" nbhd.Neighborhood.decoder.Decoder.name)
      ~radius run
  in
  { algo; nbhd; coloring }

let of_verdict = function
  | Hiding.Colorable { coloring; nbhd } -> Some (of_coloring nbhd coloring)
  | Hiding.Hiding _ -> None

let extract t inst = Local_algo.run_all t.algo inst

let failure_nodes t inst =
  let colors = extract t inst in
  let g = inst.Instance.graph in
  let bad = Array.make (Graph.order g) false in
  Array.iteri (fun v c -> if c < 0 then bad.(v) <- true) colors;
  Graph.iter_edges
    (fun u v ->
      if colors.(u) = colors.(v) then begin
        bad.(u) <- true;
        bad.(v) <- true
      end)
    g;
  Graph.fold_nodes (fun v acc -> if bad.(v) then v :: acc else acc) g []
  |> List.rev

let extraction_succeeds t inst = failure_nodes t inst = []

let success_fraction t inst =
  let n = Instance.order inst in
  if n = 0 then 1.0
  else
    let failures = List.length (failure_nodes t inst) in
    float_of_int (n - failures) /. float_of_int n

let proper_on t inst g =
  let colors = extract t inst in
  Array.for_all (fun c -> c >= 0) colors && Coloring.is_proper g colors
