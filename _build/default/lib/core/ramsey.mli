(** Finite Ramsey machinery and the order-invariance reduction of
    Lemma 6.2 (paper Sec. 6).

    The reduction colors identifier tuples by the decoder's behavior
    ("type") on a fixed finite set of view shapes, finds a monochromatic
    identifier set by exhaustive search (the finite stand-in for
    Lemma 6.1), and produces an order-invariant decoder that first
    remaps the identifiers in its view — order-preservingly — into the
    monochromatic set and then runs the original decoder. *)

open Lcp_local

val combinations : int list -> int -> int list list
(** All sorted [k]-subsets. *)

val monochromatic_subset :
  universe:int list ->
  tuple_size:int ->
  size:int ->
  color:(int list -> int) ->
  int list option
(** A subset [Y] of the universe with [|Y| = size] such that all sorted
    [tuple_size]-subsets of [Y] receive the same color; brute force. *)

val arrows : n:int -> s:int -> t:int -> bool
(** The graph-Ramsey arrow [n -> (s, t)]: every red/blue coloring of
    [K_n]'s edges contains a red [K_s] or blue [K_t]. Exhaustive over
    all [2^(n choose 2)] colorings; [n <= 6]. *)

val ramsey_number : s:int -> t:int -> int
(** Least [n] with [n -> (s, t)]; small parameters only (e.g.
    [R(3,3) = 6]). *)

(** {1 The Lemma 6.2 reduction} *)

val decoder_type :
  Decoder.t -> shapes:View.t list -> int list -> bool list
(** The type of a sorted identifier tuple: for each shape, reassign its
    identifiers order-preservingly from the tuple (rank [j] receives the
    tuple's [j]-th element) and record the decoder's verdict. The tuple
    must be at least as large as every shape. *)

val type_color :
  Decoder.t -> shapes:View.t list -> (int list -> int) * (unit -> int)
(** Memoized coloring of tuples by type; the second component reports
    how many distinct types have been seen. *)

val monochromatic_ids :
  Decoder.t -> shapes:View.t list -> universe:int list -> size:int -> int list option
(** A monochromatic identifier set for the decoder-type coloring, with
    tuple size equal to the largest shape. *)

val order_invariant_decoder : Decoder.t -> mono:int list -> Decoder.t
(** The decoder [D'] of Lemma 6.2: remap the view's identifiers
    order-preservingly into [mono] and run [D]. Order-invariant by
    construction on views of size at most [List.length mono]. *)
