(** Quantified hiding (the paper's Sec. 2.4 future-work question):
    instead of asking whether {e some} node fails to extract, measure
    {e how many} must fail.

    An r-round extractor is an arbitrary map from view classes to colors
    [0..k-1]. Its success fraction on an accepted instance is the share
    of nodes that are not incident to any monochromatic edge under the
    extracted colors. The decoder hides at level [alpha] when every
    extractor leaves a failure fraction of at least [alpha] on some
    instance; equivalently, [1 - alpha] bounds the best worst-case
    success fraction computed here.

    The search is exact (all [k^|V|] colorings) when the space is small
    and falls back to multi-start hill climbing beyond — in which case
    the result is only a {e lower} bound on what extractors can achieve,
    hence an {e upper} bound estimate on the hiding level. *)

open Lcp_local

type result = {
  best : int array;  (** the best extractor found: color per view class *)
  worst_case_success : float;
      (** min over instances of its per-instance success fraction *)
  exact : bool;  (** true when the search space was enumerated fully *)
}

val best_extractor :
  ?exact_limit:int ->
  ?restarts:int ->
  ?rng:Random.State.t ->
  k:int ->
  Neighborhood.t ->
  Instance.t list ->
  result
(** [exact_limit] (default [200_000]) caps the exhaustive search size
    [k^|V|]; [restarts] (default 20) controls hill climbing. The
    instance list should be the (unanimously accepted) family the
    neighborhood graph was built from. *)

val success_fraction :
  k:int -> Neighborhood.t -> int array -> Instance.t -> float
(** Success fraction of one extractor on one instance; nodes whose view
    is unknown to the neighborhood graph count as failures. *)

val hiding_level : result -> float
(** [1 - worst_case_success]: the fraction of nodes the best-known
    extractor must give up on in its worst instance. *)
