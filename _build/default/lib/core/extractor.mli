(** The extraction decoder [D'] from the proof of Lemma 3.2.

    Given a proper k-coloring [c] of the neighborhood graph, every node
    looks its own view up in [V(D, n)] and outputs [c(view)]. On any
    unanimously accepted instance whose views all appear in the
    neighborhood graph, the outputs form a proper k-coloring — which is
    precisely why such a decoder refutes hiding. *)

open Lcp_graph
open Lcp_local

type t = {
  algo : int Local_algo.t;
  nbhd : Neighborhood.t;
  coloring : int array;
}

val of_coloring : Neighborhood.t -> int array -> t
(** @raise Invalid_argument if the coloring is not proper on the
    neighborhood graph. *)

val of_verdict : Hiding.verdict -> t option
(** [Some] exactly on [Colorable] verdicts. *)

val extract : t -> Instance.t -> int array
(** Per-node colors; a node whose view is unknown to the neighborhood
    graph outputs [-1] (extraction fails there). *)

val extraction_succeeds : t -> Instance.t -> bool
(** Did extraction produce a proper coloring with no [-1]s? *)

val failure_nodes : t -> Instance.t -> int list
(** Nodes where the output is [-1] or clashes with a neighbor — the
    nodes where the witness stays hidden. *)

val success_fraction : t -> Instance.t -> float
(** Fraction of nodes that output a color consistent with all their
    neighbors (the quantified-hiding measure the paper raises as future
    work). *)

val proper_on : t -> Instance.t -> Graph.t -> bool
