(** The Theorem 1.3 decoder: a strong and hiding one-round LCP for
    2-coloring on graphs admitting a shatter point, with certificates of
    size [O(min(Delta^2, n) + log n)].

    A node [v] is a shatter point when [G - N(v]] is disconnected. The
    prover reveals a 2-coloring of every component of [G - N(v]]
    separately (type-2 certificates), marks the shatter point (type 0)
    and its neighbors (type 1, carrying the per-component color vector
    seen from [N(v)]), and hides the colors of [N(v) u (v)] — which is
    where the 2-coloring stays unrecoverable, because a component's
    coloring can be flipped together with the bit in every type-1
    vector. Soundness rests on the Lemma 7.1 characterization. *)

open Lcp_graph
open Lcp_local

val shatter_point : Graph.t -> int option
(** Some node [v] with [G - N(v]] disconnected, if one exists. *)

val is_shatter_graph : Graph.t -> bool

val encode_type0 : id:int -> string
val encode_type1 : id:int -> colors:int list -> string
val encode_type2 : id:int -> comp:int -> color:int -> string

val decoder : Decoder.t
val prover : Instance.t -> Labeling.t option
val suite : Decoder.suite
