open Lcp_graph
open Lcp_local
open Json

let graph_to_json g =
  Obj
    [
      ("order", Int (Graph.order g));
      ( "edges",
        List (List.map (fun (u, v) -> List [ Int u; Int v ]) (Graph.edges g)) );
    ]

let graph_of_json j =
  let* order = Result.bind (member "order" j) to_int in
  let* edges_json = Result.bind (member "edges" j) to_list in
  let* edges =
    map_m
      (fun e ->
        let* pair = to_list e in
        match pair with
        | [ a; b ] ->
            let* u = to_int a in
            let* v = to_int b in
            Ok (u, v)
        | _ -> Error "edge must be a pair")
      edges_json
  in
  try Ok (Graph.of_edges order edges) with Invalid_argument m -> Error m

let instance_to_json (inst : Instance.t) =
  let g = inst.Instance.graph in
  Obj
    [
      ("graph", graph_to_json g);
      ( "ports",
        List
          (List.map
             (fun v ->
               List (Array.to_list (Array.map (fun w -> Int w) inst.Instance.ports.(v))))
             (Graph.nodes g)) );
      ( "ids",
        List (Array.to_list (Array.map (fun i -> Int i) inst.Instance.ids.Ident.ids)) );
      ("id_bound", Int inst.Instance.ids.Ident.bound);
      ( "labels",
        List (Array.to_list (Array.map (fun s -> String s) inst.Instance.labels)) );
    ]

let instance_of_json j =
  let* graph = Result.bind (member "graph" j) graph_of_json in
  let* ports_json = Result.bind (member "ports" j) to_list in
  let* ports =
    map_m
      (fun row ->
        let* cells = to_list row in
        let* ints = map_m to_int cells in
        Ok (Array.of_list ints))
      ports_json
  in
  let* ids_json = Result.bind (member "ids" j) to_list in
  let* ids = map_m to_int ids_json in
  let* bound = Result.bind (member "id_bound" j) to_int in
  let* labels_json = Result.bind (member "labels" j) to_list in
  let* labels = map_m to_str labels_json in
  try
    Ok
      (Instance.make graph
         ~ports:(Array.of_list ports)
         ~ids:(Ident.of_array ~bound (Array.of_list ids))
         ~labels:(Array.of_list labels))
  with Invalid_argument m -> Error m

let report_to_json (r : Report.t) =
  Obj
    [
      ("id", String r.Report.id);
      ("title", String r.Report.title);
      ("passed", Bool (Report.passed r));
      ( "rows",
        List
          (List.map
             (fun row ->
               Obj
                 [
                   ("label", String row.Report.label);
                   ("value", String row.Report.value);
                   ("expected", String row.Report.expected);
                   ("ok", Bool row.Report.ok);
                 ])
             r.Report.rows) );
    ]

let verdicts_to_json dec inst =
  let verdicts = Decoder.run dec inst in
  Obj
    [
      ("decoder", String dec.Decoder.name);
      ("radius", Int dec.Decoder.radius);
      ("instance", instance_to_json inst);
      ("verdicts", List (Array.to_list (Array.map (fun b -> Bool b) verdicts)));
      ("unanimous", Bool (Array.for_all (fun b -> b) verdicts));
    ]

let save path json =
  let oc = open_out path in
  output_string oc (to_string_pretty json);
  output_string oc "\n";
  close_out oc

let load path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s
  with Sys_error m -> Error m
