(** The Lemma 4.1 decoder: an anonymous, strong and hiding one-round
    LCP for 2-coloring on graphs with minimum degree 1, using
    constant-size certificates over [{bot, top, 0, 1}].

    The prover hides the 2-coloring at a chosen degree-1 node: that node
    gets [bot], its unique neighbor gets [top], everyone else gets their
    color. A node cannot tell whether it would be colored 0 or 1 from a
    [bot]/[top] neighborhood, and the hidden pair can never sit on a
    cycle, which gives strong soundness. *)

open Lcp_local

val bot : string
val top : string

val decoder : Decoder.t
val prover : Instance.t -> Labeling.t option
val alphabet : string list
(** The four certificate symbols plus the junk representative. *)

val suite : Decoder.suite
