(** The Theorem 1.1 decoder: anonymous, strong and hiding one-round LCP
    for 2-coloring on [H = H1 u H2] (graphs of minimum degree one, and
    even cycles), with constant-size certificates.

    Certificates are tagged unions ["1:<degree-one cert>"] or
    ["2:<even-cycle cert>"]; a node requires all certificates in its
    view to carry its own tag, so the accepting subgraph splits into a
    degree-one-certified part and a cycle-certified part with no edges
    in between, and strong soundness is inherited from both halves. *)

open Lcp_local

val decoder : Decoder.t
val prover : Instance.t -> Labeling.t option
val alphabet : string list
val suite : Decoder.suite
