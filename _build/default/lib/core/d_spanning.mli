(** Second baseline: bipartiteness certification with spanning-tree
    distance certificates.

    Certificate of [v]: [color : root_id : dist], where [root_id] is the
    identifier of a per-component root and [dist] the hop distance to
    it. Checks: proper 2-coloring against all neighbors, neighborhood
    agreement on the root, the root itself at distance 0 carrying its
    own id, every non-root having a strictly closer neighbor, and
    distance differences of exactly one across tree-consistent colors
    (colors alternate with parity of [dist]).

    The classic [O(log n)]-bit scheme: strongly sound, non-anonymous and
    — like {!D_trivial} — maximally non-hiding, since the 2-coloring is
    written into every certificate. *)

open Lcp_local

val decoder : Decoder.t
val prover : Instance.t -> Labeling.t option
val suite : Decoder.suite
