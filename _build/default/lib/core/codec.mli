(** JSON interchange for the library's core structures: persist graphs
    and labeled instances, exchange them with other tools, reload them
    into the CLI. Every encoder round-trips through its decoder (see the
    property tests). *)

open Lcp_graph
open Lcp_local

val graph_to_json : Graph.t -> Json.t
val graph_of_json : Json.t -> (Graph.t, string) result

val instance_to_json : Instance.t -> Json.t
val instance_of_json : Json.t -> (Instance.t, string) result

val report_to_json : Report.t -> Json.t

val verdicts_to_json : Decoder.t -> Instance.t -> Json.t
(** A decoder's per-node verdicts on an instance, with metadata — the
    shape consumed by external dashboards. *)

val save : string -> Json.t -> unit
val load : string -> (Json.t, string) result
