#!/usr/bin/env bash
# Smoke-test the lcp serve daemon end to end: start it, drive a
# scripted client batch (check / prove / lint / metrics), assert the
# warm-cache hit counter strictly increases across a repeated sweep
# while the sweep's verdict and deterministic work counters stay
# bit-identical, shut the daemon down cleanly, and leave the final
# metrics snapshot in serve-metrics.json for the CI artifact.
#
# Usage: bash scripts/serve_smoke.sh  (after `dune build`)
#   LCP=...  override the lcp binary (default ./_build/default/bin/main.exe)
#   OUT=...  metrics artifact path    (default serve-metrics.json)
set -euo pipefail

LCP="${LCP:-./_build/default/bin/main.exe}"
SOCK="${SOCK:-/tmp/lcp-smoke-$$.sock}"
OUT="${OUT:-serve-metrics.json}"

"$LCP" serve --socket "$SOCK" --capacity 8 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SOCK" sweep1.json sweep2.json' EXIT

for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK"; exit 1; }

"$LCP" client --socket "$SOCK" ping >/dev/null
echo "ping ok"

# a scripted batch on one connection, the way CI tooling would use it
"$LCP" client --socket "$SOCK" --stdin >/dev/null <<'EOF'
{"kind":"check","decoder":"degree-one","graph":"cycle:5"}
{"kind":"prove","decoder":"spanning","graph":"path:4"}
{"kind":"lint","decoders":["trivial2"],"max_n":3,"samples":2}
{"kind":"metrics"}
EOF
echo "scripted batch ok"

warm_hits() {
  "$LCP" client --socket "$SOCK" metrics |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["result"]["counters"]["serve/cache_warm_hits"])'
}

"$LCP" client --socket "$SOCK" sweep degree-one -n 5 >/dev/null
H1=$(warm_hits)
"$LCP" client --socket "$SOCK" sweep degree-one -n 5 >sweep1.json
H2=$(warm_hits)
"$LCP" client --socket "$SOCK" sweep degree-one -n 5 >sweep2.json
H3=$(warm_hits)
echo "serve/cache_warm_hits: $H1 -> $H2 -> $H3"
if [ "$H2" -le "$H1" ] || [ "$H3" -le "$H2" ]; then
  echo "FAIL: warm-cache hits did not strictly increase on the repeated sweep"
  exit 1
fi

# warm repeats must agree with each other bit-for-bit on the verdict
# and the deterministic work counters
python3 - <<'EOF'
import json
a = json.load(open("sweep1.json"))["result"]
b = json.load(open("sweep2.json"))["result"]
assert a["ok"] == b["ok"], (a["ok"], b["ok"])
assert a["counters"] == b["counters"], (a["counters"], b["counters"])
print("repeated sweep: verdict and work counters identical")
EOF

"$LCP" client --socket "$SOCK" metrics |
  python3 -c 'import json,sys; print(json.dumps(json.load(sys.stdin)["result"], indent=2))' >"$OUT"

"$LCP" client --socket "$SOCK" shutdown >/dev/null
wait "$SERVE_PID"
trap - EXIT
rm -f sweep1.json sweep2.json
if [ -S "$SOCK" ]; then
  echo "FAIL: socket file survived shutdown"
  exit 1
fi
echo "serve smoke ok; metrics snapshot in $OUT"
