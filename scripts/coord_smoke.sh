#!/usr/bin/env bash
# Smoke-test the sweep coordinator end to end: run a coordinated
# 4-worker n=7 sweep with one worker SIGKILLed mid-sweep (the
# --inject-kill fault hook), assert supervision actually restarted it,
# and require the merged report to be byte-identical (cmp) to the
# unsharded checkpointed run's. Leaves the coordinator metrics
# snapshot in coord-metrics.json for the CI artifact.
#
# Usage: bash scripts/coord_smoke.sh  (after `dune build`)
#   LCP=...  override the lcp binary (default ./_build/default/bin/main.exe)
#   N=...    sweep order              (default 7)
#   OUT=...  metrics artifact path    (default coord-metrics.json)
set -euo pipefail

LCP="${LCP:-./_build/default/bin/main.exe}"
N="${N:-7}"
OUT="${OUT:-coord-metrics.json}"
WORK="$(mktemp -d /tmp/lcp-coord-smoke-XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

# the coordinated run: 4 supervised workers, shard 0's first worker
# killed as soon as it has a checkpoint on disk
"$LCP" sweep degree-one -n "$N" --workers 4 --inject-kill 0 \
  --checkpoint-dir "$WORK/shards" \
  --merge-out "$WORK/coordinated.json" \
  --metrics-out "$OUT"
echo "coordinated run ok"

# supervision must have restarted the killed worker
python3 - "$OUT" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
counters = m["counters"]
launched = counters["coord/shards_launched"]
restarts = counters["coord/restarts"]
print(f"coord/shards_launched={launched} coord/restarts={restarts}")
assert restarts >= 1, "injected SIGKILL did not cause a restart"
assert launched >= 5, "expected the 4 shard launches plus the restart"
EOF

# the unsharded reference: one checkpointed run, rendered via --merge
"$LCP" sweep degree-one -n "$N" --checkpoint "$WORK/ref.ck.json" >/dev/null
"$LCP" sweep --merge "$WORK/ref.ck.json" --merge-out "$WORK/unsharded.json" \
  >/dev/null

# the gate: byte-identical despite the kill and restart
cmp "$WORK/coordinated.json" "$WORK/unsharded.json"
echo "coordinated report is byte-identical to the unsharded run"

# merging the incomplete state of a preempted shard must refuse with a
# usage error (exit 2) that names the shard and its heartbeat
"$LCP" sweep degree-one -n "$N" --checkpoint "$WORK/partial.json" \
  --max-chunks 1 >/dev/null
set +e
"$LCP" sweep --merge "$WORK/partial.json" >"$WORK/merge.out" 2>&1
CODE=$?
set -e
if [ "$CODE" -ne 2 ]; then
  echo "FAIL: merging an incomplete shard exited $CODE, want 2"
  cat "$WORK/merge.out"
  exit 1
fi
grep -q "incomplete" "$WORK/merge.out"
grep -q "last checkpoint" "$WORK/merge.out"
echo "incomplete-shard merge refused with exit 2 and a heartbeat"

echo "coord smoke ok; coordinator metrics in $OUT"
