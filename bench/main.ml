(* Benchmark harness: one bechamel micro-benchmark per experiment area
   (DESIGN.md Sec. 3's bench-target column) plus the printed series the
   paper's artifacts correspond to (neighborhood-graph sizes, check
   times, certificate sizes vs n).

   Run with: dune exec bench/main.exe            (full)
             dune exec bench/main.exe -- --fast  (shorter quota)

   The engine series run under one [Run_cfg.t]; the sweep series plus
   the run's aggregate metrics land in a schema-versioned JSON file
   (--metrics-out PATH, default BENCH_sweep.json). *)

open Lcp_graph
open Lcp_local
open Lcp

let rng = Random.State.make [| 424242 |]

(* One cfg for every engine-backed series below: recommended domain
   count, shared metrics registry. *)
let bench_cfg = Run_cfg.make ~seed:424242 ()

(* ------------------------------------------------------------------ *)
(* fixtures shared by the benchmarks                                    *)

let grid55 = Instance.make (Builders.grid 5 5)
let theta = Builders.theta 4 4 4

let certified suite g = Option.get (Decoder.certify suite (Instance.make g))
let d1_inst = certified D_degree_one.suite (Builders.path 8)
let cyc_inst = certified D_even_cycle.suite (Builders.cycle 8)
let union_inst = certified D_union.suite (Builders.path 8)
let shatter_inst = certified D_shatter.suite (Builders.path 8)
let wm_inst = certified D_watermelon.suite (Builders.watermelon [ 4; 4; 4 ])
let spanning_inst = certified D_spanning.suite (Builders.grid 3 3)
let trivial_inst = certified (D_trivial.suite ~k:2) (Builders.grid 3 3)

let d1_family =
  Neighborhood.exhaustive_family D_degree_one.suite
    ~graphs:
      (List.filter
         (fun g -> Coloring.is_bipartite g && Graph.min_degree g = 1)
         (Enumerate.connected_up_to_iso 4))
    ()

let extraction_family =
  let suite = D_trivial.suite ~k:2 in
  List.filter_map
    (fun g -> Decoder.certify suite (Instance.make g))
    [ Builders.path 4; Builders.path 5; Builders.cycle 4; Builders.cycle 6 ]

let extractor =
  Option.get
    (Extractor.of_verdict
       (Hiding.check ~k:2 (D_trivial.decoder ~k:2) extraction_family))

let rotation_instances =
  let g = Builders.path 5 in
  List.init 5 (fun k ->
      let ids = Array.init 5 (fun v -> 1 + ((k + v) mod 5)) in
      Instance.make g ~ids:(Ident.of_array ~bound:5 ids))

let accept_all =
  Decoder.make ~name:"accept-all" ~radius:1 ~anonymous:false (fun _ -> true)

(* ------------------------------------------------------------------ *)
(* bechamel tests (one per experiment id)                               *)

let stage = Bechamel.Staged.stage

let tests =
  let open Bechamel in
  [
    (* E1 *)
    Test.make ~name:"E1/forgetful-check-theta444"
      (stage (fun () -> Forgetful.is_r_forgetful theta ~r:1));
    Test.make ~name:"E1/escape-path-torus7x7"
      (let torus = Builders.torus 7 7 in
       stage (fun () -> Forgetful.escape_path torus ~r:1 ~v:0 ~u:1));
    (* E2 / E13 *)
    Test.make ~name:"E2/view-extract-r2-grid5x5"
      (stage (fun () -> View.extract grid55 ~r:2 12));
    Test.make ~name:"E2/view-key-anonymous"
      (let v = View.extract grid55 ~r:2 12 in
       stage (fun () -> View.key_anonymous v));
    Test.make ~name:"E13/sync-flood-r2-grid5x5"
      (stage (fun () -> Sync_runner.run grid55 ~rounds:2));
    (* E3-E8: decoder evaluation throughput (all nodes of one instance) *)
    Test.make ~name:"E3/decode-degree-one-P8"
      (stage (fun () -> Decoder.run D_degree_one.decoder d1_inst));
    Test.make ~name:"E4/decode-even-cycle-C8"
      (stage (fun () -> Decoder.run D_even_cycle.decoder cyc_inst));
    Test.make ~name:"E5/decode-union-P8"
      (stage (fun () -> Decoder.run D_union.decoder union_inst));
    Test.make ~name:"E6/decode-shatter-P8"
      (stage (fun () -> Decoder.run D_shatter.decoder shatter_inst));
    Test.make ~name:"E7/decode-watermelon-[4;4;4]"
      (stage (fun () -> Decoder.run D_watermelon.decoder wm_inst));
    Test.make ~name:"E8/decode-trivial-grid3x3"
      (stage (fun () -> Decoder.run (D_trivial.decoder ~k:2) trivial_inst));
    Test.make ~name:"E8/decode-spanning-grid3x3"
      (stage (fun () -> Decoder.run D_spanning.decoder spanning_inst));
    (* provers *)
    Test.make ~name:"E3/prove-degree-one-P8"
      (stage (fun () -> D_degree_one.prover d1_inst));
    Test.make ~name:"E6/prove-shatter-P8"
      (stage (fun () -> D_shatter.prover shatter_inst));
    Test.make ~name:"E7/prove-watermelon-[4;4;4]"
      (stage (fun () -> D_watermelon.prover wm_inst));
    (* E3: certificate search on a no-instance *)
    Test.make ~name:"E3/search-certificates-C5"
      (let c5 = Instance.make (Builders.cycle 5) in
       stage (fun () ->
           Prover.find_accepted D_degree_one.decoder
             ~alphabet:D_degree_one.alphabet c5));
    (* E8: neighborhood graph construction + hiding verdicts *)
    Test.make ~name:"E8/build-V(degree-one,4)"
      (stage (fun () -> Neighborhood.build D_degree_one.decoder d1_family));
    Test.make ~name:"E8/hiding-verdict-degree-one"
      (stage (fun () -> Hiding.check ~k:2 D_degree_one.decoder d1_family));
    Test.make ~name:"E8/extract-coloring-C6"
      (let c6 = List.nth extraction_family 3 in
       stage (fun () -> Extractor.extract extractor c6));
    (* E9: realizability pipeline *)
    Test.make ~name:"E9/realize-G_bad"
      (let nbhd = Neighborhood.build accept_all rotation_instances in
       let cyc = Option.get (Neighborhood.odd_cycle nbhd) in
       let h = Realizability.of_neighborhood nbhd cyc in
       let pool =
         List.concat_map
           (fun i -> Array.to_list (View.extract_all i ~r:1))
           rotation_instances
       in
       stage (fun () -> Realizability.lemma_5_1 accept_all ~pool h));
    (* E10: walk surgery *)
    Test.make ~name:"E10/edge-expansion-C12"
      (let wm = Builders.watermelon [ 6; 6 ] in
       stage (fun () -> Nb_walks.edge_expansion wm ~r:1 ~u:2 ~v:3));
    Test.make ~name:"E10/repair-backtracking-theta"
      (let tour = Walks.splice [ 0; 2; 3; 4; 1; 7; 6; 5 ] 1 [ 2; 0 ] in
       stage (fun () -> Nb_walks.repair_backtracking theta tour));
    (* E11: Ramsey *)
    Test.make ~name:"E11/arrows-6-(3,3)"
      (stage (fun () -> Ramsey.arrows ~n:6 ~s:3 ~t:3));
    (* E12 is a size series (printed below); adversaries: *)
    Test.make ~name:"E3/strong-random-500-trials"
      (let inst = Instance.make (Builders.pendant (Builders.cycle 3) 0) in
       stage (fun () ->
           Checker.strong_soundness_random D_degree_one.suite ~k:2 ~trials:500 rng
             [ inst ]));
    (* E14: SLOCAL *)
    Test.make ~name:"E14/slocal-greedy-petersen"
      (let inst = Instance.make (Builders.petersen ()) in
       stage (fun () -> Slocal.execute_canonical (Slocal.greedy_coloring ~radius:1) inst));
    (* E15: quantified hiding (exact search over extractors) *)
    Test.make ~name:"E15/quantified-best-extractor-C4"
      (let fam =
         Neighborhood.exhaustive_family D_even_cycle.suite
           ~graphs:[ Builders.cycle 4 ] ~ports:`All ()
       in
       let nbhd = Neighborhood.build D_even_cycle.decoder fam in
       stage (fun () -> Quantified.best_extractor ~k:2 nbhd fam));
    (* E16: the k = 3 decoder *)
    Test.make ~name:"E16/decode-hidden-leaf3-P8"
      (let inst =
         Option.get
           (Decoder.certify (D_hidden_leaf.suite ~k:3)
              (Instance.make (Builders.path 8)))
       in
       stage (fun () -> Decoder.run (D_hidden_leaf.decoder ~k:3) inst));
    (* E20: the 1-bit 2-round decoder *)
    Test.make ~name:"E20/decode-edge-bit-C8"
      (let inst =
         Option.get (Decoder.certify D_edge_bit.suite (Instance.make (Builders.cycle 8)))
       in
       stage (fun () -> Decoder.run D_edge_bit.decoder inst));
    (* E18: resilient wrapper *)
    Test.make ~name:"E18/decode-resilient-grid3x3"
      (let res = Resilient.wrap (D_trivial.suite ~k:2) in
       let inst =
         Option.get (Decoder.certify res (Instance.make (Builders.grid 3 3)))
       in
       stage (fun () -> Decoder.run res.Decoder.dec inst));
    (* E13: async runner *)
    Test.make ~name:"E13/async-quiescence-C8"
      (let inst = Instance.make (Builders.cycle 8) in
       stage (fun () -> Async_runner.run_to_quiescence inst));
    (* serialization *)
    Test.make ~name:"codec/instance-json-roundtrip"
      (let inst =
         Option.get
           (Decoder.certify D_shatter.suite (Instance.make (Builders.path 8)))
       in
       stage (fun () ->
           Codec.instance_of_json (Codec.instance_to_json inst)));
    (* substrate *)
    Test.make ~name:"substrate/two-color-grid8x8"
      (let g = Builders.grid 8 8 in
       stage (fun () -> Coloring.two_color g));
    Test.make ~name:"substrate/odd-cycle-petersen"
      (let g = Builders.petersen () in
       stage (fun () -> Coloring.odd_cycle g));
    Test.make ~name:"substrate/diameter-grid8x8"
      (let g = Builders.grid 8 8 in
       stage (fun () -> Metrics.diameter g));
  ]

(* ------------------------------------------------------------------ *)
(* bechamel driver                                                      *)

let run_benchmarks ~fast () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let quota = Time.second (if fast then 0.05 else 0.5) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 1000) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  Printf.printf "%-42s %14s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 58 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          Printf.printf "%-42s %14.1f\n%!" name ns)
        stats)
    tests

(* ------------------------------------------------------------------ *)
(* printed series (the shape results the paper's artifacts map to)      *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Every A/B series proves its two paths agree before quoting a
   speedup. Divergences are recorded here instead of tripping an
   [assert] mid-run: the remaining series still execute and report,
   and the driver exits non-zero at the end — a silent mismatch can
   never hide inside a green bench run, and a CI log shows every
   divergent row at once rather than the first. *)
let divergences : string list ref = ref []

let note_identical ~where identical =
  if not identical then divergences := where :: !divergences;
  identical

let series_neighborhood () =
  Printf.printf "\n== series: |V(D,n)| for the even-cycle decoder on C_n (E4/E8)\n";
  Printf.printf "%6s %10s %10s %12s %10s\n" "n" "instances" "|V|" "edges" "secs";
  List.iter
    (fun n ->
      let fam, secs =
        time (fun () ->
            Neighborhood.exhaustive_family D_even_cycle.suite
              ~graphs:[ Builders.cycle n ] ~ports:`All ())
      in
      let nbhd, secs2 =
        time (fun () -> Neighborhood.build D_even_cycle.decoder fam)
      in
      Printf.printf "%6d %10d %10d %12d %10.3f\n" n (List.length fam)
        (Neighborhood.order nbhd) (Neighborhood.size nbhd) (secs +. secs2))
    [ 4; 6; 8 ]

let series_cert_sizes () =
  Printf.printf "\n== series: honest certificate sizes in bits (E12)\n";
  Printf.printf "%6s %10s %10s %10s %10s %10s\n" "n" "trivial" "deg-one"
    "spanning" "shatter" "melon";
  List.iter
    (fun n ->
      let bits suite g =
        match Decoder.certify suite (Instance.make g) with
        | Some i -> string_of_int (Labeling.max_bits i.Instance.labels)
        | None -> "n/a" (* outside the promise class at this size *)
      in
      Printf.printf "%6d %10s %10s %10s %10s %10s\n" n
        (bits (D_trivial.suite ~k:2) (Builders.path n))
        (bits D_degree_one.suite (Builders.path n))
        (bits D_spanning.suite (Builders.path n))
        (bits D_shatter.suite (Builders.path n))
        (bits D_watermelon.suite (Builders.watermelon [ n; n ])))
    [ 4; 8; 16; 32 ]

let series_strong_checks () =
  Printf.printf
    "\n== series: exhaustive strong-soundness cost, degree-one decoder (E3)\n";
  Printf.printf "%6s %14s %10s\n" "n" "labelings" "secs";
  List.iter
    (fun n ->
      let g = Builders.path n in
      let inst = Instance.make g in
      let labelings = Labeling.count ~alphabet:D_degree_one.alphabet g in
      let verdict, secs =
        time (fun () ->
            Checker.strong_soundness_exhaustive D_degree_one.suite ~k:2 [ inst ])
      in
      assert (Checker.is_pass verdict);
      Printf.printf "%6d %14d %10.3f\n" n labelings secs)
    [ 3; 4; 5; 6 ]

let series_scaling () =
  Printf.printf "\n== series: decoder throughput on large rings (substrate scaling)\n";
  Printf.printf "%8s %12s %12s %10s\n" "n" "prove(ms)" "decode(ms)" "accept";
  List.iter
    (fun n ->
      let t0 = Unix.gettimeofday () in
      let inst =
        Option.get
          (Decoder.certify D_even_cycle.suite (Instance.make (Builders.cycle n)))
      in
      let t1 = Unix.gettimeofday () in
      let ok = Decoder.accepts_all D_even_cycle.decoder inst in
      let t2 = Unix.gettimeofday () in
      Printf.printf "%8d %12.1f %12.1f %10b\n" n
        ((t1 -. t0) *. 1000.0)
        ((t2 -. t1) *. 1000.0)
        ok)
    [ 100; 1000; 10000; 50000 ]

let series_engine_dedup ~fast () =
  Printf.printf
    "\n== series: iso-class enumeration, engine canonical dedup vs pairwise \
     Enumerate (tentpole)\n";
  Printf.printf "%6s %10s %12s %14s %14s\n" "n" "classes" "engine(s)"
    "enumerate(s)" "speedup";
  List.iter
    (fun n ->
      Lcp_engine.Sweep.clear_cache ();
      let engine_classes, engine_s =
        time (fun () ->
            Lcp_engine.Sweep.iso_classes ~cfg:(Run_cfg.sequential bench_cfg) n)
      in
      (* the pairwise path is O(classes * labeled graphs) brute-force
         isomorphism; past n=6 it stops being measurable in a bench *)
      if n <= 6 then begin
        let old_classes, old_s =
          time (fun () -> Enumerate.connected_up_to_iso n)
        in
        assert (List.length engine_classes = List.length old_classes);
        Printf.printf "%6d %10d %12.3f %14.3f %13.1fx\n" n
          (List.length engine_classes) engine_s old_s
          (old_s /. Float.max engine_s 1e-9)
      end
      else
        Printf.printf "%6d %10d %12.3f %14s %14s\n" n
          (List.length engine_classes) engine_s "(skipped)" "-")
    (if fast then [ 4; 5; 6 ] else [ 4; 5; 6; 7 ]);
  let again, cached_s =
    time (fun () ->
        Lcp_engine.Sweep.iso_classes ~cfg:(Run_cfg.sequential bench_cfg) 6)
  in
  let hits, misses = Lcp_engine.Sweep.cache_stats () in
  Printf.printf
    "   cross-sweep cache: re-listing n=6 takes %.6fs (%d classes; %d hits / \
     %d misses)\n"
    cached_s (List.length again) hits misses

(* The tentpole series: orderly generation vs the exhaustive mask
   scan, both sequential so the row is a strategy comparison, not a
   parallelism one. Returns the rows for BENCH_enumerate.json. *)
let series_enumerate ~fast () =
  Printf.printf
    "\n== series: class enumeration, orderly generation vs mask scan \
     (tentpole)\n";
  Printf.printf "%6s %10s %12s %14s %10s %10s\n" "n" "classes" "orderly(s)"
    "mask-scan(s)" "speedup" "identical";
  let rows =
    List.map
      (fun n ->
        let listing strategy =
          Lcp_engine.Sweep.clear_cache ();
          time (fun () ->
              Lcp_engine.Sweep.iso_classes
                ~cfg:(Run_cfg.sequential bench_cfg)
                ~strategy n)
        in
        let o, o_s = listing Lcp_engine.Sweep.Orderly in
        let m, m_s = listing Lcp_engine.Sweep.Mask_scan in
        let identical =
          note_identical
            ~where:(Printf.sprintf "enumerate n=%d" n)
            (List.length o = List.length m && List.for_all2 Graph.equal o m)
        in
        Printf.printf "%6d %10d %12.3f %14.3f %9.1fx %10b\n" n (List.length o)
          o_s m_s
          (m_s /. Float.max o_s 1e-9)
          identical;
        (n, List.length o, o_s, m_s, identical))
      (if fast then [ 4; 5; 6 ] else [ 5; 6; 7 ])
  in
  (* the new frontier, reachable by orderly generation alone: the
     n = 8 mask space (2^28) is ~128x the n = 7 one the scan already
     needs seconds for, so no mask-scan column *)
  if not fast then begin
    Lcp_engine.Sweep.clear_cache ();
    let o, o_s =
      time (fun () -> Lcp_engine.Sweep.iso_classes ~cfg:bench_cfg 8)
    in
    Printf.printf "%6d %10d %12.3f %14s %10s %10s\n" 8 (List.length o) o_s
      "(mask scan infeasible)" "-" "-"
  end;
  Lcp_engine.Sweep.clear_cache ();
  rows

(* Returns the printed rows so the driver can serialize them into
   BENCH_sweep.json alongside the aggregate metrics. *)
let series_engine_sweep ~fast () =
  Printf.printf
    "\n== series: engine soundness sweep, degree-one decoder, jobs=1 vs \
     jobs=%d (E3)\n"
    bench_cfg.Run_cfg.jobs;
  Printf.printf "%6s %8s %12s %12s %10s %10s\n" "n" "kept" "seq(s)" "par(s)"
    "speedup" "identical";
  List.map
    (fun n ->
      let sweep cfg =
        Lcp_engine.Sweep.clear_cache ();
        Checker.soundness_sweep ~cfg D_degree_one.suite ~n
      in
      let seq = sweep (Run_cfg.sequential bench_cfg) in
      let par = sweep bench_cfg in
      let identical =
        note_identical
          ~where:(Printf.sprintf "sweep n=%d" n)
          (Checker.verdict_of_sweep seq = Checker.verdict_of_sweep par
          && seq.Lcp_engine.Sweep.counters = par.Lcp_engine.Sweep.counters)
      in
      Printf.printf "%6d %8d %12.3f %12.3f %9.2fx %10b\n" n
        seq.Lcp_engine.Sweep.counters.Lcp_engine.Sweep.kept
        seq.Lcp_engine.Sweep.wall_s par.Lcp_engine.Sweep.wall_s
        (seq.Lcp_engine.Sweep.wall_s /. Float.max par.Lcp_engine.Sweep.wall_s 1e-9)
        identical;
      let kept = seq.Lcp_engine.Sweep.counters.Lcp_engine.Sweep.kept in
      (n, kept, seq.Lcp_engine.Sweep.wall_s, par.Lcp_engine.Sweep.wall_s,
       identical))
    (if fast then [ 4; 5 ] else [ 4; 5; 6 ])

(* The PR-5 tentpole series: certificate search with per-node
   acceptance tables (the default) vs the direct view-extraction
   oracle. Both runs are sequential over the same connected
   non-bipartite classes and must agree on every (witness, tally)
   pair; the row is a memoization comparison, not a parallelism one.
   Returns the rows for BENCH_search.json. *)
let series_search ~fast () =
  Printf.printf
    "\n== series: soundness certificate search, acceptance tables vs direct \
     decoding (tentpole)\n";
  Printf.printf "%-12s %4s %8s %12s %12s %10s %10s\n" "decoder" "n" "classes"
    "memo(s)" "direct(s)" "speedup" "identical";
  let memo_cfg = Run_cfg.sequential bench_cfg in
  let direct_cfg = Run_cfg.with_eval_cache memo_cfg false in
  let suites =
    [
      ("degree-one", D_degree_one.suite);
      ("even-cycle", D_even_cycle.suite);
      ("trivial2", D_trivial.suite ~k:2);
      ("edge-bit", D_edge_bit.suite);
    ]
  in
  let sizes = if fast then [ 4; 5 ] else [ 4; 5; 6 ] in
  List.concat_map
    (fun (name, suite) ->
      List.map
        (fun n ->
          Lcp_engine.Sweep.clear_cache ();
          let classes =
            List.filter
              (fun g -> not (Coloring.is_bipartite g))
              (Lcp_engine.Sweep.iso_classes ~cfg:memo_cfg n)
          in
          let search cfg g =
            let inst = Instance.make g in
            let alphabet = suite.Decoder.adversary_alphabet inst in
            Prover.search_accepted ~cfg suite.Decoder.dec ~alphabet inst
          in
          let run cfg = time (fun () -> List.map (search cfg) classes) in
          let memo_res, memo_s = run memo_cfg in
          let direct_res, direct_s = run direct_cfg in
          let identical =
            note_identical
              ~where:(Printf.sprintf "search %s n=%d" name n)
              (memo_res = direct_res)
          in
          Printf.printf "%-12s %4d %8d %12.3f %12.3f %9.1fx %10b\n" name n
            (List.length classes) memo_s direct_s
            (direct_s /. Float.max memo_s 1e-9)
            identical;
          (name, n, List.length classes, memo_s, direct_s, identical))
        sizes)
    suites

(* The PR-9 tentpole series: certificate search quotiented by Aut(G)
   node-orbits (the default) vs the direct full-space search. Both
   paths run sequentially with the same acceptance-table setting and
   must return bit-identical witnesses on every class (tallies
   legitimately shrink under pruning, so only witnesses are compared).
   Each row sums per-class searches over every connected non-bipartite
   class at that order and quotes the aggregate wall ratio, exactly
   like the acceptance-table series above; the cross-row geometric
   mean is the headline BENCH_orbit.json records. The decoders are the
   eligible ones with real per-class search volume — the trivial
   family's whole space is |Σ|^n = 64–128 evaluations, over in well
   under a millisecond, where the quotient has nothing to amortize
   against (~1.0x; its correctness is still pinned classwise by
   test/test_orbit.ml). Each class is searched [reps] times per path
   so per-class walls clear timer resolution. *)
let series_orbit ~fast () =
  Printf.printf
    "\n== series: certificate search, orbit pruning vs direct (tentpole)\n";
  Printf.printf "%-12s %4s %8s %12s %12s %10s %10s\n" "decoder" "n" "classes"
    "orbit(s)" "direct(s)" "speedup" "identical";
  let on_cfg = Run_cfg.sequential bench_cfg in
  let off_cfg = Run_cfg.with_orbit_prune on_cfg false in
  let suites =
    [
      ("degree-one", D_degree_one.suite);
      ("hidden-leaf2", D_hidden_leaf.suite ~k:2);
      ("hidden-leaf3", D_hidden_leaf.suite ~k:3);
    ]
  in
  let sizes = if fast then [ 5; 6 ] else [ 6; 7 ] in
  let rows =
    List.concat_map
      (fun (name, suite) ->
        List.map
          (fun n ->
            Lcp_engine.Sweep.clear_cache ();
            let classes =
              List.filter
                (fun g -> not (Coloring.is_bipartite g))
                (Lcp_engine.Sweep.iso_classes ~cfg:on_cfg n)
            in
            let reps = if n >= 7 then 3 else 20 in
            let search cfg g =
              let inst = Instance.make g in
              let alphabet = suite.Decoder.adversary_alphabet inst in
              let t0 = Unix.gettimeofday () in
              let last = ref None in
              for _ = 1 to reps do
                let witness, _ =
                  Prover.search_accepted ~cfg suite.Decoder.dec ~alphabet inst
                in
                last := Some witness
              done;
              (Option.get !last, Unix.gettimeofday () -. t0)
            in
            let per_class =
              List.map (fun g -> (search on_cfg g, search off_cfg g)) classes
            in
            let identical =
              note_identical
                ~where:(Printf.sprintf "orbit %s n=%d" name n)
                (List.for_all
                   (fun ((w_on, _), (w_off, _)) -> w_on = w_off)
                   per_class)
            in
            let orbit_s =
              List.fold_left (fun a ((_, s), _) -> a +. s) 0. per_class
            in
            let direct_s =
              List.fold_left (fun a (_, (_, s)) -> a +. s) 0. per_class
            in
            let speedup = direct_s /. Float.max orbit_s 1e-9 in
            Printf.printf "%-12s %4d %8d %12.3f %12.3f %9.2fx %10b\n" name n
              (List.length classes) orbit_s direct_s speedup identical;
            (name, n, List.length classes, orbit_s, direct_s, speedup, identical))
          sizes)
      suites
  in
  let geomean =
    exp
      (List.fold_left (fun a (_, _, _, _, _, s, _) -> a +. log s) 0. rows
      /. float_of_int (max 1 (List.length rows)))
  in
  Printf.printf "   geometric mean across rows: %.2fx\n" geomean;
  (rows, geomean)

(* The sharded-sweep wall-clock figure: the full n=8 degree-one sweep
   vs its two halves under [shard], whose kept counts must partition
   the full run's and whose verdicts must agree. Skipped under --fast
   (the full row alone is ~20s). *)
let series_orbit_shards ~fast () =
  if fast then None
  else begin
    Printf.printf
      "\n== series: sharded n=8 soundness sweep, degree-one (tentpole)\n";
    Printf.printf "%10s %8s %12s\n" "slice" "kept" "wall(s)";
    let n = 8 in
    let sweep ?shard () =
      Lcp_engine.Sweep.clear_cache ();
      Checker.soundness_sweep ~cfg:bench_cfg ?shard D_degree_one.suite ~n
    in
    let full = sweep () in
    let s0 = sweep ~shard:(0, 2) () in
    let s1 = sweep ~shard:(1, 2) () in
    let kept s = s.Lcp_engine.Sweep.counters.Lcp_engine.Sweep.kept in
    let wall s = s.Lcp_engine.Sweep.wall_s in
    List.iter
      (fun (slice, s) ->
        Printf.printf "%10s %8d %12.3f\n" slice (kept s) (wall s))
      [ ("full", full); ("shard 0/2", s0); ("shard 1/2", s1) ];
    let identical =
      note_identical ~where:"orbit shards n=8"
        (kept s0 + kept s1 = kept full
        && Checker.is_pass (Checker.verdict_of_sweep full)
        && Checker.is_pass (Checker.verdict_of_sweep s0)
        && Checker.is_pass (Checker.verdict_of_sweep s1))
    in
    Some (n, kept full, wall full, kept s0, wall s0, kept s1, wall s1, identical)
  end

(* ------------------------------------------------------------------ *)
(* BENCH_sweep.json: the sweep series plus the run's metrics            *)

let bench_schema_version = 1

let write_sweep_json path rows =
  let ns s = int_of_float (s *. 1e9) in
  let row (n, kept, seq_s, par_s, identical) =
    Json.Obj
      [
        ("n", Json.Int n);
        ("kept", Json.Int kept);
        ("seq_wall_ns", Json.Int (ns seq_s));
        ("par_wall_ns", Json.Int (ns par_s));
        ("identical", Json.Bool identical);
      ]
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int bench_schema_version);
        ("jobs", Json.Int bench_cfg.Run_cfg.jobs);
        ("sweep", Json.List (List.map row rows));
        ("metrics", Lcp_obs.Metrics.to_json bench_cfg.Run_cfg.metrics);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty doc);
      output_string oc "\n");
  Printf.printf "sweep series + metrics written to %s\n" path

let write_enumerate_json path rows =
  let ns s = int_of_float (s *. 1e9) in
  let row (n, classes, orderly_s, mask_s, identical) =
    Json.Obj
      [
        ("n", Json.Int n);
        ("classes", Json.Int classes);
        ("orderly_wall_ns", Json.Int (ns orderly_s));
        ("mask_scan_wall_ns", Json.Int (ns mask_s));
        ("identical", Json.Bool identical);
      ]
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int bench_schema_version);
        ("jobs", Json.Int 1);
        ("enumerate", Json.List (List.map row rows));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty doc);
      output_string oc "\n");
  Printf.printf "enumerate series written to %s\n" path

let write_search_json path rows =
  let ns s = int_of_float (s *. 1e9) in
  let row (decoder, n, classes, memo_s, direct_s, identical) =
    Json.Obj
      [
        ("decoder", Json.String decoder);
        ("n", Json.Int n);
        ("classes", Json.Int classes);
        ("memoized_wall_ns", Json.Int (ns memo_s));
        ("direct_wall_ns", Json.Int (ns direct_s));
        ("identical", Json.Bool identical);
      ]
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int bench_schema_version);
        ("jobs", Json.Int 1);
        ("search", Json.List (List.map row rows));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty doc);
      output_string oc "\n");
  Printf.printf "search series written to %s\n" path

let write_orbit_json path ((rows, geomean), shard_row) =
  let ns s = int_of_float (s *. 1e9) in
  let row (decoder, n, classes, orbit_s, direct_s, speedup, identical) =
    Json.Obj
      [
        ("decoder", Json.String decoder);
        ("n", Json.Int n);
        ("classes", Json.Int classes);
        ("orbit_wall_ns", Json.Int (ns orbit_s));
        ("direct_wall_ns", Json.Int (ns direct_s));
        ("speedup_x100", Json.Int (int_of_float (speedup *. 100.)));
        ("identical", Json.Bool identical);
      ]
  in
  let shard_json =
    match shard_row with
    | None -> Json.Null
    | Some (n, kept, full_s, kept0, s0_s, kept1, s1_s, identical) ->
        Json.Obj
          [
            ("n", Json.Int n);
            ("kept", Json.Int kept);
            ("full_wall_ns", Json.Int (ns full_s));
            ("shard0_kept", Json.Int kept0);
            ("shard0_wall_ns", Json.Int (ns s0_s));
            ("shard1_kept", Json.Int kept1);
            ("shard1_wall_ns", Json.Int (ns s1_s));
            ("identical", Json.Bool identical);
          ]
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int bench_schema_version);
        ("jobs", Json.Int bench_cfg.Run_cfg.jobs);
        ("geomean_speedup_x100", Json.Int (int_of_float (geomean *. 100.)));
        ("orbit", Json.List (List.map row rows));
        ("shards", shard_json);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty doc);
      output_string oc "\n");
  Printf.printf "orbit series written to %s\n" path

(* The PR-6 tentpole series: request latency against a live lcp serve
   daemon on a temp socket, cold (first request, caches empty) vs warm
   (repeats against the daemon's persistent iso-class and acceptance-
   table caches). The protocol overhead itself is the ping row.
   Returns rows for BENCH_serve.json. *)
let series_serve ~fast () =
  Printf.printf "\n== series: lcp serve request latency, cold vs warm (tentpole)\n";
  Printf.printf "%-22s %6s %10s %10s %10s %10s\n" "request" "count" "cold(ms)"
    "p50(ms)" "p95(ms)" "req/s";
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp-bench-%d.sock" (Unix.getpid ()))
  in
  Lcp_engine.Sweep.clear_cache ();
  let server =
    Lcp_serve.Server.start
      (Lcp_serve.Server.default_config ~socket_path)
  in
  let percentile sorted p =
    let len = Array.length sorted in
    sorted.(min (len - 1) (int_of_float (p *. float_of_int (len - 1) +. 0.5)))
  in
  let rows =
    Fun.protect
      ~finally:(fun () ->
        Lcp_serve.Server.stop server;
        Lcp_serve.Server.wait server)
      (fun () ->
        Lcp_serve.Client.with_connection socket_path (fun c ->
            let one req =
              let t0 = Unix.gettimeofday () in
              (match Lcp_serve.Client.request c req with
              | Ok { Lcp_serve.Protocol.status = Lcp_serve.Protocol.Done; _ } ->
                  ()
              | Ok r ->
                  failwith
                    ("bench request failed: "
                    ^ Lcp_serve.Protocol.status_name r.Lcp_serve.Protocol.status)
              | Error e -> failwith e);
              Unix.gettimeofday () -. t0
            in
            let job kind =
              { Lcp_serve.Protocol.kind; opts = Lcp_serve.Protocol.default_opts }
            in
            let series (name, req, count) =
              let cold = one req in
              let warm = Array.init count (fun _ -> one req) in
              let total = cold +. Array.fold_left ( +. ) 0. warm in
              Array.sort compare warm;
              let p50 = percentile warm 0.50 and p95 = percentile warm 0.95 in
              let rps = float_of_int (count + 1) /. total in
              Printf.printf "%-22s %6d %10.3f %10.3f %10.3f %10.0f\n" name
                (count + 1) (cold *. 1e3) (p50 *. 1e3) (p95 *. 1e3) rps;
              (name, count + 1, cold, p50, p95, rps)
            in
            List.map series
              [
                ("ping", job Lcp_serve.Protocol.Ping, if fast then 50 else 500);
                ( "check-degree-one-C5",
                  job
                    (Lcp_serve.Protocol.Check
                       { decoder = "degree-one"; graph = "cycle:5" }),
                  if fast then 10 else 50 );
                ( "sweep-degree-one-n5",
                  job
                    (Lcp_serve.Protocol.Sweep
                       {
                         decoder = "degree-one";
                         n = 5;
                         strategy = "orderly";
                         early_exit = false;
                         shards = 1;
                       }),
                  if fast then 5 else 25 );
              ]))
  in
  Lcp_engine.Sweep.clear_cache ();
  rows

let write_serve_json path rows =
  let ns s = int_of_float (s *. 1e9) in
  let row (name, requests, cold_s, p50_s, p95_s, rps) =
    Json.Obj
      [
        ("request", Json.String name);
        ("requests", Json.Int requests);
        ("cold_wall_ns", Json.Int (ns cold_s));
        ("warm_p50_ns", Json.Int (ns p50_s));
        ("warm_p95_ns", Json.Int (ns p95_s));
        ("requests_per_sec", Json.Int (int_of_float rps));
      ]
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int bench_schema_version);
        ("serve", Json.List (List.map row rows));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty doc);
      output_string oc "\n");
  Printf.printf "serve series written to %s\n" path

(* The PR-10 tentpole series: the coordinator's scaling story at one
   fixed partition (degree-one, shards=4, n=8; n=6 under --fast).
   Three supervised runs at workers = 1 / 2 / 4 give the scaling
   curve; a raw baseline forks the same four shard subprocesses with
   no supervision (the manual shell recipe the coordinator replaces)
   to price its overhead; and a recovery row SIGKILLs one worker
   mid-sweep to price restart-from-checkpoint. Every run's merged
   report must be byte-identical. Returns the BENCH_coord.json
   document, or None when the sibling lcp binary is not built. *)
let series_coord ~fast () =
  let bin =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/main.exe"
  in
  if not (Sys.file_exists bin) then begin
    Printf.printf "\n== series: coordinated sweeps skipped (%s not built)\n"
      bin;
    None
  end
  else begin
    let n = if fast then 6 else 8 in
    let shards = 4 in
    Printf.printf
      "\n== series: coordinated n=%d soundness sweep, degree-one, shards=%d \
       (tentpole)\n"
      n shards;
    Printf.printf "%-28s %12s %10s %10s\n" "run" "wall(s)" "launched"
      "restarts";
    let fresh_dir =
      let c = ref 0 in
      fun () ->
        incr c;
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "lcp-bench-coord-%d-%d" (Unix.getpid ()) !c)
        in
        Unix.mkdir d 0o700;
        d
    in
    let rm_rf d =
      if Sys.file_exists d then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
          (Sys.readdir d);
        try Unix.rmdir d with Unix.Unix_error _ -> ()
      end
    in
    let coord ?inject_kill ~workers () =
      let dir = fresh_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let config =
        {
          (Lcp_serve.Coordinator.default_config ~decoder:"degree-one" ~n
             ~shards ~dir)
          with
          Lcp_serve.Coordinator.workers;
          executor = Lcp_serve.Coordinator.Subprocess { bin };
          poll_s = 0.01;
          backoff_base_s = 0.01;
          inject_kill;
        }
      in
      match Lcp_serve.Coordinator.run config with
      | Error msg -> failwith ("bench coord: " ^ msg)
      | Ok o -> o
    in
    (* the manual recipe: all four shard shells at once, no supervisor *)
    let raw () =
      let dir = fresh_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let shard_path i =
        Filename.concat dir (Printf.sprintf "shard-%d.json" i)
      in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
      let t0 = Unix.gettimeofday () in
      let pids =
        List.init shards (fun i ->
            Unix.create_process bin
              [|
                bin; "sweep"; "degree-one";
                "-n"; string_of_int n;
                "-j"; "1";
                "--shards"; string_of_int shards;
                "--shard"; string_of_int i;
                "--checkpoint"; shard_path i;
              |]
              devnull devnull devnull)
      in
      List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
      let wall = Unix.gettimeofday () -. t0 in
      Unix.close devnull;
      let cks =
        List.init shards (fun i ->
            match Lcp_engine.Checkpoint.load (shard_path i) with
            | Ok ck -> ck
            | Error e -> failwith ("bench coord raw: " ^ e))
      in
      match Lcp_engine.Checkpoint.merge cks with
      | Error e -> failwith ("bench coord raw merge: " ^ e)
      | Ok merged ->
          ( wall,
            Json.to_string_pretty (Lcp_engine.Checkpoint.report_json merged) )
    in
    let runs = List.map (fun w -> (w, coord ~workers:w ())) [ 1; 2; 4 ] in
    List.iter
      (fun (w, o) ->
        Printf.printf "%-28s %12.3f %10d %10d\n"
          (Printf.sprintf "coordinator workers=%d" w)
          o.Lcp_serve.Coordinator.wall_s o.Lcp_serve.Coordinator.launched
          o.Lcp_serve.Coordinator.restarts)
      runs;
    let raw_wall, raw_report = raw () in
    Printf.printf "%-28s %12.3f %10d %10s\n" "raw shard shells" raw_wall
      shards "-";
    let recovery = coord ~inject_kill:0 ~workers:4 () in
    Printf.printf "%-28s %12.3f %10d %10d\n" "recovery (SIGKILL shard 0)"
      recovery.Lcp_serve.Coordinator.wall_s
      recovery.Lcp_serve.Coordinator.launched
      recovery.Lcp_serve.Coordinator.restarts;
    let report o = Json.to_string_pretty o.Lcp_serve.Coordinator.report in
    let identical =
      note_identical ~where:"coord merged reports"
        (List.for_all
           (fun r -> String.equal r raw_report)
           (report recovery :: List.map (fun (_, o) -> report o) runs))
    in
    Some
      ( n,
        shards,
        List.map (fun (w, o) -> (w, o.Lcp_serve.Coordinator.wall_s)) runs,
        raw_wall,
        recovery.Lcp_serve.Coordinator.wall_s,
        recovery.Lcp_serve.Coordinator.restarts,
        identical )
  end

let write_coord_json path doc =
  match doc with
  | None -> Printf.printf "coord series skipped; %s not written\n" path
  | Some
      (n, shards, worker_rows, raw_wall, recovery_wall, recovery_restarts,
       identical) ->
      let ns s = int_of_float (s *. 1e9) in
      let full_width_wall =
        match List.assoc_opt shards worker_rows with
        | Some w -> w
        | None -> raw_wall
      in
      let doc =
        Json.Obj
          [
            ("schema_version", Json.Int bench_schema_version);
            ("decoder", Json.String "degree-one");
            ("n", Json.Int n);
            ("shards", Json.Int shards);
            ( "workers",
              Json.List
                (List.map
                   (fun (w, wall) ->
                     Json.Obj
                       [
                         ("workers", Json.Int w);
                         ("wall_ns", Json.Int (ns wall));
                       ])
                   worker_rows) );
            ("raw_shards_wall_ns", Json.Int (ns raw_wall));
            ( "coordinator_overhead_ns",
              Json.Int (ns (full_width_wall -. raw_wall)) );
            ( "recovery",
              Json.Obj
                [
                  ("wall_ns", Json.Int (ns recovery_wall));
                  ("restarts", Json.Int recovery_restarts);
                ] );
            ("identical", Json.Bool identical);
          ]
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Json.to_string_pretty doc);
          output_string oc "\n");
      Printf.printf "coord series written to %s\n" path

let series_sync () =
  Printf.printf
    "\n== series: flooding vs View.extract, random connected graphs (E13)\n";
  Printf.printf "%6s %8s %10s %10s\n" "n" "rounds" "messages" "match";
  List.iter
    (fun n ->
      let g = Builders.random_connected rng n 0.2 in
      let inst = Instance.random rng g in
      List.iter
        (fun r ->
          Printf.printf "%6d %8d %10d %10b\n" n r
            (Sync_runner.messages_sent g ~rounds:r)
            (Sync_runner.knowledge_matches_view inst ~r))
        [ 1; 2 ])
    [ 8; 16; 24 ]

(* ------------------------------------------------------------------ *)
(* The PR-7 large series (opt-in via --large, out of the default run):
   graph-build throughput, sampled certification throughput and the
   CSR-vs-list traversal A/B on 10^5..10^6-node instances, written to
   BENCH_large.json. The list side of the A/B materializes
   [Graph.neighbors] per query — the seed representation's access
   pattern — so the speedup column is the cross-PR baseline for
   substrate changes.                                                   *)

let peak_rss_kb () =
  (* VmHWM from /proc/self/status; absent off Linux *)
  try
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec scan () =
          let line = input_line ic in
          if String.length line >= 6 && String.sub line 0 6 = "VmHWM:" then
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
              (fun kb -> Some kb)
          else scan ()
        in
        try scan () with End_of_file -> None)
  with Sys_error _ -> None

(* Traversal workload: sum of neighbor ids over every node. The CSR
   side folds in place; the list side materializes the per-node list
   first, as every pre-CSR hot loop did. *)
let traverse_csr g =
  let acc = ref 0 in
  for v = 0 to Graph.order g - 1 do
    Graph.iter_neighbors (fun w -> acc := !acc + w) g v
  done;
  !acc

let traverse_list g =
  let acc = ref 0 in
  for v = 0 to Graph.order g - 1 do
    List.iter (fun w -> acc := !acc + w) (Graph.neighbors g v)
  done;
  !acc

let series_large ~fast () =
  Printf.printf "\n== series: large sampled workload (CSR substrate)\n";
  let build_rows =
    let sizes = if fast then [ 100_000 ] else [ 100_000; 1_000_000 ] in
    List.concat_map
      (fun model ->
        List.map
          (fun nodes ->
            let rng = Random.State.make [| 7; nodes |] in
            let g, secs =
              time (fun () ->
                  match Random_graphs.of_model rng ~nodes model with
                  | Ok g -> g
                  | Error msg -> failwith msg)
            in
            let n = Graph.order g and m = Graph.size g in
            Printf.printf
              "   build %-6s n=%8d m=%9d %8.3fs (%.2e nodes/s, %.2e edges/s)\n"
              model n m secs
              (float_of_int n /. secs)
              (float_of_int m /. secs);
            (model, g, secs))
          sizes)
      [ "gnp"; "ba" ]
  in
  (* traversal A/B on the largest gnp instance *)
  let g_big =
    let pick (model, g, _) acc =
      match acc with
      | Some (_, h, _) when Graph.order h >= Graph.order g -> acc
      | _ when model = "gnp" -> Some (model, g, 0.)
      | _ -> acc
    in
    match List.fold_right pick build_rows None with
    | Some (_, g, _) -> g
    | None -> assert false
  in
  let sum_list, list_s = time (fun () -> traverse_list g_big) in
  let sum_csr, csr_s = time (fun () -> traverse_csr g_big) in
  assert (sum_list = sum_csr);
  Printf.printf
    "   traversal n=%d: list %.3fs vs csr %.3fs (%.1fx, identical sums)\n"
    (Graph.order g_big) list_s csr_s
    (list_s /. Float.max csr_s 1e-9);
  (* sampled certification throughput through the standard phases *)
  let sample_cfg = Run_cfg.make ~seed:7 () in
  let eval_nodes = 50_000 in
  let report, sample_s =
    time (fun () ->
        Sampling.run ~eval_nodes ~trials:4 ~pairs:1_000 ~cfg:sample_cfg
          ~decoder:"trivial2" ~model:"gnp" (D_trivial.suite ~k:2) g_big)
  in
  let evaluated =
    match report.Sampling.completeness with
    | Some c -> c.Sampling.evaluated
    | None -> 0
  in
  Printf.printf "   sample trivial2 n=%d: %d evals in %.3fs (%.2e nodes/s)\n"
    (Graph.order g_big) evaluated sample_s
    (float_of_int evaluated /. Float.max sample_s 1e-9);
  (* the small n=8 sweep A/B figure: same traversal workload over the
     whole n=8 (n=7 under --fast) iso-class corpus *)
  let n8 = if fast then 7 else 8 in
  let classes, enum_s =
    time (fun () ->
        Lcp_engine.Sweep.iso_classes ~cfg:(Run_cfg.sequential sample_cfg) n8)
  in
  let reps = 200 in
  let sweep_list, n8_list_s =
    time (fun () ->
        let acc = ref 0 in
        for _ = 1 to reps do
          List.iter (fun g -> acc := !acc + traverse_list g) classes
        done;
        !acc)
  in
  let sweep_csr, n8_csr_s =
    time (fun () ->
        let acc = ref 0 in
        for _ = 1 to reps do
          List.iter (fun g -> acc := !acc + traverse_csr g) classes
        done;
        !acc)
  in
  assert (sweep_list = sweep_csr);
  Printf.printf
    "   n=%d sweep corpus (%d classes, %d reps): list %.3fs vs csr %.3fs \
     (%.1fx)\n"
    n8 (List.length classes) reps n8_list_s n8_csr_s
    (n8_list_s /. Float.max n8_csr_s 1e-9);
  (match peak_rss_kb () with
  | Some kb -> Printf.printf "   peak RSS: %d kB\n" kb
  | None -> Printf.printf "   peak RSS: unavailable (no /proc)\n");
  let ns s = int_of_float (s *. 1e9) in
  Json.Obj
    [
      ("schema_version", Json.Int bench_schema_version);
      ("jobs", Json.Int sample_cfg.Run_cfg.jobs);
      ( "build",
        Json.List
          (List.map
             (fun (model, g, secs) ->
               let n = Graph.order g and m = Graph.size g in
               Json.Obj
                 [
                   ("model", Json.String model);
                   ("nodes", Json.Int n);
                   ("edges", Json.Int m);
                   ("wall_ns", Json.Int (ns secs));
                   ("nodes_per_sec", Json.Int (int_of_float (float_of_int n /. Float.max secs 1e-9)));
                   ("edges_per_sec", Json.Int (int_of_float (float_of_int m /. Float.max secs 1e-9)));
                 ])
             build_rows) );
      ( "traversal",
        Json.Obj
          [
            ("nodes", Json.Int (Graph.order g_big));
            ("edges", Json.Int (Graph.size g_big));
            ("list_wall_ns", Json.Int (ns list_s));
            ("csr_wall_ns", Json.Int (ns csr_s));
            ("speedup", Json.String (Printf.sprintf "%.2f" (list_s /. Float.max csr_s 1e-9)));
          ] );
      ( "sample",
        Json.Obj
          [
            ("decoder", Json.String "trivial2");
            ("nodes", Json.Int (Graph.order g_big));
            ("evaluated", Json.Int evaluated);
            ("wall_ns", Json.Int (ns sample_s));
            ("nodes_per_sec", Json.Int (int_of_float (float_of_int evaluated /. Float.max sample_s 1e-9)));
            ("violations", Json.Int report.Sampling.violations);
          ] );
      ( "sweep_n8_ab",
        Json.Obj
          [
            ("n", Json.Int n8);
            ("classes", Json.Int (List.length classes));
            ("reps", Json.Int reps);
            ("enumerate_wall_ns", Json.Int (ns enum_s));
            ("list_wall_ns", Json.Int (ns n8_list_s));
            ("csr_wall_ns", Json.Int (ns n8_csr_s));
            ("speedup", Json.String (Printf.sprintf "%.2f" (n8_list_s /. Float.max n8_csr_s 1e-9)));
          ] );
      ( "peak_rss_kb",
        match peak_rss_kb () with Some kb -> Json.Int kb | None -> Json.Null );
    ]

let write_large_json path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty doc);
      output_string oc "\n");
  Printf.printf "large series written to %s\n" path

(* ------------------------------------------------------------------ *)
(* The PR-8 race series: what the instrumented sync layer costs. The
   disarmed column is the price every ordinary run pays for the
   tracing hooks (one relaxed Atomic.get branch per operation — the
   zero-cost-when-off claim, measured); the armed column is the price
   [lcp race] pays while recording (period 0: tracing without
   perturbation pauses). Returns rows for BENCH_race.json.             *)

let series_race ~fast () =
  Printf.printf "\n== series: sync instrumentation overhead (armed vs disarmed)\n";
  Printf.printf "%12s %10s %14s %14s %8s\n" "op" "iters" "disarmed_ns" "armed_ns"
    "ratio";
  let iters = if fast then 200_000 else 1_000_000 in
  let module Sync = Lcp_obs.Sync in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let measure name op =
    let disarmed = time (fun () -> for _ = 1 to iters do op () done) in
    Sync.arm ~perturb:{ Sync.pseed = 0; period = 0 } ();
    let armed = time (fun () -> for _ = 1 to iters do op () done) in
    ignore (Sync.disarm ());
    let per s = s /. float_of_int iters *. 1e9 in
    let ratio = if disarmed > 0. then armed /. disarmed else 0. in
    Printf.printf "%12s %10d %14.1f %14.1f %8.1f\n" name iters (per disarmed)
      (per armed) ratio;
    (name, iters, per disarmed, per armed, ratio)
  in
  let m = Sync.mutex "bench/race.lock" in
  let a = Sync.A.make "bench/race.counter" 0 in
  let v = Sync.Var.make "bench/race.var" 0 in
  let r1 = measure "with_lock" (fun () -> Sync.with_lock m (fun () -> ())) in
  let r2 = measure "atomic_incr" (fun () -> Sync.A.incr a) in
  let r3 = measure "var_set" (fun () -> Sync.Var.set v 1) in
  [ r1; r2; r3 ]

let write_race_json path rows =
  let row (name, iters, disarmed_ns, armed_ns, ratio) =
    Json.Obj
      [
        ("op", Json.String name);
        ("iters", Json.Int iters);
        ("disarmed_ns_per_op", Json.Int (int_of_float disarmed_ns));
        ("armed_ns_per_op", Json.Int (int_of_float armed_ns));
        ("armed_over_disarmed_x100", Json.Int (int_of_float (ratio *. 100.)));
      ]
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int bench_schema_version);
        ("race", Json.List (List.map row rows));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty doc);
      output_string oc "\n");
  Printf.printf "race series written to %s\n" path

let () =
  let fast = Array.exists (fun a -> a = "--fast") Sys.argv in
  let large = Array.exists (fun a -> a = "--large") Sys.argv in
  let metrics_out =
    let out = ref "BENCH_sweep.json" in
    Array.iteri
      (fun i a ->
        if a = "--metrics-out" && i + 1 < Array.length Sys.argv then
          out := Sys.argv.(i + 1))
      Sys.argv;
    !out
  in
  Printf.printf "LCP benchmark harness (bechamel)%s\n\n"
    (if fast then " [fast]" else "");
  if large then begin
    (* --large runs ONLY the large series: it is CI's large-smoke step,
       not part of the default bench (tier-1 time unchanged). *)
    let doc = series_large ~fast () in
    write_large_json
      (Filename.concat (Filename.dirname metrics_out) "BENCH_large.json")
      doc;
    exit 0
  end;
  run_benchmarks ~fast ();
  series_neighborhood ();
  series_cert_sizes ();
  series_strong_checks ();
  series_scaling ();
  series_engine_dedup ~fast ();
  let enumerate_rows = series_enumerate ~fast () in
  let search_rows = series_search ~fast () in
  let orbit_rows = series_orbit ~fast () in
  let orbit_shards = series_orbit_shards ~fast () in
  let sweep_rows = series_engine_sweep ~fast () in
  let serve_rows = series_serve ~fast () in
  let coord_doc = series_coord ~fast () in
  let race_rows = series_race ~fast () in
  series_sync ();
  write_sweep_json metrics_out sweep_rows;
  write_coord_json
    (Filename.concat (Filename.dirname metrics_out) "BENCH_coord.json")
    coord_doc;
  write_race_json
    (Filename.concat (Filename.dirname metrics_out) "BENCH_race.json")
    race_rows;
  write_serve_json
    (Filename.concat (Filename.dirname metrics_out) "BENCH_serve.json")
    serve_rows;
  write_enumerate_json
    (Filename.concat (Filename.dirname metrics_out) "BENCH_enumerate.json")
    enumerate_rows;
  write_search_json
    (Filename.concat (Filename.dirname metrics_out) "BENCH_search.json")
    search_rows;
  write_orbit_json
    (Filename.concat (Filename.dirname metrics_out) "BENCH_orbit.json")
    (orbit_rows, orbit_shards);
  match List.rev !divergences with
  | [] -> Printf.printf "\nbench done.\n"
  | ds ->
      Printf.printf "\nbench FAILED: %d A/B divergence(s): %s\n"
        (List.length ds) (String.concat ", " ds);
      exit 1
