(** The one clock every span and wall-time measurement reads.

    The sealed build environment exposes no monotonic source through the
    OCaml 5.1 stdlib ([Unix.clock_gettime] does not exist there and no
    [mtime] package is baked in), so this is [Unix.gettimeofday]
    centralized behind one indirection: swap the implementation here and
    every span in the tree switches clock. *)

val now_s : unit -> float
(** Seconds since the epoch, sub-microsecond resolution. *)

val now_ns : unit -> int
(** {!now_s} scaled to integer nanoseconds — the unit all spans are
    recorded and serialized in ({!Json} exchanges integers only). *)
