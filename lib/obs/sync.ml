(* The instrumented synchronization layer. See sync.mli for the event
   ordering contract the analyses rely on; the implementation notes
   here are about cost and self-consistency.

   Disarmed, every wrapper is the raw primitive behind one
   [Atomic.get] branch — no allocation, no extra locking. Armed,
   events are appended to one process-global growable array under
   [internal], a bare stdlib mutex that is deliberately NOT an
   instrumented [mutex]: recording must never recurse into recording,
   and the internal lock must never appear in the analyzed lock-order
   graph. *)

type op =
  | Acquire
  | Release
  | Wait_begin
  | Wait_end
  | Signal
  | Broadcast
  | A_read
  | A_write
  | V_read
  | V_write
  | Spawn
  | Begin
  | End
  | Join

let op_name = function
  | Acquire -> "acquire"
  | Release -> "release"
  | Wait_begin -> "wait-begin"
  | Wait_end -> "wait-end"
  | Signal -> "signal"
  | Broadcast -> "broadcast"
  | A_read -> "atomic-read"
  | A_write -> "atomic-write"
  | V_read -> "var-read"
  | V_write -> "var-write"
  | Spawn -> "spawn"
  | Begin -> "begin"
  | End -> "end"
  | Join -> "join"

type event = {
  seq : int;
  dom : int;
  thr : int;
  op : op;
  obj : int;
  arg : int;
  label : string;
}

type perturb = { pseed : int; period : int }

(* ------------------------------------------------------------------ *)
(* the recorder                                                        *)

let dummy =
  { seq = 0; dom = 0; thr = 0; op = Acquire; obj = -1; arg = -1; label = "" }

type state = {
  mutable events : event array;
  mutable len : int;
  mutable pert : perturb option;
  op_counts : (int * int, int ref) Hashtbl.t;
      (* (dom, thr) -> sync ops performed by that thread this session;
         drives the deterministic perturbation decision *)
}

let internal = Mutex.create ()
let armed_flag = Atomic.make false
let st = { events = [||]; len = 0; pert = None; op_counts = Hashtbl.create 64 }

let next_id = Atomic.make 0
let fresh () = Atomic.fetch_and_add next_id 1

let identity () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let push ev =
  if st.len >= Array.length st.events then begin
    let cap = max 1024 (2 * Array.length st.events) in
    let bigger = Array.make cap ev in
    Array.blit st.events 0 bigger 0 st.len;
    st.events <- bigger
  end;
  st.events.(st.len) <- ev;
  st.len <- st.len + 1

let record ?(arg = -1) op obj label =
  if Atomic.get armed_flag then begin
    let dom, thr = identity () in
    Mutex.lock internal;
    (* re-check under the lock: [disarm] flips the flag first, so a
       straggler that raced past the outer check drops its event here
       instead of polluting the next session *)
    if Atomic.get armed_flag then
      push { seq = st.len; dom; thr; op; obj; arg; label };
    Mutex.unlock internal
  end

(* Operation-entry pause: fires iff a hash of (seed, the thread's own
   op index, the op label) lands on the period. The decision depends
   only on per-thread program order and the seed — never on wall time
   or on other threads — so a seed replays its pause pattern. *)
let maybe_pause label =
  if Atomic.get armed_flag then begin
    let spin = ref (-1) in
    Mutex.lock internal;
    (match st.pert with
    | Some { pseed; period } when period > 0 ->
        let key = identity () in
        let c =
          match Hashtbl.find_opt st.op_counts key with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Hashtbl.replace st.op_counts key r;
              r
        in
        incr c;
        let h = Hashtbl.hash (pseed, !c, label) land max_int in
        if h mod period = 0 then spin := h
    | _ -> ());
    Mutex.unlock internal;
    if !spin >= 0 then begin
      Thread.yield ();
      for _ = 0 to !spin land 0x3f do
        Domain.cpu_relax ()
      done
    end
  end

let arm ?perturb () =
  Mutex.lock internal;
  st.events <- Array.make 1024 dummy;
  st.len <- 0;
  st.pert <- perturb;
  Hashtbl.reset st.op_counts;
  Atomic.set armed_flag true;
  Mutex.unlock internal

let disarm () =
  Atomic.set armed_flag false;
  Mutex.lock internal;
  let out = Array.sub st.events 0 st.len in
  st.events <- [||];
  st.len <- 0;
  st.pert <- None;
  Hashtbl.reset st.op_counts;
  Mutex.unlock internal;
  out

let armed () = Atomic.get armed_flag

(* ------------------------------------------------------------------ *)
(* mutexes and conditions                                              *)

type mutex = { mid : int; mlabel : string; m : Mutex.t }

let mutex label = { mid = fresh (); mlabel = label; m = Mutex.create () }

let lock mu =
  maybe_pause mu.mlabel;
  Mutex.lock mu.m;
  (* logged while held: a release and the acquire it hands off to can
     never appear out of order in the trace *)
  record Acquire mu.mid mu.mlabel

let unlock mu =
  record Release mu.mid mu.mlabel;
  Mutex.unlock mu.m

let with_lock mu f =
  lock mu;
  Fun.protect ~finally:(fun () -> unlock mu) f

type cond = { cid : int; clabel : string; c : Condition.t }

let condition label = { cid = fresh (); clabel = label; c = Condition.create () }

let wait cv mu =
  (* Wait_begin doubles as Release (logged before the wait drops the
     lock), Wait_end as Acquire (logged after it is re-held) *)
  record ~arg:mu.mid Wait_begin cv.cid cv.clabel;
  Condition.wait cv.c mu.m;
  record ~arg:mu.mid Wait_end cv.cid cv.clabel

let signal cv =
  record Signal cv.cid cv.clabel;
  Condition.signal cv.c

let broadcast cv =
  record Broadcast cv.cid cv.clabel;
  Condition.broadcast cv.c

(* ------------------------------------------------------------------ *)
(* instrumented atomics                                                *)

module A = struct
  type 'a t = { aid : int; alabel : string; a : 'a Atomic.t }

  let make label v = { aid = fresh (); alabel = label; a = Atomic.make v }

  let get t =
    maybe_pause t.alabel;
    let v = Atomic.get t.a in
    record A_read t.aid t.alabel;
    v

  let set t v =
    maybe_pause t.alabel;
    record A_write t.aid t.alabel;
    Atomic.set t.a v

  let exchange t v =
    maybe_pause t.alabel;
    record A_write t.aid t.alabel;
    Atomic.exchange t.a v

  let compare_and_set t old now =
    maybe_pause t.alabel;
    record A_write t.aid t.alabel;
    Atomic.compare_and_set t.a old now

  let fetch_and_add t n =
    maybe_pause t.alabel;
    record A_write t.aid t.alabel;
    Atomic.fetch_and_add t.a n

  let incr t = ignore (fetch_and_add t 1)
end

(* ------------------------------------------------------------------ *)
(* tracked plain variables                                             *)

module Var = struct
  type 'a t = { vid : int; vlabel : string; mutable v : 'a }

  let make label v = { vid = fresh (); vlabel = label; v }

  let get t =
    maybe_pause t.vlabel;
    let v = t.v in
    record V_read t.vid t.vlabel;
    v

  let set t v =
    maybe_pause t.vlabel;
    record V_write t.vid t.vlabel;
    t.v <- v

  let touch t = set t ()
  let observe t = ignore (get t)
end

(* ------------------------------------------------------------------ *)
(* instrumented spawn/join                                             *)

type thread_handle = {
  t_token : int;
  t_label : string;
  th : Thread.t;
  t_exn : exn option ref;
      (* written by the child before its End event, read by the parent
         after Join: ordered by the join itself *)
}

let spawn label f =
  let token = fresh () in
  let exn = ref None in
  record Spawn token label;
  let th =
    Thread.create
      (fun () ->
        record Begin token label;
        (try f () with e -> exn := Some e);
        record End token label)
      ()
  in
  { t_token = token; t_label = label; th; t_exn = exn }

let join h =
  Thread.join h.th;
  record Join h.t_token h.t_label;
  match !(h.t_exn) with Some e -> raise e | None -> ()

type 'a domain_handle = { d_token : int; d_label : string; d : 'a Domain.t }

let spawn_domain label f =
  let token = fresh () in
  record Spawn token label;
  let d =
    Domain.spawn (fun () ->
        record Begin token label;
        Fun.protect ~finally:(fun () -> record End token label) f)
  in
  { d_token = token; d_label = label; d }

let join_domain h =
  let r = Domain.join h.d in
  record Join h.d_token h.d_label;
  r
