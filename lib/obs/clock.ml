let now_s = Unix.gettimeofday
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
