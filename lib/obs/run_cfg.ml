type t = {
  jobs : int;
  heavy : bool;
  seed : int;
  eval_cache : bool;
  orbit_prune : bool;
  sink : Sink.t;
  deadline : float option;
  metrics : Metrics.t;
  t0 : float;
}

(* The historical experiment seed (see Experiments): kept as the
   default so cfg-less runs reproduce the seed repo's tables. *)
let default_seed = 20250706

let normalize_jobs = function
  | Some j when j > 0 -> j
  | _ -> Domain.recommended_domain_count ()

let make ?jobs ?(heavy = true) ?(seed = default_seed) ?(eval_cache = true)
    ?(orbit_prune = true) ?(sink = Sink.null) ?deadline () =
  {
    jobs = normalize_jobs jobs;
    heavy;
    seed;
    eval_cache;
    orbit_prune;
    sink;
    deadline;
    metrics = Metrics.create ();
    t0 = Clock.now_s ();
  }

let default = make ()
let with_jobs t jobs = { t with jobs = normalize_jobs (Some jobs) }
let sequential t = { t with jobs = 1 }
let with_eval_cache t eval_cache = { t with eval_cache }
let with_orbit_prune t orbit_prune = { t with orbit_prune }
let rng t = Random.State.make [| t.seed |]

let span t name f =
  Metrics.with_span
    ~enter:(fun path -> t.sink.Sink.emit t.metrics (Sink.Span_start path))
    ~leave:(fun path ns -> t.sink.Sink.emit t.metrics (Sink.Span_end (path, ns)))
    t.metrics name f

let count t ?by name = Metrics.incr t.metrics ?by name
let set_gauge t name v = Metrics.set_gauge t.metrics name v
let progress t line = t.sink.Sink.emit t.metrics (Sink.Progress line)
let flush t = t.sink.Sink.flush t.metrics

let remaining_s t =
  Option.map (fun d -> d -. (Clock.now_s () -. t.t0)) t.deadline

let expired t = match remaining_s t with Some r -> r <= 0. | None -> false
