type span_cell = { mutable entries : int; mutable total_ns : int }

(* Locking discipline: every access to the tables and the span stack
   happens under [lock] (an instrumented {!Sync.mutex}, leaf-level:
   nothing else is ever acquired while holding it). [guard] is the
   Sync shadow var standing in for the tables themselves, so
   [lcp race] can prove the discipline holds under any schedule. *)
type t = {
  lock : Sync.mutex;
  guard : unit Sync.Var.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  span_cells : (string, span_cell) Hashtbl.t;
  mutable stack : string list;  (** innermost-first span paths *)
}

let create () =
  {
    lock = Sync.mutex "obs/metrics";
    guard = Sync.Var.make "obs/metrics.tables" ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    span_cells = Hashtbl.create 16;
    stack = [];
  }

let locked t f = Sync.with_lock t.lock f
let mutating t f = locked t (fun () -> Sync.Var.touch t.guard; f ())
let reading t f = locked t (fun () -> Sync.Var.observe t.guard; f ())

let reset t =
  mutating t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.gauges;
      Hashtbl.reset t.span_cells;
      t.stack <- [])

(* ------------------------------------------------------------------ *)
(* counters and gauges                                                 *)

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl name r;
      r

let incr t ?(by = 1) name =
  mutating t (fun () ->
      let r = cell t.counters name in
      r := !r + by)

let counter t name =
  reading t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let set_gauge t name v = mutating t (fun () -> cell t.gauges name := v)

let gauge t name =
  reading t (fun () -> Option.map ( ! ) (Hashtbl.find_opt t.gauges name))

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = reading t (fun () -> sorted_bindings t.counters ( ! ))
let gauges t = reading t (fun () -> sorted_bindings t.gauges ( ! ))

(* ------------------------------------------------------------------ *)
(* spans                                                               *)

let record_span t path ns =
  mutating t (fun () ->
      match Hashtbl.find_opt t.span_cells path with
      | Some c ->
          c.entries <- c.entries + 1;
          c.total_ns <- c.total_ns + ns
      | None -> Hashtbl.replace t.span_cells path { entries = 1; total_ns = ns })

let with_span ?enter ?leave t name f =
  let path =
    mutating t (fun () ->
        let path =
          match t.stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
        in
        t.stack <- path :: t.stack;
        path)
  in
  Option.iter (fun g -> g path) enter;
  let t0 = Clock.now_ns () in
  let finish () =
    let ns = Clock.now_ns () - t0 in
    mutating t (fun () ->
        match t.stack with p :: rest when p == path -> t.stack <- rest | _ -> ());
    record_span t path ns;
    Option.iter (fun g -> g path ns) leave
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let span t path =
  reading t (fun () ->
      Option.map
        (fun c -> (c.entries, c.total_ns))
        (Hashtbl.find_opt t.span_cells path))

let spans t =
  reading t (fun () ->
      sorted_bindings t.span_cells (fun c -> (c.entries, c.total_ns)))

(* ------------------------------------------------------------------ *)
(* serialization                                                       *)

(* v2: the engine's [masks_scanned] counter became
   [candidates_generated] when enumeration grew a second strategy
   (orderly generation) whose candidates are not masks. The layout is
   unchanged, so v1 files still parse — only the counter vocabulary
   moved. *)
let schema_version = 2

let accepted_versions = [ 1; schema_version ]

let to_json t =
  let ints l = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) l) in
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("counters", ints (counters t));
      ("gauges", ints (gauges t));
      ( "spans",
        Json.Obj
          (List.map
             (fun (path, (entries, total_ns)) ->
               ( path,
                 Json.Obj
                   [
                     ("entries", Json.Int entries);
                     ("wall_ns", Json.Int total_ns);
                   ] ))
             (spans t)) );
    ]

let of_json json =
  let open Json in
  let* v = member "schema_version" json in
  let* v = to_int v in
  if not (List.mem v accepted_versions) then
    Error (Printf.sprintf "metrics: unsupported schema_version %d" v)
  else
    let t = create () in
    let each name f =
      let* obj = member name json in
      let* fields =
        match obj with
        | Obj fields -> Ok fields
        | _ -> Error (Printf.sprintf "metrics: %S is not an object" name)
      in
      map_m (fun (k, v) -> f k v) fields
    in
    let* _ =
      each "counters" (fun k v ->
          let* n = to_int v in
          incr t ~by:n k;
          Ok ())
    in
    let* _ =
      each "gauges" (fun k v ->
          let* n = to_int v in
          set_gauge t k n;
          Ok ())
    in
    let* _ =
      each "spans" (fun path v ->
          let* entries = let* e = member "entries" v in to_int e in
          let* total = let* w = member "wall_ns" v in to_int w in
          mutating t (fun () ->
              Hashtbl.replace t.span_cells path { entries; total_ns = total });
          Ok ())
    in
    Ok t

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (path, (entries, ns)) ->
      Format.fprintf ppf "span    %-40s %8.3fs (x%d)@," path
        (float_of_int ns /. 1e9)
        entries)
    (spans t);
  List.iter
    (fun (k, v) -> Format.fprintf ppf "counter %-40s %d@," k v)
    (counters t);
  List.iter (fun (k, v) -> Format.fprintf ppf "gauge   %-40s %d@," k v) (gauges t);
  Format.fprintf ppf "@]"
