(** The one record threaded through every run.

    [Run_cfg.t] replaces the scattered [?jobs:int] / [?heavy:bool]
    optionals that used to decorate {!Lcp.Checker}, {!Lcp.Experiments},
    the sweep engine and both CLI entry points. A front-end builds one
    [t] (from flags, or [default]), and every layer below reads its
    parallelism, its RNG seed, its deadline, and reports into its
    {!Metrics.t} / {!Sink.t}.

    Copies made with [with_jobs] / [sequential] share the original's
    metrics registry and sink, so a sub-phase forced sequential still
    reports into the same aggregate. *)

type t = {
  jobs : int;  (** worker domains for engine fan-out; >= 1 *)
  heavy : bool;  (** run the expensive experiment variants *)
  seed : int;  (** root seed for every [rng] derived from this cfg *)
  eval_cache : bool;
      (** memoize per-node acceptance verdicts during exhaustive
          certificate searches ([Lcp_engine.Eval_cache]); [false] forces
          the direct view-extraction path, kept as the oracle the
          memoized path is validated against. Verdicts, witnesses and
          the [labelings_checked] counter are identical either way —
          only wall time and the [eval_cache_hits] / [eval_cache_misses]
          counters change. *)
  orbit_prune : bool;
      (** quotient exhaustive certificate searches by the graph's
          automorphism group ({!Lcp_engine.Auto}): enumerate only
          labelings that are lexicographically minimal in their
          Aut-orbit. Applies only to decoders whose verdicts are
          Aut-invariant (anonymous and port-invariant); [false] forces
          the direct full enumeration, kept as the oracle the pruned
          path is validated against. Verdicts, witnesses and
          counterexamples are identical either way; the search-tally
          component of [labelings_checked] shrinks under pruning
          (deterministically per setting), while exhaustive
          strong-soundness counts stay exactly identical on passing
          runs via orbit weights. *)
  sink : Sink.t;  (** where spans / progress / the final flush go *)
  deadline : float option;  (** wall-clock budget in seconds, if any *)
  metrics : Metrics.t;  (** the aggregate registry for this run *)
  t0 : float;  (** creation time, origin for [deadline] *)
}

val make :
  ?jobs:int ->
  ?heavy:bool ->
  ?seed:int ->
  ?eval_cache:bool ->
  ?orbit_prune:bool ->
  ?sink:Sink.t ->
  ?deadline:float ->
  unit ->
  t
(** Fresh cfg with a fresh metrics registry. [jobs] absent or [<= 0]
    means [Domain.recommended_domain_count ()]; [heavy] defaults to
    [true]; [seed] to the repo-wide experiment seed 20250706;
    [eval_cache] and [orbit_prune] to [true]; [sink] to {!Sink.null};
    no deadline. *)

val default : t
(** A shared cfg built once at module init with [make ()]. Callers that
    pass no cfg all report into this one registry. *)

val with_jobs : t -> int -> t
(** Same run (same metrics, sink, seed, deadline), different
    parallelism. [<= 0] means the recommended domain count. *)

val sequential : t -> t
(** [with_jobs t 1] — for phases whose semantics require a single
    domain (shared RNG state, ordered folds). *)

val with_eval_cache : t -> bool -> t
(** Same run (same metrics, sink, seed, deadline), different
    acceptance-table policy — the escape hatch behind the CLI's
    [--no-eval-cache]. *)

val with_orbit_prune : t -> bool -> t
(** Same run, different automorphism-quotient policy — the escape
    hatch behind the CLI's [--no-orbit-prune]. *)

val rng : t -> Random.State.t
(** A fresh PRNG seeded from [t.seed]. Every call returns an identical
    state, so two phases that each take [rng cfg] see the same stream —
    reproducibility is per-phase, not global. *)

(** {1 Reporting through the cfg} *)

val span : t -> string -> (unit -> 'a) -> 'a
(** {!Metrics.with_span} on [t.metrics], with {!Sink.Span_start} /
    {!Sink.Span_end} emitted to [t.sink]. *)

val count : t -> ?by:int -> string -> unit
(** {!Metrics.incr} on [t.metrics]. Safe from any domain. *)

val set_gauge : t -> string -> int -> unit
val progress : t -> string -> unit
(** Emit a {!Sink.Progress} line. *)

val flush : t -> unit
(** Hand the aggregate metrics to the sink, once, at end of run. *)

(** {1 Deadline} *)

val remaining_s : t -> float option
(** Seconds left before the deadline ([None] if no deadline). May be
    negative once expired. *)

val expired : t -> bool
(** [true] iff a deadline is set and has passed. *)
