(** A minimal self-contained JSON implementation (no external
    dependencies are available in the sealed build environment): enough
    of RFC 8259 for this library's interchange needs — objects, arrays,
    strings with escapes, integers and booleans. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering. *)

val of_string : string -> (t, string) result
(** Parse; the error carries a position-annotated message. Numbers with
    fractional parts or exponents are rejected (this library only
    exchanges integers). *)

(** {1 Accessors} — all return [Error] with a readable message rather
    than raising. *)

val member : string -> t -> (t, string) result
val to_int : t -> (int, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result
val to_bool : t -> (bool, string) result

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
val map_m : ('a -> ('b, 'e) result) -> 'a list -> ('b list, 'e) result
