(** Pluggable observability sinks.

    A sink is where a run's instrumentation goes: spans and progress
    lines as they happen ([emit]), and the aggregate {!Metrics.t} once
    at the end ([flush]). Everything that takes a {!Run_cfg.t} reports
    through the sink it carries, so redirecting a whole sweep from
    silent to stderr-progress to a JSON file is a one-field change.

    [emit] receives the run's metrics registry alongside the event, so
    sinks that render aggregate state (the JSON file sink, the serve
    daemon's per-request streams) can snapshot it live instead of
    waiting for the final flush. *)

type event =
  | Span_start of string  (** span path, fired on entry *)
  | Span_end of string * int  (** span path and wall nanoseconds *)
  | Progress of string  (** human-readable progress line *)

type t = {
  name : string;  (** for error messages and [pp] *)
  emit : Metrics.t -> event -> unit;
  flush : Metrics.t -> unit;
}

val null : t
(** Drops everything — the default sink; instrumented code pays only
    the counter increments. *)

val stderr_progress : t
(** Prints [Progress] lines and span completions to stderr as they
    happen, and a metrics dump on flush. *)

val json_file : string -> t
(** A {e live} metrics file: every event — and the final [flush] —
    rewrites [path] with {!Metrics.to_json} (pretty, trailing newline)
    of the current snapshot. Each write goes to [path ^ ".tmp"], is
    flushed, and is renamed over [path], so a reader tailing the file
    mid-run never observes a torn or buffered partial document. *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] writes [content ^ "\n"] to [path] via
    the flush-then-rename protocol {!json_file} uses. *)

val tee : t -> t -> t
(** Both sinks see every event and every flush, left first. *)

val of_outputs : ?progress:bool -> ?metrics_out:string -> unit -> t
(** The one constructor CLI front-ends need: [stderr_progress] when
    [progress], composed with [json_file metrics_out] when a path is
    given, {!null} otherwise. *)
