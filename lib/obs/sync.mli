(** Instrumented synchronization: labeled wrappers over [Mutex],
    [Condition], [Atomic] and thread/domain spawning that, when {e
    armed}, log a per-thread event trace for the [Lcp_race] analyses
    (happens-before data-race detection, lock-order cycles, seeded
    schedule perturbation).

    Disarmed — the default, and the only mode one-shot CLI runs ever
    see — every wrapper is the underlying primitive plus one relaxed
    [Atomic.get] branch; no allocation, no locking, no trace. Armed
    (via {!arm}), each synchronization operation appends one event to
    a process-global trace under an internal {e uninstrumented} mutex,
    and optionally pauses at operation entry according to a seeded
    deterministic schedule-perturbation policy (see {!perturb}).

    {b Event ordering contract.} The trace's [seq] order is consistent
    with the real synchronization order the analyses rely on:
    [Acquire] is logged {e after} the lock is held, [Release] {e
    before} it is dropped, atomic writes {e before} and atomic reads
    {e after} the underlying operation, [Spawn] before the child can
    start and [Join] after it has finished — so a release and the
    acquire it happens-before always appear in that order in the
    trace.

    {b Lock discipline.} The internal trace mutex is leaf-level and
    private: recording never calls back into instrumented code, so
    arming cannot deadlock or add edges to the analyzed lock graph. *)

type op =
  | Acquire  (** [obj] = mutex *)
  | Release  (** [obj] = mutex *)
  | Wait_begin  (** [obj] = condition, [arg] = mutex; implies Release *)
  | Wait_end  (** [obj] = condition, [arg] = mutex; implies Acquire *)
  | Signal  (** [obj] = condition *)
  | Broadcast  (** [obj] = condition *)
  | A_read  (** [obj] = atomic *)
  | A_write  (** [obj] = atomic; RMW ops log a single [A_write] *)
  | V_read  (** [obj] = tracked plain var *)
  | V_write  (** [obj] = tracked plain var *)
  | Spawn  (** [obj] = spawn token, in the parent *)
  | Begin  (** [obj] = spawn token, first event of the child *)
  | End  (** [obj] = spawn token, last event of the child *)
  | Join  (** [obj] = spawn token, in the parent after join *)

val op_name : op -> string

type event = {
  seq : int;  (** position in the global trace *)
  dom : int;  (** [Domain.self] of the logging thread *)
  thr : int;  (** [Thread.id (Thread.self ())] of the logging thread *)
  op : op;
  obj : int;  (** unique id of the mutex/condition/atomic/var/token *)
  arg : int;  (** [Wait_*]: the mutex id; otherwise [-1] *)
  label : string;  (** the object's creation label (token: spawn label) *)
}

(** {1 Mutexes and conditions} *)

type mutex

val mutex : string -> mutex
(** A labeled mutex. The label names the lock {e class} in findings and
    the lock-order graph; every instance still has a unique id. *)

val lock : mutex -> unit
val unlock : mutex -> unit

val with_lock : mutex -> (unit -> 'a) -> 'a
(** Exception-safe lock/unlock bracket ([Fun.protect]); the one helper
    every locked section in the tree is expected to use. *)

type cond

val condition : string -> cond
val wait : cond -> mutex -> unit
val signal : cond -> unit
val broadcast : cond -> unit

(** {1 Instrumented atomics}

    Traced [Atomic] wrappers. The race analyses treat every [A.t]
    access as a synchronization operation (atomics cannot data-race by
    definition, and release/acquire edges flow through them), so
    migrating a counter from a bare [ref] to an [A.t] both fixes the
    race and teaches the detector about the new edge. *)

module A : sig
  type 'a t

  val make : string -> 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
end

(** {1 Tracked plain variables}

    A [Var.t] is a plain mutable cell whose reads and writes are
    logged {e without} any synchronization of their own — it is the
    subject the happens-before detector checks: two accesses from
    different threads, at least one a write, with no
    happens-before path between them, is a data-race finding.

    The [unit Var.t] form is a {e shadow guard} for a structure whose
    own accesses cannot be wrapped (a [Hashtbl], a record field):
    [touch] marks a write to the guarded structure, [observe] a read,
    at the call site, and the detector then proves the surrounding
    locking discipline correct (or not). *)

module Var : sig
  type 'a t

  val make : string -> 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val touch : unit t -> unit  (** [set v ()] — a guarded-structure write *)

  val observe : unit t -> unit  (** [ignore (get v)] — a guarded read *)
end

(** {1 Instrumented spawn/join}

    Wrappers over [Thread.create]/[Domain.spawn] that log the
    spawn/begin/end/join happens-before edges. Without them the
    child's first access would appear concurrent with everything the
    parent did before the spawn. *)

type thread_handle

val spawn : string -> (unit -> unit) -> thread_handle
(** The child's exception, if any, is stored and re-raised at
    {!join}. A handle may be dropped for fire-and-forget threads. *)

val join : thread_handle -> unit

type 'a domain_handle

val spawn_domain : string -> (unit -> 'a) -> 'a domain_handle

val join_domain : 'a domain_handle -> 'a
(** Re-raises the child's exception, like [Domain.join]. *)

(** {1 Arming} *)

type perturb = {
  pseed : int;
  period : int;
      (** roughly one pause per [period] sync operations per thread;
          [<= 0] disables pausing *)
}
(** Seeded schedule perturbation: at operation entry, a pause (a
    [Thread.yield] plus a bounded spin) fires iff a hash of
    [(pseed, per-thread op index, op label)] lands on the period — a
    deterministic function of the thread's own program order, so a
    given seed replays the same pause pattern even though the OS still
    chooses the actual interleaving. *)

val arm : ?perturb:perturb -> unit -> unit
(** Start a trace session: clears the trace and begins recording.
    Sessions do not nest; the caller (the [Lcp_race] driver, tests)
    serializes scenarios. *)

val disarm : unit -> event array
(** Stop recording and return the session's trace in [seq] order.
    Events attempted by stragglers after [disarm] are dropped. *)

val armed : unit -> bool
