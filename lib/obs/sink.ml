type event =
  | Span_start of string
  | Span_end of string * int
  | Progress of string

type t = {
  name : string;
  emit : event -> unit;
  flush : Metrics.t -> unit;
}

let null = { name = "null"; emit = ignore; flush = ignore }

let stderr_progress =
  {
    name = "stderr";
    emit =
      (function
      | Span_start _ -> ()
      | Span_end (path, ns) ->
          Printf.eprintf "[lcp] %-40s %8.3fs\n%!" path (float_of_int ns /. 1e9)
      | Progress line -> Printf.eprintf "[lcp] %s\n%!" line);
    flush = (fun m -> Format.eprintf "[lcp] metrics@.%a@." Metrics.pp m);
  }

let json_file path =
  {
    name = Printf.sprintf "json:%s" path;
    emit = ignore;
    flush =
      (fun m ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (Json.to_string_pretty (Metrics.to_json m));
            output_char oc '\n'));
  }

let tee a b =
  {
    name = Printf.sprintf "tee(%s,%s)" a.name b.name;
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    flush =
      (fun m ->
        a.flush m;
        b.flush m);
  }

let of_outputs ?(progress = false) ?metrics_out () =
  let s = if progress then stderr_progress else null in
  match metrics_out with
  | None -> s
  | Some path -> if progress then tee s (json_file path) else json_file path
