type event =
  | Span_start of string
  | Span_end of string * int
  | Progress of string

type t = {
  name : string;
  emit : Metrics.t -> event -> unit;
  flush : Metrics.t -> unit;
}

let null = { name = "null"; emit = (fun _ _ -> ()); flush = ignore }

let stderr_progress =
  {
    name = "stderr";
    emit =
      (fun _ -> function
        | Span_start _ -> ()
        | Span_end (path, ns) ->
            Printf.eprintf "[lcp] %-40s %8.3fs\n%!" path (float_of_int ns /. 1e9)
        | Progress line -> Printf.eprintf "[lcp] %s\n%!" line);
    flush = (fun m -> Format.eprintf "[lcp] metrics@.%a@." Metrics.pp m);
  }

(* Write the full document to a sibling temp file, flush it, then
   rename over [path]: rename is atomic on POSIX, so a tailer (or a
   reader racing a crash) always sees either the previous complete
   document or the new complete document — never a torn or
   half-buffered final line. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc content;
      output_char oc '\n';
      flush oc);
  Sys.rename tmp path

let write_metrics path m =
  write_atomic path (Json.to_string_pretty (Metrics.to_json m))

let json_file path =
  {
    name = Printf.sprintf "json:%s" path;
    (* live: every event — span closes included — rewrites the file
       with the current snapshot, so tailing it during a long run
       shows progress without waiting for the final flush *)
    emit = (fun m _event -> write_metrics path m);
    flush = (fun m -> write_metrics path m);
  }

let tee a b =
  {
    name = Printf.sprintf "tee(%s,%s)" a.name b.name;
    emit =
      (fun m e ->
        a.emit m e;
        b.emit m e);
    flush =
      (fun m ->
        a.flush m;
        b.flush m);
  }

let of_outputs ?(progress = false) ?metrics_out () =
  let s = if progress then stderr_progress else null in
  match metrics_out with
  | None -> s
  | Some path -> if progress then tee s (json_file path) else json_file path
