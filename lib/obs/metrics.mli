(** The aggregate metrics registry behind a {!Run_cfg.t}: named
    counters, named gauges, and wall-clock spans with a parent stack.

    One registry is threaded through a whole run (a sweep, an experiment
    battery, a bench series); everything it accumulates renders to one
    JSON document via {!to_json} and parses back via {!of_json}, so
    sweep metrics files and [BENCH_*.json] trajectories share a schema.

    {b Determinism contract.} Counters incremented from inside engine
    work items (classes enumerated, labelings checked, cache hits) are
    deterministic by construction: work items produce the same
    increments regardless of which domain runs them, and integer
    addition commutes. Gauges and spans measure the actual execution
    (per-domain task counts, wall time) and legitimately vary between
    runs — a consumer comparing [jobs=1] against [jobs=N] output must
    compare counters, not gauges.

    {b Thread safety.} [incr] and [set_gauge] may be called from any
    domain (they take an internal lock). The span stack is a single
    parent chain, so [with_span] must only be called from the
    orchestrating domain — never from pool workers. *)

type t

val create : unit -> t
val reset : t -> unit
(** Drop every counter, gauge and span. *)

(** {1 Counters} — monotone sums, deterministic across [jobs]. *)

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to a named counter, creating it at 0 first.
    [incr t ~by:0 name] just materializes the counter, which keeps the
    serialized key set identical between runs that happen to never hit
    it. *)

val counter : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Gauges} — last-write-wins observations. *)

val set_gauge : t -> string -> int -> unit
val gauge : t -> string -> int option
val gauges : t -> (string * int) list

(** {1 Spans} — wall-clock intervals with a parent stack. *)

val with_span :
  ?enter:(string -> unit) ->
  ?leave:(string -> int -> unit) ->
  t ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span t name f] runs [f] inside a span. The span's path is
    [parent/name] for the innermost open span ([name] at top level);
    its wall time and entry count accumulate per path, so a span
    entered in a loop aggregates. The span is recorded (and the stack
    popped) even when [f] raises. [enter path] fires before [f],
    [leave path wall_ns] after — the {!Sink} hook points. *)

val span : t -> string -> (int * int) option
(** [(count, total_wall_ns)] recorded under a span path, if any. *)

val spans : t -> (string * (int * int)) list
(** All spans as [(path, (count, total_wall_ns))], sorted by path. *)

(** {1 Serialization} *)

val schema_version : int
(** Currently [2]. v2 renamed the engine's [masks_scanned] counter to
    [candidates_generated] (enumeration strategies other than the mask
    scan count candidates that are not masks); the JSON layout is
    unchanged. *)

val to_json : t -> Json.t
(** [{ "schema_version"; "counters"; "gauges"; "spans" }] with every
    key set sorted, so equal registries render byte-identically. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json} (up to span-stack state, which is not
    serialized): [of_json (to_json t)] renders back to the same JSON.
    Accepts v1 files as well (same layout, older counter names kept
    verbatim). *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump (the stderr sink's flush format). *)
