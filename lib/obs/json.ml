type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec render ~indent ~level buf t =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | String s -> Buffer.add_string buf (escape_string s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          render ~indent ~level:(level + 1) buf item)
        items;
      newline ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          Buffer.add_string buf (escape_string k);
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          render ~indent ~level:(level + 1) buf v)
        fields;
      newline ();
      pad level;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  render ~indent:false ~level:0 buf t;
  Buffer.contents buf

let to_string_pretty t =
  let buf = Buffer.create 256 in
  render ~indent:true ~level:0 buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parser                                                              *)

exception Parse_error of int * string

let of_string input =
  let len = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "truncated unicode escape";
              let hex = String.sub input !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> fail "non-ascii unicode escapes unsupported"
              | None -> fail "bad unicode escape");
              pos := !pos + 4;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    (match peek () with
    | Some ('.' | 'e' | 'E') -> fail "only integers are supported"
    | _ -> ());
    match int_of_string_opt (String.sub input start (!pos - start)) with
    | Some i -> i
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected , or ] in array"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" key))
  | _ -> Error (Printf.sprintf "expected an object with field %S" key)

let to_int = function Int i -> Ok i | _ -> Error "expected an integer"
let to_str = function String s -> Ok s | _ -> Error "expected a string"
let to_list = function List l -> Ok l | _ -> Error "expected an array"
let to_bool = function Bool b -> Ok b | _ -> Error "expected a boolean"

let ( let* ) = Result.bind

let map_m f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with
        | Ok y -> go (y :: acc) rest
        | Error e -> Error e)
  in
  go [] l
