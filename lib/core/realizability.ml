open Lcp_graph
open Lcp_local

type subgraph = { views : View.t array; edges : (int * int) list }

let of_neighborhood (nbhd : Neighborhood.t) indices =
  let views = Array.of_list (List.map (Neighborhood.view nbhd) indices) in
  let pos = Hashtbl.create (List.length indices) in
  List.iteri (fun p i -> Hashtbl.replace pos i p) indices;
  let edges =
    List.filter_map
      (fun (a, b) ->
        match (Hashtbl.find_opt pos a, Hashtbl.find_opt pos b) with
        | Some x, Some y -> Some (x, y)
        | _ -> None)
      (Graph.edges nbhd.Neighborhood.graph)
  in
  { views; edges }

let walk_subgraph (nbhd : Neighborhood.t) walk =
  let views = Array.of_list (List.map (Neighborhood.view nbhd) walk) in
  let m = Array.length views in
  let edges = List.init m (fun i -> (i, (i + 1) mod m)) in
  { views; edges }

let interior mu u = View.distance mu u < mu.View.radius

let compatible mu1 u mu2 =
  View.id mu1 u = View.center_id mu2
  && begin
       let m1 = View.size mu1 in
       let rec go w1 =
         if w1 = m1 then true
         else if not (interior mu1 w1) then go (w1 + 1)
         else
           match View.find_by_id mu2 (View.id mu1 w1) with
           | Some w2 when interior mu2 w2 ->
               View.equal (View.subview1 mu1 w1) (View.subview1 mu2 w2)
               && go (w1 + 1)
           | Some _ | None -> go (w1 + 1)
       in
       go 0
     end

let ids_of h =
  Array.to_list h.views
  |> List.concat_map (fun v -> Array.to_list v.View.ids)
  |> List.sort_uniq Stdlib.compare

let occurrences h i =
  let acc = ref [] in
  Array.iteri
    (fun p v -> if View.find_by_id v i <> None then acc := p :: !acc)
    h.views;
  List.rev !acc

type assignment = (int * View.t) list

let realizable ?(pool = []) h =
  let center_views = Array.to_list h.views in
  let candidates_for i =
    (* views centered at id i: those of H take precedence (and must be
       unique when present), then the external pool *)
    let centered vs = List.filter (fun v -> View.center_id v = i) vs in
    let in_h = List.sort_uniq View.compare (centered center_views) in
    match in_h with
    | [ v ] -> [ v ]
    | [] -> List.sort_uniq View.compare (centered pool)
    | _ :: _ :: _ -> [] (* two distinct centered views on the same id *)
  in
  let choose i =
    let occs = occurrences h i in
    let works cand =
      List.for_all
        (fun p ->
          let mu = h.views.(p) in
          match View.find_by_id mu i with
          | Some u -> compatible mu u cand
          | None -> true)
        occs
    in
    List.find_opt works (candidates_for i)
  in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | i :: rest -> (
        match choose i with
        | Some v -> go ((i, v) :: acc) rest
        | None -> None)
  in
  go [] (ids_of h)

type realization = {
  instance : Instance.t;
  node_of_id : (int * int) list;
  warnings : string list;
}

let realize (assignment : assignment) =
  let warnings = ref [] in
  (* collect, across every view, the facts about each identifier *)
  let label_of : (int, string) Hashtbl.t = Hashtbl.create 32 in
  let port_of : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let edge_set : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let conflict = ref None in
  let record_label i l =
    match Hashtbl.find_opt label_of i with
    | Some l' when l' <> l ->
        conflict := Some (Printf.sprintf "label conflict at id %d (%S vs %S)" i l' l)
    | Some _ -> ()
    | None -> Hashtbl.replace label_of i l
  in
  let record_port i j p =
    match Hashtbl.find_opt port_of (i, j) with
    | Some p' when p' <> p ->
        conflict :=
          Some (Printf.sprintf "port conflict at id %d toward %d (%d vs %d)" i j p' p)
    | Some _ -> ()
    | None -> Hashtbl.replace port_of (i, j) p
  in
  let assigned_ids = List.map fst assignment in
  List.iter
    (fun (i, mu) ->
      if View.center_id mu <> i then
        conflict := Some (Printf.sprintf "view for id %d is centered elsewhere" i);
      let g = mu.View.graph in
      Graph.iter_edges
        (fun a b ->
          let ia = View.id mu a and ib = View.id mu b in
          Hashtbl.replace edge_set (min ia ib, max ia ib) ();
          record_port ia ib (View.port_of mu a b);
          record_port ib ia (View.port_of mu b a))
        g;
      for u = 0 to View.size mu - 1 do
        (* the label of an id is authoritative in its own centered view;
           other views must agree when they claim one *)
        record_label (View.id mu u) (View.label mu u)
      done)
    assignment;
  match !conflict with
  | Some msg -> Error msg
  | None -> (
      let all_ids =
        Hashtbl.fold (fun i _ acc -> i :: acc) label_of []
        |> List.sort_uniq Stdlib.compare
      in
      let n = List.length all_ids in
      let node_of = Hashtbl.create n in
      List.iteri (fun v i -> Hashtbl.replace node_of i v) all_ids;
      let node i = Hashtbl.find node_of i in
      let edges =
        Hashtbl.fold (fun (i, j) () acc -> (node i, node j) :: acc) edge_set []
      in
      let graph = Graph.of_edges n edges in
      (* assemble ports; where the recorded numbers do not form a legal
         1..d(v) assignment (fringe nodes whose edges were truncated),
         compress them order-preservingly and warn *)
      let ports =
        Array.init n (fun v ->
            let i = List.nth all_ids v in
            let recorded =
              List.rev
                (Graph.fold_neighbors
                   (fun w acc ->
                     let j = List.nth all_ids w in
                     ( Option.value ~default:max_int
                         (Hashtbl.find_opt port_of (i, j)),
                       w )
                     :: acc)
                   graph v [])
            in
            let sorted = List.sort Stdlib.compare recorded in
            let d = Graph.degree graph v in
            let legal =
              List.for_all (fun (p, _) -> p >= 1 && p <= d) sorted
              && List.length (List.sort_uniq Stdlib.compare (List.map fst sorted)) = d
            in
            if not legal then
              warnings :=
                Printf.sprintf "ports of id %d compressed order-preservingly" i
                :: !warnings;
            Array.of_list (List.map snd sorted))
      in
      let ids_arr = Array.of_list all_ids in
      let bound =
        List.fold_left
          (fun acc (_, mu) -> max acc mu.View.id_bound)
          (Array.fold_left max 1 ids_arr)
          assignment
      in
      let labels =
        Array.init n (fun v -> Hashtbl.find label_of (List.nth all_ids v))
      in
      try
        let instance =
          Instance.make graph ~ports
            ~ids:(Ident.of_array ~bound ids_arr)
            ~labels
        in
        Ok
          {
            instance;
            node_of_id = List.map (fun i -> (i, node i)) assigned_ids;
            warnings = List.rev !warnings;
          }
      with Invalid_argument msg -> Error msg)

let centers_accepted dec h realization =
  let center_ids =
    Array.to_list h.views |> List.map View.center_id |> List.sort_uniq Stdlib.compare
  in
  let verdicts = Decoder.run dec realization.instance in
  List.for_all
    (fun i ->
      match List.assoc_opt i realization.node_of_id with
      | Some v -> verdicts.(v)
      | None -> false)
    center_ids

let lemma_5_1 dec ?pool h =
  match realizable ?pool h with
  | None -> Error "subgraph is not realizable"
  | Some assignment -> (
      match realize assignment with
      | Error e -> Error e
      | Ok realization ->
          if centers_accepted dec h realization then Ok realization
          else Error "glued instance does not accept all centers of H")
