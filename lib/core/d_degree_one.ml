open Lcp_graph
open Lcp_local

let bot = "B"
let top = "T"

type cert = Bot | Top | Color of int

let parse = function
  | "B" -> Some Bot
  | "T" -> Some Top
  | "0" -> Some (Color 0)
  | "1" -> Some (Color 1)
  | _ -> None

let accepts view =
  let neighbor_certs =
    List.map (fun (w, _, _) -> parse (View.label view w)) (View.center_neighbors view)
  in
  match parse (View.center_label view) with
  | None -> false
  | Some _ when List.exists Option.is_none neighbor_certs -> false
  | Some mine -> (
      let neighbors = List.map Option.get neighbor_certs in
      match mine with
      | Bot ->
          (* rule 1: degree one, unique neighbor labeled top *)
          (match neighbors with [ Top ] -> true | _ -> false)
      | Top ->
          (* rule 2: exactly one bot neighbor; the rest share one color *)
          let bots = List.filter (fun c -> c = Bot) neighbors in
          let colors =
            List.filter_map (function Color c -> Some c | Bot | Top -> None) neighbors
          in
          List.length bots = 1
          && List.length colors = List.length neighbors - 1
          && List.sort_uniq Stdlib.compare colors |> List.length <= 1
      | Color mine ->
          (* rule 3: at most one top neighbor; all others carry the
             opposite color *)
          let tops = List.filter (fun c -> c = Top) neighbors in
          let rest = List.filter (fun c -> c <> Top) neighbors in
          List.length tops <= 1
          && List.for_all
               (function Color c -> c = 1 - mine | Bot | Top -> false)
               rest)

let decoder =
  Decoder.make ~port_invariant:true ~name:"degree-one" ~radius:1
    ~anonymous:true accepts

let prover (inst : Instance.t) =
  let g = inst.Instance.graph in
  match Coloring.two_color g with
  | None -> None
  | Some colors -> (
      let leaf =
        Graph.fold_nodes
          (fun v acc -> if acc = None && Graph.degree g v = 1 then Some v else acc)
          g None
      in
      match leaf with
      | None -> None (* outside the promise class H1 *)
      | Some u ->
          let v =
            assert (Graph.degree g u = 1);
            Graph.nth_neighbor g u 0
          in
          let lab =
            Array.mapi
              (fun x c ->
                if x = u then bot else if x = v then top else string_of_int c)
              colors
          in
          Some lab)

let alphabet = [ bot; top; "0"; "1"; Decoder.junk ]

let suite =
  {
    Decoder.dec = decoder;
    promise = (fun g -> Graph.order g > 0 && Graph.min_degree g = 1);
    prover;
    adversary_alphabet = (fun _ -> alphabet);
    cert_bits = (fun _ -> 2);
  }
