(** The accepting neighborhood graph [V(D, n)] (paper Sec. 3).

    Nodes are accepting views of the decoder on labeled yes-instances
    (up to the view-equality notion matching the decoder: identified for
    general decoders, anonymous for anonymous ones); edges join
    yes-instance-compatible views — views realized at adjacent nodes of
    one unanimously accepted yes-instance.

    Following the hiding definition (Sec. 2.4), we populate the graph
    from instances on which the decoder accepts {e unanimously} — those
    are exactly the instances the hiding game is played on, and the
    paper's own Figures 3–6 witnesses are of this kind.

    [Lemma 3.1]: the construction is a terminating enumeration; here the
    enumeration domain is supplied explicitly, either as a hand-picked
    family (as in the paper's hiding proofs) or exhaustively via
    {!exhaustive_family}. Any family yields a {e subgraph} of the true
    [V(D, n)], which is sound for hiding verdicts (an odd cycle in a
    subgraph is an odd cycle in the full graph). *)

open Lcp_graph
open Lcp_local

type mode = Identified | Order_invariant | Anonymous

type t = {
  decoder : Decoder.t;
  mode : mode;
  view_radius : int;  (** radius of the views below *)
  views : View.t array;  (** one representative per equivalence class *)
  graph : Graph.t;  (** yes-instance compatibility on view indices *)
  sources : (int * int) list array;
      (** per view, the (instance index, node) pairs it was seen at *)
  loops : int list;
      (** view classes that occur at two {e adjacent} nodes of one
          accepted instance: self-loops of the neighborhood graph. The
          paper allows loops precisely here; a looped view class makes
          the graph non-k-colorable for every k (no extractor can give
          adjacent equal views different colors). *)
}

val key_of_mode : mode -> View.t -> string

val default_mode : Decoder.t -> mode
(** [Anonymous] for anonymous decoders, [Identified] otherwise. *)

val build :
  ?mode:mode ->
  ?yes:(Graph.t -> bool) ->
  ?view_radius:int ->
  Decoder.t ->
  Instance.t list ->
  t
(** Builds [V(D, ·)] from the unanimously-accepted instances of the
    list (others are skipped, as are instances whose graph fails the
    [yes] predicate — only yes-instances of the language contribute;
    the default language is 2-col, i.e. [yes] = bipartiteness).

    [view_radius] (default: the decoder's radius) sets the radius of
    the views forming the graph's nodes. Passing a {e larger} radius
    asks the Lemma 3.2 question against stronger extractors: an
    [r']-round algorithm can extract a coloring iff the radius-[r']
    neighborhood graph is colorable. *)

val order : t -> int
val size : t -> int

val view : t -> int -> View.t

val find : t -> View.t -> int option
(** Index of the class of the given view, if present. *)

val is_k_colorable : t -> k:int -> bool
(** False whenever a self-loop exists, regardless of [k]. *)

val odd_cycle : t -> int list option
(** An odd closed walk of view indices when the graph is not
    2-colorable: a single looped view (length 1) when one exists,
    otherwise an odd cycle. *)

val two_coloring : t -> int array option

val exhaustive_family :
  Decoder.suite ->
  graphs:Graph.t list ->
  ?ports:[ `Canonical | `All ] ->
  ?ids:[ `Canonical | `Canonical_bound of int | `All of int ] ->
  ?cfg:Run_cfg.t ->
  unit ->
  Instance.t list
(** All unanimously-accepted labeled yes-instances over the given
    graphs: bipartite promise-class graphs only, crossed with port
    assignments, identifier assignments ([`All bound] enumerates all
    injective assignments into [1..bound]; [`Canonical_bound b] pins
    the advertised N so views from graphs of different orders stay
    comparable) and {e all} accepted labelings over the suite's
    adversary alphabet. Exponential — tiny graphs only. A [cfg] with
    [jobs > 1] expands the (graph, ports, ids) choices on the
    {!Lcp_engine.Pool} domain pool; no [cfg] means sequential. The
    family and its order are independent of [jobs]. *)

val to_dot : t -> string

val pp_summary : Format.formatter -> t -> unit
