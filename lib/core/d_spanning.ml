open Lcp_graph
open Lcp_local

type cert = { color : int; root : int; dist : int }

let parse s =
  match Certificate.fields s with
  | [ c; r; d ] -> (
      match
        (Certificate.int_field c, Certificate.int_field r, Certificate.int_field d)
      with
      | Some color, Some root, Some dist when color <= 1 && root >= 1 ->
          Some { color; root; dist }
      | _ -> None)
  | _ -> None

let accepts view =
  match parse (View.center_label view) with
  | None -> false
  | Some mine -> (
      let neighbor_certs =
        List.map
          (fun (w, _, _) -> parse (View.label view w))
          (View.center_neighbors view)
      in
      if List.exists Option.is_none neighbor_certs then false
      else
        let neighbors = List.map Option.get neighbor_certs in
        let proper = List.for_all (fun c -> c.color <> mine.color) neighbors in
        let same_root = List.for_all (fun c -> c.root = mine.root) neighbors in
        (* in a bipartite graph every edge crosses BFS layers, so true
           distances of neighbors differ by exactly one *)
        let layered = List.for_all (fun c -> abs (c.dist - mine.dist) = 1) neighbors in
        let rooted =
          if mine.dist = 0 then View.center_id view = mine.root
          else List.exists (fun c -> c.dist = mine.dist - 1) neighbors
        in
        proper && same_root && layered && rooted)

let decoder =
  Decoder.make ~port_invariant:true ~name:"spanning-2-col" ~radius:1
    ~anonymous:false accepts

let prover (inst : Instance.t) =
  let g = inst.Instance.graph in
  match Coloring.two_color g with
  | None -> None
  | Some colors ->
      let n = Graph.order g in
      let lab = Array.make n "" in
      List.iter
        (fun comp ->
          let root = List.hd comp in
          let dist = Metrics.bfs_dist g root in
          let root_id = Ident.id inst.Instance.ids root in
          (* align colors with dist parity per component: the BFS
             2-coloring already alternates, but its phase may differ from
             [colors]; recompute colors from dist parity plus the root's
             color so that distances and colors agree *)
          let base = colors.(root) in
          List.iter
            (fun v ->
              let c = (base + dist.(v)) mod 2 in
              lab.(v) <- Printf.sprintf "%d:%d:%d" c root_id dist.(v))
            comp)
        (Graph.components g);
      Some lab

let adversary_alphabet (inst : Instance.t) =
  let n = Instance.order inst in
  let ids = Array.to_list inst.Instance.ids.Ident.ids in
  let certs = ref [ Decoder.junk ] in
  List.iter
    (fun root ->
      for color = 0 to 1 do
        for dist = 0 to n - 1 do
          certs := Printf.sprintf "%d:%d:%d" color root dist :: !certs
        done
      done)
    ids;
  !certs

let suite =
  {
    Decoder.dec = decoder;
    promise = Coloring.is_bipartite;
    prover;
    adversary_alphabet;
    cert_bits =
      (fun inst ->
        let n = Instance.order inst in
        let bound = inst.Instance.ids.Ident.bound in
        Certificate.bits_of_parts
          [ 1; Certificate.bits_for_id ~bound; Certificate.bits_for_int ~max:(max 1 (n - 1)) ]);
  }
