open Lcp_graph
open Lcp_local

type t = {
  name : string;
  radius : int;
  anonymous : bool;
  port_invariant : bool;
  accepts : View.t -> bool;
}

let make ?(port_invariant = false) ~name ~radius ~anonymous accepts =
  { name; radius; anonymous; port_invariant; accepts }

let run t inst = Array.map t.accepts (View.extract_all inst ~r:t.radius)

let accepts_all t inst = Array.for_all (fun b -> b) (run t inst)

let accepting_nodes t inst =
  let verdicts = run t inst in
  Array.to_list (Array.mapi (fun v ok -> (v, ok)) verdicts)
  |> List.filter_map (fun (v, ok) -> if ok then Some v else None)

let accepted_subgraph t inst =
  Graph.induced inst.Instance.graph (accepting_nodes t inst)

let as_local_algo t =
  Local_algo.make ~name:t.name ~radius:t.radius t.accepts

type contract = {
  declared_radius : int;
  declared_anonymous : bool;
  declared_port_invariant : bool;
}

let contract ?radius ?port_invariant t =
  let declared_radius = Option.value radius ~default:t.radius in
  if declared_radius < 1 || declared_radius > t.radius then
    invalid_arg "Decoder.contract: declared radius outside [1; view radius]";
  {
    declared_radius;
    declared_anonymous = t.anonymous;
    declared_port_invariant =
      Option.value port_invariant ~default:t.port_invariant;
  }

type suite = {
  dec : t;
  promise : Graph.t -> bool;
  prover : Instance.t -> Labeling.t option;
  adversary_alphabet : Instance.t -> string list;
  cert_bits : Instance.t -> int;
}

let certify suite inst =
  Option.map (Instance.with_labels inst) (suite.prover inst)

let junk = "junk"
