(** Generic certificate search: the computational stand-in for the
    paper's all-powerful prover.

    The honest provers of the individual decoders construct certificates
    exactly as the completeness proofs do; this module instead {e
    searches} the certificate space, which is what we need to check
    statements of the form "no certificate assignment is accepted"
    (soundness) or "every accepted assignment has property P" (strong
    soundness). *)

open Lcp_local

val find_accepted :
  Decoder.t -> alphabet:string list -> Instance.t -> Labeling.t option
(** Some labeling over the alphabet that every node accepts, if one
    exists. Backtracking with ball-coverage pruning: a partial labeling
    is cut as soon as some node whose entire radius-r ball is already
    labeled rejects. *)

val search_accepted :
  Decoder.t -> alphabet:string list -> Instance.t -> Labeling.t option * int
(** {!find_accepted} plus a work tally: the number of partial labelings
    the backtracking search examined (prune invocations) before
    accepting or exhausting the space. The search is sequential per
    instance, so the tally is deterministic — it feeds the engine's
    [labelings_checked] counter. *)

val iter_accepted :
  Decoder.t -> alphabet:string list -> Instance.t -> (Labeling.t -> unit) -> unit
(** All unanimously accepted labelings (the callback receives a fresh
    copy each time). *)

val count_accepted : Decoder.t -> alphabet:string list -> Instance.t -> int

val iter_labelings_pruned :
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  reject_covered:(int -> bool) ->
  (Labeling.t -> unit) ->
  unit
(** Lower-level driver: iterate complete labelings, cutting branches
    according to covered-node verdicts. [reject_covered v] decides
    whether a covered node [v] rejecting should cut the branch (pass
    [fun _ -> true] for unanimous acceptance search, [fun _ -> false]
    for full enumeration). *)
