(** Generic certificate search: the computational stand-in for the
    paper's all-powerful prover.

    The honest provers of the individual decoders construct certificates
    exactly as the completeness proofs do; this module instead {e
    searches} the certificate space, which is what we need to check
    statements of the form "no certificate assignment is accepted"
    (soundness) or "every accepted assignment has property P" (strong
    soundness).

    The search backtracks over the alphabet in {e ball-completion
    order}: nodes are assigned so that some node's radius-r ball is
    fully labeled as early as possible, and a branch is cut as soon as
    a covered node rejects. Covered verdicts come from per-node
    acceptance tables ({!Lcp_engine.Eval_cache}) — each (node,
    ball-labeling) pair is decoded once and looked up thereafter. Every
    entry point takes an optional {!Run_cfg.t}: [cfg.eval_cache =
    false] forces the direct re-extraction path (the oracle the tables
    are validated against — verdicts, witnesses and tallies are
    identical), and when a cfg is present the search reports
    [eval_cache_hits] / [eval_cache_misses] into its metrics. Searches
    are sequential per instance, so both counters and tallies are
    deterministic and independent of [cfg.jobs]. *)

open Lcp_local

val find_accepted :
  ?cfg:Run_cfg.t ->
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  Labeling.t option
(** Some labeling over the alphabet that every node accepts, if one
    exists. Backtracking with ball-coverage pruning: a partial labeling
    is cut as soon as some node whose entire radius-r ball is already
    labeled rejects. *)

val search_accepted :
  ?cfg:Run_cfg.t ->
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  Labeling.t option * int
(** {!find_accepted} plus a work tally: the number of partial labelings
    the backtracking search examined (prune invocations) before
    accepting or exhausting the space. The search is sequential per
    instance, so the tally is deterministic — it feeds the engine's
    [labelings_checked] counter — and identical with the acceptance
    tables on or off. *)

val iter_accepted :
  ?cfg:Run_cfg.t ->
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  (Labeling.t -> unit) ->
  unit
(** All unanimously accepted labelings (the callback receives a fresh
    copy each time), in ball-completion search order. *)

val count_accepted :
  ?cfg:Run_cfg.t -> Decoder.t -> alphabet:string list -> Instance.t -> int

val acquire_cache :
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  Lcp_engine.Eval_cache.lease
(** Lease an acceptance-table cache for this (decoder, alphabet,
    instance) triple through {!Lcp_engine.Eval_cache.acquire}, keyed
    by everything a verdict depends on besides the labels (decoder
    name and radius, alphabet, graph, identifiers, ports). When the
    process has enabled cache sharing (the serve daemon does), a
    repeated search over the same triple reuses the already-populated
    tables. Callers must {!Lcp_engine.Eval_cache.release} the lease. *)

val count_eval_stats :
  Run_cfg.t option -> Lcp_engine.Eval_cache.lease option -> unit
(** Report a lease's [(hits, misses)] delta into the cfg's metrics as
    [eval_cache_hits] / [eval_cache_misses] (plus
    [eval_cache_shared_hits] when the lease was warm), materializing
    all three counters (at 0) whenever a cfg is present so memoized,
    direct and warm runs serialize the same key set. Shared with
    {!Checker}'s exhaustive paths; no-op without a cfg. *)

val iter_labelings_pruned :
  ?cfg:Run_cfg.t ->
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  reject_covered:(int -> bool) ->
  (Labeling.t -> unit) ->
  unit
(** Lower-level driver: iterate complete labelings, cutting branches
    according to covered-node verdicts. [reject_covered v] decides
    whether a covered node [v] rejecting should cut the branch (pass
    [fun _ -> true] for unanimous acceptance search, [fun _ -> false]
    for full enumeration). *)
