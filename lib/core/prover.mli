(** Generic certificate search: the computational stand-in for the
    paper's all-powerful prover.

    The honest provers of the individual decoders construct certificates
    exactly as the completeness proofs do; this module instead {e
    searches} the certificate space, which is what we need to check
    statements of the form "no certificate assignment is accepted"
    (soundness) or "every accepted assignment has property P" (strong
    soundness).

    The search backtracks over the alphabet in {e ball-completion
    order}: nodes are assigned so that some node's radius-r ball is
    fully labeled as early as possible, and a branch is cut as soon as
    a covered node rejects. Covered verdicts come from per-node
    acceptance tables ({!Lcp_engine.Eval_cache}) — each (node,
    ball-labeling) pair is decoded once and looked up thereafter. Every
    entry point takes an optional {!Run_cfg.t}: [cfg.eval_cache =
    false] forces the direct re-extraction path (the oracle the tables
    are validated against — verdicts, witnesses and tallies are
    identical), and when a cfg is present the search reports
    [eval_cache_hits] / [eval_cache_misses] into its metrics. Searches
    are sequential per instance, so both counters and tallies are
    deterministic and independent of [cfg.jobs].

    {!search_accepted} / {!find_accepted} additionally quotient the
    space by the graph's automorphism group when [cfg.orbit_prune]
    holds (the default) and the decoder's verdicts are Aut-invariant
    (anonymous and port-invariant, order <= {!Lcp_engine.Canon.max_order}):
    per-automorphism prefix-minimality programs from
    {!Lcp_engine.Auto.prefix_programs} cut a branch as soon as some
    automorphism provably sends every completion of the current
    partial labeling to a lexicographically smaller one.
    The search visits labelings in lex order, so its first accepted
    labeling is automatically the minimum of its (Aut-closed) accepted
    set — witnesses and verdicts are bit-identical to the direct path
    ([cfg.orbit_prune = false], the oracle); only the work tally
    shrinks, deterministically per setting, with the cut branches
    reported as [orbit_pruned_branches]. {!iter_accepted} /
    {!count_accepted} enumerate {e all} accepted labelings and are
    never orbit-pruned. *)

open Lcp_local

val find_accepted :
  ?cfg:Run_cfg.t ->
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  Labeling.t option
(** Some labeling over the alphabet that every node accepts, if one
    exists. Backtracking with ball-coverage pruning: a partial labeling
    is cut as soon as some node whose entire radius-r ball is already
    labeled rejects. *)

val search_accepted :
  ?cfg:Run_cfg.t ->
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  Labeling.t option * int
(** {!find_accepted} plus a work tally: the number of partial labelings
    the backtracking search examined (prune invocations) before
    accepting or exhausting the space. The search is sequential per
    instance, so the tally is deterministic — it feeds the engine's
    [labelings_checked] counter — and identical with the acceptance
    tables on or off. Orbit pruning (see the module doc) shrinks the
    tally on symmetric graphs: it is deterministic {e per
    orbit-prune setting}, equal whenever the graph is rigid or the
    decoder ineligible, and never changes the witness. *)

val iter_accepted :
  ?cfg:Run_cfg.t ->
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  (Labeling.t -> unit) ->
  unit
(** All unanimously accepted labelings (the callback receives a fresh
    copy each time), in ball-completion search order. *)

val count_accepted :
  ?cfg:Run_cfg.t -> Decoder.t -> alphabet:string list -> Instance.t -> int

val orbit_eligible : Decoder.t -> Instance.t -> bool
(** Whether the automorphism-orbit quotient is sound for this decoder
    on this instance: verdicts must be Aut-invariant (the decoder is
    anonymous {e and} port-invariant — then a verdict depends only on
    the labeled isomorphism type of the view) and the order must not
    exceed {!Lcp_engine.Canon.max_order}. Shared with {!Checker}'s
    exhaustive strong-soundness quotient. *)

val acquire_cache :
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  Lcp_engine.Eval_cache.lease
(** Lease an acceptance-table cache for this (decoder, alphabet,
    instance) triple through {!Lcp_engine.Eval_cache.acquire}, keyed
    by everything a verdict depends on besides the labels (decoder
    name and radius, alphabet, graph, identifiers, ports). When the
    process has enabled cache sharing (the serve daemon does), a
    repeated search over the same triple reuses the already-populated
    tables. Callers must {!Lcp_engine.Eval_cache.release} the lease. *)

val count_eval_stats :
  Run_cfg.t option -> Lcp_engine.Eval_cache.lease option -> unit
(** Report a lease's [(hits, misses)] delta into the cfg's metrics as
    [eval_cache_hits] / [eval_cache_misses] (plus
    [eval_cache_shared_hits] when the lease was warm), materializing
    all three counters (at 0) whenever a cfg is present so memoized,
    direct and warm runs serialize the same key set. Shared with
    {!Checker}'s exhaustive paths; no-op without a cfg. *)

val iter_labelings_pruned :
  ?cfg:Run_cfg.t ->
  Decoder.t ->
  alphabet:string list ->
  Instance.t ->
  reject_covered:(int -> bool) ->
  (Labeling.t -> unit) ->
  unit
(** Lower-level driver: iterate complete labelings, cutting branches
    according to covered-node verdicts. [reject_covered v] decides
    whether a covered node [v] rejecting should cut the branch (pass
    [fun _ -> true] for unanimous acceptance search, [fun _ -> false]
    for full enumeration). *)
