open Lcp_graph
open Lcp_local

type cert = Bot | Top | Color of int

let parse ~k = function
  | "B" -> Some Bot
  | "T" -> Some Top
  | s -> (
      match Certificate.int_field s with
      | Some c when c < k -> Some (Color c)
      | _ -> None)

let accepts ~k view =
  let neighbor_certs =
    List.map
      (fun (w, _, _) -> parse ~k (View.label view w))
      (View.center_neighbors view)
  in
  match parse ~k (View.center_label view) with
  | None -> false
  | Some _ when List.exists Option.is_none neighbor_certs -> false
  | Some mine -> (
      let neighbors = List.map Option.get neighbor_certs in
      match mine with
      | Bot -> (match neighbors with [ Top ] -> true | _ -> false)
      | Top ->
          let bots = List.filter (fun c -> c = Bot) neighbors in
          let colors =
            List.filter_map (function Color c -> Some c | Bot | Top -> None) neighbors
          in
          List.length bots = 1
          && List.length colors = List.length neighbors - 1
          (* the colored neighbors must leave a color free for the top
             node itself: at most k - 1 distinct values *)
          && List.length (List.sort_uniq Stdlib.compare colors) <= k - 1
      | Color mine ->
          let tops = List.filter (fun c -> c = Top) neighbors in
          let rest = List.filter (fun c -> c <> Top) neighbors in
          List.length tops <= 1
          && List.for_all
               (function Color c -> c <> mine | Bot | Top -> false)
               rest)

let decoder ~k =
  Decoder.make ~port_invariant:true
    ~name:(Printf.sprintf "hidden-leaf-%d-col" k)
    ~radius:1 ~anonymous:true (accepts ~k)

let prover ~k (inst : Instance.t) =
  let g = inst.Instance.graph in
  match Coloring.k_color g ~k with
  | None -> None
  | Some colors -> (
      let leaf =
        Graph.fold_nodes
          (fun v acc -> if acc = None && Graph.degree g v = 1 then Some v else acc)
          g None
      in
      match leaf with
      | None -> None
      | Some u ->
          let v =
            assert (Graph.degree g u = 1);
            Graph.nth_neighbor g u 0
          in
          Some
            (Array.mapi
               (fun x c ->
                 if x = u then "B" else if x = v then "T" else string_of_int c)
               colors))

let alphabet ~k = ("B" :: "T" :: List.init k string_of_int) @ [ Decoder.junk ]

let suite ~k =
  {
    Decoder.dec = decoder ~k;
    promise =
      (fun g ->
        Graph.order g > 0 && Graph.min_degree g = 1 && Coloring.is_k_colorable g ~k);
    prover = prover ~k;
    adversary_alphabet = (fun _ -> alphabet ~k);
    cert_bits = (fun _ -> Certificate.bits_for_int ~max:(k + 1));
  }
