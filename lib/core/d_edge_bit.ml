open Lcp_graph
open Lcp_local

let parse = function "0" -> Some 0 | "1" -> Some 1 | _ -> None

(* Satisfiability of the window system: variables are the visible
   edges; [pins] fixes some of them; [diffs] are disequalities between
   edge pairs (alternation at nodes with both edges visible). Brute
   force - a radius-2 window on a cycle has at most 4 visible edges. *)
let satisfiable ~edges ~pins ~diffs =
  let m = List.length edges in
  let index = Hashtbl.create m in
  List.iteri (fun i e -> Hashtbl.replace index e i) edges;
  let idx e = Hashtbl.find index e in
  let rec go assignment i =
    if i = m then
      List.for_all (fun (e, c) -> assignment.(idx e) = c) pins
      && List.for_all (fun (e1, e2) -> assignment.(idx e1) <> assignment.(idx e2)) diffs
    else
      List.exists
        (fun c ->
          assignment.(i) <- c;
          go assignment (i + 1))
        [ 0; 1 ]
  in
  m <= 20 && go (Array.make m 0) 0

let accepts view =
  let g = view.View.graph in
  let interior u = View.full_degree_known view u in
  (* the center and every interior node must look like cycle nodes *)
  View.center_degree view = 2
  && List.for_all
       (fun u -> (not (interior u)) || Graph.degree g u = 2)
       (Graph.nodes g)
  && begin
       let bits =
         List.map (fun u -> parse (View.label view u)) (Graph.nodes g)
       in
       if List.exists Option.is_none bits then false
       else begin
         let bit = Array.of_list (List.map Option.get bits) in
         let edges = Graph.edges g in
         (* pins: a node whose port-1 edge is visible publishes its color *)
         let pins =
           List.concat_map
             (fun (a, b) ->
               let p1 =
                 if View.port_of view a b = 1 then [ ((a, b), bit.(a)) ] else []
               in
               let p2 =
                 if View.port_of view b a = 1 then [ ((a, b), bit.(b)) ] else []
               in
               p1 @ p2)
             edges
         in
         (* alternation at every node with both edges visible *)
         let diffs =
           List.filter_map
             (fun u ->
               if not (interior u) then None
               else if Graph.degree g u = 2 then begin
                 let x = Graph.nth_neighbor g u 0
                 and y = Graph.nth_neighbor g u 1 in
                 let key a b = (min a b, max a b) in
                 Some (key u x, key u y)
               end
               else None)
             (Graph.nodes g)
         in
         let keyed_edges = List.map (fun (a, b) -> (min a b, max a b)) edges in
         let keyed_pins = List.map (fun ((a, b), c) -> ((min a b, max a b), c)) pins in
         satisfiable ~edges:keyed_edges ~pins:keyed_pins ~diffs
       end
     end

let decoder = Decoder.make ~name:"edge-bit" ~radius:2 ~anonymous:true accepts

let prover (inst : Instance.t) =
  let g = inst.Instance.graph in
  if not (Graph.is_cycle g && Graph.order g mod 2 = 0) then None
  else begin
    let n = Graph.order g in
    let color_tbl = Hashtbl.create n in
    let edge_key u v = (min u v, max u v) in
    let rec walk prev cur idx =
      if idx = n then ()
      else begin
        let next =
          (* on a cycle every node has degree 2: step to the neighbor
             we did not come from *)
          if prev = -1 then Graph.nth_neighbor g cur 0
          else begin
            let a = Graph.nth_neighbor g cur 0 in
            if a = prev then Graph.nth_neighbor g cur 1 else a
          end
        in
        Hashtbl.replace color_tbl (edge_key cur next) (idx mod 2);
        walk cur next (idx + 1)
      end
    in
    walk (-1) 0 0;
    Some
      (Array.init n (fun v ->
           let w1 = Port.neighbor_at inst.Instance.ports v 1 in
           string_of_int (Hashtbl.find color_tbl (edge_key v w1))))
  end

let alphabet = [ "0"; "1"; Decoder.junk ]

let suite =
  {
    Decoder.dec = decoder;
    promise = (fun g -> Graph.is_cycle g && Graph.order g mod 2 = 0);
    prover;
    adversary_alphabet = (fun _ -> alphabet);
    cert_bits = (fun _ -> 1);
  }
