(** The decoder registry: every shipped LCP suite under its CLI key,
    bundled with its declared {!Decoder.contract}.

    One list feeds everything that enumerates decoders — the [lcp]
    front-end's suite lookup, the [Lcp_analysis] sanitizer sweep, and
    any future tooling — so a new decoder registered here is
    automatically lint-gated and CLI-reachable. *)

type entry = {
  key : string;  (** CLI name, e.g. ["degree-one"] *)
  suite : Decoder.suite;
  contract : Decoder.contract;  (** the claims the sanitizer enforces *)
}

val entry :
  ?radius:int -> ?port_invariant:bool -> string -> Decoder.suite -> entry
(** Build an entry whose contract derives from the suite's decoder (see
    {!Decoder.contract}); exposed so tests can register deliberately
    misbehaving decoders against chosen contracts. *)

val all : entry list
(** Every shipped decoder suite, in CLI listing order. *)

val keys : string list

val find : string -> entry option
