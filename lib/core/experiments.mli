(** The per-figure / per-theorem experiment drivers (DESIGN.md Sec. 3).

    Each function reproduces one artifact of the paper on concrete
    instances and returns a {!Report.t} whose rows compare the measured
    outcome against the paper's claim. [run_all] executes the full
    battery (E1–E20).

    Every experiment takes one {!Run_cfg.t} (defaulting to
    [Run_cfg.default]): its [jobs] field drives the {!Lcp_engine.Pool}
    width of the engine sweeps and exhaustive rows, [heavy] selects the
    larger search spaces, [seed] feeds the experiment's RNG, and its
    metrics registry collects counters and spans. Results are
    deterministic: randomized components restart from [Run_cfg.rng cfg]
    per experiment, and every verdict is independent of [jobs]. *)

val e1_forgetful : ?cfg:Run_cfg.t -> unit -> Report.t
(** Fig. 1 + Lemma 2.1: r-forgetful survey over graph families. *)

val e2_views : ?cfg:Run_cfg.t -> unit -> Report.t
(** Fig. 2: view extraction and visibility of fringe edges;
    yes-instance compatibility. *)

val e3_degree_one : ?cfg:Run_cfg.t -> unit -> Report.t
(** Lemma 4.1 + Figs. 3–4: the degree-one decoder battery. The
    soundness row sweeps {e every} connected non-bipartite
    isomorphism class on 6 nodes (5 when [cfg.heavy] is off) through
    {!Lcp_engine.Sweep}. *)

val e4_even_cycle : ?cfg:Run_cfg.t -> unit -> Report.t
(** Lemma 4.2 + Figs. 5–6: the even-cycle decoder battery, including
    the hidden-everywhere property. *)

val e5_union : ?cfg:Run_cfg.t -> unit -> Report.t
(** Theorem 1.1: the assembled anonymous union decoder. *)

val e6_shatter : ?cfg:Run_cfg.t -> unit -> Report.t
(** Theorem 1.3: the shatter-point decoder battery. *)

val e7_watermelon : ?cfg:Run_cfg.t -> unit -> Report.t
(** Theorem 1.4: the watermelon decoder battery. [cfg.jobs]
    parallelizes the strong-soundness row and the 8-path
    certificate-family expansion over (identifier, port) choices. *)

val e8_extraction : ?cfg:Run_cfg.t -> unit -> Report.t
(** Lemma 3.2: colorable neighborhood graphs yield working extraction
    decoders for the two revealing baselines; the paper's decoders
    yield odd cycles instead. *)

val e9_realizability : ?cfg:Run_cfg.t -> unit -> Report.t
(** Sec. 5.1 + Lemma 5.1: compatibility, realizable odd view cycles,
    and the [G_bad] gluing violating strong soundness for a
    non-strongly-sound decoder. *)

val e10_lower_bound : ?cfg:Run_cfg.t -> unit -> Report.t
(** Lemmas 5.4–5.5 / Theorem 1.5 machinery on r-forgetful instances:
    edge expansions, walk repairs, and the contrapositive sanity check
    on the paper's decoders. *)

val e11_ramsey : ?cfg:Run_cfg.t -> unit -> Report.t
(** Lemma 6.2: decoder types, monochromatic identifier sets and the
    induced order-invariant decoder. *)

val e12_cert_sizes : ?cfg:Run_cfg.t -> unit -> Report.t
(** Certificate-size series for all decoders against their stated
    asymptotics. *)

val e13_sync : ?cfg:Run_cfg.t -> unit -> Report.t
(** Sec. 2.2: the message-passing simulator agrees with View.extract. *)

val e14_slocal : ?cfg:Run_cfg.t -> unit -> Report.t
(** Sec. 1 motivation: the Pi problem (3-color the certified region) in
    an SLOCAL simulator — revealing certificates admit an
    extraction-based SLOCAL(1) solution, hiding ones strand it. *)

val e15_quantified : ?cfg:Run_cfg.t -> unit -> Report.t
(** Sec. 2.4 future work: quantified hiding levels via exhaustive
    search over all radius-1 extractors. *)

val e16_hidden_leaf : ?cfg:Run_cfg.t -> unit -> Report.t
(** Sec. 1.3 general k: the hidden-leaf decoder battery at k = 2, 3. *)

val e17_decoder_space : ?cfg:Run_cfg.t -> unit -> Report.t
(** Exhaustive search over all 64 one-bit port-oblivious anonymous
    decoders: none is simultaneously complete, strong and hiding on
    even cycles — the Lemma 4.2 construction's use of ports is
    essential. *)

val e18_resilient : ?cfg:Run_cfg.t -> unit -> Report.t
(** Sec. 1.2 related work: the resilient-labeling wrapper survives
    certificate erasures and detects tampered backups. *)

val e19_extractor_radius : ?cfg:Run_cfg.t -> unit -> Report.t
(** Hiding pitted against extractors with a {e larger} radius than the
    decoder: the even-cycle construction keeps hiding until the
    extractor's ball nearly covers the ring. *)

val e20_edge_bit : ?cfg:Run_cfg.t -> unit -> Report.t
(** The round/size trade-off: one extra verification round admits a
    strong and hiding LCP on even cycles with single-bit certificates,
    which E17 proves impossible in one round. *)

val run_all : ?cfg:Run_cfg.t -> unit -> Report.t list
(** The full battery in order (E1–E20). Each experiment runs inside an
    [experiments/EN] span on [cfg], bumps the [experiments_run]
    counter, and emits its {!Report.summary_line} as sink progress. If
    [cfg] carries a deadline, experiments that have not started when it
    expires are skipped (with a progress note) rather than aborted
    mid-flight. *)
