(** Plain-text experiment reports shared by the CLI, the benchmarks and
    EXPERIMENTS.md. *)

type row = {
  label : string;
  value : string;  (** measured *)
  expected : string;  (** the paper's claim / expected shape *)
  ok : bool;
}

type t = {
  id : string;  (** experiment id, e.g. "E3" *)
  title : string;
  rows : row list;
}

val row : ?expected:string -> ?ok:bool -> string -> string -> row
(** Defaults: [expected = value] is not assumed; [expected = "-"],
    [ok = true]. *)

val check : string -> bool -> expected:string -> actual:string -> row
(** A row that passes iff the boolean holds. *)

val passed : t -> bool

val pp : Format.formatter -> t -> unit
val pp_all : Format.formatter -> t list -> unit

val to_markdown : t -> string
(** GitHub-flavored table for EXPERIMENTS.md. *)

val summary_line : t -> string

val to_json : t -> Json.t
(** [{ "id"; "title"; "passed"; "rows": [{ "label"; "measured";
    "expected"; "ok" }] }]. *)

val battery_schema_version : int

val battery_to_json : t list -> Json.t
(** The whole battery as one schema-versioned document:
    [{ "schema_version"; "total"; "passed"; "reports" }] — the payload
    of [lcp experiments --json]. *)
