(** Sampled certification runs on large (10^5..10^6-node) instances.

    The exhaustive machinery ({!Checker}, {!Hiding}) certifies every
    labeling of every graph class up to n = 8; this module is the
    complementary regime: one big seeded random instance, an honest
    prover completeness pass over a node sample, seeded adversarial
    soundness trials, and a sampled hiding probe — all through the
    standard {!Lcp_local.View.extract} observation path and
    {!Lcp_obs.Run_cfg} observability.

    Scale notes. The phases call [suite.promise], [suite.prover] and
    [suite.adversary_alphabet] on the full instance, so they are only
    as scalable as the decoder's own bundle: the k-coloring suites
    ({!D_trivial}, k = 2) run comfortably at 10^6 nodes (BFS prover,
    constant alphabet), while e.g. the spanning-tree suite materializes
    a per-id alphabet and is only meant for small sampled instances.

    Every tally is deterministic in [cfg.seed] and independent of
    [cfg.jobs]: work is fanned out over fixed-size chunks through
    {!Lcp_engine.Pool} and summed sequentially. *)

open Lcp_graph

type completeness = {
  instance : string;
      (** which yes-instance was certified: ["model graph"] when the
          sampled graph satisfies the promise itself, else
          ["bipartite double cover"] (see {!Builders.double_cover}) *)
  c_nodes : int;
  c_edges : int;
  evaluated : int;  (** sampled nodes whose verdict was computed *)
  accepted : int;  (** must equal [evaluated]; anything less is a bug *)
  c_wall_ns : int;
}

type soundness = {
  applicable : bool;
      (** [false] when the model graph satisfies the promise (it is a
          yes-instance, so adversarial rejection is not required) *)
  trials : int;
  rejected_trials : int;
  probes : int;  (** total node evaluations across all trials *)
  accepting_trials : int;
      (** trials in which {e every} node accepted an adversarial
          labeling — each one is a soundness-violation witness *)
  s_wall_ns : int;
}

type hiding = {
  pairs : int;
  structural_collisions : int;
      (** certificate-blanked anonymized keys equal, honest colors
          differ: structure alone cannot determine the color *)
  structural_matches : int;
      (** pairs with equal certificate-blanked keys (any colors) *)
  certified_collisions : int;
      (** keys equal {e with} certificates visible, colors differ:
          evidence the certified views hide the coloring. 0 for
          decoders whose certificates are the colors. *)
  h_wall_ns : int;
}

type report = {
  decoder : string;
  model : string;
  seed : int;
  nodes : int;
  edges : int;
  build_wall_ns : int;  (** stamped by the caller; 0 until then *)
  completeness : completeness option;
      (** [None] when no yes-instance is derivable (promise fails on
          both the graph and its double cover) or the deadline expired *)
  soundness : soundness option;  (** [None] only on deadline expiry *)
  hiding : hiding option;
  violations : int;  (** completeness + soundness violations, 0 = pass *)
}

val run :
  ?eval_nodes:int ->
  ?trials:int ->
  ?pairs:int ->
  cfg:Lcp_obs.Run_cfg.t ->
  decoder:string ->
  model:string ->
  Decoder.suite ->
  Graph.t ->
  report
(** [run ~cfg ~decoder ~model suite g] samples the three phases on the
    seeded instance [g]. [eval_nodes] (default 50_000) bounds the
    completeness sample, [trials] (default 8) the adversarial
    labelings, [pairs] (default 2_000) the hiding probes. Phases are
    skipped (reported as [None]) once [cfg]'s deadline has expired;
    within a phase the tallies are deadline-independent. Counters:
    [sample/completeness_evals], [sample/completeness_accepts],
    [sample/soundness_trials], [sample/soundness_rejected],
    [sample/soundness_probes], [sample/hiding_pairs],
    [sample/hiding_structural_collisions],
    [sample/hiding_certified_collisions], [sample/violations] — all
    identical for [jobs = 1] and [jobs = N]. *)

val with_build_wall_ns : report -> int -> report
(** Stamp the graph-construction wall time measured by the caller. *)

val schema_version : int

val report_to_json : report -> Lcp_obs.Json.t
(** Schema-versioned report, including derived [nodes_per_sec] /
    [edges_per_sec] / [probes_per_sec] rates and a [peak_rss_kb] note
    (VmHWM from /proc/self/status; null off Linux). *)
