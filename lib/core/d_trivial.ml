open Lcp_graph
open Lcp_local

let parse_color ~k s =
  match Certificate.int_field s with
  | Some c when c < k -> Some c
  | _ -> None

let accepts ~k view =
  match parse_color ~k (View.center_label view) with
  | None -> false
  | Some mine ->
      List.for_all
        (fun (w, _, _) ->
          match parse_color ~k (View.label view w) with
          | Some c -> c <> mine
          | None -> false)
        (View.center_neighbors view)

let decoder ~k =
  Decoder.make ~port_invariant:true
    ~name:(Printf.sprintf "trivial-%d-col" k)
    ~radius:1 ~anonymous:true (accepts ~k)

let prover ~k (inst : Instance.t) =
  Option.map
    (Array.map string_of_int)
    (Coloring.k_color inst.Instance.graph ~k)

let suite ~k =
  {
    Decoder.dec = decoder ~k;
    promise = (fun g -> Coloring.is_k_colorable g ~k);
    prover = prover ~k;
    adversary_alphabet =
      (fun _ -> List.init k string_of_int @ [ Decoder.junk ]);
    cert_bits = (fun _ -> Certificate.bits_for_int ~max:(k - 1));
  }
