open Lcp_graph
open Lcp_local

(* Every experiment takes one Run_cfg: its [jobs] drives the engine
   pool, [heavy] selects the expensive variants, [seed] feeds the
   per-experiment RNG ([Run_cfg.rng cfg] restarts the stream, so each
   experiment sees the historical fixed-seed sequence), and its metrics
   registry collects the battery's counters and spans. *)

let bool_row label ~expected_true actual =
  Report.check label (actual = expected_true)
    ~expected:(string_of_bool expected_true)
    ~actual:(string_of_bool actual)

let verdict_row label ~expect_pass verdict =
  let actual = Checker.is_pass verdict in
  let detail =
    match verdict with
    | Checker.Pass { checked } -> Printf.sprintf "pass (%d checks)" checked
    | Checker.Fail { detail; _ } -> "fail: " ^ detail
  in
  Report.check label (actual = expect_pass)
    ~expected:(if expect_pass then "pass" else "fail")
    ~actual:detail

(* ------------------------------------------------------------------ *)
(* E1: r-forgetfulness                                                  *)

let e1_forgetful ?(cfg = Run_cfg.default) () =
  ignore cfg;
  let families =
    [
      ("cycle C9", Builders.cycle 9, true);
      ("cycle C12", Builders.cycle 12, true);
      ("cycle C5", Builders.cycle 5, false);
      ("theta(4,4,4)", Builders.theta 4 4 4, true);
      ("theta(5,5,6)", Builders.theta 5 5 6, true);
      ("watermelon[6;6]", Builders.watermelon [ 6; 6 ], true);
      ("torus 7x7", Builders.torus 7 7, true);
      ("torus 5x5", Builders.torus 5 5, false);
      ("grid 5x5 (corners)", Builders.grid 5 5, false);
      ("path P9 (leaves)", Builders.path 9, false);
      ("complete K5", Builders.complete 5, false);
      ("petersen", Builders.petersen (), false);
    ]
  in
  let rows =
    List.concat_map
      (fun (name, g, expected) ->
        let actual = Forgetful.is_r_forgetful g ~r:1 in
        [
          bool_row (name ^ " 1-forgetful") ~expected_true:expected actual;
          bool_row
            (name ^ " Lemma 2.1 (r=1..3)")
            ~expected_true:true
            (Forgetful.lemma_2_1_holds g ~r:1
            && Forgetful.lemma_2_1_holds g ~r:2
            && Forgetful.lemma_2_1_holds g ~r:3);
        ])
      families
  in
  let witness_row =
    match Forgetful.check (Builders.theta 4 4 4) ~r:1 with
    | Forgetful.Forgetful ws ->
        Report.check "theta escape-path witnesses (one per (v,u))"
          (List.length ws = 2 * Graph.size (Builders.theta 4 4 4))
          ~expected:"2|E| witnesses"
          ~actual:(string_of_int (List.length ws))
    | Forgetful.Not_forgetful _ ->
        Report.check "theta escape-path witnesses" false ~expected:"witnesses"
          ~actual:"none"
  in
  { Report.id = "E1"; title = "Fig. 1 / Lemma 2.1: r-forgetful graphs"; rows = rows @ [ witness_row ] }

(* ------------------------------------------------------------------ *)
(* E2: views and compatibility                                          *)

let e2_views ?(cfg = Run_cfg.default) () =
  ignore cfg;
  (* the diamond: C4 plus a chord; at r = 1 the chord between two
     distance-1 nodes is invisible from the opposite node *)
  let diamond = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 3) ] in
  let inst = Instance.make diamond in
  let v0 = View.extract inst ~r:1 0 in
  let local_of_id i = Option.get (View.find_by_id v0 i) in
  let chord_invisible =
    not (Graph.mem_edge v0.View.graph (local_of_id 2) (local_of_id 4))
  in
  (* ids are canonical: node v has id v+1; node 0's neighbors are 1 and
     3, i.e. ids 2 and 4 *)
  let ball_row =
    Report.check "r=1 ball of node 0 in the diamond" (View.size v0 = 3)
      ~expected:"3 nodes" ~actual:(string_of_int (View.size v0))
  in
  let chord_row =
    Report.check "fringe chord {1,3} invisible at r=1 (Fig. 2 rule)"
      chord_invisible ~expected:"invisible"
      ~actual:(if chord_invisible then "invisible" else "visible")
  in
  (* adjacent views of a yes-instance are neighbors in V(D, n) *)
  let p6 = Instance.make (Builders.path 6) in
  let suite = D_trivial.suite ~k:2 in
  let cert = Option.get (Decoder.certify suite p6) in
  let nbhd = Neighborhood.build suite.Decoder.dec [ cert ] in
  let mu2 = View.extract cert ~r:1 2 and mu3 = View.extract cert ~r:1 3 in
  let compat_edge =
    match (Neighborhood.find nbhd mu2, Neighborhood.find nbhd mu3) with
    | Some a, Some b -> Graph.mem_edge nbhd.Neighborhood.graph a b
    | _ -> false
  in
  let edge_row =
    Report.check "adjacent accepted views are V(D,n)-compatible" compat_edge
      ~expected:"edge present" ~actual:(string_of_bool compat_edge)
  in
  (* a view extracted at radius 2 determines interior radius-1 subviews *)
  let v2 = View.extract p6 ~r:2 2 in
  let sub_ok =
    View.equal (View.subview1 v2 0) (View.extract p6 ~r:1 2)
  in
  let sub_row =
    Report.check "interior radius-1 subview = direct extraction" sub_ok
      ~expected:"equal" ~actual:(string_of_bool sub_ok)
  in
  { Report.id = "E2"; title = "Fig. 2: views, fringe visibility, compatibility";
    rows = [ ball_row; chord_row; edge_row; sub_row ] }

(* ------------------------------------------------------------------ *)
(* E3: degree-one decoder (Lemma 4.1, Figs. 3-4)                        *)

(* Iso-class listings come from the engine: canonical-form dedup plus
   the cross-sweep cache, so the many experiments that re-enumerate the
   same orders share one enumeration per process. The representatives
   (smallest edge mask per class) coincide with the ones the historical
   [Enumerate.connected_up_to_iso] picked (and [Enumerate.classes]
   serves, via the generator the engine registers). *)
let classes ?cfg n = Lcp_engine.Sweep.iso_classes ?cfg n

let min_degree_one_family ?cfg ~max_n () =
  let graphs = ref [] in
  for n = 2 to max_n do
    graphs := classes ?cfg n @ !graphs
  done;
  List.filter (fun g -> Graph.min_degree g = 1) !graphs

let e3_degree_one ?(cfg = Run_cfg.default) () =
  let heavy = cfg.Run_cfg.heavy in
  let suite = D_degree_one.suite in
  let rng = Run_cfg.rng cfg in
  let yes_family =
    min_degree_one_family ~cfg ~max_n:(if heavy then 6 else 5) ()
    |> Enumerate.bipartite
    |> List.map Instance.make
  in
  let completeness =
    verdict_row
      (Printf.sprintf "completeness (%d yes-instances)" (List.length yes_family))
      ~expect_pass:true
      (Checker.completeness suite yes_family)
  in
  let soundness =
    (* the whole non-bipartite space on exactly n nodes, via the
       engine: n = 6 under [heavy] widens the regime the seed code
       (n = 5 list pipeline) could reach *)
    let sweep =
      Checker.soundness_sweep ~cfg suite ~n:(if heavy then 6 else 5)
    in
    verdict_row
      (Printf.sprintf "soundness (n=%d, engine sweep over %d no-classes)"
         sweep.Lcp_engine.Sweep.n
         sweep.Lcp_engine.Sweep.counters.Lcp_engine.Sweep.kept)
      ~expect_pass:true
      (Checker.verdict_of_sweep sweep)
  in
  let strong_family =
    (if heavy then List.concat_map (classes ~cfg) [ 2; 3; 4; 5 ]
     else List.concat_map (classes ~cfg) [ 2; 3; 4 ])
    |> List.map Instance.make
  in
  let strong =
    verdict_row
      (Printf.sprintf "strong soundness (all labelings, %d graphs)"
         (List.length strong_family))
      ~expect_pass:true
      (Checker.strong_soundness_exhaustive ~cfg suite ~k:2 strong_family)
  in
  let anonymity =
    verdict_row "anonymity" ~expect_pass:true
      (Checker.anonymity suite.Decoder.dec ~trials:20 rng
         (List.filter_map (Decoder.certify suite) yes_family))
  in
  (* hiding: the full V(D, 4) over the min-degree-1 class *)
  let fam4 =
    Neighborhood.exhaustive_family suite
      ~graphs:(min_degree_one_family ~cfg ~max_n:4 ())
      ~ports:`All ~cfg ()
  in
  let hiding_verdict = Hiding.check ~k:2 suite.Decoder.dec fam4 in
  let hiding =
    match hiding_verdict with
    | Hiding.Hiding { witness; nbhd } ->
        Report.check "hiding: odd cycle in V(D,4) (Fig. 4)" true
          ~expected:"odd cycle exists"
          ~actual:
            (Printf.sprintf "odd cycle of %d views (|V|=%d)" (List.length witness)
               (Neighborhood.order nbhd))
    | Hiding.Colorable _ ->
        Report.check "hiding: odd cycle in V(D,4)" false
          ~expected:"odd cycle exists" ~actual:"V(D,4) is 2-colorable"
  in
  { Report.id = "E3"; title = "Lemma 4.1 / Figs. 3-4: degree-one decoder";
    rows = [ completeness; soundness; strong; anonymity; hiding ] }

(* ------------------------------------------------------------------ *)
(* E4: even-cycle decoder (Lemma 4.2, Figs. 5-6)                        *)

let e4_even_cycle ?(cfg = Run_cfg.default) () =
  let heavy = cfg.Run_cfg.heavy in
  let suite = D_even_cycle.suite in
  let rng = Run_cfg.rng cfg in
  let yes_family =
    List.map (fun n -> Instance.make (Builders.cycle n)) [ 4; 6; 8; 10 ]
  in
  let completeness =
    verdict_row "completeness (C4..C10)" ~expect_pass:true
      (Checker.completeness suite yes_family)
  in
  let no_family =
    List.map (fun n -> Instance.make (Builders.cycle n))
      (if heavy then [ 3; 5; 7 ] else [ 3; 5 ])
  in
  let soundness =
    verdict_row "soundness (odd cycles, exhaustive)" ~expect_pass:true
      (Checker.soundness_exhaustive ~cfg suite no_family)
  in
  let strong_family =
    List.map Instance.make
      ((if heavy then [ Builders.cycle 6 ] else [])
      @ [ Builders.cycle 3; Builders.cycle 4; Builders.cycle 5; Builders.path 4 ])
  in
  let strong =
    verdict_row "strong soundness (all labelings)" ~expect_pass:true
      (Checker.strong_soundness_exhaustive ~cfg suite ~k:2 strong_family)
  in
  let anonymity =
    verdict_row "anonymity" ~expect_pass:true
      (Checker.anonymity suite.Decoder.dec ~trials:20 rng
         (List.filter_map (Decoder.certify suite) yes_family))
  in
  let fam =
    Neighborhood.exhaustive_family suite ~graphs:[ Builders.cycle 6 ] ~ports:`All
      ~cfg ()
  in
  let nbhd = Neighborhood.build suite.Decoder.dec fam in
  let hiding =
    (* two independent witnesses coexist: Fig. 6's odd cycle in the
       loop-free part, and looped view classes (adjacent nodes with
       reflection-isomorphic views) *)
    match Coloring.odd_cycle nbhd.Neighborhood.graph with
    | Some cyc ->
        Report.check "hiding: odd cycle in V(D,6) (Fig. 6)" true
          ~expected:"odd cycle exists"
          ~actual:
            (Printf.sprintf "odd cycle of %d views + %d loops (|V|=%d, %d instances)"
               (List.length cyc)
               (List.length nbhd.Neighborhood.loops)
               (Neighborhood.order nbhd) (List.length fam))
    | None ->
        Report.check "hiding: odd cycle in V(D,6)"
          (nbhd.Neighborhood.loops <> [])
          ~expected:"odd cycle exists"
          ~actual:
            (Printf.sprintf "%d loops only" (List.length nbhd.Neighborhood.loops))
  in
  (* hidden everywhere: every view class of V arises both from nodes
     2-colored 0 and from nodes 2-colored 1 across accepted instances *)
  let instances = Array.of_list fam in
  let both_colors =
    let seen = Hashtbl.create 64 in
    Array.iter
      (fun (inst : Instance.t) ->
        let colors = Option.get (Coloring.two_color inst.Instance.graph) in
        Array.iteri
          (fun v mu ->
            let key = View.key_anonymous mu in
            let prev = Option.value ~default:(false, false) (Hashtbl.find_opt seen key) in
            let prev = if colors.(v) = 0 then (true, snd prev) else (fst prev, true) in
            Hashtbl.replace seen key prev)
          (View.extract_all inst ~r:1))
      instances;
    Hashtbl.fold (fun _ (a, b) acc -> acc && a && b) seen true
  in
  let everywhere =
    Report.check "hidden everywhere: every view occurs with both colors"
      both_colors ~expected:"true" ~actual:(string_of_bool both_colors)
  in
  { Report.id = "E4"; title = "Lemma 4.2 / Figs. 5-6: even-cycle decoder";
    rows = [ completeness; soundness; strong; anonymity; hiding; everywhere ] }

(* ------------------------------------------------------------------ *)
(* E5: the union decoder (Theorem 1.1)                                  *)

let e5_union ?(cfg = Run_cfg.default) () =
  let suite = D_union.suite in
  let rng = Run_cfg.rng cfg in
  let yes_family =
    List.map Instance.make
      [ Builders.path 5; Builders.star 4; Builders.caterpillar 3 1;
        Builders.cycle 4; Builders.cycle 6; Builders.cycle 8;
        Builders.pendant (Builders.cycle 4) 0 ]
  in
  let completeness =
    verdict_row "completeness (H1 and H2 members)" ~expect_pass:true
      (Checker.completeness suite yes_family)
  in
  let no_family =
    List.map Instance.make [ Builders.cycle 3; Builders.cycle 5 ]
  in
  let soundness =
    verdict_row "soundness (odd cycles, exhaustive)" ~expect_pass:true
      (Checker.soundness_exhaustive suite no_family)
  in
  let strong =
    verdict_row "strong soundness (randomized, mixed instances)" ~expect_pass:true
      (Checker.strong_soundness_random suite ~k:2 ~trials:3000 rng
         (List.map Instance.make
            [ Builders.cycle 5; Builders.friendship 2; Builders.pendant (Builders.cycle 3) 0 ]))
  in
  let strong_small =
    verdict_row "strong soundness (all labelings, n<=3)" ~expect_pass:true
      (Checker.strong_soundness_exhaustive suite ~k:2
         (List.map Instance.make [ Builders.cycle 3; Builders.path 3 ]))
  in
  let anonymity =
    verdict_row "anonymity" ~expect_pass:true
      (Checker.anonymity suite.Decoder.dec ~trials:10 rng
         (List.filter_map (Decoder.certify suite) yes_family))
  in
  let hiding_family =
    Neighborhood.exhaustive_family D_union.suite
      ~graphs:(min_degree_one_family ~cfg ~max_n:4 ()) ~ports:`All ~cfg ()
  in
  let hiding =
    match Hiding.check ~k:2 suite.Decoder.dec hiding_family with
    | Hiding.Hiding { witness; _ } ->
        Report.check "hiding (inherited from H1 construction)" true
          ~expected:"odd cycle exists"
          ~actual:(Printf.sprintf "odd cycle of %d views" (List.length witness))
    | Hiding.Colorable _ ->
        Report.check "hiding" false ~expected:"odd cycle exists" ~actual:"2-colorable"
  in
  { Report.id = "E5"; title = "Theorem 1.1: anonymous union decoder on H1 u H2";
    rows = [ completeness; soundness; strong; strong_small; anonymity; hiding ] }

(* ------------------------------------------------------------------ *)
(* E6: shatter decoder (Theorem 1.3)                                    *)

let spider legs len =
  (* a star of [legs] paths of length [len] from a hub: shatter point *)
  let g = ref (Graph.empty 1) in
  for _ = 1 to legs do
    let n = Graph.order !g in
    let h = Graph.disjoint_union !g (Builders.path len) in
    g := Graph.add_edge h 0 n
  done;
  !g

let e6_shatter ?(cfg = Run_cfg.default) () =
  let heavy = cfg.Run_cfg.heavy in
  let suite = D_shatter.suite in
  let rng = Run_cfg.rng cfg in
  let yes_family =
    List.map Instance.make
      [ Builders.path 5; Builders.path 8; spider 3 2; spider 3 3;
        Builders.star 3; Builders.caterpillar 4 1;
        Graph.of_edges 7 [ (0,1); (1,2); (2,3); (3,4); (2,5); (5,6) ] ]
  in
  let completeness =
    verdict_row "completeness (shatter-point yes-instances)" ~expect_pass:true
      (Checker.completeness suite yes_family)
  in
  let promise_row =
    let has = D_shatter.is_shatter_graph in
    (* cycles never shatter: removing a closed neighborhood leaves a
       single path *)
    let actual =
      (has (Builders.path 5), has (Builders.star 3), has (Builders.theta 2 2 2),
       has (Builders.path 4), has (Builders.cycle 5), has (Builders.cycle 6))
    in
    Report.check "promise class recognition"
      (actual = (true, true, true, false, false, false))
      ~expected:"P5,star3,theta(2,2,2) yes; P4,C5,C6 no"
      ~actual:(if actual = (true, true, true, false, false, false) then "as expected"
               else "unexpected membership")
  in
  let soundness =
    verdict_row "soundness (C3 exhaustive)" ~expect_pass:true
      (Checker.soundness_exhaustive suite [ Instance.make (Builders.cycle 3) ])
  in
  let strong_exh =
    if heavy then
      verdict_row "strong soundness (all labelings, n=4 graphs)" ~expect_pass:true
        (Checker.strong_soundness_exhaustive ~cfg suite ~k:2
           (List.map Instance.make
              [ Builders.star 3; Builders.path 4; Builders.cycle 4; Builders.cycle 3 ]))
    else
      verdict_row "strong soundness (all labelings, n=3)" ~expect_pass:true
        (Checker.strong_soundness_exhaustive ~cfg suite ~k:2
           (List.map Instance.make [ Builders.cycle 3; Builders.path 3 ]))
  in
  let strong_rand =
    verdict_row "strong soundness (randomized, n<=7)" ~expect_pass:true
      (Checker.strong_soundness_random suite ~k:2 ~trials:2000 rng
         (List.map Instance.make
            [ Builders.cycle 5; Builders.friendship 3; spider 3 2;
              Builders.pendant (Builders.cycle 3) 0 ]))
  in
  (* hiding: the paper's P1 / P2 pair from the Theorem 1.3 proof *)
  let p1 = Builders.path 8 in
  (* nodes: w3 w2 w1 u1 v u2 z1 z2 = 0..7, ids 1..8 *)
  let vid = 5 in
  let l1 =
    [|
      D_shatter.encode_type2 ~id:vid ~comp:1 ~color:0;  (* w3 *)
      D_shatter.encode_type2 ~id:vid ~comp:1 ~color:1;  (* w2 *)
      D_shatter.encode_type2 ~id:vid ~comp:1 ~color:0;  (* w1 *)
      D_shatter.encode_type1 ~id:vid ~colors:[ 0; 0 ];  (* u1 *)
      D_shatter.encode_type0 ~id:vid;                   (* v  *)
      D_shatter.encode_type1 ~id:vid ~colors:[ 0; 0 ];  (* u2 *)
      D_shatter.encode_type2 ~id:vid ~comp:2 ~color:0;  (* z1 *)
      D_shatter.encode_type2 ~id:vid ~comp:2 ~color:1;  (* z2 *)
    |]
  in
  let i1 = Instance.make p1 ~labels:l1 in
  let p2 = Builders.path 7 in
  (* nodes: w3 w2 u1 v u2 z1 z2 = 0..6, ids 1,2,4,5,6,7,8 *)
  let ids2 = Ident.of_array ~bound:8 [| 1; 2; 4; 5; 6; 7; 8 |] in
  let l2 =
    [|
      D_shatter.encode_type2 ~id:vid ~comp:1 ~color:0;  (* w3 *)
      D_shatter.encode_type2 ~id:vid ~comp:1 ~color:1;  (* w2 *)
      D_shatter.encode_type1 ~id:vid ~colors:[ 1; 0 ];  (* u1 *)
      D_shatter.encode_type0 ~id:vid;                   (* v  *)
      D_shatter.encode_type1 ~id:vid ~colors:[ 1; 0 ];  (* u2 *)
      D_shatter.encode_type2 ~id:vid ~comp:2 ~color:0;  (* z1 *)
      D_shatter.encode_type2 ~id:vid ~comp:2 ~color:1;  (* z2 *)
    |]
  in
  let i2 = Instance.make p2 ~ids:ids2 ~labels:l2 in
  let accepted_row =
    let ok = Decoder.accepts_all suite.Decoder.dec i1 && Decoder.accepts_all suite.Decoder.dec i2 in
    Report.check "P1 and P2 certificates unanimously accepted" ok
      ~expected:"accepted" ~actual:(string_of_bool ok)
  in
  let hiding =
    match Hiding.check ~k:2 suite.Decoder.dec [ i1; i2 ] with
    | Hiding.Hiding { witness; _ } ->
        Report.check "hiding: odd cycle from the P1/P2 pair" true
          ~expected:"odd cycle exists"
          ~actual:(Printf.sprintf "odd cycle of %d views" (List.length witness))
    | Hiding.Colorable _ ->
        Report.check "hiding: odd cycle from the P1/P2 pair" false
          ~expected:"odd cycle exists" ~actual:"2-colorable"
  in
  { Report.id = "E6"; title = "Theorem 1.3: shatter-point decoder";
    rows = [ promise_row; completeness; soundness; strong_exh; strong_rand;
             accepted_row; hiding ] }

(* ------------------------------------------------------------------ *)
(* E7: watermelon decoder (Theorem 1.4)                                 *)

(* The path construction from the Theorem 1.4 hiding proof: a P8 whose
   certificates claim it is one watermelon path between its endpoints.
   A path is a bipartite graph, hence a legitimate yes-instance of the
   language even though it is outside the promise class. *)
let watermelon_path_instance ~ids ~flip =
  let g = Builders.path 8 in
  let inst = Instance.make g ~ids in
  let endpoint_ids =
    let a = Ident.id ids 0 and b = Ident.id ids 7 in
    (min a b, max a b)
  in
  let id1, id2 = endpoint_ids in
  let lab =
    Array.init 8 (fun v ->
        if v = 0 || v = 7 then D_watermelon.encode_endpoint ~id1 ~id2
        else
          let color_edge i = (i + flip) mod 2 in
          (* node v has port 1 to v-1, port 2 to v+1 under canonical
             ports; far ports: v-1's port toward v is 2 (or 1 at the
             left endpoint), v+1's port toward v is 1 *)
          let p1 = if v - 1 = 0 then 1 else 2 in
          let p2 = 1 in
          D_watermelon.encode_path_node ~id1 ~id2 ~num:1 ~p1
            ~c1:(color_edge (v - 1)) ~p2 ~c2:(color_edge v))
  in
  Instance.with_labels inst lab

let e7_watermelon ?(cfg = Run_cfg.default) () =
  let heavy = cfg.Run_cfg.heavy in
  let suite = D_watermelon.suite in
  let rng = Run_cfg.rng cfg in
  let yes_family =
    List.map
      (fun ls -> Instance.make (Builders.watermelon ls))
      [ [ 2; 2 ]; [ 2; 4 ]; [ 3; 3 ]; [ 2; 2; 4 ]; [ 3; 3; 3 ]; [ 2; 4; 2; 4 ] ]
  in
  let completeness =
    verdict_row "completeness (watermelons, even and odd paths)" ~expect_pass:true
      (Checker.completeness suite yes_family)
  in
  let soundness =
    verdict_row "soundness (watermelon[2;3] = C5, exhaustive)" ~expect_pass:true
      (Checker.soundness_exhaustive suite
         [ Instance.make (Builders.watermelon [ 2; 3 ]) ])
  in
  let strong_exh =
    if heavy then
      verdict_row "strong soundness (all labelings, C4/C3/P4)" ~expect_pass:true
        (Checker.strong_soundness_exhaustive ~cfg suite ~k:2
           (List.map Instance.make
              [ Builders.watermelon [ 2; 2 ]; Builders.cycle 3; Builders.path 4 ]))
    else
      verdict_row "strong soundness (all labelings, C3)" ~expect_pass:true
        (Checker.strong_soundness_exhaustive ~cfg suite ~k:2
           [ Instance.make (Builders.cycle 3) ])
  in
  let strong_rand =
    verdict_row "strong soundness (randomized)" ~expect_pass:true
      (Checker.strong_soundness_random suite ~k:2 ~trials:2000 rng
         (List.map Instance.make
            [ Builders.watermelon [ 2; 3 ]; Builders.theta 3 3 4; Builders.cycle 5 ]))
  in
  (* hiding via 8-paths with the paper's two identifier assignments:
     the full space of port assignments and accepted certificates is
     enumerated and the odd cycle is found inside the resulting V *)
  let id_straight = Ident.of_array ~bound:8 [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let id_swapped = Ident.of_array ~bound:8 [| 1; 2; 6; 5; 4; 3; 7; 8 |] in
  let g8 = Builders.path 8 in
  let port_choices =
    let all = Port.enumerate g8 in
    if heavy then all else List.filteri (fun i _ -> i mod 4 = 0) all
  in
  let family =
    (* one work unit per (ids, ports) choice, expanded on the engine
       pool when [jobs > 1]; concatenation in choice order keeps the
       family identical for every [jobs] (each unit preserves the
       historical un-reversed accumulator order). *)
    let units =
      List.concat_map
        (fun ids -> List.map (fun prt -> (ids, prt)) port_choices)
        [ id_straight; id_swapped ]
    in
    let expand (ids, prt) =
      let base = Instance.make g8 ~ports:prt ~ids in
      let alphabet = suite.Decoder.adversary_alphabet base in
      let acc = ref [] in
      Prover.iter_accepted suite.Decoder.dec ~alphabet base (fun lab ->
          acc := Instance.with_labels base lab :: !acc);
      !acc
    in
    match cfg.Run_cfg.jobs with
    | 1 -> List.concat_map expand units
    | jobs ->
        List.concat
          (Array.to_list
             (Lcp_engine.Pool.map ~metrics:cfg.Run_cfg.metrics ~jobs expand
                (Array.of_list units)))
  in
  let hand_picked =
    List.map
      (fun (ids, flip) -> watermelon_path_instance ~ids ~flip)
      [ (id_straight, 0); (id_straight, 1); (id_swapped, 0); (id_swapped, 1) ]
  in
  let accepted_row =
    let ok = List.for_all (Decoder.accepts_all suite.Decoder.dec) hand_picked in
    Report.check
      (Printf.sprintf "8-path watermelon certificates accepted (%d accepted instances)"
         (List.length family))
      ok ~expected:"accepted" ~actual:(string_of_bool ok)
  in
  let family = hand_picked @ family in
  let hiding =
    match Hiding.check ~k:2 suite.Decoder.dec family with
    | Hiding.Hiding { witness; _ } ->
        Report.check "hiding: odd cycle from the id-swap construction" true
          ~expected:"odd cycle exists"
          ~actual:(Printf.sprintf "odd cycle of %d views" (List.length witness))
    | Hiding.Colorable _ ->
        Report.check "hiding: odd cycle from the id-swap construction" false
          ~expected:"odd cycle exists" ~actual:"2-colorable"
  in
  { Report.id = "E7"; title = "Theorem 1.4: watermelon decoder";
    rows = [ completeness; soundness; strong_exh; strong_rand; accepted_row; hiding ] }

(* ------------------------------------------------------------------ *)
(* E8: Lemma 3.2, extraction direction                                  *)

let e8_extraction ?(cfg = Run_cfg.default) () =
  let trivial = D_trivial.suite ~k:2 in
  let graphs =
    Enumerate.classes 4 @ Enumerate.classes 3 |> Enumerate.bipartite
  in
  let fam =
    Neighborhood.exhaustive_family trivial ~graphs ~ports:`All
      ~ids:(`Canonical_bound 8) ~cfg ()
  in
  let verdict = Hiding.check ~k:2 trivial.Decoder.dec fam in
  let colorable_row =
    match verdict with
    | Hiding.Colorable { nbhd; _ } ->
        Report.check "trivial LCP: V(D,4) is 2-colorable" true
          ~expected:"2-colorable"
          ~actual:(Printf.sprintf "2-colorable, |V|=%d" (Neighborhood.order nbhd))
    | Hiding.Hiding _ ->
        Report.check "trivial LCP: V(D,4) is 2-colorable" false
          ~expected:"2-colorable" ~actual:"odd cycle found"
  in
  let extraction_rows =
    match Extractor.of_verdict verdict with
    | None -> [ Report.check "extractor built" false ~expected:"built" ~actual:"none" ]
    | Some ex ->
        let works_on_family =
          List.for_all (Extractor.extraction_succeeds ex) fam
        in
        (* fresh larger instances: their radius-1 views already occur in
           V(D,4), so extraction transfers beyond the build family *)
        let fresh =
          List.filter_map
            (fun g ->
              Decoder.certify trivial
                (Instance.make g ~ids:(Ident.canonical ~bound:8 g)))
            [ Builders.path 7; Builders.cycle 8; Builders.star 3 ]
        in
        let works_fresh = List.for_all (Extractor.extraction_succeeds ex) fresh in
        [
          Report.check "extractor D' recovers a proper 2-coloring (family)"
            works_on_family ~expected:"all succeed"
            ~actual:(string_of_bool works_on_family);
          Report.check "extractor D' transfers to larger instances" works_fresh
            ~expected:"all succeed" ~actual:(string_of_bool works_fresh);
        ]
  in
  (* spanning-tree baseline: identified mode, extraction on its own family *)
  let spanning = D_spanning.suite in
  let sp_instances =
    List.filter_map
      (fun g -> Decoder.certify spanning (Instance.make g))
      [ Builders.path 5; Builders.cycle 6; Builders.star 3; Builders.grid 2 3 ]
  in
  let sp_verdict = Hiding.check ~k:2 spanning.Decoder.dec sp_instances in
  let sp_rows =
    match Extractor.of_verdict sp_verdict with
    | None ->
        [ Report.check "spanning baseline: V 2-colorable" false
            ~expected:"2-colorable" ~actual:"odd cycle" ]
    | Some ex ->
        let ok = List.for_all (Extractor.extraction_succeeds ex) sp_instances in
        [
          Report.check "spanning baseline: V 2-colorable and extraction works" ok
            ~expected:"extraction succeeds" ~actual:(string_of_bool ok);
        ]
  in
  (* contrast: the paper's decoders produced odd cycles (E3-E7) *)
  let contrast =
    let d1_hiding =
      Hiding.is_hiding_on ~k:2 D_degree_one.decoder
        (Neighborhood.exhaustive_family D_degree_one.suite
           ~graphs:(min_degree_one_family ~cfg ~max_n:4 ()) ~ports:`All ~cfg ())
    in
    Report.check "contrast: degree-one decoder stays hiding" d1_hiding
      ~expected:"hiding" ~actual:(string_of_bool d1_hiding)
  in
  { Report.id = "E8"; title = "Lemma 3.2: extraction from colorable V(D,n)";
    rows = (colorable_row :: extraction_rows) @ sp_rows @ [ contrast ] }

(* ------------------------------------------------------------------ *)
(* E9: realizability and G_bad (Lemma 5.1)                              *)

let accept_all =
  Decoder.make ~name:"accept-all" ~radius:1 ~anonymous:false (fun _ -> true)

let rotation_instances () =
  (* five P5 path instances whose identifier windows rotate around a
     5-cycle: their interior views chain into an odd cycle of V *)
  let g = Builders.path 5 in
  List.init 5 (fun k ->
      let ids = Array.init 5 (fun v -> 1 + ((k + v) mod 5)) in
      Instance.make g ~ids:(Ident.of_array ~bound:5 ids))

let e9_realizability ?(cfg = Run_cfg.default) () =
  let insts = rotation_instances () in
  let nbhd = Neighborhood.build accept_all insts in
  let odd = Neighborhood.odd_cycle nbhd in
  let odd_row =
    Report.check "V(accept-all) over rotated paths has an odd cycle"
      (odd <> None) ~expected:"odd cycle"
      ~actual:
        (match odd with
        | Some c -> Printf.sprintf "odd cycle of %d views" (List.length c)
        | None -> "none")
  in
  match odd with
  | None ->
      { Report.id = "E9"; title = "Lemma 5.1: realizability and G_bad";
        rows = [ odd_row ] }
  | Some cycle_views ->
      let h = Realizability.of_neighborhood nbhd cycle_views in
      let pool =
        List.concat_map
          (fun inst -> Array.to_list (View.extract_all inst ~r:1))
          insts
      in
      let assignment = Realizability.realizable ~pool h in
      let realizable_row =
        Report.check "the odd view cycle is realizable" (assignment <> None)
          ~expected:"realizable" ~actual:(string_of_bool (assignment <> None))
      in
      let glue_rows =
        match Option.map Realizability.realize assignment with
        | Some (Ok realization) ->
            let g_bad = realization.Realizability.instance.Instance.graph in
            let non_bip = not (Coloring.is_bipartite g_bad) in
            let accepted =
              Realizability.centers_accepted accept_all h realization
            in
            [
              Report.check "G_bad is non-bipartite (odd cycle realized)" non_bip
                ~expected:"non-bipartite"
                ~actual:(Printf.sprintf "n=%d, bipartite=%b" (Graph.order g_bad) (not non_bip));
              Report.check "all H-centers accept in G_bad (Lemma 5.1)" accepted
                ~expected:"accepted" ~actual:(string_of_bool accepted);
              Report.check "hence accept-all is not strongly sound"
                (non_bip && accepted) ~expected:"violation exhibited"
                ~actual:(string_of_bool (non_bip && accepted));
            ]
        | Some (Error e) ->
            [ Report.check "G_bad gluing" false ~expected:"built" ~actual:e ]
        | None -> []
      in
      (* compatibility of a node with a view (Fig. 7 notion) *)
      let compat_row =
        let i0 = List.nth insts 0 in
        let mu1 = View.extract i0 ~r:1 1 and mu2 = View.extract i0 ~r:1 2 in
        let u = Option.get (View.find_by_id mu1 (View.center_id mu2)) in
        let ok = Realizability.compatible mu1 u mu2 in
        Report.check "compatibility of adjacent views (Fig. 7)" ok
          ~expected:"compatible" ~actual:(string_of_bool ok)
      in
      (* contrapositive: the degree-one decoder's identified odd cycles,
         if any, must never realize into an accepted G_bad *)
      let contrapositive =
        let suite = D_degree_one.suite in
        let fam =
          Neighborhood.exhaustive_family suite
            ~graphs:(min_degree_one_family ~cfg ~max_n:4 ()) ~cfg ()
        in
        let nb = Neighborhood.build ~mode:Neighborhood.Identified suite.Decoder.dec fam in
        match Neighborhood.odd_cycle nb with
        | None ->
            Report.check "degree-one: no identified odd cycle to realize" true
              ~expected:"no violation" ~actual:"V identified-bipartite"
        | Some c -> (
            let h = Realizability.of_neighborhood nb c in
            let pool =
              List.concat_map (fun i -> Array.to_list (View.extract_all i ~r:1)) fam
            in
            match Realizability.lemma_5_1 suite.Decoder.dec ~pool h with
            | Error _ ->
                Report.check "degree-one: odd view cycle does not realize" true
                  ~expected:"no violation" ~actual:"realization fails"
            | Ok realization ->
                let bip =
                  Coloring.is_bipartite
                    realization.Realizability.instance.Instance.graph
                in
                Report.check "degree-one: realization stays bipartite" bip
                  ~expected:"no violation" ~actual:(string_of_bool bip))
      in
      { Report.id = "E9"; title = "Lemma 5.1: realizability and G_bad";
        rows = (odd_row :: realizable_row :: glue_rows) @ [ compat_row; contrapositive ] }

(* ------------------------------------------------------------------ *)
(* E10: walk surgery (Lemmas 5.4-5.5)                                   *)

let e10_lower_bound ?(cfg = Run_cfg.default) () =
  ignore cfg;
  (* theta(4,4,4) is bipartite, 1-forgetful, min degree 2 and carries
     two cycles: precisely the Theorem 1.5 hypothesis class *)
  let theta = Builders.theta 4 4 4 in
  let wm = Builders.watermelon [ 6; 6 ] in
  let expansion_rows =
    List.filter_map
      (fun (name, g, u, v) ->
        if not (Graph.mem_edge g u v) then None
        else
          Some
            (match Nb_walks.edge_expansion g ~r:1 ~u ~v with
            | Some w ->
                Report.check
                  (Printf.sprintf "Lemma 5.4 edge expansion on %s" name)
                  (Walks.is_closed_walk g w && Walks.is_non_backtracking g w
                  && List.length w mod 2 = 0)
                  ~expected:"even non-backtracking closed walk"
                  ~actual:(Printf.sprintf "walk of length %d" (List.length w))
            | None ->
                Report.check
                  (Printf.sprintf "Lemma 5.4 edge expansion on %s" name)
                  false ~expected:"even non-backtracking closed walk"
                  ~actual:"no expansion found"))
      [ ("watermelon[6;6]", wm, 2, 3); ("theta(4,4,4)", theta, 2, 3) ]
  in
  (* expand a full closed walk: one of the watermelon's constituent
     cycles *)
  let expand_row =
    let cycle_walk = [ 0; 2; 3; 4; 5; 6; 1; 11; 10; 9; 8; 7 ] in
    if not (Walks.is_closed_walk wm cycle_walk) then
      Report.check "Lemma 5.4 full-walk expansion" false ~expected:"walk"
        ~actual:"test walk broken"
    else
      match Nb_walks.expand_closed_walk wm ~r:1 cycle_walk with
      | Some w ->
          Report.check "Lemma 5.4 full-walk expansion preserves parity"
            (List.length w mod 2 = List.length cycle_walk mod 2
            && Walks.is_non_backtracking wm w)
            ~expected:"even, non-backtracking"
            ~actual:(Printf.sprintf "expanded to length %d" (List.length w))
      | None ->
          Report.check "Lemma 5.4 full-walk expansion" false
            ~expected:"expansion" ~actual:"failed"
  in
  (* Lemma 5.5 repair: a backtracking closed walk in the theta graph *)
  let repair_row =
    let c =
      match Metrics.shortest_path theta 0 1 with
      | Some p -> p
      | None -> assert false
    in
    ignore c;
    (* build a deliberately backtracking closed walk: tour one cycle of
       the theta graph, inserting a spike *)
    let tour = [ 0; 2; 3; 4; 1; 7; 6; 5 ] in
    if not (Walks.is_closed_walk theta tour) then
      Report.check "Lemma 5.5 repair" false ~expected:"walk" ~actual:"test walk broken"
    else begin
      let spiked = Walks.splice tour 2 [ 3; 2 ] in
      let was_backtracking = not (Walks.is_non_backtracking theta spiked) in
      match Nb_walks.repair_backtracking theta spiked with
      | Some fixed ->
          Report.check "Lemma 5.5 repair of a backtracking walk"
            (was_backtracking
            && Walks.is_non_backtracking theta fixed
            && List.length fixed mod 2 = List.length spiked mod 2)
            ~expected:"non-backtracking, same parity"
            ~actual:
              (Printf.sprintf "repaired %d -> %d" (List.length spiked)
                 (List.length fixed))
      | None ->
          Report.check "Lemma 5.5 repair of a backtracking walk" false
            ~expected:"repaired" ~actual:"failed"
    end
  in
  (* odd non-backtracking walks exist only in non-bipartite graphs *)
  let odd_walk_rows =
    [
      Report.check "no odd nb walk in bipartite theta(4,4,4)"
        (Nb_walks.odd_nb_closed_walk theta ~max_len:9 = None)
        ~expected:"none" ~actual:"none found";
      (let g5 = Builders.cycle 5 in
       match Nb_walks.odd_nb_closed_walk g5 ~max_len:7 with
       | Some w ->
           Report.check "odd nb walk found in C5"
             (Walks.is_non_backtracking g5 w && List.length w mod 2 = 1)
             ~expected:"odd nb closed walk"
             ~actual:(Printf.sprintf "length %d" (List.length w))
       | None ->
           Report.check "odd nb walk found in C5" false
             ~expected:"odd nb closed walk" ~actual:"none");
    ]
  in
  (* lift a node walk into V(D, n) and check the view-level
     non-backtracking notion *)
  let lift_row =
    let inst = Instance.make wm in
    let suite = D_trivial.suite ~k:2 in
    match Decoder.certify suite inst with
    | None -> Report.check "lift walk to V(D,n)" false ~expected:"lifted" ~actual:"no cert"
    | Some cert -> (
        let nbhd = Neighborhood.build ~mode:Neighborhood.Identified suite.Decoder.dec [ cert ] in
        let walk = [ 0; 2; 3; 4; 5; 6; 1; 11; 10; 9; 8; 7 ] in
        match Nb_walks.lift nbhd cert walk with
        | Some lifted ->
            let views = List.map (Neighborhood.view nbhd) lifted in
            Report.check "lifted instance walk is non-backtracking in V"
              (Nb_walks.is_non_backtracking_views views)
              ~expected:"non-backtracking" ~actual:"non-backtracking"
        | None ->
            Report.check "lift walk to V(D,n)" false ~expected:"lifted"
              ~actual:"views missing")
  in
  { Report.id = "E10"; title = "Lemmas 5.4-5.5: walk surgery on r-forgetful instances";
    rows = expansion_rows @ [ expand_row; repair_row ] @ odd_walk_rows @ [ lift_row ] }

(* ------------------------------------------------------------------ *)
(* E11: Ramsey / order-invariance reduction (Lemma 6.2)                 *)

(* A constant-size non-anonymous decoder with an identifier quirk: it
   behaves like the trivial 2-coloring verifier except that nodes whose
   identifier is divisible by 5 accept unconditionally. Lemma 6.2 says
   such quirks are invisible on a monochromatic identifier set. *)
let quirky =
  let trivial = D_trivial.decoder ~k:2 in
  Decoder.make ~name:"quirky" ~radius:1 ~anonymous:false (fun view ->
      View.center_id view mod 5 = 0 || trivial.Decoder.accepts view)

let e11_ramsey ?(cfg = Run_cfg.default) () =
  let ramsey_rows =
    [
      Report.check "R(3,3) = 6" (Ramsey.ramsey_number ~s:3 ~t:3 = 6)
        ~expected:"6" ~actual:(string_of_int (Ramsey.ramsey_number ~s:3 ~t:3));
      Report.check "5 -/-> (3,3)" (not (Ramsey.arrows ~n:5 ~s:3 ~t:3))
        ~expected:"false" ~actual:"false";
    ]
  in
  (* shapes: accepted and rejected radius-1 views of the quirky decoder
     on a labeled P4 *)
  let p4 = Instance.make (Builders.path 4) in
  let cert = Option.get (D_trivial.prover ~k:2 p4) in
  let good = Instance.with_labels p4 cert in
  let bad = Instance.with_labels p4 (Labeling.const (Builders.path 4) "0") in
  let shapes =
    Array.to_list (View.extract_all good ~r:1)
    @ Array.to_list (View.extract_all bad ~r:1)
  in
  let universe = List.init 12 (fun i -> i + 1) in
  let mono = Ramsey.monochromatic_ids quirky ~shapes ~universe ~size:5 in
  let mono_row =
    Report.check "monochromatic identifier set of size 5 found" (mono <> None)
      ~expected:"found"
      ~actual:
        (match mono with
        | Some ids -> String.concat "," (List.map string_of_int ids)
        | None -> "none")
  in
  let rest_rows =
    match mono with
    | None -> []
    | Some ids ->
        let d' = Ramsey.order_invariant_decoder quirky ~mono:ids in
        let rng = Run_cfg.rng cfg in
        let test_instances = [ good; bad ] in
        let oi =
          Checker.is_pass
            (Checker.order_invariance d' ~trials:20 rng test_instances)
        in
        (* D' agrees with the quirk-free trivial decoder everywhere *)
        let trivial = D_trivial.decoder ~k:2 in
        let agrees =
          List.for_all
            (fun inst -> Decoder.run d' inst = Decoder.run trivial inst)
            test_instances
        in
        [
          Report.check "derived decoder D' is order-invariant" oi
            ~expected:"order-invariant" ~actual:(string_of_bool oi);
          Report.check "D' sheds the identifier quirk (= trivial decoder)"
            agrees ~expected:"agree" ~actual:(string_of_bool agrees);
        ]
  in
  { Report.id = "E11"; title = "Lemma 6.2: Ramsey order-invariance reduction";
    rows = ramsey_rows @ (mono_row :: rest_rows) }

(* ------------------------------------------------------------------ *)
(* E12: certificate sizes                                               *)

let e12_cert_sizes ?(cfg = Run_cfg.default) () =
  ignore cfg;
  let measure suite inst =
    match Decoder.certify suite inst with
    | Some c -> Labeling.max_bits c.Instance.labels
    | None -> -1
  in
  let sized name suite mk ns ~constant =
    let sizes = List.map (fun n -> (n, measure suite (mk n))) ns in
    let values =
      String.concat ", "
        (List.map (fun (n, b) -> Printf.sprintf "n=%d:%db" n b) sizes)
    in
    let bits = List.map snd sizes in
    let ok =
      List.for_all (fun b -> b >= 0) bits
      &&
      if constant then
        List.for_all (fun b -> b = List.hd bits) bits
      else
        (* sub-linear growth: readable certificates grow at most
           logarithmically x constant factor *)
        let first = float_of_int (List.hd bits) in
        let last = float_of_int (List.nth bits (List.length bits - 1)) in
        last <= 4.0 *. first
    in
    Report.check name ok
      ~expected:(if constant then "constant" else "O(log n)-ish growth")
      ~actual:values
  in
  let rows =
    [
      sized "trivial k=2 (O(1))" (D_trivial.suite ~k:2)
        (fun n -> Instance.make (Builders.path n))
        [ 4; 8; 16 ] ~constant:true;
      sized "degree-one (O(1))" D_degree_one.suite
        (fun n -> Instance.make (Builders.path n))
        [ 4; 8; 16; 32 ] ~constant:true;
      sized "even-cycle (O(1))" D_even_cycle.suite
        (fun n -> Instance.make (Builders.cycle n))
        [ 4; 8; 16; 32 ] ~constant:true;
      sized "spanning (O(log n))" D_spanning.suite
        (fun n -> Instance.make (Builders.path n))
        [ 4; 16; 64 ] ~constant:false;
      sized "shatter (O(min(D^2,n)+log n))" D_shatter.suite
        (fun n -> Instance.make (Builders.path n))
        [ 5; 10; 40 ] ~constant:false;
      sized "watermelon (O(log n))" D_watermelon.suite
        (fun n -> Instance.make (Builders.watermelon [ n; n ]))
        [ 3; 6; 12 ] ~constant:false;
    ]
  in
  (* shatter's component term: spiders with growing leg count *)
  let spider_row =
    let bits legs = measure D_shatter.suite (Instance.make (spider legs 2)) in
    let b3 = bits 3 and b6 = bits 6 in
    Report.check "shatter certificate grows with component count"
      (b3 > 0 && b6 > b3)
      ~expected:"more components -> larger"
      ~actual:(Printf.sprintf "3 legs: %db, 6 legs: %db" b3 b6)
  in
  { Report.id = "E12"; title = "Certificate sizes vs the paper's bounds";
    rows = rows @ [ spider_row ] }

(* ------------------------------------------------------------------ *)
(* E13: synchronous simulator                                           *)

let e13_sync ?(cfg = Run_cfg.default) () =
  let rng = Run_cfg.rng cfg in
  let cases =
    List.init 6 (fun i ->
        let n = 6 + i in
        let g = Builders.random_connected rng n 0.25 in
        Instance.random rng g)
  in
  let rows =
    List.concat_map
      (fun r ->
        List.mapi
          (fun i inst ->
            let ok = Sync_runner.knowledge_matches_view inst ~r in
            Report.check
              (Printf.sprintf "flooding = View.extract (instance %d, r=%d)" i r)
              ok ~expected:"equal" ~actual:(string_of_bool ok))
          cases)
      [ 1; 2; 3 ]
  in
  let msg_row =
    let g = Builders.cycle 8 in
    let m = Sync_runner.messages_sent g ~rounds:3 in
    Report.check "message count = 2|E|r" (m = 2 * 8 * 3) ~expected:"48"
      ~actual:(string_of_int m)
  in
  (* asynchronous execution under adversarial scheduling still yields
     (at least) the view knowledge: the paper's round-based verifiers
     lose no generality *)
  let async_rows =
    List.mapi
      (fun i inst ->
        let ok = Async_runner.eventually_matches_views inst ~r:2 in
        Report.check
          (Printf.sprintf "async quiescence covers views (instance %d)" i)
          ok ~expected:"covered under all schedulers" ~actual:(string_of_bool ok))
      (List.filteri (fun i _ -> i < 3) cases)
  in
  let async_sync_row =
    let inst = List.hd cases in
    let final, _ = Async_runner.run_to_quiescence inst in
    let sync = Sync_runner.run inst ~rounds:(Instance.order inst) in
    Report.check "async fixpoint = sync fixpoint" (final = sync)
      ~expected:"equal" ~actual:(string_of_bool (final = sync))
  in
  { Report.id = "E13"; title = "Sec. 2.2: message-passing simulators vs views";
    rows = rows @ (msg_row :: async_rows) @ [ async_sync_row ] }

(* ------------------------------------------------------------------ *)
(* E14: the promise-free separation motivation (Sec. 1) in SLOCAL       *)

let e14_slocal ?(cfg = Run_cfg.default) () =
  let rng = Run_cfg.rng cfg in
  (* (a) the online-LOCAL promise: under strongly sound certification,
     adversarial labelings always leave a bipartite accepted region *)
  let promise_row =
    let suite = D_union.suite in
    let g = Builders.friendship 3 in
    let inst = Instance.make g in
    let ok = ref true in
    for _ = 1 to 500 do
      let lab = Labeling.random rng ~alphabet:D_union.alphabet g in
      let sub, _ =
        Decoder.accepted_subgraph suite.Decoder.dec (Instance.with_labels inst lab)
      in
      if not (Coloring.is_bipartite sub) then ok := false
    done;
    Report.check "accepted regions stay 2-colorable (the Pi promise)" !ok
      ~expected:"always bipartite" ~actual:(string_of_bool !ok)
  in
  (* (b) with revealing certificates, SLOCAL(1) solves Pi by extraction *)
  let trivial = D_trivial.suite ~k:2 in
  let graphs =
    Enumerate.classes 4 @ Enumerate.classes 3 |> Enumerate.bipartite
  in
  let fam =
    Neighborhood.exhaustive_family trivial ~graphs ~ports:`All
      ~ids:(`Canonical_bound 8) ~cfg ()
  in
  let reveal_row =
    match Extractor.of_verdict (Hiding.check ~k:2 trivial.Decoder.dec fam) with
    | None ->
        Report.check "extraction-based SLOCAL(1) on revealing certificates" false
          ~expected:"solves" ~actual:"no extractor"
    | Some ex ->
        let algo = Slocal.of_local_algo ex.Extractor.algo in
        let works =
          List.for_all
            (fun inst ->
              let colors = Slocal.execute_canonical algo inst in
              Coloring.is_proper inst.Instance.graph colors)
            fam
        in
        Report.check "extraction-based SLOCAL(1) on revealing certificates" works
          ~expected:"proper 2-colorings" ~actual:(string_of_bool works)
  in
  (* (c) with hiding certificates the same strategy is stranded: the
     even-cycle decoder's V is not 2-colorable, so no extraction-based
     SLOCAL algorithm exists at all; greedy first-fit with 2 colors also
     fails on some processing order while 3 colors always suffice *)
  let cyc_fam =
    Neighborhood.exhaustive_family D_even_cycle.suite ~graphs:[ Builders.cycle 6 ]
      ~ports:`All ~cfg ()
  in
  let hiding_row =
    let stranded = Hiding.is_hiding_on ~k:2 D_even_cycle.decoder cyc_fam in
    Report.check "no extraction strategy exists under hiding certificates"
      stranded ~expected:"V(D,6) not 2-colorable" ~actual:(string_of_bool stranded)
  in
  let greedy_rows =
    let inst = List.hd cyc_fam in
    let g = inst.Instance.graph in
    let all_orders =
      (* permutations of 6 nodes *)
      let rec perms = function
        | [] -> [ [] ]
        | l ->
            List.concat_map
              (fun x ->
                List.map (fun p -> x :: p)
                  (perms (List.filter (fun y -> y <> x) l)))
              l
      in
      perms (Graph.nodes g)
    in
    let ff2 = Slocal.first_fit_k ~radius:1 ~k:2 in
    let ff2_fails_somewhere =
      List.exists
        (fun order ->
          let out = Slocal.execute ff2 inst ~order in
          Array.exists (fun c -> c < 0) out
          || not (Coloring.is_proper g out))
        all_orders
    in
    let greedy3_always =
      List.for_all
        (fun order ->
          let out = Slocal.execute (Slocal.greedy_coloring ~radius:1) inst ~order in
          Coloring.is_proper g out
          && Array.for_all (fun c -> c <= 2) out)
        all_orders
    in
    [
      Report.check "2-color first-fit fails on some order (certs do not help it)"
        ff2_fails_somewhere ~expected:"some order fails"
        ~actual:(string_of_bool ff2_fails_somewhere);
      Report.check "3-color greedy succeeds on every order (Delta+1)"
        greedy3_always ~expected:"all orders succeed"
        ~actual:(string_of_bool greedy3_always);
    ]
  in
  { Report.id = "E14"; title = "Sec. 1 motivation: SLOCAL and the Pi problem";
    rows = (promise_row :: reveal_row :: hiding_row :: greedy_rows) }

(* ------------------------------------------------------------------ *)
(* E15: quantified hiding (Sec. 2.4 future work)                        *)

let e15_quantified ?(cfg = Run_cfg.default) () =
  (* even-cycle decoder on C4: every view lies on odd cycles, so even
     the best extractor must fail on a constant fraction of nodes *)
  let fam4 =
    Neighborhood.exhaustive_family D_even_cycle.suite ~graphs:[ Builders.cycle 4 ]
      ~ports:`All ~cfg ()
  in
  let nbhd4 = Neighborhood.build D_even_cycle.decoder fam4 in
  let res4 = Quantified.best_extractor ~k:2 nbhd4 fam4 in
  let cyc_rows =
    [
      Report.check "search over all extractors is exact on C4" res4.Quantified.exact
        ~expected:"exact" ~actual:(string_of_bool res4.Quantified.exact);
      Report.check "even-cycle decoder hides a constant fraction"
        (Quantified.hiding_level res4 > 0.0)
        ~expected:"> 0"
        ~actual:(Printf.sprintf "hiding level %.2f" (Quantified.hiding_level res4));
    ]
  in
  (* degree-one decoder: hiding is concentrated at the bot/top pair, so
     extraction succeeds on all but a vanishing share of nodes *)
  let d1_fam =
    Neighborhood.exhaustive_family D_degree_one.suite
      ~graphs:(min_degree_one_family ~cfg ~max_n:4 ())
      ~cfg ()
  in
  let d1_nbhd = Neighborhood.build D_degree_one.decoder d1_fam in
  let res1 = Quantified.best_extractor ~k:2 d1_nbhd d1_fam in
  let d1_rows =
    [
      Report.check "degree-one decoder also hides (> 0)"
        (Quantified.hiding_level res1 > 0.0)
        ~expected:"> 0"
        ~actual:(Printf.sprintf "hiding level %.2f" (Quantified.hiding_level res1));
    ]
  in
  (* the revealing baseline extracts everything *)
  let trivial = D_trivial.suite ~k:2 in
  let tf =
    List.filter_map
      (fun g -> Decoder.certify trivial (Instance.make g))
      [ Builders.path 4; Builders.cycle 4 ]
  in
  let t_nbhd = Neighborhood.build trivial.Decoder.dec tf in
  let rest = Quantified.best_extractor ~k:2 t_nbhd tf in
  let t_row =
    Report.check "trivial baseline: full extraction"
      (rest.Quantified.worst_case_success = 1.0)
      ~expected:"success 1.0"
      ~actual:(Printf.sprintf "%.2f" rest.Quantified.worst_case_success)
  in
  { Report.id = "E15"; title = "Sec. 2.4 future work: quantified hiding";
    rows = cyc_rows @ d1_rows @ [ t_row ] }

(* ------------------------------------------------------------------ *)
(* E16: the k-coloring generalization of Lemma 4.1                      *)

let e16_hidden_leaf ?(cfg = Run_cfg.default) () =
  let rng = Run_cfg.rng cfg in
  let rows_for ~k =
    let suite = D_hidden_leaf.suite ~k in
    let yes_family =
      min_degree_one_family ~cfg ~max_n:5 ()
      |> List.filter (fun g -> Coloring.is_k_colorable g ~k)
      |> List.map Instance.make
    in
    let completeness =
      (* completeness for the k-col language: the promise class filters
         by k-colorability, so check acceptance directly *)
      let ok =
        List.for_all
          (fun inst ->
            match Decoder.certify suite inst with
            | Some c -> Decoder.accepts_all suite.Decoder.dec c
            | None -> not (suite.Decoder.promise inst.Instance.graph))
          yes_family
      in
      Report.check
        (Printf.sprintf "k=%d completeness (%d instances)" k (List.length yes_family))
        ok ~expected:"accepted" ~actual:(string_of_bool ok)
    in
    let strong =
      let instances =
        List.map Instance.make
          (List.concat_map Enumerate.classes [ 3; 4 ])
      in
      let ok =
        List.for_all
          (fun inst ->
            let exception Bad in
            try
              Labeling.iter_all ~alphabet:(D_hidden_leaf.alphabet ~k)
                inst.Instance.graph (fun lab ->
                  let sub, _ =
                    Decoder.accepted_subgraph suite.Decoder.dec
                      (Instance.with_labels inst (Array.copy lab))
                  in
                  if not (Coloring.is_k_colorable sub ~k) then raise Bad);
              true
            with Bad -> false)
          instances
      in
      Report.check
        (Printf.sprintf "k=%d strong soundness (all labelings, n<=4)" k)
        ok ~expected:"accepting subgraphs k-colorable" ~actual:(string_of_bool ok)
    in
    let anonymity =
      verdict_row
        (Printf.sprintf "k=%d anonymity" k)
        ~expect_pass:true
        (Checker.anonymity suite.Decoder.dec ~trials:10 rng
           (List.filter_map (Decoder.certify suite) yes_family))
    in
    (* Hiding diverges between k = 2 and k >= 3. At k = 2 the leaf trick
       hides (odd cycle in V). At k = 3 the small-scale neighborhood
       graphs remain 3-colorable — the Lemma 3.2 extractor re-colors
       freely, so a leaf that merely cannot see one designated color is
       not enough — and we exhibit the working k = 3 extractor instead
       (the constructive general-k direction of Lemma 3.2). *)
    let fam =
      Neighborhood.exhaustive_family suite
        ~graphs:(min_degree_one_family ~cfg ~max_n:4 ()
                 |> List.filter (fun g -> Coloring.is_k_colorable g ~k))
        ~cfg ()
    in
    let yes g = Coloring.is_k_colorable g ~k in
    let hiding =
      match (k, Hiding.check ~yes ~k suite.Decoder.dec fam) with
      | 2, Hiding.Hiding { witness; nbhd } ->
          Report.check "k=2 hiding: odd cycle in V" true ~expected:"witness exists"
            ~actual:
              (Printf.sprintf "witness of %d views (|V|=%d)" (List.length witness)
                 (Neighborhood.order nbhd))
      | 2, Hiding.Colorable _ ->
          Report.check "k=2 hiding" false ~expected:"witness exists"
            ~actual:"V 2-colorable"
      | _, (Hiding.Colorable _ as verdict) -> (
          match Extractor.of_verdict verdict with
          | Some ex ->
              let works =
                List.for_all
                  (fun inst ->
                    let colors = Extractor.extract ex inst in
                    Array.for_all (fun c -> c >= 0) colors
                    && Coloring.is_proper inst.Instance.graph colors)
                  fam
              in
              Report.check
                (Printf.sprintf
                   "k=%d: V stays %d-colorable and the Lemma 3.2 extractor works"
                   k k)
                works ~expected:"extraction succeeds" ~actual:(string_of_bool works)
          | None ->
              Report.check (Printf.sprintf "k=%d extractor" k) false
                ~expected:"built" ~actual:"missing")
      | _, Hiding.Hiding { witness; _ } ->
          Report.check
            (Printf.sprintf "k=%d: unexpectedly non-%d-colorable V" k k)
            true ~expected:"(bonus hiding witness)"
            ~actual:(Printf.sprintf "witness of %d views" (List.length witness))
    in
    [ completeness; strong; anonymity; hiding ]
  in
  { Report.id = "E16";
    title = "Sec. 1.3 general k: the hidden-leaf decoder at k = 2 and k = 3";
    rows = rows_for ~k:2 @ rows_for ~k:3 }

(* ------------------------------------------------------------------ *)
(* E17: exhaustive decoder-space search — is the even-cycle scheme      *)
(* minimal-ish? No 1-bit port-oblivious anonymous decoder is a strong   *)
(* and hiding LCP on even cycles.                                       *)

let e17_decoder_space ?(cfg = Run_cfg.default) () =
  (* a port-oblivious 1-bit decoder is determined by its accept-set over
     the 6 view classes (own bit, multiset of the two neighbor bits) *)
  let class_of view =
    match
      ( Certificate.int_field (View.center_label view),
        List.map
          (fun (w, _, _) -> Certificate.int_field (View.label view w))
          (View.center_neighbors view) )
    with
    | Some own, [ Some a; Some b ] when own <= 1 && a <= 1 && b <= 1 ->
        Some ((own * 3) + a + b)
    | _ -> None
  in
  let decoder_of mask =
    Decoder.make
      ~name:(Printf.sprintf "1bit-%02d" mask)
      ~radius:1 ~anonymous:true
      (fun view ->
        match class_of view with
        | Some c -> mask land (1 lsl c) <> 0
        | None -> false)
  in
  let alphabet = [ "0"; "1" ] in
  let complete dec =
    List.for_all
      (fun n ->
        Prover.find_accepted dec ~alphabet (Instance.make (Builders.cycle n)) <> None)
      [ 4; 6 ]
  in
  let strong dec =
    List.for_all
      (fun g ->
        let inst = Instance.make g in
        let exception Bad in
        try
          Labeling.iter_all ~alphabet g (fun lab ->
              let sub, _ =
                Decoder.accepted_subgraph dec
                  (Instance.with_labels inst (Array.copy lab))
              in
              if not (Coloring.is_bipartite sub) then raise Bad);
          true
        with Bad -> false)
      [ Builders.cycle 3; Builders.cycle 4; Builders.cycle 5; Builders.cycle 6 ]
  in
  let hiding dec =
    let suite =
      {
        Decoder.dec;
        promise = (fun g -> Graph.is_cycle g && Graph.order g mod 2 = 0);
        prover = (fun _ -> None);
        adversary_alphabet = (fun _ -> alphabet);
        cert_bits = (fun _ -> 1);
      }
    in
    let fam =
      Neighborhood.exhaustive_family suite
        ~graphs:[ Builders.cycle 4; Builders.cycle 6 ]
        ~ports:`All ~cfg ()
    in
    fam <> [] && Hiding.is_hiding_on ~k:2 dec fam
  in
  let complete_count = ref 0 in
  let strong_count = ref 0 in
  let all_three = ref 0 in
  for mask = 0 to 63 do
    let dec = decoder_of mask in
    let c = complete dec in
    if c then incr complete_count;
    if c && strong dec then begin
      incr strong_count;
      if hiding dec then incr all_three
    end
  done;
  {
    Report.id = "E17";
    title = "decoder-space search: 1-bit port-oblivious LCPs on even cycles";
    rows =
      [
        Report.check "some 1-bit decoders are complete" (!complete_count > 0)
          ~expected:"> 0 (e.g. the revealing one)"
          ~actual:(Printf.sprintf "%d of 64" !complete_count);
        Report.check "some are complete and strongly sound" (!strong_count > 0)
          ~expected:"> 0" ~actual:(Printf.sprintf "%d of 64" !strong_count);
        Report.check
          "none is simultaneously complete, strong and hiding (ports are essential)"
          (!all_three = 0) ~expected:"0 of 64"
          ~actual:(Printf.sprintf "%d of 64" !all_three);
      ];
  }

(* ------------------------------------------------------------------ *)
(* E18: resilient labeling (Sec. 1.2 related work)                      *)

let e18_resilient ?(cfg = Run_cfg.default) () =
  let rng = Run_cfg.rng cfg in
  let base = D_trivial.suite ~k:2 in
  let res = Resilient.wrap base in
  let graphs = [ Builders.path 6; Builders.cycle 6; Builders.grid 3 3 ] in
  let completeness =
    verdict_row "wrapped completeness (no erasures)" ~expect_pass:true
      (Checker.completeness res (List.map Instance.make graphs))
  in
  let single_erasures =
    let ok =
      List.for_all
        (fun g ->
          let inst = Instance.make g in
          match Decoder.certify res inst with
          | None -> false
          | Some certified ->
              List.for_all
                (fun v ->
                  Decoder.accepts_all res.Decoder.dec
                    (Resilient.erase certified ~nodes:[ v ]))
                (Graph.nodes g))
        graphs
    in
    Report.check "accepted after every single-certificate erasure" ok
      ~expected:"resilient" ~actual:(string_of_bool ok)
  in
  let independent_erasures =
    let g = Builders.path 6 in
    let inst = Option.get (Decoder.certify res (Instance.make g)) in
    let erased = [ 0; 2; 4 ] in
    let ok =
      Resilient.reconstructible g ~erased
      && Decoder.accepts_all res.Decoder.dec (Resilient.erase inst ~nodes:erased)
    in
    Report.check "accepted after erasing an independent set" ok
      ~expected:"resilient" ~actual:(string_of_bool ok)
  in
  let tamper =
    let g = Builders.path 4 in
    let inst = Option.get (Decoder.certify res (Instance.make g)) in
    (* corrupt node 1's backup about node 0, then erase node 0: the
       reconstructors now disagree with node 2's backup or accept a
       wrong certificate - either way some node must reject *)
    let lab = Array.copy inst.Instance.labels in
    lab.(1) <-
      (match String.split_on_char '|' lab.(1) with
      | own :: _ -> own ^ "|p1=1|p2=0"
      | [] -> assert false);
    let tampered = Resilient.erase (Instance.with_labels inst lab) ~nodes:[ 0 ] in
    let ok = not (Decoder.accepts_all res.Decoder.dec tampered) in
    Report.check "tampered backups detected" ok ~expected:"rejected"
      ~actual:(string_of_bool ok)
  in
  let strong =
    verdict_row "wrapped strong soundness (mutation adversary)" ~expect_pass:true
      (Checker.strong_soundness_random res ~k:2 ~trials:1000 rng
         [ Instance.make (Builders.cycle 5) ])
  in
  let radius =
    Report.check "wrapped decoder runs one extra round"
      (res.Decoder.dec.Decoder.radius = base.Decoder.dec.Decoder.radius + 1)
      ~expected:"r + 1"
      ~actual:(string_of_int res.Decoder.dec.Decoder.radius)
  in
  { Report.id = "E18"; title = "Sec. 1.2 related work: resilient labeling";
    rows = [ completeness; single_erasures; independent_erasures; tamper; strong; radius ] }

(* ------------------------------------------------------------------ *)
(* E19: hiding against stronger extractors                              *)

let e19_extractor_radius ?(cfg = Run_cfg.default) () =
  (* Hiding (Sec. 2.4) pits an r-round decoder against r-round
     extractors of the same kind (anonymous decoders against anonymous
     extractors). Handing the extractor a LARGER radius r' asks how
     robust the constructions are; Lemma 3.2 applies verbatim to the
     radius-r' neighborhood graph. Measured:

     - the even-cycle scheme defeats anonymous extractors of EVERY
       radius: across the port-assignment space, some accepted ring has
       two adjacent nodes with reflection-isomorphic views - a looped
       view class, which no extractor can color;
     - the degree-one scheme (loop-free on its family) is hiding at
       r' = 1 but extractable by radius-2 anonymous extractors on the
       n <= 4 family, whose views then cover the whole instance;
     - against identifier-aware extractors on the canonically-identified
       family the neighborhood graph is colorable - consistent with the
       paper defining anonymous hiding against anonymous extractors. *)
  let cyc_fam =
    Neighborhood.exhaustive_family D_even_cycle.suite
      ~graphs:[ Builders.cycle 6 ] ~ports:`All ~cfg ()
  in
  let cyc_rows =
    List.map
      (fun r' ->
        let nbhd =
          Neighborhood.build ~view_radius:r' D_even_cycle.decoder cyc_fam
        in
        let hiding = not (Neighborhood.is_k_colorable nbhd ~k:2) in
        Report.check
          (Printf.sprintf "even-cycle vs %d-round anonymous extractors" r')
          hiding ~expected:"still hiding"
          ~actual:
            (Printf.sprintf "hiding=%b (%d looped view classes, |V|=%d)" hiding
               (List.length nbhd.Neighborhood.loops)
               (Neighborhood.order nbhd)))
      [ 1; 2; 3 ]
  in
  let d1_fam =
    Neighborhood.exhaustive_family D_degree_one.suite
      ~graphs:(min_degree_one_family ~cfg ~max_n:4 ())
      ~cfg ()
  in
  let d1_hiding =
    let nbhd = Neighborhood.build ~view_radius:1 D_degree_one.decoder d1_fam in
    let hiding = not (Neighborhood.is_k_colorable nbhd ~k:2) in
    Report.check "degree-one vs 1-round extractors" hiding ~expected:"hiding"
      ~actual:(string_of_bool hiding)
  in
  let d1_broken =
    let nbhd = Neighborhood.build ~view_radius:2 D_degree_one.decoder d1_fam in
    match Extractor.of_verdict (Hiding.of_neighborhood ~k:2 nbhd) with
    | Some ex ->
        let works = List.for_all (Extractor.extraction_succeeds ex) d1_fam in
        Report.check
          "degree-one (n<=4) vs 2-round extractors: extractor verified" works
          ~expected:"extractable (views cover the instance)"
          ~actual:(string_of_bool works)
    | None ->
        Report.check "degree-one (n<=4) vs 2-round extractors" false
          ~expected:"extractable" ~actual:"still hiding"
  in
  let identified_row =
    let nbhd =
      Neighborhood.build ~mode:Neighborhood.Identified ~view_radius:1
        D_even_cycle.decoder cyc_fam
    in
    let colorable = Neighborhood.is_k_colorable nbhd ~k:2 in
    Report.check
      "identifier-aware comparison is colorable (anonymity is essential)"
      colorable
      ~expected:"colorable on canonically-identified family"
      ~actual:
        (Printf.sprintf "colorable=%b, loops=%d" colorable
           (List.length nbhd.Neighborhood.loops))
  in
  { Report.id = "E19";
    title = "hiding vs stronger extractors: loops defeat every radius on rings";
    rows = cyc_rows @ [ d1_hiding; d1_broken; identified_row ] }

(* ------------------------------------------------------------------ *)
(* E20: the round/size trade-off                                        *)

let e20_edge_bit ?(cfg = Run_cfg.default) () =
  let heavy = cfg.Run_cfg.heavy in
  (* E17 rules out 1-bit one-round decoders; D_edge_bit spends a second
     round instead of Lemma 4.2's six bits: each node publishes only the
     color of its port-1 edge, and radius-2 verifiers solve their local
     alternation systems. The full battery passes: a strong and hiding
     LCP for 2-col on even cycles with single-bit certificates. *)
  let suite = D_edge_bit.suite in
  let rng = Run_cfg.rng cfg in
  let yes_family =
    List.map (fun n -> Instance.make (Builders.cycle n)) [ 4; 6; 8; 10 ]
  in
  let completeness =
    verdict_row "completeness (C4..C10)" ~expect_pass:true
      (Checker.completeness suite yes_family)
  in
  let soundness_all_ports =
    let ns = if heavy then [ 3; 5; 7; 9 ] else [ 3; 5; 7 ] in
    let ok =
      List.for_all
        (fun n ->
          let g = Builders.cycle n in
          List.for_all
            (fun prt ->
              Prover.find_accepted suite.Decoder.dec
                ~alphabet:D_edge_bit.alphabet
                (Instance.make g ~ports:prt)
              = None)
            (Port.enumerate g))
        ns
    in
    Report.check
      (Printf.sprintf "soundness on odd rings x all ports (up to C%d)"
         (List.fold_left max 0 ns))
      ok ~expected:"no accepted labeling" ~actual:(string_of_bool ok)
  in
  let strong =
    let ns = if heavy then [ 3; 4; 5; 6 ] else [ 3; 4; 5 ] in
    let ok =
      List.for_all
        (fun n ->
          let g = Builders.cycle n in
          List.for_all
            (fun prt ->
              let inst = Instance.make g ~ports:prt in
              let exception Bad in
              try
                Labeling.iter_all ~alphabet:D_edge_bit.alphabet g (fun lab ->
                    let sub, _ =
                      Decoder.accepted_subgraph suite.Decoder.dec
                        (Instance.with_labels inst (Array.copy lab))
                    in
                    if not (Coloring.is_bipartite sub) then raise Bad);
                true
              with Bad -> false)
            (Port.enumerate g))
        ns
    in
    Report.check "strong soundness (all labelings x all ports)" ok
      ~expected:"accepting subgraphs bipartite" ~actual:(string_of_bool ok)
  in
  let anonymity =
    verdict_row "anonymity" ~expect_pass:true
      (Checker.anonymity suite.Decoder.dec ~trials:10 rng
         (List.filter_map (Decoder.certify suite) yes_family))
  in
  let hiding =
    let fam =
      Neighborhood.exhaustive_family suite ~graphs:[ Builders.cycle 6 ]
        ~ports:`All ~cfg ()
    in
    let nbhd = Neighborhood.build suite.Decoder.dec fam in
    let hiding = not (Neighborhood.is_k_colorable nbhd ~k:2) in
    Report.check "hiding with single-bit certificates" hiding
      ~expected:"hiding"
      ~actual:
        (Printf.sprintf "hiding=%b (|V|=%d, %d loops)" hiding
           (Neighborhood.order nbhd)
           (List.length nbhd.Neighborhood.loops))
  in
  let size_row =
    Report.check "certificate size vs Lemma 4.2" true
      ~expected:"1 bit at r=2 vs 6 bits at r=1"
      ~actual:
        (Printf.sprintf "%d bit (r=%d) vs %d bits (r=%d)"
           (suite.Decoder.cert_bits (Instance.make (Builders.cycle 6)))
           suite.Decoder.dec.Decoder.radius
           (D_even_cycle.suite.Decoder.cert_bits (Instance.make (Builders.cycle 6)))
           D_even_cycle.decoder.Decoder.radius)
  in
  { Report.id = "E20";
    title = "round/size trade-off: a 1-bit 2-round strong and hiding LCP on rings";
    rows = [ completeness; soundness_all_ports; strong; anonymity; hiding; size_row ] }

let all =
  [
    ("E1", e1_forgetful);
    ("E2", e2_views);
    ("E3", e3_degree_one);
    ("E4", e4_even_cycle);
    ("E5", e5_union);
    ("E6", e6_shatter);
    ("E7", e7_watermelon);
    ("E8", e8_extraction);
    ("E9", e9_realizability);
    ("E10", e10_lower_bound);
    ("E11", e11_ramsey);
    ("E12", e12_cert_sizes);
    ("E13", e13_sync);
    ("E14", e14_slocal);
    ("E15", e15_quantified);
    ("E16", e16_hidden_leaf);
    ("E17", e17_decoder_space);
    ("E18", e18_resilient);
    ("E19", e19_extractor_radius);
    ("E20", e20_edge_bit);
  ]

let run_all ?(cfg = Run_cfg.default) () =
  List.filter_map
    (fun (id, experiment) ->
      if Run_cfg.expired cfg then begin
        Run_cfg.progress cfg (id ^ " skipped: deadline expired");
        None
      end
      else begin
        let r =
          Run_cfg.span cfg ("experiments/" ^ id) (fun () ->
              experiment ?cfg:(Some cfg) ())
        in
        Run_cfg.count cfg "experiments_run";
        Run_cfg.progress cfg (Report.summary_line r);
        Some r
      end)
    all
