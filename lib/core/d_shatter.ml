open Lcp_graph
open Lcp_local

let closed_neighborhood g v =
  v :: List.rev (Graph.fold_neighbors (fun w acc -> w :: acc) g v [])

let shatter_components g v =
  let removed = closed_neighborhood g v in
  let rest = List.filter (fun w -> not (List.mem w removed)) (Graph.nodes g) in
  let sub, old_of_new = Graph.induced g rest in
  List.map (List.map (fun w -> old_of_new.(w))) (Graph.components sub)

let shatter_point g =
  Graph.fold_nodes
    (fun v acc ->
      if acc = None && List.length (shatter_components g v) >= 2 then Some v
      else acc)
    g None

let is_shatter_graph g = shatter_point g <> None

let encode_type0 ~id = Printf.sprintf "0:%d" id
let encode_type1 ~id ~colors =
  Printf.sprintf "1:%d:%s" id (String.concat "" (List.map string_of_int colors))
let encode_type2 ~id ~comp ~color = Printf.sprintf "2:%d:%d:%d" id comp color

type cert =
  | Shatter of { id : int }
  | Neighbor of { id : int; colors : int array }
  | Component of { id : int; comp : int; color : int }

let parse s =
  match Certificate.fields s with
  | [ "0"; id ] -> (
      match Certificate.int_field id with
      | Some id when id >= 1 -> Some (Shatter { id })
      | _ -> None)
  | [ "1"; id; bits ] -> (
      match Certificate.int_field id with
      | Some id
        when id >= 1 && bits <> ""
             && String.for_all (fun c -> c = '0' || c = '1') bits ->
          let colors =
            Array.init (String.length bits) (fun i -> Char.code bits.[i] - Char.code '0')
          in
          Some (Neighbor { id; colors })
      | _ -> None)
  | [ "2"; id; comp; color ] -> (
      match
        ( Certificate.int_field id,
          Certificate.int_field comp,
          Certificate.int_field color )
      with
      | Some id, Some comp, Some color when id >= 1 && comp >= 1 && color <= 1 ->
          Some (Component { id; comp; color })
      | _ -> None)
  | _ -> None

let cert_id = function
  | Shatter { id } | Neighbor { id; _ } | Component { id; _ } -> id

let accepts view =
  match parse (View.center_label view) with
  | None -> false
  | Some mine -> (
      let raw_neighbors =
        List.map
          (fun (w, _, _) -> (w, parse (View.label view w)))
          (View.center_neighbors view)
      in
      if List.exists (fun (_, c) -> c = None) raw_neighbors then false
      else
        let neighbors = List.map (fun (w, c) -> (w, Option.get c)) raw_neighbors in
        (* condition shared by all types: the whole closed neighborhood
           agrees on the shatter point's identifier *)
        List.for_all (fun (_, c) -> cert_id c = cert_id mine) neighbors
        &&
        match mine with
        | Shatter { id } ->
            (* rule 1: own id correct; all neighbors type 1 with equal
               content *)
            id = View.center_id view
            && List.for_all
                 (fun (_, c) -> match c with Neighbor _ -> true | _ -> false)
                 neighbors
            && begin
                 let contents =
                   List.filter_map
                     (fun (w, c) ->
                       match c with Neighbor _ -> Some (View.label view w) | _ -> None)
                     neighbors
                 in
                 List.sort_uniq Stdlib.compare contents |> List.length <= 1
               end
        | Neighbor { colors; _ } ->
            (* rule 2 *)
            let type0s =
              List.filter (fun (_, c) -> match c with Shatter _ -> true | _ -> false)
                neighbors
            in
            let no_type1 =
              List.for_all
                (fun (_, c) -> match c with Neighbor _ -> false | _ -> true)
                neighbors
            in
            let comp_ok =
              List.for_all
                (fun (_, c) ->
                  match c with
                  | Component { comp; color; _ } ->
                      comp <= Array.length colors && colors.(comp - 1) = color
                  | Shatter _ | Neighbor _ -> true)
                neighbors
            in
            no_type1 && List.length type0s = 1 && comp_ok
        | Component { comp; color; _ } ->
            (* rule 3 *)
            List.for_all
              (fun (_, c) ->
                match c with
                | Shatter _ -> false
                | Neighbor { colors; _ } ->
                    comp <= Array.length colors && colors.(comp - 1) = color
                | Component { comp = comp'; color = color'; _ } ->
                    comp' = comp && color' <> color)
              neighbors)

let decoder =
  Decoder.make ~port_invariant:true ~name:"shatter" ~radius:1 ~anonymous:false
    accepts

let prover (inst : Instance.t) =
  let g = inst.Instance.graph in
  match (Coloring.two_color g, shatter_point g) with
  | None, _ | _, None -> None
  | Some _, Some v -> (
      let comps = shatter_components g v in
      let n = Graph.order g in
      let vid = Ident.id inst.Instance.ids v in
      (* per-component 2-colorings and the color seen from N(v) *)
      let comp_of = Array.make n (-1) in
      List.iteri (fun i comp -> List.iter (fun w -> comp_of.(w) <- i) comp) comps;
      let colorings =
        List.map
          (fun comp ->
            let sub, old_of_new = Graph.induced g comp in
            match Coloring.two_color sub with
            | None -> None
            | Some cs ->
                let tbl = Hashtbl.create (List.length comp) in
                Array.iteri (fun i c -> Hashtbl.replace tbl old_of_new.(i) c) cs;
                Some tbl)
          comps
      in
      if List.exists Option.is_none colorings then None
      else
        let colorings = Array.of_list (List.map Option.get colorings) in
        (* the partition of component i adjacent to N(v); bipartiteness
           of G guarantees it is unique (Lemma 7.1 condition 3) *)
        let seen_color = Array.make (Array.length colorings) 0 in
        let consistent = ref true in
        Array.iteri
          (fun i tbl ->
            let adjacent_colors =
              Hashtbl.fold
                (fun w c acc ->
                  if Graph.exists_neighbor (fun u -> Graph.mem_edge g u w) g v
                  then c :: acc
                  else acc)
                tbl []
              |> List.sort_uniq Stdlib.compare
            in
            match adjacent_colors with
            | [] -> seen_color.(i) <- 0
            | [ c ] -> seen_color.(i) <- c
            | _ -> consistent := false)
          colorings;
        if not !consistent then None
        else begin
          let vector = Array.to_list seen_color in
          let lab =
            Array.init n (fun w ->
                if w = v then encode_type0 ~id:vid
                else if Graph.mem_edge g v w then
                  encode_type1 ~id:vid ~colors:vector
                else
                  let i = comp_of.(w) in
                  assert (i >= 0);
                  encode_type2 ~id:vid ~comp:(i + 1)
                    ~color:(Hashtbl.find colorings.(i) w))
          in
          Some lab
        end)

let adversary_alphabet (inst : Instance.t) =
  (* exhaustive up to component count 2 and the instance's own ids;
     meant for exhaustive strong-soundness checks on n <= 4 *)
  let ids = Array.to_list inst.Instance.ids.Ident.ids in
  let certs = ref [ Decoder.junk ] in
  List.iter
    (fun id ->
      certs := encode_type0 ~id :: !certs;
      List.iter
        (fun colors -> certs := encode_type1 ~id ~colors :: !certs)
        [ [ 0 ]; [ 1 ]; [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ];
      List.iter
        (fun comp ->
          List.iter
            (fun color -> certs := encode_type2 ~id ~comp ~color :: !certs)
            [ 0; 1 ])
        [ 1; 2 ])
    ids;
  !certs

let suite =
  {
    Decoder.dec = decoder;
    promise = is_shatter_graph;
    prover;
    adversary_alphabet;
    cert_bits =
      (fun inst ->
        let g = inst.Instance.graph in
        match shatter_point g with
        | None -> 0
        | Some v ->
            let k = List.length (shatter_components g v) in
            let bound = inst.Instance.ids.Ident.bound in
            Certificate.bits_of_parts
              [ 2; Certificate.bits_for_id ~bound; k;
                Certificate.bits_for_int ~max:(max 1 k); 1 ]);
  }
