(** r-round binary decoders and the LCP bundle (paper Sec. 2.2–2.5).

    A decoder is the distributed verifier: a computable map from
    radius-r views to accept/reject. A {!suite} bundles a decoder with
    everything needed to exercise it as a full LCP: the promise class,
    an honest prover, an adversary alphabet for exhaustive soundness
    checking, and the certificate-size accounting. *)

open Lcp_graph
open Lcp_local

type t = {
  name : string;
  radius : int;
  anonymous : bool;  (** claimed; tests verify it empirically *)
  port_invariant : bool;
      (** claimed: verdicts never depend on port numbers. Verified
          empirically by the sanitizer like [anonymous]. A decoder that
          is both anonymous and port-invariant has Aut-invariant
          verdicts, which licenses the automorphism-orbit search
          pruning ({!Lcp_engine.Auto}); defaults to [false] — reading
          ports is the norm in this library. *)
  accepts : View.t -> bool;
}

val make :
  ?port_invariant:bool ->
  name:string ->
  radius:int ->
  anonymous:bool ->
  (View.t -> bool) ->
  t

val run : t -> Instance.t -> bool array
(** Per-node verdicts. *)

val accepts_all : t -> Instance.t -> bool

val accepting_nodes : t -> Instance.t -> int list

val accepted_subgraph : t -> Instance.t -> Graph.t * int array
(** Subgraph induced by the accepting nodes (plus the map back to
    original node ids) — the object of strong soundness. *)

val as_local_algo : t -> bool Local_algo.t

(** {1 Contracts}

    The machine-checkable claims a decoder makes about itself, verified
    empirically by the [Lcp_analysis] sanitizer. Every theorem about a
    decoder is conditional on these: the order-invariance reduction
    (Lemma 6.2) needs verdicts independent of concrete identifiers, and
    r-round locality bounds are vacuous if the implementation keys on
    data deeper than its declared radius. *)

type contract = {
  declared_radius : int;
      (** the locality claim: evaluations must never read data at
          distance greater than this from the center. Usually equal to
          {!field-radius} (the extraction radius); a decoder may request
          a generous view yet claim — and be held to — a tighter
          effective radius. *)
  declared_anonymous : bool;
      (** verdicts must not depend on identifiers: no id reads, and
          node-wise verdicts invariant under injective re-identification
          (with certificates held fixed) *)
  declared_port_invariant : bool;
      (** node-wise verdicts invariant under re-drawing the port
          assignment (with certificates held fixed) *)
}

val contract : ?radius:int -> ?port_invariant:bool -> t -> contract
(** The decoder's declared contract: radius defaults to the extraction
    radius, anonymity to the decoder's [anonymous] flag, port
    invariance to the decoder's [port_invariant] flag.
    @raise Invalid_argument if [radius] is not in [1 .. t.radius]. *)

(** {1 LCP bundles} *)

type suite = {
  dec : t;
  promise : Graph.t -> bool;
      (** the class H of the promise problem (yes-instances) *)
  prover : Instance.t -> Labeling.t option;
      (** honest prover: certificates for a yes-instance (the instance's
          own labels are ignored); [None] if the graph is outside the
          promise class or not 2-colorable *)
  adversary_alphabet : Instance.t -> string list;
      (** finite certificate alphabet that is exhaustive up to
          node-level equivalence for this decoder on this instance
          (malformed certificates are represented by one junk symbol) *)
  cert_bits : Instance.t -> int;
      (** information-theoretic size (bits) of the largest honest
          certificate on this instance *)
}

val certify : suite -> Instance.t -> Instance.t option
(** Instance re-labeled by the honest prover. *)

val junk : string
(** The representative malformed certificate, rejected by every decoder
    in this library. *)
