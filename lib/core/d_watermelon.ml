open Lcp_graph
open Lcp_local

type decomposition = { v1 : int; v2 : int; paths : int list list }

let trace_path g ~src ~dst first =
  (* follow degree-2 nodes from [src] through [first] until [dst];
     returns None when the walk leaves the path discipline *)
  let rec go prev cur acc steps =
    if steps > Graph.order g then None
    else if cur = dst then Some (List.rev (cur :: acc))
    else if cur = src || Graph.degree g cur <> 2 then None
    else begin
      (* cur has degree 2 (checked above): continue through the
         neighbor we did not come from; if prev is not a neighbor the
         walk has left the path discipline *)
      let a = Graph.nth_neighbor g cur 0 and b = Graph.nth_neighbor g cur 1 in
      if a = prev then go cur b (cur :: acc) (steps + 1)
      else if b = prev then go cur a (cur :: acc) (steps + 1)
      else None
    end
  in
  go src first [ src ] 0

let decompose_from g v1 v2 =
  if v1 = v2 then None
  else
    let paths =
      List.rev
        (Graph.fold_neighbors
           (fun first acc -> trace_path g ~src:v1 ~dst:v2 first :: acc)
           g v1 [])
    in
    if List.exists Option.is_none paths then None
    else
      let paths = List.map Option.get paths in
      (* paths must have length >= 2 (no v1-v2 edge), be internally
         disjoint, and cover the whole graph *)
      let internal = List.concat_map (fun p -> List.filter (fun w -> w <> v1 && w <> v2) p) paths in
      let covered = List.sort Stdlib.compare (v1 :: v2 :: internal) in
      let all_distinct =
        List.length (List.sort_uniq Stdlib.compare internal) = List.length internal
      in
      if
        all_distinct
        && List.for_all (fun p -> List.length p >= 3) paths
        && covered = Graph.nodes g
        && Graph.degree g v2 = List.length paths
      then Some { v1; v2; paths }
      else None

let decompose g =
  if Graph.order g < 4 || not (Graph.is_connected g) then None
  else
    let high = List.filter (fun v -> Graph.degree g v >= 3) (Graph.nodes g) in
    match high with
    | [ a; b ] -> decompose_from g a b
    | [] ->
        (* a cycle: endpoints are 0 and a farthest node *)
        if not (Graph.is_cycle g) then None
        else begin
          let dist = Metrics.bfs_dist g 0 in
          let far =
            Graph.fold_nodes
              (fun v best -> if dist.(v) > dist.(best) then v else best)
              g 0
          in
          decompose_from g 0 far
        end
    | _ -> None

let encode_endpoint ~id1 ~id2 = Printf.sprintf "1:%d:%d" id1 id2

let encode_path_node ~id1 ~id2 ~num ~p1 ~c1 ~p2 ~c2 =
  Printf.sprintf "2:%d:%d:%d:%d:%d:%d:%d" id1 id2 num p1 c1 p2 c2

type cert =
  | Endpoint of { id1 : int; id2 : int }
  | Path_node of {
      id1 : int;
      id2 : int;
      num : int;
      far : int array;  (** claimed far-end ports of my port-1/2 edges *)
      col : int array;  (** claimed colors of my port-1/2 edges *)
    }

let parse s =
  let int = Certificate.int_field in
  match Certificate.fields s with
  | [ "1"; id1; id2 ] -> (
      match (int id1, int id2) with
      | Some id1, Some id2 when 1 <= id1 && id1 < id2 -> Some (Endpoint { id1; id2 })
      | _ -> None)
  | [ "2"; id1; id2; num; p1; c1; p2; c2 ] -> (
      match (int id1, int id2, int num, int p1, int c1, int p2, int c2) with
      | Some id1, Some id2, Some num, Some p1, Some c1, Some p2, Some c2
        when 1 <= id1 && id1 < id2 && num >= 1 && p1 >= 1 && p2 >= 1 && c1 <= 1
             && c2 <= 1 && c1 <> c2 ->
          Some (Path_node { id1; id2; num; far = [| p1; p2 |]; col = [| c1; c2 |] })
      | _ -> None)
  | _ -> None

let ids_of = function
  | Endpoint { id1; id2 } | Path_node { id1; id2; _ } -> (id1, id2)

let accepts view =
  match parse (View.center_label view) with
  | None -> false
  | Some mine -> (
      let raw =
        List.map
          (fun (w, p, fp) -> (w, p, fp, parse (View.label view w)))
          (View.center_neighbors view)
      in
      if List.exists (fun (_, _, _, c) -> c = None) raw then false
      else
        let neighbors = List.map (fun (w, p, fp, c) -> (w, p, fp, Option.get c)) raw in
        (* condition 1: the whole closed neighborhood agrees on the
           endpoint identifiers *)
        List.for_all (fun (_, _, _, c) -> ids_of c = ids_of mine) neighbors
        &&
        match mine with
        | Endpoint { id1; id2 } ->
            let my_id = View.center_id view in
            (* 2(a) *)
            (my_id = id1 || my_id = id2)
            (* 2(b): every neighbor is a path node whose entry for the
               shared edge points back at my port *)
            && List.for_all
                 (fun (_, my_port, far_port, c) ->
                   match c with
                   | Endpoint _ -> false
                   | Path_node { far; _ } ->
                       far_port <= 2 && far.(far_port - 1) = my_port)
                 neighbors
            (* 2(c): pairwise distinct path numbers *)
            && begin
                 let nums =
                   List.filter_map
                     (fun (_, _, _, c) ->
                       match c with Path_node { num; _ } -> Some num | _ -> None)
                     neighbors
                 in
                 List.length (List.sort_uniq Stdlib.compare nums) = List.length nums
               end
            (* 2(d): my incident edges are monochromatic *)
            && begin
                 let colors =
                   List.filter_map
                     (fun (_, _, far_port, c) ->
                       match c with
                       | Path_node { col; _ } when far_port <= 2 ->
                           Some col.(far_port - 1)
                       | _ -> None)
                     neighbors
                 in
                 List.length (List.sort_uniq Stdlib.compare colors) <= 1
               end
        | Path_node { id1; id2; num; far; col } -> (
            (* 3(a): exactly two neighbors, on ports 1 and 2 *)
            match List.sort (fun (_, p, _, _) (_, q, _, _) -> Stdlib.compare p q) neighbors with
            | [ (w1, 1, fp1, c1); (w2, 2, fp2, c2) ] ->
                let check i w observed_far c =
                  (* my claimed far port matches the observed one *)
                  far.(i - 1) = observed_far
                  &&
                  match c with
                  | Endpoint _ ->
                      (* 3(b): the endpoint really carries one of the
                         claimed identifiers *)
                      let wid = View.id view w in
                      wid = id1 || wid = id2
                  | Path_node { num = num'; far = far'; col = col'; _ } ->
                      (* 3(c) *)
                      num' = num && observed_far <= 2
                      && far'.(observed_far - 1) = i
                      && col'.(observed_far - 1) = col.(i - 1)
                in
                check 1 w1 fp1 c1 && check 2 w2 fp2 c2
            | _ -> false))

let decoder = Decoder.make ~name:"watermelon" ~radius:1 ~anonymous:false accepts

let prover (inst : Instance.t) =
  let g = inst.Instance.graph in
  match decompose g with
  | None -> None
  | Some { v1; v2; paths } ->
      if not (Coloring.is_bipartite g) then None
      else begin
        let n = Graph.order g in
        let idf v = Ident.id inst.Instance.ids v in
        let id1 = min (idf v1) (idf v2) and id2 = max (idf v1) (idf v2) in
        (* 2-edge-color each path: 0 on the edge at v1, alternating *)
        let edge_color = Hashtbl.create n in
        let key a b = (min a b, max a b) in
        List.iter
          (fun path ->
            let rec walk idx = function
              | a :: (b :: _ as rest) ->
                  Hashtbl.replace edge_color (key a b) (idx mod 2);
                  walk (idx + 1) rest
              | _ -> ()
            in
            walk 0 path)
          paths;
        let path_num = Hashtbl.create n in
        List.iteri
          (fun i path ->
            List.iter
              (fun w -> if w <> v1 && w <> v2 then Hashtbl.replace path_num w (i + 1))
              path)
          paths;
        let lab =
          Array.init n (fun u ->
              if u = v1 || u = v2 then encode_endpoint ~id1 ~id2
              else begin
                let w1 = Port.neighbor_at inst.Instance.ports u 1 in
                let w2 = Port.neighbor_at inst.Instance.ports u 2 in
                encode_path_node ~id1 ~id2
                  ~num:(Hashtbl.find path_num u)
                  ~p1:(Port.port_of inst.Instance.ports w1 u)
                  ~c1:(Hashtbl.find edge_color (key u w1))
                  ~p2:(Port.port_of inst.Instance.ports w2 u)
                  ~c2:(Hashtbl.find edge_color (key u w2))
              end)
        in
        Some lab
      end

let adversary_alphabet (inst : Instance.t) =
  (* the honest endpoint pair plus one decoy pair; path numbers up to 2;
     exhaustive-check-sized (use the randomized checker beyond n = 4) *)
  let ids = List.sort Stdlib.compare (Array.to_list inst.Instance.ids.Ident.ids) in
  let delta = Graph.max_degree inst.Instance.graph in
  let pairs =
    let honest =
      match decompose inst.Instance.graph with
      | Some { v1; v2; _ } ->
          let a = Ident.id inst.Instance.ids v1 and b = Ident.id inst.Instance.ids v2 in
          [ (min a b, max a b) ]
      | None -> []
    in
    let extremes =
      match (ids, List.rev ids) with
      | a :: _, z :: _ when a < z -> [ (a, z) ]
      | _ -> []
    in
    let decoy = match ids with a :: b :: _ -> [ (a, b) ] | _ -> [] in
    List.sort_uniq Stdlib.compare (honest @ extremes @ decoy)
  in
  let certs = ref [ Decoder.junk ] in
  List.iter
    (fun (id1, id2) ->
      certs := encode_endpoint ~id1 ~id2 :: !certs;
      for num = 1 to 2 do
        for p1 = 1 to delta do
          for p2 = 1 to delta do
            List.iter
              (fun c1 ->
                certs :=
                  encode_path_node ~id1 ~id2 ~num ~p1 ~c1 ~p2 ~c2:(1 - c1) :: !certs)
              [ 0; 1 ]
          done
        done
      done)
    pairs;
  !certs

let suite =
  {
    Decoder.dec = decoder;
    promise = (fun g -> decompose g <> None);
    prover;
    adversary_alphabet;
    cert_bits =
      (fun inst ->
        let g = inst.Instance.graph in
        let bound = inst.Instance.ids.Ident.bound in
        let k = Graph.max_degree g in
        Certificate.bits_of_parts
          [ 1;
            Certificate.bits_for_id ~bound;
            Certificate.bits_for_id ~bound;
            Certificate.bits_for_int ~max:(max 1 k);
            Certificate.bits_for_int ~max:(max 1 k);
            1;
            Certificate.bits_for_int ~max:(max 1 k);
            1 ]);
  }
