type entry = {
  key : string;
  suite : Decoder.suite;
  contract : Decoder.contract;
}

let entry ?radius ?port_invariant key suite =
  { key; suite; contract = Decoder.contract ?radius ?port_invariant suite.Decoder.dec }

(* Port invariance is declared in each decoder module ([Decoder.make
   ~port_invariant:true]), only where the accepts function provably
   ignores port numbers: those decoders read neighbor certificates
   through [View.center_neighbors] but never branch on the port
   components. The cycle-structured decoders (even-cycle, edge-bit,
   watermelon) and the union wrapper that can delegate to one of them
   verify far-end ports by design and are exempt. The contract (and
   the orbit-pruned searches) derive the flag from the decoder record
   itself, so the declaration lives next to the accepts function it
   describes. *)
let all =
  [
    entry "trivial2" (D_trivial.suite ~k:2);
    entry "trivial3" (D_trivial.suite ~k:3);
    entry "spanning" D_spanning.suite;
    entry "degree-one" D_degree_one.suite;
    entry "even-cycle" D_even_cycle.suite;
    entry "union" D_union.suite;
    entry "shatter" D_shatter.suite;
    entry "watermelon" D_watermelon.suite;
    entry "hidden-leaf2" (D_hidden_leaf.suite ~k:2);
    entry "hidden-leaf3" (D_hidden_leaf.suite ~k:3);
    entry "edge-bit" D_edge_bit.suite;
  ]

let keys = List.map (fun e -> e.key) all
let find key = List.find_opt (fun e -> e.key = key) all
