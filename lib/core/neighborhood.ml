open Lcp_graph
open Lcp_local

type mode = Identified | Order_invariant | Anonymous

type t = {
  decoder : Decoder.t;
  mode : mode;
  view_radius : int;
  views : View.t array;
  graph : Graph.t;
  sources : (int * int) list array;
  loops : int list;
}

let key_of_mode = function
  | Identified -> View.key_identified
  | Order_invariant -> View.key_order_invariant
  | Anonymous -> View.key_anonymous

let default_mode (dec : Decoder.t) =
  if dec.Decoder.anonymous then Anonymous else Identified

let build ?mode ?(yes = Coloring.is_bipartite) ?view_radius (dec : Decoder.t)
    instances =
  let mode = Option.value ~default:(default_mode dec) mode in
  let view_radius = Option.value ~default:dec.Decoder.radius view_radius in
  let key = key_of_mode mode in
  let index_of_key : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let views = ref [] in
  let sources_tbl : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let count = ref 0 in
  let edge_set : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let loop_set : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let intern v src =
    let k = key v in
    match Hashtbl.find_opt index_of_key k with
    | Some i ->
        let l = Hashtbl.find sources_tbl i in
        l := src :: !l;
        i
    | None ->
        let i = !count in
        incr count;
        Hashtbl.replace index_of_key k i;
        views := (i, v) :: !views;
        Hashtbl.replace sources_tbl i (ref [ src ]);
        i
  in
  List.iteri
    (fun inst_idx inst ->
      if yes inst.Instance.graph && Decoder.accepts_all dec inst then begin
        let all = View.extract_all inst ~r:view_radius in
        let indices = Array.mapi (fun v mu -> intern mu (inst_idx, v)) all in
        Graph.iter_edges
          (fun u w ->
            let a = indices.(u) and b = indices.(w) in
            if a <> b then
              let e = (min a b, max a b) in
              Hashtbl.replace edge_set e ()
            else Hashtbl.replace loop_set a ())
          inst.Instance.graph
      end)
    instances;
  let m = !count in
  let views_arr =
    if m = 0 then [||]
    else begin
      let arr = Array.make m (snd (List.hd !views)) in
      List.iter (fun (i, v) -> arr.(i) <- v) !views;
      arr
    end
  in
  let sources_arr = Array.make m [] in
  Hashtbl.iter (fun i l -> sources_arr.(i) <- List.rev !l) sources_tbl;
  let graph = Graph.of_edges m (Hashtbl.fold (fun e () acc -> e :: acc) edge_set []) in
  let loops =
    List.sort Stdlib.compare (Hashtbl.fold (fun i () acc -> i :: acc) loop_set [])
  in
  { decoder = dec; mode; view_radius; views = views_arr; graph;
    sources = sources_arr; loops }

let order t = Array.length t.views
let size t = Graph.size t.graph
let view t i = t.views.(i)

let find t v =
  let key = key_of_mode t.mode in
  let k = key v in
  let m = order t in
  let rec go i =
    if i = m then None else if key t.views.(i) = k then Some i else go (i + 1)
  in
  go 0

let is_k_colorable t ~k = t.loops = [] && Coloring.is_k_colorable t.graph ~k

let odd_cycle t =
  match t.loops with
  | i :: _ -> Some [ i ] (* a loop is an odd closed walk of length 1 *)
  | [] -> Coloring.odd_cycle t.graph

let two_coloring t = if t.loops = [] then Coloring.two_color t.graph else None

let exhaustive_family (suite : Decoder.suite) ~graphs ?(ports = `Canonical)
    ?(ids = `Canonical) ?cfg () =
  let jobs = match cfg with Some c -> c.Run_cfg.jobs | None -> 1 in
  let dec = suite.Decoder.dec in
  (* one work unit per (graph, ports, ids) choice: coarse enough to
     amortize domain scheduling, fine enough to balance the `All
     spaces. Results are concatenated in choice order, so the family is
     identical for every [jobs]. *)
  let units =
    List.concat_map
      (fun g ->
        if Coloring.is_bipartite g && suite.Decoder.promise g then
          let port_choices =
            match ports with
            | `Canonical -> [ Port.canonical g ]
            | `All -> Port.enumerate g
          in
          let id_choices =
            match ids with
            | `Canonical -> [ Ident.canonical g ]
            | `Canonical_bound b -> [ Ident.canonical ~bound:b g ]
            | `All bound -> Ident.enumerate ~bound g
          in
          List.concat_map
            (fun prt -> List.map (fun idents -> (g, prt, idents)) id_choices)
            port_choices
        else [])
      graphs
  in
  let expand (g, prt, idents) =
    let base = Instance.make g ~ports:prt ~ids:idents in
    let alphabet = suite.Decoder.adversary_alphabet base in
    let acc = ref [] in
    Prover.iter_accepted dec ~alphabet base (fun lab ->
        acc := Instance.with_labels base lab :: !acc);
    List.rev !acc
  in
  if jobs <= 1 then List.concat_map expand units
  else
    let metrics = Option.map (fun c -> c.Run_cfg.metrics) cfg in
    List.concat
      (Array.to_list
         (Lcp_engine.Pool.map ?metrics ~jobs expand (Array.of_list units)))

let to_dot t =
  Graph.to_dot t.graph ~name:"NeighborhoodGraph" ~label:(fun i ->
      let v = t.views.(i) in
      Printf.sprintf "id=%d l=%s" (View.center_id v) (View.center_label v))

let pp_summary ppf t =
  Format.fprintf ppf "V(%s): %d views, %d edges, %d loops, bipartite=%b"
    t.decoder.Decoder.name (order t) (size t) (List.length t.loops)
    (is_k_colorable t ~k:2)
