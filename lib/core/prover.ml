open Lcp_graph
open Lcp_local

(* Nodes whose entire radius-r ball lies within the first [v + 1] nodes
   become checkable as soon as node [v] is labeled. *)
let coverage_schedule g ~r =
  let n = Graph.order g in
  let newly_covered = Array.make n [] in
  for u = 0 to n - 1 do
    let ball = Metrics.ball g u r in
    let last = List.fold_left max 0 ball in
    newly_covered.(last) <- u :: newly_covered.(last)
  done;
  newly_covered

let iter_pruned ?tally dec ~alphabet (inst : Instance.t) ~reject_covered f =
  let g = inst.Instance.graph in
  let r = dec.Decoder.radius in
  let schedule = coverage_schedule g ~r in
  let prune v partial =
    (match tally with Some t -> incr t | None -> ());
    let candidate = Instance.with_labels inst (Array.copy partial) in
    List.exists
      (fun u ->
        reject_covered u
        && not (dec.Decoder.accepts (View.extract candidate ~r u)))
      schedule.(v)
  in
  Labeling.iter_backtracking ~alphabet g ~prune (fun lab -> f (Array.copy lab))

let iter_labelings_pruned dec ~alphabet inst ~reject_covered f =
  iter_pruned dec ~alphabet inst ~reject_covered f

let iter_accepted dec ~alphabet inst f =
  iter_labelings_pruned dec ~alphabet inst ~reject_covered:(fun _ -> true) f

let search_accepted dec ~alphabet inst =
  let tally = ref 0 in
  let exception Found of Labeling.t in
  let witness =
    try
      iter_pruned ~tally dec ~alphabet inst
        ~reject_covered:(fun _ -> true)
        (fun lab -> raise (Found lab));
      None
    with Found lab -> Some lab
  in
  (witness, !tally)

let find_accepted dec ~alphabet inst = fst (search_accepted dec ~alphabet inst)

let count_accepted dec ~alphabet inst =
  let k = ref 0 in
  iter_accepted dec ~alphabet inst (fun _ -> incr k);
  !k
