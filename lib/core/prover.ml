open Lcp_graph
open Lcp_local

(* ------------------------------------------------------------------ *)
(* assignment order and coverage schedule                              *)

(* Ball-completion order: repeatedly pick the center whose radius-r
   ball has the fewest unassigned nodes left (ties to the smallest
   center), then assign its missing nodes in ascending order. Coverage
   pruning can only fire once some ball is fully labeled, so finishing
   the cheapest ball first moves the first checkable node as high up
   the backtracking tree as possible. Deterministic by construction. *)
let ball_completion_order g ~r =
  let n = Graph.order g in
  let balls = Array.init n (fun u -> Metrics.ball g u r) in
  let assigned = Array.make n false in
  let completed = Array.make n false in
  let order = Array.make n 0 in
  let pos = ref 0 in
  let remaining c =
    List.fold_left (fun k w -> if assigned.(w) then k else k + 1) 0 balls.(c)
  in
  for _ = 1 to n do
    let best = ref (-1) and best_rem = ref max_int in
    for c = 0 to n - 1 do
      if not completed.(c) then begin
        let rem = remaining c in
        if rem < !best_rem then begin
          best := c;
          best_rem := rem
        end
      end
    done;
    let c = !best in
    List.iter
      (fun w ->
        if not assigned.(w) then begin
          assigned.(w) <- true;
          order.(!pos) <- w;
          incr pos
        end)
      balls.(c);
    completed.(c) <- true
  done;
  assert (!pos = n);
  order

(* Nodes whose entire radius-r ball lies within the first [i + 1]
   assigned nodes become checkable at step [i] of the given order. *)
let coverage_schedule g ~r ~order =
  let n = Graph.order g in
  let step_of = Array.make n 0 in
  Array.iteri (fun i v -> step_of.(v) <- i) order;
  let newly_covered = Array.make n [] in
  for u = 0 to n - 1 do
    let ball = Metrics.ball g u r in
    let last = List.fold_left (fun acc w -> max acc step_of.(w)) 0 ball in
    newly_covered.(last) <- u :: newly_covered.(last)
  done;
  Array.map List.rev newly_covered

(* ------------------------------------------------------------------ *)
(* the pruned iteration driver                                         *)

let count_eval_stats cfg lease =
  match cfg with
  | None -> ()
  | Some c ->
      (* materialize the counters so memoized, direct and warm runs
         serialize the same key set *)
      Run_cfg.count c ~by:0 "eval_cache_hits";
      Run_cfg.count c ~by:0 "eval_cache_misses";
      Run_cfg.count c ~by:0 "eval_cache_shared_hits";
      (match lease with
      | None -> ()
      | Some l ->
          (* the delta since acquire: independent of how warm a shared
             cache already was when this search leased it *)
          let hits, misses = Lcp_engine.Eval_cache.lease_stats l in
          Run_cfg.count c ~by:hits "eval_cache_hits";
          Run_cfg.count c ~by:misses "eval_cache_misses";
          if Lcp_engine.Eval_cache.lease_warm l then
            Run_cfg.count c "eval_cache_shared_hits")

let use_eval_cache = function
  | Some c -> c.Run_cfg.eval_cache
  | None -> true

let use_orbit_prune = function
  | Some c -> c.Run_cfg.orbit_prune
  | None -> true

(* Orbit pruning is sound only for decoders whose per-node verdicts
   are invariant under the graph's automorphisms: anonymous (no id
   reads) and port-invariant (no port reads) — then the verdict
   depends only on the labeled isomorphism type of the view, so
   acceptance of [L] and [L . sigma] coincide for sigma in Aut(G). *)
let orbit_eligible dec (inst : Instance.t) =
  dec.Decoder.anonymous && dec.Decoder.port_invariant
  && Instance.order inst <= Lcp_engine.Canon.max_order

(* Prefix-minimality programs for [inst]'s graph along the
   ball-completion order, or [None] when pruning is off, ineligible,
   or the graph is rigid (the common case: no programs, no cost). *)
let orbit_constraints ?cfg dec (inst : Instance.t) =
  if not (use_orbit_prune cfg && orbit_eligible dec inst) then None
  else
    let g = inst.Instance.graph in
    let auto = Lcp_engine.Auto.of_graph g in
    if Lcp_engine.Auto.is_trivial auto then None
    else
      let order = ball_completion_order g ~r:dec.Decoder.radius in
      match Lcp_engine.Auto.prefix_programs auto ~order with
      | [||] -> None
      | progs -> Some progs

(* Everything a memoized verdict depends on besides the labels: the
   decoder (name + radius stand in for its identity — names are unique
   across the registry), the alphabet, and the full configured graph
   (structure, identifiers, ports). Labels are the table's own key
   dimension and are deliberately excluded. *)
let share_key dec ~alphabet (inst : Instance.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b dec.Decoder.name;
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int dec.Decoder.radius);
  Buffer.add_char b '|';
  List.iter
    (fun s ->
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s)
    alphabet;
  Buffer.add_char b '|';
  let g = inst.Instance.graph in
  Buffer.add_string b (string_of_int (Lcp_graph.Graph.order g));
  Lcp_graph.Graph.iter_edges
    (fun u v ->
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int u);
      Buffer.add_char b '-';
      Buffer.add_string b (string_of_int v))
    g;
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int inst.Instance.ids.Ident.bound);
  Array.iter
    (fun id ->
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int id))
    inst.Instance.ids.Ident.ids;
  Buffer.add_char b '|';
  Array.iter
    (fun row ->
      Buffer.add_char b ';';
      Array.iter
        (fun w ->
          Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int w))
        row)
    inst.Instance.ports;
  Buffer.contents b

let acquire_cache dec ~alphabet inst =
  Lcp_engine.Eval_cache.acquire
    ~key:(share_key dec ~alphabet inst)
    ~radius:dec.Decoder.radius ~accepts:dec.Decoder.accepts ~alphabet inst

let iter_pruned ?tally ?sym ?cfg dec ~alphabet (inst : Instance.t)
    ~reject_covered f =
  let g = inst.Instance.graph in
  let r = dec.Decoder.radius in
  let order = ball_completion_order g ~r in
  let schedule = coverage_schedule g ~r ~order in
  (* symmetry breaking: cut a branch as soon as the just-assigned node
     violates one of its orbit constraints — every completion shares
     the violation, so only non-orbit-minimal labelings are lost.
     Cuts are tallied locally and flushed into the metrics in one
     batch at the end: a per-cut [Run_cfg.count] would take the
     registry lock inside the hottest loop of the search. *)
  let sym_cuts = ref 0 in
  let sym_rejects =
    match sym with
    | None -> fun _ _ -> false
    | Some progs ->
        let rank : (string, int) Hashtbl.t = Hashtbl.create 8 in
        List.iteri
          (fun i s -> if not (Hashtbl.mem rank s) then Hashtbl.add rank s i)
          alphabet;
        (* [rk.(e)] holds the rank of the symbol currently at step [e]:
           the prune re-runs on every (re)assignment, so reads of
           earlier steps always see the current value — one string
           hash per assignment, none inside the program walks. *)
        let steps = Array.length order in
        let rk = Array.make (max steps 1) 0 in
        let np = Array.length progs in
        (* programs arrive sorted by activation step (the first step
           at which a walk can be conclusive), so the scan stops at
           the first not-yet-active program *)
        let act =
          Array.map
            (fun prog ->
              let s, e = prog.(0) in
              max s e)
            progs
        in
        fun i (partial : Labeling.t) ->
          rk.(i) <- Hashtbl.find rank partial.(order.(i));
          let cut = ref false in
          let pi = ref 0 in
          while (not !cut) && !pi < np && act.(!pi) <= i do
            let prog = progs.(!pi) in
            let m = Array.length prog in
            let j = ref 0 in
            let walking = ref true in
            while !walking && !j < m do
              let s, e = prog.(!j) in
              if s > i || e > i then walking := false
              else if rk.(s) > rk.(e) then begin
                cut := true;
                walking := false
              end
              else if rk.(s) < rk.(e) then walking := false
              else incr j
            done;
            incr pi
          done;
          !cut
  in
  let lease =
    if use_eval_cache cfg then Some (acquire_cache dec ~alphabet inst) else None
  in
  let branch_rejects =
    match Option.map Lcp_engine.Eval_cache.lease_cache lease with
    | Some ec ->
        fun partial centers ->
          List.exists
            (fun u ->
              reject_covered u
              && not (Lcp_engine.Eval_cache.accepts ec partial u))
            centers
    | None ->
        (* the direct oracle path: re-extract every covered view from a
           candidate instance (the view snapshots the labels, so the
           shared partial array needs no copy) *)
        fun partial centers ->
          let candidate = Instance.with_labels inst partial in
          List.exists
            (fun u ->
              reject_covered u
              && not (dec.Decoder.accepts (View.extract candidate ~r u)))
            centers
  in
  let prune i partial =
    (match tally with Some t -> incr t | None -> ());
    if sym_rejects i partial then begin
      incr sym_cuts;
      true
    end
    else
      match schedule.(i) with
      | [] -> false (* no newly covered ball: no verdict can change *)
      | centers -> branch_rejects partial centers
  in
  let run () =
    Labeling.iter_backtracking_order ~alphabet ~order g ~prune (fun lab ->
        f (Array.copy lab))
  in
  let finish () =
    (* report cut/hit/miss tallies even when the search exits early,
       then hand a pooled cache back *)
    (match cfg with
    | Some c when !sym_cuts > 0 ->
        Run_cfg.count c ~by:!sym_cuts "orbit_pruned_branches"
    | _ -> ());
    count_eval_stats cfg lease;
    Option.iter Lcp_engine.Eval_cache.release lease
  in
  match (cfg, lease) with
  | None, None -> run ()
  | _ -> Fun.protect ~finally:finish run

let iter_labelings_pruned ?cfg dec ~alphabet inst ~reject_covered f =
  iter_pruned ?cfg dec ~alphabet inst ~reject_covered f

let iter_accepted ?cfg dec ~alphabet inst f =
  iter_labelings_pruned ?cfg dec ~alphabet inst ~reject_covered:(fun _ -> true) f

(* The search explores labelings in lexicographic order of the
   alphabet ranks along the ball-completion order, so its first
   accepted labeling is the lex-minimum of the (Aut-closed, for
   eligible decoders) accepted set — automatically minimal in its own
   orbit. Orbit constraints only ever cut non-minimal labelings, so
   the pruned and direct paths return bit-identical witnesses (and
   identical [None]s); only the tally shrinks. *)
let search_accepted ?cfg dec ~alphabet inst =
  let tally = ref 0 in
  let sym = orbit_constraints ?cfg dec inst in
  (match cfg with
  | Some c -> Run_cfg.count c ~by:0 "orbit_pruned_branches"
  | None -> ());
  let exception Found of Labeling.t in
  let witness =
    try
      iter_pruned ~tally ?sym ?cfg dec ~alphabet inst
        ~reject_covered:(fun _ -> true)
        (fun lab -> raise (Found lab));
      None
    with Found lab -> Some lab
  in
  (witness, !tally)

let find_accepted ?cfg dec ~alphabet inst =
  fst (search_accepted ?cfg dec ~alphabet inst)

let count_accepted ?cfg dec ~alphabet inst =
  let k = ref 0 in
  iter_accepted ?cfg dec ~alphabet inst (fun _ -> incr k);
  !k
