open Lcp_graph
open Lcp_local

let encode ~q1 ~c1 ~q2 ~c2 = Printf.sprintf "1:%d:%d:2:%d:%d" q1 c1 q2 c2

type cert = { q1 : int; c1 : int; q2 : int; c2 : int }

(* Well-formed: entries listed for own ports 1 then 2, far ports in
   {1,2}, colors in {0,1} and distinct. Anything else is junk. *)
let parse s =
  match Certificate.fields s with
  | [ "1"; q1; c1; "2"; q2; c2 ] -> (
      match
        ( Certificate.int_field q1,
          Certificate.int_field c1,
          Certificate.int_field q2,
          Certificate.int_field c2 )
      with
      | Some q1, Some c1, Some q2, Some c2
        when q1 >= 1 && q1 <= 2 && q2 >= 1 && q2 <= 2 && c1 <= 1 && c2 <= 1
             && c1 <> c2 ->
          Some { q1; c1; q2; c2 }
      | _ -> None)
  | _ -> None

let entry cert port = if port = 1 then (cert.q1, cert.c1) else (cert.q2, cert.c2)

let accepts view =
  match parse (View.center_label view) with
  | None -> false
  | Some mine -> (
      match View.center_neighbors view with
      | [ (w1, p1, fp1); (w2, p2, fp2) ] when p1 = 1 && p2 = 2 ->
          let check (w, my_port, far_port) =
            let claimed_far, my_color = entry mine my_port in
            claimed_far = far_port
            &&
            match parse (View.label view w) with
            | None -> false
            | Some theirs ->
                let back_port, their_color = entry theirs far_port in
                back_port = my_port && their_color = my_color
          in
          check (w1, p1, fp1) && check (w2, p2, fp2)
      | _ -> false)

let decoder = Decoder.make ~name:"even-cycle" ~radius:1 ~anonymous:true accepts

let prover (inst : Instance.t) =
  let g = inst.Instance.graph in
  if not (Graph.is_cycle g && Graph.order g mod 2 = 0) then None
  else begin
    (* walk the cycle from node 0, 2-edge-coloring alternately *)
    let n = Graph.order g in
    let color_tbl = Hashtbl.create n in
    let edge_key u v = (min u v, max u v) in
    let rec walk prev cur idx =
      if idx = n then ()
      else begin
        let next =
          (* on a cycle every node has degree 2: step to the neighbor
             we did not come from *)
          if prev = -1 then Graph.nth_neighbor g cur 0
          else begin
            let a = Graph.nth_neighbor g cur 0 in
            if a = prev then Graph.nth_neighbor g cur 1 else a
          end
        in
        Hashtbl.replace color_tbl (edge_key cur next) (idx mod 2);
        walk cur next (idx + 1)
      end
    in
    walk (-1) 0 0;
    let lab =
      Array.init n (fun v ->
          let w1 = Port.neighbor_at inst.Instance.ports v 1 in
          let w2 = Port.neighbor_at inst.Instance.ports v 2 in
          let q1 = Port.port_of inst.Instance.ports w1 v in
          let q2 = Port.port_of inst.Instance.ports w2 v in
          encode ~q1 ~c1:(Hashtbl.find color_tbl (edge_key v w1)) ~q2
            ~c2:(Hashtbl.find color_tbl (edge_key v w2)))
    in
    Some lab
  end

let alphabet =
  let certs = ref [ Decoder.junk ] in
  List.iter
    (fun q1 ->
      List.iter
        (fun q2 ->
          List.iter
            (fun c1 -> certs := encode ~q1 ~c1 ~q2 ~c2:(1 - c1) :: !certs)
            [ 0; 1 ])
        [ 1; 2 ])
    [ 1; 2 ];
  !certs

let suite =
  {
    Decoder.dec = decoder;
    promise = (fun g -> Graph.is_cycle g && Graph.order g mod 2 = 0);
    prover;
    adversary_alphabet = (fun _ -> alphabet);
    cert_bits = (fun _ -> 6);
  }
