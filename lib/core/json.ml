(* Back-compat shim: Json moved into Lcp_obs so the engine layer can
   serialize metrics without depending on core. [Lcp.Json] keeps
   working for every existing caller; the inferred signature carries
   the type equations with [Lcp_obs.Json]. *)
include Lcp_obs.Json
