open Lcp_graph
open Lcp_local
module Run_cfg = Lcp_obs.Run_cfg
module Clock = Lcp_obs.Clock
module Json = Lcp_obs.Json

(* Chunk size for parallel fan-out. Counters are accumulated per chunk
   and summed sequentially afterwards, so every tally is independent of
   cfg.jobs by construction. *)
let chunk_size = 4096

type completeness = {
  instance : string;
  c_nodes : int;
  c_edges : int;
  evaluated : int;
  accepted : int;
  c_wall_ns : int;
}

type soundness = {
  applicable : bool;
  trials : int;
  rejected_trials : int;
  probes : int;
  accepting_trials : int;
  s_wall_ns : int;
}

type hiding = {
  pairs : int;
  structural_collisions : int;
  structural_matches : int;
  certified_collisions : int;
  h_wall_ns : int;
}

type report = {
  decoder : string;
  model : string;
  seed : int;
  nodes : int;
  edges : int;
  build_wall_ns : int;
  completeness : completeness option;
  soundness : soundness option;
  hiding : hiding option;
  violations : int;
}

let chunks_of n = (n + chunk_size - 1) / chunk_size

let chunk_bounds n c =
  let lo = c * chunk_size in
  (lo, min n (lo + chunk_size))

(* seeded sample of [k] distinct nodes out of [0 .. n-1] (partial
   Fisher-Yates); returns the full identity permutation prefix when
   k >= n. Deterministic in (seed, tag). *)
let sample_nodes ~seed ~tag ~k n =
  let rng = Random.State.make [| seed; tag |] in
  let arr = Array.init n (fun i -> i) in
  let k = min k n in
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.sub arr 0 k

let accepts_node (suite : Decoder.suite) inst v =
  suite.Decoder.dec.Decoder.accepts
    (View.extract inst ~r:suite.Decoder.dec.Decoder.radius v)

(* ---- completeness ------------------------------------------------ *)

(* The sampled yes-instance: the model graph itself when it satisfies
   the promise, else its bipartite double cover (for the 2-coloring
   promises a random graph rarely satisfies directly). *)
let yes_graph (suite : Decoder.suite) g =
  if suite.Decoder.promise g then Some (g, "model graph")
  else begin
    let dc = Builders.double_cover g in
    if suite.Decoder.promise dc then Some (dc, "bipartite double cover")
    else None
  end

let completeness_phase ~cfg ~eval_nodes (suite : Decoder.suite) g =
  Run_cfg.span cfg "sample/completeness" (fun () ->
      match yes_graph suite g with
      | None -> None
      | Some (yg, instance) -> (
          let inst = Instance.make yg in
          match suite.Decoder.prover inst with
          | None -> None
          | Some lab ->
              let certified = Instance.with_labels inst lab in
              let n = Graph.order yg in
              let sample =
                sample_nodes ~seed:cfg.Run_cfg.seed ~tag:0x5AC0 ~k:eval_nodes n
              in
              let k = Array.length sample in
              let t0 = Clock.now_ns () in
              let tallies =
                Lcp_engine.Pool.run ~jobs:cfg.Run_cfg.jobs (chunks_of k)
                  (fun c ->
                    let lo, hi = chunk_bounds k c in
                    let acc = ref 0 in
                    for i = lo to hi - 1 do
                      if accepts_node suite certified sample.(i) then incr acc
                    done;
                    !acc)
              in
              let accepted = Array.fold_left ( + ) 0 tallies in
              let wall = Clock.now_ns () - t0 in
              Run_cfg.count cfg ~by:k "sample/completeness_evals";
              Run_cfg.count cfg ~by:accepted "sample/completeness_accepts";
              Some
                {
                  instance;
                  c_nodes = n;
                  c_edges = Graph.size yg;
                  evaluated = k;
                  accepted;
                  c_wall_ns = wall;
                }))

(* ---- sampled adversarial soundness ------------------------------- *)

(* One adversarial trial: a seeded labeling (uniform over the decoder's
   adversary alphabet; odd trials exclude the junk symbol, which every
   decoder rejects on sight, to exercise the harder part of the
   alphabet), probed in a seeded node order until some node rejects.
   Returns (rejected, probes). A trial in which every single node
   accepts is a soundness violation witness. *)
let soundness_trial (suite : Decoder.suite) inst ~alphabet ~seed ~trial =
  let g = inst.Instance.graph in
  let n = Graph.order g in
  let rng = Random.State.make [| seed; 0x5AD1; trial |] in
  let alphabet =
    if trial mod 2 = 1 then
      match List.filter (fun s -> s <> Decoder.junk) alphabet with
      | [] -> alphabet
      | a -> a
    else alphabet
  in
  let lab = Labeling.random rng ~alphabet g in
  let adv = Instance.with_labels inst lab in
  (* incremental Fisher-Yates: the probe order is a seeded permutation
     but only the probed prefix is ever materialized *)
  let order = Array.init n (fun i -> i) in
  let probes = ref 0 in
  let rejected = ref false in
  let i = ref 0 in
  while (not !rejected) && !i < n do
    let j = !i + Random.State.int rng (n - !i) in
    let v = order.(j) in
    order.(j) <- order.(!i);
    order.(!i) <- v;
    incr probes;
    if not (accepts_node suite adv v) then rejected := true;
    incr i
  done;
  (!rejected, !probes)

let soundness_phase ~cfg ~trials (suite : Decoder.suite) g =
  Run_cfg.span cfg "sample/soundness" (fun () ->
      if suite.Decoder.promise g then
        (* the model graph is a yes-instance: adversarial rejection is
           not required, so the phase does not apply *)
        Some
          {
            applicable = false;
            trials = 0;
            rejected_trials = 0;
            probes = 0;
            accepting_trials = 0;
            s_wall_ns = 0;
          }
      else begin
        let inst = Instance.make g in
        let alphabet = suite.Decoder.adversary_alphabet inst in
        let t0 = Clock.now_ns () in
        let results =
          Lcp_engine.Pool.run ~jobs:cfg.Run_cfg.jobs trials (fun t ->
              soundness_trial suite inst ~alphabet ~seed:cfg.Run_cfg.seed
                ~trial:t)
        in
        let wall = Clock.now_ns () - t0 in
        let rejected_trials =
          Array.fold_left (fun a (r, _) -> if r then a + 1 else a) 0 results
        in
        let probes = Array.fold_left (fun a (_, p) -> a + p) 0 results in
        Run_cfg.count cfg ~by:trials "sample/soundness_trials";
        Run_cfg.count cfg ~by:rejected_trials "sample/soundness_rejected";
        Run_cfg.count cfg ~by:probes "sample/soundness_probes";
        Some
          {
            applicable = true;
            trials;
            rejected_trials;
            probes;
            accepting_trials = trials - rejected_trials;
            s_wall_ns = wall;
          }
      end)

(* ---- sampled hiding probe ---------------------------------------- *)

(* A sampled observable of the paper's hiding notion, not the exhaustive
   Lemma 3.2 machinery (Hiding.verdict), which enumerates neighborhoods
   and is infeasible at 10^5+ nodes. For seeded node pairs of the
   certified yes-instance we compare anonymized view keys:
   - structural collision: certificate-blanked keys equal but honest
     colors differ — radius-r structure alone cannot determine the
     color, the necessary condition any hiding certification relies on;
   - certified collision: keys equal with certificates visible yet
     colors differ — the certified views themselves do not leak the
     coloring. A decoder whose certificates are the colors (trivial-k)
     scores 0 here: correctly reported as non-hiding. *)
let hiding_phase ~cfg ~pairs (suite : Decoder.suite) yg =
  Run_cfg.span cfg "sample/hiding" (fun () ->
      match Coloring.two_color yg with
      | None -> None
      | Some colors -> (
          let inst = Instance.make yg in
          match suite.Decoder.prover inst with
          | None -> None
          | Some lab ->
              let certified = Instance.with_labels inst lab in
              let n = Graph.order yg in
              let r = suite.Decoder.dec.Decoder.radius in
              let t0 = Clock.now_ns () in
              let tallies =
                Lcp_engine.Pool.run ~jobs:cfg.Run_cfg.jobs (chunks_of pairs)
                  (fun c ->
                    let lo, hi = chunk_bounds pairs c in
                    let rng =
                      Random.State.make [| cfg.Run_cfg.seed; 0x51D1; c |]
                    in
                    let structural = ref 0
                    and matches = ref 0
                    and certified_c = ref 0 in
                    for _ = lo to hi - 1 do
                      let u = Random.State.int rng n in
                      let w = Random.State.int rng n in
                      if u <> w then begin
                        let vu = View.extract certified ~r u in
                        let vw = View.extract certified ~r w in
                        let blank v = View.map_labels v (fun _ -> "") in
                        let same_structure =
                          View.key_anonymous (blank vu)
                          = View.key_anonymous (blank vw)
                        in
                        if same_structure then begin
                          incr matches;
                          if colors.(u) <> colors.(w) then begin
                            incr structural;
                            if View.key_anonymous vu = View.key_anonymous vw
                            then incr certified_c
                          end
                        end
                      end
                    done;
                    (!structural, !matches, !certified_c))
              in
              let wall = Clock.now_ns () - t0 in
              let structural_collisions =
                Array.fold_left (fun a (s, _, _) -> a + s) 0 tallies
              in
              let structural_matches =
                Array.fold_left (fun a (_, m, _) -> a + m) 0 tallies
              in
              let certified_collisions =
                Array.fold_left (fun a (_, _, c) -> a + c) 0 tallies
              in
              Run_cfg.count cfg ~by:pairs "sample/hiding_pairs";
              Run_cfg.count cfg ~by:structural_collisions
                "sample/hiding_structural_collisions";
              Run_cfg.count cfg ~by:certified_collisions
                "sample/hiding_certified_collisions";
              Some
                {
                  pairs;
                  structural_collisions;
                  structural_matches;
                  certified_collisions;
                  h_wall_ns = wall;
                }))

(* ---- driver ------------------------------------------------------ *)

let run ?(eval_nodes = 50_000) ?(trials = 8) ?(pairs = 2_000) ~cfg ~decoder
    ~model (suite : Decoder.suite) g =
  let nodes = Graph.order g and edges = Graph.size g in
  let completeness =
    if Run_cfg.expired cfg then None
    else completeness_phase ~cfg ~eval_nodes suite g
  in
  let soundness =
    if Run_cfg.expired cfg then None else soundness_phase ~cfg ~trials suite g
  in
  let hiding =
    if Run_cfg.expired cfg then None
    else
      match completeness with
      | Some c when c.evaluated > 0 ->
          let yg =
            if c.instance = "model graph" then g else Builders.double_cover g
          in
          hiding_phase ~cfg ~pairs suite yg
      | _ -> None
  in
  let violations =
    (match completeness with
    | Some c when c.accepted < c.evaluated -> 1
    | _ -> 0)
    +
    match soundness with
    | Some s when s.applicable && s.accepting_trials > 0 -> 1
    | _ -> 0
  in
  Run_cfg.count cfg ~by:violations "sample/violations";
  {
    decoder;
    model;
    seed = cfg.Run_cfg.seed;
    nodes;
    edges;
    build_wall_ns = 0;
    completeness;
    soundness;
    hiding;
    violations;
  }

let with_build_wall_ns report ns = { report with build_wall_ns = ns }

(* ---- JSON -------------------------------------------------------- *)

let schema_version = 1

let per_sec count wall_ns =
  if wall_ns <= 0 then 0
  else int_of_float (float_of_int count /. (float_of_int wall_ns /. 1e9))

let peak_rss_kb () =
  (* VmHWM from /proc/self/status; absent outside Linux *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              String.sub line 6 (String.length line - 6)
              |> String.trim
              |> String.split_on_char ' '
              |> fun parts ->
              (match parts with x :: _ -> int_of_string_opt x | [] -> None)
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let report_to_json (r : report) =
  let completeness =
    match r.completeness with
    | None -> Json.Null
    | Some c ->
        Json.Obj
          [
            ("instance", Json.String c.instance);
            ("nodes", Json.Int c.c_nodes);
            ("edges", Json.Int c.c_edges);
            ("evaluated", Json.Int c.evaluated);
            ("accepted", Json.Int c.accepted);
            ("wall_ns", Json.Int c.c_wall_ns);
            ("nodes_per_sec", Json.Int (per_sec c.evaluated c.c_wall_ns));
          ]
  in
  let soundness =
    match r.soundness with
    | None -> Json.Null
    | Some s ->
        Json.Obj
          [
            ("applicable", Json.Bool s.applicable);
            ("trials", Json.Int s.trials);
            ("rejected_trials", Json.Int s.rejected_trials);
            ("accepting_trials", Json.Int s.accepting_trials);
            ("probes", Json.Int s.probes);
            ("wall_ns", Json.Int s.s_wall_ns);
            ("probes_per_sec", Json.Int (per_sec s.probes s.s_wall_ns));
          ]
  in
  let hiding =
    match r.hiding with
    | None -> Json.Null
    | Some h ->
        Json.Obj
          [
            ("pairs", Json.Int h.pairs);
            ("structural_matches", Json.Int h.structural_matches);
            ("structural_collisions", Json.Int h.structural_collisions);
            ("certified_collisions", Json.Int h.certified_collisions);
            ("wall_ns", Json.Int h.h_wall_ns);
          ]
  in
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("decoder", Json.String r.decoder);
      ("model", Json.String r.model);
      ("seed", Json.Int r.seed);
      ("nodes", Json.Int r.nodes);
      ("edges", Json.Int r.edges);
      ("build_wall_ns", Json.Int r.build_wall_ns);
      ( "build_nodes_per_sec",
        Json.Int (per_sec r.nodes r.build_wall_ns) );
      ( "build_edges_per_sec",
        Json.Int (per_sec r.edges r.build_wall_ns) );
      ("completeness", completeness);
      ("soundness", soundness);
      ("hiding", hiding);
      ("violations", Json.Int r.violations);
      ( "peak_rss_kb",
        match peak_rss_kb () with Some kb -> Json.Int kb | None -> Json.Null );
    ]
