type row = { label : string; value : string; expected : string; ok : bool }
type t = { id : string; title : string; rows : row list }

let row ?(expected = "-") ?(ok = true) label value = { label; value; expected; ok }

let check label ok ~expected ~actual = { label; value = actual; expected; ok }

let passed t = List.for_all (fun r -> r.ok) t.rows

let pp ppf t =
  Format.fprintf ppf "=== %s: %s [%s]@." t.id t.title
    (if passed t then "PASS" else "FAIL");
  let width =
    List.fold_left (fun acc r -> max acc (String.length r.label)) 10 t.rows
  in
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-*s  %-30s expected: %-20s %s@." width r.label r.value
        r.expected
        (if r.ok then "ok" else "MISMATCH"))
    t.rows

let pp_all ppf reports =
  List.iter (fun r -> pp ppf r; Format.fprintf ppf "@.") reports;
  let pass = List.filter passed reports |> List.length in
  Format.fprintf ppf "Total: %d/%d experiments pass@." pass (List.length reports)

let to_markdown t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "### %s — %s (%s)\n\n" t.id t.title
       (if passed t then "PASS" else "FAIL"));
  Buffer.add_string buf "| check | measured | paper / expected | status |\n";
  Buffer.add_string buf "|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s | %s |\n" r.label r.value r.expected
           (if r.ok then "ok" else "**mismatch**")))
    t.rows;
  Buffer.contents buf

let summary_line t =
  Printf.sprintf "%-4s %-58s %s" t.id t.title (if passed t then "PASS" else "FAIL")

let row_to_json r =
  Json.Obj
    [
      ("label", Json.String r.label);
      ("measured", Json.String r.value);
      ("expected", Json.String r.expected);
      ("ok", Json.Bool r.ok);
    ]

let to_json t =
  Json.Obj
    [
      ("id", Json.String t.id);
      ("title", Json.String t.title);
      ("passed", Json.Bool (passed t));
      ("rows", Json.List (List.map row_to_json t.rows));
    ]

let battery_schema_version = 1

let battery_to_json reports =
  Json.Obj
    [
      ("schema_version", Json.Int battery_schema_version);
      ("total", Json.Int (List.length reports));
      ("passed", Json.Int (List.length (List.filter passed reports)));
      ("reports", Json.List (List.map to_json reports));
    ]
