open Lcp_graph
open Lcp_local

let lift (nbhd : Neighborhood.t) inst walk =
  let r = nbhd.Neighborhood.view_radius in
  let lookup v = Neighborhood.find nbhd (View.extract inst ~r v) in
  let lifted = List.map lookup walk in
  if List.exists Option.is_none lifted then None
  else Some (List.map Option.get lifted)

let is_non_backtracking_views views =
  let k = List.length views in
  k >= 3
  && begin
       let arr = Array.of_list views in
       let ok = ref true in
       for i = 0 to k - 1 do
         let pred = arr.((i + k - 1) mod k) and succ = arr.((i + 1) mod k) in
         if View.center_id pred = View.center_id succ then ok := false
       done;
       !ok
     end

let far_node g ~r ~u ~v =
  let du = Metrics.bfs_dist g u and dv = Metrics.bfs_dist g v in
  Graph.fold_nodes
    (fun w acc ->
      if acc = None && du.(w) > 2 * r && dv.(w) > 2 * r && du.(w) <> max_int then
        Some w
      else acc)
    g None

(* Closed walk at [start] of even length within [max_len], whose first
   and last nodes both avoid [forbidden], internally non-backtracking.
   Used to kill a backtracking position. *)
let even_detour g ~start ~forbidden ~max_len =
  let exception Found of int list in
  let rec go v prev steps acc first target_len =
    if steps = target_len then begin
      if v = start then
        match (first, acc) with
        | Some f, _ :: _ when f <> forbidden && prev <> forbidden ->
            raise (Found (List.rev acc))
        | _ -> ()
    end
    else
      Graph.iter_neighbors
        (fun w ->
          if w <> prev then
            let first = match first with None -> Some w | s -> s in
            go w v (steps + 1)
              (if steps + 1 = target_len then acc else w :: acc)
              first target_len)
        g v
  in
  let rec try_len len =
    if len > max_len then None
    else
      try
        go start (-1) 0 [ start ] None len;
        try_len (len + 2)
      with Found w -> Some w
  in
  try_len 4

let edge_expansion g ~r ~u ~v =
  if not (Graph.mem_edge g u v) then invalid_arg "Nb_walks.edge_expansion: not an edge";
  match Forgetful.escape_path g ~r ~v ~u with
  | None -> None
  | Some escape -> (
      match far_node g ~r ~u ~v with
      | None -> None
      | Some far -> (
          let escape_arr = Array.of_list escape in
          let len = Array.length escape_arr in
          let v_r = escape_arr.(len - 1) in
          let v_r_pred = if len >= 2 then escape_arr.(len - 2) else u in
          match
            Metrics.shortest_path_avoiding g
              ~avoid:(fun x -> x = v_r_pred)
              v_r far
          with
          | None -> None
          | Some to_far -> (
              let before_far =
                match List.rev to_far with
                | _ :: prev :: _ -> prev
                | _ -> v_r_pred
              in
              let return_path =
                match
                  Metrics.shortest_path_avoiding g
                    ~avoid:(fun x -> x = before_far || x = v)
                    far u
                with
                | Some p -> Some p
                | None ->
                    Metrics.shortest_path_avoiding g
                      ~avoid:(fun x -> x = before_far)
                      far u
              in
              match return_path with
              | None -> None
              | Some back -> (
                  (* u, v, escape tail, to_far tail, back tail minus u *)
                  let tail l = match l with _ :: t -> t | [] -> [] in
                  let walk =
                    (u :: escape)
                    @ tail to_far
                    @ (match List.rev (tail back) with
                      | _ :: kept_rev -> List.rev kept_rev
                      | [] -> [])
                  in
                  (* the closed walk starts at u; verify it *)
                  if
                    Walks.is_closed_walk g walk
                    && Walks.is_non_backtracking g walk
                    && (match List.rev walk with
                       | last :: _ -> last <> v
                       | [] -> false)
                  then Some walk
                  else None))))

let expand_closed_walk g ~r walk =
  match walk with
  | [] | [ _ ] -> None
  | _ ->
      let arr = Array.of_list walk in
      let k = Array.length arr in
      let blocks =
        List.init k (fun i ->
            let u = arr.(i) and v = arr.((i + 1) mod k) in
            Option.map (fun w -> w @ [ u ]) (edge_expansion g ~r ~u ~v))
      in
      if List.exists Option.is_none blocks then None
      else begin
        let expanded = List.concat_map Option.get blocks in
        if Walks.is_closed_walk g expanded && Walks.is_non_backtracking g expanded
        then Some expanded
        else None
      end

let odd_nb_closed_walk g ~max_len =
  let n = Graph.order g in
  let rec try_len len =
    if len > max_len then None
    else
      let rec try_start s =
        if s = n then None
        else
          match Walks.non_backtracking_closed_walk g ~start:s ~len with
          | Some w -> Some w
          | None -> try_start (s + 1)
      in
      match try_start 0 with Some w -> Some w | None -> try_len (len + 2)
  in
  try_len 3

let backtracking_position g walk =
  ignore g;
  let arr = Array.of_list walk in
  let k = Array.length arr in
  let rec go i =
    if i = k then None
    else if arr.((i + k - 1) mod k) = arr.((i + 1) mod k) then Some i
    else go (i + 1)
  in
  go 0

let repair_backtracking g walk =
  let max_len = 2 * Graph.order g in
  let rec fix walk fuel =
    if fuel = 0 then None
    else if Walks.is_non_backtracking g walk then Some walk
    else
      match backtracking_position g walk with
      | None -> None (* too short to be non-backtracking *)
      | Some i -> (
          let arr = Array.of_list walk in
          let k = Array.length arr in
          let v = arr.(i) and offender = arr.((i + k - 1) mod k) in
          match even_detour g ~start:v ~forbidden:offender ~max_len with
          | None -> None
          | Some detour -> fix (Walks.splice walk i detour) (fuel - 1))
  in
  fix walk (List.length walk + 2)
