open Lcp_graph
open Lcp_local

type failure = { instance : Instance.t; detail : string }
type verdict = Pass of { checked : int } | Fail of failure

let is_pass = function Pass _ -> true | Fail _ -> false

let pp_verdict ppf = function
  | Pass { checked } -> Format.fprintf ppf "pass (%d checks)" checked
  | Fail { detail; instance } ->
      Format.fprintf ppf "FAIL: %s@ on %a" detail Instance.pp instance

(* Fold with early exit on failure, counting checks. With a cfg whose
   [jobs > 1] the instances are checked on the engine's domain pool;
   the verdict is the first failure in instance order, so a Pass/Fail
   outcome and its witness are identical to the sequential fold. No
   cfg means strictly sequential: checks that share mutable state
   across instances (e.g. one RNG) rely on that. *)
let fold_verdict ?cfg instances f =
  let jobs = match cfg with Some c -> c.Run_cfg.jobs | None -> 1 in
  if jobs <= 1 then
    let rec go checked = function
      | [] -> Pass { checked }
      | inst :: rest -> (
          match f inst with
          | Ok more -> go (checked + more) rest
          | Error failure -> Fail failure)
    in
    go 0 instances
  else
    let metrics = Option.map (fun c -> c.Run_cfg.metrics) cfg in
    let results =
      Lcp_engine.Pool.map ?metrics ~jobs f (Array.of_list instances)
    in
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | Fail _, _ -> acc
        | Pass { checked }, Ok more -> Pass { checked = checked + more }
        | Pass _, Error failure -> Fail failure)
      (Pass { checked = 0 })
      results

(* [labelings_checked] is the engine-wide deterministic work counter:
   complete labelings inspected by exhaustive checks, partial labelings
   examined by certificate searches. Searches are sequential per
   instance and tallies are summed, so the total is independent of
   [jobs] (on passing runs — a Fail short-circuits differently). *)
let count_labelings cfg by =
  match cfg with
  | None -> ()
  | Some c -> Run_cfg.count c ~by "labelings_checked"

let completeness (suite : Decoder.suite) instances =
  fold_verdict instances (fun inst ->
      let g = inst.Instance.graph in
      if not (suite.Decoder.promise g && Coloring.is_bipartite g) then Ok 0
      else
        match suite.Decoder.prover inst with
        | None ->
            Error
              { instance = inst; detail = "honest prover failed on a yes-instance" }
        | Some lab ->
            let certified = Instance.with_labels inst lab in
            let verdicts = Decoder.run suite.Decoder.dec certified in
            let rejecting = ref [] in
            Array.iteri (fun v ok -> if not ok then rejecting := v :: !rejecting) verdicts;
            if !rejecting = [] then Ok 1
            else
              Error
                {
                  instance = certified;
                  detail =
                    Printf.sprintf "honest certificates rejected at node(s) %s"
                      (String.concat ","
                         (List.map string_of_int (List.rev !rejecting)));
                })

let soundness_exhaustive ?cfg (suite : Decoder.suite) instances =
  fold_verdict ?cfg instances (fun inst ->
      if Coloring.is_bipartite inst.Instance.graph then Ok 0
      else
        let alphabet = suite.Decoder.adversary_alphabet inst in
        let witness, inspected =
          Prover.search_accepted ?cfg suite.Decoder.dec ~alphabet inst
        in
        count_labelings cfg inspected;
        match witness with
        | None -> Ok 1
        | Some lab ->
            Error
              {
                instance = Instance.with_labels inst lab;
                detail = "non-bipartite instance unanimously accepted";
              })

let check_strong (suite : Decoder.suite) ~k inst lab =
  let candidate = Instance.with_labels inst lab in
  let sub, _ = Decoder.accepted_subgraph suite.Decoder.dec candidate in
  if Coloring.is_k_colorable sub ~k then None
  else
    Some
      {
        instance = candidate;
        detail =
          Printf.sprintf "accepting nodes induce a non-%d-colorable subgraph" k;
      }

(* Exhaustive strong soundness: every |Σ|^n labeling's verdict vector,
   from per-node acceptance tables when the cfg allows them (one table
   lookup per node instead of a full view-extraction pass), feeding
   the accepted-subgraph colorability check. The candidate instance is
   only materialized for the failure report.

   When the cfg allows orbit pruning and the decoder's verdicts are
   Aut-invariant (anonymous + port-invariant), the loop quotients the
   labeling space by Aut(G): symmetry-breaking constraints
   (Auto.lex_constraints along the identity order — the same order
   Labeling.iter_all uses) cut most non-orbit-minimal labelings
   during backtracking, an exact lex-minimality test against the full
   group filters the survivors, and each true minimum is counted with
   its orbit size |Aut| / |Stab(L)|. The weights over the exact
   minima partition the space, so on passing runs [checked] equals
   |Σ|^n exactly — bit-identical to the direct loop. The failing
   property is Aut-closed, so the lex-first failing labeling is an
   orbit minimum and the quotient path reports the identical failure
   instance; only a failing run's [checked] differs (the same caveat
   the jobs > 1 fold already carries). *)
let strong_soundness_exhaustive ?cfg (suite : Decoder.suite) ~k instances =
  fold_verdict ?cfg instances (fun inst ->
      let g = inst.Instance.graph in
      let dec = suite.Decoder.dec in
      let alphabet = suite.Decoder.adversary_alphabet inst in
      let lease =
        if match cfg with Some c -> c.Run_cfg.eval_cache | None -> true then
          Some (Prover.acquire_cache dec ~alphabet inst)
        else None
      in
      let verdicts =
        match Option.map Lcp_engine.Eval_cache.lease_cache lease with
        | Some ec -> fun lab -> Lcp_engine.Eval_cache.verdicts ec lab
        | None -> fun lab -> Decoder.run dec (Instance.with_labels inst lab)
      in
      let auto =
        if
          (match cfg with Some c -> c.Run_cfg.orbit_prune | None -> true)
          && Prover.orbit_eligible dec inst
        then
          let a = Lcp_engine.Auto.of_graph g in
          if Lcp_engine.Auto.is_trivial a then None else Some a
        else None
      in
      let checked = ref 0 in
      let exception Failed of failure in
      let check_labeling ~weight lab =
        checked := !checked + weight;
        let accepting = ref [] in
        Array.iteri
          (fun v ok -> if ok then accepting := v :: !accepting)
          (verdicts lab);
        let sub, _ = Graph.induced g (List.rev !accepting) in
        if not (Coloring.is_k_colorable sub ~k) then
          raise
            (Failed
               {
                 instance = Instance.with_labels inst (Array.copy lab);
                 detail =
                   Printf.sprintf
                     "accepting nodes induce a non-%d-colorable subgraph" k;
               })
      in
      let iterate () =
        match auto with
        | None ->
            Labeling.iter_all ~alphabet g (fun lab ->
                check_labeling ~weight:1 lab)
        | Some auto ->
            let n = Graph.order g in
            let perms = Lcp_engine.Auto.perms auto in
            let asize = Array.length perms in
            let cs =
              Lcp_engine.Auto.lex_constraints auto
                ~order:(Array.init n Fun.id)
            in
            let rank : (string, int) Hashtbl.t = Hashtbl.create 8 in
            List.iteri
              (fun i s ->
                if not (Hashtbl.mem rank s) then Hashtbl.add rank s i)
              alphabet;
            let rk = Array.make n 0 in
            Labeling.iter_backtracking ~alphabet g
              ~prune:(fun v lab ->
                match cs.(v) with
                | [] -> false
                | es ->
                    let rv = Hashtbl.find rank lab.(v) in
                    List.exists
                      (fun e -> rv < Hashtbl.find rank lab.(e))
                      es)
              (fun lab ->
                (* exact minimality: the chain constraints leave a
                   superset of the orbit minima, so verify L <= L.p
                   for every p and count the stabilizer on the way *)
                for v = 0 to n - 1 do
                  rk.(v) <- Hashtbl.find rank lab.(v)
                done;
                let stab = ref 0 in
                let minimal = ref true in
                Array.iter
                  (fun p ->
                    if !minimal then begin
                      let c = ref 0 in
                      let v = ref 0 in
                      while !c = 0 && !v < n do
                        c := compare rk.(!v) rk.(p.(!v));
                        incr v
                      done;
                      if !c = 0 then incr stab
                      else if !c > 0 then minimal := false
                    end)
                  perms;
                if !minimal then
                  check_labeling ~weight:(asize / !stab) lab)
      in
      let result =
        try
          iterate ();
          Ok !checked
        with Failed failure -> Error failure
      in
      count_labelings cfg !checked;
      Prover.count_eval_stats cfg lease;
      Option.iter Lcp_engine.Eval_cache.release lease;
      result)

let strong_soundness_random (suite : Decoder.suite) ~k ~trials rng instances =
  fold_verdict instances (fun inst ->
      let alphabet = suite.Decoder.adversary_alphabet inst in
      let n = Instance.order inst in
      let alphabet_arr = Array.of_list alphabet in
      let m = Array.length alphabet_arr in
      let honest = suite.Decoder.prover inst in
      let exception Failed of failure in
      let sample i =
        if i mod 2 = 0 || honest = None then
          Labeling.random rng ~alphabet inst.Instance.graph
        else begin
          (* mutate 1-2 positions of the honest labeling *)
          let lab = Array.copy (Option.get honest) in
          let flips = 1 + Random.State.int rng 2 in
          for _ = 1 to flips do
            lab.(Random.State.int rng n) <- alphabet_arr.(Random.State.int rng m)
          done;
          lab
        end
      in
      try
        for i = 1 to trials do
          match check_strong suite ~k inst (sample i) with
          | None -> ()
          | Some failure -> raise (Failed failure)
        done;
        Ok trials
      with Failed failure -> Error failure)

let invariance_check ~checker dec ~trials rng instances =
  fold_verdict instances (fun inst ->
      let algo = Decoder.as_local_algo dec in
      if checker algo inst ~trials rng then Ok trials
      else
        Error
          {
            instance = inst;
            detail = "decoder output changed under re-identification";
          })

(* ------------------------------------------------------------------ *)
(* engine sweeps: soundness over the whole n-node graph space          *)

let soundness_sweep ?cfg ?strategy ?shard ?checkpoint ?on_chunk ?max_chunks
    ?(early_exit = false) (suite : Decoder.suite) ~n =
  let mode =
    if early_exit then Lcp_engine.Sweep.Search_counterexample
    else Lcp_engine.Sweep.Exhaustive
  in
  (* materialize the counter: a sweep that keeps zero classes must
     still serialize the same key set *)
  count_labelings cfg 0;
  Lcp_engine.Sweep.run ?cfg ?strategy ?shard ?checkpoint ?on_chunk ?max_chunks
    ~mode ~n
    ~keep:(fun g -> not (Coloring.is_bipartite g))
    ~check:(fun g ->
      let inst = Instance.make g in
      let alphabet = suite.Decoder.adversary_alphabet inst in
      let witness, inspected =
        Prover.search_accepted ?cfg suite.Decoder.dec ~alphabet inst
      in
      count_labelings cfg inspected;
      match witness with
      | None -> None
      | Some lab -> Some (Instance.with_labels inst lab))
    ()

let verdict_of_sweep (s : Instance.t Lcp_engine.Sweep.summary) =
  match s.Lcp_engine.Sweep.counterexample with
  | None ->
      Pass { checked = s.Lcp_engine.Sweep.counters.Lcp_engine.Sweep.checked }
  | Some (_, inst) ->
      Fail
        {
          instance = inst;
          detail = "non-bipartite instance unanimously accepted";
        }

let anonymity dec ~trials rng instances =
  invariance_check ~checker:Local_algo.is_anonymous_on dec ~trials rng instances

let order_invariance dec ~trials rng instances =
  invariance_check ~checker:Local_algo.is_order_invariant_on dec ~trials rng instances
