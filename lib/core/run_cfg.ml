(* Re-export so core callers write [Run_cfg.make] without a direct
   Lcp_obs dependency (and without colliding with Lcp_graph.Metrics). *)
include Lcp_obs.Run_cfg
