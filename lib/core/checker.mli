(** Machine checks of the LCP correctness properties (paper Secs. 2.2,
    2.3, 2.5) on finite instance spaces.

    The paper's properties are universally quantified; on small orders
    we check them literally (exhaustive modes) and beyond that we attack
    them with randomized and mutation-based adversaries. Every failure
    carries a concrete counterexample. *)

open Lcp_local

type failure = {
  instance : Instance.t;  (** with the offending labeling installed *)
  detail : string;
}

type verdict = Pass of { checked : int } | Fail of failure

val completeness : Decoder.suite -> Instance.t list -> verdict
(** For every instance whose graph is in the promise class (and
    2-colorable), the honest prover must return certificates accepted by
    every node; instances outside the class are skipped. *)

val soundness_exhaustive :
  ?cfg:Run_cfg.t -> Decoder.suite -> Instance.t list -> verdict
(** For every instance whose graph is {e not} 2-colorable, no labeling
    over the adversary alphabet may be unanimously accepted. With a
    [cfg] whose [jobs > 1] the instances are checked on the
    {!Lcp_engine.Pool} domain pool; the verdict and its witness are
    independent of [jobs]. No [cfg] means sequential and
    uninstrumented; with one, partial labelings examined feed its
    [labelings_checked] counter. *)

val strong_soundness_exhaustive :
  ?cfg:Run_cfg.t -> Decoder.suite -> k:int -> Instance.t list -> verdict
(** Strong (promise) soundness, literally: over {e all} labelings of
    {e each} given instance, the accepting-node-induced subgraph must be
    k-colorable. Cost is |alphabet|^n per instance (with acceptance
    pruning not applicable — every labeling must be inspected), so keep
    instances small. [cfg] parallelizes over instances as in
    {!soundness_exhaustive}; complete labelings inspected feed its
    [labelings_checked] counter. *)

val soundness_sweep :
  ?cfg:Run_cfg.t ->
  ?strategy:Lcp_engine.Sweep.strategy ->
  ?shard:int * int ->
  ?checkpoint:Lcp_engine.Checkpoint.policy ->
  ?on_chunk:(completed:int -> total:int -> unit) ->
  ?max_chunks:int ->
  ?early_exit:bool ->
  Decoder.suite ->
  n:int ->
  Instance.t Lcp_engine.Sweep.summary
(** Soundness over the {e whole} [n]-node space: every connected
    non-bipartite graph on exactly [n] nodes, one representative per
    isomorphism class (enumerated, deduplicated and cached by
    {!Lcp_engine.Sweep}), must admit no unanimously accepted labeling.
    A counterexample carries the accepted instance. [strategy] selects
    the enumeration path (default [Orderly]; [Mask_scan] is the
    exhaustive oracle — both yield identical classes and verdicts).
    [early_exit] cancels remaining classes once a violation is found
    (the returned counterexample is still the minimal one). [shard]
    and [checkpoint] pass through to {!Lcp_engine.Sweep.run}: slice
    the class stream K ways, and/or persist resumable progress
    (Exhaustive mode only), as do the checkpointed-run hooks
    [on_chunk] (per-chunk progress callback) and [max_chunks]
    (deterministic preemption). [cfg] supplies the domain count and
    collects the sweep's spans and counters, including
    [labelings_checked] from the per-class certificate searches. *)

val verdict_of_sweep : Instance.t Lcp_engine.Sweep.summary -> verdict
(** Collapse a {!soundness_sweep} summary into a {!verdict}. *)

val strong_soundness_random :
  Decoder.suite ->
  k:int ->
  trials:int ->
  Random.State.t ->
  Instance.t list ->
  verdict
(** Randomized adversary: uniform labelings plus mutations of honest
    certificates (when the prover succeeds), which probe the
    near-acceptance region where violations would hide. *)

val anonymity : Decoder.t -> trials:int -> Random.State.t -> Instance.t list -> verdict
(** Empirical anonymity of the decoder on the given instances. *)

val order_invariance :
  Decoder.t -> trials:int -> Random.State.t -> Instance.t list -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
val is_pass : verdict -> bool
