(** Re-export of {!Lcp_obs.Run_cfg}, so core callers write
    [Run_cfg.make] without a direct [Lcp_obs] dependency (and without
    colliding with [Lcp_graph.Metrics]). The [include module type of
    struct include ... end] form carries the type equalities: a
    [Lcp.Run_cfg.t] {e is} a [Lcp_obs.Run_cfg.t]. *)

include module type of struct
  include Lcp_obs.Run_cfg
end
