open Lcp_graph
open Lcp_local

let erase (inst : Instance.t) ~nodes =
  let labels = Array.copy inst.Instance.labels in
  List.iter (fun v -> labels.(v) <- "") nodes;
  Instance.with_labels inst labels

let reconstructible g ~erased =
  List.for_all
    (fun v -> Graph.exists_neighbor (fun w -> not (List.mem w erased)) g v)
    erased

(* wire format: own-cert '|' p<port>=<backup> '|' ... *)
let encode ~own ~backups =
  String.concat "|"
    (own :: List.map (fun (p, c) -> Printf.sprintf "p%d=%s" p c) backups)

type parsed = { own : string; backups : (int * string) list }

let parse s =
  match String.split_on_char '|' s with
  | [] -> None
  | own :: entries ->
      let parse_entry e =
        match String.index_opt e '=' with
        | Some i when String.length e > 1 && e.[0] = 'p' -> (
            match int_of_string_opt (String.sub e 1 (i - 1)) with
            | Some p when p >= 1 -> Some (p, String.sub e (i + 1) (String.length e - i - 1))
            | _ -> None)
        | _ -> None
      in
      let parsed = List.map parse_entry entries in
      if List.exists Option.is_none parsed then None
      else Some { own; backups = List.map Option.get parsed }

let wrap (base : Decoder.suite) =
  let r = base.Decoder.dec.Decoder.radius in
  let accepts view =
    let m = View.size view in
    (* parse every visible certificate; "" means erased *)
    let parsed = Array.make m None in
    let malformed = ref false in
    for u = 0 to m - 1 do
      match View.label view u with
      | "" -> ()
      | s -> (
          match parse s with
          | Some p -> parsed.(u) <- Some p
          | None -> malformed := true)
    done;
    if !malformed then false
    else begin
      let backup_about y x =
        (* y's stored copy of x's certificate, keyed by y's port *)
        match parsed.(y) with
        | None -> None
        | Some { backups; _ } -> (
            match List.assoc_opt (View.port_of view y x) backups with
            | Some c -> Some c
            | None -> None)
      in
      (* consistency: visible backups about non-erased nodes must match *)
      let consistent = ref true in
      Graph.iter_edges
        (fun a b ->
          let chk x y =
            match (parsed.(x), backup_about y x) with
            | Some { own; _ }, Some c when c <> own -> consistent := false
            | _ -> ()
          in
          chk a b;
          chk b a)
        view.View.graph;
      if not !consistent then false
      else begin
        (* reconstruct the certificates of the inner radius-r ball *)
        let reconstructed = Array.make m None in
        let ok = ref true in
        for x = 0 to m - 1 do
          if View.distance view x <= r then
            match parsed.(x) with
            | Some { own; _ } -> reconstructed.(x) <- Some own
            | None -> (
                let copies =
                  List.rev
                    (Graph.fold_neighbors
                       (fun y acc ->
                         match backup_about y x with
                         | Some c -> c :: acc
                         | None -> acc)
                       view.View.graph x [])
                in
                match List.sort_uniq Stdlib.compare copies with
                | [ c ] -> reconstructed.(x) <- Some c
                | _ -> ok := false)
        done;
        !ok
        &&
        let repaired =
          View.mapi_labels view (fun u _ ->
              Option.value ~default:"" reconstructed.(u))
        in
        base.Decoder.dec.Decoder.accepts (View.restrict repaired ~r)
      end
    end
  in
  let dec =
    Decoder.make
      ~name:(base.Decoder.dec.Decoder.name ^ "+resilient")
      ~radius:(r + 1)
      ~anonymous:base.Decoder.dec.Decoder.anonymous accepts
  in
  let prover (inst : Instance.t) =
    match base.Decoder.prover inst with
    | None -> None
    | Some lab ->
        let g = inst.Instance.graph in
        Some
          (Array.init (Graph.order g) (fun v ->
               let backups =
                 List.rev
                   (Graph.fold_neighbors
                      (fun w acc ->
                        (Port.port_of inst.Instance.ports v w, lab.(w)) :: acc)
                      g v [])
               in
               encode ~own:lab.(v) ~backups))
  in
  let adversary_alphabet inst =
    let honest = match prover inst with Some lab -> Array.to_list lab | None -> [] in
    List.sort_uniq Stdlib.compare (("" :: Decoder.junk :: honest))
  in
  {
    Decoder.dec;
    promise = base.Decoder.promise;
    prover;
    adversary_alphabet;
    cert_bits =
      (fun inst ->
        let d = Graph.max_degree inst.Instance.graph in
        (d + 1) * base.Decoder.cert_bits inst
        + d * Certificate.bits_for_int ~max:(max 1 d));
  }
