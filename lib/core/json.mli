(** Re-export of {!Lcp_obs.Json} (the module moved into [Lcp_obs] so
    the engine layer can serialize metrics without depending on core).
    [Lcp.Json] keeps working for every existing caller; the [include
    module type of struct include ... end] form carries the type
    equalities, so values flow freely between the two paths. *)

include module type of struct
  include Lcp_obs.Json
end
