open Lcp_graph

type t = int array array

(* CSR row order is ascending neighbor id, which is exactly the
   canonical port numbering. *)
let canonical g = Array.init (Graph.order g) (fun v -> Graph.neighbors_array g v)

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let random rng g =
  let t = canonical g in
  Array.iter (shuffle rng) t;
  t

let is_valid g t =
  Array.length t = Graph.order g
  && Graph.fold_nodes
       (fun v ok ->
         ok
         &&
         let sorted = Array.copy t.(v) in
         Array.sort Stdlib.compare sorted;
         sorted = Graph.neighbors_array g v)
       g true

let port_of t v w =
  let arr = t.(v) in
  let rec find i =
    if i = Array.length arr then raise Not_found
    else if arr.(i) = w then i + 1
    else find (i + 1)
  in
  find 0

let neighbor_at t v p =
  if p < 1 || p > Array.length t.(v) then
    invalid_arg (Printf.sprintf "Port.neighbor_at: port %d out of range" p);
  t.(v).(p - 1)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let enumerate g =
  let per_node =
    List.map
      (fun v ->
        List.map Array.of_list
          (permutations (Array.to_list (Graph.neighbors_array g v))))
      (Graph.nodes g)
  in
  let rec product = function
    | [] -> [ [] ]
    | choices :: rest ->
        let tails = product rest in
        List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) choices
  in
  List.map Array.of_list (product per_node)

let count g =
  let rec fact n = if n <= 1 then 1 else n * fact (n - 1) in
  Graph.fold_nodes (fun v acc -> acc * fact (Graph.degree g v)) g 1

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun v ns ->
      Format.fprintf ppf "%d: %a@," v
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           Format.pp_print_int)
        (Array.to_list ns))
    t;
  Format.fprintf ppf "@]"
