(** Radius-r views (paper Sec. 2.2).

    [view_r(G, prt, Id, I)(v)] is the ball [N^r(v)] carrying the graph
    structure of all paths of length at most [r] from [v] — i.e. the
    edges [{a,b}] with [min(dist(v,a), dist(v,b)) <= r - 1] — together
    with the restrictions of the port, identifier and label assignments.
    Note both endpoints' ports of every visible edge are visible, as
    used by the paper's decoders (e.g. Lemma 4.2 verifies far-end
    ports).

    Local node indices are canonical: nodes are sorted by
    [(distance from center, identifier)], so the center is always local
    node [0] and two views of identified instances are equal iff they
    are structurally equal. *)

open Lcp_graph

type t = private {
  radius : int;
  graph : Graph.t;  (** ball graph over local indices *)
  dist : int array;  (** distance from the center *)
  ids : int array;  (** global identifiers *)
  id_bound : int;  (** the N known to all nodes *)
  labels : string array;
  ports : int array array;
      (** [ports.(u).(i)] is the port of [u] on the edge to the [i]-th
          neighbor in [Graph.neighbors graph u] (sorted order) *)
}

(** {1 Access tracing}

    The sanitizer hook (see [Lcp_analysis]): while a trace is armed in
    the calling domain, every read accessor below records what it
    touched — which field class, which local node, at which distance
    from the center, and (for certificates) how many bits. This is the
    evidence base for machine-checking the locality / invariance /
    certificate-taint contracts a decoder declares. Arming is
    domain-local, so traced evaluations coexist with untraced engine
    work on other domains; untraced code pays one domain-local lookup
    per accessor call. *)

module Trace : sig
  type field =
    | Label  (** a certificate string was read *)
    | Id  (** a global identifier was read *)
    | Port  (** a port number was read *)
    | Structure  (** ball shape: degree, distance, size, fringe test *)

  type event = {
    field : field;
    node : int;  (** local node index in the accessed view *)
    dist : int;  (** that node's distance from the view's center *)
    bits : int;  (** certificate bits (8 per byte) for [Label], else 0 *)
  }

  val record : (unit -> 'a) -> 'a * event list
  (** [record f] runs [f] with recording armed in the calling domain
      and returns its result with the accesses in occurrence order.
      Nests: the enclosing recorder is restored afterwards (it does not
      see the inner trace), also on exceptions. *)

  val active : unit -> bool
  (** Is a recorder armed in the calling domain? *)

  val label_bits : string -> int
  (** Certificate size in bits as charged to [Label] events
      ([8 * String.length]). *)
end

val extract : Instance.t -> r:int -> int -> t
(** The view of the given node. @raise Invalid_argument if [r < 1]. *)

val extract_all : Instance.t -> r:int -> t array
(** Views of all nodes, indexed by node. *)

(** {1 Center accessors} *)

val center : t -> int
(** Always [0]; provided for readability. *)

val center_id : t -> int
val center_label : t -> string
val center_degree : t -> int
(** True degree of the center (all its edges are visible for r >= 1). *)

val center_neighbors : t -> (int * int * int) list
(** [(local_node, my_port, far_port)] triples for the center's incident
    edges, sorted by the center's port. *)

(** {1 General accessors} *)

val size : t -> int
(** Number of nodes in the ball. *)

val id : t -> int -> int
val label : t -> int -> string
val distance : t -> int -> int

val port_of : t -> int -> int -> int
(** [port_of v a b]: port of [a] on the visible edge [{a,b}].
    @raise Not_found when the edge is not visible. *)

val full_degree_known : t -> int -> bool
(** True when all of the node's edges are visible (distance < radius
    guarantees it). *)

val find_by_id : t -> int -> int option
(** Local node carrying the given global identifier. *)

val subview1 : t -> int -> t
(** [subview1 v w]: the radius-1 view of local node [w] as determined
    inside [v]; requires [distance v w < radius v] so that all of [w]'s
    edges are visible. Used by the Sec. 5.1 compatibility notion. *)

val restrict : t -> r:int -> t
(** Shrink a view to a smaller radius: the radius-[r] view of the same
    center is fully determined by any radius-[r' >= r] view.
    @raise Invalid_argument if [r] is larger than the view's radius or
    smaller than 1. *)

val map_labels : t -> (string -> string) -> t
(** Apply a function to every certificate in the view (structure, ports
    and ids unchanged). Used to build decoders by certificate
    transformation, e.g. the tagged-union decoder of Theorem 1.1. *)

val mapi_labels : t -> (int -> string -> string) -> t
(** Like {!map_labels} with the local node index available (e.g. for
    per-node certificate reconstruction). *)

val reidentify : t -> f:(int -> int) -> ?id_bound:int -> unit -> t
(** Apply the injective map [f] to every identifier of the view,
    re-canonicalizing the local node order. Used by the order-invariance
    reduction (Lemma 6.2) and the id-replacement of Lemma 5.2.
    @raise Invalid_argument if [f] is not injective on the view's ids or
    produces ids outside [1 .. id_bound] (default: the old bound, grown
    to fit). *)

(** {1 Equality and canonical keys} *)

val equal : t -> t -> bool
(** Identified equality (ids, labels, ports, structure, radius, bound). *)

val compare : t -> t -> int

val key_identified : t -> string
(** Canonical serialization; equal iff [equal]. *)

val key_order_invariant : t -> string
(** Identifiers replaced by their rank inside the ball: equal keys iff
    the views are order-isomorphic (what an order-invariant verifier
    can distinguish). *)

val key_anonymous : t -> string
(** Identifier-free canonical form via the port-directed BFS relabeling
    from the center (port-preserving rooted isomorphisms are rigid, so
    equal keys iff the views are isomorphic ignoring ids). *)

val pp : Format.formatter -> t -> unit
val to_dot : t -> string
