(** Certificate assignments (labelings, paper Sec. 2.2).

    A labeling maps each node to a certificate string. Decoders parse
    certificates themselves; this module only handles assignment-level
    plumbing: constant labelings, finite-alphabet enumeration with
    pruning, and random sampling. *)

open Lcp_graph

type t = string array

val const : Graph.t -> string -> t
val of_list : string list -> t

val max_bits : t -> int
(** Size of the largest certificate, in bits (8 bits per byte). *)

val iter_all : alphabet:string list -> Graph.t -> (t -> unit) -> unit
(** All |alphabet|^n labelings. The array passed to the callback is
    reused; copy if you keep it. *)

val exists_all : alphabet:string list -> Graph.t -> (t -> bool) -> bool
(** Short-circuiting search over all labelings. *)

val iter_backtracking :
  alphabet:string list ->
  Graph.t ->
  prune:(int -> t -> bool) ->
  (t -> unit) ->
  unit
(** Depth-first assignment in node order; after assigning node [v] the
    partial labeling (nodes > v hold ["?"]) is passed to [prune v];
    returning [true] cuts the subtree. Complete labelings go to the
    callback. *)

val iter_backtracking_order :
  alphabet:string list ->
  order:int array ->
  Graph.t ->
  prune:(int -> t -> bool) ->
  (t -> unit) ->
  unit
(** {!iter_backtracking} with an explicit assignment order: step [i]
    assigns node [order.(i)], and [prune] receives the {e step index}
    [i] (nodes [order.(0..i)] are assigned, every other slot holds
    ["?"]). The emitted labeling arrays are still indexed by node, so
    callers see canonical node order regardless of [order]. Used by the
    certificate search to assign ball-completing nodes first, which
    lets coverage pruning fire higher in the tree.
    @raise Invalid_argument if [order] is not a permutation of
    [0 .. order g - 1]. *)

val random : Random.State.t -> alphabet:string list -> Graph.t -> t

val count : alphabet:string list -> Graph.t -> int
(** [|alphabet|^(order g)], saturating at [max_int] instead of silently
    wrapping: a result of [max_int] means "more labelings than an int
    can count". *)
