open Lcp_graph

type t = string array

let const g s = Array.make (Graph.order g) s
let of_list l = Array.of_list l

let max_bits t = Array.fold_left (fun acc s -> max acc (8 * String.length s)) 0 t

let unassigned = "?"

let iter_backtracking_order ~alphabet ~order g ~prune f =
  let n = Graph.order g in
  if Array.length order <> n then
    invalid_arg "Labeling.iter_backtracking_order: order has wrong length";
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then
        invalid_arg "Labeling.iter_backtracking_order: order is not a permutation";
      seen.(v) <- true)
    order;
  let lab = Array.make n unassigned in
  let rec go i =
    if i = n then f lab
    else
      let v = order.(i) in
      List.iter
        (fun sym ->
          lab.(v) <- sym;
          if not (prune i lab) then go (i + 1);
          lab.(v) <- unassigned)
        alphabet
  in
  if alphabet = [] && n > 0 then ()
  else go 0

let iter_backtracking ~alphabet g ~prune f =
  (* identity order: step index = node index, so [prune] sees the node *)
  let order = Array.init (Graph.order g) (fun i -> i) in
  iter_backtracking_order ~alphabet ~order g ~prune f

let iter_all ~alphabet g f =
  iter_backtracking ~alphabet g ~prune:(fun _ _ -> false) f

let exists_all ~alphabet g pred =
  let exception Found in
  try
    iter_all ~alphabet g (fun lab -> if pred lab then raise Found);
    false
  with Found -> true

let random rng ~alphabet g =
  let arr = Array.of_list alphabet in
  let m = Array.length arr in
  if m = 0 then invalid_arg "Labeling.random: empty alphabet";
  Array.init (Graph.order g) (fun _ -> arr.(Random.State.int rng m))

let count ~alphabet g =
  (* |alphabet|^n, saturating at [max_int]: the naive power silently
     wraps for large spaces (|Σ|^n overflows 63-bit ints as soon as
     e.g. |Σ| = 5, n = 28), and callers use the count as a work bound,
     where saturation is the honest answer. *)
  let m = List.length alphabet in
  let n = Graph.order g in
  if m = 0 then if n = 0 then 1 else 0
  else begin
    let acc = ref 1 in
    (try
       for _ = 1 to n do
         if !acc > max_int / m then begin
           acc := max_int;
           raise Exit
         end;
         acc := !acc * m
       done
     with Exit -> ());
    !acc
  end
