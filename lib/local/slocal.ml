type 'o t = {
  name : string;
  radius : int;
  step : View.t -> 'o option array -> 'o;
}

let make ~name ~radius step = { name; radius; step }

let execute t inst ~order =
  let n = Instance.order inst in
  let sorted = List.sort_uniq Stdlib.compare order in
  if sorted <> List.init n (fun i -> i) then
    invalid_arg "Slocal.execute: order must be a permutation of the nodes";
  let outputs = Array.make n None in
  let views = View.extract_all inst ~r:t.radius in
  List.iter
    (fun v ->
      let view = views.(v) in
      (* previous outputs visible inside the ball, indexed by the view's
         local nodes; global node recovered through identifiers *)
      let prev =
        Array.init (View.size view) (fun u ->
            match Ident.node_of_id inst.Instance.ids (View.id view u) with
            | Some w -> outputs.(w)
            | None -> None)
      in
      outputs.(v) <- Some (t.step view prev))
    order;
  Array.map Option.get outputs

let execute_canonical t inst = execute t inst ~order:(List.init (Instance.order inst) (fun i -> i))

let greedy_coloring ~radius =
  make ~name:"greedy" ~radius (fun view prev ->
      let g = view.View.graph in
      let used =
        Lcp_graph.Graph.fold_neighbors
          (fun w acc -> match prev.(w) with Some c -> c :: acc | None -> acc)
          g 0 []
      in
      let rec first c = if List.mem c used then first (c + 1) else c in
      first 0)

let first_fit_k ~radius ~k =
  make ~name:"first-fit-k" ~radius (fun view prev ->
      let g = view.View.graph in
      let used =
        Lcp_graph.Graph.fold_neighbors
          (fun w acc -> match prev.(w) with Some c -> c :: acc | None -> acc)
          g 0 []
      in
      let rec first c = if c >= k then -1 else if List.mem c used then first (c + 1) else c in
      first 0)

let of_local_algo (algo : 'o Local_algo.t) =
  make ~name:algo.Local_algo.name ~radius:algo.Local_algo.radius
    (fun view _ -> algo.Local_algo.run view)
