open Lcp_graph

type t = {
  radius : int;
  graph : Graph.t;
  dist : int array;
  ids : int array;
  id_bound : int;
  labels : string array;
  ports : int array array;
}

module Trace = struct
  type field = Label | Id | Port | Structure

  type event = { field : field; node : int; dist : int; bits : int }

  (* The recorder is domain-local: arming a trace in one domain never
     observes (or pays for) evaluations running on another, so traced
     and untraced work can coexist under the engine's domain pool. *)
  let slot : event list ref option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let active () = Domain.DLS.get slot <> None

  let note field ~node ~dist ~bits =
    match Domain.DLS.get slot with
    | None -> ()
    | Some acc -> acc := { field; node; dist; bits } :: !acc

  let record f =
    let saved = Domain.DLS.get slot in
    let acc = ref [] in
    Domain.DLS.set slot (Some acc);
    let result = match f () with y -> Ok y | exception e -> Error e in
    Domain.DLS.set slot saved;
    match result with Ok y -> (y, List.rev !acc) | Error e -> raise e

  let label_bits s = 8 * String.length s
end

(* Shorthands for the instrumented accessors below. *)
let note_label t u =
  Trace.note Trace.Label ~node:u ~dist:t.dist.(u)
    ~bits:(Trace.label_bits t.labels.(u))

let note_id t u = Trace.note Trace.Id ~node:u ~dist:t.dist.(u) ~bits:0
let note_port t u = Trace.note Trace.Port ~node:u ~dist:t.dist.(u) ~bits:0
let note_structure t u = Trace.note Trace.Structure ~node:u ~dist:t.dist.(u) ~bits:0

(* Build a view from explicit pieces: the ball nodes (global), a
   distance table, and lookup functions. Shared by [extract] and
   [subview1]. Visible edges are supplied explicitly. *)
let build ~radius ~id_bound ~ball ~gdist ~gid ~glabel ~gport ~edges =
  (* ball sorted by (dist, id) -> local indices *)
  let ball =
    List.sort
      (fun a b -> Stdlib.compare (gdist a, gid a) (gdist b, gid b))
      ball
  in
  let old_of_new = Array.of_list ball in
  let m = Array.length old_of_new in
  let new_of_old = Hashtbl.create m in
  Array.iteri (fun i v -> Hashtbl.replace new_of_old v i) old_of_new;
  let local_edges =
    List.map
      (fun (a, b) -> (Hashtbl.find new_of_old a, Hashtbl.find new_of_old b))
      edges
  in
  let graph = Graph.of_edges m local_edges in
  let dist = Array.map gdist old_of_new in
  let ids = Array.map gid old_of_new in
  let labels = Array.map glabel old_of_new in
  let ports =
    Array.init m (fun u ->
        let gu = old_of_new.(u) in
        Array.init (Graph.degree graph u) (fun i ->
            gport gu old_of_new.(Graph.nth_neighbor graph u i)))
  in
  assert (dist.(0) = 0);
  { radius; graph; dist; ids; id_bound; labels; ports }

let extract (inst : Instance.t) ~r v =
  if r < 1 then invalid_arg "View.extract: radius must be >= 1";
  let g = inst.Instance.graph in
  (* bounded BFS: cost proportional to the ball, not the whole graph *)
  let dist_tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace dist_tbl v 0;
  let queue = Queue.create () in
  Queue.add v queue;
  let ball = ref [ v ] in
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    let dx = Hashtbl.find dist_tbl x in
    if dx < r then
      Graph.iter_neighbors
        (fun y ->
          if not (Hashtbl.mem dist_tbl y) then begin
            Hashtbl.replace dist_tbl y (dx + 1);
            ball := y :: !ball;
            Queue.add y queue
          end)
        g x
  done;
  let dist w = Hashtbl.find dist_tbl w in
  (* visible edges: min endpoint distance <= r - 1; interior-interior
     edges deduplicated by orientation, interior-fringe added once *)
  let edges =
    List.fold_left
      (fun acc a ->
        if dist a > r - 1 then acc
        else
          Graph.fold_neighbors
            (fun b acc ->
              let db = dist b in
              if (db <= r - 1 && a < b) || db = r then (a, b) :: acc else acc)
            g a acc)
      [] !ball
  in
  build ~radius:r ~id_bound:inst.Instance.ids.Ident.bound ~ball:!ball
    ~gdist:dist
    ~gid:(fun w -> Ident.id inst.Instance.ids w)
    ~glabel:(fun w -> inst.Instance.labels.(w))
    ~gport:(fun a b -> Port.port_of inst.Instance.ports a b)
    ~edges

let extract_all inst ~r =
  Array.init (Instance.order inst) (fun v -> extract inst ~r v)

let center _ = 0

let center_id t =
  note_id t 0;
  t.ids.(0)

let center_label t =
  note_label t 0;
  t.labels.(0)

let center_degree t =
  note_structure t 0;
  Graph.degree t.graph 0

let size t =
  (* knowing the ball size reveals its full extent *)
  if Trace.active () then
    Trace.note Trace.Structure ~node:0 ~dist:(Array.fold_left max 0 t.dist)
      ~bits:0;
  Graph.order t.graph

let id t u =
  note_id t u;
  t.ids.(u)

let label t u =
  note_label t u;
  t.labels.(u)

let distance t u =
  note_structure t u;
  t.dist.(u)

let port_of t a b =
  note_port t a;
  match Graph.neighbor_rank t.graph a b with
  | Some i -> t.ports.(a).(i)
  | None -> raise Not_found

let full_degree_known t u =
  note_structure t u;
  t.dist.(u) < t.radius

let find_by_id t i =
  let m = Graph.order t.graph in
  let rec go u =
    if u = m then None
    else begin
      note_id t u;
      if t.ids.(u) = i then Some u else go (u + 1)
    end
  in
  go 0

let center_neighbors t =
  let triples =
    Graph.fold_neighbors
      (fun w acc -> (w, port_of t 0 w, port_of t w 0) :: acc)
      t.graph 0 []
  in
  List.sort (fun (_, p, _) (_, q, _) -> Stdlib.compare p q) triples

let subview1 t w =
  if not (full_degree_known t w) then
    invalid_arg "View.subview1: node is on the fringe; its 1-view is unknown";
  let ball = Graph.fold_neighbors (fun x acc -> x :: acc) t.graph w [ w ] in
  let edges = Graph.fold_neighbors (fun x acc -> (w, x) :: acc) t.graph w [] in
  build ~radius:1 ~id_bound:t.id_bound ~ball
    ~gdist:(fun x -> if x = w then 0 else 1)
    ~gid:(fun x -> t.ids.(x))
    ~glabel:(fun x -> t.labels.(x))
    ~gport:(fun a b -> port_of t a b)
    ~edges

let restrict t ~r =
  if r < 1 || r > t.radius then invalid_arg "View.restrict: bad radius";
  if r = t.radius then t
  else begin
    let ball =
      List.filter
        (fun u -> t.dist.(u) <= r)
        (List.init (Graph.order t.graph) (fun i -> i))
    in
    let edges =
      List.filter
        (fun (a, b) -> min t.dist.(a) t.dist.(b) <= r - 1 && max t.dist.(a) t.dist.(b) <= r)
        (Graph.edges t.graph)
    in
    build ~radius:r ~id_bound:t.id_bound ~ball
      ~gdist:(fun u -> t.dist.(u))
      ~gid:(fun u -> t.ids.(u))
      ~glabel:(fun u -> t.labels.(u))
      ~gport:(fun a b -> port_of t a b)
      ~edges
  end

let note_all_labels t =
  if Trace.active () then Array.iteri (fun u _ -> note_label t u) t.labels

let map_labels t f =
  (* the transformation consumes every certificate in the ball *)
  note_all_labels t;
  { t with labels = Array.map f t.labels }

let mapi_labels t f =
  note_all_labels t;
  { t with labels = Array.mapi f t.labels }

let reidentify t ~f ?id_bound () =
  let m = Graph.order t.graph in
  let new_ids = Array.map f t.ids in
  let max_id = Array.fold_left max 1 new_ids in
  let id_bound = match id_bound with Some b -> b | None -> max t.id_bound max_id in
  let seen = Hashtbl.create m in
  Array.iter
    (fun i ->
      if i < 1 || i > id_bound then invalid_arg "View.reidentify: id out of range";
      if Hashtbl.mem seen i then invalid_arg "View.reidentify: not injective";
      Hashtbl.replace seen i ())
    new_ids;
  build ~radius:t.radius ~id_bound ~ball:(List.init m (fun i -> i))
    ~gdist:(fun u -> t.dist.(u))
    ~gid:(fun u -> new_ids.(u))
    ~glabel:(fun u -> t.labels.(u))
    ~gport:(fun a b -> port_of t a b)
    ~edges:(Graph.edges t.graph)

(* Canonical serialization. [relabel] maps local -> canonical index;
   [id_repr] chooses how identifiers appear in the key. *)
let serialize t ~relabel ~id_repr =
  let m = Graph.order t.graph in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "r=%d;N=%d;m=%d|" t.radius t.id_bound m);
  (* inverse of relabel: canonical index -> local *)
  let local_of = Array.make m (-1) in
  Array.iteri (fun local canon -> local_of.(canon) <- local) relabel;
  for canon = 0 to m - 1 do
    let u = local_of.(canon) in
    Buffer.add_string buf
      (Printf.sprintf "n%d:d=%d;id=%s;l=%s;e=" canon t.dist.(u) (id_repr u)
         (String.escaped t.labels.(u)));
    let adj = ref [] in
    Graph.iteri_neighbors
      (fun i w -> adj := (t.ports.(u).(i), port_of t w u, relabel.(w)) :: !adj)
      t.graph u;
    List.iter
      (fun (p, q, w) -> Buffer.add_string buf (Printf.sprintf "(%d,%d,%d)" p q w))
      (List.sort Stdlib.compare !adj);
    Buffer.add_char buf '|'
  done;
  Buffer.contents buf

let identity_relabel t = Array.init (Graph.order t.graph) (fun i -> i)

let key_identified t =
  serialize t ~relabel:(identity_relabel t) ~id_repr:(fun u -> string_of_int t.ids.(u))

let key_order_invariant t =
  (* replace ids by their rank within the ball *)
  let m = Graph.order t.graph in
  let sorted = Array.init m (fun i -> i) in
  Array.sort (fun a b -> Stdlib.compare t.ids.(a) t.ids.(b)) sorted;
  let rank = Array.make m 0 in
  Array.iteri (fun r u -> rank.(u) <- r) sorted;
  serialize t ~relabel:(identity_relabel t)
    ~id_repr:(fun u -> Printf.sprintf "#%d" rank.(u))

let key_anonymous t =
  (* port-directed BFS from the center: deterministic and independent of
     both ids and the (dist, id) storage order *)
  let m = Graph.order t.graph in
  let relabel = Array.make m (-1) in
  let next = ref 0 in
  let assign u =
    if relabel.(u) = -1 then begin
      relabel.(u) <- !next;
      incr next;
      true
    end
    else false
  in
  let queue = Queue.create () in
  ignore (assign 0);
  Queue.add 0 queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let adj = ref [] in
    Graph.iteri_neighbors
      (fun i w -> adj := (t.ports.(u).(i), w) :: !adj)
      t.graph u;
    List.iter
      (fun (_, w) -> if assign w then Queue.add w queue)
      (List.sort Stdlib.compare !adj)
  done;
  assert (!next = m);
  serialize t ~relabel ~id_repr:(fun _ -> "_")

let equal a b = key_identified a = key_identified b
let compare a b = Stdlib.compare (key_identified a) (key_identified b)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>view r=%d center id=%d label=%S@,%a@,ids: %a@,dists: %a@]" t.radius
    (center_id t) (center_label t) Graph.pp t.graph
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       Format.pp_print_int)
    (Array.to_list t.ids)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       Format.pp_print_int)
    (Array.to_list t.dist)

let to_dot t =
  Graph.to_dot t.graph ~name:"View" ~label:(fun u ->
      Printf.sprintf "id=%d d=%d %s" t.ids.(u) t.dist.(u) t.labels.(u))
