open Lcp_graph

type stats = { deliveries : int; max_queue : int }

(* A message is the sender's knowledge snapshot plus the link header
   that lets the receiver record the edge fact. *)
type message = { payload : Sync_runner.knowledge; from_ : int; to_ : int }

let knowledge_union (a : Sync_runner.knowledge) (b : Sync_runner.knowledge) =
  {
    Sync_runner.node_facts =
      List.sort_uniq Stdlib.compare (a.Sync_runner.node_facts @ b.Sync_runner.node_facts);
    edge_facts =
      List.sort_uniq Stdlib.compare (a.Sync_runner.edge_facts @ b.Sync_runner.edge_facts);
  }

let subsumes (a : Sync_runner.knowledge) (b : Sync_runner.knowledge) =
  List.for_all (fun f -> List.mem f a.Sync_runner.node_facts) b.Sync_runner.node_facts
  && List.for_all (fun f -> List.mem f a.Sync_runner.edge_facts) b.Sync_runner.edge_facts

let run_to_quiescence ?(scheduler = `Fifo) (inst : Instance.t) =
  let g = inst.Instance.graph in
  let n = Graph.order g in
  let gid v = Ident.id inst.Instance.ids v in
  let state =
    Array.init n (fun v ->
        {
          Sync_runner.node_facts =
            [ { Sync_runner.nid = gid v; nlabel = inst.Instance.labels.(v) } ];
          edge_facts = [];
        })
  in
  (* in-flight messages; the scheduler picks which to deliver next *)
  let queue : message list ref = ref [] in
  let max_queue = ref 0 in
  let deliveries = ref 0 in
  let send v =
    Graph.iter_neighbors
      (fun w -> queue := !queue @ [ { payload = state.(v); from_ = v; to_ = w } ])
      g v
  in
  (* everyone announces itself once *)
  for v = 0 to n - 1 do
    send v
  done;
  let pick () =
    match scheduler with
    | `Fifo -> (
        match !queue with
        | m :: rest ->
            queue := rest;
            m
        | [] -> assert false)
    | `Lifo -> (
        match List.rev !queue with
        | m :: rest_rev ->
            queue := List.rev rest_rev;
            m
        | [] -> assert false)
    | `Random rng ->
        let i = Random.State.int rng (List.length !queue) in
        let m = List.nth !queue i in
        queue := List.filteri (fun j _ -> j <> i) !queue;
        m
  in
  while !queue <> [] do
    max_queue := max !max_queue (List.length !queue);
    let { payload; from_; to_ } = pick () in
    incr deliveries;
    let edge_fact =
      (* normalized like Sync_runner's facts: smaller id first *)
      let ida = gid to_ and idb = gid from_ in
      let pa = Port.port_of inst.Instance.ports to_ from_ in
      let pb = Port.port_of inst.Instance.ports from_ to_ in
      if ida <= idb then { Sync_runner.a = ida; pa; b = idb; pb }
      else { Sync_runner.a = idb; pa = pb; b = ida; pb = pa }
    in
    let augmented =
      knowledge_union payload
        { Sync_runner.node_facts = []; edge_facts = [ edge_fact ] }
    in
    if not (subsumes state.(to_) augmented) then begin
      state.(to_) <- knowledge_union state.(to_) augmented;
      (* knowledge improved: propagate *)
      send to_
    end
  done;
  (state, { deliveries = !deliveries; max_queue = !max_queue })

let eventually_matches_views inst ~r =
  let schedulers =
    [ `Fifo; `Lifo; `Random (Random.State.make [| 5; 7; 11 |]) ]
  in
  List.for_all
    (fun scheduler ->
      let final, _ = run_to_quiescence ~scheduler inst in
      let n = Instance.order inst in
      let rec go v =
        if v = n then true
        else
          let view_knowledge =
            Sync_runner.knowledge_of_view (View.extract inst ~r v)
          in
          subsumes final.(v) view_knowledge && go (v + 1)
      in
      go 0)
    schedulers
