open Lcp_graph

type node_fact = { nid : int; nlabel : string }
type edge_fact = { a : int; pa : int; b : int; pb : int }

type knowledge = {
  node_facts : node_fact list;
  edge_facts : edge_fact list;
}

let normalize_edge_fact f = if f.a <= f.b then f else { a = f.b; pa = f.pb; b = f.a; pb = f.pa }

let norm k =
  {
    node_facts = List.sort_uniq Stdlib.compare k.node_facts;
    edge_facts = List.sort_uniq Stdlib.compare (List.map normalize_edge_fact k.edge_facts);
  }

let merge k1 k2 =
  norm
    {
      node_facts = k1.node_facts @ k2.node_facts;
      edge_facts = k1.edge_facts @ k2.edge_facts;
    }

let run (inst : Instance.t) ~rounds =
  let g = inst.Instance.graph in
  let n = Graph.order g in
  let gid v = Ident.id inst.Instance.ids v in
  let init v =
    norm { node_facts = [ { nid = gid v; nlabel = inst.Instance.labels.(v) } ]; edge_facts = [] }
  in
  let state = ref (Array.init n init) in
  for _ = 1 to rounds do
    let prev = !state in
    let next =
      Array.init n (fun v ->
          Graph.fold_neighbors
            (fun w acc ->
              (* receiving prev.(w) over edge {v,w}; the header carries
                 w's id and its port, so v can record the edge fact *)
              let fact =
                {
                  a = gid v;
                  pa = Port.port_of inst.Instance.ports v w;
                  b = gid w;
                  pb = Port.port_of inst.Instance.ports w v;
                }
              in
              merge acc (merge prev.(w) { node_facts = []; edge_facts = [ fact ] }))
            g v prev.(v))
    in
    state := next
  done;
  !state

let knowledge_of_view (v : View.t) =
  let m = View.size v in
  let node_facts =
    List.init m (fun u -> { nid = View.id v u; nlabel = View.label v u })
  in
  let edge_facts =
    List.map
      (fun (x, y) ->
        {
          a = View.id v x;
          pa = View.port_of v x y;
          b = View.id v y;
          pb = View.port_of v y x;
        })
      (Graph.edges v.View.graph)
  in
  norm { node_facts; edge_facts }

let knowledge_matches_view inst ~r =
  let flooded = run inst ~rounds:r in
  let n = Instance.order inst in
  let rec go v =
    if v = n then true
    else
      let expected = knowledge_of_view (View.extract inst ~r v) in
      flooded.(v) = expected && go (v + 1)
  in
  go 0

let messages_sent g ~rounds = 2 * Graph.size g * rounds
