type tallies = {
  candidates : int;
  dedup_hits : int;
  classes_all : int;
  connected_classes : int;
  classes : int;
}

let max_order = Canon.max_order

(* Extend one canonical parent on [k] nodes by a new vertex [k] with
   every neighborhood bitmask. Returns the accepted children's
   canonical masks (ascending) plus the local dedup tally. Acceptance
   is the canonical-deletion test: the child's canonical form, minus
   its top-labeled vertex, must canonicalize back to this parent —
   a predicate of the child's class alone, so no two parents accept
   the same class. *)
let extend ~k parent_cmask =
  let padj = Chunk.adj_of_mask k parent_cmask in
  let child = Array.make (k + 1) 0 in
  let seen = Hashtbl.create 64 in
  let accepted = ref [] in
  let dedup = ref 0 in
  for s = 0 to (1 lsl k) - 1 do
    Array.blit padj 0 child 0 k;
    child.(k) <- s;
    Bits.fold_bits (fun v () -> child.(v) <- child.(v) lor (1 lsl k)) s ();
    let cmask = Canon.canonical_mask ~n:(k + 1) child in
    if Hashtbl.mem seen cmask then incr dedup
    else begin
      Hashtbl.replace seen cmask ();
      let cadj = Chunk.adj_of_mask (k + 1) cmask in
      let deleted = Array.init k (fun v -> cadj.(v) land lnot (1 lsl k)) in
      if Canon.canonical_mask ~n:k deleted = parent_cmask then
        accepted := cmask :: !accepted
    end
  done;
  (List.sort (fun (a : int) b -> compare a b) !accepted, 1 lsl k, !dedup)

let generate ?(jobs = 1) ?metrics ~connected n =
  if n < 0 then invalid_arg "Orderly.generate: negative order";
  if n > max_order then
    invalid_arg
      (Printf.sprintf "Orderly.generate: order %d exceeds %d" n max_order);
  if n = 0 then
    ( [ 0 ],
      {
        candidates = 0;
        dedup_hits = 0;
        classes_all = 1;
        connected_classes = 1;
        classes = 1;
      } )
  else begin
    let level = ref [| 0 |] in
    let candidates = ref 0 and dedup = ref 0 in
    for k = 1 to n - 1 do
      let parents = !level in
      let per_parent =
        Pool.run ?metrics ~jobs (Array.length parents) (fun i ->
            extend ~k parents.(i))
      in
      let acc = ref [] in
      Array.iter
        (fun (masks, cand, d) ->
          candidates := !candidates + cand;
          dedup := !dedup + d;
          acc := List.rev_append masks !acc)
        per_parent;
      (* disjoint across parents: sorting is for determinism of the
         next level's parent order, not dedup *)
      level := Array.of_list (List.sort (fun (a : int) b -> compare a b) !acc)
    done;
    let all = Array.to_list !level in
    let is_conn m = Chunk.is_connected_adj (Chunk.adj_of_mask n m) in
    let connected_classes = List.length (List.filter is_conn all) in
    let kept = if connected then List.filter is_conn all else all in
    (* representatives: the exact minimal mask of each class — the one
       the ascending mask scan keeps — seeded with the canonical mask
       (a member, hence an upper bound) for pruning *)
    let reps =
      List.map
        (fun cmask ->
          Canon.min_mask ~init:cmask ~n (Chunk.adj_of_mask n cmask))
        kept
      |> List.sort (fun (a : int) b -> compare a b)
    in
    ( reps,
      {
        candidates = !candidates;
        dedup_hits = !dedup;
        classes_all = List.length all;
        connected_classes;
        classes = List.length reps;
      } )
  end
