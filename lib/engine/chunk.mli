(** Streaming enumeration of the labeled-graph space.

    The [2^(n choose 2)] labeled graphs on [n] nodes are indexed by an
    integer edge mask (bit [i] set = edge slot [i] present, slots in
    lexicographic [(u, v)], [u < v] order — the same order as
    {!Lcp_graph.Enumerate.iter_graphs}). A sweep never materializes the
    space: it is split into contiguous mask ranges ({e chunks}) that
    workers consume independently, decoding each mask into a compact
    adjacency-bitset form. *)

open Lcp_graph

type t = { n : int; lo : int; hi : int }
(** Masks [lo <= mask < hi] of the [n]-node space. *)

val slots : int -> int
(** [n choose 2]. *)

val space : int -> int
(** [2^(n choose 2)].
    @raise Invalid_argument when the space exceeds [2^30] masks. *)

val plan : ?chunk_bits:int -> int -> t list
(** Split the [n]-node mask space into chunks of at most
    [2^chunk_bits] masks (default [12]). Always at least one chunk;
    chunks cover the space exactly, in ascending mask order. *)

val iter : t -> (int -> unit) -> unit
(** Apply a function to every mask of the chunk, ascending. *)

(** {1 Mask decoding}

    Adjacency bitsets ([adj.(u)] has bit [v] set iff [{u,v}] is an
    edge) avoid building a {!Graph.t} for the vast majority of masks
    that are filtered out. *)

val adj_of_mask : int -> int -> int array
(** [adj_of_mask n mask]. *)

val adj_of_graph : Graph.t -> int array

val mask_of_graph : Graph.t -> int
(** Inverse of {!graph_of_mask}; restricted to the scannable space.
    @raise Invalid_argument when [slots n > 30]. *)

val wide_mask_of_graph : Graph.t -> int
(** The same edge mask without the scannable-space restriction: valid
    as long as the slot count fits a native int (n <= 11 — the
    {!Canon.max_order} regime), which the mask-space {e scan} never
    could be. Class keys for sharded sweeps are built on this, so the
    key contract survives past [n = 7].
    @raise Invalid_argument when the slot count exceeds the int
    width. *)

val graph_of_mask : int -> int -> Graph.t
(** [graph_of_mask n mask] builds the full graph (use only on the few
    masks that survive filtering). *)

val is_connected_adj : int array -> bool
(** Connectivity by bitset BFS; [true] on orders 0 and 1. *)
