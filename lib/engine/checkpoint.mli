(** Sweep progress checkpoints: the durable state of a (possibly
    sharded) exhaustive sweep, written atomically after every execution
    chunk so a killed run resumes where it stopped instead of starting
    over — the difference between "an n = 8 sweep fits in a lunch
    break" and "an n = 8 sweep fits in whatever slices the machine
    grants you".

    A checkpoint is a single schema-versioned JSON object. Its header
    (tag, order, strategy, connectivity filter, shard coordinates, and
    the shard-independent enumeration tallies) pins down {e which}
    sweep the counters belong to; {!Sweep} refuses to resume from a
    checkpoint whose header or class stream disagrees with the run it
    is asked to continue. Progress is tracked positionally — [completed]
    classes of the [kept] shard-local targets, cross-checked against
    [last_key], the class key ({!Chunk.wide_mask_of_graph} of the
    representative) of the most recently finished class.

    Violations are stored as class keys ([violating_keys], ascending),
    not instances: keys are stable across processes and mergeable
    across shards, and the violating instance itself is deterministic,
    so the sweep rebuilds it from the smallest key on demand.

    All counters are deterministic per (strategy, orbit-prune setting),
    so per-shard checkpoints of a K-way sharded sweep {!merge} into
    exactly the record an unsharded run would have written: that
    equality, rendered through {!report_json}, is the CI gate for the
    sharding layer. *)

val schema_version : int
(** Current on-disk schema: 1. {!load} rejects anything else. *)

type enum = {
  candidates : int;
  connected : int;
  classes : int;
  dedup_hits : int;
}
(** The enumeration tallies of {!Sweep.counters}, frozen into the
    header. The shard filter applies {e after} enumeration, so these
    are identical across all shards of one sweep — {!merge} validates
    that instead of summing. *)

type t = {
  tag : string;  (** caller identity, e.g. the decoder key *)
  n : int;
  strategy : string;  (** {!Sweep.strategy_name} *)
  connected_only : bool;
  shards : int;  (** total shard count; 1 = unsharded *)
  shard : int;  (** this run's shard index, [0 <= shard < shards] *)
  enum : enum;
  kept : int;  (** shard-local targets surviving [keep] *)
  completed : int;  (** classes finished, a prefix of the target order *)
  last_key : int;  (** class key of target [completed - 1]; -1 if none *)
  checked : int;
  passed : int;
  violations : int;
  violating_keys : int list;  (** ascending *)
  labelings : int;
      (** the sweep's [labelings_checked] contribution so far,
          including any resumed-from checkpoint's share *)
  complete : bool;  (** [completed = kept] *)
  saved_at : int;
      (** heartbeat: epoch seconds at the moment {!save} wrote the
          file, 0 when unknown (in-memory records that were never
          saved, files written before the field existed, {!merge}
          results). A supervisor watching the file treats a stale
          [saved_at] on a live process as a stalled worker. *)
}

type policy = { path : string; resume : bool; tag : string }
(** What a caller hands {!Sweep.run}: where to write, whether an
    existing file at [path] should be continued (it is overwritten
    from scratch otherwise), and the tag to stamp into the header. *)

val to_json : t -> Lcp_obs.Json.t
val of_json : Lcp_obs.Json.t -> (t, string) result

val save : ?now:int -> path:string -> t -> unit
(** Atomic write: serialize to [path ^ ".tmp"], then rename over
    [path] — a kill mid-write leaves the previous checkpoint intact
    (the same discipline {!Lcp_obs.Sink} uses). Stamps [saved_at]
    with [now] (default: the current epoch second), so every write
    doubles as a liveness heartbeat. *)

val load : string -> (t, string) result
(** Read and decode; I/O, parse and schema errors all come back as
    [Error] with a readable message. *)

val header_mismatch : t -> t -> string option
(** The first header field (tag, n, strategy, connectivity, shard
    count, enumeration tallies) on which the two checkpoints disagree,
    or [None] when they describe the same sweep. {!Sweep} uses it to
    refuse a foreign resume; {!merge} uses it across shards. *)

val timestamp_utc : int -> string
(** Render a [saved_at] heartbeat as an ISO-8601 UTC instant
    ("2026-08-09T12:34:56Z"), or ["unknown"] for 0. *)

val merge : t list -> (t, string) result
(** Fold the per-shard checkpoints of one sweep into the unsharded
    totals: validates that every header field and the enumeration
    tallies agree, that each of shards [0..shards-1] appears exactly
    once, and that all are complete (an incomplete shard is reported
    with its index, progress, and last heartbeat); then sums [kept] / [checked] /
    [passed] / [violations] / [labelings], sorts the union of
    [violating_keys], and resets the shard coordinates to the
    unsharded [1/0]. Merging the single checkpoint of an unsharded run
    is the identity on the counters, so both sides of the CI
    comparison go through this same function. *)

val report_json : t -> Lcp_obs.Json.t
(** The merged-report rendering: everything except the shard-relative
    fields ([shards], [shard], [completed], [last_key], [complete]).
    [merge] of K shard checkpoints and [merge] of one unsharded
    checkpoint render byte-identically. *)
