(** Per-node acceptance tables: memoized radius-r verdicts.

    The locality fact the whole LCP framework rests on — a radius-[r]
    decoder's verdict at [v] depends only on the labeling restricted to
    the ball [N^r(v)] — makes exhaustive certificate searches wildly
    redundant when evaluated naively: the same (node, ball-labeling)
    pair is re-extracted and re-decoded at every backtracking step and
    for every full labeling that agrees on the ball. An [Eval_cache.t]
    evaluates each pair once.

    Per node of the instance, [create]:
    - extracts the radius-[r] view {e skeleton} once (the BFS, the
      canonical (dist, id) node order, the ball graph and ports);
    - records the local-to-global node map (label-independent, because
      the canonical order ignores labels);
    - sizes a verdict table over the ball's labeling space: a dense
      byte table when [|alphabet|^|ball|] fits [dense_limit], a
      hashtable on a packed int key when it does not, and a hashtable
      on a textual key in the (pathological) regime where base-|Σ|
      packing overflows an int.

    A query packs the ball's labels as a base-|Σ| integer and looks the
    verdict up; a miss swaps the labels into the skeleton
    ({!Lcp_local.View.mapi_labels} — no re-extraction) and runs the
    decoder once. Labels outside the alphabet bypass the table (the
    query is answered correctly but never cached).

    Determinism: verdicts are by construction identical to the direct
    [accepts (View.extract inst ~r v)] path, and for a fixed query
    sequence the hit/miss split is deterministic — caches are
    per-instance and confined to whichever domain runs that instance,
    so engine counters built from {!stats} are independent of [jobs].

    Not thread-safe: one cache belongs to one domain. *)

open Lcp_local

type t

val create :
  ?dense_limit:int ->
  radius:int ->
  accepts:(View.t -> bool) ->
  alphabet:string list ->
  Instance.t ->
  t
(** Build the per-node skeletons and (empty) verdict tables for an
    instance. [dense_limit] (default [65536]) caps the per-node byte
    table; larger key spaces fall back to hashtables. Duplicate
    alphabet symbols are collapsed.
    @raise Invalid_argument if [radius < 1]. *)

val accepts : t -> Labeling.t -> int -> bool
(** [accepts t lab v]: the decoder's verdict at node [v] under the
    (possibly partial) labeling [lab] — every node of [v]'s ball must
    carry a real label; slots outside the ball may hold anything
    (e.g. the search's ["?"] placeholder). Memoized. *)

val verdicts : t -> Labeling.t -> bool array
(** All nodes' verdicts under a complete labeling — the memoized
    equivalent of [Decoder.run], one table lookup per node. *)

val ball : t -> int -> int array
(** The instance nodes of [v]'s ball in view-local (dist, id) order —
    the key dimensions of [v]'s table. Fresh copy. *)

val stats : t -> int * int
(** [(hits, misses)] accumulated so far. [misses] is the number of
    distinct (node, ball-labeling) pairs actually decoded. *)
