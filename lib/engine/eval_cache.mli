(** Per-node acceptance tables: memoized radius-r verdicts.

    The locality fact the whole LCP framework rests on — a radius-[r]
    decoder's verdict at [v] depends only on the labeling restricted to
    the ball [N^r(v)] — makes exhaustive certificate searches wildly
    redundant when evaluated naively: the same (node, ball-labeling)
    pair is re-extracted and re-decoded at every backtracking step and
    for every full labeling that agrees on the ball. An [Eval_cache.t]
    evaluates each pair once.

    Per node of the instance, [create]:
    - extracts the radius-[r] view {e skeleton} once (the BFS, the
      canonical (dist, id) node order, the ball graph and ports);
    - records the local-to-global node map (label-independent, because
      the canonical order ignores labels);
    - sizes a verdict table over the ball's labeling space: a dense
      byte table when [|alphabet|^|ball|] fits [dense_limit], a
      hashtable on a packed int key when it does not, and a hashtable
      on a textual key in the (pathological) regime where base-|Σ|
      packing overflows an int.

    A query packs the ball's labels as a base-|Σ| integer and looks the
    verdict up; a miss swaps the labels into the skeleton
    ({!Lcp_local.View.mapi_labels} — no re-extraction) and runs the
    decoder once. Labels outside the alphabet bypass the table (the
    query is answered correctly but never cached).

    Determinism: verdicts are by construction identical to the direct
    [accepts (View.extract inst ~r v)] path, and for a fixed query
    sequence the hit/miss split is deterministic — caches are
    per-instance and confined to whichever domain runs that instance,
    so engine counters built from {!stats} are independent of [jobs].

    Not thread-safe: one cache belongs to one domain. *)

open Lcp_local

type t

val create :
  ?dense_limit:int ->
  radius:int ->
  accepts:(View.t -> bool) ->
  alphabet:string list ->
  Instance.t ->
  t
(** Build the per-node skeletons and (empty) verdict tables for an
    instance. [dense_limit] (default [65536]) caps the per-node byte
    table; larger key spaces fall back to hashtables. Duplicate
    alphabet symbols are collapsed.
    @raise Invalid_argument if [radius < 1]. *)

val accepts : t -> Labeling.t -> int -> bool
(** [accepts t lab v]: the decoder's verdict at node [v] under the
    (possibly partial) labeling [lab] — every node of [v]'s ball must
    carry a real label; slots outside the ball may hold anything
    (e.g. the search's ["?"] placeholder). Memoized. *)

val verdicts : t -> Labeling.t -> bool array
(** All nodes' verdicts under a complete labeling — the memoized
    equivalent of [Decoder.run], one table lookup per node. *)

val ball : t -> int -> int array
(** The instance nodes of [v]'s ball in view-local (dist, id) order —
    the key dimensions of [v]'s table. Fresh copy. *)

val stats : t -> int * int
(** [(hits, misses)] accumulated so far. [misses] is the number of
    distinct (node, ball-labeling) pairs actually decoded. *)

(** {1 Cross-run sharing}

    A long-running process (the [lcp serve] daemon) pays the skeleton
    extraction and the table misses over and over if every certificate
    search builds a fresh cache. The shared pool keeps built caches
    across searches, keyed by an opaque caller-supplied string that
    must determine the verdict function completely: decoder identity,
    radius, alphabet, graph, identifiers and ports (labels excluded —
    they are the table's key dimension).

    A cache is a single-domain object, so the pool hands it out under
    an {e exclusive lease}: {!acquire} checks a key out, {!release}
    checks it back in, and acquiring a key that is currently leased
    falls back to a private unpooled cache (a missed reuse, never a
    data race). The pool mutex orders the hand-off, so a cache built
    on one domain may be reused from another after its lease cycles.

    Sharing is disabled by default; one-shot runs are unaffected. *)

type lease

val sharing_enabled : unit -> bool

val set_sharing : bool -> unit
(** Enable or disable the pool process-wide; disabling drops every
    pooled cache. *)

val shared_size : unit -> int
(** Number of pooled caches. *)

val clear_shared : unit -> unit
(** Drop every pooled cache (sharing stays enabled). *)

val acquire :
  key:string ->
  ?dense_limit:int ->
  radius:int ->
  accepts:(View.t -> bool) ->
  alphabet:string list ->
  Instance.t ->
  lease
(** Obtain a cache for [key]: the pooled one when sharing is enabled,
    the key is present and not currently leased (a {e warm} lease);
    a freshly built one otherwise (pooled under [key] when sharing is
    enabled and the key was absent, private otherwise). *)

val lease_cache : lease -> t
val lease_warm : lease -> bool
(** Was this lease satisfied by an already-built pooled cache? *)

val lease_stats : lease -> int * int
(** [(hits, misses)] accumulated {e during this lease} — the delta
    since {!acquire}, so per-run counters stay independent of how warm
    the pooled cache already was. *)

val release : lease -> unit
(** Return a pooled cache to the pool (no-op on private leases). Call
    exactly once, after the last query through the lease. *)

val lease_touch : lease -> unit
(** Mark a use of the leased table under {!Lcp_obs.Sync} tracing: a
    write to the slot's shadow var, so [lcp race] turns any two
    concurrent holders of one pooled slot into a data-race finding.
    No-op on private leases and when tracing is disarmed. Stress tests
    and the [lease-pool] race scenario call this between {!acquire}
    and {!release} to certify lease exclusivity. *)
