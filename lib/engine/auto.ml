open Lcp_graph

(* The group is stored in full: one vertex->vertex permutation per
   automorphism. Orders are capped at Canon.max_order = 11 and almost
   all graphs there are rigid; the worst case in a connected sweep is
   K9 with 9! = 362,880 permutations — a few tens of MB, transient per
   class. Storing the full group keeps orbit weights and exact
   lex-minimality tests (Checker's quotient) trivially correct. *)
type t = { n : int; perms : int array array }

let of_adj ~n adj =
  if n <= 1 then { n; perms = [| Array.init n Fun.id |] }
  else
    let _, wits = Canon.min_witnesses ~n adj in
    match wits with
    | [] -> assert false (* at least one relabeling achieves the minimum *)
    | q :: _ ->
        (* q, p : label -> vertex; p . q^-1 : vertex -> vertex is an
           automorphism, and witness list = Aut(G) . q (see Canon). *)
        let qinv = Array.make n 0 in
        Array.iteri (fun l v -> qinv.(v) <- l) q;
        let perms =
          List.map (fun p -> Array.init n (fun v -> p.(qinv.(v)))) wits
        in
        { n; perms = Array.of_list perms }

let of_graph g = of_adj ~n:(Graph.order g) (Chunk.adj_of_graph g)
let order t = t.n
let size t = Array.length t.perms
let is_trivial t = Array.length t.perms <= 1
let perms t = t.perms

let orbits t =
  let parent = Array.init t.n Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  Array.iter (fun p -> Array.iteri union p) t.perms;
  Array.init t.n (fun v -> find v)

(* Transversal representatives along the stabilizer chain with base
   0, 1, ..., n-1: at level v, one permutation per non-trivial image
   of v under the pointwise stabilizer of 0..v-1. Standard strong
   generating set: any sigma factors as (representative at level 0) .
   sigma' with sigma' one level deeper, by induction. *)
let generators t =
  let gens = ref [] in
  let h = ref (Array.to_list t.perms) in
  for v = 0 to t.n - 1 do
    if List.compare_length_with !h 1 > 0 then begin
      let seen = Array.make t.n false in
      List.iter
        (fun p ->
          let u = p.(v) in
          if u <> v && not seen.(u) then begin
            seen.(u) <- true;
            gens := p :: !gens
          end)
        !h;
      h := List.filter (fun p -> p.(v) = v) !h
    end
  done;
  List.rev !gens

(* First-assignment symmetry breaking for a backtracking search that
   assigns nodes in [order]: constraints whose satisfaction is
   necessary for a labeling L to be lexicographically minimal in its
   Aut-orbit, where labelings compare by the alphabet-rank sequence
   along [order]. At chain level i, with H_i the pointwise stabilizer
   of order.(0..i-1), any sigma in H_i sending order.(i) to u makes
   L.sigma agree with L on the first i positions and hold L(u) at
   position i — so minimality forces rank(L(u)) >= rank(L(order.(i)))
   for every u in the H_i-orbit of order.(i). H_i cannot move a
   stabilized point, so every such u sits at a strictly later
   position and the constraint is checkable the moment u is assigned.
   Result: [cs.(s)] lists earlier steps [e] such that
   rank(L(order.(s))) >= rank(L(order.(e))) must hold at step [s].
   Only labelings that are not orbit-minimal are ever cut. *)
(* Full prefix-minimality programs: for each non-identity
   automorphism p, the pairs (s, e) — in increasing step order,
   restricted to the steps p moves — where e is the step assigned p's
   image of the node assigned at step s. A backtracking search in
   [order] compares L against L.p by walking a program in order over
   the pairs whose steps are both assigned: ranks equal so far and
   rank(s) > rank(e) means L.p is lexicographically smaller on a
   decided prefix, so no completion of L is minimal in its orbit and
   the branch can be cut; rank(s) < rank(e) or an unassigned step ends
   the walk inconclusively. Steps p fixes always compare equal and are
   omitted. Any subset of the group yields sound (if weaker) pruning,
   so callers may truncate the result. *)
let prefix_programs t ~order =
  let n = t.n in
  let pos = Array.make (max n 1) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let program p =
    let moved = ref [] in
    for s = n - 1 downto 0 do
      let e = pos.(p.(order.(s))) in
      if e <> s then moved := (s, e) :: !moved
    done;
    match !moved with [] -> None | l -> Some (Array.of_list l)
  in
  let activation prog =
    let s, e = prog.(0) in
    max s e
  in
  (* ascending activation step (the first step at which the program
     can say anything): a search at step [i] can stop scanning at the
     first program whose activation exceeds [i], which makes the
     shallow — exponentially hottest — nodes nearly free. Stable, so
     the order stays deterministic. *)
  List.filter_map program (Array.to_list t.perms)
  |> List.stable_sort (fun a b -> compare (activation a) (activation b))
  |> Array.of_list

let lex_constraints t ~order =
  let n = t.n in
  let pos = Array.make (max n 1) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let cs = Array.make (max n 1) [] in
  let h = ref (Array.to_list t.perms) in
  for i = 0 to n - 1 do
    if List.compare_length_with !h 1 > 0 then begin
      let v = order.(i) in
      let seen = Array.make n false in
      List.iter
        (fun p ->
          let u = p.(v) in
          if u <> v && not seen.(u) then begin
            seen.(u) <- true;
            cs.(pos.(u)) <- i :: cs.(pos.(u))
          end)
        !h;
      h := List.filter (fun p -> p.(v) = v) !h
    end
  done;
  Array.map List.rev cs
