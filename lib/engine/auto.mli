(** Automorphism groups of small graphs, harvested from {!Canon}.

    {!Canon.min_witnesses} returns every relabeling that achieves the
    minimal edge mask; composing each witness with a fixed witness's
    inverse turns that list into the full automorphism group [Aut(G)]
    as vertex permutations. This module packages the group together
    with the two quotient operations the certificate searches need:

    - {!orbits} / {!generators}: node orbits and a small (strong)
      generating set, for reporting and validation;
    - {!lex_constraints} / {!prefix_programs}: symmetry breaking for a
      backtracking labeling search — per-step conditions that cut a
      partial labeling only if {e no} completion of it is
      lexicographically minimal in its Aut-orbit. Restricting a search
      to orbit minima is sound for any decoder whose per-node verdict
      is invariant under the graph's automorphisms (anonymous {e and}
      port-invariant decoders: the verdict depends only on the labeled
      isomorphism type of the view), because acceptance of [L] and of
      [L∘σ] coincide and the lexicographically first accepted labeling
      is automatically minimal in its own orbit.

    Orders are capped at {!Canon.max_order}; the group is stored in
    full (the worst connected case at that cap, K9, has 362,880
    elements — transient megabytes, and rigid graphs dominate every
    real sweep). *)

type t

val of_adj : n:int -> int array -> t
(** Aut of the graph given as adjacency bitsets
    ({!Chunk.adj_of_mask}). Raises [Invalid_argument] past
    {!Canon.max_order}. *)

val of_graph : Lcp_graph.Graph.t -> t

val order : t -> int
(** Number of graph nodes. *)

val size : t -> int
(** [|Aut(G)|] (always >= 1; the identity is included). *)

val is_trivial : t -> bool
(** The graph is rigid: only the identity automorphism. *)

val perms : t -> int array array
(** Every automorphism as a vertex→vertex permutation, in the
    branch-and-bound's deterministic discovery order. The array and
    its rows are owned by [t]: do not mutate. *)

val orbits : t -> int array
(** [orbits t] maps each node to the smallest node in its orbit under
    the full group — equal entries iff same orbit. *)

val generators : t -> int array list
(** A strong generating set: transversal representatives along the
    stabilizer chain with base [0, 1, ..., n-1]. Empty iff the group
    is trivial. Generates the full group. *)

val lex_constraints : t -> order:int array -> int list array
(** [lex_constraints t ~order] for a backtracking search assigning
    node [order.(i)] at step [i]: [cs.(s)] lists the earlier steps [e]
    such that a labeling can only be lexicographically minimal in its
    Aut-orbit (comparing alphabet-rank sequences along [order]) if
    [rank L(order.(s)) >= rank L(order.(e))]. Checking [cs.(s)] as
    soon as step [s] assigns its node prunes whole subtrees of
    non-minimal labelings and never cuts an orbit minimum. Derived
    from the stabilizer chain along [order] (first-assignment
    symmetry breaking). *)

val prefix_programs : t -> order:int array -> (int * int) array array
(** Full lexicographic prefix-minimality tests, one program per
    non-identity automorphism [p]: the pairs [(s, e)] in increasing
    step order, restricted to the steps [p] moves, where [e] is the
    step assigned [p]'s image of the node assigned at step [s]. A
    search in [order] walks a program over the pairs whose steps are
    both assigned: all ranks equal so far and [rank(s) > rank(e)]
    proves [L∘p] lexicographically smaller on a fully decided prefix
    — no completion of the current partial labeling is minimal in its
    orbit, so the branch can be cut; [rank(s) < rank(e)] or an
    unassigned step ends the walk inconclusively. Strictly stronger
    than {!lex_constraints} (which keeps only the conditions the
    stabilizer chain makes unconditional) at the price of a walk per
    automorphism. Any prefix of the result prunes soundly, so callers
    may truncate it. *)
