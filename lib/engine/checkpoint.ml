module Json = Lcp_obs.Json

let schema_version = 1

type enum = {
  candidates : int;
  connected : int;
  classes : int;
  dedup_hits : int;
}

type t = {
  tag : string;
  n : int;
  strategy : string;
  connected_only : bool;
  shards : int;
  shard : int;
  enum : enum;
  kept : int;
  completed : int;
  last_key : int;
  checked : int;
  passed : int;
  violations : int;
  violating_keys : int list;
  labelings : int;
  complete : bool;
  saved_at : int;
}

let timestamp_utc s =
  if s <= 0 then "unknown"
  else
    let tm = Unix.gmtime (float_of_int s) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let enum_json e =
  Json.Obj
    [
      ("candidates", Json.Int e.candidates);
      ("connected", Json.Int e.connected);
      ("classes", Json.Int e.classes);
      ("dedup_hits", Json.Int e.dedup_hits);
    ]

let to_json t =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("tag", Json.String t.tag);
      ("n", Json.Int t.n);
      ("strategy", Json.String t.strategy);
      ("connected", Json.Bool t.connected_only);
      ("shards", Json.Int t.shards);
      ("shard", Json.Int t.shard);
      ("enum", enum_json t.enum);
      ("kept", Json.Int t.kept);
      ("completed", Json.Int t.completed);
      ("last_key", Json.Int t.last_key);
      ("checked", Json.Int t.checked);
      ("passed", Json.Int t.passed);
      ("violations", Json.Int t.violations);
      ( "violating_keys",
        Json.List (List.map (fun k -> Json.Int k) t.violating_keys) );
      ("labelings_checked", Json.Int t.labelings);
      ("complete", Json.Bool t.complete);
      ("saved_at", Json.Int t.saved_at);
    ]

let ( let* ) = Json.( let* )

let field_int j k =
  let* v = Json.member k j in
  Json.to_int v

let field_str j k =
  let* v = Json.member k j in
  Json.to_str v

let field_bool j k =
  let* v = Json.member k j in
  Json.to_bool v

let enum_of_json j =
  let* candidates = field_int j "candidates" in
  let* connected = field_int j "connected" in
  let* classes = field_int j "classes" in
  let* dedup_hits = field_int j "dedup_hits" in
  Ok { candidates; connected; classes; dedup_hits }

let of_json j =
  let* v = field_int j "schema_version" in
  if v <> schema_version then
    Error (Printf.sprintf "checkpoint schema %d, expected %d" v schema_version)
  else
    let* tag = field_str j "tag" in
    let* n = field_int j "n" in
    let* strategy = field_str j "strategy" in
    let* connected_only = field_bool j "connected" in
    let* shards = field_int j "shards" in
    let* shard = field_int j "shard" in
    let* ej = Json.member "enum" j in
    let* enum = enum_of_json ej in
    let* kept = field_int j "kept" in
    let* completed = field_int j "completed" in
    let* last_key = field_int j "last_key" in
    let* checked = field_int j "checked" in
    let* passed = field_int j "passed" in
    let* violations = field_int j "violations" in
    let* vk = Json.member "violating_keys" j in
    let* vk = Json.to_list vk in
    let* violating_keys = Json.map_m Json.to_int vk in
    let* labelings = field_int j "labelings_checked" in
    let* complete = field_bool j "complete" in
    (* Heartbeat added after schema 1 shipped: absent in older files,
       tolerated as 0 ("unknown") rather than bumping the schema. *)
    let* saved_at =
      match Json.member "saved_at" j with
      | Error _ -> Ok 0
      | Ok v -> Json.to_int v
    in
    Ok
      {
        tag;
        n;
        strategy;
        connected_only;
        shards;
        shard;
        enum;
        kept;
        completed;
        last_key;
        checked;
        passed;
        violations;
        violating_keys;
        labelings;
        complete;
        saved_at;
      }

(* ------------------------------------------------------------------ *)
(* disk discipline: write-to-tmp then rename, same as Sink             *)

let save ?now ~path t =
  let saved_at =
    match now with Some s -> s | None -> int_of_float (Unix.time ())
  in
  let t = { t with saved_at } in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_json t));
      output_char oc '\n');
  Sys.rename tmp path

let load path =
  match
    In_channel.with_open_text path (fun ic -> In_channel.input_all ic)
  with
  | exception Sys_error msg -> Error msg
  | raw ->
      let* j = Json.of_string raw in
      of_json j

(* ------------------------------------------------------------------ *)
(* shard merging                                                       *)

(* Everything that must be shard-invariant before counters may be
   summed: the sweep identity and the (shard-independent) enumeration
   tallies. *)
let header_mismatch a b =
  if a.tag <> b.tag then Some "tag"
  else if a.n <> b.n then Some "n"
  else if a.strategy <> b.strategy then Some "strategy"
  else if a.connected_only <> b.connected_only then Some "connected"
  else if a.shards <> b.shards then Some "shards"
  else if a.enum <> b.enum then Some "enumeration tallies"
  else None

let merge = function
  | [] -> Error "merge: no checkpoints"
  | first :: _ as cks -> (
      let bad =
        List.find_map
          (fun c ->
            match header_mismatch first c with
            | Some what ->
                Some (Printf.sprintf "merge: %s differs across checkpoints" what)
            | None ->
                if not c.complete then
                  Some
                    (Printf.sprintf
                       "merge: shard %d/%d is incomplete: %d/%d classes done \
                        (next chunk starts at class %d; last checkpoint %s)"
                       c.shard c.shards c.completed c.kept c.completed
                       (timestamp_utc c.saved_at))
                else None)
          cks
      in
      match bad with
      | Some msg -> Error msg
      | None ->
          let seen = List.sort compare (List.map (fun c -> c.shard) cks) in
          if seen <> List.init first.shards Fun.id then
            Error
              (Printf.sprintf
                 "merge: need every shard 0..%d exactly once, got {%s}"
                 (first.shards - 1)
                 (String.concat ","
                    (List.map string_of_int seen)))
          else
            let sum f = List.fold_left (fun acc c -> acc + f c) 0 cks in
            Ok
              {
                first with
                shards = 1;
                shard = 0;
                kept = sum (fun c -> c.kept);
                completed = sum (fun c -> c.completed);
                last_key = -1;
                checked = sum (fun c -> c.checked);
                passed = sum (fun c -> c.passed);
                violations = sum (fun c -> c.violations);
                violating_keys =
                  List.sort compare
                    (List.concat_map (fun c -> c.violating_keys) cks);
                labelings = sum (fun c -> c.labelings);
                complete = true;
                saved_at = 0;
              })

(* The merged-report rendering drops every shard-relative field
   (shards, shard, completed, last_key, complete), so merging K shard
   checkpoints and merging the single checkpoint of an unsharded run
   produce byte-identical files — that equality is the CI gate. *)
let report_json t =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("tag", Json.String t.tag);
      ("n", Json.Int t.n);
      ("strategy", Json.String t.strategy);
      ("connected", Json.Bool t.connected_only);
      ("enum", enum_json t.enum);
      ("kept", Json.Int t.kept);
      ("checked", Json.Int t.checked);
      ("passed", Json.Int t.passed);
      ("violations", Json.Int t.violations);
      ( "violating_keys",
        Json.List (List.map (fun k -> Json.Int k) t.violating_keys) );
      ("labelings_checked", Json.Int t.labelings);
    ]

type policy = { path : string; resume : bool; tag : string }
