(* popcount of every 16-bit value; 64 KB, built once at module init.
   table.(i) = table.(i/2) + (i land 1) is the usual recurrence. *)
let table =
  let t = Bytes.make 65536 '\000' in
  for i = 1 to 65535 do
    Bytes.unsafe_set t i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t (i lsr 1)) + (i land 1)))
  done;
  t

let pop16 x = Char.code (Bytes.unsafe_get table (x land 0xffff))

let popcount x =
  pop16 x + pop16 (x lsr 16) + pop16 (x lsr 32) + pop16 (x lsr 48)

let ntz x = popcount ((x land -x) - 1)

let fold_bits f m acc =
  let acc = ref acc and m = ref m in
  while !m <> 0 do
    let b = !m land - !m in
    acc := f (ntz b) !acc;
    m := !m lxor b
  done;
  !acc
