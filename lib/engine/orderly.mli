(** Orderly generation of isomorphism classes by canonical
    augmentation (McKay-style).

    The mask-scan enumerator visits all [2^(n choose 2)] edge masks
    and canonicalizes each one — 2,097,152 masks for the 853 connected
    classes on 7 nodes, an infeasible 268M on 8. This generator builds
    the classes {e directly}, level by level: every canonical [k]-node
    graph is extended by one new vertex with each of the [2^k]
    neighborhood bitmasks, and a child survives only if it passes the
    canonicity test — deleting the top-labeled vertex of its canonical
    form must give back exactly the parent it was generated from.

    That {e canonical-deletion} test makes the parent of every class
    unique (it is a function of the child's canonical form alone), so:

    - the generator emits exactly one representative per isomorphism
      class — completeness because every graph arises from {e some}
      vertex deletion, uniqueness because only the canonical deletion
      is accepted;
    - accepted sets of different parents are disjoint, so the parallel
      merge is a plain concatenation — deterministic in [jobs] by
      construction;
    - total work is proportional to [classes × 2^k] candidates
      (11,290 candidates for all of n ≤ 7; ~145k for n = 8) instead
      of the [2^(n choose 2)] mask space.

    Intermediate levels necessarily include disconnected classes (a
    connected graph's canonical parent may be disconnected); the
    connectivity filter runs on the final level only, where it is a
    class property. *)

type tallies = {
  candidates : int;
      (** extension candidates (parent, neighborhood-bitmask pairs)
          examined across all levels *)
  dedup_hits : int;
      (** candidates folded into an already-generated canonical form
          of the same parent *)
  classes_all : int;  (** classes at the final level, before the filter *)
  connected_classes : int;  (** connected classes at the final level *)
  classes : int;  (** classes returned (after the [connected] filter) *)
}

val max_order : int
(** Largest supported order (the {!Canon} edge-mask bound). *)

val generate :
  ?jobs:int ->
  ?metrics:Lcp_obs.Metrics.t ->
  connected:bool ->
  int ->
  int list * tallies
(** [generate ~connected n] returns the minimal edge mask of every
    isomorphism class on [n] nodes (restricted to connected classes
    when [connected]), in ascending mask order — bit-identical to the
    listing the exhaustive mask scan keeps, at a fraction of the work.
    Each level's parents fan out over a {!Pool} of [jobs] domains
    (default 1); results and tallies are independent of [jobs].
    @raise Invalid_argument when [n] exceeds {!max_order}. *)
