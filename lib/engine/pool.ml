module Sync = Lcp_obs.Sync

let default_jobs () = Domain.recommended_domain_count ()

(* Run [worker w] (which reports its exception instead of raising) on
   this domain (index 0) plus [extra] spawned domains (indices 1..);
   join everything, then re-raise the first exception observed. The
   spawns go through the instrumented layer so [lcp race] sees the
   fork/join happens-before edges. *)
let with_domains ~extra worker =
  let spawned =
    List.init extra (fun w ->
        Sync.spawn_domain "engine/pool/worker" (fun () -> worker (w + 1)))
  in
  let main_exn = worker 0 in
  let first_exn =
    List.fold_left
      (fun acc d ->
        let r = try Sync.join_domain d with e -> Some e in
        match acc with None -> r | Some _ -> acc)
      main_exn spawned
  in
  match first_exn with Some e -> raise e | None -> ()

(* Per-domain work-steal tally: how many task indices worker [w]
   pulled. A gauge of the actual schedule, not part of the
   deterministic-counter contract (see Lcp_obs.Metrics). *)
let record_tasks metrics w n =
  match metrics with
  | None -> ()
  | Some m -> Lcp_obs.Metrics.incr m ~by:n (Printf.sprintf "pool/worker%d/tasks" w)

let run ?metrics ~jobs count f =
  if count <= 0 then [||]
  else if jobs <= 1 || count = 1 then begin
    record_tasks metrics 0 count;
    Array.init count f
  end
  else begin
    let results = Array.make count None in
    let next = Sync.A.make "engine/pool.next" 0 in
    let worker w =
      let exn = ref None in
      let pulled = ref 0 in
      (try
         let continue = ref true in
         while !continue do
           let i = Sync.A.fetch_and_add next 1 in
           if i >= count then continue := false
           else begin
             incr pulled;
             results.(i) <- Some (f i)
           end
         done
       with e -> exn := Some e);
      record_tasks metrics w !pulled;
      !exn
    in
    with_domains ~extra:(min jobs count - 1) worker;
    Array.map (function Some x -> x | None -> assert false) results
  end

let map ?metrics ~jobs f arr =
  run ?metrics ~jobs (Array.length arr) (fun i -> f arr.(i))

let search ?metrics ~jobs count f =
  if count <= 0 then None
  else if jobs <= 1 || count = 1 then begin
    let rec go i =
      if i >= count then begin
        record_tasks metrics 0 count;
        None
      end
      else
        match f i with
        | Some x ->
            record_tasks metrics 0 (i + 1);
            Some (i, x)
        | None -> go (i + 1)
    in
    go 0
  end
  else begin
    let next = Sync.A.make "engine/pool.next" 0 in
    let best = Sync.A.make "engine/pool.best" max_int in
    let lock = Sync.mutex "engine/pool.search" in
    let found = Sync.Var.make "engine/pool.found" None in
    let record i x =
      (* lower the cancellation bound first, then the witness *)
      let rec lower () =
        let b = Sync.A.get best in
        if i < b && not (Sync.A.compare_and_set best b i) then lower ()
      in
      lower ();
      Sync.with_lock lock (fun () ->
          match Sync.Var.get found with
          | Some (j, _) when j <= i -> ()
          | _ -> Sync.Var.set found (Some (i, x)))
    in
    let worker w =
      let exn = ref None in
      let pulled = ref 0 in
      (try
         let continue = ref true in
         while !continue do
           let i = Sync.A.fetch_and_add next 1 in
           if i >= count then continue := false
           else if i < Sync.A.get best then begin
             incr pulled;
             match f i with Some x -> record i x | None -> ()
           end
           (* i above the current best: skip, it cannot win *)
         done
       with e -> exn := Some e);
      record_tasks metrics w !pulled;
      !exn
    in
    with_domains ~extra:(min jobs count - 1) worker;
    Sync.Var.get found
  end
