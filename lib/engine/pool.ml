let default_jobs () = Domain.recommended_domain_count ()

(* Run [worker] (which reports its exception instead of raising) on
   this domain plus [extra] spawned domains; join everything, then
   re-raise the first exception observed. *)
let with_domains ~extra worker =
  let spawned = List.init extra (fun _ -> Domain.spawn worker) in
  let main_exn = worker () in
  let first_exn =
    List.fold_left
      (fun acc d ->
        let r = try Domain.join d with e -> Some e in
        match acc with None -> r | Some _ -> acc)
      main_exn spawned
  in
  match first_exn with Some e -> raise e | None -> ()

let run ~jobs count f =
  if count <= 0 then [||]
  else if jobs <= 1 || count = 1 then Array.init count f
  else begin
    let results = Array.make count None in
    let next = Atomic.make 0 in
    let worker () =
      let exn = ref None in
      (try
         let continue = ref true in
         while !continue do
           let i = Atomic.fetch_and_add next 1 in
           if i >= count then continue := false
           else results.(i) <- Some (f i)
         done
       with e -> exn := Some e);
      !exn
    in
    with_domains ~extra:(min jobs count - 1) worker;
    Array.map (function Some x -> x | None -> assert false) results
  end

let map ~jobs f arr = run ~jobs (Array.length arr) (fun i -> f arr.(i))

let search ~jobs count f =
  if count <= 0 then None
  else if jobs <= 1 || count = 1 then begin
    let rec go i =
      if i >= count then None
      else match f i with Some x -> Some (i, x) | None -> go (i + 1)
    in
    go 0
  end
  else begin
    let next = Atomic.make 0 in
    let best = Atomic.make max_int in
    let lock = Mutex.create () in
    let found = ref None in
    let record i x =
      (* lower the cancellation bound first, then the witness *)
      let rec lower () =
        let b = Atomic.get best in
        if i < b && not (Atomic.compare_and_set best b i) then lower ()
      in
      lower ();
      Mutex.lock lock;
      (match !found with
      | Some (j, _) when j <= i -> ()
      | _ -> found := Some (i, x));
      Mutex.unlock lock
    in
    let worker () =
      let exn = ref None in
      (try
         let continue = ref true in
         while !continue do
           let i = Atomic.fetch_and_add next 1 in
           if i >= count then continue := false
           else if i < Atomic.get best then
             match f i with Some x -> record i x | None -> ()
           (* i above the current best: skip, it cannot win *)
         done
       with e -> exn := Some e);
      !exn
    in
    with_domains ~extra:(min jobs count - 1) worker;
    !found
  end
