(** A work-stealing domain pool over OCaml 5 Domains.

    Tasks are indices [0 .. count-1] pulled from a shared atomic
    counter, so load-balancing is automatic and no task list is
    materialized. [jobs = 1] (and [count <= 1]) degrade to a plain
    sequential loop with zero Domain overhead — results are the same
    either way; parallelism only changes wall-clock time.

    Worker closures must not share mutable state (the task functions
    used by {!Sweep} accumulate into per-worker buffers and merge
    deterministically afterwards). The one sanctioned exception is an
    {!Lcp_obs.Metrics.t}: its [incr] is lock-protected and safe from
    any domain.

    When [?metrics] is given, each entry point tallies how many task
    indices each worker domain pulled under [pool/worker<w>/tasks].
    These are observations of the actual schedule — they vary between
    runs and across [jobs], unlike the engine's deterministic result
    counters. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?metrics:Lcp_obs.Metrics.t -> jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ~jobs count f] computes [f i] for every [i < count] on up to
    [jobs] domains and returns the results in index order (independent
    of [jobs]). Exceptions raised by [f] are re-raised after all
    domains are joined. *)

val map :
  ?metrics:Lcp_obs.Metrics.t -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] = [run ~jobs (length arr) (fun i -> f arr.(i))]. *)

val search :
  ?metrics:Lcp_obs.Metrics.t ->
  jobs:int ->
  int ->
  (int -> 'a option) ->
  (int * 'a) option
(** [search ~jobs count f] returns [Some (i, x)] for the {e smallest}
    [i] with [f i = Some x], or [None]. Early-exit: once a match at
    index [i] is found, indices above [i] are cancelled (never pulled,
    or skipped on pull), while smaller indices still run to completion
    so the minimal match is returned {e deterministically} — the same
    result for every [jobs]. *)
