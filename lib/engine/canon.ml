open Lcp_graph

let popcount = Bits.popcount

(* Edge masks must fit an OCaml int (and [key] packs the order into 4
   extra bits): 11 * 10 / 2 = 55 mask bits + 4 order bits = 59 < 63. *)
let max_order = 11

let check_order ~who n =
  if n > max_order then
    invalid_arg (Printf.sprintf "Canon.%s: order %d exceeds %d" who n max_order)

(* Iterative refinement (1-WL): colors start as degrees and are
   repeatedly replaced by the rank of an integer signature encoding
   (own color, per-color neighbor counts). Counting neighbors per
   color in color order replaces the historical sort of
   [(int, int list)] signatures: no allocation per node, no
   polymorphic compare. The encoding is exact, not a hash: with
   [c <= n] colors and counts [< n + 1], the base-(n+1) digits
   [own color :: counts] stay below (n+1)^(n+2) <= 12^13 < 2^62, so
   distinct signatures get distinct integers and the partition is
   identical to the one the sorted-signature ranking produced. *)
let refine n adj =
  let colors = Array.init n (fun v -> popcount adj.(v)) in
  if n = 0 then colors
  else begin
    let sigs = Array.make n 0 in
    let sorted = Array.make n 0 in
    let counts = Array.make (n + 1) 0 in
    let stable = ref false in
    let rounds = ref 0 in
    while (not !stable) && !rounds < n do
      incr rounds;
      for v = 0 to n - 1 do
        let m = ref adj.(v) in
        while !m <> 0 do
          let b = !m land - !m in
          let c = colors.(Bits.ntz b) in
          counts.(c) <- counts.(c) + 1;
          m := !m lxor b
        done;
        let h = ref (colors.(v) + 1) in
        for c = 0 to n - 1 do
          h := (!h * (n + 1)) + counts.(c);
          counts.(c) <- 0
        done;
        sigs.(v) <- !h
      done;
      (* rank = position among the distinct signature values *)
      Array.blit sigs 0 sorted 0 n;
      Array.sort (fun (a : int) b -> compare a b) sorted;
      let distinct = ref 1 in
      for i = 1 to n - 1 do
        if sorted.(i) <> sorted.(!distinct - 1) then begin
          sorted.(!distinct) <- sorted.(i);
          incr distinct
        end
      done;
      let rank s =
        let lo = ref 0 and hi = ref (!distinct - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if sorted.(mid) < s then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      let changed = ref false in
      for v = 0 to n - 1 do
        let r = rank sigs.(v) in
        if r <> colors.(v) then changed := true;
        colors.(v) <- r
      done;
      if not !changed then stable := true
    done;
    colors
  end

let cells_of_colors n colors =
  let max_c = Array.fold_left max 0 colors in
  let buckets = Array.make (max_c + 1) [] in
  for v = n - 1 downto 0 do
    buckets.(colors.(v)) <- v :: buckets.(colors.(v))
  done;
  Array.to_list buckets |> List.filter (fun c -> c <> [])

(* Minimum edge mask over the bijections that send the i-th cell onto
   the i-th contiguous label block (cells listed lowest labels first).
   Labels are assigned from [n-1] downward, so the bit block decided
   by placing label [l] — slots [(l, l+1) .. (l, n-1)] — is strictly
   less significant than everything already decided. That makes the
   lexicographic early abort a single integer comparison: a partial
   assignment whose decided bits exceed the incumbent best on the
   same slots cannot be completed into a smaller mask and is
   abandoned; one that is strictly below is guaranteed to win and
   runs un-pruned to the leaf. [init] seeds the incumbent (pass the
   mask of any member of the class to tighten pruning; [max_int]
   otherwise). *)
let minimize ~n adj ~init cells =
  let cells = Array.of_list (List.map Array.of_list (List.rev cells)) in
  let ncells = Array.length cells in
  let vert_of = Array.make (max n 1) 0 in
  (* bases.(l) = slot index of the pair (l, l+1): the least
     significant slot decided when label l is placed. The formula
     extends to l = n-1 (whose block is empty) as the total slot
     count, which makes its prune comparison trivially true. *)
  let bases = Array.init (max n 1) (fun l -> (l * ((2 * n) - l - 3) / 2) + l) in
  let best = ref init in
  let cell_size ci = if ci < ncells then Array.length cells.(ci) else 0 in
  let rec place ci left label assigned partial =
    if ci = ncells then begin
      if partial < !best then best := partial
    end
    else begin
      let cell = cells.(ci) in
      for j = 0 to Array.length cell - 1 do
        let x = cell.(j) in
        if assigned land (1 lsl x) = 0 then begin
          let base = bases.(label) in
          let row = adj.(x) in
          let blk = ref 0 in
          for m = label + 1 to n - 1 do
            if row land (1 lsl vert_of.(m)) <> 0 then
              blk := !blk lor (1 lsl (base + m - label - 1))
          done;
          let partial = partial lor !blk in
          (* lsr/lsl are right-associative: parens required *)
          if partial <= (!best lsr base) lsl base then begin
            vert_of.(label) <- x;
            if left = 1 then
              place (ci + 1) (cell_size (ci + 1)) (label - 1)
                (assigned lor (1 lsl x)) partial
            else
              place ci (left - 1) (label - 1) (assigned lor (1 lsl x)) partial
          end
        end
      done
    end
  in
  place 0 (cell_size 0) (n - 1) 0 0;
  !best

(* Every label->vertex bijection achieving a known minimum mask. The
   same branch-and-bound as [minimize] over the trivial one-cell
   partition, but with the incumbent pinned at the true minimum: the
   tie-keeping [<=] prune then visits exactly the min-achieving leaves
   (nothing can beat the pinned incumbent, so every surviving leaf
   ties). Relabeling by any two witnesses produces the same minimal
   graph, so [p . q^-1] is an automorphism for every witness pair and
   the witness list is [Aut(G) . q] for any fixed witness [q] — the
   automorphism group falls out of the minimization (see {!Auto}). *)
let collect_witnesses ~n adj ~best =
  let vert_of = Array.make n 0 in
  let bases = Array.init n (fun l -> (l * ((2 * n) - l - 3) / 2) + l) in
  let acc = ref [] in
  let rec place label assigned partial =
    if label < 0 then begin
      if partial = best then acc := Array.copy vert_of :: !acc
    end
    else
      for x = 0 to n - 1 do
        if assigned land (1 lsl x) = 0 then begin
          let base = bases.(label) in
          let row = adj.(x) in
          let blk = ref 0 in
          for m = label + 1 to n - 1 do
            if row land (1 lsl vert_of.(m)) <> 0 then
              blk := !blk lor (1 lsl (base + m - label - 1))
          done;
          let partial = partial lor !blk in
          if partial <= (best lsr base) lsl base then begin
            vert_of.(label) <- x;
            place (label - 1) (assigned lor (1 lsl x)) partial
          end
        end
      done
  in
  place (n - 1) 0 0;
  List.rev !acc

let min_witnesses ~n adj =
  check_order ~who:"min_witnesses" n;
  if n <= 1 then (0, [ Array.init n Fun.id ])
  else
    let best = minimize ~n adj ~init:max_int [ List.init n Fun.id ] in
    (best, collect_witnesses ~n adj ~best)

let canonical_mask ~n adj =
  check_order ~who:"canonical_mask" n;
  if n <= 1 then 0
  else minimize ~n adj ~init:max_int (cells_of_colors n (refine n adj))

let min_mask ?init ~n adj =
  check_order ~who:"min_mask" n;
  if n <= 1 then 0
  else
    let init = match init with Some m -> m | None -> max_int in
    minimize ~n adj ~init [ List.init n Fun.id ]

let key_adj ~n adj = (canonical_mask ~n adj lsl 4) lor n

let key g =
  let n = Graph.order g in
  key_adj ~n (Chunk.adj_of_graph g)

let canonical_graph g =
  let n = Graph.order g in
  Chunk.graph_of_mask n (canonical_mask ~n (Chunk.adj_of_graph g))
