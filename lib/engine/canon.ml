open Lcp_graph

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

(* Iterative refinement (1-WL): colors start as degrees and are
   repeatedly replaced by the rank of (own color, sorted neighbor
   colors) among the distinct signatures. Ranking by sorted signature
   keeps the color ids isomorphism-invariant. *)
let refine n adj =
  let colors = Array.init n (fun v -> popcount adj.(v)) in
  let stable = ref false in
  let rounds = ref 0 in
  while (not !stable) && !rounds < n do
    incr rounds;
    let signature v =
      let nbr = ref [] in
      for w = 0 to n - 1 do
        if adj.(v) land (1 lsl w) <> 0 then nbr := colors.(w) :: !nbr
      done;
      (colors.(v), List.sort Stdlib.compare !nbr)
    in
    let sigs = Array.init n signature in
    let distinct =
      Array.to_list sigs |> List.sort_uniq Stdlib.compare |> Array.of_list
    in
    let rank s =
      let rec bsearch lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if Stdlib.compare distinct.(mid) s < 0 then bsearch (mid + 1) hi
          else bsearch lo mid
      in
      bsearch 0 (Array.length distinct)
    in
    let next = Array.map rank sigs in
    if next = colors then stable := true else Array.blit next 0 colors 0 n
  done;
  colors

let cells_of_colors n colors =
  let max_c = Array.fold_left max 0 colors in
  let buckets = Array.make (max_c + 1) [] in
  for v = n - 1 downto 0 do
    buckets.(colors.(v)) <- v :: buckets.(colors.(v))
  done;
  Array.to_list buckets |> List.filter (fun c -> c <> [])

let canonical_mask ~n adj =
  if n <= 1 then 0
  else begin
    let colors = refine n adj in
    let cells = cells_of_colors n colors in
    let edges =
      let acc = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if adj.(u) land (1 lsl v) <> 0 then acc := (u, v) :: !acc
        done
      done;
      !acc
    in
    let slot a b =
      let a, b = if a < b then (a, b) else (b, a) in
      (a * ((2 * n) - a - 3) / 2) + b - 1
    in
    let perm = Array.make n (-1) in
    let best = ref max_int in
    let candidate () =
      let mask =
        List.fold_left
          (fun m (u, v) -> m lor (1 lsl slot perm.(u) perm.(v)))
          0 edges
      in
      if mask < !best then best := mask
    in
    (* assign new labels cell by cell: the cell occupying offsets
       [offset .. offset + |cell| - 1] contributes all bijections *)
    let rec assign_cells cells offset =
      match cells with
      | [] -> candidate ()
      | cell :: rest ->
          let size = List.length cell in
          let used = Array.make size false in
          let rec place = function
            | [] -> assign_cells rest (offset + size)
            | v :: vs ->
                for i = 0 to size - 1 do
                  if not used.(i) then begin
                    used.(i) <- true;
                    perm.(v) <- offset + i;
                    place vs;
                    used.(i) <- false
                  end
                done
          in
          place cell
    in
    assign_cells cells 0;
    !best
  end

let key_adj ~n adj = Printf.sprintf "%d:%d" n (canonical_mask ~n adj)

let key g =
  let n = Graph.order g in
  key_adj ~n (Chunk.adj_of_graph g)

let canonical_graph g =
  let n = Graph.order g in
  Chunk.graph_of_mask n (canonical_mask ~n (Chunk.adj_of_graph g))
