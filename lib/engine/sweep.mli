(** The exhaustive-verification engine.

    Every theorem-check in this reproduction reduces to the same sweep:
    enumerate an exhaustive space of small graphs, keep one
    representative per isomorphism class, and run a verifier over the
    survivors. The engine runs that sweep deduplicated by canonical
    form ({!Canon}), parallel ({!Pool}), and cached (iso-class
    listings are memoized across sweeps, so the many experiments that
    re-enumerate the same orders pay for enumeration once per
    process).

    Class listings come from one of two {!type:strategy}s — the
    default {!Orderly} canonical-augmentation generator ({!Orderly}),
    whose work scales with the class count, or the historical
    exhaustive {!Mask_scan} over the [2^(n choose 2)] labeled space,
    kept as an escape hatch and cross-validation oracle. Both return
    the identical listing: the minimal-edge-mask member of each class,
    ascending.

    Results are deterministic in [jobs]: class listings, summaries and
    counterexamples are bit-identical whether the sweep runs on one
    domain or many.

    Every entry point takes an {!Lcp_obs.Run_cfg.t} (defaulting to
    [Run_cfg.default]) that supplies the domain count and receives the
    sweep's instrumentation: spans [sweep], [sweep/enumerate] and
    [sweep/check]; deterministic counters [candidates_generated],
    [connected], [classes], [dedup_hits], [kept], [cache_hits],
    [cache_misses] (and, in [Exhaustive] mode, [checked] / [passed] /
    [violations]); and the [early_exit_round] gauge in
    [Search_counterexample] mode. [candidates_generated] (which
    replaces the pre-schema-2 [masks_scanned]) and [connected] /
    [dedup_hits] are deterministic {e per strategy}: each strategy
    counts its own notion of candidate (scanned masks vs. extension
    candidates; see {!type:counters}). *)

open Lcp_graph

(** {1 Enumeration strategy} *)

type strategy =
  | Orderly
      (** Canonical augmentation ({!Orderly.generate}): one candidate
          per (parent class, neighborhood bitmask) pair — work
          proportional to the number of classes. The default. *)
  | Mask_scan
      (** Exhaustive scan of all [2^(n choose 2)] edge masks with
          canonical dedup. Infeasible past [n = 7]; kept as the
          independent oracle the generator is validated against. *)

val strategy_name : strategy -> string
(** ["orderly"] / ["mask-scan"]. *)

val strategy_of_string : string -> strategy option
(** Inverse of {!strategy_name} (also accepts ["mask_scan"]). *)

(** {1 Cached isomorphism classes} *)

val iso_classes :
  ?cfg:Lcp_obs.Run_cfg.t ->
  ?strategy:strategy ->
  ?connected:bool ->
  int ->
  Graph.t list
(** One representative (the one with the smallest edge mask) per
    isomorphism class of graphs on [n] nodes ([connected] defaults to
    [true]: connected graphs only), in ascending mask order, memoized
    across calls per [(n, connected, strategy)]. Both strategies
    return bit-identical listings; [strategy] (default {!Orderly})
    only selects how they are produced. Reports cache traffic and the
    listing's enumeration tallies into [cfg] on every call, cached or
    not, so counters do not depend on cache temperature. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of the cross-sweep iso-class cache, process-wide
    (the per-run view lives in the cfg's [cache_hits] / [cache_misses]
    counters). *)

val clear_cache : unit -> unit
(** Drop the memoized class listings (resets {!cache_stats}). *)

(** {1 Sharding}

    A sweep can be cut into [K] independent slices that different
    processes (or machines) work through separately and whose
    checkpoints {!Checkpoint.merge} back into the unsharded totals.
    The cut is a pure function of each class's {e key} — nothing else:
    not the strategy, not [jobs], not the keep filter — so any two
    runs agree on which shard owns which class. *)

val class_key : Graph.t -> int
(** The shard-key contract: a class is keyed by its representative's
    wide edge mask ({!Chunk.wide_mask_of_graph}) — stable across
    processes, strategies and orders up to {!Canon.max_order}, and
    ascending along the listing (representatives are minimal-mask
    members, listed ascending). *)

val shard_of_key : shards:int -> int -> int
(** Which of the [shards] slices owns a class key: a splitmix64-style
    bit mix of the key, reduced mod [shards] — minimal edge masks are
    heavily non-uniform, the mix spreads them evenly.
    @raise Invalid_argument when [shards < 1]. *)

val shard_of_class : shards:int -> Graph.t -> int
(** [shard_of_key ~shards] of {!class_key}. *)

(** {1 Sweeps} *)

val small_sweep_cutoff : int
(** Kept-class counts below this run on the calling domain with the
    pool bypassed ([jobs] forced to 1): at n <= 5 scales the domain
    spawn/join overhead exceeds the checking work itself
    (BENCH_sweep.json showed the parallel n=5 sweep {e slower} than
    sequential). Counters are jobs-invariant either way; the bypass
    only removes wall-clock overhead. *)

type mode =
  | Exhaustive
      (** Check every class; count passed and violations. *)
  | Search_counterexample
      (** Early-exit as soon as any worker finds a violation; work at
          higher mask indices is cancelled. The counterexample returned
          is still the minimal-mask one, so verdicts and witnesses are
          identical to an [Exhaustive] run. *)

type counters = {
  candidates : int;
      (** enumeration candidates examined — labeled masks decoded
          under {!Mask_scan}, (parent, neighborhood-bitmask) extension
          pairs under {!Orderly}. Deterministic per strategy. *)
  connected : int;
      (** survivors of the connectivity filter — labeled graphs under
          {!Mask_scan}, final-level classes under {!Orderly} *)
  classes : int;  (** isomorphism classes (strategy-independent) *)
  dedup_hits : int;
      (** candidates folded into an already-seen canonical form *)
  kept : int;  (** classes surviving the [keep] filter *)
  checked : int;  (** classes the verifier actually ran on *)
  passed : int;
  violations : int;
}
(** Per-worker tallies merged into one record. In
    [Search_counterexample] mode [checked]/[passed] may vary with
    [jobs] (cancelled work is not checked); everything else is
    deterministic given the strategy. *)

type 'c summary = {
  n : int;
  jobs : int;
  mode : mode;
  strategy : strategy;
  counters : counters;
  counterexample : (Graph.t * 'c) option;
      (** the violating class with the smallest edge mask *)
  wall_s : float;
}

val run :
  ?cfg:Lcp_obs.Run_cfg.t ->
  ?strategy:strategy ->
  ?mode:mode ->
  ?connected:bool ->
  ?shard:int * int ->
  ?checkpoint:Checkpoint.policy ->
  ?on_chunk:(completed:int -> total:int -> unit) ->
  ?max_chunks:int ->
  ?keep:(Graph.t -> bool) ->
  n:int ->
  check:(Graph.t -> 'c option) ->
  unit ->
  'c summary
(** Sweep the [n]-node space: enumerate + dedup (cached, via
    [strategy], default {!Orderly}), filter the representatives
    through [keep] (which must be isomorphism-invariant — it runs on
    one representative per class), and run [check] on each kept class
    in parallel on [cfg.jobs] domains ([Run_cfg.sequential cfg] for a
    strictly sequential sweep). [check g = Some c] reports a violation
    [c]; [None] is an accept.

    [shard = (i, k)] restricts the sweep to slice [i] of [k] (see
    {!shard_of_class}); the filter applies after [keep], and [kept] /
    [checked] / [passed] / [violations] count shard-locally.
    Enumeration tallies are shard-independent (the filter runs on the
    listing, never during enumeration).

    [checkpoint] (Exhaustive mode only — {!Search_counterexample}
    raises [Invalid_argument]) makes the sweep durable: targets run in
    chunks of [max 32 (4 * jobs)] classes with the counter state saved
    atomically to [policy.path] after each chunk. With
    [policy.resume] and an existing file, the sweep validates the
    checkpoint's header and class stream against this run (any
    disagreement raises [Failure]) and continues from the first
    unfinished class; the checkpoint's [labelings_checked] share is
    credited into [cfg]'s metrics so the final counters describe the
    whole logical sweep. A violating sweep rebuilds its
    minimal-key counterexample by re-running [check] once after the
    final checkpoint write — that rerun's work lands in the metrics
    but never in the file, so on-disk counters are bit-identical to an
    uninterrupted run's.

    [on_chunk] fires after every checkpoint write (checkpointed runs
    only) with the shard-local progress — the hook a supervisor's
    progress stream hangs off. [max_chunks] (checkpointed runs only,
    [Invalid_argument] otherwise) stops the sweep after that many
    chunk writes, leaving a valid {e incomplete} checkpoint on disk —
    deterministic preemption, used by tests and CI to simulate a
    worker dying mid-sweep without racing a signal against the chunk
    loop. A preempted summary carries the completed prefix's counters
    and no counterexample. *)

val pp_summary : Format.formatter -> 'c summary -> unit
