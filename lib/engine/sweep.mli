(** The exhaustive-verification engine.

    Every theorem-check in this reproduction reduces to the same sweep:
    enumerate an exhaustive space of small graphs, keep one
    representative per isomorphism class, and run a verifier over the
    survivors. The engine runs that sweep batched (mask-range chunks,
    {!Chunk}), deduplicated by canonical form ({!Canon}), parallel
    ({!Pool}), and cached (iso-class listings are memoized across
    sweeps, so the many experiments that re-enumerate the same orders
    pay for enumeration once per process).

    Results are deterministic in [jobs]: class listings, summaries and
    counterexamples are bit-identical whether the sweep runs on one
    domain or many.

    Every entry point takes an {!Lcp_obs.Run_cfg.t} (defaulting to
    [Run_cfg.default]) that supplies the domain count and receives the
    sweep's instrumentation: spans [sweep], [sweep/enumerate] and
    [sweep/check]; deterministic counters [masks_scanned], [connected],
    [classes], [dedup_hits], [kept], [cache_hits], [cache_misses] (and,
    in [Exhaustive] mode, [checked] / [passed] / [violations]); and the
    [early_exit_round] gauge in [Search_counterexample] mode. *)

open Lcp_graph

(** {1 Cached isomorphism classes} *)

val iso_classes :
  ?cfg:Lcp_obs.Run_cfg.t -> ?connected:bool -> int -> Graph.t list
(** One representative (the one with the smallest edge mask) per
    isomorphism class of graphs on [n] nodes ([connected] defaults to
    [true]: connected graphs only). Enumerated in parallel chunks,
    deduplicated via {!Canon.canonical_mask}, returned in ascending
    mask order, and memoized across calls. Reports cache traffic and
    the listing's enumeration tallies into [cfg] on every call, cached
    or not, so counters do not depend on cache temperature. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of the cross-sweep iso-class cache, process-wide
    (the per-run view lives in the cfg's [cache_hits] / [cache_misses]
    counters). *)

val clear_cache : unit -> unit
(** Drop the memoized class listings (resets {!cache_stats}). *)

(** {1 Sweeps} *)

type mode =
  | Exhaustive
      (** Check every class; count passed and violations. *)
  | Search_counterexample
      (** Early-exit as soon as any worker finds a violation; work at
          higher mask indices is cancelled. The counterexample returned
          is still the minimal-mask one, so verdicts and witnesses are
          identical to an [Exhaustive] run. *)

type counters = {
  scanned : int;  (** labeled graphs decoded from masks *)
  connected : int;  (** survivors of the connectivity filter *)
  classes : int;  (** isomorphism classes *)
  dedup_hits : int;  (** labeled graphs folded into an existing class *)
  kept : int;  (** classes surviving the [keep] filter *)
  checked : int;  (** classes the verifier actually ran on *)
  passed : int;
  violations : int;
}
(** Per-worker tallies merged into one record. In
    [Search_counterexample] mode [checked]/[passed] may vary with
    [jobs] (cancelled work is not checked); everything else is
    deterministic. *)

type 'c summary = {
  n : int;
  jobs : int;
  mode : mode;
  counters : counters;
  counterexample : (Graph.t * 'c) option;
      (** the violating class with the smallest edge mask *)
  wall_s : float;
}

val run :
  ?cfg:Lcp_obs.Run_cfg.t ->
  ?mode:mode ->
  ?connected:bool ->
  ?keep:(Graph.t -> bool) ->
  n:int ->
  check:(Graph.t -> 'c option) ->
  unit ->
  'c summary
(** Sweep the [n]-node space: enumerate + dedup (cached), filter the
    representatives through [keep] (which must be
    isomorphism-invariant — it runs on one representative per class),
    and run [check] on each kept class in parallel on [cfg.jobs]
    domains ([Run_cfg.sequential cfg] for a strictly sequential
    sweep). [check g = Some c] reports a violation [c]; [None] is an
    accept. *)

val pp_summary : Format.formatter -> 'c summary -> unit
