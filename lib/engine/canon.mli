(** Exact canonical forms for small graphs.

    Isomorphism-class dedup used to be a pairwise [Graph.isomorphic]
    filter — O(classes²) backtracking tests per bucket. Here each
    graph is mapped once to a {e canonical mask}: the minimum edge
    mask over all relabelings consistent with an iterative-refinement
    (1-WL) partition of the nodes. Two graphs are isomorphic iff their
    canonical masks (and orders) agree, so dedup becomes a single
    hash-table probe and the cost is O(graphs · refinement),
    independent of the number of classes.

    The refinement partition is isomorphism-invariant (colors are
    re-ranked by integer signature each round), so minimizing only
    over partition-respecting relabelings is exact. The bijection
    search assigns labels from [n-1] downward with lexicographic
    early-abort pruning: a partial permutation is abandoned as soon as
    the mask bits it has emitted exceed the incumbent best on the same
    slots, which collapses the [Π |cell|!] permutation budget to a
    handful of explored branches on all but highly regular graphs.

    All functions require order [<= 11] (the 55-slot edge mask plus
    the 4 order bits of {!key} must fit an OCaml [int]) and raise
    [Invalid_argument] beyond it. *)

open Lcp_graph

val max_order : int
(** [11]: largest order whose edge mask (55 bits) plus {!key}'s 4
    order bits fits an OCaml [int]. *)

val canonical_mask : n:int -> int array -> int
(** [canonical_mask ~n adj] over adjacency bitsets
    (see {!Chunk.adj_of_mask}). *)

val min_mask : ?init:int -> n:int -> int array -> int
(** [min_mask ~n adj] is the exact minimum edge mask over {e all}
    [n!] relabelings — the smallest edge mask of any member of the
    graph's isomorphism class, i.e. the representative a full
    ascending mask scan would keep. Same branch-and-bound as
    {!canonical_mask} but over the trivial one-cell partition; [init]
    seeds the incumbent with a known member's mask (e.g. the
    canonical mask) to tighten pruning. Unlike {!canonical_mask} it
    does not depend on the refinement's cell order, so it is the
    stable cross-strategy representative. *)

val min_witnesses : n:int -> int array -> int * int array list
(** [min_witnesses ~n adj] is {!min_mask} together with {e every}
    label→vertex bijection achieving it. Relabeling by any two
    witnesses yields the same minimal graph, so [p ∘ q⁻¹] is an
    automorphism for every witness pair and the list is exactly
    [Aut(G) ∘ q] for any fixed witness [q]: the automorphism group
    falls out of the same branch-and-bound that computes the canonical
    form (harvested by {!Auto}). Implemented as the regular
    minimization followed by a collecting pass with the incumbent
    pinned — the tie-keeping [<=] prune guarantees every min-achieving
    leaf is visited. The list has [|Aut(G)|] entries, in the
    branch-and-bound's deterministic discovery order. *)

val key_adj : n:int -> int array -> int
(** The canonical mask with the order packed into the low 4 bits —
    equal iff the graphs are isomorphic. (Replaces the historical
    ["n:mask"] string keys: an int compares and hashes without
    allocating.) *)

val key : Graph.t -> int

val canonical_graph : Graph.t -> Graph.t
(** The canonical representative of the graph's isomorphism class. *)
