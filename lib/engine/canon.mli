(** Exact canonical forms for small graphs.

    Isomorphism-class dedup used to be a pairwise
    [Graph.isomorphic] filter — O(classes²) backtracking tests per
    bucket. Here each graph is mapped once to a {e canonical mask}: the
    minimum edge mask over all relabelings consistent with an
    iterative-refinement (1-WL) partition of the nodes. Two graphs are
    isomorphic iff their canonical masks (and orders) agree, so dedup
    becomes a single hash-table probe and the cost is
    O(graphs · refinement), independent of the number of classes.

    The refinement partition is isomorphism-invariant (colors are
    re-ranked by sorted signature each round), so minimizing only over
    partition-respecting relabelings is exact. The permutation budget is
    [Π |cell|!], which collapses to a handful of candidates on all but
    highly regular graphs. *)

open Lcp_graph

val canonical_mask : n:int -> int array -> int
(** [canonical_mask ~n adj] over adjacency bitsets
    (see {!Chunk.adj_of_mask}). *)

val key_adj : n:int -> int array -> string
(** ["n:canonical_mask"] — equal iff the graphs are isomorphic. *)

val key : Graph.t -> string

val canonical_graph : Graph.t -> Graph.t
(** The canonical representative of the graph's isomorphism class. *)
