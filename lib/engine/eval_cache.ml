open Lcp_graph
open Lcp_local

(* Per-node acceptance tables.

   A radius-r verdict depends on the instance only through the labeling
   restricted to the node's ball: structure, ports and identifiers are
   fixed per instance, so for a fixed (instance, decoder) pair the map

     ball labeling |-> accepts (view of v)

   is a finite function with |alphabet|^|ball v| entries. The table for
   node v memoizes it, keyed by the ball labels packed as a base-|Σ|
   integer. Misses are evaluated by swapping the candidate labels into a
   view skeleton extracted once per node — no per-query BFS, sorting or
   graph construction. *)

type store =
  | Dense of Bytes.t
      (* 0 = unknown, 1 = reject, 2 = accept; used when the key space
         fits [dense_limit] bytes *)
  | Hashed of (int, bool) Hashtbl.t
      (* packed int key; key space too large to materialize *)
  | Keyed of (string, bool) Hashtbl.t
      (* textual key; base-|Σ| packing would overflow an int *)

type node_tab = {
  globals : int array;
      (* globals.(u) = instance node behind local view node u *)
  skeleton : View.t; (* extracted once; labels swapped per miss *)
  store : store;
}

type t = {
  accepts : View.t -> bool;
  sym : (string, int) Hashtbl.t;
  sigma : int;
  nodes : node_tab array;
  mutable hits : int;
  mutable misses : int;
}

let default_dense_limit = 1 lsl 16

(* |Σ|^m if it fits an int, None on overflow. *)
let pow_opt base e =
  if base = 0 then Some (if e = 0 then 1 else 0)
  else begin
    let acc = ref 1 in
    let ok = ref true in
    for _ = 1 to e do
      if !acc > max_int / base then ok := false else acc := !acc * base
    done;
    if !ok then Some !acc else None
  end

let create ?(dense_limit = default_dense_limit) ~radius ~accepts ~alphabet
    (inst : Instance.t) =
  if radius < 1 then invalid_arg "Eval_cache.create: radius must be >= 1";
  let sym = Hashtbl.create 16 in
  List.iteri
    (fun i s -> if not (Hashtbl.mem sym s) then Hashtbl.add sym s i)
    alphabet;
  let sigma = Hashtbl.length sym in
  let n = Graph.order inst.Instance.graph in
  let nodes =
    Array.init n (fun v ->
        let skeleton = View.extract inst ~r:radius v in
        let m = Graph.order skeleton.View.graph in
        (* the view's canonical (dist, id) order is label-independent,
           so the local -> global map is fixed for the instance *)
        let globals =
          Array.init m (fun u ->
              match Ident.node_of_id inst.Instance.ids skeleton.View.ids.(u) with
              | Some w -> w
              | None -> assert false (* view ids come from the instance *))
        in
        let store =
          match pow_opt sigma m with
          | Some space when space <= dense_limit -> Dense (Bytes.make space '\000')
          | Some _ -> Hashed (Hashtbl.create 1024)
          | None -> Keyed (Hashtbl.create 1024)
        in
        { globals; skeleton; store })
  in
  { accepts; sym; sigma; nodes; hits = 0; misses = 0 }

(* Evaluate by swapping the candidate ball labels into the skeleton:
   structure, ports and ids are reused, only the label array is fresh. *)
let eval_swapped t tab (lab : Labeling.t) =
  t.accepts (View.mapi_labels tab.skeleton (fun u _ -> lab.(tab.globals.(u))))

(* Pack the ball labels as a base-|Σ| int. Returns None when a label is
   outside the alphabet (possible when a caller probes a labeling the
   adversary alphabet does not cover) — those queries bypass the table. *)
let pack_int t tab (lab : Labeling.t) =
  let m = Array.length tab.globals in
  let key = ref 0 in
  let ok = ref true in
  for u = 0 to m - 1 do
    match Hashtbl.find_opt t.sym lab.(tab.globals.(u)) with
    | Some i -> key := (!key * t.sigma) + i
    | None -> ok := false
  done;
  if !ok then Some !key else None

let pack_string t tab (lab : Labeling.t) =
  let m = Array.length tab.globals in
  let buf = Buffer.create (4 * m) in
  let ok = ref true in
  for u = 0 to m - 1 do
    match Hashtbl.find_opt t.sym lab.(tab.globals.(u)) with
    | Some i ->
        Buffer.add_string buf (string_of_int i);
        Buffer.add_char buf ','
    | None -> ok := false
  done;
  if !ok then Some (Buffer.contents buf) else None

let accepts t lab v =
  let tab = t.nodes.(v) in
  match tab.store with
  | Dense bytes -> (
      match pack_int t tab lab with
      | None -> eval_swapped t tab lab
      | Some key -> (
          match Bytes.unsafe_get bytes key with
          | '\001' ->
              t.hits <- t.hits + 1;
              false
          | '\002' ->
              t.hits <- t.hits + 1;
              true
          | _ ->
              t.misses <- t.misses + 1;
              let verdict = eval_swapped t tab lab in
              Bytes.unsafe_set bytes key (if verdict then '\002' else '\001');
              verdict))
  | Hashed tbl -> (
      match pack_int t tab lab with
      | None -> eval_swapped t tab lab
      | Some key -> (
          match Hashtbl.find_opt tbl key with
          | Some verdict ->
              t.hits <- t.hits + 1;
              verdict
          | None ->
              t.misses <- t.misses + 1;
              let verdict = eval_swapped t tab lab in
              Hashtbl.replace tbl key verdict;
              verdict))
  | Keyed tbl -> (
      match pack_string t tab lab with
      | None -> eval_swapped t tab lab
      | Some key -> (
          match Hashtbl.find_opt tbl key with
          | Some verdict ->
              t.hits <- t.hits + 1;
              verdict
          | None ->
              t.misses <- t.misses + 1;
              let verdict = eval_swapped t tab lab in
              Hashtbl.replace tbl key verdict;
              verdict))

let verdicts t lab = Array.init (Array.length t.nodes) (accepts t lab)

let ball t v = Array.copy t.nodes.(v).globals

let stats t = (t.hits, t.misses)

(* ------------------------------------------------------------------ *)
(* cross-run sharing

   A long-running process (the serve daemon) answers many requests
   over the same small instance space; rebuilding the per-node
   skeletons and re-decoding the same ball labelings on every request
   wastes most of the work the tables exist to save. The shared pool
   keeps built caches keyed by an opaque caller-supplied string (the
   caller must fold in everything a verdict depends on: decoder
   identity, radius, alphabet, graph, ids, ports — labels excluded,
   they are the table's key dimension).

   Caches are single-domain objects, so the pool hands them out under
   an exclusive lease: [acquire] checks the key out, [release] checks
   it back in, and a second acquirer of a busy key gets a private
   unpooled cache instead of a data race. The pool mutex orders the
   hand-off between domains (happens-before through lock release /
   acquire), so a cache built by one domain is safe to reuse from
   another once leased.

   Sharing is off by default — one-shot CLI runs behave exactly as
   before; the daemon opts in at startup. *)

module Sync = Lcp_obs.Sync

type slot = {
  mutable in_use : bool;
  cached : t;
  guard : unit Sync.Var.t;
      (* shadow var for the leased table's mutable internals: touched
         by the holder at acquire/release (and by {!lease_touch}), so
         a double-leased slot shows up as a data-race finding *)
}

type lease = {
  cache : t;
  warm : bool;  (* did the pool satisfy this acquire? *)
  base_hits : int;
  base_misses : int;
  slot : slot option;  (* None: private cache, nothing to release *)
}

let pool : (string, slot) Hashtbl.t = Hashtbl.create 64
let pool_lock = Sync.mutex "engine/eval_cache.pool"
let pool_guard = Sync.Var.make "engine/eval_cache.pool.table" ()
let sharing = ref false

let locked f =
  Sync.with_lock pool_lock (fun () ->
      Sync.Var.touch pool_guard;
      f ())

let sharing_enabled () = locked (fun () -> !sharing)

let set_sharing on =
  locked (fun () ->
      sharing := on;
      if not on then Hashtbl.reset pool)

let shared_size () = locked (fun () -> Hashtbl.length pool)
let clear_shared () = locked (fun () -> Hashtbl.reset pool)

let private_lease cache =
  { cache; warm = false; base_hits = 0; base_misses = 0; slot = None }

let acquire ~key ?dense_limit ~radius ~accepts ~alphabet inst =
  let build () = create ?dense_limit ~radius ~accepts ~alphabet inst in
  let existing =
    locked (fun () ->
        if not !sharing then `Disabled
        else
          match Hashtbl.find_opt pool key with
          | Some slot when not slot.in_use ->
              slot.in_use <- true;
              `Leased slot
          | Some _ -> `Busy
          | None -> `Absent)
  in
  match existing with
  | `Disabled | `Busy -> private_lease (build ())
  | `Leased slot ->
      (* we are the exclusive holder now: stats reads and the guard
         touch happen outside the pool lock on purpose — the lease IS
         the synchronization, and [lcp race] checks exactly that *)
      Sync.Var.touch slot.guard;
      let hits, misses = stats slot.cached in
      {
        cache = slot.cached;
        warm = true;
        base_hits = hits;
        base_misses = misses;
        slot = Some slot;
      }
  | `Absent -> (
      (* build outside the lock; on a race the loser keeps a private
         cache, which is merely a missed reuse, never a shared mutation *)
      let cache = build () in
      let slot =
        {
          in_use = true;
          cached = cache;
          guard = Sync.Var.make ("engine/eval_cache.slot/" ^ key) ();
        }
      in
      let claimed =
        locked (fun () ->
            if !sharing && not (Hashtbl.mem pool key) then begin
              Hashtbl.replace pool key slot;
              true
            end
            else false)
      in
      match claimed with
      | true ->
          Sync.Var.touch slot.guard;
          { cache; warm = false; base_hits = 0; base_misses = 0; slot = Some slot }
      | false -> private_lease cache)

let lease_cache l = l.cache
let lease_warm l = l.warm

(* Mark a use of the leased table while holding the lease. A no-op for
   private leases and when disarmed; under [lcp race] two concurrent
   holders of the same slot become a data-race finding — the
   exclusivity contract, checked mechanically. *)
let lease_touch l =
  match l.slot with Some slot -> Sync.Var.touch slot.guard | None -> ()

let lease_stats l =
  let hits, misses = stats l.cache in
  (hits - l.base_hits, misses - l.base_misses)

let release l =
  match l.slot with
  | None -> ()
  | Some slot ->
      (* last exclusive access before the hand-off *)
      Sync.Var.touch slot.guard;
      locked (fun () -> slot.in_use <- false)
