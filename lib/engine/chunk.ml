open Lcp_graph

type t = { n : int; lo : int; hi : int }

let slots n = n * (n - 1) / 2

let space n =
  let m = slots n in
  if m > 30 then invalid_arg "Chunk.space: order too large";
  1 lsl m

let plan ?(chunk_bits = 12) n =
  if chunk_bits < 0 then invalid_arg "Chunk.plan: negative chunk_bits";
  let total = space n in
  let step = 1 lsl chunk_bits in
  let rec go lo acc =
    if lo >= total then List.rev acc
    else go (lo + step) ({ n; lo; hi = min total (lo + step) } :: acc)
  in
  go 0 []

let iter c f =
  for mask = c.lo to c.hi - 1 do
    f mask
  done

let adj_of_mask n mask =
  let adj = Array.make n 0 in
  let i = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if mask land (1 lsl !i) <> 0 then begin
        adj.(u) <- adj.(u) lor (1 lsl v);
        adj.(v) <- adj.(v) lor (1 lsl u)
      end;
      incr i
    done
  done;
  adj

let adj_of_graph g =
  let n = Graph.order g in
  let adj = Array.make n 0 in
  Graph.iter_edges
    (fun u v ->
      adj.(u) <- adj.(u) lor (1 lsl v);
      adj.(v) <- adj.(v) lor (1 lsl u))
    g;
  adj

(* slot index of the pair (a, b) with a < b in lexicographic order *)
let slot_index n a b = (a * ((2 * n) - a - 3) / 2) + b - 1

let mask_of_graph g =
  let n = Graph.order g in
  if slots n > 30 then invalid_arg "Chunk.mask_of_graph: order too large";
  Graph.fold_edges (fun u v m -> m lor (1 lsl slot_index n u v)) g 0

let wide_mask_of_graph g =
  let n = Graph.order g in
  if slots n > Sys.int_size - 1 then
    invalid_arg "Chunk.wide_mask_of_graph: order too large";
  Graph.fold_edges (fun u v m -> m lor (1 lsl slot_index n u v)) g 0

let graph_of_mask n mask =
  let es = ref [] in
  let i = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if mask land (1 lsl !i) <> 0 then es := (u, v) :: !es;
      incr i
    done
  done;
  Graph.of_edges n !es

let is_connected_adj adj =
  let n = Array.length adj in
  if n <= 1 then true
  else begin
    let all = (1 lsl n) - 1 in
    let seen = ref 1 in
    let frontier = ref 1 in
    while !frontier <> 0 && !seen <> all do
      (* union of the frontier's adjacency rows, iterating set bits
         only (Bits.ntz) instead of scanning all n candidates *)
      let next = Bits.fold_bits (fun v acc -> acc lor adj.(v)) !frontier 0 in
      frontier := next land lnot !seen;
      seen := !seen lor next
    done;
    !seen = all
  end
