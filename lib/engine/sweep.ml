open Lcp_graph
module R = Lcp_obs.Run_cfg

(* ------------------------------------------------------------------ *)
(* enumeration + canonical dedup                                       *)

type strategy = Orderly | Mask_scan

let strategy_name = function Orderly -> "orderly" | Mask_scan -> "mask-scan"

let strategy_of_string = function
  | "orderly" -> Some Orderly
  | "mask-scan" | "mask_scan" -> Some Mask_scan
  | _ -> None

type enum_tallies = {
  e_candidates : int;
  e_connected : int;
  e_classes : int;
  e_dedup_hits : int;
}

(* The historical exhaustive path, kept as a cross-validation oracle:
   every mask of the labeled space is scanned and canonicalized. Each
   chunk dedups locally (canonical mask -> smallest edge mask); the
   sequential merge keeps the smallest mask per class, so the result
   is independent of chunk scheduling and of [jobs]. *)
let enumerate_mask_scan ~cfg ~connected n =
  let chunk_bits = max 12 (Chunk.slots n - 6) in
  let chunks = Array.of_list (Chunk.plan ~chunk_bits n) in
  let per_chunk =
    Pool.run ~metrics:cfg.R.metrics ~jobs:cfg.R.jobs (Array.length chunks)
      (fun ci ->
        let c = chunks.(ci) in
        let tbl : (int, int) Hashtbl.t = Hashtbl.create 512 in
        let scanned = ref 0 and conn = ref 0 in
        Chunk.iter c (fun mask ->
            incr scanned;
            let adj = Chunk.adj_of_mask n mask in
            if (not connected) || Chunk.is_connected_adj adj then begin
              incr conn;
              let key = Canon.canonical_mask ~n adj in
              match Hashtbl.find_opt tbl key with
              | Some m when m <= mask -> ()
              | _ -> Hashtbl.replace tbl key mask
            end);
        (!scanned, !conn, tbl))
  in
  let global : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let scanned = ref 0 and conn = ref 0 in
  Array.iter
    (fun (s, c, tbl) ->
      scanned := !scanned + s;
      conn := !conn + c;
      Hashtbl.iter
        (fun key mask ->
          match Hashtbl.find_opt global key with
          | Some m when m <= mask -> ()
          | _ -> Hashtbl.replace global key mask)
        tbl)
    per_chunk;
  let masks =
    Hashtbl.fold (fun _ mask acc -> mask :: acc) global []
    |> List.sort Stdlib.compare
  in
  let reps = List.map (Chunk.graph_of_mask n) masks in
  let tallies =
    {
      e_candidates = !scanned;
      e_connected = !conn;
      e_classes = List.length masks;
      e_dedup_hits = !conn - List.length masks;
    }
  in
  (reps, tallies)

(* The orderly generator: work proportional to the class count, not
   the mask space. Representatives are the same minimal-mask members
   the scan keeps ({!Canon.min_mask}), so the two strategies return
   bit-identical listings. *)
let enumerate_orderly ~cfg ~connected n =
  let masks, t =
    Orderly.generate ~jobs:cfg.R.jobs ~metrics:cfg.R.metrics ~connected n
  in
  let reps = List.map (Chunk.graph_of_mask n) masks in
  let tallies =
    {
      e_candidates = t.Orderly.candidates;
      e_connected = t.Orderly.connected_classes;
      e_classes = t.Orderly.classes;
      e_dedup_hits = t.Orderly.dedup_hits;
    }
  in
  (reps, tallies)

let enumerate_classes ~cfg ~strategy ~connected n =
  match strategy with
  | Orderly -> enumerate_orderly ~cfg ~connected n
  | Mask_scan -> enumerate_mask_scan ~cfg ~connected n

(* ------------------------------------------------------------------ *)
(* the cross-sweep class cache

   Locking discipline: the listing table is the only state under
   [cache_lock]; every access goes through {!Sync.with_lock} (lookup,
   publish, reset — never around the enumeration itself, which runs
   outside the lock so workers can overlap; a duplicated computation
   on a race is deterministic and merely wasted). [cache_guard] is the
   table's Sync shadow var, so [lcp race] verifies the discipline.
   The hit/miss tallies are instrumented atomics — they are
   process-lifetime observability, not part of the locked invariant,
   and must not tempt anyone into a bare ref again. *)

module Sync = Lcp_obs.Sync

let cache : (int * bool * strategy, Graph.t list * enum_tallies) Hashtbl.t =
  Hashtbl.create 16

let cache_lock = Sync.mutex "engine/sweep.cache"
let cache_guard = Sync.Var.make "engine/sweep.cache.table" ()
let hits = Sync.A.make "engine/sweep.cache_hits" 0
let misses = Sync.A.make "engine/sweep.cache_misses" 0

(* The single choke point for class listings. Every call reports into
   [cfg]: cache traffic, plus the enumeration tallies of the listing it
   returns — cached or not — so counters stay deterministic in [jobs]
   and in cache temperature alike. *)
let classes_cached ~cfg ?(strategy = Orderly) ~connected n =
  (* materialize both cache counters so an all-hit (or all-miss) run
     serializes the same key set as any other *)
  R.count cfg ~by:0 "cache_hits";
  R.count cfg ~by:0 "cache_misses";
  let key = (n, connected, strategy) in
  let cached =
    Sync.with_lock cache_lock (fun () ->
        Sync.Var.observe cache_guard;
        Hashtbl.find_opt cache key)
  in
  (match cached with Some _ -> Sync.A.incr hits | None -> Sync.A.incr misses);
  let ((_, e) as entry) =
    match cached with
    | Some entry ->
        R.count cfg "cache_hits";
        entry
    | None ->
        R.count cfg "cache_misses";
        (* compute outside the lock: workers must not hold it, and a
           duplicated computation on a race is deterministic anyway *)
        let entry =
          R.span cfg "enumerate" (fun () ->
              enumerate_classes ~cfg ~strategy ~connected n)
        in
        Sync.with_lock cache_lock (fun () ->
            Sync.Var.touch cache_guard;
            if not (Hashtbl.mem cache key) then Hashtbl.replace cache key entry);
        entry
  in
  R.count cfg ~by:e.e_candidates "candidates_generated";
  R.count cfg ~by:e.e_connected "connected";
  R.count cfg ~by:e.e_classes "classes";
  R.count cfg ~by:e.e_dedup_hits "dedup_hits";
  entry

let iso_classes ?(cfg = R.default) ?strategy ?(connected = true) n =
  fst (classes_cached ~cfg ?strategy ~connected n)

let cache_stats () = (Sync.A.get hits, Sync.A.get misses)

let clear_cache () =
  Sync.with_lock cache_lock (fun () ->
      Sync.Var.touch cache_guard;
      Hashtbl.reset cache);
  Sync.A.set hits 0;
  Sync.A.set misses 0

(* Enumerate's streaming class API delegates here when the engine is
   linked: same representatives, same order, but generated by orderly
   augmentation and memoized across calls instead of re-running the
   brute-force pairwise dedup. *)
let () =
  Enumerate.set_class_generator (fun ~connected n ->
      iso_classes ~cfg:R.default ~connected n)

(* ------------------------------------------------------------------ *)
(* sharding                                                            *)

(* The class key: the representative's edge mask, computed wide
   (Chunk.wide_mask_of_graph) so the contract survives past the n = 7
   scan limit. Representatives are the minimal-mask members of their
   classes, listed ascending, so target order and key order agree. *)
let class_key = Chunk.wide_mask_of_graph

(* splitmix64's output function on the key: shards must cut the class
   stream evenly even though minimal edge masks are anything but
   uniform, and must depend on nothing except the key — not the
   strategy that produced the listing, not [jobs], not the keep
   filter's order of evaluation. *)
let mix64 key =
  let open Int64 in
  let z = add (of_int key) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let shard_of_key ~shards key =
  if shards < 1 then invalid_arg "Sweep.shard_of_key: shards must be >= 1";
  Int64.to_int (Int64.rem (Int64.logand (mix64 key) Int64.max_int)
                  (Int64.of_int shards))

let shard_of_class ~shards g = shard_of_key ~shards (class_key g)

(* ------------------------------------------------------------------ *)
(* sweeps                                                              *)

type mode = Exhaustive | Search_counterexample

type counters = {
  candidates : int;
  connected : int;
  classes : int;
  dedup_hits : int;
  kept : int;
  checked : int;
  passed : int;
  violations : int;
}

type 'c summary = {
  n : int;
  jobs : int;
  mode : mode;
  strategy : strategy;
  counters : counters;
  counterexample : (Graph.t * 'c) option;
  wall_s : float;
}

module M = Lcp_obs.Metrics

(* Below this many kept classes the domain pool costs more than the
   work (BENCH_sweep.json: n=5 par_wall > seq_wall): spawn/join of N
   domains dwarfs a few hundred microseconds of checking. [Pool.run]
   with [jobs = 1] runs sequentially on the calling domain with zero
   spawns, and every sweep counter is jobs-invariant by construction,
   so the bypass changes wall-clock only. *)
let small_sweep_cutoff = 64

let effective_jobs ~jobs ~kept = if kept < small_sweep_cutoff then 1 else jobs

(* The checkpointed exhaustive runner: targets are consumed in chunks
   of [max 32 (4 * jobs)] classes, and after every chunk the full
   counter state is written atomically to [policy.path]. A resumed run
   validates the header and the class stream (the last completed
   class's key must match), credits the checkpoint's labelings into
   the cfg so the final metric covers the whole logical sweep, and
   continues from the first unfinished class. Violations persist as
   class keys; the counterexample instance is rebuilt at the end by
   re-running [check] on the smallest violating key (that rerun lands
   in the metrics {e after} the final checkpoint write, so on-disk
   counters stay bit-identical to an uninterrupted run's). *)
let run_checkpointed ~cfg ~jobs ~strategy ~connected ~n ~shards ~shard ~e
    ~targets ~kept ~check ~on_chunk ~max_chunks (policy : Checkpoint.policy) =
  let enum =
    {
      Checkpoint.candidates = e.e_candidates;
      connected = e.e_connected;
      classes = e.e_classes;
      dedup_hits = e.e_dedup_hits;
    }
  in
  let fresh =
    {
      Checkpoint.tag = policy.Checkpoint.tag;
      n;
      strategy = strategy_name strategy;
      connected_only = connected;
      shards;
      shard;
      enum;
      kept;
      completed = 0;
      last_key = -1;
      checked = 0;
      passed = 0;
      violations = 0;
      violating_keys = [];
      labelings = 0;
      complete = kept = 0;
      saved_at = 0;
    }
  in
  let resumed = policy.Checkpoint.resume && Sys.file_exists policy.Checkpoint.path in
  let state =
    if not resumed then fresh
    else
      match Checkpoint.load policy.Checkpoint.path with
      | Error msg -> failwith ("sweep --resume: " ^ msg)
      | Ok prev ->
          (match Checkpoint.header_mismatch fresh prev with
          | Some what ->
              failwith
                (Printf.sprintf
                   "sweep --resume: checkpoint %s disagrees on %s"
                   policy.Checkpoint.path what)
          | None -> ());
          if prev.Checkpoint.shard <> shard then
            failwith "sweep --resume: checkpoint belongs to another shard";
          if prev.Checkpoint.kept <> kept then
            failwith "sweep --resume: checkpoint kept-count mismatch";
          if
            prev.Checkpoint.completed > 0
            && class_key targets.(prev.Checkpoint.completed - 1)
               <> prev.Checkpoint.last_key
          then
            failwith
              "sweep --resume: checkpoint does not match the class stream";
          prev
  in
  (* the resumed share of the work counter, so metrics describe the
     logical sweep, not just this process's slice *)
  if state.Checkpoint.labelings > 0 then
    R.count cfg ~by:state.Checkpoint.labelings "labelings_checked";
  let base =
    M.counter cfg.R.metrics "labelings_checked" - state.Checkpoint.labelings
  in
  let chunk = max 32 (4 * jobs) in
  let pool_jobs = effective_jobs ~jobs ~kept in
  let st = ref state in
  if (not !st.Checkpoint.complete) || not resumed then
    Checkpoint.save ~path:policy.Checkpoint.path !st;
  let chunks_done = ref 0 in
  let within_budget () =
    match max_chunks with None -> true | Some m -> !chunks_done < m
  in
  while (not !st.Checkpoint.complete) && within_budget () do
    let s = !st in
    let lo = s.Checkpoint.completed in
    let hi = min kept (lo + chunk) in
    let verdicts =
      Pool.run ~metrics:cfg.R.metrics ~jobs:pool_jobs (hi - lo) (fun i ->
          check targets.(lo + i))
    in
    let viol = ref 0 and keys = ref [] in
    Array.iteri
      (fun i v ->
        match v with
        | None -> ()
        | Some _ ->
            incr viol;
            keys := class_key targets.(lo + i) :: !keys)
      verdicts;
    let s =
      {
        s with
        Checkpoint.completed = hi;
        last_key = class_key targets.(hi - 1);
        checked = s.Checkpoint.checked + (hi - lo);
        passed = s.Checkpoint.passed + (hi - lo - !viol);
        violations = s.Checkpoint.violations + !viol;
        violating_keys = s.Checkpoint.violating_keys @ List.rev !keys;
        labelings = M.counter cfg.R.metrics "labelings_checked" - base;
        complete = hi = kept;
      }
    in
    Checkpoint.save ~path:policy.Checkpoint.path s;
    incr chunks_done;
    on_chunk ~completed:s.Checkpoint.completed ~total:kept;
    st := s
  done;
  let s = !st in
  if not s.Checkpoint.complete then
    (* preempted by [max_chunks]: the checkpoint on disk holds the
       completed prefix and a later [--resume] continues it. No
       counterexample materialization — the minimal violating key may
       still be ahead of us. *)
    (s.Checkpoint.checked, s.Checkpoint.passed, s.Checkpoint.violations, None)
  else
  let counterexample =
    match s.Checkpoint.violating_keys with
    | [] -> None
    | keys -> (
        let key = List.fold_left min max_int keys in
        let idx = ref (-1) in
        Array.iteri (fun i g -> if !idx < 0 && class_key g = key then idx := i) targets;
        if !idx < 0 then
          failwith "sweep checkpoint: violating key not in the class stream";
        match check targets.(!idx) with
        | Some c -> Some (targets.(!idx), c)
        | None ->
            failwith "sweep checkpoint: recorded violation did not reproduce")
  in
  (s.Checkpoint.checked, s.Checkpoint.passed, s.Checkpoint.violations,
   counterexample)

let run ?(cfg = R.default) ?(strategy = Orderly) ?(mode = Exhaustive)
    ?(connected = true) ?shard ?checkpoint
    ?(on_chunk = fun ~completed:_ ~total:_ -> ()) ?max_chunks
    ?(keep = fun _ -> true) ~n ~check () =
  (match shard with
  | Some (i, k) when k < 1 || i < 0 || i >= k ->
      invalid_arg "Sweep.run: shard index out of range"
  | _ -> ());
  (match (checkpoint, mode) with
  | Some _, Search_counterexample ->
      invalid_arg "Sweep.run: checkpoints require Exhaustive mode"
  | _ -> ());
  (match (checkpoint, max_chunks) with
  | None, Some _ -> invalid_arg "Sweep.run: max_chunks requires a checkpoint"
  | _, Some m when m < 1 -> invalid_arg "Sweep.run: max_chunks must be >= 1"
  | _ -> ());
  R.span cfg "sweep" (fun () ->
      let t0 = Lcp_obs.Clock.now_s () in
      let jobs = cfg.R.jobs in
      let reps, e = classes_cached ~cfg ~strategy ~connected n in
      let shards, shard_ix =
        match shard with None -> (1, 0) | Some (i, k) -> (k, i)
      in
      let targets =
        Array.of_list
          (List.filter
             (fun g ->
               keep g
               && (shards = 1 || shard_of_class ~shards g = shard_ix))
             reps)
      in
      let kept = Array.length targets in
      R.count cfg ~by:kept "kept";
      let checked, passed, violations, counterexample =
        R.span cfg "check" (fun () ->
            match mode with
            | Exhaustive -> (
                match checkpoint with
                | Some policy ->
                    run_checkpointed ~cfg ~jobs ~strategy ~connected ~n ~shards
                      ~shard:shard_ix ~e ~targets ~kept ~check ~on_chunk
                      ~max_chunks policy
                | None ->
                    let verdicts =
                      Pool.run ~metrics:cfg.R.metrics
                        ~jobs:(effective_jobs ~jobs ~kept) kept (fun i ->
                          check targets.(i))
                    in
                    let violations = ref 0 and first = ref None in
                    Array.iteri
                      (fun i v ->
                        match v with
                        | None -> ()
                        | Some c ->
                            incr violations;
                            if !first = None then first := Some (targets.(i), c))
                      verdicts;
                    (kept, kept - !violations, !violations, !first))
            | Search_counterexample ->
                let checked = Sync.A.make "engine/sweep.checked" 0 in
                let hit =
                  Pool.search ~metrics:cfg.R.metrics
                    ~jobs:(effective_jobs ~jobs ~kept) kept (fun i ->
                      Sync.A.incr checked;
                      check targets.(i))
                in
                let checked = Sync.A.get checked in
                (match hit with
                | Some (i, c) ->
                    (* which round the early exit fired on: a gauge —
                       the winning class index is deterministic, but
                       how much work ran before cancellation is not *)
                    R.set_gauge cfg "early_exit_round" i;
                    (checked, checked - 1, 1, Some (targets.(i), c))
                | None -> (checked, checked, 0, None)))
      in
      R.count cfg ~by:checked "checked";
      R.count cfg ~by:passed "passed";
      R.count cfg ~by:violations "violations";
      {
        n;
        jobs;
        mode;
        strategy;
        counters =
          {
            candidates = e.e_candidates;
            connected = e.e_connected;
            classes = e.e_classes;
            dedup_hits = e.e_dedup_hits;
            kept;
            checked;
            passed;
            violations;
          };
        counterexample;
        wall_s = Lcp_obs.Clock.now_s () -. t0;
      })

let pp_summary ppf s =
  let c = s.counters in
  Format.fprintf ppf
    "@[<v>sweep n=%d jobs=%d mode=%s strategy=%s@,\
     candidates      %d@,\
     connected       %d@,\
     iso classes     %d (dedup folded %d)@,\
     kept / checked  %d / %d@,\
     passed/violations %d / %d@,\
     counterexample  %s@,\
     wall            %.3fs@]"
    s.n s.jobs
    (match s.mode with
    | Exhaustive -> "exhaustive"
    | Search_counterexample -> "search")
    (strategy_name s.strategy) c.candidates c.connected c.classes c.dedup_hits
    c.kept c.checked c.passed c.violations
    (match s.counterexample with
    | None -> "none"
    | Some (g, _) -> Graph.to_string g)
    s.wall_s
