(** Small bit-twiddling helpers shared by the engine's hot loops.

    The engine spends most of its time on adjacency bitsets and edge
    masks, so population counts and set-bit iteration must not loop
    per bit. [popcount] is a 16-bit lookup table applied to the four
    16-bit limbs of an [int] — one table shared by {!Canon}'s
    refinement, {!Chunk}'s connectivity BFS and {!Orderly}'s
    extension loop. *)

val popcount : int -> int
(** Number of set bits. Constant-time: four probes of a precomputed
    65536-entry table (counts the bits of the value's two's-complement
    representation, so it is total on negative inputs too — engine
    masks are always non-negative). *)

val ntz : int -> int
(** Number of trailing zeros, i.e. the index of the lowest set bit.
    Undefined on [0] (callers always test the mask first). *)

val fold_bits : (int -> 'a -> 'a) -> int -> 'a -> 'a
(** [fold_bits f m acc] folds [f] over the indices of the set bits of
    [m], lowest first. *)
