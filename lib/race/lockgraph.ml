(* Lock-acquisition-order analysis over a {!Lcp_obs.Sync} trace.

   Nodes are lock {e classes} — the creation labels, so every
   [Sync.mutex "serve/jobq.lock"] instance is one node — and an edge
   [a -> b] records that some thread acquired a [b]-class lock while
   holding an [a]-class lock. A cycle in this graph is a potential
   deadlock: two threads need only interleave the two observed orders.
   The analysis is static over the trace — the conflicting orders do
   not have to overlap in time (the defect double runs them
   sequentially on purpose), which is exactly what makes the check
   stronger than waiting for an actual deadlock.

   [Condition.wait] releases its mutex for the duration of the wait,
   so [Wait_begin] removes it from the held set and [Wait_end] re-adds
   it (with fresh edges from whatever else is still held).

   Also reported here, since the held sets are already being tracked:
   a lock still held when its thread logs [End] is a [Lock_leak]
   warning (threads without an [End] event — still running at disarm —
   are skipped, so truncation never fabricates a leak). *)

module Sync = Lcp_obs.Sync

let analyze ~scenario (events : Sync.event array) : Finding.t list =
  let held : (int * int, (int * string) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let held_of key =
    match Hashtbl.find_opt held key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace held key l;
        l
  in
  let mutex_label : (int, string) Hashtbl.t = Hashtbl.create 32 in
  let edges : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let thread_label : (int * int, string) Hashtbl.t = Hashtbl.create 16 in
  let leaks = ref [] in
  let push_with_edges hl obj label =
    List.iter
      (fun (o, l) -> if o <> obj then Hashtbl.replace edges (l, label) ())
      !hl;
    hl := (obj, label) :: !hl
  in
  let drop hl obj =
    let rec go = function
      | [] -> []
      | (o, _) :: rest when o = obj -> rest
      | x :: rest -> x :: go rest
    in
    hl := go !hl
  in
  Array.iter
    (fun (e : Sync.event) ->
      let key = (e.Sync.dom, e.Sync.thr) in
      match e.Sync.op with
      | Sync.Acquire ->
          Hashtbl.replace mutex_label e.Sync.obj e.Sync.label;
          push_with_edges (held_of key) e.Sync.obj e.Sync.label
      | Sync.Release -> drop (held_of key) e.Sync.obj
      | Sync.Wait_begin -> drop (held_of key) e.Sync.arg
      | Sync.Wait_end ->
          let label =
            Option.value
              (Hashtbl.find_opt mutex_label e.Sync.arg)
              ~default:"?"
          in
          push_with_edges (held_of key) e.Sync.arg label
      | Sync.Begin -> Hashtbl.replace thread_label key e.Sync.label
      | Sync.End ->
          let hl = held_of key in
          let who =
            Option.value (Hashtbl.find_opt thread_label key) ~default:"main"
          in
          List.iter
            (fun (_, l) ->
              leaks :=
                Finding.make Finding.Lock_leak ~scenario ~subject:l
                  ("lock still held when thread " ^ who ^ " ended")
                :: !leaks)
            (List.sort_uniq Stdlib.compare !hl)
      | _ -> ())
    events;
  (* strongly connected components of the label graph (Tarjan) *)
  let nodes = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (a, b) () ->
      Hashtbl.replace nodes a ();
      Hashtbl.replace nodes b ())
    edges;
  let succ n =
    Hashtbl.fold (fun (a, b) () acc -> if a = n then b :: acc else acc) edges []
  in
  let index = Hashtbl.create 16
  and lowlink = Hashtbl.create 16
  and on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          let lv = Hashtbl.find lowlink v and lw = Hashtbl.find lowlink w in
          if lw < lv then Hashtbl.replace lowlink v lw
        end
        else if Hashtbl.mem on_stack w then begin
          let lv = Hashtbl.find lowlink v and iw = Hashtbl.find index w in
          if iw < lv then Hashtbl.replace lowlink v iw
        end)
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  let all_nodes =
    List.sort Stdlib.compare (Hashtbl.fold (fun n () acc -> n :: acc) nodes [])
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) all_nodes;
  let cycle_findings =
    List.filter_map
      (fun scc ->
        match scc with
        | [] -> None
        | [ l ] ->
            if Hashtbl.mem edges (l, l) then
              Some
                (Finding.make Finding.Lock_inversion ~scenario ~subject:l
                   ("two distinct locks of class " ^ l
                  ^ " nested by one thread (self-cycle)"))
            else None
        | _ ->
            let members = List.sort Stdlib.compare scc in
            let in_scc l = List.mem l members in
            let cyc_edges =
              Hashtbl.fold
                (fun (a, b) () acc ->
                  if in_scc a && in_scc b then (a ^ " -> " ^ b) :: acc else acc)
                edges []
              |> List.sort Stdlib.compare
            in
            Some
              (Finding.make Finding.Lock_inversion ~scenario
                 ~subject:(String.concat " <-> " members)
                 ("conflicting acquisition orders observed: "
                 ^ String.concat "; " cyc_edges)))
      !sccs
  in
  List.sort Stdlib.compare (cycle_findings @ !leaks)
