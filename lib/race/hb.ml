(* Vector-clock happens-before analysis over a {!Lcp_obs.Sync} trace.

   Every thread of the trace gets a dense index and a vector clock;
   synchronization objects carry the clocks they transfer:

   - a mutex accumulates the release-time clocks and hands them to the
     next acquirer (Release -> Acquire edges; [Wait_begin]/[Wait_end]
     are the release/acquire halves of [Condition.wait]);
   - an atomic is a synchronization object in both directions: a write
     merges the writer's clock into the atomic {e and} the atomic's
     clock back into the writer (RMW-conservative), a read joins the
     atomic's clock into the reader. Atomics themselves cannot race;
     they only create edges.
   - spawn tokens carry parent->child ([Spawn]/[Begin]) and
     child->parent ([End]/[Join]) edges.

   Tracked plain vars ([V_read]/[V_write]) are the race subjects, in
   the FastTrack style: per var, the last write epoch plus a per-thread
   read clock; a pair of accesses from different threads, at least one
   a write, with no happens-before path, marks the var as raced.

   The trace's [seq] order is consistent with real synchronization
   order (see the {!Lcp_obs.Sync} ordering contract), so one in-order
   pass is sound. Findings are keyed by the var's creation label and
   report the set of {e all} threads that accessed it — both are
   schedule-independent, which keeps same-seed reports byte-identical
   even though which particular access pair races first is not. *)

module Sync = Lcp_obs.Sync

type vstate = {
  vlabel : string;
  mutable last_w : (int * int) option; (* writer tid, its clock *)
  reads : int array; (* per tid: clock of latest read, -1 = none *)
  accessors : bool array;
  mutable raced : bool;
}

let join_into dst src =
  Array.iteri (fun i s -> if s > dst.(i) then dst.(i) <- s) src

let analyze ~scenario (events : Sync.event array) : Finding.t list =
  (* pass 1: dense thread indices and thread labels *)
  let tid_of = Hashtbl.create 16 in
  let ntids = ref 0 in
  Array.iter
    (fun (e : Sync.event) ->
      let key = (e.Sync.dom, e.Sync.thr) in
      if not (Hashtbl.mem tid_of key) then begin
        Hashtbl.add tid_of key !ntids;
        incr ntids
      end)
    events;
  let ntids = !ntids in
  let labels = Array.make ntids "main" in
  Array.iter
    (fun (e : Sync.event) ->
      if e.Sync.op = Sync.Begin then
        labels.(Hashtbl.find tid_of (e.Sync.dom, e.Sync.thr)) <- e.Sync.label)
    events;
  (* pass 2: the clocks *)
  let vc = Array.init ntids (fun _ -> Array.make ntids 0) in
  let locks : (int, int array) Hashtbl.t = Hashtbl.create 32 in
  let atomics : (int, int array) Hashtbl.t = Hashtbl.create 32 in
  let spawned : (int, int array) Hashtbl.t = Hashtbl.create 32 in
  let ended : (int, int array) Hashtbl.t = Hashtbl.create 32 in
  let vars : (int, vstate) Hashtbl.t = Hashtbl.create 32 in
  let acquire_from tbl t obj =
    match Hashtbl.find_opt tbl obj with
    | Some src -> join_into vc.(t) src
    | None -> ()
  in
  let release_to tbl t obj =
    match Hashtbl.find_opt tbl obj with
    | Some dst -> join_into dst vc.(t)
    | None -> Hashtbl.replace tbl obj (Array.copy vc.(t))
  in
  let var_of (e : Sync.event) =
    match Hashtbl.find_opt vars e.Sync.obj with
    | Some v -> v
    | None ->
        let v =
          {
            vlabel = e.Sync.label;
            last_w = None;
            reads = Array.make ntids (-1);
            accessors = Array.make ntids false;
            raced = false;
          }
        in
        Hashtbl.replace vars e.Sync.obj v;
        v
  in
  Array.iter
    (fun (e : Sync.event) ->
      let t = Hashtbl.find tid_of (e.Sync.dom, e.Sync.thr) in
      (* [u]'s event at clock [cu] happens-before [t]'s current point
         iff [vc.(t).(u) > cu] *)
      let concurrent u cu = u <> t && vc.(t).(u) <= cu in
      (match e.Sync.op with
      | Sync.Acquire -> acquire_from locks t e.Sync.obj
      | Sync.Release -> release_to locks t e.Sync.obj
      | Sync.Wait_begin -> release_to locks t e.Sync.arg
      | Sync.Wait_end -> acquire_from locks t e.Sync.arg
      | Sync.Signal | Sync.Broadcast -> ()
      | Sync.A_write ->
          release_to atomics t e.Sync.obj;
          acquire_from atomics t e.Sync.obj
      | Sync.A_read -> acquire_from atomics t e.Sync.obj
      | Sync.Spawn -> Hashtbl.replace spawned e.Sync.obj (Array.copy vc.(t))
      | Sync.Begin -> acquire_from spawned t e.Sync.obj
      | Sync.End -> Hashtbl.replace ended e.Sync.obj (Array.copy vc.(t))
      | Sync.Join -> acquire_from ended t e.Sync.obj
      | Sync.V_write ->
          let v = var_of e in
          v.accessors.(t) <- true;
          (match v.last_w with
          | Some (u, cu) when concurrent u cu -> v.raced <- true
          | _ -> ());
          Array.iteri
            (fun u cu -> if cu >= 0 && concurrent u cu then v.raced <- true)
            v.reads;
          v.last_w <- Some (t, vc.(t).(t))
      | Sync.V_read ->
          let v = var_of e in
          v.accessors.(t) <- true;
          (match v.last_w with
          | Some (u, cu) when concurrent u cu -> v.raced <- true
          | _ -> ());
          if vc.(t).(t) > v.reads.(t) then v.reads.(t) <- vc.(t).(t));
      vc.(t).(t) <- vc.(t).(t) + 1)
    events;
  let findings = ref [] in
  Hashtbl.iter
    (fun _ v ->
      if v.raced then begin
        let who = ref [] in
        Array.iteri (fun t acc -> if acc then who := labels.(t) :: !who) v.accessors;
        let who = List.sort_uniq Stdlib.compare !who in
        findings :=
          Finding.make Finding.Data_race ~scenario ~subject:v.vlabel
            ("unsynchronized conflicting accesses between threads: "
            ^ String.concat ", " who)
          :: !findings
      end)
    vars;
  List.sort
    (fun (a : Finding.t) b -> Stdlib.compare a.Finding.subject b.Finding.subject)
    !findings
