(* The [lcp race] driver: run each scenario under K seeded schedules,
   analyze every trace, and fold the findings into one
   schema-versioned report.

   Per schedule k the perturbation seed is [seed + k * 1_000_003] —
   distinct pause patterns per schedule, reproducible from [seed]
   alone. Findings are deduplicated per scenario by (kind, subject)
   and carry only schedule-independent text, so two runs with the same
   seed render byte-identical JSON even though the OS interleaves the
   threads differently. *)

module Sync = Lcp_obs.Sync
module Json = Lcp_obs.Json

let schema_version = 1
let default_schedules = 5
let default_period = 7

type scenario_result = {
  scenario : string;
  descr : string;
  defect : bool;
  findings : Finding.t list;
}

type report = {
  seed : int;
  schedules : int;
  period : int;
  results : scenario_result list;
}

let analyze ~scenario events =
  Hb.analyze ~scenario events @ Lockgraph.analyze ~scenario events

let run_scenario ~seed ~schedules ~period (sc : Scenario.t) =
  let acc = ref [] in
  for k = 0 to schedules - 1 do
    Sync.arm ~perturb:{ Sync.pseed = seed + (k * 1_000_003); period } ();
    let invariant =
      match sc.Scenario.run () with
      | () -> []
      | exception e ->
          [
            Finding.make Finding.Invariant_violation ~scenario:sc.Scenario.name
              ~subject:(sc.Scenario.name ^ "/invariant")
              (Printexc.to_string e);
          ]
    in
    let events = Sync.disarm () in
    acc := analyze ~scenario:sc.Scenario.name events @ invariant @ !acc
  done;
  {
    scenario = sc.Scenario.name;
    descr = sc.Scenario.descr;
    defect = sc.Scenario.defect;
    findings = Finding.dedup !acc;
  }

let run ~seed ~schedules ~period scenarios =
  {
    seed;
    schedules;
    period;
    results = List.map (run_scenario ~seed ~schedules ~period) scenarios;
  }

let findings r = List.concat_map (fun s -> s.findings) r.results
let violations r = List.filter Finding.is_violation (findings r)

let to_json r =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("tool", Json.String "lcp race");
      ("seed", Json.Int r.seed);
      ("schedules", Json.Int r.schedules);
      ("period", Json.Int r.period);
      ( "scenarios",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("scenario", Json.String s.scenario);
                   ("defect", Json.Bool s.defect);
                   ("findings", Json.List (List.map Finding.to_json s.findings));
                 ])
             r.results) );
    ]

let pp ppf r =
  Format.fprintf ppf "@[<v>race: seed=%d schedules=%d period=%d@,@," r.seed
    r.schedules r.period;
  List.iter
    (fun s ->
      let n = List.length s.findings in
      Format.fprintf ppf "%-18s %s%s@," s.scenario
        (if n = 0 then "clean" else Printf.sprintf "%d finding(s)" n)
        (if s.defect then " [defect double]" else "");
      List.iter (fun f -> Format.fprintf ppf "  %a@," Finding.pp f) s.findings)
    r.results;
  let v = List.length (violations r) in
  Format.fprintf ppf "@,%s@]"
    (if v = 0 then "no violations"
     else Printf.sprintf "%d violation(s)" v)
