(* Race findings — the concurrency-side sibling of
   [Lcp_analysis.Finding]. Subjects and details are built only from
   creation labels and scenario names (never thread ids, event counts
   or wall time), so a report is byte-identical across repeated runs
   with the same seed even though the OS schedules differ. *)

type kind =
  | Data_race  (** unsynchronized conflicting accesses to a tracked var *)
  | Lock_inversion  (** a cycle in the lock-class acquisition-order graph *)
  | Lock_leak  (** a lock still held when its thread ended *)
  | Invariant_violation  (** a scenario's own invariant check raised *)

type severity = Error | Warning

type t = {
  kind : kind;
  severity : severity;
  scenario : string;
  subject : string;  (** the var label, lock class(es), or invariant name *)
  detail : string;
}

let kind_to_string = function
  | Data_race -> "data-race"
  | Lock_inversion -> "lock-inversion"
  | Lock_leak -> "lock-leak"
  | Invariant_violation -> "invariant-violation"

let kind_of_string = function
  | "data-race" -> Some Data_race
  | "lock-inversion" -> Some Lock_inversion
  | "lock-leak" -> Some Lock_leak
  | "invariant-violation" -> Some Invariant_violation
  | _ -> None

let severity_to_string = function Error -> "error" | Warning -> "warning"

let default_severity = function
  | Data_race | Lock_inversion | Invariant_violation -> Error
  | Lock_leak -> Warning

let make ?severity kind ~scenario ~subject detail =
  let severity =
    match severity with Some s -> s | None -> default_severity kind
  in
  { kind; severity; scenario; subject; detail }

let is_violation f = f.severity = Error

(* Dedup across schedules (the driver re-analyzes every seeded run):
   one finding per (kind, subject) per scenario, stable order. *)
let dedup findings =
  let seen = Hashtbl.create 16 in
  let keep =
    List.filter
      (fun f ->
        let key = (f.kind, f.scenario, f.subject) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      findings
  in
  List.sort
    (fun a b ->
      Stdlib.compare
        (a.scenario, kind_to_string a.kind, a.subject)
        (b.scenario, kind_to_string b.kind, b.subject))
    keep

let to_json f =
  Lcp_obs.Json.Obj
    [
      ("kind", Lcp_obs.Json.String (kind_to_string f.kind));
      ("severity", Lcp_obs.Json.String (severity_to_string f.severity));
      ("scenario", Lcp_obs.Json.String f.scenario);
      ("subject", Lcp_obs.Json.String f.subject);
      ("detail", Lcp_obs.Json.String f.detail);
    ]

let pp ppf f =
  Format.fprintf ppf "%s: [%s/%s] %s: %s" f.scenario
    (severity_to_string f.severity)
    (kind_to_string f.kind) f.subject f.detail
