(* The workloads [lcp race] drives under tracing and perturbation.

   Clean scenarios exercise the real shipped subsystems — the metrics
   registry, the serve job queue, the sweep class cache, the eval-cache
   lease pool, the domain pool, the full daemon — and are expected to
   produce zero findings on every seeded schedule. Each also asserts
   its own functional invariants (FIFO order, bounds, lease
   exclusivity, counter totals); a failed assertion surfaces as an
   [Invariant_violation] finding rather than killing the driver.

   Defect scenarios are deliberately broken doubles that prove the
   detector has teeth: an unguarded shared counter (a data race the
   happens-before pass must flag on every schedule, since no trace
   contains a synchronization path between the workers' accesses) and
   an AB/BA lock pair (run {e sequentially} on purpose — the
   lock-order analysis is static over the trace, so it flags the
   potential deadlock without risking a real one). They are excluded
   from the default run set and exercised by [--defects] / the tests,
   which expect exactly their findings. *)

module Sync = Lcp_obs.Sync
module R = Lcp_obs.Run_cfg
open Lcp_graph
open Lcp_local
open Lcp_engine

type t = {
  name : string;
  descr : string;
  defect : bool;  (** expected to produce findings *)
  run : unit -> unit;
}

let fail fmt = Printf.ksprintf failwith fmt

(* ------------------------------------------------------------------ *)
(* clean scenarios                                                     *)

let metrics_run () =
  let m = Lcp_obs.Metrics.create () in
  let worker i () =
    for k = 1 to 150 do
      Lcp_obs.Metrics.incr m (Printf.sprintf "race/c%d" (k mod 3));
      if k mod 16 = 0 then Lcp_obs.Metrics.set_gauge m "race/gauge" (i + k);
      if k mod 32 = 0 then ignore (Lcp_obs.Metrics.counter m "race/c0")
    done
  in
  let hs = List.init 4 (fun i -> Sync.spawn "race/metrics/worker" (worker i)) in
  Lcp_obs.Metrics.with_span m "race/span" (fun () ->
      ignore (Lcp_obs.Metrics.counters m));
  List.iter Sync.join hs;
  let total =
    List.fold_left
      (fun acc (k, v) ->
        if String.length k >= 6 && String.sub k 0 6 = "race/c" then acc + v
        else acc)
      0
      (Lcp_obs.Metrics.counters m)
  in
  if total <> 4 * 150 then fail "metrics: lost increments (%d <> 600)" total

let jobq_producers = 2
let jobq_consumers = 2
let jobq_items = 30

let jobq_run () =
  let q = Lcp_serve.Jobq.create ~capacity:8 in
  let producer p () =
    for i = 0 to jobq_items - 1 do
      let item = (p * 1000) + i in
      while not (Lcp_serve.Jobq.try_push q item) do
        Thread.yield ()
      done
    done
  in
  let got = Array.make jobq_consumers [] in
  let consumer c () =
    let rec drain () =
      match Lcp_serve.Jobq.pop q with
      | Some item ->
          got.(c) <- item :: got.(c);
          drain ()
      | None -> ()
    in
    drain ()
  in
  let ps = List.init jobq_producers (fun p -> Sync.spawn "race/jobq/producer" (producer p)) in
  let cs = List.init jobq_consumers (fun c -> Sync.spawn "race/jobq/consumer" (consumer c)) in
  List.iter Sync.join ps;
  Lcp_serve.Jobq.close q;
  List.iter Sync.join cs;
  (* each consumer's view preserves per-producer push order (FIFO) *)
  Array.iter
    (fun items ->
      let last = Hashtbl.create 4 in
      List.iter
        (fun item ->
          let p = item / 1000 and i = item mod 1000 in
          (match Hashtbl.find_opt last p with
          | Some j when j <= i -> fail "jobq: FIFO order violated for producer %d" p
          | _ -> ());
          Hashtbl.replace last p i)
        items (* lists are newest-first, so indices must decrease *))
    got;
  let all = Array.to_list got |> List.concat |> List.sort Stdlib.compare in
  let expected =
    List.concat
      (List.init jobq_producers (fun p ->
           List.init jobq_items (fun i -> (p * 1000) + i)))
    |> List.sort Stdlib.compare
  in
  if all <> expected then fail "jobq: items lost or duplicated";
  if Lcp_serve.Jobq.depth q <> 0 then fail "jobq: nonzero depth after drain";
  if not (Lcp_serve.Jobq.is_closed q) then fail "jobq: not closed"

let sweep_cache_run () =
  Sweep.clear_cache ();
  let cfg = R.make ~jobs:1 () in
  let worker () =
    for _ = 1 to 2 do
      let classes = Sweep.iso_classes ~cfg ~connected:true 5 in
      if List.length classes <> 21 then
        fail "sweep-cache: wrong class count for n=5"
    done
  in
  let hs = List.init 4 (fun _ -> Sync.spawn "race/sweep-cache/worker" worker) in
  List.iter Sync.join hs;
  let hits, misses = Sweep.cache_stats () in
  if hits + misses < 8 then fail "sweep-cache: lost cache traffic";
  if misses < 1 then fail "sweep-cache: impossible all-hit run";
  Sweep.clear_cache ()

let lease_run () =
  Eval_cache.set_sharing true;
  Fun.protect ~finally:(fun () -> Eval_cache.set_sharing false) @@ fun () ->
  let inst = Instance.make (Builders.path 4) in
  let lab = Array.make 4 "0" in
  let worker w () =
    for i = 1 to 8 do
      let key = Printf.sprintf "race/lease-%d" ((w + i) mod 2) in
      let l =
        Eval_cache.acquire ~key ~radius:1
          ~accepts:(fun _ -> true)
          ~alphabet:[ "0"; "1" ] inst
      in
      Eval_cache.lease_touch l;
      if not (Eval_cache.accepts (Eval_cache.lease_cache l) lab 0) then
        fail "lease-pool: decoder verdict changed";
      Eval_cache.lease_touch l;
      Eval_cache.release l
    done
  in
  let hs = List.init 3 (fun w -> Sync.spawn "race/lease/worker" (worker w)) in
  List.iter Sync.join hs;
  let size = Eval_cache.shared_size () in
  if size > 2 then fail "lease-pool: pool grew past its key space (%d)" size

let pool_sweep_run () =
  Sweep.clear_cache ();
  let cfg = R.make ~jobs:4 () in
  let s =
    Sweep.run ~cfg ~n:5
      ~check:(fun g -> if Graph.order g = 5 then None else Some ())
      ()
  in
  if s.Sweep.counters.Sweep.violations <> 0 then
    fail "pool-sweep: unexpected violations";
  let s =
    Sweep.run ~cfg ~mode:Sweep.Search_counterexample ~n:5
      ~check:(fun g -> if Graph.size g > 8 then Some (Graph.size g) else None)
      ()
  in
  if s.Sweep.counterexample = None then
    fail "pool-sweep: search missed a dense class";
  Sweep.clear_cache ()

let serve_socket_counter = ref 0

let serve_run () =
  Sweep.clear_cache ();
  incr serve_socket_counter;
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp-race-%d-%d.sock" (Unix.getpid ())
         !serve_socket_counter)
  in
  let config =
    { (Lcp_serve.Server.default_config ~socket_path) with capacity = 4; workers = 2 }
  in
  let t = Lcp_serve.Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Lcp_serve.Server.stop t;
      Lcp_serve.Server.wait t;
      (* connection handlers are fire-and-forget: give the last one a
         beat to log its End before the driver disarms *)
      Thread.delay 0.05)
    (fun () ->
      Lcp_serve.Client.with_connection socket_path (fun c ->
          let req kind = { Lcp_serve.Protocol.kind; opts = Lcp_serve.Protocol.default_opts } in
          let sweep =
            req
              (Lcp_serve.Protocol.Sweep
                 {
                   decoder = "degree-one";
                   n = 4;
                   strategy = "orderly";
                   early_exit = false;
                   shards = 1;
                 })
          in
          let ok r =
            match r with
            | Ok resp -> resp.Lcp_serve.Protocol.status = Lcp_serve.Protocol.Done
            | Error _ -> false
          in
          if not (ok (Lcp_serve.Client.request c (req Lcp_serve.Protocol.Ping)))
          then fail "serve: ping failed";
          if not (ok (Lcp_serve.Client.request c sweep)) then
            fail "serve: cold sweep failed";
          if not (ok (Lcp_serve.Client.request c sweep)) then
            fail "serve: warm sweep failed";
          if not (ok (Lcp_serve.Client.request c (req Lcp_serve.Protocol.Metrics)))
          then fail "serve: metrics failed"));
  Sweep.clear_cache ()

(* ------------------------------------------------------------------ *)
(* defect doubles                                                      *)

let defect_counter_run () =
  let ctr = Sync.Var.make "race/defect.counter" 0 in
  let worker () =
    for _ = 1 to 400 do
      Sync.Var.set ctr (Sync.Var.get ctr + 1)
    done
  in
  let a = Sync.spawn "race/defect/inc-a" worker in
  let b = Sync.spawn "race/defect/inc-b" worker in
  Sync.join a;
  Sync.join b;
  ignore (Sync.Var.get ctr)

let defect_lock_order_run () =
  let la = Sync.mutex "race/defect.lock-a" in
  let lb = Sync.mutex "race/defect.lock-b" in
  let ab = Sync.spawn "race/defect/ab" (fun () ->
      Sync.with_lock la (fun () -> Sync.with_lock lb (fun () -> ())))
  in
  Sync.join ab;
  let ba = Sync.spawn "race/defect/ba" (fun () ->
      Sync.with_lock lb (fun () -> Sync.with_lock la (fun () -> ())))
  in
  Sync.join ba

(* ------------------------------------------------------------------ *)
(* registry                                                            *)

let all =
  [
    {
      name = "metrics";
      descr = "concurrent counter/gauge traffic on one Metrics registry";
      defect = false;
      run = metrics_run;
    };
    {
      name = "jobq";
      descr = "bounded FIFO under concurrent producers and consumers";
      defect = false;
      run = jobq_run;
    };
    {
      name = "sweep-cache";
      descr = "racing cold lookups of the cross-sweep class cache";
      defect = false;
      run = sweep_cache_run;
    };
    {
      name = "lease-pool";
      descr = "eval-cache lease pool checked out from competing threads";
      defect = false;
      run = lease_run;
    };
    {
      name = "pool-sweep";
      descr = "domain-pool sweep plus early-exit search (jobs=4)";
      defect = false;
      run = pool_sweep_run;
    };
    {
      name = "serve";
      descr = "full daemon: accept loop, workers, cold+warm sweep, metrics";
      defect = false;
      run = serve_run;
    };
    {
      name = "defect-counter";
      descr = "deliberately unguarded shared counter (expects a data race)";
      defect = true;
      run = defect_counter_run;
    };
    {
      name = "defect-lock-order";
      descr = "deliberate AB/BA lock pair (expects a lock inversion)";
      defect = true;
      run = defect_lock_order_run;
    };
  ]

let clean = List.filter (fun s -> not s.defect) all
let defects = List.filter (fun s -> s.defect) all
let find name = List.find_opt (fun s -> s.name = name) all
let names = List.map (fun s -> s.name) all
