let rec pairs_adjacent g = function
  | a :: (b :: _ as rest) -> Graph.mem_edge g a b && pairs_adjacent g rest
  | [ _ ] | [] -> true

let is_walk g w = w <> [] && pairs_adjacent g w

let is_closed_walk g w =
  match w with
  | [] -> false
  | [ _ ] -> false
  | first :: _ ->
      let last = List.nth w (List.length w - 1) in
      pairs_adjacent g w && Graph.mem_edge g last first

let length w = List.length w

let is_non_backtracking g w =
  let k = List.length w in
  if k < 3 then false
  else begin
    let arr = Array.of_list w in
    is_closed_walk g w
    && begin
         let ok = ref true in
         for i = 0 to k - 1 do
           let pred = arr.((i + k - 1) mod k) and succ = arr.((i + 1) mod k) in
           if pred = succ then ok := false
         done;
         !ok
       end
  end

let non_backtracking_closed_walk g ~start ~len =
  if len < 3 then None
  else begin
    (* DFS over (current node, previous node, steps remaining); to close
       the walk we must return to [start] at step [len] without the final
       step undoing the first, and without the first step undoing the
       last. We record the first step to check the wraparound. *)
    let exception Found of int list in
    let rec go v prev steps acc first_step =
      if steps = len then begin
        if v = start then begin
          (* wraparound check: predecessor of start (= prev of the final
             arrival) must differ from its successor (= first step) *)
          match first_step with
          | Some f when f <> prev -> raise (Found (List.rev acc))
          | _ -> ()
        end
      end
      else
        Graph.iter_neighbors
          (fun w ->
            if w <> prev then
              let first_step = match first_step with None -> Some w | s -> s in
              go w v (steps + 1) (if steps + 1 = len then acc else w :: acc)
                first_step)
          g v
    in
    try
      go start (-1) 0 [ start ] None;
      None
    with Found w -> Some w
  end

let closed_walk_around_cycle _g cycle u =
  let rec rotate c =
    match c with
    | x :: _ when x = u -> c
    | x :: rest -> rotate (rest @ [ x ])
    | [] -> invalid_arg "Walks.closed_walk_around_cycle: node not on cycle"
  in
  rotate cycle

let splice walk pos insert =
  let arr = Array.of_list walk in
  if pos < 0 || pos >= Array.length arr then invalid_arg "Walks.splice: bad position";
  (match insert with
  | x :: _ when x = arr.(pos) -> ()
  | _ -> invalid_arg "Walks.splice: insert must start at the splice node");
  let before = Array.to_list (Array.sub arr 0 pos) in
  let after = Array.to_list (Array.sub arr pos (Array.length arr - pos)) in
  (* [after] starts with x = arr.(pos). The result visits x, tours the
     inserted closed walk, returns to x, then continues: the single x is
     replaced by [insert @ [x]]. *)
  match after with
  | x :: rest -> before @ insert @ (x :: rest)
  | [] -> assert false

let parity w = if List.length w mod 2 = 1 then `Odd else `Even

let concat_path_walk p q =
  match (List.rev p, q) with
  | last :: _, qh :: qt when last = qh -> p @ qt
  | _ -> invalid_arg "Walks.concat_path_walk: endpoints do not meet"
