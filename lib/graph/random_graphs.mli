(** Seeded random-graph generators for the large sampled workload.

    All generators run in O(n + m) through {!Graph.Builder} — no
    intermediate edge lists — and are deterministic in the supplied
    [Random.State.t]: the same seed yields the identical edge set.
    They complement the small-n conveniences in {!Builders}
    ([random_gnp] there scans all n^2 pairs and is kept for tests). *)

val gnp : Random.State.t -> int -> p:float -> Graph.t
(** Erdos-Renyi G(n, p) by Batagelj-Brandes skip sampling: cost
    proportional to the number of edges drawn, not to n^2.
    @raise Invalid_argument if [n < 0] or [p] is outside [0, 1]. *)

val gnp_avg_degree : Random.State.t -> int -> avg_degree:float -> Graph.t
(** [gnp] with [p = avg_degree / (n - 1)] (clamped to 1). *)

val preferential_attachment : Random.State.t -> int -> m:int -> Graph.t
(** Barabasi-Albert power-law graph: a seed clique on [m + 1] nodes,
    then each new node attaches to [m] distinct existing nodes drawn
    with probability proportional to degree (repeated-endpoint array).
    @raise Invalid_argument if [m < 1] or [n < m + 1]. *)

val tree : Random.State.t -> int -> Graph.t
(** Random attachment tree on [n] nodes (node [v] joins a uniform
    earlier node), built through {!Graph.Builder}. *)

val grid_near : int -> Graph.t
(** The [rows x cols] grid with [rows = floor (sqrt n)] and
    [cols = n / rows]: the bipartite lattice closest to [n] nodes
    (the actual order is [rows * cols <= n]). *)

val of_model : Random.State.t -> nodes:int -> string -> (Graph.t, string) result
(** Parse the textual model grammar used by [lcp sample] and the large
    bench — [MODEL[:ARG]]: ["gnp"] (average degree 8), ["gnp:4.0"],
    ["ba"] (m = 4), ["ba:2"], ["tree"], ["grid"]. See {!model_syntax}. *)

val model_syntax : string
(** One-line summary of every accepted model form, for usage errors. *)
