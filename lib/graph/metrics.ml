let bfs_dist g start =
  let n = Graph.order g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(start) <- 0;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Graph.iter_neighbors
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      g v
  done;
  dist

let dist g u v = (bfs_dist g u).(v)

let all_pairs_dist g = Array.init (Graph.order g) (fun v -> bfs_dist g v)

let ball g v r =
  let d = bfs_dist g v in
  Graph.fold_nodes (fun w acc -> if d.(w) <= r then w :: acc else acc) g []
  |> List.sort Stdlib.compare

let eccentricity g v =
  let d = bfs_dist g v in
  Array.fold_left max 0 d

let diameter g =
  if Graph.order g <= 1 then 0
  else Graph.fold_nodes (fun v acc -> max acc (eccentricity g v)) g 0

let radius g =
  if Graph.order g <= 1 then 0
  else Graph.fold_nodes (fun v acc -> min acc (eccentricity g v)) g max_int

(* Shortest cycle through BFS from every node: for each BFS, a non-tree
   edge between nodes at depths d1, d2 closes a cycle of length
   d1 + d2 + 1. This yields the girth exactly (standard argument). *)
let girth g =
  let n = Graph.order g in
  let best = ref max_int in
  for s = 0 to n - 1 do
    let dist = Array.make n max_int in
    let parent = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(s) <- 0;
    Queue.add s queue;
    let continue = ref true in
    while !continue && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if 2 * dist.(v) >= !best then continue := false
      else
        Graph.iter_neighbors
          (fun w ->
            if dist.(w) = max_int then begin
              dist.(w) <- dist.(v) + 1;
              parent.(w) <- v;
              Queue.add w queue
            end
            else if parent.(v) <> w && parent.(w) <> v then
              best := min !best (dist.(v) + dist.(w) + 1))
          g v
    done
  done;
  if !best = max_int then None else Some !best

let shortest_path_avoiding g ~avoid src dst =
  let n = Graph.order g in
  let prev = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.add src queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if v = dst then found := true
    else
      Graph.iter_neighbors
        (fun w ->
          if (not seen.(w)) && ((not (avoid w)) || w = dst) then begin
            seen.(w) <- true;
            prev.(w) <- v;
            Queue.add w queue
          end)
        g v
  done;
  if not !found then None
  else begin
    let rec rebuild v acc = if v = src then src :: acc else rebuild prev.(v) (v :: acc) in
    Some (rebuild dst [])
  end

let shortest_path g src dst = shortest_path_avoiding g ~avoid:(fun _ -> false) src dst
