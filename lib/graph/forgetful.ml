type witness = { v : int; u : int; escape : int list }

type verdict =
  | Forgetful of witness list
  | Not_forgetful of { v : int; u : int }

(* Strictly increasing distance to every w in N^r(u) along the path:
   since one hop changes distance by at most 1, each step must satisfy
   dist(v_{i+1}, w) = dist(v_i, w) + 1 for all w. We precompute the BFS
   distances from every w once and DFS over extensions. *)
let escape_path g ~r ~v ~u =
  if r < 0 then invalid_arg "Forgetful.escape_path: negative radius";
  if not (Graph.mem_edge g v u) then
    invalid_arg "Forgetful.escape_path: u must be a neighbor of v";
  let targets = Metrics.ball g u r in
  let dists = List.map (fun w -> Metrics.bfs_dist g w) targets in
  let step_ok cur next =
    List.for_all
      (fun dw ->
        dw.(cur) <> max_int && dw.(next) <> max_int && dw.(next) = dw.(cur) + 1)
      dists
  in
  let exception Found of int list in
  let rec go cur depth acc =
    if depth = r then raise (Found (List.rev acc))
    else
      Graph.iter_neighbors
        (fun next -> if step_ok cur next then go next (depth + 1) (next :: acc))
        g cur
  in
  try
    go v 0 [ v ];
    None
  with Found p -> Some p

let check g ~r =
  let exception Fail of int * int in
  try
    let witnesses =
      Graph.fold_nodes
        (fun v acc ->
          Graph.fold_neighbors
            (fun u acc ->
              match escape_path g ~r ~v ~u with
              | Some p -> { v; u; escape = p } :: acc
              | None -> raise (Fail (v, u)))
            g v acc)
        g []
    in
    Forgetful (List.rev witnesses)
  with Fail (v, u) -> Not_forgetful { v; u }

let is_r_forgetful g ~r =
  match check g ~r with Forgetful _ -> true | Not_forgetful _ -> false

let max_forgetful_radius g =
  let diam = Metrics.diameter g in
  let bound = if diam = max_int then Graph.order g else diam in
  let rec go best r =
    if r > bound then best
    else if is_r_forgetful g ~r then go r (r + 1)
    else best
  in
  go 0 1

let lemma_2_1_holds g ~r =
  (not (is_r_forgetful g ~r)) || Metrics.diameter g >= (2 * r) + 1
