(* Flat CSR adjacency. Row [v] lives at [adj.(offsets.(v)) ..
   adj.(offsets.(v+1) - 1)], strictly increasing, no self-loops, no
   duplicates — the same neighbor order the historical sorted-list
   representation exposed, so port numbering is unchanged. *)
type t = {
  n : int;
  offsets : int array; (* length n + 1; offsets.(n) = Array.length adj *)
  adj : int array; (* flat neighbor array, each row strictly ascending *)
}

let order g = g.n

let check_node g v =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Graph: node %d out of range [0, %d)" v g.n)

let empty n =
  if n < 0 then invalid_arg "Graph.empty: negative order";
  { n; offsets = Array.make (n + 1) 0; adj = [||] }

(* Build the CSR from [m] validated arcs [(src.(i), dst.(i))] (each
   undirected edge listed once, endpoints in range, no self-loops).
   Counting sort plus a transpose keeps the whole construction O(n + m):
   pass 1 counts degrees, pass 2 fills rows in arbitrary order, pass 3
   re-transposes — reading sources in ascending order writes every
   target row in ascending order — and pass 4 drops the (now adjacent)
   duplicates in place. *)
let of_arcs n src dst m =
  let count = Array.make (n + 1) 0 in
  for i = 0 to m - 1 do
    count.(src.(i)) <- count.(src.(i)) + 1;
    count.(dst.(i)) <- count.(dst.(i)) + 1
  done;
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + count.(v)
  done;
  let total = off.(n) in
  let cursor = Array.sub off 0 (n + 1) in
  let rough = Array.make (max total 1) 0 in
  for i = 0 to m - 1 do
    let u = src.(i) and v = dst.(i) in
    rough.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    rough.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  let sorted = Array.make (max total 1) 0 in
  Array.blit off 0 cursor 0 (n + 1);
  for v = 0 to n - 1 do
    for i = off.(v) to off.(v + 1) - 1 do
      let w = rough.(i) in
      sorted.(cursor.(w)) <- v;
      cursor.(w) <- cursor.(w) + 1
    done
  done;
  (* compact duplicate entries (parallel input edges) in place *)
  let offsets = Array.make (n + 1) 0 in
  let out = ref 0 in
  for v = 0 to n - 1 do
    offsets.(v) <- !out;
    let prev = ref (-1) in
    for i = off.(v) to off.(v + 1) - 1 do
      let w = sorted.(i) in
      if w <> !prev then begin
        sorted.(!out) <- w;
        incr out;
        prev := w
      end
    done
  done;
  offsets.(n) <- !out;
  let adj =
    if !out = Array.length sorted then sorted else Array.sub sorted 0 !out
  in
  { n; offsets; adj }

let validate_edge ~who n u v =
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg (Printf.sprintf "%s: edge (%d,%d) out of range [0,%d)" who u v n);
  if u = v then invalid_arg (Printf.sprintf "%s: self-loop at %d" who u)

let of_edges n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative order";
  let m = List.length edge_list in
  let src = Array.make (max m 1) 0 and dst = Array.make (max m 1) 0 in
  List.iteri
    (fun i (u, v) ->
      validate_edge ~who:"Graph.of_edges" n u v;
      src.(i) <- u;
      dst.(i) <- v)
    edge_list;
  of_arcs n src dst m

(* Growable arc buffer for O(n + m) construction without intermediate
   tuple lists; the random-graph generators feed this. *)
module Builder = struct
  type t = {
    bn : int;
    mutable src : int array;
    mutable dst : int array;
    mutable len : int;
  }

  let create ?(size_hint = 16) n =
    if n < 0 then invalid_arg "Graph.Builder.create: negative order";
    let cap = max size_hint 1 in
    { bn = n; src = Array.make cap 0; dst = Array.make cap 0; len = 0 }

  let add_edge b u v =
    validate_edge ~who:"Graph.Builder.add_edge" b.bn u v;
    if b.len = Array.length b.src then begin
      let cap = 2 * b.len in
      let src = Array.make cap 0 and dst = Array.make cap 0 in
      Array.blit b.src 0 src 0 b.len;
      Array.blit b.dst 0 dst 0 b.len;
      b.src <- src;
      b.dst <- dst
    end;
    b.src.(b.len) <- u;
    b.dst.(b.len) <- v;
    b.len <- b.len + 1

  let edge_count b = b.len
  let graph b = of_arcs b.bn b.src b.dst b.len
end

(* ---- allocation-free observation -------------------------------- *)

let degree g v =
  check_node g v;
  g.offsets.(v + 1) - g.offsets.(v)

let iter_neighbors f g v =
  check_node g v;
  for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    f g.adj.(i)
  done

let iteri_neighbors f g v =
  check_node g v;
  let lo = g.offsets.(v) in
  for i = lo to g.offsets.(v + 1) - 1 do
    f (i - lo) g.adj.(i)
  done

let fold_neighbors f g v init =
  check_node g v;
  let acc = ref init in
  for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    acc := f g.adj.(i) !acc
  done;
  !acc

let exists_neighbor p g v =
  check_node g v;
  let hi = g.offsets.(v + 1) in
  let rec go i = i < hi && (p g.adj.(i) || go (i + 1)) in
  go g.offsets.(v)

let for_all_neighbors p g v = not (exists_neighbor (fun w -> not (p w)) g v)

let find_neighbor p g v =
  check_node g v;
  let hi = g.offsets.(v + 1) in
  let rec go i =
    if i >= hi then None
    else if p g.adj.(i) then Some g.adj.(i)
    else go (i + 1)
  in
  go g.offsets.(v)

let nth_neighbor g v i =
  check_node g v;
  let lo = g.offsets.(v) in
  if i < 0 || lo + i >= g.offsets.(v + 1) then
    invalid_arg
      (Printf.sprintf "Graph.nth_neighbor: index %d out of range [0,%d)" i
         (g.offsets.(v + 1) - lo));
  g.adj.(lo + i)

(* Binary search within the sorted row: O(log deg). *)
let neighbor_rank g v w =
  check_node g v;
  check_node g w;
  let lo = ref g.offsets.(v) and hi = ref (g.offsets.(v + 1) - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = g.adj.(mid) in
    if x = w then begin
      found := mid - g.offsets.(v);
      lo := !hi + 1
    end
    else if x < w then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then None else Some !found

let mem_edge g u v = neighbor_rank g u v <> None

let neighbors g v =
  check_node g v;
  let lo = g.offsets.(v) in
  List.init (g.offsets.(v + 1) - lo) (fun i -> g.adj.(lo + i))

let neighbors_array g v =
  check_node g v;
  let lo = g.offsets.(v) in
  Array.sub g.adj lo (g.offsets.(v + 1) - lo)

let size g = g.offsets.(g.n) / 2

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    for i = g.offsets.(u + 1) - 1 downto g.offsets.(u) do
      let v = g.adj.(i) in
      if u < v then acc := (u, v) :: !acc
    done
  done;
  !acc

let iter_edges f g =
  for u = 0 to g.n - 1 do
    for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      let v = g.adj.(i) in
      if u < v then f u v
    done
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

(* Rebuild from the arc arrays of [g] plus edits; add/remove are
   copy-on-write conveniences for small graphs, not hot paths. *)
let arcs_of g =
  let m = size g in
  let src = Array.make (max m 1) 0 and dst = Array.make (max m 1) 0 in
  let i = ref 0 in
  iter_edges
    (fun u v ->
      src.(!i) <- u;
      dst.(!i) <- v;
      incr i)
    g;
  (src, dst, m)

let add_edge g u v =
  check_node g u;
  check_node g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if mem_edge g u v then g
  else begin
    let src, dst, m = arcs_of g in
    let src' = Array.make (m + 1) 0 and dst' = Array.make (m + 1) 0 in
    Array.blit src 0 src' 0 m;
    Array.blit dst 0 dst' 0 m;
    src'.(m) <- u;
    dst'.(m) <- v;
    of_arcs g.n src' dst' (m + 1)
  end

let remove_edge g u v =
  check_node g u;
  check_node g v;
  if not (mem_edge g u v) then g
  else begin
    let src, dst, m = arcs_of g in
    let j = ref 0 in
    for i = 0 to m - 1 do
      let a = src.(i) and b = dst.(i) in
      if not ((a = u && b = v) || (a = v && b = u)) then begin
        src.(!j) <- a;
        dst.(!j) <- b;
        incr j
      end
    done;
    of_arcs g.n src dst !j
  end

let disjoint_union g h =
  (* rows of [g] then rows of [h] shifted by [order g]: direct CSR
     concatenation, O(n + m) *)
  let n = g.n + h.n in
  let mg = g.offsets.(g.n) and mh = h.offsets.(h.n) in
  let offsets = Array.make (n + 1) 0 in
  Array.blit g.offsets 0 offsets 0 (g.n + 1);
  for v = 0 to h.n do
    offsets.(g.n + v) <- mg + h.offsets.(v)
  done;
  let adj = Array.make (max (mg + mh) 1) 0 in
  Array.blit g.adj 0 adj 0 mg;
  for i = 0 to mh - 1 do
    adj.(mg + i) <- h.adj.(i) + g.n
  done;
  { n; offsets; adj = Array.sub adj 0 (mg + mh) }

let induced g node_list =
  List.iter (check_node g) node_list;
  let keep = List.sort_uniq Stdlib.compare node_list in
  let old_of_new = Array.of_list keep in
  let m = Array.length old_of_new in
  let new_of_old = Array.make g.n (-1) in
  Array.iteri (fun i v -> new_of_old.(v) <- i) old_of_new;
  let b = Builder.create ~size_hint:(m + 1) m in
  Array.iteri
    (fun a v ->
      iter_neighbors
        (fun w ->
          if v < w && new_of_old.(w) >= 0 then
            Builder.add_edge b a new_of_old.(w))
        g v)
    old_of_new;
  (Builder.graph b, old_of_new)

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: bad permutation";
  let seen = Array.make g.n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= g.n || seen.(v) then
        invalid_arg "Graph.relabel: not a permutation";
      seen.(v) <- true)
    perm;
  let src, dst, m = arcs_of g in
  for i = 0 to m - 1 do
    src.(i) <- perm.(src.(i));
    dst.(i) <- perm.(dst.(i))
  done;
  of_arcs g.n src dst m

let nodes g = List.init g.n (fun i -> i)

let fold_nodes f g init =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f v !acc
  done;
  !acc

let min_degree g =
  if g.n = 0 then 0 else fold_nodes (fun v m -> min m (degree g v)) g max_int

let max_degree g = fold_nodes (fun v m -> max m (degree g v)) g 0

let degree_counts g =
  let tbl = Hashtbl.create 8 in
  for v = 0 to g.n - 1 do
    let d = degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort Stdlib.compare

(* Connected component of [start] via BFS. *)
let component_of g start =
  check_node g start;
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add start queue;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    acc := v :: !acc;
    iter_neighbors
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
      g v
  done;
  List.sort Stdlib.compare !acc

let components g =
  let seen = Array.make g.n false in
  let comps = ref [] in
  for v = 0 to g.n - 1 do
    if not seen.(v) then begin
      let comp = component_of g v in
      List.iter (fun w -> seen.(w) <- true) comp;
      comps := comp :: !comps
    end
  done;
  List.rev !comps

let is_connected g =
  g.n <= 1
  ||
  (* single BFS; avoids materializing every component *)
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  seen.(0) <- true;
  Queue.add 0 queue;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    iter_neighbors
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          incr count;
          Queue.add w queue
        end)
      g v
  done;
  !count = g.n

let is_cycle g =
  g.n >= 3 && is_connected g
  && fold_nodes (fun v ok -> ok && degree g v = 2) g true

let is_path_graph g =
  g.n >= 1 && is_connected g && size g = g.n - 1
  && fold_nodes (fun v ok -> ok && degree g v <= 2) g true

let is_tree g = is_connected g && size g = g.n - 1

(* The CSR form is canonical (rows sorted, deduplicated), so structural
   equality is plain array equality. *)
let equal g h = g.n = h.n && g.offsets = h.offsets && g.adj = h.adj

(* Preserves the historical order: by node count, then by the [(u, v)],
   [u < v], lexicographically sorted edge list — which is exactly the
   CSR iteration order — with a shorter list comparing below any
   extension of it. *)
let compare g h =
  match Stdlib.compare g.n h.n with
  | 0 ->
      let eg = edges g and eh = edges h in
      Stdlib.compare eg eh
  | c -> c

(* Brute-force isomorphism: backtracking on degree-compatible mappings.
   Fine for the small graphs used in enumeration and tests. *)
let isomorphic g h =
  if g.n <> h.n || size g <> size h then false
  else if List.sort Stdlib.compare (List.map snd (degree_counts g))
          <> List.sort Stdlib.compare (List.map snd (degree_counts h))
          || degree_counts g <> degree_counts h
  then false
  else begin
    let n = g.n in
    let image = Array.make n (-1) in
    let used = Array.make n false in
    let consistent u x =
      (* mapping u -> x must preserve adjacency with already-mapped nodes *)
      degree g u = degree h x
      && List.for_all
           (fun w ->
             image.(w) = -1 || mem_edge h x image.(w) = mem_edge g u w)
           (nodes g)
    in
    let rec go u =
      if u = n then true
      else
        let rec try_images x =
          if x = n then false
          else if (not used.(x)) && consistent u x then begin
            image.(u) <- x;
            used.(x) <- true;
            if go (u + 1) then true
            else begin
              image.(u) <- -1;
              used.(x) <- false;
              try_images (x + 1)
            end
          end
          else try_images (x + 1)
        in
        try_images 0
    in
    go 0
  end

let pp ppf g =
  Format.fprintf ppf "@[<h>graph(n=%d; %a)@]" g.n
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges g)

let to_string g = Format.asprintf "%a" pp g

let to_dot ?(name = "G") ?label g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to g.n - 1 do
    let lbl = match label with None -> string_of_int v | Some f -> f v in
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" v lbl)
  done;
  iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
