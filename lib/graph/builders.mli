(** Generators for the graph families used throughout the paper. *)

val path : int -> Graph.t
(** [path n]: the simple path on [n] nodes [0 - 1 - ... - n-1]. *)

val cycle : int -> Graph.t
(** [cycle n]: the cycle [0 - 1 - ... - n-1 - 0]; requires [n >= 3]. *)

val star : int -> Graph.t
(** [star k]: node 0 joined to [k] leaves (order [k+1]). *)

val complete : int -> Graph.t
(** [complete n]: the clique K_n. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b]: K_{a,b}; part one is [0..a-1]. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]: the rows x cols king-free grid; node [(i,j)] is
    [i * cols + j]. *)

val torus : int -> int -> Graph.t
(** [torus rows cols]: grid with wraparound; requires both >= 3. *)

val hypercube : int -> Graph.t
(** [hypercube d]: the d-dimensional hypercube on [2^d] nodes. *)

val binary_tree : int -> Graph.t
(** [binary_tree depth]: complete binary tree of the given depth
    (depth 0 = single node). *)

val caterpillar : int -> int -> Graph.t
(** [caterpillar spine legs]: a path of [spine] nodes, each with [legs]
    pendant leaves. *)

val watermelon : int list -> Graph.t
(** [watermelon lengths]: the watermelon graph (Sec. 7.2) on two
    endpoints joined by disjoint paths of the given lengths (edge
    counts); each length must be >= 2. Endpoint v1 is node 0,
    endpoint v2 is node 1; internal path nodes follow. *)

val theta : int -> int -> int -> Graph.t
(** [theta a b c]: the theta graph = watermelon with three paths. *)

val book : int -> Graph.t
(** [book k]: k triangles sharing a common edge (0,1). *)

val friendship : int -> Graph.t
(** [friendship k]: k triangles sharing the single node 0. *)

val barbell : int -> Graph.t
(** [barbell k]: two K_k cliques joined by a single edge. *)

val petersen : unit -> Graph.t
(** The Petersen graph (3-regular, girth 5, not bipartite). *)

val pendant : Graph.t -> int -> Graph.t
(** [pendant g v]: [g] with a fresh degree-1 node attached to [v]
    (the new node has index [order g]). Puts the result in the paper's
    class H1 (min degree 1) when [g] had min degree >= 1. *)

val double_cover : Graph.t -> Graph.t
(** Bipartite double cover [G x K2] on [2 * order g] nodes: node
    [(v, side)] is [v + side * order g], and every edge [{u,v}] lifts
    to [{u0,v1}] and [{v0,u1}]. Always bipartite; connected iff [g] is
    connected and non-bipartite. This is how the sampled workload
    derives a yes-instance for the 2-coloring decoders from an
    arbitrary random graph. O(n + m). *)

val random_gnp : Random.State.t -> int -> float -> Graph.t
(** Erdos-Renyi G(n, p). Quadratic pair scan; for large sparse
    instances use {!Random_graphs.gnp} (skip sampling, O(n + m)). *)

val random_bipartite : Random.State.t -> int -> int -> float -> Graph.t
(** Random bipartite graph with parts of the given sizes; each cross
    edge present independently with probability [p]. *)

val random_tree : Random.State.t -> int -> Graph.t
(** Uniform random labeled tree (random attachment). *)

val random_connected : Random.State.t -> int -> float -> Graph.t
(** Random tree plus G(n,p) noise: connected by construction. *)

val of_spec : string -> (Graph.t, string) result
(** Parse the textual graph-spec grammar shared by the [lcp] CLI and
    the serve protocol — [FAMILY[:ARGS]], e.g. ["cycle:5"],
    ["grid:3x4"], ["petersen"]; see {!spec_syntax} for the full
    listing. The error carries a human-readable message. *)

val spec_syntax : string
(** One-line summary of every accepted spec form, for usage errors. *)
