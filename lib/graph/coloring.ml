let is_proper g colors =
  Array.length colors = Graph.order g
  && Graph.fold_edges (fun u v ok -> ok && colors.(u) <> colors.(v)) g true

let is_proper_k g ~k colors =
  is_proper g colors && Array.for_all (fun c -> c >= 0 && c < k) colors

let two_color g =
  let n = Graph.order g in
  let colors = Array.make n (-1) in
  let ok = ref true in
  for start = 0 to n - 1 do
    if !ok && colors.(start) = -1 then begin
      colors.(start) <- 0;
      let queue = Queue.create () in
      Queue.add start queue;
      while !ok && not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Graph.iter_neighbors
          (fun w ->
            if colors.(w) = -1 then begin
              colors.(w) <- 1 - colors.(v);
              Queue.add w queue
            end
            else if colors.(w) = colors.(v) then ok := false)
          g v
      done
    end
  done;
  if !ok then Some colors else None

let is_bipartite g = two_color g <> None

(* BFS 2-coloring with parent pointers; on a conflict edge {u,v} (same
   color), walk both parent chains to their meeting point: the two
   partial paths plus the edge form an odd cycle. *)
let odd_cycle g =
  let n = Graph.order g in
  let colors = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let conflict = ref None in
  for start = 0 to n - 1 do
    if !conflict = None && colors.(start) = -1 then begin
      colors.(start) <- 0;
      let queue = Queue.create () in
      Queue.add start queue;
      while !conflict = None && not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Graph.iter_neighbors
          (fun w ->
            if !conflict = None then
              if colors.(w) = -1 then begin
                colors.(w) <- 1 - colors.(v);
                parent.(w) <- v;
                Queue.add w queue
              end
              else if colors.(w) = colors.(v) then conflict := Some (v, w))
          g v
      done
    end
  done;
  match !conflict with
  | None -> None
  | Some (u, v) ->
      let rec ancestors x acc = if x = -1 then acc else ancestors parent.(x) (x :: acc) in
      let pu = ancestors u [] and pv = ancestors v [] in
      (* drop the common prefix, keep the last common node *)
      let rec split pu pv common =
        match (pu, pv) with
        | a :: pu', b :: pv' when a = b -> split pu' pv' (Some a)
        | _ -> (common, pu, pv)
      in
      let common, tail_u, tail_v = split pu pv None in
      let apex = match common with Some a -> a | None -> assert false in
      (* cycle: apex .. u  then  v .. back-to just-after-apex *)
      Some ((apex :: tail_u) @ List.rev tail_v)

let odd_closed_walk_check g walk =
  match walk with
  | [] | [ _ ] -> false
  | first :: _ ->
      let rec edges_ok = function
        | a :: (b :: _ as rest) -> Graph.mem_edge g a b && edges_ok rest
        | [ last ] -> Graph.mem_edge g last first
        | [] -> true
      in
      List.length walk mod 2 = 1 && edges_ok walk

(* Backtracking colorer for one connected component (node list), writing
   into [colors]. Components are solved independently — a failure in one
   must not trigger re-exploration of another. *)
let color_component g ~k colors comp =
  (* BFS order within the component keeps constrained nodes adjacent *)
  let order = Array.of_list comp in
  let m = Array.length order in
  let feasible v c = Graph.for_all_neighbors (fun w -> colors.(w) <> c) g v in
  let rec go i used =
    if i = m then true
    else begin
      let v = order.(i) in
      (* symmetry breaking: never introduce color c before c-1 is used *)
      let limit = min (k - 1) (used + 1) in
      let rec try_color c =
        if c > limit then false
        else if feasible v c then begin
          colors.(v) <- c;
          if go (i + 1) (max used c) then true
          else begin
            colors.(v) <- -1;
            try_color (c + 1)
          end
        end
        else try_color (c + 1)
      in
      try_color 0
    end
  in
  go 0 (-1)

let k_color g ~k =
  let n = Graph.order g in
  if n = 0 then Some [||]
  else if k <= 0 then None
  else if k = 1 then if Graph.size g = 0 then Some (Array.make n 0) else None
  else if k = 2 then two_color g
  else begin
    let colors = Array.make n (-1) in
    if List.for_all (color_component g ~k colors) (Graph.components g) then Some colors
    else None
  end

let is_k_colorable g ~k = k_color g ~k <> None

let chromatic_number g =
  if Graph.order g = 0 then 0
  else begin
    let rec find k = if is_k_colorable g ~k then k else find (k + 1) in
    find 1
  end

let greedy g =
  let n = Graph.order g in
  let colors = Array.make n (-1) in
  (* forbidden.(c) marks colors used by already-colored neighbors; at
     most deg(v) <= n-1 of them, so the first free color is < n and a
     single bool scratch array replaces the O(deg^2) List.mem scan *)
  let forbidden = Array.make (max n 1) false in
  for v = 0 to n - 1 do
    Graph.iter_neighbors
      (fun w -> if colors.(w) >= 0 then forbidden.(colors.(w)) <- true)
      g v;
    let c = ref 0 in
    while forbidden.(!c) do
      incr c
    done;
    colors.(v) <- !c;
    Graph.iter_neighbors
      (fun w -> if colors.(w) >= 0 then forbidden.(colors.(w)) <- false)
      g v
  done;
  colors
