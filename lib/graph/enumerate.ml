let edge_slots n =
  let acc = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      acc := (u, v) :: !acc
    done
  done;
  !acc

let iter_graphs n f =
  let slots = Array.of_list (edge_slots n) in
  let m = Array.length slots in
  if m > 30 then invalid_arg "Enumerate.iter_graphs: order too large";
  for mask = 0 to (1 lsl m) - 1 do
    let es = ref [] in
    for i = 0 to m - 1 do
      if mask land (1 lsl i) <> 0 then es := slots.(i) :: !es
    done;
    f (Graph.of_edges n !es)
  done

let iter_connected n f =
  iter_graphs n (fun g -> if Graph.is_connected g then f g)

(* Streaming isomorphism dedup: bucket by cheap invariants first, then
   pairwise isomorphism within the bucket. First-seen wins, so on
   mask-ordered input the representative is the minimal-mask member. *)
let dedup_iso () =
  let invariant g = (Graph.order g, Graph.size g, Graph.degree_counts g) in
  let buckets = Hashtbl.create 64 in
  let out = ref [] in
  let push g =
    let key = invariant g in
    let reps = Option.value ~default:[] (Hashtbl.find_opt buckets key) in
    if not (List.exists (fun h -> Graph.isomorphic g h) reps) then begin
      Hashtbl.replace buckets key (g :: reps);
      out := g :: !out
    end
  in
  let listing () = List.rev !out in
  (push, listing)

let up_to_iso graphs =
  let push, listing = dedup_iso () in
  List.iter push graphs;
  listing ()

let connected_up_to_iso n =
  let push, listing = dedup_iso () in
  iter_connected n push;
  listing ()

let non_bipartite graphs = List.filter (fun g -> not (Coloring.is_bipartite g)) graphs
let bipartite graphs = List.filter Coloring.is_bipartite graphs

let count_graphs n = 1 lsl (n * (n - 1) / 2)
