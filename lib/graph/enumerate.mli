(** Exhaustive enumeration of small graphs.

    The soundness theorems quantify over {e every} graph; on small
    orders we can check them literally. All functions here enumerate
    {e labeled} graphs on nodes [0 .. n-1], in ascending edge-mask
    order (the mask assigns bit [i] to the [i]-th pair [(u, v)],
    [u < v], in lexicographic order).

    The streaming iterators are the only whole-space API: they visit
    the 2^(n choose 2) labeled graphs one at a time without
    materializing the list, which is the only shape that survives past
    [n = 5]. (The historical [all_graphs] / [connected_graphs] list
    builders are gone — fold over {!iter_graphs} / {!iter_connected}
    instead.) For whole-space sweeps with isomorphism dedup,
    parallelism and caching, use [Lcp_engine.Sweep], which reproduces
    these orders and representative choices exactly. *)

(** {1 Streaming (primary)} *)

val iter_graphs : int -> (Graph.t -> unit) -> unit
(** Visit every labeled graph on [n] nodes in ascending mask order,
    without materializing the list. *)

val iter_connected : int -> (Graph.t -> unit) -> unit
(** Like {!iter_graphs}, restricted to connected graphs. *)

val count_graphs : int -> int
(** [2^(n choose 2)], for sanity checks. *)

(** {1 Isomorphism dedup (brute force)} *)

val up_to_iso : Graph.t list -> Graph.t list
(** One representative per isomorphism class: the first seen, so on
    mask-ordered input the minimal-mask member (order preserved).
    Pairwise brute force over invariant buckets — quadratic in the
    class count; [Lcp_engine.Canon] does the same dedup via canonical
    hashing in linear time. *)

val connected_up_to_iso : int -> Graph.t list
(** Connected graphs on [n] nodes up to isomorphism (minimal-mask
    representatives), deduplicated on the fly over {!iter_connected} —
    peak memory is one representative per class, not the labeled
    space. Brute force — keep [n <= 6]; for larger orders use
    [Lcp_engine.Sweep.iso_classes], which returns the identical
    listing, cached and in parallel. *)

val non_bipartite : Graph.t list -> Graph.t list
val bipartite : Graph.t list -> Graph.t list

(** {1 Class listings (delegating)} *)

val classes : ?connected:bool -> int -> Graph.t list
(** One minimal-mask representative per isomorphism class on [n]
    nodes, ascending mask order ([connected] defaults to [true]).
    Served by the registered generator when one is installed —
    [Lcp_engine.Sweep] registers its cached orderly generator at
    module init, making this the cheap front door to class listings —
    and by {!brute_classes} otherwise. Either way the listing is
    bit-identical; only the cost differs. *)

val iter_classes : ?connected:bool -> int -> (Graph.t -> unit) -> unit
(** [List.iter] over {!classes} — streaming shape for symmetry with
    {!iter_graphs}; the listing itself is small (one rep per class). *)

val brute_classes : connected:bool -> int -> Graph.t list
(** The generator-free fallback behind {!classes}: {!dedup_iso} over
    the full mask-ordered labeled space. Exponential — keep [n <= 6].
    Exposed (like {!connected_up_to_iso}) as the independent oracle
    the engine's enumerators are cross-validated against. *)

val set_class_generator : (connected:bool -> int -> Graph.t list) -> unit
(** Install the generator behind {!classes}. The engine calls this at
    init; the contract is exact equality with {!brute_classes} output
    (same representatives, same order). Last registration wins. *)
