let path n =
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Builders.cycle: need n >= 3";
  Graph.of_edges n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star k = Graph.of_edges (k + 1) (List.init k (fun i -> (0, i + 1)))

let complete n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.of_edges n !es

let complete_bipartite a b =
  let es = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.of_edges (a + b) !es

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Builders.grid: need positive dims";
  let idx i j = (i * cols) + j in
  let es = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then es := (idx i j, idx i (j + 1)) :: !es;
      if i + 1 < rows then es := (idx i j, idx (i + 1) j) :: !es
    done
  done;
  Graph.of_edges (rows * cols) !es

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Builders.torus: need dims >= 3";
  let idx i j = (i * cols) + j in
  let es = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      es := (idx i j, idx i ((j + 1) mod cols)) :: !es;
      es := (idx i j, idx ((i + 1) mod rows) j) :: !es
    done
  done;
  Graph.of_edges (rows * cols) !es

let hypercube d =
  if d < 0 then invalid_arg "Builders.hypercube: negative dimension";
  let n = 1 lsl d in
  let es = ref [] in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then es := (v, w) :: !es
    done
  done;
  Graph.of_edges n !es

let binary_tree depth =
  if depth < 0 then invalid_arg "Builders.binary_tree: negative depth";
  let n = (1 lsl (depth + 1)) - 1 in
  let es = ref [] in
  for v = 0 to n - 1 do
    let l = (2 * v) + 1 and r = (2 * v) + 2 in
    if l < n then es := (v, l) :: !es;
    if r < n then es := (v, r) :: !es
  done;
  Graph.of_edges n !es

let caterpillar spine legs =
  if spine < 1 || legs < 0 then invalid_arg "Builders.caterpillar";
  let es = ref (List.init (spine - 1) (fun i -> (i, i + 1))) in
  let next = ref spine in
  for v = 0 to spine - 1 do
    for _ = 1 to legs do
      es := (v, !next) :: !es;
      incr next
    done
  done;
  Graph.of_edges !next !es

let watermelon lengths =
  if lengths = [] then invalid_arg "Builders.watermelon: no paths";
  List.iter
    (fun l -> if l < 2 then invalid_arg "Builders.watermelon: path length < 2")
    lengths;
  let next = ref 2 in
  let es = ref [] in
  let add_path len =
    (* len edges: 0 - x1 - ... - x(len-1) - 1 *)
    let first = !next in
    next := !next + (len - 1);
    es := (0, first) :: !es;
    for i = 0 to len - 3 do
      es := (first + i, first + i + 1) :: !es
    done;
    es := (first + len - 2, 1) :: !es
  in
  List.iter add_path lengths;
  Graph.of_edges !next !es

let theta a b c = watermelon [ a; b; c ]

let book k =
  let es = ref [ (0, 1) ] in
  for i = 0 to k - 1 do
    es := (0, 2 + i) :: (1, 2 + i) :: !es
  done;
  Graph.of_edges (k + 2) !es

let friendship k =
  let es = ref [] in
  for i = 0 to k - 1 do
    let a = 1 + (2 * i) and b = 2 + (2 * i) in
    es := (0, a) :: (0, b) :: (a, b) :: !es
  done;
  Graph.of_edges ((2 * k) + 1) !es

let barbell k =
  if k < 3 then invalid_arg "Builders.barbell: need k >= 3";
  let g = Graph.disjoint_union (complete k) (complete k) in
  Graph.add_edge g (k - 1) k

let petersen () =
  Graph.of_edges 10
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);     (* outer 5-cycle *)
      (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);     (* inner 5-star *)
      (0, 5); (1, 6); (2, 7); (3, 8); (4, 9) ]    (* spokes *)

let pendant g v =
  let n = Graph.order g in
  Graph.of_edges (n + 1) ((v, n) :: Graph.edges g)

let double_cover g =
  (* bipartite double cover G x K2: node (v, side) is v + side * n;
     every edge {u,v} of G lifts to {u0,v1} and {v0,u1} *)
  let n = Graph.order g in
  let b = Graph.Builder.create ~size_hint:(2 * Graph.size g) (2 * n) in
  Graph.iter_edges
    (fun u v ->
      Graph.Builder.add_edge b u (v + n);
      Graph.Builder.add_edge b v (u + n))
    g;
  Graph.Builder.graph b

let random_gnp rng n p =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then es := (u, v) :: !es
    done
  done;
  Graph.of_edges n !es

let random_bipartite rng a b p =
  let es = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      if Random.State.float rng 1.0 < p then es := (u, v) :: !es
    done
  done;
  Graph.of_edges (a + b) !es

let random_tree rng n =
  let es = ref [] in
  for v = 1 to n - 1 do
    es := (Random.State.int rng v, v) :: !es
  done;
  Graph.of_edges n !es

let random_connected rng n p =
  let t = random_tree rng n in
  let extra = random_gnp rng n p in
  Graph.of_edges n (Graph.edges t @ Graph.edges extra)

(* ------------------------------------------------------------------ *)
(* the textual graph-spec grammar shared by the CLI and the serve
   protocol: FAMILY[:ARGS], e.g. "cycle:5", "grid:3x4", "petersen" *)

let spec_syntax =
  "path:N cycle:N star:N complete:N grid:RxC torus:RxC hypercube:D tree:D \
   watermelon:L1,L2,... theta:A,B,C petersen caterpillar:SxL"

let of_spec spec =
  let dims s =
    match String.split_on_char 'x' s with
    | [ a; b ] -> (int_of_string a, int_of_string b)
    | _ -> failwith "expected ROWSxCOLS"
  in
  let ints s = List.map int_of_string (String.split_on_char ',' s) in
  try
    Ok
      (match String.split_on_char ':' spec with
      | [ "path"; n ] -> path (int_of_string n)
      | [ "cycle"; n ] -> cycle (int_of_string n)
      | [ "star"; n ] -> star (int_of_string n)
      | [ "complete"; n ] -> complete (int_of_string n)
      | [ "grid"; d ] ->
          let r, c = dims d in
          grid r c
      | [ "torus"; d ] ->
          let r, c = dims d in
          torus r c
      | [ "hypercube"; d ] -> hypercube (int_of_string d)
      | [ "tree"; d ] -> binary_tree (int_of_string d)
      | [ "watermelon"; ls ] -> watermelon (ints ls)
      | [ "theta"; ls ] -> (
          match ints ls with
          | [ a; b; c ] -> theta a b c
          | _ -> failwith "theta:A,B,C")
      | [ "petersen" ] -> petersen ()
      | [ "caterpillar"; d ] ->
          let s, l = dims d in
          caterpillar s l
      | _ -> failwith ("unknown graph family; try " ^ spec_syntax))
  with
  | Failure msg ->
      Error (Printf.sprintf "bad graph spec %S: %s" spec msg)
  | Invalid_argument msg ->
      Error (Printf.sprintf "bad graph spec %S: %s" spec msg)
