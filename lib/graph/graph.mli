(** Simple finite undirected graphs.

    Nodes are the integers [0 .. n-1]. Graphs are immutable once built;
    all "mutating" operations return fresh graphs. Parallel edges are
    disallowed; self-loops are disallowed (the paper allows loops in
    principle but never uses them, and a loop makes a graph trivially
    non-2-colorable, so we reject them at construction).

    Internally a graph is a flat CSR adjacency: an [offsets] array of
    [n + 1] row starts into one flat neighbor array, built once at
    construction. Each row is strictly ascending, which is exactly the
    order the historical sorted-neighbor-list representation exposed:
    {b port order = CSR row order = ascending neighbor id}. [View],
    [Port.canonical] and the lint machinery rely on that contract.
    Traversal goes through the allocation-free [iter_neighbors] /
    [fold_neighbors] family; the list accessors remain as derived
    conveniences for small graphs. *)

type t
(** An undirected graph. *)

(** {1 Construction} *)

val empty : int -> t
(** [empty n] is the edgeless graph on [n] nodes.
    @raise Invalid_argument if [n < 0]. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on [n] nodes with the given edge
    list. Duplicate edges (in either orientation) are collapsed. The
    build is O(n + m) (counting sort, no per-node list sorting).
    @raise Invalid_argument on out-of-range endpoints or self-loops. *)

(** Incremental O(n + m) construction without intermediate edge lists;
    this is what the large random-graph generators feed. Arcs accumulate
    in growable int arrays and the CSR is built once by [graph]. *)
module Builder : sig
  type graph := t

  type t
  (** A mutable edge accumulator for a graph of fixed order. *)

  val create : ?size_hint:int -> int -> t
  (** [create n] starts a builder for a graph on [n] nodes;
      [size_hint] pre-sizes the arc buffer (in edges).
      @raise Invalid_argument if [n < 0]. *)

  val add_edge : t -> int -> int -> unit
  (** Record one undirected edge; duplicates are collapsed at [graph]
      time. @raise Invalid_argument on out-of-range endpoints or
      self-loops. *)

  val edge_count : t -> int
  (** Number of edges recorded so far (before deduplication). *)

  val graph : t -> graph
  (** Freeze into a graph; the builder stays usable afterwards. *)
end

val add_edge : t -> int -> int -> t
(** [add_edge g u v] is [g] with the edge [{u,v}] added (no-op if the
    edge is already present).
    @raise Invalid_argument on out-of-range endpoints or [u = v]. *)

val remove_edge : t -> int -> int -> t
(** [remove_edge g u v] is [g] without the edge [{u,v}] (no-op if
    absent). *)

val disjoint_union : t -> t -> t
(** [disjoint_union g h] places [h] next to [g]; nodes of [h] are
    shifted by [order g]. O(n + m): rows are concatenated directly. *)

val induced : t -> int list -> t * int array
(** [induced g nodes] is the subgraph of [g] induced by [nodes]
    (duplicates ignored, order preserved), together with the array
    mapping new indices to the original node ids. *)

val relabel : t -> int array -> t
(** [relabel g perm] renames node [v] to [perm.(v)]; [perm] must be a
    permutation of [0 .. order g - 1]. *)

(** {1 Observation}

    The [iter]/[fold]/[exists]/[nth] family traverses the flat CSR rows
    without allocating; prefer it everywhere outside tests and
    small-graph conveniences. Neighbors are always visited in ascending
    id order — the port order. *)

val order : t -> int
(** Number of nodes. *)

val size : t -> int
(** Number of edges. O(1). *)

val degree : t -> int -> int
(** O(1): offset delta. *)

val iter_neighbors : (int -> unit) -> t -> int -> unit
(** [iter_neighbors f g v] applies [f] to each neighbor of [v] in
    ascending order. Allocation-free. *)

val iteri_neighbors : (int -> int -> unit) -> t -> int -> unit
(** [iteri_neighbors f g v] applies [f i w] for the [i]-th neighbor [w]
    of [v] ([i] counts from 0 in port order). *)

val fold_neighbors : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a
(** [fold_neighbors f g v init] folds [f] over the neighbors of [v] in
    ascending order. *)

val exists_neighbor : (int -> bool) -> t -> int -> bool
(** [exists_neighbor p g v] is [true] iff some neighbor of [v]
    satisfies [p]; short-circuits. *)

val for_all_neighbors : (int -> bool) -> t -> int -> bool
(** [for_all_neighbors p g v] is [true] iff every neighbor of [v]
    satisfies [p]; short-circuits. *)

val find_neighbor : (int -> bool) -> t -> int -> int option
(** First neighbor (in ascending order) satisfying the predicate. *)

val nth_neighbor : t -> int -> int -> int
(** [nth_neighbor g v i] is the [i]-th neighbor of [v] in port order,
    [0 <= i < degree g v]. O(1).
    @raise Invalid_argument if [i] is out of range. *)

val neighbor_rank : t -> int -> int -> int option
(** [neighbor_rank g v w] is [Some i] iff [w] is the [i]-th neighbor of
    [v] (so [nth_neighbor g v i = w]); [None] if the edge is absent.
    O(log degree) by binary search on the sorted row. *)

val mem_edge : t -> int -> int -> bool
(** O(log degree). *)

val neighbors : t -> int -> int list
(** Sorted list of neighbors, freshly allocated per call.

    Deprecated as a traversal primitive: small-n convenience only.
    Hot paths must use [iter_neighbors] / [fold_neighbors] /
    [nth_neighbor] instead — this accessor materializes a list per
    query and is kept only for tests, printing and small-graph
    glue. *)

val neighbors_array : t -> int -> int array
(** Neighbors of [v] in port order as a fresh array (one [Array.sub]
    of the flat row; no per-element allocation). *)

val edges : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v], lexicographically
    sorted. *)

val nodes : t -> int list
(** [0 .. n-1]. *)

val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (int -> int -> unit) -> t -> unit

val min_degree : t -> int
(** Minimum degree; [0] for the empty (0-node) graph. *)

val max_degree : t -> int
(** Maximum degree; [0] for the empty graph. *)

val degree_counts : t -> (int * int) list
(** [(d, count)] pairs, sorted by degree. *)

(** {1 Structure} *)

val is_connected : t -> bool
(** True for the 0- and 1-node graphs. *)

val components : t -> int list list
(** Connected components as sorted node lists, sorted by minimum
    element. *)

val component_of : t -> int -> int list
(** Sorted node list of the component containing the given node. *)

val is_cycle : t -> bool
(** Is [g] a single cycle (connected, 2-regular, n >= 3)? *)

val is_path_graph : t -> bool
(** Is [g] a single simple path on >= 1 nodes? *)

val is_tree : t -> bool
(** Connected and acyclic. *)

val equal : t -> t -> bool
(** Structural equality (same node count and edge set). O(n + m):
    the CSR form is canonical, so this is array equality. *)

val compare : t -> t -> int

val isomorphic : t -> t -> bool
(** Brute-force isomorphism test; intended for small graphs only. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_dot : ?name:string -> ?label:(int -> string) -> t -> string
(** GraphViz rendering; [label] overrides the per-node label. *)
