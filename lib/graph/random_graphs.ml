(* Seeded generators sized for the 10^5..10^6-node sampled workload.
   Everything is O(n + m) and deterministic in the supplied RNG state:
   same seed => identical edge sets, on any machine. *)

let gnp rng n ~p =
  if n < 0 then invalid_arg "Random_graphs.gnp: negative order";
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Random_graphs.gnp: p outside [0,1]";
  let expected =
    int_of_float (p *. float_of_int n *. float_of_int (max 0 (n - 1)) /. 2.)
  in
  let b = Graph.Builder.create ~size_hint:(expected + 16) n in
  if p >= 1. then
    for v = 1 to n - 1 do
      for w = 0 to v - 1 do
        Graph.Builder.add_edge b w v
      done
    done
  else if p > 0. && n > 1 then begin
    (* Batagelj-Brandes skip sampling: walk the lower-triangle pairs
       (w, v), w < v, in lexicographic order with geometric jumps, so
       the cost is proportional to the number of edges drawn rather
       than the n(n-1)/2 pairs. *)
    let lq = log (1. -. p) in
    let v = ref 1 and w = ref (-1) in
    let continue = ref true in
    while !continue do
      let u = Random.State.float rng 1.0 in
      let skip = int_of_float (log (1. -. u) /. lq) in
      w := !w + 1 + skip;
      while !v < n && !w >= !v do
        w := !w - !v;
        incr v
      done;
      if !v >= n then continue := false
      else Graph.Builder.add_edge b !w !v
    done
  end;
  Graph.Builder.graph b

let gnp_avg_degree rng n ~avg_degree =
  if avg_degree < 0. then
    invalid_arg "Random_graphs.gnp_avg_degree: negative average degree";
  let p = if n <= 1 then 0. else min 1. (avg_degree /. float_of_int (n - 1)) in
  gnp rng n ~p

let preferential_attachment rng n ~m =
  if m < 1 then invalid_arg "Random_graphs.preferential_attachment: need m >= 1";
  if n < m + 1 then
    invalid_arg "Random_graphs.preferential_attachment: need n >= m + 1";
  let seed_edges = m * (m + 1) / 2 in
  let total_edges = seed_edges + ((n - m - 1) * m) in
  let b = Graph.Builder.create ~size_hint:total_edges n in
  (* the endpoint multiset: each edge contributes both ends, so drawing
     a uniform entry is drawing a node with probability proportional to
     its degree — the classic Barabasi-Albert power-law mechanism *)
  let reps = Array.make (2 * total_edges) 0 in
  let len = ref 0 in
  let push x =
    reps.(!len) <- x;
    incr len
  in
  for u = 0 to m do
    for v = u + 1 to m do
      Graph.Builder.add_edge b u v;
      push u;
      push v
    done
  done;
  let targets = Array.make m 0 in
  for v = m + 1 to n - 1 do
    let chosen = ref 0 in
    while !chosen < m do
      let t = reps.(Random.State.int rng !len) in
      let dup = ref false in
      for i = 0 to !chosen - 1 do
        if targets.(i) = t then dup := true
      done;
      if not !dup then begin
        targets.(!chosen) <- t;
        incr chosen
      end
    done;
    for i = 0 to m - 1 do
      Graph.Builder.add_edge b targets.(i) v;
      push targets.(i);
      push v
    done
  done;
  Graph.Builder.graph b

let tree rng n =
  if n < 0 then invalid_arg "Random_graphs.tree: negative order";
  let b = Graph.Builder.create ~size_hint:(max (n - 1) 1) n in
  for v = 1 to n - 1 do
    Graph.Builder.add_edge b (Random.State.int rng v) v
  done;
  Graph.Builder.graph b

let grid_near n =
  if n < 1 then invalid_arg "Random_graphs.grid_near: need n >= 1";
  let rows = max 1 (int_of_float (sqrt (float_of_int n))) in
  let cols = max 1 (n / rows) in
  Builders.grid rows cols

(* ------------------------------------------------------------------ *)
(* the textual model grammar used by `lcp sample` and the bench *)

let model_syntax = "gnp[:AVG_DEGREE] ba[:M] tree grid"

let of_model rng ~nodes spec =
  try
    Ok
      (match String.split_on_char ':' spec with
      | [ "gnp" ] -> gnp_avg_degree rng nodes ~avg_degree:8.
      | [ "gnp"; d ] -> gnp_avg_degree rng nodes ~avg_degree:(float_of_string d)
      | [ "ba" ] -> preferential_attachment rng nodes ~m:4
      | [ "ba"; m ] -> preferential_attachment rng nodes ~m:(int_of_string m)
      | [ "tree" ] -> tree rng nodes
      | [ "grid" ] -> grid_near nodes
      | _ -> failwith ("unknown random-graph model; try " ^ model_syntax))
  with
  | Failure msg -> Error (Printf.sprintf "bad model spec %S: %s" spec msg)
  | Invalid_argument msg -> Error (Printf.sprintf "bad model spec %S: %s" spec msg)
