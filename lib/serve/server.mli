(** The [lcp serve] daemon: Unix-domain-socket accept loop, per-
    connection reader threads, and a worker crew draining a bounded
    {!Jobq} of admitted requests.

    Admission control: control requests (ping / metrics / shutdown)
    are answered inline by the connection thread; job requests are
    assigned a monotone id and either {e coalesced} onto an in-flight
    job with the same {!Protocol.coalesce_key} (the follower receives
    the identical final payload under its own id) or pushed to the
    queue — a full queue yields an immediate structured
    [rejected: queue_full] response, never a blocked client.

    Server counters (in the session's aggregate, reported by the
    [metrics] request): [serve/requests] (responses written),
    [serve/rejected], [serve/coalesced], [serve/expired],
    [serve/cache_warm_hits], and the [serve/queue_depth] gauge.

    While the daemon runs, {!Lcp_engine.Eval_cache} sharing is enabled
    so acceptance tables persist across requests ({!wait} disables it
    again on the way out). *)

type config = {
  socket_path : string;
  capacity : int;  (** job-queue bound; [0] refuses every job *)
  workers : int;  (** worker threads draining the queue *)
  limits : Session.limits;
  version : string;  (** reported by [ping] *)
}

val default_config : socket_path:string -> config
(** capacity 16, 1 worker, {!Session.default_limits}, version ["dev"]. *)

type t

val start : config -> t
(** Bind, listen, spawn the accept loop and workers, and return
    immediately. Replaces a stale socket file at [socket_path]; raises
    [Failure] if the path exists and is not a socket, [Unix.Unix_error]
    if it cannot bind. *)

val wait : t -> unit
(** Block until the daemon shuts down (a [shutdown] request or
    {!stop}), then join workers — queued jobs are drained first —
    disable cache sharing, and unlink the socket. *)

val stop : t -> unit
(** Initiate shutdown, as if a [shutdown] request arrived. Idempotent;
    returns immediately — follow with {!wait}. *)

val run : config -> unit
(** [start] then [wait]. *)

val session : t -> Session.t
val metrics : t -> Lcp_obs.Metrics.t
