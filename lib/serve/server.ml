(* The lcp daemon: a Unix-domain-socket accept loop, one reader thread
   per connection, and a small worker crew draining a bounded Jobq.

   Threads (not domains) do the plumbing — they block on sockets and
   the queue, which is what threads are for. The actual certification
   work inside a job still fans out over the Domain pool via the
   request's Run_cfg, so one heavy sweep uses the machine while the
   daemon stays responsive to control requests (which bypass the
   queue entirely). *)

module Json = Lcp_obs.Json
module Metrics = Lcp_obs.Metrics
module Sync = Lcp_obs.Sync

(* ------------------------------------------------------------------ *)
(* connection writers                                                  *)

(* Responses for one connection may be written by its reader thread
   (control, rejections) and by any worker thread (job results), so
   every write of a line goes through the connection's mutex. A dead
   peer (EPIPE on write) marks the writer dead and further writes
   become no-ops — the job's result is simply dropped. [alive] is a
   tracked var: only ever read or written under [wlock], and
   [lcp race] holds us to that. *)
type writer = {
  oc : out_channel;
  wlock : Sync.mutex;
  alive : bool Sync.Var.t;
}

let write_line w json =
  Sync.with_lock w.wlock (fun () ->
      if Sync.Var.get w.alive then
        try
          output_string w.oc (Json.to_string json);
          output_char w.oc '\n';
          flush w.oc
        with Sys_error _ | Unix.Unix_error _ -> Sync.Var.set w.alive false)

(* ------------------------------------------------------------------ *)
(* jobs and coalescing                                                 *)

type job = {
  id : int;
  req : Protocol.request;
  cfg : Lcp_obs.Run_cfg.t;
  writer : writer;
  key : string;
}

(* Followers of an in-flight job: same coalesce key, different request
   id (and possibly different connection). Only the primary streams
   progress events; every follower gets the final payload verbatim
   under its own id. *)
type flight = { mutable followers : (int * writer) list }

type config = {
  socket_path : string;
  capacity : int;  (** job-queue bound; [0] refuses every job *)
  workers : int;
  limits : Session.limits;
  version : string;
}

let default_config ~socket_path =
  {
    socket_path;
    capacity = 16;
    workers = 1;
    limits = Session.default_limits;
    version = "dev";
  }

type t = {
  config : config;
  session : Session.t;
  queue : job Jobq.t;
  listen_fd : Unix.file_descr;
  next_id : int Sync.A.t;
  in_flight : (string, flight) Hashtbl.t;
  flight_lock : Sync.mutex;
  flight_guard : unit Sync.Var.t;
      (* shadow var for [in_flight]: touched under [flight_lock] only *)
  shutting_down : bool Sync.A.t;
      (* written by the first shutdown, read at admission — an atomic,
         because the two sides hold different locks (or none) *)
  mutable worker_threads : Sync.thread_handle list;
  mutable accept_thread : Sync.thread_handle option;
}

let session t = t.session
let metrics t = t.session.Session.metrics

let fresh_id t = Sync.A.fetch_and_add t.next_id 1

let gauge_depth t =
  Metrics.set_gauge (metrics t) "serve/queue_depth" (Jobq.depth t.queue)

let respond t w (resp : Protocol.response) =
  write_line w (Protocol.response_to_json resp);
  Metrics.incr (metrics t) "serve/requests"

(* ------------------------------------------------------------------ *)
(* worker side                                                         *)

let finish_job t (job : job) status reason result =
  let followers =
    Sync.with_lock t.flight_lock (fun () ->
        Sync.Var.touch t.flight_guard;
        match Hashtbl.find_opt t.in_flight job.key with
        | None -> []
        | Some fl ->
            Hashtbl.remove t.in_flight job.key;
            fl.followers)
  in
  let kind = Protocol.kind_name job.req.Protocol.kind in
  respond t job.writer { Protocol.id = job.id; kind; status; reason; result };
  List.iter
    (fun (id, w) -> respond t w { Protocol.id = id; kind; status; reason; result })
    (List.rev followers)

let worker_loop t =
  let rec loop () =
    match Jobq.pop t.queue with
    | None -> ()
    | Some job ->
        gauge_depth t;
        let status, reason, result = Session.execute t.session job.req job.cfg in
        (match status with
        | Protocol.Expired -> Metrics.incr (metrics t) "serve/expired"
        | _ -> ());
        finish_job t job status reason result;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* admission                                                           *)

let reject t w ~id ~kind reason =
  Metrics.incr (metrics t) "serve/rejected";
  respond t w
    {
      Protocol.id;
      kind = Protocol.kind_name kind;
      status = Protocol.Rejected;
      reason = Some reason;
      result = Json.Null;
    }

(* A job request either joins an in-flight computation with the same
   coalesce key, or is enqueued as a new primary. The decision and the
   registration happen under one lock, so a key observed in flight is
   guaranteed to deliver to its followers. *)
let admit t w (req : Protocol.request) ~key =
  let id = fresh_id t in
  let verdict =
    Sync.with_lock t.flight_lock (fun () ->
        Sync.Var.touch t.flight_guard;
        if Sync.A.get t.shutting_down then `Rejected "shutting_down"
        else
          match Hashtbl.find_opt t.in_flight key with
          | Some fl ->
              fl.followers <- (id, w) :: fl.followers;
              `Coalesced
          | None ->
              let emit body =
                if req.Protocol.opts.Protocol.progress then
                  write_line w
                    (Protocol.event_to_json { Protocol.event_id = id; body })
              in
              let cfg = Session.cfg_of_request t.session req ~emit in
              let job = { id; req; cfg; writer = w; key } in
              if Jobq.try_push t.queue job then begin
                Hashtbl.replace t.in_flight key { followers = [] };
                `Admitted
              end
              else `Rejected "queue_full")
  in
  match verdict with
  | `Admitted -> gauge_depth t
  | `Coalesced -> Metrics.incr (metrics t) "serve/coalesced"
  | `Rejected reason -> reject t w ~id ~kind:req.Protocol.kind reason

(* ------------------------------------------------------------------ *)
(* shutdown                                                            *)

let initiate_shutdown t =
  let first = Sync.A.compare_and_set t.shutting_down false true in
  if first then begin
    Jobq.close t.queue;
    (* wakes the accept loop out of its blocking accept *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* connection side                                                     *)

let handle_control t w (req : Protocol.request) =
  let id = fresh_id t in
  let ok result =
    respond t w
      {
        Protocol.id;
        kind = Protocol.kind_name req.Protocol.kind;
        status = Protocol.Done;
        reason = None;
        result;
      }
  in
  match req.Protocol.kind with
  | Protocol.Ping -> ok (Session.ping_payload t.session)
  | Protocol.Metrics -> ok (Session.metrics_payload t.session)
  | Protocol.Shutdown ->
      ok (Json.Obj [ ("ok", Json.Bool true) ]);
      initiate_shutdown t
  | _ -> assert false

let handle_line t w line =
  match Json.of_string line with
  | Error msg ->
      respond t w
        {
          Protocol.id = fresh_id t;
          kind = "unknown";
          status = Protocol.Failed;
          reason = Some ("bad json: " ^ msg);
          result = Json.Null;
        }
  | Ok json -> (
      match Protocol.request_of_json json with
      | Error msg ->
          respond t w
            {
              Protocol.id = fresh_id t;
              kind = "unknown";
              status = Protocol.Failed;
              reason = Some ("bad request: " ^ msg);
              result = Json.Null;
            }
      | Ok req ->
          if Protocol.is_control req.Protocol.kind then handle_control t w req
          else
            let key = Option.get (Protocol.coalesce_key req) in
            admit t w req ~key)

let connection_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let w =
    {
      oc = Unix.out_channel_of_descr fd;
      wlock = Sync.mutex "serve/writer";
      alive = Sync.Var.make "serve/writer.alive" true;
    }
  in
  let rec loop () =
    match input_line ic with
    | line ->
        if String.trim line <> "" then handle_line t w line;
        loop ()
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
  in
  loop ();
  Sync.with_lock w.wlock (fun () -> Sync.Var.set w.alive false);
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        (* fire-and-forget: the handle is dropped, the reader thread
           dies with its connection *)
        ignore (Sync.spawn "serve/conn" (fun () -> connection_loop t fd));
        loop ()
    | exception Unix.Unix_error _ -> ()
    (* listen fd closed: shutdown *)
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* lifecycle                                                           *)

let start config =
  (match Unix.stat config.socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink config.socket_path
  | _ -> failwith (config.socket_path ^ " exists and is not a socket")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 16;
  let t =
    {
      config;
      session = Session.create ~limits:config.limits ~version:config.version ();
      queue = Jobq.create ~capacity:config.capacity;
      listen_fd;
      next_id = Sync.A.make "serve/next_id" 1;
      in_flight = Hashtbl.create 16;
      flight_lock = Sync.mutex "serve/flight";
      flight_guard = Sync.Var.make "serve/flight.table" ();
      shutting_down = Sync.A.make "serve/shutting_down" false;
      worker_threads = [];
      accept_thread = None;
    }
  in
  (* share acceptance tables across requests for the daemon's lifetime *)
  Lcp_engine.Eval_cache.set_sharing true;
  t.worker_threads <-
    List.init (max 1 config.workers) (fun _ ->
        Sync.spawn "serve/worker" (fun () -> worker_loop t));
  t.accept_thread <- Some (Sync.spawn "serve/accept" (fun () -> accept_loop t));
  t

let wait t =
  Option.iter Sync.join t.accept_thread;
  List.iter Sync.join t.worker_threads;
  Lcp_engine.Eval_cache.set_sharing false;
  try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ()

let stop t = initiate_shutdown t

let run config =
  let t = start config in
  wait t
