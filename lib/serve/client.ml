(* A tiny synchronous client for the serve protocol: one request on
   the wire at a time, interim event lines handed to a callback, the
   final response line returned. This is all `lcp client`, the tests
   and the bench series need. *)

module Json = Lcp_obs.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Send one raw JSON line, then read lines until the final response
   (anything that is not an interim event) arrives. *)
let request_json ?(on_event = fun _ -> ()) t json =
  output_string t.oc (Json.to_string json);
  output_char t.oc '\n';
  flush t.oc;
  let rec read () =
    match input_line t.ic with
    | exception End_of_file -> Error "connection closed before response"
    | line -> (
        match Json.of_string line with
        | Error msg -> Error ("bad response line: " ^ msg)
        | Ok j ->
            if Protocol.is_event j then begin
              on_event j;
              read ()
            end
            else Ok j)
  in
  read ()

let request ?on_event t req =
  let on_event =
    Option.map
      (fun f j -> Result.iter f (Protocol.event_of_json j))
      on_event
  in
  match request_json ?on_event t (Protocol.request_to_json req) with
  | Error _ as e -> e
  | Ok j -> Protocol.response_of_json j

let with_connection path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
