module Json = Lcp_obs.Json
module R = Lcp_obs.Run_cfg
module Sync = Lcp_obs.Sync
module Checkpoint = Lcp_engine.Checkpoint
module Sweep = Lcp_engine.Sweep

(* ------------------------------------------------------------------ *)
(* configuration                                                       *)

type executor =
  | Subprocess of { bin : string }
  | Remote of { sockets : string list }

type config = {
  decoder : string;
  n : int;
  strategy : Sweep.strategy;
  shards : int;
  workers : int;
  jobs : int;
  executor : executor;
  dir : string;
  poll_s : float;
  stall_s : float;
  backoff_base_s : float;
  backoff_max_s : float;
  max_restarts : int;
  eval_cache : bool;
  orbit_prune : bool;
  inject_kill : int option;
  on_spawn : shard:int -> attempt:int -> pid:int -> unit;
}

let default_config ~decoder ~n ~shards ~dir =
  {
    decoder;
    n;
    strategy = Sweep.Orderly;
    shards;
    workers = shards;
    jobs = 1;
    executor = Subprocess { bin = Sys.executable_name };
    dir;
    poll_s = 0.05;
    stall_s = 120.;
    backoff_base_s = 0.25;
    backoff_max_s = 8.;
    max_restarts = 5;
    eval_cache = true;
    orbit_prune = true;
    inject_kill = None;
    on_spawn = (fun ~shard:_ ~attempt:_ ~pid:_ -> ());
  }

(* Attempt 1 launches immediately; attempt k >= 2 waits
   base * 2^(k-2), capped. Pure, so the cap is unit-testable without
   spawning anything. *)
let backoff_s c ~attempt =
  if attempt <= 1 then 0.
  else min c.backoff_max_s (c.backoff_base_s *. (2. ** float_of_int (attempt - 2)))

let shard_path ~dir i = Filename.concat dir (Printf.sprintf "shard-%d.json" i)

(* ------------------------------------------------------------------ *)
(* the two ways to run a shard                                         *)

(* A shard worker is either a forked [lcp sweep --shard I/K] child
   identified by pid, or a thread farming the shard to a remote daemon
   as a [sweep-shard] request. Both funnel into the same judgement:
   the shard's checkpoint file. A complete checkpoint is success no
   matter how the worker died; anything else is a crash and the shard
   resumes from its last chunk. *)
type handle =
  | Child of int  (* worker pid *)
  | Farm of {
      cell : (Checkpoint.t, string) result option Sync.A.t;
      thread : Sync.thread_handle;
      socket : int;  (* index into the remote socket list *)
    }

type state =
  | Pending of { attempt : int; not_before : float; last_socket : int option }
  | Running of { handle : handle; attempt : int; started : float }
  | Finished of Checkpoint.t

let worker_argv c ~bin i =
  let args =
    [
      bin; "sweep"; c.decoder;
      "-n"; string_of_int c.n;
      "-j"; string_of_int c.jobs;
      "--strategy"; Sweep.strategy_name c.strategy;
      "--shards"; string_of_int c.shards;
      "--shard"; string_of_int i;
      "--checkpoint"; shard_path ~dir:c.dir i;
      "--resume";
    ]
    @ (if c.eval_cache then [] else [ "--no-eval-cache" ])
    @ if c.orbit_prune then [] else [ "--no-orbit-prune" ]
  in
  Array.of_list args

let spawn_child c ~devnull ~bin i ~attempt =
  let pid = Unix.create_process bin (worker_argv c ~bin i) devnull devnull devnull in
  c.on_spawn ~shard:i ~attempt ~pid;
  Child pid

let remote_request c i =
  {
    Protocol.kind =
      Protocol.Sweep_shard
        {
          decoder = c.decoder;
          n = c.n;
          strategy = Sweep.strategy_name c.strategy;
          shards = c.shards;
          shard = i;
        };
    opts =
      {
        Protocol.default_opts with
        Protocol.jobs = Some c.jobs;
        eval_cache = Some c.eval_cache;
        orbit_prune = Some c.orbit_prune;
      };
  }

let spawn_farm c ~sockets i ~attempt ~socket =
  let cell = Sync.A.make "serve/coord.remote_result" None in
  let sock = sockets.(socket) in
  let thread =
    Sync.spawn "serve/coord.remote" (fun () ->
        let res =
          match
            Client.with_connection sock (fun conn ->
                Client.request conn (remote_request c i))
          with
          | Ok resp -> (
              match resp.Protocol.status with
              | Protocol.Done -> (
                  match Json.member "checkpoint" resp.Protocol.result with
                  | Error _ -> Error "sweep-shard response carried no checkpoint"
                  | Ok j -> Checkpoint.of_json j)
              | st ->
                  Error
                    (Printf.sprintf "remote shard %s%s" (Protocol.status_name st)
                       (match resp.Protocol.reason with
                       | Some r -> ": " ^ r
                       | None -> "")))
          | Error msg -> Error msg
          | exception e -> Error (Printexc.to_string e)
        in
        (* persist the remote result where the subprocess path would
           have left it, so merge (and a resumed coordinator) reads
           shard state uniformly from the checkpoint directory *)
        (match res with
        | Ok ck -> Checkpoint.save ~path:(shard_path ~dir:c.dir i) ck
        | Error _ -> ());
        Sync.A.set cell (Some res))
  in
  c.on_spawn ~shard:i ~attempt ~pid:0;
  Farm { cell; thread; socket }

let poll_handle handle path =
  match handle with
  | Child pid -> (
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> `Running
      | _, status -> (
          (* the checkpoint, not the exit status, is the judgement: a
             worker killed after its final chunk still finished its
             shard, and exit 1 just means the shard saw violations *)
          match Checkpoint.load path with
          | Ok ck when ck.Checkpoint.complete -> `Done ck
          | _ -> (
              match status with
              | Unix.WEXITED 2 -> `Fatal "worker exited 2 (usage error)"
              | Unix.WEXITED code ->
                  `Crashed
                    (Printf.sprintf "worker exited %d before finishing its shard"
                       code)
              | Unix.WSIGNALED s ->
                  `Crashed (Printf.sprintf "worker killed by signal %d" s)
              | Unix.WSTOPPED s ->
                  `Crashed (Printf.sprintf "worker stopped by signal %d" s))))
  | Farm f -> (
      match Sync.A.get f.cell with
      | None -> `Running
      | Some res -> (
          Sync.join f.thread;
          match res with
          | Ok ck when ck.Checkpoint.complete -> `Done ck
          | Ok _ -> `Crashed "remote shard returned an incomplete checkpoint"
          | Error msg -> `Crashed msg))

let kill_handle = function
  | Child pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
  | Farm _ ->
      (* no remote cancellation in the protocol: the daemon finishes
         the shard and the thread parks its unread result *)
      ()

(* ------------------------------------------------------------------ *)
(* outcome                                                             *)

type shard_report = {
  shard : int;
  attempts : int;
  kept : int;
  wall_s : float;
}

type outcome = {
  merged : Checkpoint.t;
  report : Json.t;
  launched : int;
  restarts : int;
  steals : int;
  shard_reports : shard_report list;
  wall_s : float;
}

let outcome_json o =
  Json.Obj
    [
      ("report", o.report);
      ("launched", Json.Int o.launched);
      ("restarts", Json.Int o.restarts);
      ("steals", Json.Int o.steals);
      ( "shards",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("shard", Json.Int s.shard);
                   ("attempts", Json.Int s.attempts);
                   ("kept", Json.Int s.kept);
                   ("wall_ms", Json.Int (int_of_float (s.wall_s *. 1000.)));
                 ])
             o.shard_reports) );
      ("wall_ms", Json.Int (int_of_float (o.wall_s *. 1000.)));
    ]

(* ------------------------------------------------------------------ *)
(* supervision loop                                                    *)

let run ?(cfg = R.default) c =
  if c.shards < 1 then invalid_arg "Coordinator.run: shards must be >= 1";
  if c.workers < 1 then invalid_arg "Coordinator.run: workers must be >= 1";
  if c.jobs < 1 then invalid_arg "Coordinator.run: jobs must be >= 1";
  (match c.executor with
  | Remote { sockets = [] } ->
      invalid_arg "Coordinator.run: remote executor needs at least one socket"
  | _ -> ());
  if not (Sys.file_exists c.dir) then Unix.mkdir c.dir 0o755;
  (* materialize the coordinator counters so an uneventful run reports
     the same key set as a stormy one *)
  List.iter
    (fun name -> R.count cfg ~by:0 name)
    [ "coord/shards_launched"; "coord/restarts"; "coord/steals" ];
  R.span cfg "coord" (fun () ->
      let t0 = Lcp_obs.Clock.now_s () in
      let paths = Array.init c.shards (shard_path ~dir:c.dir) in
      let states =
        Array.make c.shards
          (Pending { attempt = 1; not_before = 0.; last_socket = None })
      in
      let attempts = Array.make c.shards 0 in
      let first_started = Array.make c.shards 0. in
      let finished_at = Array.make c.shards 0. in
      let launched = ref 0 and restarts = ref 0 and steals = ref 0 in
      let injected = ref (c.inject_kill = None) in
      let fatal = ref None in
      let devnull =
        match c.executor with
        | Subprocess _ -> Some (Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0)
        | Remote _ -> None
      in
      let sockets =
        match c.executor with
        | Remote { sockets } -> Array.of_list sockets
        | Subprocess _ -> [||]
      in
      let launch i ~attempt ~last_socket =
        let handle =
          match c.executor with
          | Subprocess { bin } ->
              spawn_child c ~devnull:(Option.get devnull) ~bin i ~attempt
          | Remote _ ->
              (* round-robin placement; a retry moves to the next
                 daemon — a "steal" — so one dead daemon cannot pin a
                 shard forever *)
              let socket =
                match last_socket with
                | None -> i mod Array.length sockets
                | Some prev -> (prev + 1) mod Array.length sockets
              in
              (match last_socket with
              | Some prev when prev <> socket ->
                  incr steals;
                  R.count cfg "coord/steals"
              | _ -> ());
              spawn_farm c ~sockets i ~attempt ~socket
        in
        incr launched;
        R.count cfg "coord/shards_launched";
        attempts.(i) <- attempts.(i) + 1;
        let now = Lcp_obs.Clock.now_s () in
        if first_started.(i) = 0. then first_started.(i) <- now;
        states.(i) <- Running { handle; attempt; started = now }
      in
      let running_count () =
        Array.fold_left
          (fun acc -> function Running _ -> acc + 1 | _ -> acc)
          0 states
      in
      let all_finished () =
        Array.for_all (function Finished _ -> true | _ -> false) states
      in
      let last_line = ref "" in
      while (not (all_finished ())) && !fatal = None do
        let now = Lcp_obs.Clock.now_s () in
        (* reap finished workers; restart crashed ones with backoff *)
        Array.iteri
          (fun i st ->
            match st with
            | Pending _ | Finished _ -> ()
            | Running r -> (
                match poll_handle r.handle paths.(i) with
                | `Running -> (
                    (* deterministic fault injection: SIGKILL the
                       target shard's first attempt once its checkpoint
                       exists (the worker writes one before its first
                       chunk, so this fires early without racing) *)
                    (match (c.inject_kill, r.handle) with
                    | Some k, Child pid
                      when k = i && r.attempt = 1 && (not !injected)
                           && Sys.file_exists paths.(i) ->
                        injected := true;
                        (try Unix.kill pid Sys.sigkill
                         with Unix.Unix_error _ -> ());
                        R.progress cfg
                          (Printf.sprintf
                             "coord: injected SIGKILL into shard %d (pid %d)" i
                             pid)
                    | _ -> ());
                    (* liveness: a worker that neither exits nor
                       heartbeats its checkpoint within stall_s is
                       wedged — kill it and let the reap path restart
                       it from its last chunk *)
                    if now -. r.started > c.stall_s then
                      let hb =
                        match Checkpoint.load paths.(i) with
                        | Ok ck -> ck.Checkpoint.saved_at
                        | Error _ -> 0
                      in
                      if hb = 0 || now -. float_of_int hb > c.stall_s then (
                        match r.handle with
                        | Child pid ->
                            R.progress cfg
                              (Printf.sprintf
                                 "coord: shard %d stalled (last heartbeat %s); \
                                  killing pid %d"
                                 i
                                 (Checkpoint.timestamp_utc hb)
                                 pid);
                            (try Unix.kill pid Sys.sigkill
                             with Unix.Unix_error _ -> ())
                        | Farm _ -> ()))
                | `Done ck ->
                    finished_at.(i) <- Lcp_obs.Clock.now_s ();
                    states.(i) <- Finished ck
                | `Fatal msg ->
                    fatal := Some (Printf.sprintf "shard %d: %s" i msg)
                | `Crashed msg ->
                    if r.attempt > c.max_restarts then
                      fatal :=
                        Some
                          (Printf.sprintf
                             "shard %d failed %d times, giving up (last: %s)" i
                             r.attempt msg)
                    else begin
                      incr restarts;
                      R.count cfg "coord/restarts";
                      let attempt = r.attempt + 1 in
                      let wait = backoff_s c ~attempt in
                      R.progress cfg
                        (Printf.sprintf
                           "coord: shard %d: %s; restart %d/%d in %.2fs" i msg
                           (attempt - 1) c.max_restarts wait);
                      let last_socket =
                        match r.handle with
                        | Farm f -> Some f.socket
                        | Child _ -> None
                      in
                      states.(i) <-
                        Pending { attempt; not_before = now +. wait; last_socket }
                    end))
          states;
        (* fill free worker slots with due pending shards *)
        (if !fatal = None then
           let slots = ref (c.workers - running_count ()) in
           Array.iteri
             (fun i st ->
               match st with
               | Pending p when !slots > 0 && p.not_before <= now ->
                   decr slots;
                   launch i ~attempt:p.attempt ~last_socket:p.last_socket
               | _ -> ())
             states);
        (* aggregate progress, read back from the checkpoint files the
           workers heartbeat into *)
        let done_classes = ref 0 and shards_done = ref 0 in
        let total = ref 0 and have_total = ref true in
        Array.iteri
          (fun i st ->
            let note ck =
              done_classes := !done_classes + ck.Checkpoint.completed;
              total := !total + ck.Checkpoint.kept;
              R.set_gauge cfg
                (Printf.sprintf "coord/shard%d/completed" i)
                ck.Checkpoint.completed
            in
            match st with
            | Finished ck ->
                incr shards_done;
                note ck
            | _ -> (
                match Checkpoint.load paths.(i) with
                | Ok ck -> note ck
                | Error _ -> have_total := false))
          states;
        R.set_gauge cfg "coord/classes_done" !done_classes;
        R.set_gauge cfg "coord/shards_done" !shards_done;
        Array.iteri
          (fun i a ->
            if a > 0 then
              R.set_gauge cfg (Printf.sprintf "coord/shard%d/attempts" i) a)
          attempts;
        let line =
          if !have_total then
            Printf.sprintf "coord: %d/%d classes, %d/%d shards done"
              !done_classes !total !shards_done c.shards
          else
            Printf.sprintf "coord: %d classes done, %d/%d shards done"
              !done_classes !shards_done c.shards
        in
        if line <> !last_line then begin
          last_line := line;
          R.progress cfg line
        end;
        if (not (all_finished ())) && !fatal = None then Unix.sleepf c.poll_s
      done;
      (match !fatal with
      | Some _ ->
          Array.iter
            (function Running r -> kill_handle r.handle | _ -> ())
            states
      | None -> ());
      (match devnull with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      match !fatal with
      | Some msg -> Error msg
      | None -> (
          let cks =
            Array.to_list
              (Array.map
                 (function Finished ck -> ck | _ -> assert false)
                 states)
          in
          match Checkpoint.merge cks with
          | Error msg -> Error ("coordinator merge: " ^ msg)
          | Ok merged ->
              let shard_reports =
                List.init c.shards (fun i ->
                    {
                      shard = i;
                      attempts = attempts.(i);
                      kept =
                        (match states.(i) with
                        | Finished ck -> ck.Checkpoint.kept
                        | _ -> 0);
                      wall_s =
                        (if finished_at.(i) > 0. then
                           finished_at.(i) -. first_started.(i)
                         else 0.);
                    })
              in
              let wall_s = Lcp_obs.Clock.now_s () -. t0 in
              R.progress cfg
                (Printf.sprintf
                   "coord: merged %d shards: %d classes, %d violations" c.shards
                   merged.Checkpoint.kept merged.Checkpoint.violations);
              Ok
                {
                  merged;
                  report = Checkpoint.report_json merged;
                  launched = !launched;
                  restarts = !restarts;
                  steals = !steals;
                  shard_reports;
                  wall_s;
                }))
