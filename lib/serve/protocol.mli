(** The [lcp serve] wire protocol: newline-delimited, schema-versioned
    JSON over a Unix-domain socket.

    Every line the client writes is one {!request}; every line the
    server writes is either an interim {!event} (only when the request
    asked for [progress]) or the final {!response} for an admitted
    request. Requests are answered in admission order per connection;
    a client runs one request at a time per connection.

    Parsing is {e tolerant of unknown fields} (a newer client may send
    members this server ignores) and {e strict about the schema
    version}: a [schema_version] other than {!schema_version} is
    rejected, an absent one is assumed current. *)

module Json = Lcp_obs.Json

val schema_version : int

(** {1 Requests} *)

type run_opts = {
  jobs : int option;  (** domain-pool width, capped by the server *)
  heavy : bool option;
  seed : int option;
  deadline_ms : int option;
      (** budget from {e admission}: queue wait counts against it *)
  eval_cache : bool option;
  orbit_prune : bool option;
      (** [Some false] selects the un-pruned certificate-search oracle;
          coordinators must forward it so remote shards count the same
          labelings as local ones *)
  progress : bool;  (** stream interim {!event}s before the response *)
}

val default_opts : run_opts

type kind =
  | Ping
  | Metrics  (** the server's aggregate counters/gauges/spans *)
  | Shutdown
  | Check of { decoder : string; graph : string }
      (** one-graph property check (completeness facts + exhaustive
          soundness search on non-bipartite graphs) *)
  | Prove of { decoder : string; graph : string }
      (** honest-prover certificates for one graph *)
  | Sweep of {
      decoder : string;
      n : int;
      strategy : string;
      early_exit : bool;
      shards : int;
          (** 1 = run in-process (the historical behaviour; the field
              is omitted from the wire form so unsharded requests keep
              their coalesce keys); K >= 2 = coordinate K shard
              workers and respond with the merged report *)
    }
  | Sweep_shard of {
      decoder : string;
      n : int;
      strategy : string;
      shards : int;
      shard : int;
    }
      (** one slice of a sharded sweep, run to completion in-process;
          the response embeds the shard's complete checkpoint so a
          remote coordinator can {!Lcp_engine.Checkpoint.merge} it.
          Exhaustive only — early exit would break merge determinism. *)
  | Lint of { decoders : string list; max_n : int option; samples : int option }

type request = { kind : kind; opts : run_opts }

val kind_name : kind -> string

val is_control : kind -> bool
(** Control requests ([ping]/[metrics]/[shutdown]) bypass the job
    queue and are answered inline by the connection handler. *)

val request_of_json : Json.t -> (request, string) result
val request_to_json : request -> Json.t

val coalesce_key : request -> string option
(** A canonical identity for job requests: two requests with equal
    keys compute identical results, so an arrival whose key is already
    in flight shares the in-flight computation instead of enqueueing.
    [None] for control requests. The [progress] flag is presentation
    and is excluded from the key. *)

(** {1 Responses} *)

type status =
  | Done  (** ["ok"]: the job ran; the verdict lives in [result] *)
  | Rejected  (** ["rejected"]: admission refused (queue full, shutdown) *)
  | Failed  (** ["error"]: bad request or execution failure *)
  | Expired  (** ["expired"]: the deadline passed before completion *)

val status_name : status -> string
val status_of_name : string -> status option

type response = {
  id : int;  (** server-assigned monotone request id *)
  kind : string;
  status : status;
  reason : string option;  (** e.g. ["queue_full"] on rejection *)
  result : Json.t;
}

val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

(** {1 Interim events} *)

type event = { event_id : int; body : Lcp_obs.Sink.event }

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

val is_event : Json.t -> bool
(** Distinguishes an interim event line from a final response line. *)
