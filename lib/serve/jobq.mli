(** A bounded FIFO job queue with non-blocking admission.

    Producers (connection threads) call {!try_push}, which {e never
    blocks}: a full or closed queue refuses immediately, and the
    caller turns the refusal into a structured [rejected: queue_full]
    response. Consumers (worker threads) call {!pop}, which blocks
    until an item arrives or the queue is closed and drained. All
    operations are thread-safe. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 0]. A capacity of [0]
    refuses every push — useful to force the rejection path. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue holds [capacity] items or is closed. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available (FIFO) or the queue is closed;
    [None] only after close once the backlog is drained. *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked {!pop}; queued items
    are still handed out. Idempotent. *)

val depth : 'a t -> int
val capacity : 'a t -> int
val is_closed : 'a t -> bool
