(* A bounded FIFO handoff between the connection threads (producers)
   and the worker threads (consumers). Admission never blocks: a full
   queue refuses the push and the caller turns that into a structured
   [rejected: queue_full] response — backpressure is explicit and
   immediate instead of silent and unbounded. *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Jobq.create: capacity must be >= 0";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  locked t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  locked t (fun () ->
      let rec wait () =
        match Queue.take_opt t.items with
        | Some x -> Some x
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.nonempty t.lock;
              wait ()
            end
      in
      wait ())

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = locked t (fun () -> Queue.length t.items)
let capacity t = t.capacity
let is_closed t = locked t (fun () -> t.closed)
