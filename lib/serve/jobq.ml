(* A bounded FIFO handoff between the connection threads (producers)
   and the worker threads (consumers). Admission never blocks: a full
   queue refuses the push and the caller turns that into a structured
   [rejected: queue_full] response — backpressure is explicit and
   immediate instead of silent and unbounded.

   Locking discipline: [items] and [closed] are only touched under
   [lock] (via the instrumented {!Lcp_obs.Sync.with_lock}); [guard] is
   their Sync shadow var, so [lcp race] checks the discipline under
   perturbed schedules. [nonempty] signals item arrival and close. *)

module Sync = Lcp_obs.Sync

type 'a t = {
  lock : Sync.mutex;
  nonempty : Sync.cond;
  guard : unit Sync.Var.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Jobq.create: capacity must be >= 0";
  {
    lock = Sync.mutex "serve/jobq.lock";
    nonempty = Sync.condition "serve/jobq.nonempty";
    guard = Sync.Var.make "serve/jobq.state" ();
    items = Queue.create ();
    capacity;
    closed = false;
  }

let locked t f = Sync.with_lock t.lock f

let try_push t x =
  locked t (fun () ->
      Sync.Var.touch t.guard;
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Sync.signal t.nonempty;
        true
      end)

let pop t =
  locked t (fun () ->
      let rec wait () =
        Sync.Var.touch t.guard;
        match Queue.take_opt t.items with
        | Some x -> Some x
        | None ->
            if t.closed then None
            else begin
              Sync.wait t.nonempty t.lock;
              wait ()
            end
      in
      wait ())

let close t =
  locked t (fun () ->
      Sync.Var.touch t.guard;
      t.closed <- true;
      Sync.broadcast t.nonempty)

let depth t = locked t (fun () -> Sync.Var.observe t.guard; Queue.length t.items)
let capacity t = t.capacity
let is_closed t = locked t (fun () -> Sync.Var.observe t.guard; t.closed)
