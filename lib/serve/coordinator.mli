(** The sweep coordinator: one job in, K supervised shard workers out,
    one merged report back — the layer that turns PR 9's manual
    "launch K shells and babysit them" recipe into a fault-tolerant
    orchestrator, and the parallelism story past a single domain pool
    on the road to n = 10.

    The coordinator partitions a sweep with the engine's deterministic
    class-key partition ({!Lcp_engine.Sweep.shard_of_key}; nothing to
    compute up front — each worker filters its own slice), runs one
    worker per shard up to a [workers] cap, and supervises them
    through the only state that matters: the shard checkpoint files
    the workers atomically rewrite after every chunk
    ({!Lcp_engine.Checkpoint}).

    {b Supervision state machine.} Each shard is [Pending] (waiting
    for a worker slot and its backoff deadline), [Running], or
    [Finished]. A running worker is polled for exit (subprocess) or
    result (remote). On any termination the checkpoint file is the
    judgement: {e complete} checkpoint = shard done (even if the
    worker was killed after its final chunk, and even if it exited 1
    because the shard saw violations); anything else = crash, and the
    shard goes back to [Pending] with capped exponential backoff
    ({!backoff_s}) — the restarted worker [--resume]s from the last
    completed chunk, so work is lost only back to the previous
    checkpoint write. A worker that exits 2 (usage error) aborts the
    whole run: retrying a malformed invocation can only fail again.
    After [max_restarts] failed restarts of one shard the run aborts.

    {b Liveness / heartbeat contract.} Every checkpoint write stamps
    [saved_at]. A worker that has been running longer than [stall_s]
    {e and} whose checkpoint heartbeat is older than [stall_s] is
    declared wedged, SIGKILLed, and restarted through the normal crash
    path. Workers therefore need no extra liveness plumbing — durable
    progress {e is} the heartbeat.

    {b Executors.} [Subprocess] forks [bin sweep DECODER --shards K
    --shard I --checkpoint ... --resume] children (default: the
    current executable). [Remote] farms each shard to one of a list of
    [lcp serve] daemons as a [sweep-shard] request whose response
    embeds the shard's complete checkpoint; the coordinator saves it
    into the checkpoint directory so merging is uniform across
    executors. Placement is round-robin; a retry moves to the next
    socket (counted as a steal), so one dead daemon cannot pin a
    shard.

    {b Determinism.} The merged checkpoint — and [report], its
    {!Lcp_engine.Checkpoint.report_json} rendering — is byte-identical
    to the unsharded run's, regardless of worker deaths, restarts, or
    executor: that is the CI [cmp] gate, inherited from the sharding
    layer.

    Observability: counters [coord/shards_launched] /
    [coord/restarts] / [coord/steals] (materialized at 0), gauges
    [coord/classes_done], [coord/shards_done],
    [coord/shard<i>/completed], [coord/shard<i>/attempts], span
    [coord], and progress lines for every supervision event, all into
    the caller's cfg. *)

type executor =
  | Subprocess of { bin : string }
      (** fork shard workers as [bin sweep ...] children *)
  | Remote of { sockets : string list }
      (** farm shards to [lcp serve] daemons at these socket paths *)

type config = {
  decoder : string;
  n : int;
  strategy : Lcp_engine.Sweep.strategy;
  shards : int;  (** partition width K *)
  workers : int;  (** max simultaneously running shard workers *)
  jobs : int;  (** domain-pool width inside each worker *)
  executor : executor;
  dir : string;
      (** checkpoint directory (created if missing); shard [i] lives
          at [shard-<i>.json]. Reusing a dir resumes its finished and
          partial shards; a dir from a {e different} sweep makes the
          workers exit 2 and the run abort. *)
  poll_s : float;  (** supervision poll interval *)
  stall_s : float;  (** heartbeat staleness before a worker is wedged *)
  backoff_base_s : float;
  backoff_max_s : float;
  max_restarts : int;  (** per-shard restart budget *)
  eval_cache : bool;
  orbit_prune : bool;
  inject_kill : int option;
      (** test/CI fault injection: SIGKILL this shard's first worker
          once its checkpoint file exists (subprocess executor only) *)
  on_spawn : shard:int -> attempt:int -> pid:int -> unit;
      (** observation hook, called after every worker launch (pid 0
          for remote shards) *)
}

val default_config :
  decoder:string -> n:int -> shards:int -> dir:string -> config
(** Subprocess executor on [Sys.executable_name], [workers = shards],
    [jobs = 1], 50ms poll, 120s stall, backoff 0.25s doubling to 8s,
    5 restarts, caches on, no injection. *)

val backoff_s : config -> attempt:int -> float
(** Delay before launching [attempt] (1-based): 0 for the first
    attempt, then [backoff_base_s * 2^(attempt-2)] capped at
    [backoff_max_s]. *)

val shard_path : dir:string -> int -> string
(** [dir/shard-<i>.json], the checkpoint file of shard [i]. *)

type shard_report = {
  shard : int;
  attempts : int;  (** workers launched for this shard (>= 1) *)
  kept : int;  (** shard-local classes *)
  wall_s : float;  (** first launch to completion, restarts included *)
}

type outcome = {
  merged : Lcp_engine.Checkpoint.t;
  report : Lcp_obs.Json.t;
      (** {!Lcp_engine.Checkpoint.report_json} of [merged]: the bytes
          that must equal the unsharded run's *)
  launched : int;
  restarts : int;
  steals : int;
  shard_reports : shard_report list;
  wall_s : float;
}

val outcome_json : outcome -> Lcp_obs.Json.t

val run : ?cfg:Lcp_obs.Run_cfg.t -> config -> (outcome, string) result
(** Run the coordinated sweep to completion. [Error] covers shard
    abortion (usage-error worker, restart budget exhausted) and merge
    failures; partial shard checkpoints stay in [dir] so a rerun with
    the same config resumes instead of restarting.
    @raise Invalid_argument on a malformed config (non-positive
    shards/workers/jobs, remote executor without sockets). *)
