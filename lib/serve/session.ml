open Lcp_graph
open Lcp_local
module Json = Lcp_obs.Json
module Metrics = Lcp_obs.Metrics
module Sink = Lcp_obs.Sink
module Run_cfg = Lcp_obs.Run_cfg

(* ------------------------------------------------------------------ *)
(* server-side limits                                                  *)

type limits = {
  max_jobs : int;
  max_n : int;  (** sweep order cap, and the soundness-search cap for [check] *)
  max_lint_n : int;
  max_samples : int;
  max_deadline_ms : int option;
  max_shards : int;
  shard_bin : string;
}

let default_limits =
  {
    max_jobs = Lcp_engine.Pool.default_jobs ();
    max_n = 7;
    max_lint_n = 5;
    max_samples = 64;
    max_deadline_ms = None;
    max_shards = 16;
    shard_bin = Sys.executable_name;
  }

type t = {
  limits : limits;
  version : string;
  metrics : Metrics.t;  (** the server-wide aggregate registry *)
  started_at : float;
}

let create ?(limits = default_limits) ?(version = "dev") () =
  let metrics = Metrics.create () in
  (* materialize the serve counters so a metrics request reports them
     even before any traffic *)
  List.iter
    (fun name -> Metrics.incr metrics ~by:0 name)
    [
      "serve/requests"; "serve/rejected"; "serve/coalesced"; "serve/expired";
      "serve/cache_warm_hits";
    ];
  Metrics.set_gauge metrics "serve/queue_depth" 0;
  { limits; version; metrics; started_at = Lcp_obs.Clock.now_s () }

(* ------------------------------------------------------------------ *)
(* per-request Run_cfg                                                 *)

(* Built at admission time, so queue wait counts against the deadline.
   Client knobs are capped by the server's limits; the sink forwards
   span/progress events to the client when the request asked for them. *)
let cfg_of_request t (req : Protocol.request) ~emit =
  let o = req.Protocol.opts in
  let jobs =
    match o.Protocol.jobs with
    | Some j when j >= 1 -> min j t.limits.max_jobs
    | _ -> 1
  in
  let deadline_ms =
    match (o.Protocol.deadline_ms, t.limits.max_deadline_ms) with
    | None, cap -> cap
    | Some d, None -> Some d
    | Some d, Some cap -> Some (min d cap)
  in
  let sink =
    if o.Protocol.progress then
      { Sink.name = "serve"; emit = (fun _ e -> emit e); flush = ignore }
    else Sink.null
  in
  Run_cfg.make ~jobs
    ~heavy:(Option.value o.Protocol.heavy ~default:false)
    ?seed:o.Protocol.seed
    ~eval_cache:(Option.value o.Protocol.eval_cache ~default:true)
    ~orbit_prune:(Option.value o.Protocol.orbit_prune ~default:true)
    ~sink
    ?deadline:(Option.map (fun ms -> float_of_int ms /. 1000.) deadline_ms)
    ()

(* ------------------------------------------------------------------ *)
(* payload helpers                                                     *)

exception Usage of string

let find_suite key =
  match Lcp.Registry.find key with
  | Some e -> e
  | None ->
      raise
        (Usage
           (Printf.sprintf "unknown decoder %S; available: %s" key
              (String.concat " " Lcp.Registry.keys)))

let parse_graph spec =
  match Builders.of_spec spec with
  | Ok g -> g
  | Error msg -> raise (Usage msg)

(* The deterministic work counters a client may diff against a direct
   one-shot run: independent of jobs AND of cache temperature. The
   temperature-dependent cache counters are reported separately. *)
let work_counter_names =
  [
    "labelings_checked"; "orbit_pruned_branches"; "candidates_generated";
    "connected"; "classes"; "dedup_hits"; "kept"; "checked"; "passed";
    "violations";
  ]

let cache_counter_names =
  [
    "cache_hits"; "cache_misses"; "eval_cache_hits"; "eval_cache_misses";
    "eval_cache_shared_hits";
  ]

let counters_json m names =
  Json.Obj (List.map (fun name -> (name, Json.Int (Metrics.counter m name))) names)

let graph_json g =
  Json.Obj
    [
      ("n", Json.Int (Graph.order g));
      ( "edges",
        Json.List
          (List.map
             (fun (u, v) -> Json.List [ Json.Int u; Json.Int v ])
             (Graph.edges g)) );
    ]

let labeling_json lab =
  Json.List (Array.to_list (Array.map (fun s -> Json.String s) lab))

(* ------------------------------------------------------------------ *)
(* the job bodies                                                      *)

let run_check t cfg ~decoder ~graph =
  let suite = (find_suite decoder).Lcp.Registry.suite in
  let g = parse_graph graph in
  let inst = Instance.make g in
  let bipartite = Coloring.is_bipartite g in
  let promise = suite.Lcp.Decoder.promise g in
  let honest =
    match Lcp.Decoder.certify suite inst with
    | None -> Json.Null
    | Some certified ->
        Json.Obj
          [
            ( "unanimous",
              Json.Bool (Lcp.Decoder.accepts_all suite.Lcp.Decoder.dec certified)
            );
            ("cert_bits", Json.Int (Labeling.max_bits certified.Instance.labels));
            ("cert_bits_bound", Json.Int (suite.Lcp.Decoder.cert_bits inst));
          ]
  in
  let soundness, sound_ok =
    if bipartite then (Json.Null, true)
    else if Graph.order g > t.limits.max_n then
      ( Json.Obj [ ("skipped", Json.String "graph above server max_n") ],
        true )
    else begin
      let verdict =
        Lcp.Checker.soundness_exhaustive ~cfg suite [ inst ]
      in
      let ok = Lcp.Checker.is_pass verdict in
      ( Json.Obj
          [
            ("ok", Json.Bool ok);
            ( "labelings_checked",
              Json.Int (Metrics.counter cfg.Run_cfg.metrics "labelings_checked")
            );
          ],
        ok )
    end
  in
  let honest_ok =
    match honest with
    | Json.Null -> not (promise && bipartite)
    | Json.Obj fields -> List.assoc "unanimous" fields = Json.Bool true
    | _ -> false
  in
  let ok = honest_ok && sound_ok in
  Json.Obj
    [
      ("ok", Json.Bool ok);
      ("decoder", Json.String decoder);
      ("graph", Json.String graph);
      ("graph_info", graph_json g);
      ("bipartite", Json.Bool bipartite);
      ("promise", Json.Bool promise);
      ("honest", honest);
      ("soundness", soundness);
      ("counters", counters_json cfg.Run_cfg.metrics work_counter_names);
      ("cache", counters_json cfg.Run_cfg.metrics cache_counter_names);
    ]

let run_prove _t _cfg ~decoder ~graph =
  let suite = (find_suite decoder).Lcp.Registry.suite in
  let g = parse_graph graph in
  let inst = Instance.make g in
  match Lcp.Decoder.certify suite inst with
  | None ->
      Json.Obj
        [
          ("ok", Json.Bool false);
          ("decoder", Json.String decoder);
          ("graph", Json.String graph);
          ("produced", Json.Bool false);
          ("reason", Json.String "outside the promise class (or not 2-colorable)");
        ]
  | Some certified ->
      Json.Obj
        [
          ("ok", Json.Bool (Lcp.Decoder.accepts_all suite.Lcp.Decoder.dec certified));
          ("decoder", Json.String decoder);
          ("graph", Json.String graph);
          ("produced", Json.Bool true);
          ("labels", labeling_json certified.Instance.labels);
          ("cert_bits", Json.Int (Labeling.max_bits certified.Instance.labels));
        ]

let sweep_strategy name =
  match Lcp_engine.Sweep.strategy_of_string name with
  | Some s -> s
  | None ->
      raise
        (Usage
           (Printf.sprintf "unknown strategy %S (expected orderly or mask-scan)"
              name))

let check_sweep_bounds t ~n =
  if n < 1 || n > t.limits.max_n then
    raise
      (Usage (Printf.sprintf "sweep n must be in 1..%d (got %d)" t.limits.max_n n))

let run_sweep_unsharded t cfg ~decoder ~n ~strategy ~early_exit =
  let suite = (find_suite decoder).Lcp.Registry.suite in
  let strategy = sweep_strategy strategy in
  check_sweep_bounds t ~n;
  let summary =
    Lcp.Checker.soundness_sweep ~cfg ~strategy ~early_exit suite ~n
  in
  let verdict = Lcp.Checker.verdict_of_sweep summary in
  let ok = Lcp.Checker.is_pass verdict in
  let c = summary.Lcp_engine.Sweep.counters in
  Json.Obj
    [
      ("ok", Json.Bool ok);
      ("decoder", Json.String decoder);
      ("n", Json.Int n);
      ("strategy", Json.String (Lcp_engine.Sweep.strategy_name strategy));
      ("early_exit", Json.Bool early_exit);
      ("jobs", Json.Int cfg.Run_cfg.jobs);
      ("verdict", Json.String (if ok then "pass" else "fail"));
      ( "counterexample",
        match summary.Lcp_engine.Sweep.counterexample with
        | None -> Json.Null
        | Some (g, inst) ->
            Json.Obj
              [
                ("graph", graph_json g);
                ("labels", labeling_json inst.Instance.labels);
              ] );
      ( "summary_counters",
        Json.Obj
          [
            ("candidates", Json.Int c.Lcp_engine.Sweep.candidates);
            ("connected", Json.Int c.Lcp_engine.Sweep.connected);
            ("classes", Json.Int c.Lcp_engine.Sweep.classes);
            ("dedup_hits", Json.Int c.Lcp_engine.Sweep.dedup_hits);
            ("kept", Json.Int c.Lcp_engine.Sweep.kept);
            ("checked", Json.Int c.Lcp_engine.Sweep.checked);
            ("passed", Json.Int c.Lcp_engine.Sweep.passed);
            ("violations", Json.Int c.Lcp_engine.Sweep.violations);
          ] );
      ("counters", counters_json cfg.Run_cfg.metrics work_counter_names);
      ("cache", counters_json cfg.Run_cfg.metrics cache_counter_names);
      ( "wall_ms",
        Json.Int (int_of_float (summary.Lcp_engine.Sweep.wall_s *. 1000.)) );
    ]

(* A fresh private checkpoint directory per coordinated job: the
   server may run several coordinated sweeps concurrently and their
   shard files must not collide. *)
let fresh_coord_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d =
      Filename.concat base (Printf.sprintf "lcp-coord-%d-%d" (Unix.getpid ()) i)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

let remove_coord_dir dir =
  (match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        entries
  | exception Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* The coordinated variant: partition into [shards] workers, fork one
   [shard_bin sweep --shard I/K] child per shard, supervise, merge.
   The response carries the merged report (the bytes the CI gate cmp's
   against the unsharded run) plus the coordinator's own tallies. *)
let run_sweep_coordinated t cfg ~decoder ~n ~strategy ~early_exit ~shards =
  if early_exit then
    raise (Usage "coordinated sweeps are exhaustive; drop early_exit");
  if shards < 2 || shards > t.limits.max_shards then
    raise
      (Usage
         (Printf.sprintf "shards must be in 2..%d (got %d)" t.limits.max_shards
            shards));
  check_sweep_bounds t ~n;
  ignore (find_suite decoder);
  let strategy = sweep_strategy strategy in
  let dir = fresh_coord_dir () in
  Fun.protect
    ~finally:(fun () -> remove_coord_dir dir)
    (fun () ->
      let config =
        {
          (Coordinator.default_config ~decoder ~n ~shards ~dir) with
          Coordinator.strategy;
          jobs = cfg.Run_cfg.jobs;
          executor = Coordinator.Subprocess { bin = t.limits.shard_bin };
          eval_cache = cfg.Run_cfg.eval_cache;
          orbit_prune = cfg.Run_cfg.orbit_prune;
        }
      in
      match Coordinator.run ~cfg config with
      | Error msg -> failwith msg
      | Ok o ->
          let merged = o.Coordinator.merged in
          Json.Obj
            [
              ( "ok",
                Json.Bool (merged.Lcp_engine.Checkpoint.violations = 0) );
              ("decoder", Json.String decoder);
              ("n", Json.Int n);
              ( "strategy",
                Json.String (Lcp_engine.Sweep.strategy_name strategy) );
              ("shards", Json.Int shards);
              ("jobs", Json.Int cfg.Run_cfg.jobs);
              ( "verdict",
                Json.String
                  (if merged.Lcp_engine.Checkpoint.violations = 0 then "pass"
                   else "fail") );
              ("report", o.Coordinator.report);
              ("coordinator", Coordinator.outcome_json o);
              ("counters", counters_json cfg.Run_cfg.metrics work_counter_names);
              ("cache", counters_json cfg.Run_cfg.metrics cache_counter_names);
            ])

let run_sweep t cfg ~decoder ~n ~strategy ~early_exit ~shards =
  if shards = 1 then run_sweep_unsharded t cfg ~decoder ~n ~strategy ~early_exit
  else run_sweep_coordinated t cfg ~decoder ~n ~strategy ~early_exit ~shards

(* One slice of someone else's sharded sweep, run to completion
   in-process: the remote half of the coordinator's [Remote] executor.
   The complete checkpoint rides back inside the payload — merging
   happens wherever the coordinator lives. *)
let run_sweep_shard t cfg ~decoder ~n ~strategy ~shards ~shard =
  let suite = (find_suite decoder).Lcp.Registry.suite in
  let strategy = sweep_strategy strategy in
  check_sweep_bounds t ~n;
  if shards < 1 || shards > t.limits.max_shards then
    raise
      (Usage
         (Printf.sprintf "shards must be in 1..%d (got %d)" t.limits.max_shards
            shards));
  if shard < 0 || shard >= shards then
    raise
      (Usage (Printf.sprintf "shard must be in 0..%d (got %d)" (shards - 1) shard));
  let path = Filename.temp_file "lcp-sweep-shard" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let checkpoint = { Lcp_engine.Checkpoint.path; resume = false; tag = decoder } in
      let summary =
        Lcp.Checker.soundness_sweep ~cfg ~strategy ~shard:(shard, shards)
          ~checkpoint
          ~on_chunk:(fun ~completed ~total ->
            Run_cfg.progress cfg
              (Printf.sprintf "shard %d/%d: %d/%d classes" shard shards
                 completed total))
          suite ~n
      in
      let ck =
        match Lcp_engine.Checkpoint.load path with
        | Ok ck -> ck
        | Error msg -> failwith ("sweep-shard checkpoint: " ^ msg)
      in
      let ok = Lcp.Checker.is_pass (Lcp.Checker.verdict_of_sweep summary) in
      Json.Obj
        [
          ("ok", Json.Bool ok);
          ("decoder", Json.String decoder);
          ("n", Json.Int n);
          ("strategy", Json.String (Lcp_engine.Sweep.strategy_name strategy));
          ("shards", Json.Int shards);
          ("shard", Json.Int shard);
          ("jobs", Json.Int cfg.Run_cfg.jobs);
          ("checkpoint", Lcp_engine.Checkpoint.to_json ck);
          ("counters", counters_json cfg.Run_cfg.metrics work_counter_names);
          ("cache", counters_json cfg.Run_cfg.metrics cache_counter_names);
          ( "wall_ms",
            Json.Int (int_of_float (summary.Lcp_engine.Sweep.wall_s *. 1000.)) );
        ])

let run_lint t cfg ~decoders ~max_n ~samples =
  let entries =
    match decoders with
    | [] -> Lcp.Registry.all
    | keys -> List.map find_suite keys
  in
  let max_n =
    match max_n with
    | None -> min Lcp_analysis.Corpus.default_max_n t.limits.max_lint_n
    | Some m ->
        if m < 1 || m > t.limits.max_lint_n then
          raise
            (Usage
               (Printf.sprintf "lint max_n must be in 1..%d (got %d)"
                  t.limits.max_lint_n m))
        else m
  in
  let samples =
    match samples with
    | None -> min Lcp_analysis.Corpus.default_samples t.limits.max_samples
    | Some s ->
        if s < 0 || s > t.limits.max_samples then
          raise
            (Usage
               (Printf.sprintf "lint samples must be in 0..%d (got %d)"
                  t.limits.max_samples s))
        else s
  in
  let report = Lcp_analysis.Lint.run ~cfg ~max_n ~samples entries in
  let violations = Lcp_analysis.Lint.violations report in
  Json.Obj
    [
      ("ok", Json.Bool (violations = []));
      ("violations", Json.Int (List.length violations));
      ("findings", Json.Int (List.length (Lcp_analysis.Lint.findings report)));
      ("report", Lcp_analysis.Lint.report_to_json report);
      ("counters", counters_json cfg.Run_cfg.metrics work_counter_names);
      ("cache", counters_json cfg.Run_cfg.metrics cache_counter_names);
    ]

(* ------------------------------------------------------------------ *)
(* control bodies (no queue, no Run_cfg)                               *)

let ping_payload t =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("pong", Json.Bool true);
      ("version", Json.String t.version);
      ( "uptime_ms",
        Json.Int
          (int_of_float ((Lcp_obs.Clock.now_s () -. t.started_at) *. 1000.)) );
    ]

let metrics_payload t = Metrics.to_json t.metrics

(* ------------------------------------------------------------------ *)
(* execution                                                           *)

(* Fold a finished request's deterministic counters into the
   server-wide registry, and account cache warmth: a request served
   from warm state hit either the cross-sweep class cache or a shared
   acceptance table. *)
let absorb t cfg =
  let m = cfg.Run_cfg.metrics in
  List.iter (fun (name, v) -> Metrics.incr t.metrics ~by:v name) (Metrics.counters m);
  let warm =
    Metrics.counter m "cache_hits" + Metrics.counter m "eval_cache_shared_hits"
  in
  Metrics.incr t.metrics ~by:warm "serve/cache_warm_hits"

(* Run one admitted job under its cfg. Returns (status, reason,
   payload); raises nothing. *)
let execute t (req : Protocol.request) cfg =
  if Run_cfg.expired cfg then
    (Protocol.Expired, Some "deadline expired before the job started", Json.Null)
  else
    match
      Run_cfg.span cfg ("serve/" ^ Protocol.kind_name req.Protocol.kind)
        (fun () ->
          match req.Protocol.kind with
          | Protocol.Check { decoder; graph } -> run_check t cfg ~decoder ~graph
          | Protocol.Prove { decoder; graph } -> run_prove t cfg ~decoder ~graph
          | Protocol.Sweep { decoder; n; strategy; early_exit; shards } ->
              run_sweep t cfg ~decoder ~n ~strategy ~early_exit ~shards
          | Protocol.Sweep_shard { decoder; n; strategy; shards; shard } ->
              run_sweep_shard t cfg ~decoder ~n ~strategy ~shards ~shard
          | Protocol.Lint { decoders; max_n; samples } ->
              run_lint t cfg ~decoders ~max_n ~samples
          | Protocol.Ping | Protocol.Metrics | Protocol.Shutdown ->
              (* control kinds never reach the queue *)
              assert false)
    with
    | payload ->
        absorb t cfg;
        (Protocol.Done, None, payload)
    | exception Usage msg ->
        absorb t cfg;
        (Protocol.Failed, Some ("usage: " ^ msg), Json.Null)
    | exception e ->
        absorb t cfg;
        (Protocol.Failed, Some (Printexc.to_string e), Json.Null)
