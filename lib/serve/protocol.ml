module Json = Lcp_obs.Json

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* requests                                                            *)

type run_opts = {
  jobs : int option;
  heavy : bool option;
  seed : int option;
  deadline_ms : int option;
  eval_cache : bool option;
  orbit_prune : bool option;
  progress : bool;
}

let default_opts =
  {
    jobs = None;
    heavy = None;
    seed = None;
    deadline_ms = None;
    eval_cache = None;
    orbit_prune = None;
    progress = false;
  }

type kind =
  | Ping
  | Metrics
  | Shutdown
  | Check of { decoder : string; graph : string }
  | Prove of { decoder : string; graph : string }
  | Sweep of {
      decoder : string;
      n : int;
      strategy : string;
      early_exit : bool;
      shards : int;
    }
  | Sweep_shard of {
      decoder : string;
      n : int;
      strategy : string;
      shards : int;
      shard : int;
    }
  | Lint of { decoders : string list; max_n : int option; samples : int option }

type request = { kind : kind; opts : run_opts }

let kind_name = function
  | Ping -> "ping"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"
  | Check _ -> "check"
  | Prove _ -> "prove"
  | Sweep _ -> "sweep"
  | Sweep_shard _ -> "sweep-shard"
  | Lint _ -> "lint"

let is_control = function
  | Ping | Metrics | Shutdown -> true
  | Check _ | Prove _ | Sweep _ | Sweep_shard _ | Lint _ -> false

(* Tolerant accessors: absent members become defaults, members of the
   wrong shape are errors. Unknown members are ignored throughout —
   newer clients may send fields this server does not know about. *)
let opt_member name conv json ~default =
  match Json.member name json with
  | Error _ -> Ok default
  | Ok Json.Null -> Ok default
  | Ok v -> conv v

let opt_int name json =
  opt_member name (fun v -> Result.map Option.some (Json.to_int v)) json
    ~default:None

let opt_bool name json =
  opt_member name (fun v -> Result.map Option.some (Json.to_bool v)) json
    ~default:None

let opt_str name json ~default =
  opt_member name Json.to_str json ~default

let opts_of_json json =
  let open Json in
  let* jobs = opt_int "jobs" json in
  let* heavy = opt_bool "heavy" json in
  let* seed = opt_int "seed" json in
  let* deadline_ms = opt_int "deadline_ms" json in
  let* eval_cache = opt_bool "eval_cache" json in
  let* orbit_prune = opt_bool "orbit_prune" json in
  let* progress = opt_member "progress" to_bool json ~default:false in
  Ok { jobs; heavy; seed; deadline_ms; eval_cache; orbit_prune; progress }

let request_of_json json =
  let open Json in
  let* v =
    opt_member "schema_version" to_int json ~default:schema_version
  in
  if v <> schema_version then
    Error (Printf.sprintf "unsupported schema_version %d (want %d)" v schema_version)
  else
    let* kind_s = let* k = member "kind" json in to_str k in
    let* opts = opts_of_json json in
    let* kind =
      match kind_s with
      | "ping" -> Ok Ping
      | "metrics" -> Ok Metrics
      | "shutdown" -> Ok Shutdown
      | "check" | "prove" ->
          let* decoder = let* d = member "decoder" json in to_str d in
          let* graph = let* g = member "graph" json in to_str g in
          Ok
            (if kind_s = "check" then Check { decoder; graph }
             else Prove { decoder; graph })
      | "sweep" ->
          let* decoder = opt_str "decoder" json ~default:"degree-one" in
          let* n = opt_member "n" to_int json ~default:6 in
          let* strategy = opt_str "strategy" json ~default:"orderly" in
          let* early_exit =
            opt_member "early_exit" to_bool json ~default:false
          in
          let* shards = opt_member "shards" to_int json ~default:1 in
          Ok (Sweep { decoder; n; strategy; early_exit; shards })
      | "sweep-shard" ->
          let* decoder = opt_str "decoder" json ~default:"degree-one" in
          let* n = opt_member "n" to_int json ~default:6 in
          let* strategy = opt_str "strategy" json ~default:"orderly" in
          let* shards = opt_member "shards" to_int json ~default:1 in
          let* shard = opt_member "shard" to_int json ~default:0 in
          Ok (Sweep_shard { decoder; n; strategy; shards; shard })
      | "lint" ->
          let* decoders =
            opt_member "decoders"
              (fun v ->
                let* l = to_list v in
                map_m to_str l)
              json ~default:[]
          in
          let* max_n = opt_int "max_n" json in
          let* samples = opt_int "samples" json in
          Ok (Lint { decoders; max_n; samples })
      | other -> Error (Printf.sprintf "unknown request kind %S" other)
    in
    Ok { kind; opts }

let request_to_json { kind; opts } =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let base =
    [ ("schema_version", Json.Int schema_version);
      ("kind", Json.String (kind_name kind)) ]
  in
  let kind_fields =
    match kind with
    | Ping | Metrics | Shutdown -> []
    | Check { decoder; graph } | Prove { decoder; graph } ->
        [ ("decoder", Json.String decoder); ("graph", Json.String graph) ]
    | Sweep { decoder; n; strategy; early_exit; shards } ->
        [
          ("decoder", Json.String decoder);
          ("n", Json.Int n);
          ("strategy", Json.String strategy);
          ("early_exit", Json.Bool early_exit);
        ]
        (* emitted only when sharded: unsharded sweeps keep their
           pre-coordinator wire bytes (and coalesce keys) *)
        @ (if shards <> 1 then [ ("shards", Json.Int shards) ] else [])
    | Sweep_shard { decoder; n; strategy; shards; shard } ->
        [
          ("decoder", Json.String decoder);
          ("n", Json.Int n);
          ("strategy", Json.String strategy);
          ("shards", Json.Int shards);
          ("shard", Json.Int shard);
        ]
    | Lint { decoders; max_n; samples } ->
        (("decoders", Json.List (List.map (fun d -> Json.String d) decoders))
         :: opt "max_n" (fun v -> Json.Int v) max_n)
        @ opt "samples" (fun v -> Json.Int v) samples
  in
  let opt_fields =
    opt "jobs" (fun v -> Json.Int v) opts.jobs
    @ opt "heavy" (fun v -> Json.Bool v) opts.heavy
    @ opt "seed" (fun v -> Json.Int v) opts.seed
    @ opt "deadline_ms" (fun v -> Json.Int v) opts.deadline_ms
    @ opt "eval_cache" (fun v -> Json.Bool v) opts.eval_cache
    @ opt "orbit_prune" (fun v -> Json.Bool v) opts.orbit_prune
    @ (if opts.progress then [ ("progress", Json.Bool true) ] else [])
  in
  Json.Obj (base @ kind_fields @ opt_fields)

(* The admission-control identity of a request: two requests with the
   same key compute the same result and may be coalesced. [progress]
   is presentation, not computation, so it is excluded; everything
   else (including jobs — conservative, the engine is jobs-invariant)
   is included verbatim. *)
let coalesce_key req =
  if is_control req.kind then None
  else
    Some
      (Json.to_string
         (request_to_json { req with opts = { req.opts with progress = false } }))

(* ------------------------------------------------------------------ *)
(* responses and interim events                                        *)

type status = Done | Rejected | Failed | Expired

let status_name = function
  | Done -> "ok"
  | Rejected -> "rejected"
  | Failed -> "error"
  | Expired -> "expired"

let status_of_name = function
  | "ok" -> Some Done
  | "rejected" -> Some Rejected
  | "error" -> Some Failed
  | "expired" -> Some Expired
  | _ -> None

type response = {
  id : int;
  kind : string;
  status : status;
  reason : string option;
  result : Json.t;
}

let response_to_json r =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("id", Json.Int r.id);
       ("kind", Json.String r.kind);
       ("status", Json.String (status_name r.status));
     ]
    @ (match r.reason with
      | None -> []
      | Some reason -> [ ("reason", Json.String reason) ])
    @ [ ("result", r.result) ])

let response_of_json json =
  let open Json in
  let* v = opt_member "schema_version" to_int json ~default:schema_version in
  if v <> schema_version then
    Error (Printf.sprintf "unsupported schema_version %d" v)
  else
    let* id = let* i = member "id" json in to_int i in
    let* kind = let* k = member "kind" json in to_str k in
    let* status_s = let* s = member "status" json in to_str s in
    let* status =
      match status_of_name status_s with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "unknown status %S" status_s)
    in
    let* reason =
      opt_member "reason" (fun v -> Result.map Option.some (to_str v)) json
        ~default:None
    in
    let result =
      match member "result" json with Ok r -> r | Error _ -> Json.Null
    in
    Ok { id; kind; status; reason; result }

type event = {
  event_id : int;
  body : Lcp_obs.Sink.event;
}

let event_to_json { event_id; body } =
  let fields =
    match body with
    | Lcp_obs.Sink.Span_start path ->
        [ ("event", Json.String "span_start"); ("path", Json.String path) ]
    | Lcp_obs.Sink.Span_end (path, ns) ->
        [
          ("event", Json.String "span_end");
          ("path", Json.String path);
          ("wall_ns", Json.Int ns);
        ]
    | Lcp_obs.Sink.Progress line ->
        [ ("event", Json.String "progress"); ("line", Json.String line) ]
  in
  Json.Obj
    (("schema_version", Json.Int schema_version)
     :: ("id", Json.Int event_id)
     :: fields)

let event_of_json json =
  let open Json in
  let* event_id = let* i = member "id" json in to_int i in
  let* ev = let* e = member "event" json in to_str e in
  let* body =
    match ev with
    | "span_start" ->
        let* path = let* p = member "path" json in to_str p in
        Ok (Lcp_obs.Sink.Span_start path)
    | "span_end" ->
        let* path = let* p = member "path" json in to_str p in
        let* ns = let* w = member "wall_ns" json in to_int w in
        Ok (Lcp_obs.Sink.Span_end (path, ns))
    | "progress" ->
        let* line = let* l = member "line" json in to_str l in
        Ok (Lcp_obs.Sink.Progress line)
    | other -> Error (Printf.sprintf "unknown event %S" other)
  in
  Ok { event_id; body }

let is_event json = Result.is_ok (Json.member "event" json)
