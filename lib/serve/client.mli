(** A synchronous client for the {!Protocol} wire format — the engine
    behind [lcp client], the protocol tests and the serve bench.

    One request at a time per connection: {!request} writes the request
    line, forwards interim event lines to [on_event], and returns the
    final response. *)

type t

val connect : string -> t
(** Connect to the daemon's socket path.
    @raise Unix.Unix_error if the daemon is not there. *)

val close : t -> unit

val with_connection : string -> (t -> 'a) -> 'a

val request :
  ?on_event:(Protocol.event -> unit) ->
  t ->
  Protocol.request ->
  (Protocol.response, string) result

val request_json :
  ?on_event:(Lcp_obs.Json.t -> unit) ->
  t ->
  Lcp_obs.Json.t ->
  (Lcp_obs.Json.t, string) result
(** Raw-line variant: send any JSON value as a request line, get the
    final response line back un-decoded (events still filtered to
    [on_event]). Lets tests exercise malformed and unknown-field
    requests byte-for-byte. *)
