(** Server-side request execution: turn an admitted {!Protocol.request}
    into a result payload under a per-request {!Lcp_obs.Run_cfg.t}.

    One {!t} lives for the whole daemon: it owns the server-wide
    {!Lcp_obs.Metrics.t} aggregate (what a [metrics] request reports)
    and the admission {!limits} that cap client-supplied knobs. The
    warm state itself — the iso-class listings of
    {!Lcp_engine.Sweep.iso_classes} and the shared
    {!Lcp_engine.Eval_cache} acceptance tables — is process-global and
    persists across requests by construction; this module only
    accounts for it ([serve/cache_warm_hits]).

    {b Determinism contract}: for equal requests, every counter in
    {!work_counter_names} and every verdict/witness byte in the payload
    is identical whether the job runs one-shot or against a warm
    daemon, and for any [jobs]. The counters in
    {!cache_counter_names} are cache-temperature observations and are
    excluded from that contract. *)

type limits = {
  max_jobs : int;
  max_n : int;  (** sweep order cap, and the soundness-search cap for [check] *)
  max_lint_n : int;
  max_samples : int;
  max_deadline_ms : int option;  (** cap on client deadlines, if any *)
  max_shards : int;
      (** cap on coordinated-sweep partition width (and on the
          [shards] a [sweep-shard] request may claim) *)
  shard_bin : string;
      (** executable the coordinator forks shard workers from.
          Defaults to [Sys.executable_name] — right for the real
          daemon, overridden by in-process test servers whose
          executable is the test runner. *)
}

val default_limits : limits

type t = {
  limits : limits;
  version : string;
  metrics : Lcp_obs.Metrics.t;
  started_at : float;
}

val create : ?limits:limits -> ?version:string -> unit -> t

val cfg_of_request :
  t ->
  Protocol.request ->
  emit:(Lcp_obs.Sink.event -> unit) ->
  Lcp_obs.Run_cfg.t
(** Build the per-request cfg {e at admission time} — queue wait counts
    against the deadline. Client knobs are capped by [t.limits]; [emit]
    receives span/progress events iff the request asked for
    [progress]. *)

val work_counter_names : string list
(** The deterministic work counters (independent of [jobs] and of cache
    temperature) reported under ["counters"] in job payloads. *)

val cache_counter_names : string list
(** The temperature-dependent cache counters reported under
    ["cache"]. *)

val execute :
  t ->
  Protocol.request ->
  Lcp_obs.Run_cfg.t ->
  Protocol.status * string option * Lcp_obs.Json.t
(** Run one admitted job. Never raises: usage problems and execution
    failures come back as {!Protocol.Failed} with a reason, an already
    expired deadline as {!Protocol.Expired}. On return the request's
    counters have been folded into [t.metrics] and
    [serve/cache_warm_hits] bumped by the request's warm-state hits.
    Control kinds must not be passed here. *)

val ping_payload : t -> Lcp_obs.Json.t
val metrics_payload : t -> Lcp_obs.Json.t
