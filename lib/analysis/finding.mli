(** Sanitizer findings: one record per detected contract breach.

    Kinds are the stable vocabulary of the [lcp lint] report (their
    string forms appear in the JSON schema); severities classify how a
    finding gates CI — any [Error] fails the lint run. *)

type kind =
  | Radius_violation
      (** data read at a depth exceeding the contract's declared radius *)
  | Id_taint
      (** contract claims anonymity but the trace shows identifier reads *)
  | Id_variance
      (** verdicts changed under an injective re-identification *)
  | Port_variance
      (** verdicts changed under a re-drawn port assignment *)
  | Nondeterminism
      (** verdicts differed between repeated or [jobs=1] vs [jobs=N] runs *)

type severity = Error | Warning | Info

type t = {
  kind : kind;
  severity : severity;
  decoder : string;  (** registry key of the offending decoder *)
  detail : string;  (** human-readable evidence (instance, node, sample) *)
}

val make : ?severity:severity -> kind -> decoder:string -> string -> t
(** [severity] defaults to [Error] — every current kind is a breach of a
    declared contract. *)

val is_violation : t -> bool
(** [true] iff the severity is [Error]. *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val severity_to_string : severity -> string
val to_json : t -> Lcp_obs.Json.t
val pp : Format.formatter -> t -> unit
