type kind =
  | Radius_violation
  | Id_taint
  | Id_variance
  | Port_variance
  | Nondeterminism

type severity = Error | Warning | Info

type t = {
  kind : kind;
  severity : severity;
  decoder : string;
  detail : string;
}

let kind_to_string = function
  | Radius_violation -> "radius-violation"
  | Id_taint -> "id-taint"
  | Id_variance -> "id-variance"
  | Port_variance -> "port-variance"
  | Nondeterminism -> "nondeterminism"

let kind_of_string = function
  | "radius-violation" -> Some Radius_violation
  | "id-taint" -> Some Id_taint
  | "id-variance" -> Some Id_variance
  | "port-variance" -> Some Port_variance
  | "nondeterminism" -> Some Nondeterminism
  | _ -> None

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let make ?(severity = Error) kind ~decoder detail =
  { kind; severity; decoder; detail }

let is_violation f = f.severity = Error

let to_json f =
  Lcp_obs.Json.Obj
    [
      ("kind", Lcp_obs.Json.String (kind_to_string f.kind));
      ("severity", Lcp_obs.Json.String (severity_to_string f.severity));
      ("decoder", Lcp_obs.Json.String f.decoder);
      ("detail", Lcp_obs.Json.String f.detail);
    ]

let pp ppf f =
  Format.fprintf ppf "%s: [%s/%s] %s" f.decoder
    (severity_to_string f.severity)
    (kind_to_string f.kind) f.detail
