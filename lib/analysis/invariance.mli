(** Behavioral invariance passes (the Lemma 6.2 side of the sanitizer):
    re-run a decoder on the same graph and certificates under sampled
    re-drawings of the symmetry the contract claims it ignores, and
    diff the node-wise verdicts.

    Certificates are held fixed — the checks target decoders whose
    contract says the {e verdict function} is independent of concrete
    identifiers (anonymity) or of the port numbering. Decoders that
    legitimately verify identifiers or far-end ports (spanning,
    watermelon, the cycle codes) simply do not declare the
    corresponding contract bit and are skipped by {!Lint}.

    Sampling consumes the given RNG identically whether or not diffs
    are found, so downstream passes sharing the stream stay
    deterministic. At most one finding is reported per corpus item. *)

val check_ids :
  samples:int ->
  rng:Random.State.t ->
  decoder:string ->
  Lcp.Decoder.t ->
  Corpus.item list ->
  Finding.t list
(** Injective re-identification within the instance's id bound;
    {!Finding.Id_variance} on any verdict change. *)

val check_ports :
  samples:int ->
  rng:Random.State.t ->
  decoder:string ->
  Lcp.Decoder.t ->
  Corpus.item list ->
  Finding.t list
(** Uniformly re-drawn port assignment; {!Finding.Port_variance} on any
    verdict change. *)
