open Lcp_local

let first_diff a b =
  let n = Array.length a in
  let rec go i =
    if i = n then None else if a.(i) <> b.(i) then Some i else go (i + 1)
  in
  go 0

let describe (it : Corpus.item) =
  Printf.sprintf "%s instance on n=%d"
    (if it.honest then "honest" else "adversarial")
    (Instance.order it.inst)

(* One finding per corpus item at most: the first sample whose verdicts
   diverge is evidence enough, and it keeps reports readable. *)
let check_item ~samples ~rng ~decoder ~kind ~what ~redraw dec
    (it : Corpus.item) =
  let inst = it.inst in
  if Instance.order inst < 2 then None
  else begin
    let base = Lcp.Decoder.run dec inst in
    let found = ref None in
    for sample = 1 to samples do
      (* always consume the sample's randomness, so the stream position
         after this item does not depend on where a diff was found *)
      let remapped = redraw rng inst in
      if !found = None then begin
        let after = Lcp.Decoder.run dec remapped in
        match first_diff base after with
        | None -> ()
        | Some node ->
            found :=
              Some
                (Finding.make kind ~decoder
                   (Printf.sprintf
                      "verdict of node %d changed under %s (sample %d, %s)"
                      node what sample (describe it)))
      end
    done;
    !found
  end

let check_ids ~samples ~rng ~decoder dec corpus =
  List.filter_map
    (check_item ~samples ~rng ~decoder ~kind:Finding.Id_variance
       ~what:"an injective re-identification"
       ~redraw:(fun rng inst ->
         let ids =
           Ident.random rng ~bound:inst.Instance.ids.Ident.bound
             inst.Instance.graph
         in
         Instance.with_ids inst ids)
       dec)
    corpus

let check_ports ~samples ~rng ~decoder dec corpus =
  List.filter_map
    (check_item ~samples ~rng ~decoder ~kind:Finding.Port_variance
       ~what:"a re-drawn port assignment"
       ~redraw:(fun rng inst ->
         Instance.with_ports inst (Port.random rng inst.Instance.graph))
       dec)
    corpus
