let check ~jobs ~decoder dec corpus =
  let insts =
    Array.of_list (List.map (fun (it : Corpus.item) -> it.Corpus.inst) corpus)
  in
  let run_all () = Array.map (Lcp.Decoder.run dec) insts in
  let first = run_all () in
  let second = run_all () in
  let repeated =
    if first = second then []
    else
      [
        Finding.make Finding.Nondeterminism ~decoder
          "verdicts changed between two identical sequential runs";
      ]
  in
  let parallel =
    if jobs <= 1 then []
    else begin
      let par = Lcp_engine.Pool.map ~jobs (Lcp.Decoder.run dec) insts in
      if first = par then []
      else
        [
          Finding.make Finding.Nondeterminism ~decoder
            (Printf.sprintf "verdicts differ between jobs=1 and jobs=%d" jobs);
        ]
    end
  in
  repeated @ parallel
