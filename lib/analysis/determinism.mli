(** Determinism pass: a decoder must be a pure function of the view.

    Two defenses: the whole corpus is evaluated twice sequentially
    (catches hidden mutable state and RNG use), then once more fanned
    out over a [jobs]-wide {!Lcp_engine.Pool} and compared to the
    sequential verdicts bit-for-bit (catches domain-local state — the
    engine's cross-sweep caches and the [jobs]-independence guarantees
    of E3/E4 all assume this). *)

val check :
  jobs:int ->
  decoder:string ->
  Lcp.Decoder.t ->
  Corpus.item list ->
  Finding.t list
(** Empty when deterministic; {!Finding.Nondeterminism} findings
    otherwise. [jobs <= 1] skips the pool comparison. *)
