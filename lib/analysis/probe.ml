open Lcp_local

type eval = {
  node : int;
  verdict : bool;
  max_depth : int;
  id_reads : int;
  port_reads : int;
  label_nodes : int;
  label_bits : int;
}

type measurement = {
  verdicts : bool array;
  observed_radius : int;
  id_reads : int;
  port_reads : int;
  max_label_bits : int;
}

let summarize ~node ~verdict events =
  let max_depth = ref (-1) in
  let id_reads = ref 0 in
  let port_reads = ref 0 in
  (* certificate bits are charged once per ball node, at the largest
     size seen there (derived views share the parent's node indexing,
     so the same certificate re-read through [map_labels] or a
     sub-decoder does not double-bill) *)
  let label_tbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : View.Trace.event) ->
      if e.View.Trace.dist > !max_depth then max_depth := e.View.Trace.dist;
      match e.View.Trace.field with
      | View.Trace.Id -> incr id_reads
      | View.Trace.Port -> incr port_reads
      | View.Trace.Structure -> ()
      | View.Trace.Label ->
          let prev =
            Option.value (Hashtbl.find_opt label_tbl e.View.Trace.node) ~default:0
          in
          if e.View.Trace.bits > prev then
            Hashtbl.replace label_tbl e.View.Trace.node e.View.Trace.bits)
    events;
  let label_bits = Hashtbl.fold (fun _ bits acc -> acc + bits) label_tbl 0 in
  {
    node;
    verdict;
    max_depth = !max_depth;
    id_reads = !id_reads;
    port_reads = !port_reads;
    label_nodes = Hashtbl.length label_tbl;
    label_bits;
  }

let eval_node (dec : Lcp.Decoder.t) inst v =
  let view = View.extract inst ~r:dec.Lcp.Decoder.radius v in
  let verdict, events =
    View.Trace.record (fun () -> dec.Lcp.Decoder.accepts view)
  in
  summarize ~node:v ~verdict events

let run dec inst =
  Array.init (Instance.order inst) (fun v -> eval_node dec inst v)

let measure dec inst =
  let evals = run dec inst in
  {
    verdicts = Array.map (fun (e : eval) -> e.verdict) evals;
    observed_radius =
      Array.fold_left (fun acc (e : eval) -> max acc e.max_depth) (-1) evals;
    id_reads = Array.fold_left (fun acc (e : eval) -> acc + e.id_reads) 0 evals;
    port_reads =
      Array.fold_left (fun acc (e : eval) -> acc + e.port_reads) 0 evals;
    max_label_bits =
      Array.fold_left (fun acc (e : eval) -> max acc e.label_bits) 0 evals;
  }
