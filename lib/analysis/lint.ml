open Lcp

let schema_version = 1

type decoder_report = {
  key : string;
  contract : Decoder.contract;
  view_radius : int;
  evals : int;
  observed_radius : int;
  id_reads : int;
  port_reads : int;
  cert_bits_declared : int;
  cert_bits_read : int;
  findings : Finding.t list;
}

type report = {
  max_n : int;
  samples : int;
  decoders : decoder_report list;
}

let lint_entry ~cfg ~max_n ~samples (e : Registry.entry) =
  let key = e.Registry.key in
  let suite = e.Registry.suite in
  let dec = suite.Decoder.dec in
  let contract = e.Registry.contract in
  Run_cfg.progress cfg (Printf.sprintf "lint: %s" key);
  (* nested under the driver's [lint] span, so the full path in the
     metrics document is [lint/<key>] *)
  Run_cfg.span cfg key (fun () ->
      (* one stream drives corpus sampling and the invariance redraws;
         both consume it identically on every run, so the whole entry is
         a function of (seed, max_n, samples) — never of jobs *)
      let rng = Run_cfg.rng cfg in
      let corpus = Corpus.build ~max_n ~samples ~rng suite in
      let evals = ref 0 in
      let observed_radius = ref (-1) in
      let id_reads = ref 0 in
      let port_reads = ref 0 in
      let cert_read = ref 0 in
      let cert_declared = ref 0 in
      List.iter
        (fun (it : Corpus.item) ->
          let m = Probe.measure dec it.Corpus.inst in
          evals := !evals + Array.length m.Probe.verdicts;
          observed_radius := max !observed_radius m.Probe.observed_radius;
          id_reads := !id_reads + m.Probe.id_reads;
          port_reads := !port_reads + m.Probe.port_reads;
          cert_read := max !cert_read m.Probe.max_label_bits;
          cert_declared :=
            max !cert_declared (suite.Decoder.cert_bits it.Corpus.inst))
        corpus;
      let trace_findings =
        List.concat
          [
            (if !observed_radius > contract.Decoder.declared_radius then
               [
                 Finding.make Finding.Radius_violation ~decoder:key
                   (Printf.sprintf
                      "data read at depth %d exceeds the declared radius %d"
                      !observed_radius contract.Decoder.declared_radius);
               ]
             else []);
            (if contract.Decoder.declared_anonymous && !id_reads > 0 then
               [
                 Finding.make Finding.Id_taint ~decoder:key
                   (Printf.sprintf
                      "contract claims anonymity but %d identifier reads were \
                       traced"
                      !id_reads);
               ]
             else []);
          ]
      in
      let id_findings =
        if contract.Decoder.declared_anonymous then
          Invariance.check_ids ~samples ~rng ~decoder:key dec corpus
        else []
      in
      let port_findings =
        if contract.Decoder.declared_port_invariant then
          Invariance.check_ports ~samples ~rng ~decoder:key dec corpus
        else []
      in
      let det_findings =
        Determinism.check ~jobs:cfg.Run_cfg.jobs ~decoder:key dec corpus
      in
      let findings =
        trace_findings @ id_findings @ port_findings @ det_findings
      in
      Run_cfg.count cfg ~by:!evals "lint/evals";
      Run_cfg.count cfg ~by:(List.length findings) "lint/findings";
      Run_cfg.count cfg
        ~by:(List.length (List.filter Finding.is_violation findings))
        "lint/violations";
      {
        key;
        contract;
        view_radius = dec.Decoder.radius;
        evals = !evals;
        observed_radius = !observed_radius;
        id_reads = !id_reads;
        port_reads = !port_reads;
        cert_bits_declared = !cert_declared;
        cert_bits_read = !cert_read;
        findings;
      })

let run ?(cfg = Run_cfg.default) ?(max_n = Corpus.default_max_n)
    ?(samples = Corpus.default_samples) entries =
  Run_cfg.span cfg "lint" (fun () ->
      let sorted =
        List.sort
          (fun (a : Registry.entry) b ->
            String.compare a.Registry.key b.Registry.key)
          entries
      in
      {
        max_n;
        samples;
        decoders = List.map (lint_entry ~cfg ~max_n ~samples) sorted;
      })

let findings r = List.concat_map (fun d -> d.findings) r.decoders
let violations r = List.filter Finding.is_violation (findings r)

let decoder_report_to_json d =
  let open Lcp_obs.Json in
  Obj
    [
      ("decoder", String d.key);
      ( "contract",
        Obj
          [
            ("radius", Int d.contract.Decoder.declared_radius);
            ("anonymous", Bool d.contract.Decoder.declared_anonymous);
            ("port_invariant", Bool d.contract.Decoder.declared_port_invariant);
          ] );
      ("view_radius", Int d.view_radius);
      ("evals", Int d.evals);
      ("observed_radius", Int d.observed_radius);
      ("id_reads", Int d.id_reads);
      ("port_reads", Int d.port_reads);
      ( "cert_bits",
        Obj
          [
            ("declared", Int d.cert_bits_declared);
            ("read_max", Int d.cert_bits_read);
          ] );
      ("findings", List (List.map Finding.to_json d.findings));
    ]

let report_to_json r =
  let open Lcp_obs.Json in
  Obj
    [
      ("schema_version", Int schema_version);
      ("tool", String "lcp lint");
      ("max_n", Int r.max_n);
      ("samples", Int r.samples);
      ("decoders", List (List.map decoder_report_to_json r.decoders));
    ]

let pp_decoder_report ppf d =
  Format.fprintf ppf "%-14s r=%d/%d observed=%d ids=%d ports=%d cert=%d/%db %s"
    d.key d.contract.Decoder.declared_radius d.view_radius d.observed_radius
    d.id_reads d.port_reads d.cert_bits_read d.cert_bits_declared
    (if List.exists Finding.is_violation d.findings then "FAIL"
     else if d.findings <> [] then "warn"
     else "ok")

let pp_report ppf r =
  let viols = violations r in
  Format.fprintf ppf "@[<v>lint: %d decoders, %d findings (%d violations)"
    (List.length r.decoders)
    (List.length (findings r))
    (List.length viols);
  List.iter (fun d -> Format.fprintf ppf "@,  %a" pp_decoder_report d) r.decoders;
  List.iter
    (fun f -> Format.fprintf ppf "@,  %a" Finding.pp f)
    (findings r);
  Format.fprintf ppf "@]"
