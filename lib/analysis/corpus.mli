(** The instance corpus a decoder is linted against: every connected
    isomorphism class up to a small order, each carrying the honest
    prover's certificates (when the graph is in the promise class) and
    a deterministic sample of adversarial labelings drawn from the
    suite's own alphabet.

    Items are produced in a fixed order — ascending order, minimal-mask
    class representatives, honest before sampled — and the sampling
    consumes the caller's RNG sequentially, so a corpus is a pure
    function of [(max_n, samples, seed)]. That is what makes the whole
    lint report byte-deterministic across runs and across [jobs]. *)

open Lcp_local

type item = {
  inst : Instance.t;
  honest : bool;  (** labeling produced by the honest prover *)
}

val default_max_n : int
(** 4 — ten connected classes, every decoder evaluation still traced in
    milliseconds. *)

val default_samples : int
(** 6 adversarial labelings per class. *)

val build :
  ?max_n:int ->
  ?samples:int ->
  rng:Random.State.t ->
  Lcp.Decoder.suite ->
  item list
