(** Traced decoder evaluation: run an [accepts] function under the
    {!Lcp_local.View.Trace} recorder and condense the access stream
    into per-evaluation resource facts — the raw material for the
    radius and certificate-taint passes.

    Evaluations happen exactly as in {!Lcp.Decoder.run} (the view is
    extracted at the decoder's own radius), so the verdicts here are
    the production verdicts; tracing only adds observation. *)

open Lcp_local

type eval = {
  node : int;
  verdict : bool;
  max_depth : int;
      (** deepest data access, as distance from the center; [-1] when
          the evaluation read nothing *)
  id_reads : int;  (** identifier accessor calls *)
  port_reads : int;  (** port accessor calls *)
  label_nodes : int;  (** distinct ball nodes whose certificate was read *)
  label_bits : int;
      (** total certificate bits consumed, counted once per ball node
          (at the largest size seen there) *)
}

type measurement = {
  verdicts : bool array;  (** node-indexed, identical to [Decoder.run] *)
  observed_radius : int;  (** max of [max_depth] over all evaluations *)
  id_reads : int;  (** summed over evaluations *)
  port_reads : int;
  max_label_bits : int;
      (** the largest certificate budget any single evaluation consumed
          — compared against the suite's declared [cert_bits] as the
          taint/tightness metric *)
}

val eval_node : Lcp.Decoder.t -> Instance.t -> int -> eval
(** Trace one node's evaluation. *)

val run : Lcp.Decoder.t -> Instance.t -> eval array
(** Trace every node, in node order. *)

val measure : Lcp.Decoder.t -> Instance.t -> measurement
(** Aggregate {!run} over the instance. *)
