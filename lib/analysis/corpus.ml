open Lcp_graph
open Lcp_local

type item = { inst : Instance.t; honest : bool }

let default_max_n = 4
let default_samples = 6

let build ?(max_n = default_max_n) ?(samples = default_samples) ~rng
    (suite : Lcp.Decoder.suite) =
  let items = ref [] in
  for n = 1 to max_n do
    List.iter
      (fun g ->
        let base = Instance.make g in
        (match Lcp.Decoder.certify suite base with
        | Some certified -> items := { inst = certified; honest = true } :: !items
        | None -> ());
        let alphabet = suite.Lcp.Decoder.adversary_alphabet base in
        for _ = 1 to samples do
          let labels = Labeling.random rng ~alphabet g in
          items := { inst = Instance.with_labels base labels; honest = false } :: !items
        done)
      (Enumerate.classes n)
  done;
  List.rev !items
