(** The sanitizer driver behind [lcp lint]: sweep decoder registry
    entries through every analysis pass and produce one schema-versioned
    report.

    Per entry, in order: build the {!Corpus} (seeded from the
    {!Lcp.Run_cfg}), trace every evaluation with {!Probe} (radius and
    certificate-taint facts), raise trace findings against the entry's
    declared {!Lcp.Decoder.contract}, then run the behavioral passes —
    {!Invariance} for the symmetries the contract claims, and
    {!Determinism} (repeat + [jobs=1] vs [jobs=N] pool comparison).

    Every number in the report is a function of [(seed, max_n,
    samples)] alone: the corpus order is fixed, RNG consumption is
    jobs-independent, and entries are processed in sorted key order —
    so two runs with different [jobs] render byte-identical JSON.
    Progress, spans and counters ([lint/evals], [lint/findings],
    [lint/violations]) flow through the cfg's {!Lcp_obs.Sink}. *)

type decoder_report = {
  key : string;
  contract : Lcp.Decoder.contract;
  view_radius : int;  (** the extraction radius of the implementation *)
  evals : int;  (** traced decoder evaluations *)
  observed_radius : int;
      (** deepest data access seen in any evaluation; the slack against
          [contract.declared_radius] is the locality-tightness metric *)
  id_reads : int;
  port_reads : int;
  cert_bits_declared : int;
      (** the suite's information-theoretic certificate bound (max over
          the corpus) *)
  cert_bits_read : int;
      (** most certificate bits (8/byte, readable encoding) any single
          evaluation consumed — the hiding-relevant taint metric *)
  findings : Finding.t list;
}

type report = {
  max_n : int;
  samples : int;
  decoders : decoder_report list;  (** sorted by key *)
}

val schema_version : int

val run :
  ?cfg:Lcp.Run_cfg.t ->
  ?max_n:int ->
  ?samples:int ->
  Lcp.Registry.entry list ->
  report
(** Defaults: {!Lcp.Run_cfg.default}, {!Corpus.default_max_n},
    {!Corpus.default_samples}. *)

val findings : report -> Finding.t list
val violations : report -> Finding.t list
(** The findings that must fail a CI gate (severity [Error]). *)

val report_to_json : report -> Lcp_obs.Json.t
val pp_report : Format.formatter -> report -> unit
val pp_decoder_report : Format.formatter -> decoder_report -> unit
