(* Automorphism harvesting (Lcp_engine.Auto): the group extracted from
   Canon's branch-and-bound, validated against brute-force enumeration
   of all n! vertex permutations on every class of every order up to 6
   (connected and disconnected alike — Aut does not care). *)

open Lcp_graph
open Helpers
module Auto = Lcp_engine.Auto

let heavy_enabled = Sys.getenv_opt "LCP_HEAVY" <> None

(* every permutation of 0..n-1, as arrays *)
let all_perms n =
  let acc = ref [] in
  let used = Array.make n false in
  let cur = Array.make n 0 in
  let rec go i =
    if i = n then acc := Array.copy cur :: !acc
    else
      for x = 0 to n - 1 do
        if not used.(x) then begin
          used.(x) <- true;
          cur.(i) <- x;
          go (i + 1);
          used.(x) <- false
        end
      done
  in
  go 0;
  List.rev !acc

let is_automorphism g p =
  let ok = ref true in
  Graph.iter_edges (fun u v -> if not (Graph.mem_edge g p.(u) p.(v)) then ok := false) g;
  !ok

let brute_aut g =
  let n = Graph.order g in
  List.filter (is_automorphism g) (all_perms n)

let sorted_perms ps = List.sort compare (List.map Array.to_list ps)

let corpus max_n =
  List.concat_map
    (fun n -> Enumerate.classes ~connected:false n)
    (List.init max_n (fun i -> i + 1))

let check_group_equals_brute max_n () =
  List.iter
    (fun g ->
      let brute = brute_aut g in
      let auto = Auto.of_graph g in
      check_int
        (Printf.sprintf "|Aut| on %s" (Graph.to_string g))
        (List.length brute) (Auto.size auto);
      check_bool
        (Printf.sprintf "group elements on %s" (Graph.to_string g))
        true
        (sorted_perms brute = sorted_perms (Array.to_list (Auto.perms auto))))
    (corpus max_n)

let test_group_small () = check_group_equals_brute 5 ()

let test_group_n6 () =
  if not heavy_enabled then () else check_group_equals_brute 6 ()

(* closure of the generating set under composition = the full group *)
let closure n gens =
  let tbl = Hashtbl.create 64 in
  let id = Array.init n Fun.id in
  let add p = Hashtbl.replace tbl (Array.to_list p) p in
  add id;
  let frontier = ref [ id ] in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun p ->
        List.iter
          (fun gen ->
            let q = Array.init n (fun v -> gen.(p.(v))) in
            if not (Hashtbl.mem tbl (Array.to_list q)) then begin
              add q;
              next := q :: !next
            end)
          gens)
      !frontier;
    frontier := !next
  done;
  Hashtbl.fold (fun _ p acc -> p :: acc) tbl []

let test_generators_generate () =
  List.iter
    (fun g ->
      let auto = Auto.of_graph g in
      let gens = Auto.generators auto in
      check_bool "trivial group iff no generators" (Auto.is_trivial auto)
        (gens = []);
      check_bool
        (Printf.sprintf "generators close to the full group on %s"
           (Graph.to_string g))
        true
        (sorted_perms (closure (Graph.order g) gens)
        = sorted_perms (Array.to_list (Auto.perms auto))))
    (corpus 5)

let test_orbits_match_brute () =
  List.iter
    (fun g ->
      let n = Graph.order g in
      let brute = brute_aut g in
      (* brute orbit id: minimum image of v across the group *)
      let expect =
        Array.init n (fun v ->
            List.fold_left (fun acc p -> min acc p.(v)) v brute)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "orbits on %s" (Graph.to_string g))
        expect
        (Auto.orbits (Auto.of_graph g)))
    (corpus 5)

(* known groups: |Aut C5| = 10 (dihedral), |Aut K4| = 24, |Aut P4| = 2,
   |Aut K3,3| = 72, rigid example from the n=6 corpus *)
let test_known_sizes () =
  let size g = Auto.size (Auto.of_graph g) in
  check_int "C5 dihedral" 10 (size (Builders.cycle 5));
  check_int "K4 symmetric" 24 (size (Builders.complete 4));
  check_int "P4 reversal" 2 (size (Builders.path 4));
  check_int "K3,3" 72 (size (Builders.complete_bipartite 3 3))

(* the lex_constraints quotient keeps exactly one representative per
   orbit of labelings when combined with the exact-minimality filter —
   sanity-checked here by counting: chain constraints alone leave a
   superset of the minima, never cut a minimum, and the minima count
   equals the number of labeling orbits (Burnside check) *)
let test_constraints_sound () =
  let alphabet = [ "a"; "b" ] in
  List.iter
    (fun g ->
      let n = Graph.order g in
      let auto = Auto.of_graph g in
      let perms = Auto.perms auto in
      let cs = Auto.lex_constraints auto ~order:(Array.init n Fun.id) in
      let rank s = if s = "a" then 0 else 1 in
      (* enumerate all labelings; classify minimality by brute force *)
      let minima = ref 0 and survivors = ref 0 and orbits = ref 0 in
      let seen = Hashtbl.create 64 in
      Lcp_local.Labeling.iter_all ~alphabet g (fun lab ->
          let key = Array.to_list lab in
          let lab = Array.copy lab in
          (* brute lex-minimality over the group *)
          let minimal =
            Array.for_all
              (fun p ->
                let img = Array.init n (fun v -> lab.(p.(v))) in
                compare (Array.map rank lab) (Array.map rank img) <= 0)
              perms
          in
          if minimal then incr minima;
          if not (Hashtbl.mem seen key) then begin
            incr orbits;
            Array.iter
              (fun p ->
                Hashtbl.replace seen
                  (Array.to_list (Array.init n (fun v -> lab.(p.(v)))))
                  ())
              perms
          end;
          (* does the labeling satisfy every chain constraint? *)
          let ok = ref true in
          Array.iteri
            (fun s es ->
              List.iter
                (fun e -> if rank lab.(s) < rank lab.(e) then ok := false)
                es)
            cs;
          if !ok then incr survivors;
          (* soundness: a constraint violation implies non-minimality *)
          if not !ok then
            check_bool "constraints only cut non-minima" false minimal);
      check_bool "constraints keep every minimum" true (!survivors >= !minima);
      (* distinct minima = orbit count: minima are canonical forms *)
      check_int
        (Printf.sprintf "one minimum per labeling orbit on %s"
           (Graph.to_string g))
        !orbits !minima)
    [ Builders.cycle 4; Builders.cycle 5; Builders.complete 4; Builders.path 5 ]

(* prefix programs decide minimality exactly once the labeling is
   complete: walking every program at i = n-1 cuts L iff some
   automorphism sends L to a lexicographically smaller labeling, i.e.
   iff L is not the minimum of its orbit. (On partial labelings the
   walk is merely sound — it breaks off at the first undecided step —
   which the prover-level A/B tests exercise; exactness at the leaves
   is the property that pins the program construction itself.) *)
let test_prefix_programs_exact () =
  let alphabet = [ "a"; "b" ] in
  List.iter
    (fun g ->
      let n = Graph.order g in
      let auto = Auto.of_graph g in
      let perms = Auto.perms auto in
      let order = Array.init n Fun.id in
      let progs = Auto.prefix_programs auto ~order in
      (* sorted by activation step, as documented *)
      let act prog =
        let s, e = prog.(0) in
        max s e
      in
      Array.iteri
        (fun i prog ->
          if i > 0 then
            check_bool "programs sorted by activation" true
              (act progs.(i - 1) <= act prog))
        progs;
      let rank s = if s = "a" then 0 else 1 in
      Lcp_local.Labeling.iter_all ~alphabet g (fun lab ->
          let rk = Array.map rank lab in
          let minimal =
            Array.for_all
              (fun p ->
                compare rk (Array.init n (fun v -> rk.(p.(v)))) <= 0)
              perms
          in
          let cut =
            Array.exists
              (fun prog ->
                let m = Array.length prog in
                let j = ref 0 and verdict = ref false and walking = ref true in
                while !walking && !j < m do
                  let s, e = prog.(!j) in
                  if rk.(s) > rk.(e) then begin
                    verdict := true;
                    walking := false
                  end
                  else if rk.(s) < rk.(e) then walking := false
                  else incr j
                done;
                !verdict)
              progs
          in
          check_bool
            (Printf.sprintf "program cut = non-minimality on %s"
               (Graph.to_string g))
            (not minimal) cut))
    [ Builders.cycle 4; Builders.cycle 5; Builders.complete 4; Builders.path 5 ]

let suite =
  [
    case "group = brute force, all classes n <= 5" test_group_small;
    case "generators close to the group" test_generators_generate;
    case "orbits = brute force" test_orbits_match_brute;
    case "known group sizes" test_known_sizes;
    case "lex constraints: sound and exact up to minimality"
      test_constraints_sound;
    case "prefix programs: exact minimality at complete labelings"
      test_prefix_programs_exact;
    slow_case "group = brute force, n = 6 (LCP_HEAVY)" test_group_n6;
  ]
