open Lcp_graph
open Lcp_local
open Helpers

let test_const_of_list () =
  let g = Builders.path 3 in
  Alcotest.(check (array string)) "const" [| "x"; "x"; "x" |] (Labeling.const g "x");
  Alcotest.(check (array string)) "of_list" [| "a"; "b" |] (Labeling.of_list [ "a"; "b" ])

let test_max_bits () =
  check_int "bits" 24 (Labeling.max_bits [| "a"; "abc"; "" |]);
  check_int "empty" 0 (Labeling.max_bits [| ""; "" |])

let test_iter_all () =
  let g = Builders.path 3 in
  let count = ref 0 in
  Labeling.iter_all ~alphabet:[ "0"; "1" ] g (fun _ -> incr count);
  check_int "2^3" 8 !count;
  check_int "count function" 8 (Labeling.count ~alphabet:[ "0"; "1" ] g)

let test_iter_all_copies () =
  let g = Builders.path 2 in
  let seen = ref [] in
  Labeling.iter_all ~alphabet:[ "a"; "b" ] g (fun lab ->
      seen := Array.copy lab :: !seen);
  check_int "4 labelings" 4 (List.length (List.sort_uniq Stdlib.compare !seen))

let test_backtracking_prune () =
  let g = Builders.path 3 in
  (* prune any branch that assigns "1" to node 0 *)
  let count = ref 0 in
  Labeling.iter_backtracking ~alphabet:[ "0"; "1" ] g
    ~prune:(fun v lab -> v = 0 && lab.(0) = "1")
    (fun _ -> incr count);
  check_int "half the space" 4 !count

let test_backtracking_order () =
  let g = Builders.path 3 in
  let alphabet = [ "0"; "1" ] in
  (* a reordered backtracking visit covers exactly the full space *)
  let seen = ref [] in
  Labeling.iter_backtracking_order ~alphabet ~order:[| 2; 0; 1 |] g
    ~prune:(fun _ _ -> false)
    (fun lab -> seen := Array.copy lab :: !seen);
  let all = ref [] in
  Labeling.iter_all ~alphabet g (fun lab -> all := Array.copy lab :: !all);
  check_bool "same labeling set" true
    (List.sort_uniq Stdlib.compare !seen = List.sort_uniq Stdlib.compare !all);
  (* prune receives the step index, not the node: step 0 assigns node 2 *)
  let count = ref 0 in
  Labeling.iter_backtracking_order ~alphabet ~order:[| 2; 0; 1 |] g
    ~prune:(fun i lab -> i = 0 && lab.(2) = "1")
    (fun _ -> incr count);
  check_int "pruning on node 2 at step 0 halves the space" 4 !count;
  (* a non-permutation order is rejected *)
  check_bool "duplicate order rejected" true
    (try
       Labeling.iter_backtracking_order ~alphabet ~order:[| 0; 0; 1 |] g
         ~prune:(fun _ _ -> false)
         (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_count_saturates () =
  (* 10^40 labelings overflow a 63-bit int: count clamps to max_int
     instead of wrapping, so budget guards stay monotone *)
  let g = Builders.path 40 in
  let alphabet = List.init 10 string_of_int in
  check_int "saturates at max_int" max_int (Labeling.count ~alphabet g);
  check_int "small spaces still exact" 8
    (Labeling.count ~alphabet:[ "0"; "1" ] (Builders.path 3))

let test_exists_all () =
  let g = Builders.path 2 in
  check_bool "found" true
    (Labeling.exists_all ~alphabet:[ "0"; "1" ] g (fun lab ->
         lab.(0) = "1" && lab.(1) = "0"));
  check_bool "not found" false
    (Labeling.exists_all ~alphabet:[ "0" ] g (fun lab -> lab.(0) = "1"))

let test_empty_alphabet () =
  let g = Builders.path 2 in
  let count = ref 0 in
  Labeling.iter_all ~alphabet:[] g (fun _ -> incr count);
  check_int "no labelings" 0 !count

let test_random () =
  let g = Builders.path 5 in
  let lab = Labeling.random (rng ()) ~alphabet:[ "x"; "y" ] g in
  check_int "length" 5 (Array.length lab);
  check_bool "in alphabet" true (Array.for_all (fun s -> s = "x" || s = "y") lab)

let suite =
  [
    case "const / of_list" test_const_of_list;
    case "max_bits" test_max_bits;
    case "iter_all count" test_iter_all;
    case "iter_all yields distinct labelings" test_iter_all_copies;
    case "backtracking prune" test_backtracking_prune;
    case "backtracking with explicit order" test_backtracking_order;
    case "count saturates instead of overflowing" test_count_saturates;
    case "exists_all" test_exists_all;
    case "empty alphabet" test_empty_alphabet;
    case "random" test_random;
  ]
