(* The CSR substrate contract: flat-array traversal agrees with the
   derived list API, port order (= CSR row order = ascending neighbor
   id) survives every graph-producing operation, construction is
   O(n + m) with the seed's validation intact, the seeded random-graph
   generators are deterministic, and the sampled phases tally
   identically for jobs = 1 and jobs = N. *)

open Lcp_graph
open Helpers

(* ------------------------------------------------------------------ *)
(* CSR / list agreement                                                 *)

let agreement_graphs () =
  [
    Graph.empty 0;
    Graph.empty 3;
    p4 ();
    c6 ();
    k4 ();
    Builders.petersen ();
    Builders.star 5;
    Builders.random_gnp (rng ()) 12 0.4;
  ]

let test_traversal_agreement () =
  List.iter
    (fun g ->
      for v = 0 to Graph.order g - 1 do
        let as_list = Graph.neighbors g v in
        let by_fold =
          List.rev (Graph.fold_neighbors (fun w acc -> w :: acc) g v [])
        in
        let by_iter =
          let r = ref [] in
          Graph.iter_neighbors (fun w -> r := w :: !r) g v;
          List.rev !r
        in
        let by_array = Array.to_list (Graph.neighbors_array g v) in
        let by_nth =
          List.init (Graph.degree g v) (Graph.nth_neighbor g v)
        in
        Alcotest.(check int_list) "fold = list" as_list by_fold;
        Alcotest.(check int_list) "iter = list" as_list by_iter;
        Alcotest.(check int_list) "array = list" as_list by_array;
        Alcotest.(check int_list) "nth = list" as_list by_nth;
        check_int "degree = length" (List.length as_list) (Graph.degree g v)
      done)
    (agreement_graphs ())

let test_rows_ascending () =
  List.iter
    (fun g ->
      for v = 0 to Graph.order g - 1 do
        let row = Graph.neighbors_array g v in
        Array.iteri
          (fun i w ->
            if i > 0 then
              check_bool "strictly ascending" true (row.(i - 1) < w);
            check_bool "no self-loop" true (w <> v))
          row
      done)
    (agreement_graphs ())

let test_rank_and_predicates () =
  let g = Builders.petersen () in
  for v = 0 to Graph.order g - 1 do
    List.iteri
      (fun i w ->
        Alcotest.(check (option int))
          "rank inverts nth" (Some i)
          (Graph.neighbor_rank g v w);
        check_bool "mem_edge" true (Graph.mem_edge g v w);
        check_bool "exists" true (Graph.exists_neighbor (Int.equal w) g v))
      (Graph.neighbors g v);
    Alcotest.(check (option int)) "rank of non-neighbor" None
      (Graph.neighbor_rank g v v)
  done;
  check_bool "for_all" true
    (Graph.for_all_neighbors (fun w -> w <> 0) g 7);
  Alcotest.(check (option int)) "find" (Some 6) (Graph.find_neighbor (fun w -> w > 5) g 1)

(* ------------------------------------------------------------------ *)
(* port order survives graph-producing operations                       *)

let ports g = Array.init (Graph.order g) (Graph.neighbors_array g)

let test_port_order_relabel () =
  let g = Builders.random_gnp (rng ()) 10 0.4 in
  let perm = [| 3; 1; 4; 0; 9; 2; 6; 8; 7; 5 |] in
  let h = Graph.relabel g perm in
  Array.iter
    (fun row ->
      Array.iteri
        (fun i w -> if i > 0 then check_bool "ascending" true (row.(i - 1) < w))
        row)
    (ports h);
  (* the edge relation is the permuted one *)
  Graph.iter_edges
    (fun u v -> check_bool "edge mapped" true (Graph.mem_edge h perm.(u) perm.(v)))
    g

let test_port_order_induced () =
  let g = Builders.petersen () in
  let h, _ = Graph.induced g [ 9; 0; 3; 2; 7; 4 ] in
  check_int "order" 6 (Graph.order h);
  Array.iter
    (fun row ->
      Array.iteri
        (fun i w -> if i > 0 then check_bool "ascending" true (row.(i - 1) < w))
        row)
    (ports h)

let test_port_order_disjoint_union () =
  let g = Graph.disjoint_union (c5 ()) (Builders.star 3) in
  check_int "order" 9 (Graph.order g);
  Array.iter
    (fun row ->
      Array.iteri
        (fun i w -> if i > 0 then check_bool "ascending" true (row.(i - 1) < w))
        row)
    (ports g);
  (* right block is the star, shifted by 5 *)
  Alcotest.(check int_list) "star center row" [ 6; 7; 8 ] (Graph.neighbors g 5)

(* ------------------------------------------------------------------ *)
(* construction: validation, dedup, O(n + m) scale                      *)

let test_of_edges_validation () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.of_edges: edge (0,5) out of range [0,2)")
    (fun () -> ignore (Graph.of_edges 2 [ (0, 1); (0, 5) ]));
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Graph.of_edges: self-loop at 1") (fun () ->
      ignore (Graph.of_edges 3 [ (1, 1) ]));
  let g = Graph.of_edges 3 [ (2, 1); (1, 2); (0, 2); (2, 0); (2, 1) ] in
  check_int "duplicates collapsed" 2 (Graph.size g)

let test_builder () =
  let b = Graph.Builder.create ~size_hint:1 4 in
  check_int "empty" 0 (Graph.Builder.edge_count b);
  Graph.Builder.add_edge b 3 0;
  Graph.Builder.add_edge b 1 3;
  Graph.Builder.add_edge b 0 3;
  (* duplicate, either orientation *)
  check_int "arc count" 3 (Graph.Builder.edge_count b);
  let g = Graph.Builder.graph b in
  check_graph "same as of_edges" (Graph.of_edges 4 [ (0, 3); (1, 3) ]) g;
  Alcotest.check_raises "builder validates"
    (Invalid_argument "Graph.Builder.add_edge: self-loop at 2") (fun () ->
      Graph.Builder.add_edge b 2 2)

let test_big_build () =
  (* a 60k-node, ~120k-edge build must be effectively instant; the
     pre-CSR sort-per-node construction would be visibly slow here *)
  let n = 60_000 in
  let b = Graph.Builder.create ~size_hint:(2 * n) n in
  for v = 1 to n - 1 do
    Graph.Builder.add_edge b (v - 1) v;
    Graph.Builder.add_edge b (v / 2) v
  done;
  let g = Graph.Builder.graph b in
  check_int "order" n (Graph.order g);
  check_bool "path edge" true (Graph.mem_edge g 0 1);
  check_bool "connected" true (Graph.is_connected g);
  check_int "edges dedup"
    (Graph.size g)
    (List.length (Graph.edges g))

(* ------------------------------------------------------------------ *)
(* seeded generators                                                    *)

let test_random_graphs_deterministic () =
  List.iter
    (fun model ->
      let mk seed =
        match
          Random_graphs.of_model (Random.State.make [| seed |]) ~nodes:3_000
            model
        with
        | Ok g -> g
        | Error msg -> Alcotest.fail msg
      in
      check_graph (model ^ " same seed") (mk 7) (mk 7);
      check_bool
        (model ^ " different seed")
        (model = "grid")
        (Graph.equal (mk 7) (mk 8)))
    [ "gnp"; "gnp:2.5"; "ba"; "ba:2"; "tree"; "grid" ]

let test_model_errors () =
  List.iter
    (fun spec ->
      match
        Random_graphs.of_model (Random.State.make [| 1 |]) ~nodes:10 spec
      with
      | Ok _ -> Alcotest.fail ("accepted bad spec " ^ spec)
      | Error _ -> ())
    [ "wat"; "gnp:zz"; "ba:0"; "gnp:-1" ]

let test_double_cover () =
  let g = Builders.petersen () in
  let dc = Builders.double_cover g in
  check_int "order doubles" 20 (Graph.order dc);
  check_int "size doubles" (2 * Graph.size g) (Graph.size dc);
  check_bool "bipartite" true (Coloring.is_bipartite dc);
  check_bool "connected (g non-bipartite)" true (Graph.is_connected dc);
  (* the double cover of a bipartite graph is disconnected *)
  check_bool "bipartite input splits" false
    (Graph.is_connected (Builders.double_cover (c6 ())))

(* ------------------------------------------------------------------ *)
(* sampled phases: jobs-invariance                                      *)

let strip_report r =
  let open Lcp.Sampling in
  {
    r with
    build_wall_ns = 0;
    completeness = Option.map (fun c -> { c with c_wall_ns = 0 }) r.completeness;
    soundness = Option.map (fun s -> { s with s_wall_ns = 0 }) r.soundness;
    hiding = Option.map (fun h -> { h with h_wall_ns = 0 }) r.hiding;
  }

let test_sampling_jobs_invariant () =
  let g =
    Random_graphs.gnp_avg_degree (Random.State.make [| 13 |]) 400
      ~avg_degree:4.
  in
  let run jobs =
    let cfg = Lcp_obs.Run_cfg.make ~jobs ~seed:13 () in
    strip_report
      (Lcp.Sampling.run ~eval_nodes:150 ~trials:4 ~pairs:60 ~cfg
         ~decoder:"trivial2" ~model:"gnp" (Lcp.D_trivial.suite ~k:2) g)
  in
  let r1 = run 1 and r4 = run 4 in
  check_bool "jobs=1 = jobs=4" true (r1 = r4);
  (* and the phases actually ran *)
  check_bool "completeness ran" true (r1.Lcp.Sampling.completeness <> None);
  (match r1.Lcp.Sampling.completeness with
  | Some c ->
      check_int "all sampled nodes accept" c.Lcp.Sampling.evaluated
        c.Lcp.Sampling.accepted
  | None -> ());
  check_int "no violations" 0 r1.Lcp.Sampling.violations

let test_sampling_deterministic () =
  let g =
    Random_graphs.gnp_avg_degree (Random.State.make [| 21 |]) 300
      ~avg_degree:3.
  in
  let run () =
    let cfg = Lcp_obs.Run_cfg.make ~jobs:2 ~seed:21 () in
    strip_report
      (Lcp.Sampling.run ~eval_nodes:100 ~trials:3 ~pairs:40 ~cfg
         ~decoder:"trivial2" ~model:"gnp" (Lcp.D_trivial.suite ~k:2) g)
  in
  check_bool "same seed, same report" true (run () = run ())

let suite =
  [
    case "traversal agreement" test_traversal_agreement;
    case "rows ascending" test_rows_ascending;
    case "rank and predicates" test_rank_and_predicates;
    case "port order: relabel" test_port_order_relabel;
    case "port order: induced" test_port_order_induced;
    case "port order: disjoint union" test_port_order_disjoint_union;
    case "of_edges validation" test_of_edges_validation;
    case "builder" test_builder;
    case "big build" test_big_build;
    case "random graphs deterministic" test_random_graphs_deterministic;
    case "model errors" test_model_errors;
    case "double cover" test_double_cover;
    case "sampling jobs invariant" test_sampling_jobs_invariant;
    case "sampling deterministic" test_sampling_deterministic;
  ]
