(* The decoder sanitizer: positive path (every shipped decoder honors
   its contract), negative path (seeded misbehaving decoders are caught
   with the right finding kinds), and the determinism of the report
   across jobs. *)

open Lcp_graph
open Lcp_local
open Lcp
open Helpers

let findings_of_kind kind report =
  List.filter
    (fun (f : Lcp_analysis.Finding.t) -> f.Lcp_analysis.Finding.kind = kind)
    (Lcp_analysis.Lint.findings report)

let lint ?(max_n = 3) ?(samples = 3) entries =
  Lcp_analysis.Lint.run ~cfg:(Run_cfg.make ~jobs:2 ()) ~max_n ~samples entries

(* ------------------------------------------------------------------ *)
(* misbehaving decoders (the sanitizer's negative path)                *)

(* A promise-free suite wrapper: the sanitizer checks decoder
   contracts, not soundness, so the bundle parts can be trivial. *)
let bad_suite dec =
  {
    Decoder.dec;
    promise = (fun _ -> true);
    prover = (fun inst -> Some (Labeling.const inst.Instance.graph "0"));
    adversary_alphabet = (fun _ -> [ "0"; "1"; Decoder.junk ]);
    cert_bits = (fun _ -> 1);
  }

(* Requests radius-2 views but is registered with a declared radius of
   1 — and really does read certificates at depth 2. *)
let deep_reader =
  Decoder.make ~name:"bad-deep-reader" ~radius:2 ~anonymous:true (fun view ->
      let ok = ref true in
      for u = 0 to View.size view - 1 do
        if View.label view u = Decoder.junk then ok := false
      done;
      !ok)

let deep_entry = Registry.entry ~radius:1 "bad-deep-reader" (bad_suite deep_reader)

(* Claims anonymity but branches on the raw identifier. *)
let id_peeker =
  Decoder.make ~name:"bad-id-peeker" ~radius:1 ~anonymous:true (fun view ->
      View.center_id view mod 2 = 0)

let id_entry = Registry.entry "bad-id-peeker" (bad_suite id_peeker)

(* Claims port invariance but branches on far-end port numbers. *)
let port_peeker =
  Decoder.make ~name:"bad-port-peeker" ~radius:1 ~anonymous:true (fun view ->
      List.for_all (fun (_, _, fp) -> fp = 1) (View.center_neighbors view))

let port_entry =
  Registry.entry ~port_invariant:true "bad-port-peeker" (bad_suite port_peeker)

(* ------------------------------------------------------------------ *)
(* trace plumbing                                                      *)

let test_trace_records () =
  let view = View.extract (inst (p4 ())) ~r:2 1 in
  let (), events =
    View.Trace.record (fun () ->
        ignore (View.center_label view);
        ignore (View.id view 1))
  in
  check_int "two events" 2 (List.length events);
  (match events with
  | [ a; b ] ->
      check_bool "label first" true (a.View.Trace.field = View.Trace.Label);
      check_int "label bits" (View.Trace.label_bits "") a.View.Trace.bits;
      check_bool "id second" true (b.View.Trace.field = View.Trace.Id)
  | _ -> Alcotest.fail "expected exactly the two recorded events");
  check_bool "recorder disarmed outside" false (View.Trace.active ())

let test_trace_nests_and_restores () =
  let view = View.extract (inst (c4 ())) ~r:1 0 in
  let (_, outer) =
    View.Trace.record (fun () ->
        ignore (View.center_label view);
        let (), inner =
          View.Trace.record (fun () -> ignore (View.label view 1))
        in
        check_int "inner sees only its own read" 1 (List.length inner);
        ignore (View.center_degree view))
  in
  (* the outer trace has its own two reads, not the inner one *)
  check_int "outer events" 2 (List.length outer)

let test_untraced_is_silent () =
  let view = View.extract (inst (p4 ())) ~r:1 0 in
  ignore (View.center_label view);
  check_bool "no recorder armed" false (View.Trace.active ())

(* ------------------------------------------------------------------ *)
(* probe measurements                                                  *)

let test_probe_trivial_radius () =
  let certified = certify_exn (D_trivial.suite ~k:2) (p4 ()) in
  let m = Lcp_analysis.Probe.measure (D_trivial.decoder ~k:2) certified in
  check_int "observed radius" 1 m.Lcp_analysis.Probe.observed_radius;
  check_int "no id reads" 0 m.Lcp_analysis.Probe.id_reads;
  check_bool "all accept" true (Array.for_all Fun.id m.Lcp_analysis.Probe.verdicts)

let test_probe_verdicts_match_run () =
  let certified = certify_exn D_spanning.suite (c6 ()) in
  let m = Lcp_analysis.Probe.measure D_spanning.decoder certified in
  check_bool "tracing does not change verdicts" true
    (m.Lcp_analysis.Probe.verdicts = Decoder.run D_spanning.decoder certified)

let test_probe_cert_bits () =
  let g = Builders.path 2 in
  let certified = certify_exn (D_trivial.suite ~k:2) g in
  let m = Lcp_analysis.Probe.measure (D_trivial.decoder ~k:2) certified in
  (* each evaluation reads its own and its neighbor's one-byte color *)
  check_int "bits read" 16 m.Lcp_analysis.Probe.max_label_bits

(* ------------------------------------------------------------------ *)
(* lint: positive and negative paths                                   *)

let test_registry_is_clean () =
  let report =
    Lcp_analysis.Lint.run ~cfg:(Run_cfg.make ~jobs:2 ()) Registry.all
  in
  Alcotest.(check (list string))
    "no findings at all" []
    (List.map
       (fun (f : Lcp_analysis.Finding.t) ->
         Lcp_analysis.Finding.kind_to_string f.Lcp_analysis.Finding.kind)
       (Lcp_analysis.Lint.findings report));
  check_int "eleven decoders" (List.length Registry.all)
    (List.length report.Lcp_analysis.Lint.decoders)

let test_deep_reader_flagged () =
  let report = lint [ deep_entry ] in
  check_bool "radius violation found" true
    (findings_of_kind Lcp_analysis.Finding.Radius_violation report <> []);
  check_bool "it is a violation" true (Lcp_analysis.Lint.violations report <> []);
  (* the honest reads-everything decoder breaks no other contract *)
  check_bool "no id findings" true
    (findings_of_kind Lcp_analysis.Finding.Id_taint report = []
    && findings_of_kind Lcp_analysis.Finding.Id_variance report = [])

let test_id_peeker_flagged () =
  let report = lint [ id_entry ] in
  check_bool "id taint found" true
    (findings_of_kind Lcp_analysis.Finding.Id_taint report <> []);
  check_bool "id variance found" true
    (findings_of_kind Lcp_analysis.Finding.Id_variance report <> []);
  check_bool "no radius violation" true
    (findings_of_kind Lcp_analysis.Finding.Radius_violation report = [])

let test_port_peeker_flagged () =
  let report = lint [ port_entry ] in
  check_bool "port variance found" true
    (findings_of_kind Lcp_analysis.Finding.Port_variance report <> [])

let test_distinct_kinds () =
  let report = lint [ deep_entry; id_entry ] in
  let kinds =
    List.sort_uniq compare
      (List.map
         (fun (f : Lcp_analysis.Finding.t) ->
           Lcp_analysis.Finding.kind_to_string f.Lcp_analysis.Finding.kind)
         (Lcp_analysis.Lint.violations report))
  in
  check_bool "both kinds, distinct" true
    (List.mem "radius-violation" kinds && List.mem "id-taint" kinds)

(* ------------------------------------------------------------------ *)
(* report plumbing                                                     *)

let test_report_json_roundtrip () =
  let report = lint [ deep_entry ] in
  let json = Lcp_analysis.Lint.report_to_json report in
  match Json.of_string (Json.to_string_pretty json) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      let open Json in
      (match let* v = member "schema_version" parsed in to_int v with
      | Ok v -> check_int "schema version" Lcp_analysis.Lint.schema_version v
      | Error e -> Alcotest.fail e);
      (match let* ds = member "decoders" parsed in to_list ds with
      | Ok [ d ] -> (
          match let* f = member "findings" d in to_list f with
          | Ok fs -> check_bool "findings serialized" true (fs <> [])
          | Error e -> Alcotest.fail e)
      | Ok _ -> Alcotest.fail "expected one decoder entry"
      | Error e -> Alcotest.fail e)

let test_report_deterministic_across_jobs () =
  let render jobs =
    Json.to_string
      (Lcp_analysis.Lint.report_to_json
         (Lcp_analysis.Lint.run
            ~cfg:(Run_cfg.make ~jobs ())
            ~max_n:3 ~samples:3 Registry.all))
  in
  Alcotest.(check string) "jobs=1 and jobs=4 render identically" (render 1)
    (render 4)

let suite =
  [
    case "trace: accessors record events" test_trace_records;
    case "trace: nesting restores the outer recorder" test_trace_nests_and_restores;
    case "trace: nothing recorded when disarmed" test_untraced_is_silent;
    case "probe: trivial decoder has observed radius 1" test_probe_trivial_radius;
    case "probe: traced verdicts equal Decoder.run" test_probe_verdicts_match_run;
    case "probe: certificate bits accounted" test_probe_cert_bits;
    slow_case "lint: the shipped registry is clean" test_registry_is_clean;
    case "lint: deep reader breaks its radius contract" test_deep_reader_flagged;
    case "lint: id peeker breaks its anonymity contract" test_id_peeker_flagged;
    case "lint: port peeker breaks its port contract" test_port_peeker_flagged;
    case "lint: the two seeded offenders get distinct kinds" test_distinct_kinds;
    case "lint: report JSON parses back" test_report_json_roundtrip;
    case "lint: report identical for jobs=1 and jobs=4"
      test_report_deterministic_across_jobs;
  ]
