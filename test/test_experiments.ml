open Lcp
open Helpers

let light () = Run_cfg.make ~heavy:false ()

(* The full battery (light mode) must reproduce every paper artifact. *)
let test_battery () =
  let reports = Experiments.run_all ~cfg:(light ()) () in
  check_int "twenty experiments" 20 (List.length reports);
  List.iter
    (fun r ->
      check_bool (r.Report.id ^ " passes") true (Report.passed r))
    reports

let test_individual_ids () =
  let reports = Experiments.run_all ~cfg:(light ()) () in
  Alcotest.(check (list string)) "ids in order"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18"; "E19"; "E20" ]
    (List.map (fun r -> r.Report.id) reports)

let suite =
  [
    slow_case "full battery (light)" test_battery;
    slow_case "experiment ids" test_individual_ids;
  ]
