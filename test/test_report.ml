open Lcp
open Helpers

let sample =
  {
    Report.id = "EX";
    title = "sample";
    rows =
      [
        Report.row "plain" "value";
        Report.check "good" true ~expected:"yes" ~actual:"yes";
        Report.check "bad" false ~expected:"yes" ~actual:"no";
      ];
  }

let test_passed () =
  check_bool "fails with a bad row" false (Report.passed sample);
  let ok = { sample with Report.rows = [ Report.row "a" "b" ] } in
  check_bool "passes" true (Report.passed ok)

let test_pp () =
  let s = Format.asprintf "%a" Report.pp sample in
  check_bool "mentions FAIL" true
    (Test_graph.contains ~needle:"FAIL" s);
  check_bool "mentions MISMATCH" true (Test_graph.contains ~needle:"MISMATCH" s)

let test_markdown () =
  let md = Report.to_markdown sample in
  check_bool "has table header" true
    (Test_graph.contains ~needle:"| check | measured |" md);
  check_bool "flags mismatch" true (Test_graph.contains ~needle:"**mismatch**" md)

let test_summary () =
  check_bool "summary line" true
    (Test_graph.contains ~needle:"EX" (Report.summary_line sample))

let test_json () =
  let j = Report.to_json sample in
  check_bool "id field" true (Json.member "id" j = Ok (Json.String "EX"));
  check_bool "passed field" true (Json.member "passed" j = Ok (Json.Bool false));
  (match Json.member "rows" j with
  | Ok (Json.List rows) -> check_int "three rows" 3 (List.length rows)
  | _ -> Alcotest.fail "rows missing")

let test_battery_json_roundtrip () =
  let battery = Report.battery_to_json [ sample; sample ] in
  check_bool "schema versioned" true
    (Json.member "schema_version" battery
    = Ok (Json.Int Report.battery_schema_version));
  check_bool "total" true (Json.member "total" battery = Ok (Json.Int 2));
  check_bool "passed count" true (Json.member "passed" battery = Ok (Json.Int 0));
  match Json.of_string (Json.to_string_pretty battery) with
  | Error e -> Alcotest.fail e
  | Ok j ->
      Alcotest.(check string) "round-trips through of_string"
        (Json.to_string battery) (Json.to_string j)

let suite =
  [
    case "passed" test_passed;
    case "pretty printing" test_pp;
    case "markdown" test_markdown;
    case "summary line" test_summary;
    case "report json" test_json;
    case "battery json round-trip" test_battery_json_roundtrip;
  ]
